#pragma once
// Constant operand matrices used by the Scan and Reduction kernels
// (Quadrants II and III, Figure 2). These matrices live in registers /
// immediate form on the device and are never loaded from global memory,
// which is the source of the TC variants' reduced data-transfer overhead
// (Section 6.1).

#include <array>

namespace cubie::mma {

using Mat8x8 = std::array<double, 64>;

// Upper-triangular ones (including the diagonal): row-wise prefix sums.
constexpr Mat8x8 upper_ones() {
  Mat8x8 m{};
  for (int i = 0; i < 8; ++i)
    for (int j = 0; j < 8; ++j) m[static_cast<std::size_t>(i * 8 + j)] = (j >= i) ? 1.0 : 0.0;
  return m;
}

// Strictly-lower-triangular ones: sums of all preceding rows.
constexpr Mat8x8 strict_lower_ones() {
  Mat8x8 m{};
  for (int i = 0; i < 8; ++i)
    for (int j = 0; j < 8; ++j) m[static_cast<std::size_t>(i * 8 + j)] = (j < i) ? 1.0 : 0.0;
  return m;
}

// All ones.
constexpr Mat8x8 all_ones() {
  Mat8x8 m{};
  for (auto& x : m) x = 1.0;
  return m;
}

// Single row of ones (row 0), zeros elsewhere: column-sum extractor used by
// Reduction (A1 in Figure 2 Quadrant III).
constexpr Mat8x8 ones_row0() {
  Mat8x8 m{};
  for (int j = 0; j < 8; ++j) m[static_cast<std::size_t>(j)] = 1.0;
  return m;
}

// Single column of ones (column 0), zeros elsewhere: row-sum extractor used
// by Reduction (B2 in Figure 2 Quadrant III).
constexpr Mat8x8 ones_col0() {
  Mat8x8 m{};
  for (int i = 0; i < 8; ++i) m[static_cast<std::size_t>(i * 8)] = 1.0;
  return m;
}

inline constexpr Mat8x8 kUpperOnes = upper_ones();
inline constexpr Mat8x8 kStrictLowerOnes = strict_lower_ones();
inline constexpr Mat8x8 kAllOnes = all_ones();
inline constexpr Mat8x8 kOnesRow0 = ones_row0();
inline constexpr Mat8x8 kOnesCol0 = ones_col0();

}  // namespace cubie::mma
