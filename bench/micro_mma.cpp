// Micro-benchmarks (google-benchmark, host wall-clock): throughput of the
// MMA emulation layer and of the hot substrate operations. These measure
// the *simulator's* speed, not modeled GPU performance - useful for keeping
// the functional layer fast enough to drive the figure sweeps.

#include "common/report.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "fft/fft.hpp"
#include "mma/constants.hpp"
#include "mma/mma.hpp"
#include "mma/simd.hpp"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <iostream>
#include <string>

namespace {

using namespace cubie;

void BM_DmmaM8n8k4(benchmark::State& state) {
  common::Lcg rng(1);
  double a[32], b[32], c[64] = {};
  for (auto& v : a) v = rng.next_linpack();
  for (auto& v : b) v = rng.next_linpack();
  sim::KernelProfile prof;
  mma::Context ctx(mma::Pipe::TensorCore, prof);
  for (auto _ : state) {
    ctx.dmma_m8n8k4_acc(a, b, c);
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["emulated_GFLOP/s"] = benchmark::Counter(
      512.0 * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate, benchmark::Counter::kIs1000);
}
BENCHMARK(BM_DmmaM8n8k4);

void BM_DmmaM8n8k8(benchmark::State& state) {
  common::Lcg rng(2);
  double a[64], b[64], c[64] = {};
  for (auto& v : a) v = rng.next_linpack();
  for (auto& v : b) v = rng.next_linpack();
  sim::KernelProfile prof;
  mma::Context ctx(mma::Pipe::TensorCore, prof);
  for (auto _ : state) {
    ctx.dmma_m8n8k8_acc(a, b, c);
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DmmaM8n8k8);

void BM_BmmaM8n8k128(benchmark::State& state) {
  common::Lcg rng(3);
  std::uint32_t a[32], b[32], d[64] = {};
  for (auto& v : a) v = rng.next_raw();
  for (auto& v : b) v = rng.next_raw();
  sim::KernelProfile prof;
  mma::Context ctx(mma::Pipe::TensorCore, prof);
  for (auto _ : state) {
    ctx.bmma_m8n8k128_and_popc_acc(a, b, d);
    benchmark::DoNotOptimize(d);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BmmaM8n8k128);

// Forced-scalar twins of the MMA benches: the same loop bodies against the
// scalar reference table, so one `micro_mma` run shows the dispatched and
// fallback rates side by side (the --report mode below is the machine form).
void BM_DmmaM8n8k4Scalar(benchmark::State& state) {
  common::Lcg rng(1);
  double a[32], b[32], c[64] = {};
  for (auto& v : a) v = rng.next_linpack();
  for (auto& v : b) v = rng.next_linpack();
  const auto& t = mma::simd::scalar_kernels();
  for (auto _ : state) {
    t.dmma_m8n8k4(a, b, c, c);
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["emulated_GFLOP/s"] = benchmark::Counter(
      512.0 * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate, benchmark::Counter::kIs1000);
}
BENCHMARK(BM_DmmaM8n8k4Scalar);

void BM_BmmaM8n8k128Scalar(benchmark::State& state) {
  common::Lcg rng(3);
  std::uint32_t a[32], b[32], d[64] = {};
  for (auto& v : a) v = rng.next_raw();
  for (auto& v : b) v = rng.next_raw();
  const auto& t = mma::simd::scalar_kernels();
  for (auto _ : state) {
    t.bmma_m8n8k128_acc(a, b, d);
    benchmark::DoNotOptimize(d);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BmmaM8n8k128Scalar);

void BM_FftSerial(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto re = common::random_vector(n, 5);
  std::vector<fft::cplx> x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = {re[i], 0.0};
  for (auto _ : state) {
    auto y = fft::fft_serial(x);
    benchmark::DoNotOptimize(y);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_FftSerial)->Arg(256)->Arg(1024);

void BM_FftStockham(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto re = common::random_vector(n, 6);
  std::vector<fft::cplx> x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = {re[i], 0.0};
  for (auto _ : state) {
    auto y = fft::fft_stockham(x);
    benchmark::DoNotOptimize(y);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_FftStockham)->Arg(256)->Arg(1024);

// ---------------------------------------------------------------------------
// --report mode: a self-contained SIMD-vs-scalar throughput comparison of
// the dispatched MMA kernel tables, written as a schema-v1 MetricsReport so
// `cubie record` can append it to BENCH_history.jsonl and `cubie trend` can
// gate on the speedup. Run without --report, the binary is the plain
// google-benchmark suite above.

// Median-of-reps wall time per call of `fn`, iterated until a rep takes
// long enough for steady_clock to resolve it cleanly.
template <typename Fn>
double time_per_call_s(Fn&& fn) {
  using clock = std::chrono::steady_clock;
  long iters = 512;
  for (;;) {
    fn(1);  // warm
    double best = 1e300;
    for (int rep = 0; rep < 5; ++rep) {
      const auto t0 = clock::now();
      fn(iters);
      const std::chrono::duration<double> dt = clock::now() - t0;
      if (dt.count() < best) best = dt.count();
    }
    if (best >= 20e-3 || iters >= (1L << 24)) return best / static_cast<double>(iters);
    iters *= 4;
  }
}

struct KernelCase {
  const char* name;
  double ops_per_call;  // FLOPs (or bit-ops for bmma) per kernel invocation
  void (*drive)(const mma::simd::Kernels& t, long iters);
};

// Each driver keeps operands hot in L1 and accumulates in place, the same
// steady-state shape the GEMM / warp inner loops produce.
void drive_dmma(const mma::simd::Kernels& t, long iters) {
  common::Lcg rng(1);
  double a[32], b[32], c[64] = {};
  for (auto& v : a) v = rng.next_linpack();
  for (auto& v : b) v = rng.next_linpack();
  for (long i = 0; i < iters; ++i) t.dmma_m8n8k4(a, b, c, c);
  benchmark::DoNotOptimize(c);
}

void drive_bmma(const mma::simd::Kernels& t, long iters) {
  common::Lcg rng(3);
  std::uint32_t a[32], b[32], d[64] = {};
  for (auto& v : a) v = rng.next_raw();
  for (auto& v : b) v = rng.next_raw();
  for (long i = 0; i < iters; ++i) t.bmma_m8n8k128_acc(a, b, d);
  benchmark::DoNotOptimize(d);
}

void drive_hmma(const mma::simd::Kernels& t, long iters) {
  common::Lcg rng(5);
  float a[256], b[256], acc[256] = {};
  for (auto& v : a) v = static_cast<float>(rng.next_linpack());
  for (auto& v : b) v = static_cast<float>(rng.next_linpack());
  for (long i = 0; i < iters; ++i) t.hmma_f32acc_tile(a, b, acc);
  benchmark::DoNotOptimize(acc);
}

void drive_lanes(const mma::simd::Kernels& t, long iters) {
  common::Lcg rng(7);
  double a[32], b[32], c[32] = {};
  for (auto& v : a) v = rng.next_linpack();
  for (auto& v : b) v = rng.next_linpack();
  for (long i = 0; i < iters; ++i) t.lanes_fma32(a, b, c);
  benchmark::DoNotOptimize(c);
}

constexpr KernelCase kKernelCases[] = {
    {"dmma_m8n8k4", 2.0 * 8 * 8 * 4, drive_dmma},
    {"bmma_m8n8k128", 2.0 * 8 * 8 * 128, drive_bmma},  // AND+popc = 2 ops
    {"hmma_m16n16k16", 2.0 * 16 * 16 * 16, drive_hmma},
    {"lanes_fma32", 2.0 * 32, drive_lanes},
};

int run_simd_report(const std::string& path) {
  report::MetricsReport rep;
  rep.tool = "micro_mma";
  rep.title = "MMA emulation kernels: dispatched vs scalar throughput";
  rep.scale_divisor = 1;

  const auto& active = mma::simd::kernels();
  const auto& scalar = mma::simd::scalar_kernels();
  const char* isa = mma::simd::isa_name(mma::simd::active_isa());
  std::cout << "micro_mma --report: dispatch=" << isa << "\n\n";

  for (const auto& kc : kKernelCases) {
    const double t_simd = time_per_call_s([&](long n) { kc.drive(active, n); });
    const double t_scalar =
        time_per_call_s([&](long n) { kc.drive(scalar, n); });
    const double simd_gops = kc.ops_per_call / t_simd / 1e9;
    const double scalar_gops = kc.ops_per_call / t_scalar / 1e9;
    // Record key stays host-agnostic ("host" in the gpu column) so trend
    // histories from SIMD and scalar-fallback builds share one series; the
    // dispatch record below says which table actually ran.
    auto& rec = rep.add_record("micro_mma", kc.name, "host", "8x8 tile");
    rec.set("simd_gflops", simd_gops);
    rec.set("scalar_gflops", scalar_gops);
    rec.set("speedup", t_scalar / t_simd);
    std::cout << "  " << kc.name << ": simd "
              << common::fmt_double(simd_gops, 2) << " Gop/s, scalar "
              << common::fmt_double(scalar_gops, 2) << " Gop/s, speedup "
              << common::fmt_double(t_scalar / t_simd, 2) << "x\n";
  }
  auto& disp = rep.add_record("micro_mma", "dispatch", "host", "runtime");
  disp.set("simd_active", mma::simd::active_isa() != mma::simd::Isa::Scalar
               ? 1.0 : 0.0);

  if (!rep.write_file(path)) {
    std::cerr << "micro_mma: cannot write " << path << '\n';
    return 1;
  }
  if (path != "-") std::cerr << "[json report: " << path << "]\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // --report FILE intercepts before google-benchmark sees the arguments;
  // everything else is the stock benchmark CLI.
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--report") == 0) {
      if (i + 1 >= argc) {
        std::cerr << "micro_mma: --report needs a file path\n";
        return 2;
      }
      return run_simd_report(argv[i + 1]);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
