// Figure 10: PCA of the input corpora. (a) graphs: a synthetic corpus
// standing in for the 499 SuiteSparse graphs plus the five Table 3
// representatives; (b) matrices: a corpus standing in for the 2893
// SuiteSparse matrices plus the five Table 4 representatives. Reports the
// projected coordinates, the selected-set dispersion, and the coverage
// fraction - the quantities behind the paper's representativeness claims.

#include "analysis/pca.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"
#include "graph/generators.hpp"
#include "sparse/generators.hpp"
#include "sparse/stats.hpp"

#include <iostream>

namespace {

using namespace cubie;

void analyze(benchutil::Bench& bench, const std::string& corpus_name,
             const std::string& title,
             const std::vector<sparse::MatrixFeatures>& corpus_features,
             const std::vector<sparse::MatrixFeatures>& selected_features,
             const std::vector<std::string>& selected_names) {
  analysis::Dataset d;
  d.samples = corpus_features.size() + selected_features.size();
  d.features = sparse::MatrixFeatures::kCount;
  for (const auto& f : corpus_features) {
    const auto a = f.as_array();
    d.data.insert(d.data.end(), a.begin(), a.end());
  }
  for (const auto& f : selected_features) {
    const auto a = f.as_array();
    d.data.insert(d.data.end(), a.begin(), a.end());
  }
  analysis::standardize(d);
  const auto res = analysis::pca(d, 2);

  std::cout << title << "\n  PC1 explains "
            << common::fmt_double(res.explained_ratio[0] * 100.0, 1)
            << "%, PC2 " << common::fmt_double(res.explained_ratio[1] * 100.0, 1)
            << "% of variance\n";

  std::vector<std::size_t> sel;
  for (std::size_t i = 0; i < selected_features.size(); ++i)
    sel.push_back(corpus_features.size() + i);

  common::Table t({"selected", "PC1", "PC2"});
  for (std::size_t i = 0; i < sel.size(); ++i) {
    t.add_row({selected_names[i], common::fmt_double(res.coord(sel[i], 0), 2),
               common::fmt_double(res.coord(sel[i], 1), 2)});
  }
  t.print(std::cout);

  // Dispersion of the representatives vs. corpus neighbours + coverage.
  const double disp = analysis::mean_pairwise_distance(res.projected, sel);
  double span = 0.0;
  for (std::size_t c = 0; c < 2; ++c) {
    double lo = 1e300, hi = -1e300;
    for (std::size_t i = 0; i < res.projected.samples; ++i) {
      lo = std::min(lo, res.coord(i, c));
      hi = std::max(hi, res.coord(i, c));
    }
    span = std::max(span, hi - lo);
  }
  const double radius = span * 0.25;
  const double cov = analysis::coverage_fraction(res.projected, sel, radius);
  std::cout << "  mean pairwise distance of the 5 representatives: "
            << common::fmt_double(disp, 2)
            << "\n  fraction of corpus within r=" << common::fmt_double(radius, 2)
            << " of a representative: "
            << common::fmt_double(cov * 100.0, 1) << "%\n\n";
  bench.capture(corpus_name + "_coords", t);
  auto& rec = bench.record(corpus_name, "", "", "corpus");
  rec.set("pc1_explained", res.explained_ratio[0]);
  rec.set("pc2_explained", res.explained_ratio[1]);
  rec.set("representative_dispersion", disp);
  rec.set("coverage_fraction", cov);
}

}  // namespace

int main(int argc, char** argv) {
  auto bench = benchutil::bench_init(
      argc, argv, "fig10_pca_inputs",
      "Figure 10: PCA of graph and matrix corpora");
  std::cout << "=== Figure 10: PCA of graph and matrix corpora ===\n\n";

  // (a) graphs.
  {
    const auto corpus = graph::synthetic_graph_corpus(96, 1234);
    std::vector<sparse::MatrixFeatures> cf;
    cf.reserve(corpus.size());
    for (const auto& g : corpus)
      cf.push_back(sparse::matrix_features(graph::adjacency_csr(g.graph)));
    std::vector<sparse::MatrixFeatures> sf;
    std::vector<std::string> names;
    for (const auto& nm : graph::table3_names()) {
      const auto g = graph::make_table3_graph(nm, 32);
      sf.push_back(sparse::matrix_features(graph::adjacency_csr(g.graph)));
      names.push_back(nm);
    }
    analyze(bench, "graphs",
            "(a) graphs: corpus of 96 + 5 Table 3 representatives", cf, sf,
            names);
  }

  // (b) matrices.
  {
    const auto corpus = sparse::synthetic_matrix_corpus(120, 4321);
    std::vector<sparse::MatrixFeatures> cf;
    cf.reserve(corpus.size());
    for (const auto& m : corpus) cf.push_back(sparse::matrix_features(m.matrix));
    std::vector<sparse::MatrixFeatures> sf;
    std::vector<std::string> names;
    for (const auto& nm : sparse::table4_names()) {
      sf.push_back(sparse::matrix_features(
          sparse::make_table4_matrix(nm, 16).matrix));
      names.push_back(nm);
    }
    analyze(bench, "matrices",
            "(b) matrices: corpus of 120 + 5 Table 4 representatives", cf, sf,
            names);
  }
  return bench.finish();
}
