file(REMOVE_RECURSE
  "CMakeFiles/ablation_issue_cost.dir/ablation_issue_cost.cpp.o"
  "CMakeFiles/ablation_issue_cost.dir/ablation_issue_cost.cpp.o.d"
  "ablation_issue_cost"
  "ablation_issue_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_issue_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
