// Stencil substrate: serial references, band-block decomposition identity.

#include "common/rng.hpp"
#include "mma/mma.hpp"
#include "stencil/stencil.hpp"

#include <gtest/gtest.h>

namespace cubie {
namespace {

TEST(Stencil2d, ConstantFieldInterior) {
  // On a constant field the interior result equals the weight sum.
  const stencil::Star2D st{0.5, 0.125, 0.125, 0.125, 0.125};
  const int n = 8;
  std::vector<double> in(static_cast<std::size_t>(n) * n, 2.0), out;
  stencil::stencil2d_serial(st, in, out, n, n);
  EXPECT_DOUBLE_EQ(out[static_cast<std::size_t>(3 * n + 3)], 2.0);  // weights sum to 1
  // Corner sees only 3 neighbours.
  EXPECT_DOUBLE_EQ(out[0], 2.0 * (0.5 + 0.125 + 0.125));
}

TEST(Stencil3d, ConstantFieldInterior) {
  const stencil::Star3D st{0.4, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1};
  const int n = 6;
  std::vector<double> in(static_cast<std::size_t>(n) * n * n, 3.0), out;
  stencil::stencil3d_serial(st, in, out, n, n, n);
  const std::size_t mid = static_cast<std::size_t>((2 * n + 2) * n + 2);
  EXPECT_DOUBLE_EQ(out[mid], 3.0);
}

TEST(Stencil, FmaVariantCloseToNaive) {
  const stencil::Star2D st{0.5, 0.125, 0.125, 0.125, 0.125};
  const int n = 16;
  const auto in = common::random_vector(static_cast<std::size_t>(n) * n, 55);
  std::vector<double> a, b;
  stencil::stencil2d_serial(st, in, a, n, n);
  stencil::stencil2d_serial_fma(st, in, b, n, n);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-14);
}

TEST(BandBlocks, DiagBlockShape) {
  const auto d = stencil::band_diag_block(0.1, 0.5, 0.2);
  EXPECT_DOUBLE_EQ(d[0], 0.5);
  EXPECT_DOUBLE_EQ(d[1], 0.2);   // (0,1) upper
  EXPECT_DOUBLE_EQ(d[8], 0.1);   // (1,0) lower
  EXPECT_DOUBLE_EQ(d[63], 0.5);
  EXPECT_DOUBLE_EQ(d[2], 0.0);
}

TEST(BandBlocks, CouplingBlocksSingleEntry) {
  const auto l = stencil::band_sub_block(0.3);
  const auto u = stencil::band_super_block(0.7);
  int l_nonzero = 0, u_nonzero = 0;
  for (double v : l) l_nonzero += v != 0.0;
  for (double v : u) u_nonzero += v != 0.0;
  EXPECT_EQ(l_nonzero, 1);
  EXPECT_EQ(u_nonzero, 1);
  EXPECT_DOUBLE_EQ(l[7], 0.3);    // (0,7)
  EXPECT_DOUBLE_EQ(u[56], 0.7);   // (7,0)
}

// The LoRa identity: for a banded matrix A assembled from the three block
// types, A (as dense) times X matches the vertical 3-tap convolution.
TEST(BandBlocks, VerticalPassEqualsConvolution) {
  const double wn = 0.25, wc = 0.5, ws = 0.125;
  const int n = 16;  // two 8x8 tiles
  // Assemble dense A.
  std::vector<double> a(static_cast<std::size_t>(n) * n, 0.0);
  for (int i = 0; i < n; ++i) {
    a[static_cast<std::size_t>(i) * n + i] = wc;
    if (i > 0) a[static_cast<std::size_t>(i) * n + i - 1] = wn;
    if (i + 1 < n) a[static_cast<std::size_t>(i) * n + i + 1] = ws;
  }
  // Tile-wise product using the constant blocks.
  const auto in = common::random_vector(static_cast<std::size_t>(n) * n, 77);
  const auto d = stencil::band_diag_block(wn, wc, ws);
  const auto lb = stencil::band_sub_block(wn);
  const auto ub = stencil::band_super_block(ws);
  sim::KernelProfile prof;
  mma::Context ctx(mma::Pipe::TensorCore, prof);
  std::vector<double> out(static_cast<std::size_t>(n) * n, 0.0);
  auto tile = [&](int ty, int tx, double* dst) {
    for (int r = 0; r < 8; ++r)
      for (int c = 0; c < 8; ++c)
        dst[r * 8 + c] = in[static_cast<std::size_t>(ty * 8 + r) * n + static_cast<std::size_t>(tx * 8 + c)];
  };
  for (int ty = 0; ty < 2; ++ty) {
    for (int tx = 0; tx < 2; ++tx) {
      double acc[64] = {}, x[64];
      tile(ty, tx, x);
      ctx.dmma_m8n8k8_acc(d.data(), x, acc);
      if (ty > 0) {
        tile(ty - 1, tx, x);
        ctx.dmma_m8n8k8_acc(lb.data(), x, acc);
      }
      if (ty < 1) {
        tile(ty + 1, tx, x);
        ctx.dmma_m8n8k8_acc(ub.data(), x, acc);
      }
      for (int r = 0; r < 8; ++r)
        for (int c = 0; c < 8; ++c)
          out[static_cast<std::size_t>(ty * 8 + r) * n + static_cast<std::size_t>(tx * 8 + c)] = acc[r * 8 + c];
    }
  }
  // Dense reference.
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      double expect = 0.0;
      for (int k = 0; k < n; ++k)
        expect += a[static_cast<std::size_t>(i) * n + k] * in[static_cast<std::size_t>(k) * n + j];
      EXPECT_NEAR(out[static_cast<std::size_t>(i) * n + j], expect, 1e-12);
    }
  }
}

}  // namespace
}  // namespace cubie
