// Micro-benchmarks (google-benchmark, host wall-clock): throughput of the
// MMA emulation layer and of the hot substrate operations. These measure
// the *simulator's* speed, not modeled GPU performance - useful for keeping
// the functional layer fast enough to drive the figure sweeps.

#include "common/rng.hpp"
#include "fft/fft.hpp"
#include "mma/constants.hpp"
#include "mma/mma.hpp"

#include <benchmark/benchmark.h>

namespace {

using namespace cubie;

void BM_DmmaM8n8k4(benchmark::State& state) {
  common::Lcg rng(1);
  double a[32], b[32], c[64] = {};
  for (auto& v : a) v = rng.next_linpack();
  for (auto& v : b) v = rng.next_linpack();
  sim::KernelProfile prof;
  mma::Context ctx(mma::Pipe::TensorCore, prof);
  for (auto _ : state) {
    ctx.dmma_m8n8k4_acc(a, b, c);
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["emulated_GFLOP/s"] = benchmark::Counter(
      512.0 * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate, benchmark::Counter::kIs1000);
}
BENCHMARK(BM_DmmaM8n8k4);

void BM_DmmaM8n8k8(benchmark::State& state) {
  common::Lcg rng(2);
  double a[64], b[64], c[64] = {};
  for (auto& v : a) v = rng.next_linpack();
  for (auto& v : b) v = rng.next_linpack();
  sim::KernelProfile prof;
  mma::Context ctx(mma::Pipe::TensorCore, prof);
  for (auto _ : state) {
    ctx.dmma_m8n8k8_acc(a, b, c);
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DmmaM8n8k8);

void BM_BmmaM8n8k128(benchmark::State& state) {
  common::Lcg rng(3);
  std::uint32_t a[32], b[32], d[64] = {};
  for (auto& v : a) v = rng.next_raw();
  for (auto& v : b) v = rng.next_raw();
  sim::KernelProfile prof;
  mma::Context ctx(mma::Pipe::TensorCore, prof);
  for (auto _ : state) {
    ctx.bmma_m8n8k128_and_popc_acc(a, b, d);
    benchmark::DoNotOptimize(d);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BmmaM8n8k128);

void BM_FftSerial(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto re = common::random_vector(n, 5);
  std::vector<fft::cplx> x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = {re[i], 0.0};
  for (auto _ : state) {
    auto y = fft::fft_serial(x);
    benchmark::DoNotOptimize(y);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_FftSerial)->Arg(256)->Arg(1024);

void BM_FftStockham(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto re = common::random_vector(n, 6);
  std::vector<fft::cplx> x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = {re[i], 0.0};
  for (auto _ : state) {
    auto y = fft::fft_stockham(x);
    benchmark::DoNotOptimize(y);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_FftStockham)->Arg(256)->Arg(1024);

}  // namespace

BENCHMARK_MAIN();
