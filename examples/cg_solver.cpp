// Conjugate-gradient solver built on the Cubie substrates: the DASP-style
// MMA SpMV drives the iteration (the workload the paper's SpMV kernel
// accelerates inside solvers such as AmgT), with the device model reporting
// where the time would go on an H200.
//
//   $ ./cg_solver [n] [max_iters]

#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "mma/mma.hpp"
#include "sim/model.hpp"
#include "sparse/generators.hpp"

#include <cmath>
#include <iostream>
#include <vector>

namespace {

using namespace cubie;

// Warp-level DASP-style SpMV through the MMA context (8 rows x 4-nnz chunks,
// diagonal extraction), identical math to the SpMV workload's TC variant.
std::vector<double> spmv_mma(const sparse::Csr& a,
                             const std::vector<double>& x,
                             mma::Context& ctx) {
  std::vector<double> y(static_cast<std::size_t>(a.rows), 0.0);
  ctx.launch((a.rows / 8.0) * 32.0);
  ctx.load_global(static_cast<double>(a.nnz()) * 20.0 +
                  static_cast<double>(a.rows) * 8.0);
  ctx.store_global(static_cast<double>(a.rows) * 8.0);
  double a_frag[32], b_frag[32];
  for (int g = 0; g < a.rows; g += 8) {
    const int rows_here = std::min(8, a.rows - g);
    int max_chunks = 0;
    for (int i = 0; i < rows_here; ++i)
      max_chunks = std::max(max_chunks, (a.row_nnz(g + i) + 3) / 4);
    double acc[64] = {};
    for (int chunk = 0; chunk < max_chunks; ++chunk) {
      for (int i = 0; i < 8; ++i) {
        for (int kk = 0; kk < 4; ++kk) {
          a_frag[i * 4 + kk] = 0.0;
          b_frag[kk * 8 + i] = 0.0;
        }
        if (i >= rows_here) continue;
        const int lo = a.row_ptr[static_cast<std::size_t>(g + i)];
        const int hi = a.row_ptr[static_cast<std::size_t>(g + i) + 1];
        for (int kk = 0; kk < 4; ++kk) {
          const int p = lo + chunk * 4 + kk;
          if (p < hi) {
            a_frag[i * 4 + kk] = a.vals[static_cast<std::size_t>(p)];
            b_frag[kk * 8 + i] = x[static_cast<std::size_t>(a.col_idx[static_cast<std::size_t>(p)])];
          }
        }
      }
      ctx.dmma_m8n8k4_acc(a_frag, b_frag, acc);
    }
    for (int i = 0; i < rows_here; ++i) y[static_cast<std::size_t>(g + i)] = acc[i * 8 + i];
  }
  return y;
}

double dot(const std::vector<double>& a, const std::vector<double>& b,
           mma::Context& ctx) {
  ctx.cc_fma(static_cast<double>(a.size()));
  ctx.load_global(static_cast<double>(a.size()) * 16.0);
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s = std::fma(a[i], b[i], s);
  return s;
}

void axpy(double alpha, const std::vector<double>& x, std::vector<double>& y,
          mma::Context& ctx) {
  ctx.cc_fma(static_cast<double>(x.size()));
  ctx.load_global(static_cast<double>(x.size()) * 16.0);
  ctx.store_global(static_cast<double>(x.size()) * 8.0);
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = std::fma(alpha, x[i], y[i]);
}

}  // namespace

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 4096;
  const int max_iters = argc > 2 ? std::atoi(argv[2]) : 200;

  // Symmetric positive-definite system: band matrix made strictly
  // diagonally dominant (Gershgorin => SPD).
  sparse::Csr a = sparse::gen_banded(n, 6, 0.5, /*symmetric=*/true, 77);
  for (int r = 0; r < a.rows; ++r) {
    double off = 0.0;
    int diag = -1;
    for (int p = a.row_ptr[static_cast<std::size_t>(r)]; p < a.row_ptr[static_cast<std::size_t>(r) + 1]; ++p) {
      if (a.col_idx[static_cast<std::size_t>(p)] == r) diag = p;
      else off += std::fabs(a.vals[static_cast<std::size_t>(p)]);
    }
    a.vals[static_cast<std::size_t>(diag)] = off + 1.0;
  }
  const auto x_true = common::random_vector(static_cast<std::size_t>(n), 79);

  sim::KernelProfile prof;
  mma::Context ctx(mma::Pipe::TensorCore, prof);
  const auto b = spmv_mma(a, x_true, ctx);

  // CG iteration.
  std::vector<double> x(static_cast<std::size_t>(n), 0.0), r = b, p = b;
  double rr = dot(r, r, ctx);
  const double rr0 = rr;
  int iters = 0;
  for (; iters < max_iters && rr > 1e-24 * rr0; ++iters) {
    const auto ap = spmv_mma(a, p, ctx);
    const double alpha = rr / dot(p, ap, ctx);
    axpy(alpha, p, x, ctx);
    axpy(-alpha, ap, r, ctx);
    const double rr_new = dot(r, r, ctx);
    const double beta = rr_new / rr;
    rr = rr_new;
    for (std::size_t i = 0; i < p.size(); ++i) p[i] = r[i] + beta * p[i];
    ctx.cc_fma(static_cast<double>(n));
  }

  const double err = cubie::common::rel_l2_error(x, x_true);
  const sim::AnalyticModel model(sim::h200());
  const auto pred = model.predict(prof);

  std::cout << "CG with MMA (DASP-style) SpMV\n"
            << "  n = " << n << ", nnz = " << a.nnz() << "\n"
            << "  iterations: " << iters
            << ", relative solution error: " << common::fmt_sci(err) << "\n"
            << "  residual reduction: " << common::fmt_sci(std::sqrt(rr / rr0))
            << "\n\nModeled on " << model.spec().name << ":\n"
            << "  time " << common::fmt_double(pred.time_s * 1e3, 3)
            << " ms, avg power " << common::fmt_double(pred.avg_power_w, 0)
            << " W, energy " << common::fmt_double(pred.energy_j, 3)
            << " J (bound: " << sim::bottleneck_name(pred.bound) << ")\n";
  return err < 1e-8 ? 0 : 1;
}
