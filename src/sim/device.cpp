#include "sim/device.hpp"

namespace cubie::sim {
namespace {

// Shared/L1 bandwidth formula from the paper's Figure 9 caption:
//   BW_L1 = N_SM * N_LSU * W_access * f_clock
// with N_LSU = 4 load/store units and W_access = 32 bytes per access.
double l1_bw(int num_sm, double clock_hz) { return num_sm * 4.0 * 32.0 * clock_hz; }

DeviceSpec make_a100() {
  DeviceSpec d;
  d.name = "A100 (Ampere)";
  d.id = Gpu::A100;
  // Table 5: A100 PCIe 40 GB, 1.55 TB/s; TC 19.5 TFLOPs, CC 9.7 TFLOPs.
  d.fp64_tc_peak = 19.5e12;
  d.fp64_cc_peak = 9.7e12;
  d.fp16_tc_peak = 312e12;   // Figure 12
  d.fp16_cc_peak = 78e12;    // A100 whitepaper FP16 CUDA-core rate
  d.bit_tc_peak = 4992e12;   // INT1 tensor-core ops/s (A100 whitepaper)
  d.int_cc_peak = 19.5e12;   // INT32 ops/s
  d.dram_bw = 1.55e12;
  d.smem_bw = 0.0;  // filled below from shape
  d.dram_capacity = 40e9;
  d.l2_bytes = 40e6;    // A100 whitepaper: 40 MB unified L2
  d.num_sm = 108;
  d.clock_hz = 1.41e9;
  d.max_threads = 108 * 2048.0;
  d.launch_overhead_s = 0.9e-6;
  d.tdp_w = 250.0;  // PCIe variant
  d.idle_w = 55.0;
  d.tc_power_w = 140.0;
  d.cc_power_w = 120.0;
  d.mem_power_w = 95.0;
  d.smem_bw = l1_bw(d.num_sm, d.clock_hz);
  return d;
}

DeviceSpec make_h200() {
  DeviceSpec d;
  d.name = "H200 (Hopper)";
  d.id = Gpu::H200;
  // Table 5: H200 SXM (GH200), 96 GB, 4 TB/s; TC 66.9 TFLOPs, CC 33.5 TFLOPs.
  d.fp64_tc_peak = 66.9e12;
  d.fp64_cc_peak = 33.5e12;
  d.fp16_tc_peak = 989.5e12;  // Figure 12
  d.fp16_cc_peak = 134e12;
  d.bit_tc_peak = 15834e12;
  d.int_cc_peak = 33.5e12;
  d.dram_bw = 4.0e12;
  d.dram_capacity = 96e9;
  d.l2_bytes = 50e6;    // Hopper whitepaper: 50 MB unified L2
  d.num_sm = 132;
  d.clock_hz = 1.98e9;
  d.max_threads = 132 * 2048.0;
  d.launch_overhead_s = 0.8e-6;
  d.tdp_w = 750.0;  // Section 7: thermal design power of 750 W
  d.idle_w = 95.0;
  d.tc_power_w = 380.0;
  d.cc_power_w = 330.0;
  d.mem_power_w = 250.0;
  d.smem_bw = l1_bw(d.num_sm, d.clock_hz);
  return d;
}

DeviceSpec make_b200() {
  DeviceSpec d;
  d.name = "B200 (Blackwell)";
  d.id = Gpu::B200;
  // Table 5: B200 SXM, 180 GB, 8 TB/s; TC 40.0 TFLOPs, CC 40.0 TFLOPs.
  // (The paper's Figure 12 narrative quotes 30 TFLOPs dense FP64 MMA; we use
  // the Table 5 value for the performance model and surface both in the
  // fig12 bench.)
  d.fp64_tc_peak = 40.0e12;
  d.fp64_cc_peak = 40.0e12;
  d.fp16_tc_peak = 1800e12;  // Figure 12
  d.fp16_cc_peak = 180e12;
  d.bit_tc_peak = 28000e12;
  d.int_cc_peak = 40.0e12;
  d.dram_bw = 8.0e12;
  d.dram_capacity = 180e9;
  d.l2_bytes = 126e6;   // Blackwell: 126 MB unified L2
  d.num_sm = 148;
  d.clock_hz = 1.83e9;
  d.max_threads = 148 * 2048.0;
  d.launch_overhead_s = 0.8e-6;
  d.tdp_w = 1000.0;
  d.idle_w = 120.0;
  d.tc_power_w = 470.0;
  d.cc_power_w = 430.0;
  d.mem_power_w = 330.0;
  d.smem_bw = l1_bw(d.num_sm, d.clock_hz);
  return d;
}

DeviceSpec make_v100() {
  DeviceSpec d;
  d.name = "V100 (Volta, control)";
  d.id = Gpu::A100;  // not part of the evaluated trio; id unused for V100
  // Volta has no FP64 tensor-core mode: FP64 "MMA" executes on CUDA cores.
  d.fp64_tc_peak = 7.8e12;
  d.fp64_cc_peak = 7.8e12;
  d.fp16_tc_peak = 125e12;
  d.fp16_cc_peak = 31.4e12;
  d.bit_tc_peak = 0.0;  // no b1 MMA either (Turing introduced it)
  d.int_cc_peak = 15.7e12;
  d.dram_bw = 0.9e12;
  d.dram_capacity = 32e9;
  d.l2_bytes = 6e6;     // Volta: 6 MB L2
  d.num_sm = 80;
  d.clock_hz = 1.53e9;
  d.max_threads = 80 * 2048.0;
  d.launch_overhead_s = 1.0e-6;
  d.tdp_w = 300.0;
  d.idle_w = 50.0;
  d.tc_power_w = 150.0;
  d.cc_power_w = 140.0;
  d.mem_power_w = 90.0;
  d.smem_bw = l1_bw(d.num_sm, d.clock_hz);
  return d;
}

}  // namespace

const DeviceSpec& a100() {
  static const DeviceSpec d = make_a100();
  return d;
}
const DeviceSpec& h200() {
  static const DeviceSpec d = make_h200();
  return d;
}
const DeviceSpec& b200() {
  static const DeviceSpec d = make_b200();
  return d;
}

const DeviceSpec& v100() {
  static const DeviceSpec d = make_v100();
  return d;
}

const DeviceSpec& spec_for(Gpu gpu) {
  switch (gpu) {
    case Gpu::A100: return a100();
    case Gpu::H200: return h200();
    case Gpu::B200: return b200();
  }
  return a100();
}

std::vector<Gpu> all_gpus() { return {Gpu::A100, Gpu::H200, Gpu::B200}; }

std::string gpu_name(Gpu gpu) { return spec_for(gpu).name; }

}  // namespace cubie::sim
