// Figure 4: speedups of the TC implementations over their baselines on the
// three GPUs, geomean across the five test cases per workload, grouped by
// utilization quadrant (paper Section 6.1).

#include "bench_util.hpp"

int main() {
  using namespace cubie;
  const auto rows = benchutil::speedup_sweep(
      core::Variant::TC, core::Variant::Baseline, common::scale_divisor());
  benchutil::print_speedup_table(
      "=== Figure 4: TC speedup over Baseline (case geomean) ===", rows);

  // Quadrant summary, as the paper's prose reports.
  std::cout << "Quadrant geomeans (A100/H200/B200):\n";
  for (auto q : {core::Quadrant::I, core::Quadrant::II, core::Quadrant::III,
                 core::Quadrant::IV}) {
    std::vector<double> per_gpu[3];
    for (const auto& r : rows) {
      if (r.quadrant != q) continue;
      for (int g = 0; g < 3; ++g) per_gpu[g].push_back(r.per_gpu[static_cast<std::size_t>(g)]);
    }
    if (per_gpu[0].empty()) continue;
    std::cout << "  Quadrant " << core::quadrant_name(q) << ": ";
    for (int g = 0; g < 3; ++g)
      std::cout << common::fmt_double(common::geomean(per_gpu[g]), 2)
                << (g < 2 ? "x / " : "x\n");
  }
  return 0;
}
