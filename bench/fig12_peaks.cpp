// Figure 12: peak throughput of the three GPU generations, comparing FP16
// and FP64 on CUDA cores and tensor cores - the paper's closing observation
// that FP16 MMU throughput keeps scaling while FP64 MMU throughput regresses
// on Blackwell.

#include "bench_util.hpp"
#include "common/table.hpp"
#include "sim/device.hpp"

#include <iostream>

int main(int argc, char** argv) {
  using namespace cubie;
  auto bench = benchutil::bench_init(
      argc, argv, "fig12_peaks",
      "Figure 12: peak throughput across GPU generations");
  std::cout << "=== Figure 12: peak throughput across GPU generations (TFLOPS) ===\n\n";
  common::Table t({"GPU", "FP16 TC", "FP16 CC", "FP64 TC", "FP64 CC",
                   "FP64 TC/CC ratio"});
  for (auto gpu : sim::all_gpus()) {
    const auto& d = sim::spec_for(gpu);
    t.add_row({d.name, common::fmt_double(d.fp16_tc_peak / 1e12, 1),
               common::fmt_double(d.fp16_cc_peak / 1e12, 1),
               common::fmt_double(d.fp64_tc_peak / 1e12, 1),
               common::fmt_double(d.fp64_cc_peak / 1e12, 1),
               common::fmt_double(d.fp64_tc_peak / d.fp64_cc_peak, 2)});
    auto& rec = bench.record("peaks", "", d.name, "Table 5");
    rec.set("fp16_tc_tflops", d.fp16_tc_peak / 1e12);
    rec.set("fp16_cc_tflops", d.fp16_cc_peak / 1e12);
    rec.set("fp64_tc_tflops", d.fp64_tc_peak / 1e12);
    rec.set("fp64_cc_tflops", d.fp64_cc_peak / 1e12);
  }
  t.print(std::cout);
  std::cout <<
      "\nNote: the B200 FP64 tensor-core figure follows the paper's Table 5\n"
      "(40 TFLOPS dense, matching CUDA cores); the paper's Figure 12 prose\n"
      "quotes 30 TFLOPS for dense FP64 MMA - either way the FP64 MMU peak\n"
      "regresses vs. Hopper's 66.9 TFLOPS while FP16 grows 312 -> 989.5 ->\n"
      "1800 TFLOPS, the divergence the paper highlights.\n\n";
  std::cout << "CSV:\n";
  t.print_csv(std::cout);
  bench.capture("peaks", t);
  return bench.finish();
}
