// Two-level algebraic-multigrid solve of a 2D Poisson system - the setting
// the paper's SpGEMM kernel comes from (AmgT builds Galerkin coarse
// operators A_c = R * A * P with tensor-core SpGEMM, then smooths with
// SpMV). This example assembles the 5-point Poisson matrix, builds a
// piecewise-constant aggregation P, forms A_c with the serial SpGEMM
// substrate, and runs a V(1,1)-cycle-preconditioned Richardson iteration.
//
//   $ ./amg_poisson [grid] [cycles]

#include "common/metrics.hpp"
#include "common/table.hpp"
#include "sparse/csr.hpp"
#include "sparse/mbsr.hpp"

#include <cmath>
#include <iostream>
#include <vector>

namespace {

using namespace cubie;

// 5-point Poisson operator on an n x n grid (Dirichlet boundary).
sparse::Csr poisson2d(int n) {
  sparse::Coo coo;
  coo.rows = coo.cols = n * n;
  auto idx = [n](int y, int x) { return y * n + x; };
  for (int y = 0; y < n; ++y) {
    for (int x = 0; x < n; ++x) {
      coo.row.push_back(idx(y, x));
      coo.col.push_back(idx(y, x));
      coo.val.push_back(4.0);
      const int dy[] = {-1, 1, 0, 0}, dx[] = {0, 0, -1, 1};
      for (int k = 0; k < 4; ++k) {
        const int ny = y + dy[k], nx = x + dx[k];
        if (ny >= 0 && ny < n && nx >= 0 && nx < n) {
          coo.row.push_back(idx(y, x));
          coo.col.push_back(idx(ny, nx));
          coo.val.push_back(-1.0);
        }
      }
    }
  }
  return sparse::csr_from_coo(coo);
}

// Piecewise-constant aggregation: 2x2 grid cells -> one coarse unknown.
sparse::Csr aggregation(int n) {
  const int nc = n / 2;
  sparse::Coo coo;
  coo.rows = n * n;
  coo.cols = nc * nc;
  for (int y = 0; y < n; ++y) {
    for (int x = 0; x < n; ++x) {
      const int cy = std::min(y / 2, nc - 1), cx = std::min(x / 2, nc - 1);
      coo.row.push_back(y * n + x);
      coo.col.push_back(cy * nc + cx);
      coo.val.push_back(1.0);
    }
  }
  return sparse::csr_from_coo(coo);
}

void jacobi_smooth(const sparse::Csr& a, const std::vector<double>& b,
                   std::vector<double>& x, double omega, int sweeps) {
  for (int s = 0; s < sweeps; ++s) {
    const auto ax = sparse::spmv_serial(a, x);
    for (int r = 0; r < a.rows; ++r) {
      double diag = 1.0;
      for (int p = a.row_ptr[static_cast<std::size_t>(r)]; p < a.row_ptr[static_cast<std::size_t>(r) + 1]; ++p)
        if (a.col_idx[static_cast<std::size_t>(p)] == r) diag = a.vals[static_cast<std::size_t>(p)];
      x[static_cast<std::size_t>(r)] += omega * (b[static_cast<std::size_t>(r)] - ax[static_cast<std::size_t>(r)]) / diag;
    }
  }
}

// Direct-ish coarse solve: many Jacobi sweeps (the coarse system is small).
void coarse_solve(const sparse::Csr& ac, const std::vector<double>& bc,
                  std::vector<double>& xc) {
  xc.assign(static_cast<std::size_t>(ac.rows), 0.0);
  jacobi_smooth(ac, bc, xc, 0.8, 200);
}

double residual_norm(const sparse::Csr& a, const std::vector<double>& b,
                     const std::vector<double>& x) {
  const auto ax = sparse::spmv_serial(a, x);
  double s = 0.0;
  for (std::size_t i = 0; i < b.size(); ++i) {
    const double r = b[i] - ax[i];
    s += r * r;
  }
  return std::sqrt(s);
}

}  // namespace

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 64;
  const int cycles = argc > 2 ? std::atoi(argv[2]) : 20;

  const sparse::Csr a = poisson2d(n);
  const sparse::Csr p = aggregation(n);
  const sparse::Csr r = sparse::transpose(p);

  // Galerkin coarse operator A_c = R * A * P - the SpGEMM pair AmgT runs on
  // tensor cores; its 4x4 block density is what makes mBSR effective.
  const sparse::Csr ap = sparse::spgemm_serial(a, p);
  const sparse::Csr ac = sparse::spgemm_serial(r, ap);
  const auto ac_blocked = sparse::mbsr_from_csr(ac);

  std::cout << "AMG two-level Poisson solve, " << n << "x" << n << " grid\n"
            << "  fine operator: " << a.rows << " unknowns, " << a.nnz()
            << " nnz\n"
            << "  coarse operator (R*A*P via SpGEMM): " << ac.rows
            << " unknowns, " << ac.nnz() << " nnz, mBSR block fill "
            << cubie::common::fmt_double(ac_blocked.fill_ratio() * 100.0, 1)
            << "%\n\n";

  // Solve A x = b with V(1,1) cycles.
  const std::size_t nn = static_cast<std::size_t>(a.rows);
  std::vector<double> b(nn, 1.0), x(nn, 0.0);
  const double r0 = residual_norm(a, b, x);

  cubie::common::Table t({"cycle", "residual", "reduction"});
  double prev = r0;
  for (int c = 1; c <= cycles; ++c) {
    jacobi_smooth(a, b, x, 0.8, 1);  // pre-smooth
    // Coarse correction.
    const auto ax = sparse::spmv_serial(a, x);
    std::vector<double> res(nn);
    for (std::size_t i = 0; i < nn; ++i) res[i] = b[i] - ax[i];
    const auto rc = sparse::spmv_serial(r, res);
    std::vector<double> xc;
    coarse_solve(ac, rc, xc);
    const auto corr = sparse::spmv_serial(p, xc);
    for (std::size_t i = 0; i < nn; ++i) x[i] += corr[i];
    jacobi_smooth(a, b, x, 0.8, 1);  // post-smooth

    const double rn = residual_norm(a, b, x);
    if (c <= 5 || c == cycles) {
      t.add_row({std::to_string(c), cubie::common::fmt_sci(rn),
                 cubie::common::fmt_double(rn / prev, 3)});
    }
    prev = rn;
  }
  t.print(std::cout);
  const double final_res = residual_norm(a, b, x);
  std::cout << "\nTotal residual reduction: "
            << cubie::common::fmt_sci(final_res / r0) << '\n';
  return final_res < r0 * 1e-3 ? 0 : 1;
}
