#!/usr/bin/env bash
# Integration test for the Cubie-Scope bench-history store, run from ctest:
#   test_trend.sh <cubie-binary>
# Records a small report three times to seed a history, checks an
# unperturbed fourth entry passes `cubie trend`, then appends a perturbed
# entry (every metric skewed 30% — past tolerance in at least one
# direction) and checks trend flags it with exit 1.
set -eu

CUBIE="$1"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT
HIST="$WORK/history.jsonl"

"$CUBIE" profile GEMM --scale 16 --json "$WORK/rep.json" > /dev/null

for sha in aaa bbb ccc; do
  "$CUBIE" record --json "$WORK/rep.json" --history "$HIST" --sha "$sha"
done

# Same report again: zero delta against the median, exit 0.
"$CUBIE" record --json "$WORK/rep.json" --history "$HIST" --sha ddd
"$CUBIE" trend --history "$HIST" --tol 0.10

# A 30% across-the-board skew: time-like metrics regress, must exit 1
# (and only 1 - not a usage/parse error).
"$CUBIE" record --json "$WORK/rep.json" --history "$HIST" --sha eee \
         --perturb 0.30
set +e
"$CUBIE" trend --history "$HIST" --tol 0.10
rc=$?
set -e
if [ "$rc" -ne 1 ]; then
  echo "FAIL: expected exit 1 on perturbed history entry, got $rc" >&2
  exit 1
fi

# Restricted to a higher-is-better metric, the same skew is an improvement.
"$CUBIE" trend --history "$HIST" --tol 0.10 --metric spans

# Sha attribution fallback chain: --sha > $GITHUB_SHA > git rev-parse.
# With no --sha, the CI-provided GITHUB_SHA wins.
SHAHIST="$WORK/sha-history.jsonl"
env GITHUB_SHA=ci0ffee "$CUBIE" record --json "$WORK/rep.json" \
    --history "$SHAHIST"
if ! tail -n 1 "$SHAHIST" | grep -q '"sha": *"ci0ffee"'; then
  echo "FAIL: expected GITHUB_SHA to be recorded when --sha is absent" >&2
  exit 1
fi

# With no --sha, no GITHUB_SHA, and git unable to locate a repository,
# the recorded sha is the documented "unknown" — and record still exits 0.
env -u GITHUB_SHA GIT_DIR="$WORK/no-such-repo" \
    GIT_CEILING_DIRECTORIES="$WORK" \
    "$CUBIE" record --json "$WORK/rep.json" --history "$SHAHIST"
if ! tail -n 1 "$SHAHIST" | grep -q '"sha": *"unknown"'; then
  echo "FAIL: expected sha \"unknown\" outside a git checkout" >&2
  exit 1
fi

echo "trend integration test OK"
