file(REMOVE_RECURSE
  "CMakeFiles/ablation_occupancy.dir/ablation_occupancy.cpp.o"
  "CMakeFiles/ablation_occupancy.dir/ablation_occupancy.cpp.o.d"
  "ablation_occupancy"
  "ablation_occupancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_occupancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
