# Empty compiler generated dependencies file for fig05_cc_vs_tc.
# This may be replaced when dependencies are built.
