#pragma once
// Plain-text table and CSV emission for the bench harness. Every figure /
// table binary prints (a) a human-readable aligned table and (b) optionally a
// CSV block that downstream plotting can consume, mirroring the artifact's
// Figure*.pdf / all_error.csv outputs.

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace cubie::common {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  // Append one row; the row is padded/truncated to the header width.
  void add_row(std::vector<std::string> row);

  // Render with aligned columns.
  void print(std::ostream& os) const;

  // Render as CSV (header + rows).
  void print_csv(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

  // Structured access for JSON capture (report::MetricsReport).
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& data() const { return rows_; }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Format helpers used by the bench binaries.
std::string fmt_double(double v, int precision = 3);
std::string fmt_sci(double v, int precision = 2);
std::string fmt_si(double v, int precision = 3);  // 1.23 K / 4.56 M / ...

// Benchmark scale factor: the paper's test cases are geometrically scaled
// down by default so the single-core functional simulator finishes in bench
// time. Setting the environment variable CUBIE_SCALE=1 restores paper sizes;
// values > 1 shrink further (dimensions divided by the factor).
int scale_divisor();

}  // namespace cubie::common
