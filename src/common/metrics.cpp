#include "common/metrics.hpp"

#include <cassert>
#include <cmath>

namespace cubie::common {

ErrorStats error_stats(std::span<const double> result,
                       std::span<const double> reference) {
  assert(result.size() == reference.size());
  ErrorStats s;
  s.n = result.size();
  if (s.n == 0) return s;
  double total = 0.0;
  for (std::size_t i = 0; i < s.n; ++i) {
    const double e = std::fabs(result[i] - reference[i]);
    total += e;
    if (e > s.max) s.max = e;
  }
  s.avg = total / static_cast<double>(s.n);
  return s;
}

double geomean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (double v : values) log_sum += std::log(v);
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double s = 0.0;
  for (double v : values) s += v;
  return s / static_cast<double>(values.size());
}

double checksum(std::span<const double> values) {
  double s = 0.0;
  for (double v : values) s += v;
  return s;
}

double rel_l2_error(std::span<const double> a, std::span<const double> b) {
  assert(a.size() == b.size());
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    num += d * d;
    den += b[i] * b[i];
  }
  if (den == 0.0) return std::sqrt(num);
  return std::sqrt(num / den);
}

}  // namespace cubie::common
