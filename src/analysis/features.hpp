#pragma once
// Architectural metric extraction for the Figure 11 suite-comparison PCA.
// The paper collects, via NCU, "memory efficiency, compute throughput, and
// instruction pipeline usage for FMA and tensor operations"; the same
// quantities are derived here from the KernelProfile and the device model's
// utilization breakdown.

#include "analysis/pca.hpp"
#include "sim/model.hpp"
#include "sim/profile.hpp"

#include <array>
#include <string>
#include <vector>

namespace cubie::analysis {

struct KernelMetrics {
  std::string name;   // "Cubie/SpMV-TC", "Rodinia/hotspot", ...
  std::string suite;  // "Cubie" | "Rodinia" | "SHOC"

  double mem_utilization = 0.0;     // fraction of time DRAM-bound
  double compute_throughput = 0.0;  // log10 useful FLOP/s
  double fma_pipe_usage = 0.0;      // CUDA-core pipe utilization
  double tensor_pipe_usage = 0.0;   // tensor-core pipe utilization
  double issue_intensity = 0.0;     // warp instructions per DRAM byte
  double arithmetic_intensity = 0.0;// log10(1 + useful FLOPs / byte)

  static constexpr std::size_t kCount = 6;
  std::array<double, kCount> as_array() const {
    return {mem_utilization,   compute_throughput, fma_pipe_usage,
            tensor_pipe_usage, issue_intensity,    arithmetic_intensity};
  }
  static std::vector<std::string> names();
};

KernelMetrics extract_metrics(const std::string& name, const std::string& suite,
                              const sim::KernelProfile& prof,
                              const sim::Prediction& pred);

// Stack metric vectors into a PCA-ready dataset (unstandardized).
Dataset metrics_dataset(const std::vector<KernelMetrics>& metrics);

}  // namespace cubie::analysis
