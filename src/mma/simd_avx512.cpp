// AVX-512F kernels for the MMA emulation hot path. Compiled with
// -mavx512f (see src/CMakeLists.txt) and selected only when
// __builtin_cpu_supports("avx512f") holds. One 512-bit register carries a
// full 8-double row of the m8n8k4 accumulator (or 16 floats of the
// m16n16k16 tile), so each k step is a single correctly-rounded vector FMA
// per row - same bit-exactness argument as the AVX2 unit: lanes map to
// independent output accumulators, the k chain stays serial.

#include "mma/simd_impl.hpp"

#if defined(CUBIE_SIMD_AVX512)

#include <immintrin.h>

#include <bit>
#include <cstdint>

namespace cubie::mma::simd {

namespace {

void dmma_avx512(const double* a, const double* b, const double* c,
                 double* d) {
  __m512d out[8];
  for (int i = 0; i < 8; ++i) {
    __m512d acc = _mm512_loadu_pd(c + i * 8);
    for (int k = 0; k < 4; ++k) {
      acc = _mm512_fmadd_pd(_mm512_set1_pd(a[i * 4 + k]),
                            _mm512_loadu_pd(b + k * 8), acc);
    }
    out[i] = acc;
  }
  // d may alias c: stage like the scalar kernel, store after all loads.
  for (int i = 0; i < 8; ++i) _mm512_storeu_pd(d + i * 8, out[i]);
}

void bmma_avx512(const std::uint32_t* a_words, const std::uint32_t* b_words,
                 std::uint32_t* d) {
  // AVX512F has no vector popcount (that is AVX512-VPOPCNTDQ); the 64-bit
  // scalar POPCNT fold is already the fast exact form.
  std::uint64_t b_lo[8], b_hi[8];
  for (int j = 0; j < 8; ++j) {
    b_lo[j] = static_cast<std::uint64_t>(b_words[j * 4]) |
              (static_cast<std::uint64_t>(b_words[j * 4 + 1]) << 32);
    b_hi[j] = static_cast<std::uint64_t>(b_words[j * 4 + 2]) |
              (static_cast<std::uint64_t>(b_words[j * 4 + 3]) << 32);
  }
  for (int i = 0; i < 8; ++i) {
    const std::uint64_t a_lo = static_cast<std::uint64_t>(a_words[i * 4]) |
                               (static_cast<std::uint64_t>(a_words[i * 4 + 1]) << 32);
    const std::uint64_t a_hi = static_cast<std::uint64_t>(a_words[i * 4 + 2]) |
                               (static_cast<std::uint64_t>(a_words[i * 4 + 3]) << 32);
    for (int j = 0; j < 8; ++j) {
      d[i * 8 + j] += static_cast<std::uint32_t>(
          std::popcount(a_lo & b_lo[j]) + std::popcount(a_hi & b_hi[j]));
    }
  }
}

void hmma_avx512(const float* a_h, const float* b_h, float* acc) {
  for (int i = 0; i < 16; ++i) {
    __m512 row = _mm512_loadu_ps(acc + i * 16);
    for (int k = 0; k < 16; ++k) {
      row = _mm512_fmadd_ps(_mm512_set1_ps(a_h[i * 16 + k]),
                            _mm512_loadu_ps(b_h + k * 16), row);
    }
    _mm512_storeu_ps(acc + i * 16, row);
  }
}

void lanes_fma32_avx512(const double* a, const double* b, double* c) {
  for (int l = 0; l < 32; l += 8) {
    _mm512_storeu_pd(
        c + l, _mm512_fmadd_pd(_mm512_loadu_pd(a + l), _mm512_loadu_pd(b + l),
                               _mm512_loadu_pd(c + l)));
  }
}

constexpr Kernels kAvx512 = {dmma_avx512, bmma_avx512, hmma_avx512,
                             lanes_fma32_avx512};

}  // namespace

const Kernels* avx512_kernels() { return &kAvx512; }

}  // namespace cubie::mma::simd

#endif  // CUBIE_SIMD_AVX512
