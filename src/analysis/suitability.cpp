#include "analysis/suitability.hpp"

#include "sim/calibration.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace cubie::analysis {

std::string quadrant_label(UtilizationQuadrant q) {
  switch (q) {
    case UtilizationQuadrant::I: return "I (full in / full out)";
    case UtilizationQuadrant::II: return "II (partial in / full out)";
    case UtilizationQuadrant::III: return "III (partial in / partial out)";
    case UtilizationQuadrant::IV: return "IV (full in / partial out)";
  }
  return "?";
}

Assessment assess_mmu_suitability(const AlgorithmTraits& t,
                                  const sim::DeviceSpec& dev) {
  namespace cal = sim::cal;
  Assessment a;

  // --- Quadrant from the two utilization axes (Figure 2) -------------------
  // A constant operand means part of the *input* matrix slots are synthetic
  // (zeros/ones), i.e. partial input utilization.
  const bool full_input = t.constant_operands < 0.5;
  const bool full_output = t.output_utilization > 0.75;
  if (full_input && full_output) a.quadrant = UtilizationQuadrant::I;
  else if (!full_input && full_output) a.quadrant = UtilizationQuadrant::II;
  else if (!full_input) a.quadrant = UtilizationQuadrant::III;
  else a.quadrant = UtilizationQuadrant::IV;

  // --- Speedup estimate: same bottleneck reasoning as the device model -----
  // Effective MMU throughput is discounted by how much of the computation
  // actually fits dense blocks and how much of each output tile is useful.
  const double shape_utilization =
      std::max(0.05, t.input_block_density * std::max(0.125, t.output_utilization));
  std::ostringstream why;

  if (t.bitwise) {
    // Bit path: the win comes from the compact layout and the b1 MMA's
    // 128-bit operands; approximate by the layout-regularity ratio with a
    // modest cap (memory-bound graph codes).
    const double tc_mem = cal::kMemEffTcLayout;
    const double base_mem = std::min(t.baseline_mem_regularity, cal::kMemEffScatter * 2.0);
    a.estimated_speedup = std::clamp(tc_mem / base_mem * 0.7, 0.5, 4.0);
    why << "bitwise: compact bitmap layout vs scattered probes";
  } else if (t.arithmetic_intensity > dev.fp64_tc_peak / dev.dram_bw) {
    // Compute-bound region: the peak ratio scaled by shape utilization,
    // with constant operands recovering some of the lost input slots
    // (they cost no bandwidth or registers).
    const double peak_ratio = dev.fp64_tc_peak / dev.fp64_cc_peak;
    a.estimated_speedup = 1.0 + (peak_ratio - 1.0) * std::min(1.0, shape_utilization + 0.3 * t.constant_operands);
    why << "compute-bound: peak ratio " << peak_ratio << " x shape utilization";
  } else {
    // Memory-bound region: the MMU win is layout regularization (achieved
    // bandwidth) plus the redundant-traffic penalty of partial tiles.
    const double tc_mem = cal::kMemEffTcLayout *
                          std::min(1.0, 0.5 + 0.5 * t.input_block_density);
    const double base_mem = t.baseline_mem_regularity;
    // Constant operands save their share of operand traffic entirely.
    const double traffic_saving = 1.0 + 0.25 * t.constant_operands;
    a.estimated_speedup = tc_mem / base_mem * traffic_saving;
    why << "memory-bound: layout regularization " << tc_mem << "/" << base_mem;
  }

  // Reuse sweetens the deal slightly (operands stay in registers).
  a.estimated_speedup *= std::min(1.15, 1.0 + 0.01 * std::log2(std::max(1.0, t.operand_reuse)));
  a.recommend_mmu = a.estimated_speedup > 1.1;
  a.rationale = why.str();
  return a;
}

}  // namespace cubie::analysis
