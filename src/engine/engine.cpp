#include "engine/engine.hpp"

#include "common/report.hpp"
#include "sim/model.hpp"
#include "sim/model_registry.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace_context.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cctype>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <unordered_set>
#include <utility>

namespace cubie::engine {
namespace {

std::string fold(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s)
    out.push_back(static_cast<char>(
        std::tolower(static_cast<unsigned char>(c))));
  return out;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// Every cell request emits exactly one cell_start/cell_finish pair, tagged
// with where it was served from. Callers gate on bus().enabled() so the
// disabled path never reaches here.
void emit_cell_start(const std::string& key) {
  telemetry::Event e;
  e.kind = telemetry::EventKind::CellStart;
  e.name = key;
  telemetry::bus().emit(std::move(e));
}

// `model` is the engine's configured backend, priced on the reference
// device (H200, the paper's primary evaluation GPU). Backends are
// deterministic pure functions of the profile, so telemetry payloads stay
// identical across schedules and reruns.
void emit_cell_finish(const std::string& key, const char* source,
                      double wall_s, const core::RunOutput& out,
                      const sim::DeviceModel& model) {
  telemetry::Event e;
  e.kind = telemetry::EventKind::CellFinish;
  e.name = key;
  e.source = source;
  e.wall_s = wall_s;
  e.modeled_s = model.predict(out.profile).time_s;
  telemetry::bus().emit(std::move(e));
}

}  // namespace

std::string cell_key(const std::string& workload, core::Variant v,
                     const core::TestCase& tc, int scale,
                     const std::string& model) {
  std::string k = workload;
  k += '|';
  k += core::variant_name(v);
  k += '|';
  k += tc.label;
  k += '|';
  k += tc.dataset;
  k += "|dims=";
  for (std::size_t i = 0; i < tc.dims.size(); ++i) {
    if (i) k += ',';
    k += std::to_string(tc.dims[i]);
  }
  k += "|s";
  k += std::to_string(scale);
  k += "|m=";
  k += model;
  return k;
}

struct ExperimentEngine::Impl {
  std::mutex mu;
  std::vector<core::WorkloadPtr> suite;
  bool suite_built = false;
  // Cell key -> result. unique_ptr keeps returned references stable across
  // rehashes; entries are inserted fully formed under `mu`.
  std::unordered_map<std::string, std::unique_ptr<core::RunOutput>> cells;
  // Single-flight: keys whose disk load / functional execution is currently
  // owned by some thread. Other threads requesting the same key wait on
  // `flight_cv` instead of computing redundantly (coalesced_hits).
  std::unordered_set<std::string> inflight;
  std::condition_variable flight_cv;
  // One record per cells entry, in insertion order (see materialized()).
  std::vector<MaterializedCell> order;
  EngineCounters counters;
  DiskCache disk;
  // The configured device-model backend, instantiated over the reference
  // device for telemetry modeled_s. Built once at engine construction;
  // predict() is const and thread-safe, so workers share it freely.
  std::unique_ptr<const sim::DeviceModel> model;

  // Record a newly inserted cell's identity (and, for computed cells, its
  // hardware-counter sample). Caller holds `mu`.
  void record(const core::Workload& w, core::Variant v,
              const core::TestCase& tc, int scale, const std::string& key,
              const hw::HwSample& hw = {}) {
    order.push_back(MaterializedCell{w.name(), v, tc, scale, key, hw});
  }

  // Fold one computed cell's sample into the process totals. Caller holds
  // `mu`. No-op when counters are unavailable (sample.available == false).
  void add_hw(const hw::HwSample& sample) {
    if (!sample.available) return;
    counters.hw_total += sample;
    ++counters.hw_cells;
  }
};

ExperimentEngine::ExperimentEngine() : impl_(std::make_unique<Impl>()) {
  impl_->model =
      sim::make_device_model(opts_.model, sim::spec_for(sim::Gpu::H200));
}

ExperimentEngine::ExperimentEngine(EngineOptions opts)
    : opts_(std::move(opts)), impl_(std::make_unique<Impl>()) {
  impl_->disk = DiskCache(opts_.cache_dir);
  impl_->model =
      sim::make_device_model(opts_.model, sim::spec_for(sim::Gpu::H200));
  if (!impl_->model) {
    std::string msg = "unknown device-model backend '" + opts_.model + "'";
    if (const std::string hint = sim::suggest_model_backend(opts_.model);
        !hint.empty()) {
      msg += " (did you mean '" + hint + "'?)";
    }
    throw std::invalid_argument(msg);
  }
}

ExperimentEngine::~ExperimentEngine() = default;
ExperimentEngine::ExperimentEngine(ExperimentEngine&&) noexcept = default;
ExperimentEngine& ExperimentEngine::operator=(ExperimentEngine&&) noexcept =
    default;

const std::vector<core::WorkloadPtr>& ExperimentEngine::suite() {
  std::lock_guard<std::mutex> lk(impl_->mu);
  if (!impl_->suite_built) {
    impl_->suite = core::make_suite();
    impl_->suite_built = true;
  }
  return impl_->suite;
}

const core::Workload* ExperimentEngine::workload(const std::string& name) {
  const std::string want = fold(name);
  for (const auto& w : suite()) {
    if (fold(w->name()) == want) return w.get();
  }
  return nullptr;
}

const core::RunOutput& ExperimentEngine::run(const core::Workload& w,
                                             core::Variant v,
                                             const core::TestCase& tc,
                                             int scale) {
  const std::string key = cell_key(w.name(), v, tc, scale, opts_.model);
  // Telemetry (Cubie-Scope): each request emits one cell_start/cell_finish
  // pair, tagged "memo" / "disk" / "coalesced" / "compute" by where it was
  // served from — the per-source finish counts match the EngineCounters
  // exactly. Events are emitted outside `mu`; the bus has its own ordering
  // lock.
  const bool scoped = telemetry::bus().enabled();
  const auto t_req =
      scoped ? std::chrono::steady_clock::now()
             : std::chrono::steady_clock::time_point{};
  // Admission: serve from the memo cache, coalesce onto an in-flight
  // computation of the same key, or become its single-flight leader.
  {
    std::unique_lock<std::mutex> lk(impl_->mu);
    for (;;) {
      if (auto it = impl_->cells.find(key); it != impl_->cells.end()) {
        ++impl_->counters.memo_hits;
        const core::RunOutput* res = it->second.get();
        lk.unlock();
        if (scoped) {
          emit_cell_start(key);
          emit_cell_finish(key, "memo", seconds_since(t_req), *res,
                           *impl_->model);
        }
        return *res;
      }
      if (impl_->inflight.count(key) == 0) break;  // become the leader
      // Another thread owns this cell's disk load / execution: wait for it
      // instead of computing redundantly. A wake-up with the cell present
      // is a coalesced hit; a wake-up with the leader gone and no cell
      // (the leader's run threw) loops around and takes over leadership.
      impl_->flight_cv.wait(lk);
      if (auto it = impl_->cells.find(key); it != impl_->cells.end()) {
        ++impl_->counters.coalesced_hits;
        const core::RunOutput* res = it->second.get();
        lk.unlock();
        if (scoped) {
          emit_cell_start(key);
          emit_cell_finish(key, "coalesced", seconds_since(t_req), *res,
                           *impl_->model);
        }
        return *res;
      }
    }
    impl_->inflight.insert(key);
  }
  // Leadership is released on every exit path — including a throwing
  // Workload::run — so waiters are never stranded on the condition
  // variable.
  struct FlightGuard {
    Impl* impl;
    const std::string& key;
    ~FlightGuard() {
      std::lock_guard<std::mutex> lk(impl->mu);
      impl->inflight.erase(key);
      impl->flight_cv.notify_all();
    }
  } flight_guard{impl_.get(), key};
  if (impl_->disk.enabled()) {
    auto loaded = impl_->disk.load(key);
    if (loaded.hit()) {
      const core::RunOutput* res = nullptr;
      const char* source = "disk";
      {
        std::lock_guard<std::mutex> lk(impl_->mu);
        auto [it, inserted] = impl_->cells.try_emplace(key, nullptr);
        if (inserted) {
          it->second =
              std::make_unique<core::RunOutput>(std::move(*loaded.output));
          impl_->record(w, v, tc, scale, key);
          ++impl_->counters.disk_hits;
        } else {
          // Lost a race with run_traced (which executes unconditionally
          // and does not take the in-flight lease).
          ++impl_->counters.memo_hits;
          source = "memo";
        }
        res = it->second.get();
      }
      if (scoped) {
        emit_cell_start(key);
        emit_cell_finish(key, source, seconds_since(t_req), *res,
                         *impl_->model);
      }
      return *res;
    }
    if (loaded.failed()) {
      // Typed failure (corrupt file, key mismatch, undecodable value):
      // fall through to a fresh run, but account for it — a silent miss
      // would hide cache damage forever.
      std::lock_guard<std::mutex> lk(impl_->mu);
      ++impl_->counters.disk_errors;
    }
  }
  if (scoped) emit_cell_start(key);
  const auto t0 = std::chrono::steady_clock::now();
  hw::ScopedSample hw_scope;
  core::RunOutput out = w.run(v, tc);
  const hw::HwSample hw_sample = hw_scope.stop();
  const double dt = seconds_since(t0);
  const core::RunOutput* res = nullptr;
  bool inserted = false;
  const char* source = "compute";
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    auto [it, ins] = impl_->cells.try_emplace(key, nullptr);
    if (ins) {
      it->second = std::make_unique<core::RunOutput>(std::move(out));
      impl_->record(w, v, tc, scale, key, hw_sample);
      ++impl_->counters.misses;
      impl_->counters.exec_wall_s += dt;
      impl_->counters.max_cell_wall_s =
          std::max(impl_->counters.max_cell_wall_s, dt);
      impl_->add_hw(hw_sample);
    } else {
      ++impl_->counters.memo_hits;  // a concurrent run_traced finished first
      source = "memo";
    }
    inserted = ins;
    res = it->second.get();
  }
  if (scoped) emit_cell_finish(key, source, dt, *res, *impl_->model);
  if (inserted && impl_->disk.enabled()) {
    if (!impl_->disk.store(key, *res).ok()) {
      std::lock_guard<std::mutex> lk(impl_->mu);
      ++impl_->counters.disk_errors;
    }
  }
  return *res;
}

const core::RunOutput& ExperimentEngine::run_traced(const core::Workload& w,
                                                    core::Variant v,
                                                    const core::TestCase& tc,
                                                    int scale,
                                                    sim::Tracer& tracer) {
  const std::string key = cell_key(w.name(), v, tc, scale, opts_.model);
  core::RunOptions opts;
  opts.tracer = &tracer;
  // A traced run always executes, so it is always a "compute" cell pair;
  // the span open/close events it emits nest inside this cell_start.
  const bool scoped = telemetry::bus().enabled();
  if (scoped) emit_cell_start(key);
  const auto t0 = std::chrono::steady_clock::now();
  hw::ScopedSample hw_scope;
  core::RunOutput out = w.run(v, tc, opts);
  const hw::HwSample hw_sample = hw_scope.stop();
  const double dt = seconds_since(t0);
  const core::RunOutput* res = nullptr;
  bool inserted = false;
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    auto [it, ins] = impl_->cells.try_emplace(key, nullptr);
    // A memoized cell is identical to the traced re-run (deterministic
    // per-cell RNG); keep the existing entry so outstanding references
    // stay valid.
    if (ins) {
      it->second = std::make_unique<core::RunOutput>(std::move(out));
      impl_->record(w, v, tc, scale, key, hw_sample);
      ++impl_->counters.misses;
    } else {
      // Re-running a memoized cell for its spans is not a cache miss;
      // count it separately so warm-cache profiling reports honestly.
      ++impl_->counters.traced_reruns;
    }
    // Like exec_wall_s, hw totals accrue for every execution that really
    // happened — including traced re-runs of memoized cells.
    impl_->add_hw(hw_sample);
    impl_->counters.exec_wall_s += dt;
    impl_->counters.max_cell_wall_s =
        std::max(impl_->counters.max_cell_wall_s, dt);
    inserted = ins;
    res = it->second.get();
  }
  if (scoped) emit_cell_finish(key, "compute", dt, *res, *impl_->model);
  if (inserted && impl_->disk.enabled()) {
    if (!impl_->disk.store(key, *res).ok()) {
      std::lock_guard<std::mutex> lk(impl_->mu);
      ++impl_->counters.disk_errors;
    }
  }
  return *res;
}

std::vector<Cell> ExperimentEngine::expand(const Plan& p) {
  std::vector<Cell> cells;
  std::unordered_set<std::string> seen;

  std::vector<const core::Workload*> ws;
  if (p.workloads.empty()) {
    for (const auto& w : suite()) ws.push_back(w.get());
  } else {
    for (const auto& name : p.workloads) {
      if (const auto* w = workload(name)) ws.push_back(w);
    }
  }

  for (const auto* w : ws) {
    const auto avail = core::available_variants(*w);
    std::vector<core::Variant> vs;
    if (p.variants.empty()) {
      vs = avail;
    } else {
      for (auto v : p.variants) {
        if (std::find(avail.begin(), avail.end(), v) != avail.end())
          vs.push_back(v);
      }
    }
    const auto cases = w->cases(p.scale);
    std::vector<std::size_t> idx;
    switch (p.cases) {
      case CaseSet::All:
        for (std::size_t i = 0; i < cases.size(); ++i) idx.push_back(i);
        break;
      case CaseSet::Representative:
        if (w->representative_case() < cases.size())
          idx.push_back(w->representative_case());
        break;
      case CaseSet::Explicit:
        for (std::size_t i : p.case_indices)
          if (i < cases.size()) idx.push_back(i);
        break;
    }
    for (std::size_t ci : idx) {
      for (auto v : vs) {
        Cell c;
        c.workload = w;
        c.variant = v;
        c.test_case = cases[ci];
        c.scale = p.scale;
        c.key = cell_key(w->name(), v, cases[ci], p.scale, opts_.model);
        if (seen.insert(c.key).second) cells.push_back(std::move(c));
      }
    }
  }
  return cells;
}

std::size_t ExperimentEngine::execute(const Plan& p) {
  return execute(expand(p));
}

std::size_t ExperimentEngine::execute(const std::vector<Cell>& cells) {
  if (telemetry::bus().enabled()) {
    telemetry::Event e;
    e.kind = telemetry::EventKind::PlanStart;
    e.count = cells.size();
    e.detail = opts_.model;  // which device-model backend this plan runs under
    telemetry::bus().emit(std::move(e));
  }
  // Wrap a cell's execution so any exception is typed with the cell that
  // failed — identically on the serial and the pool path.
  auto run_cell = [&](const Cell& c) {
    try {
      run(*c.workload, c.variant, c.test_case, c.scale);
    } catch (const EngineError&) {
      throw;
    } catch (const std::exception& e) {
      throw EngineError(c.key, e.what());
    } catch (...) {
      throw EngineError(c.key, "unknown exception");
    }
  };
  const std::size_t jobs = static_cast<std::size_t>(std::max(1, opts_.jobs));
  if (jobs <= 1 || cells.size() <= 1) {
    try {
      for (const auto& c : cells) run_cell(c);
    } catch (...) {
      // A failed run must still leave a usable event log and timeline:
      // flush every sink before the EngineError reaches the caller.
      telemetry::bus().flush();
      throw;
    }
    return cells.size();
  }
  std::atomic<std::size_t> next{0};
  std::mutex err_mu;
  std::exception_ptr first_error;
  // Cubie-Flight: the pool workers are fresh threads with no thread-local
  // trace context, so capture the submitting thread's (the serve worker
  // handling the request, or a traced bench) and re-install it in each —
  // every cell and span event then carries the requester's trace id.
  const telemetry::TraceContext trace_ctx = telemetry::current_trace_context();
  // An exception escaping a thread's start function would std::terminate
  // the process. Capture the first failure, drain the queue so the other
  // workers finish their in-flight cell and exit, join, then rethrow.
  auto worker = [&]() {
    telemetry::TraceScope trace_scope(trace_ctx);
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= cells.size()) return;
      try {
        run_cell(cells[i]);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lk(err_mu);
          if (!first_error) first_error = std::current_exception();
        }
        next.store(cells.size());  // drain: no worker picks up new cells
        return;
      }
    }
  };
  std::vector<std::thread> pool;
  const std::size_t n = std::min(jobs, cells.size());
  pool.reserve(n);
  for (std::size_t t = 0; t < n; ++t) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
  if (first_error) {
    // Same contract as the serial path: sinks see a complete, flushed
    // stream of everything that ran before the failure.
    telemetry::bus().flush();
    std::rethrow_exception(first_error);
  }
  return cells.size();
}

sim::KernelProfile proxy_profile(core::Variant v, const core::TestCase& tc) {
  sim::KernelProfile p;
  double work = 2.0;
  for (long d : tc.dims) work *= static_cast<double>(d > 1 ? d : 1);
  // Operand-footprint proxy: pairwise dimension products (a GEMM's three
  // FP64 matrices are m*k + k*n + m*n elements), falling back to the
  // dimensions themselves for 1-D cases.
  double elems = 0.0;
  if (tc.dims.size() >= 2) {
    for (std::size_t i = 0; i < tc.dims.size(); ++i)
      for (std::size_t j = i + 1; j < tc.dims.size(); ++j)
        elems += static_cast<double>(tc.dims[i] > 1 ? tc.dims[i] : 1) *
                 static_cast<double>(tc.dims[j] > 1 ? tc.dims[j] : 1);
  } else {
    for (long d : tc.dims) elems += static_cast<double>(d > 1 ? d : 1);
  }
  if (elems <= 0.0) elems = 1.0;
  if (v == core::Variant::TC || v == core::Variant::CCE) {
    p.tc_flops = work;
  } else {
    p.cc_flops = work;
  }
  p.dram_bytes = 8.0 * elems;
  p.warp_instructions = work / 32.0;
  p.threads = elems;
  p.launches = 1;
  p.useful_flops = work;
  return p;
}

double ExperimentEngine::modeled_cell_cost_s(const core::Workload& w,
                                             core::Variant v,
                                             const core::TestCase& tc,
                                             int scale) {
  const std::string key = cell_key(w.name(), v, tc, scale, opts_.model);
  sim::KernelProfile profile;
  bool have_real = false;
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    if (auto it = impl_->cells.find(key); it != impl_->cells.end()) {
      profile = it->second->profile;
      have_real = true;
    }
  }
  if (!have_real) profile = proxy_profile(v, tc);
  return impl_->model->predict(profile).time_s;
}

std::vector<MaterializedCell> ExperimentEngine::materialized() const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  return impl_->order;
}

EngineCounters ExperimentEngine::counters() const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  return impl_->counters;
}

report::EngineStats ExperimentEngine::stats() const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  report::EngineStats s;
  s.cells = static_cast<double>(impl_->cells.size());
  s.memo_hits = static_cast<double>(impl_->counters.memo_hits);
  s.disk_hits = static_cast<double>(impl_->counters.disk_hits);
  s.coalesced_hits = static_cast<double>(impl_->counters.coalesced_hits);
  s.misses = static_cast<double>(impl_->counters.misses);
  s.traced_reruns = static_cast<double>(impl_->counters.traced_reruns);
  s.disk_errors = static_cast<double>(impl_->counters.disk_errors);
  s.exec_wall_s = impl_->counters.exec_wall_s;
  s.max_cell_wall_s = impl_->counters.max_cell_wall_s;
  return s;
}

report::HwStats ExperimentEngine::hw_stats() const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  report::HwStats s;
  const EngineCounters& c = impl_->counters;
  if (c.hw_cells == 0 || !c.hw_total.available) {
    s.available = false;
    s.unavailable_reason = hw::available()
                               ? "no computed cells sampled"
                               : hw::unavailable_reason();
    return s;
  }
  s.available = true;
  s.cells = static_cast<double>(c.hw_cells);
  s.cycles = static_cast<double>(c.hw_total.cycles);
  s.instructions = static_cast<double>(c.hw_total.instructions);
  s.cache_references = static_cast<double>(c.hw_total.cache_references);
  s.cache_misses = static_cast<double>(c.hw_total.cache_misses);
  s.task_clock_s = c.hw_total.task_clock_s;
  return s;
}

bool ExperimentEngine::active() const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  return impl_->counters.memo_hits + impl_->counters.disk_hits +
             impl_->counters.coalesced_hits + impl_->counters.misses +
             impl_->counters.traced_reruns >
         0;
}

}  // namespace cubie::engine
