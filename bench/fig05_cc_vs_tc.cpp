// Figure 5: speedups of the CC replacements over the TC versions - the
// ablation isolating the compute unit under identical data structures and
// algorithms (paper Section 6.2). Values below 1.0 mean the CUDA-core
// replacement is slower.

#include "bench_util.hpp"

int main() {
  using namespace cubie;
  const auto rows = benchutil::speedup_sweep(
      core::Variant::CC, core::Variant::TC, common::scale_divisor());
  benchutil::print_speedup_table(
      "=== Figure 5: CC speedup over TC (case geomean; <1 = slower) ===",
      rows);
  return 0;
}
