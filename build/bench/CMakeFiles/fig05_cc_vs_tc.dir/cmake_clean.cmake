file(REMOVE_RECURSE
  "CMakeFiles/fig05_cc_vs_tc.dir/fig05_cc_vs_tc.cpp.o"
  "CMakeFiles/fig05_cc_vs_tc.dir/fig05_cc_vs_tc.cpp.o.d"
  "fig05_cc_vs_tc"
  "fig05_cc_vs_tc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_cc_vs_tc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
