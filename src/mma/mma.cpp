#include "mma/mma.hpp"

#include "mma/simd.hpp"
#include "sim/calibration.hpp"

namespace cubie::mma {

namespace {
// One m8n8k4 MMA = 8*8 outputs x 4 FMAs = 256 FMAs = 512 FLOPs.
constexpr double kFlopsPerDmma = 2.0 * kM * kN * kK;
// One b1 m8n8k128 MMA = 8*8 outputs x 128 (AND) + popc-accumulate; on the
// tensor pipe this is 8*8*128 AND ops + as many popc-adds. A CUDA-core
// replacement executes the same math with 32-bit word instructions
// (AND + popc per word), i.e. 8*8*4 word pairs.
constexpr double kBitopsPerBmma = 2.0 * 8 * 8 * 128;
constexpr double kWordopsPerBmma = 2.0 * 8 * 8 * 4;
}  // namespace

void Context::count_dmma() {
  if (pipe_ == Pipe::TensorCore) {
    prof_->tc_flops += kFlopsPerDmma;
    prof_->warp_instructions += sim::cal::kTcMmaInstructions;
  } else {
    prof_->cc_flops += kFlopsPerDmma;
    prof_->warp_instructions += sim::cal::kCcMmaInstructions;
  }
}

void Context::dmma_m8n8k4(const double* a, const double* b, const double* c,
                          double* d) {
  count_dmma();
  // Vectorized across the 64 independent (i,j) accumulators, serial over k
  // (bit-exact vs. the scalar chain; see mma/simd.hpp).
  simd::kernels().dmma_m8n8k4(a, b, c, d);
}

void Context::dmma_m8n8k4_acc(const double* a, const double* b,
                              double* c_inout) {
  dmma_m8n8k4(a, b, c_inout, c_inout);
}

void Context::dmma_m8n8k8_acc(const double* a, const double* b,
                              double* c_inout) {
  // Split k into two m8n8k4 instructions: A columns 0..3 with B rows 0..3,
  // then A columns 4..7 with B rows 4..7, chained through the accumulator.
  double a_lo[kM * kK], a_hi[kM * kK];
  for (int i = 0; i < kM; ++i) {
    for (int k = 0; k < kK; ++k) {
      a_lo[i * kK + k] = a[i * 8 + k];
      a_hi[i * kK + k] = a[i * 8 + k + 4];
    }
  }
  const double* b_lo = b;        // rows 0..3 of the 8x8 B
  const double* b_hi = b + 32;   // rows 4..7
  dmma_m8n8k4_acc(a_lo, b_lo, c_inout);
  dmma_m8n8k4_acc(a_hi, b_hi, c_inout);
}

void Context::bmma_m8n8k128_and_popc_acc(const std::uint32_t* a_words,
                                         const std::uint32_t* b_words,
                                         std::uint32_t* d) {
  if (pipe_ == Pipe::TensorCore) {
    prof_->tc_bitops += kBitopsPerBmma;
    prof_->warp_instructions += sim::cal::kTcMmaInstructions;
  } else {
    prof_->cc_intops += kWordopsPerBmma;
    prof_->warp_instructions += kWordopsPerBmma / kWarpSize;
  }
  simd::kernels().bmma_m8n8k128_acc(a_words, b_words, d);
}

void Context::load_global(double bytes) {
  prof_->dram_bytes += bytes;
  // A fully-coalesced warp load moves 32 lanes x 8 B = 256 B per instruction.
  prof_->warp_instructions += bytes / 256.0;
}

void Context::store_global(double bytes) {
  prof_->dram_bytes += bytes;
  prof_->warp_instructions += bytes / 256.0;
}

void Context::load_shared(double bytes) {
  prof_->smem_bytes += bytes;
  prof_->warp_instructions += bytes / 256.0;
}

void Context::store_shared(double bytes) {
  prof_->smem_bytes += bytes;
  prof_->warp_instructions += bytes / 256.0;
}

void Context::cc_fma(double count) {
  prof_->cc_flops += 2.0 * count;
  prof_->warp_instructions += count / kWarpSize;
}

void Context::cc_flop(double count) {
  prof_->cc_flops += count;
  prof_->warp_instructions += count / kWarpSize;
}

void Context::cc_int(double count) {
  prof_->cc_intops += count;
  prof_->warp_instructions += count / kWarpSize;
}

void Context::launch(double threads) {
  prof_->launches += 1;
  // `threads` models resident parallelism; keep the max over launches so a
  // multi-phase kernel is judged by its widest phase.
  if (threads > prof_->threads) prof_->threads = threads;
}

}  // namespace cubie::mma
