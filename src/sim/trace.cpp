#include "sim/trace.hpp"

#include "telemetry/telemetry.hpp"

#include <atomic>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace cubie::sim {

namespace {
std::atomic<std::size_t> g_spans_recorded{0};
}  // namespace

KernelProfile profile_delta(const KernelProfile& a, const KernelProfile& b) {
  KernelProfile d;
  d.tc_flops = a.tc_flops - b.tc_flops;
  d.cc_flops = a.cc_flops - b.cc_flops;
  d.tc_bitops = a.tc_bitops - b.tc_bitops;
  d.cc_intops = a.cc_intops - b.cc_intops;
  d.dram_bytes = a.dram_bytes - b.dram_bytes;
  d.smem_bytes = a.smem_bytes - b.smem_bytes;
  d.warp_instructions = a.warp_instructions - b.warp_instructions;
  d.threads = a.threads - b.threads;
  d.launches = a.launches - b.launches;
  d.useful_flops = a.useful_flops - b.useful_flops;
  d.mem_eff = a.mem_eff;
  d.pipe_eff = a.pipe_eff;
  return d;
}

KernelProfile TraceNode::exclusive() const {
  KernelProfile e = inclusive;
  for (const auto& c : children) {
    const KernelProfile d = profile_delta(e, c.inclusive);
    const double mem = e.mem_eff, pipe = e.pipe_eff;
    e = d;
    e.mem_eff = mem;
    e.pipe_eff = pipe;
  }
  return e;
}

std::size_t TraceNode::tree_size() const {
  std::size_t n = 1;
  for (const auto& c : children) n += c.tree_size();
  return n;
}

void Tracer::clear() {
  roots_.clear();
  stack_.clear();
}

std::size_t Tracer::total_spans_recorded() { return g_spans_recorded.load(); }

TraceNode* Tracer::open(std::string name) {
  std::vector<TraceNode>& siblings =
      stack_.empty() ? roots_ : stack_.back()->children;
  siblings.push_back(TraceNode{});
  TraceNode* node = &siblings.back();
  node->name = std::move(name);
  stack_.push_back(node);
  g_spans_recorded.fetch_add(1, std::memory_order_relaxed);
  // Cubie-Scope: mirror the span onto the telemetry bus so trace sinks can
  // nest it under the enclosing engine cell. Only reached with a live
  // tracer, and gated again on installed sinks, so the bench sweeps'
  // untraced hot paths never pay for it.
  if (auto& bus = telemetry::bus(); bus.enabled()) {
    telemetry::Event e;
    e.kind = telemetry::EventKind::SpanOpen;
    e.name = node->name;
    bus.emit(std::move(e));
  }
  return node;
}

void Tracer::close(TraceNode* node) {
  // Tolerate out-of-order destruction by unwinding to the closed node.
  while (!stack_.empty()) {
    TraceNode* top = stack_.back();
    stack_.pop_back();
    // Implicitly closed intermediates emit too, keeping open/close events
    // balanced for every sink (their wall_s is still the default 0).
    if (auto& bus = telemetry::bus(); bus.enabled()) {
      telemetry::Event e;
      e.kind = telemetry::EventKind::SpanClose;
      e.name = top->name;
      e.wall_s = top->wall_s;
      bus.emit(std::move(e));
    }
    if (top == node) break;
  }
}

long peak_rss_kb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
#if defined(__APPLE__)
    return static_cast<long>(ru.ru_maxrss / 1024);  // bytes on macOS
#else
    return static_cast<long>(ru.ru_maxrss);  // KiB on Linux
#endif
  }
#endif
  return 0;
}

void Span::finish() {
  if (!tracer_ || !node_) {
    tracer_ = nullptr;
    return;
  }
  const auto t1 = std::chrono::steady_clock::now();
  node_->wall_s = std::chrono::duration<double>(t1 - t0_).count();
  node_->inclusive = profile_delta(*profile_, start_);
  node_->peak_rss_kb = peak_rss_kb();
  tracer_->close(node_);
  tracer_ = nullptr;
  node_ = nullptr;
}

}  // namespace cubie::sim
