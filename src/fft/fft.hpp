#pragma once
// FFT substrate: CPU serial ground truth, a Stockham autosort FFT standing
// in for the cuFFT baseline, the O(n^2) DFT used by tests, and the radix-4
// butterfly expressed as the real 8x8 matrix consumed by the tcFFT-style
// tensor-core implementation (complex 4x4 DFT lifted to its real form).

#include <complex>
#include <span>
#include <vector>

#include "mma/constants.hpp"

namespace cubie::fft {

using cplx = std::complex<double>;

// O(n^2) reference DFT (forward, no normalization). Test oracle only.
std::vector<cplx> dft_naive(std::span<const cplx> x);

// CPU serial ground truth: recursive radix-2 decimation-in-time FFT with a
// fixed, deterministic operation order (the paper's "naive CPU serial
// implementation"). n must be a power of two.
std::vector<cplx> fft_serial(std::span<const cplx> x);

// Stockham autosort radix-2 FFT: the structural stand-in for the cuFFT
// baseline (out-of-place, no bit reversal, different accumulation order than
// fft_serial - the source of the baseline's distinct rounding in Table 6).
std::vector<cplx> fft_stockham(std::span<const cplx> x);

// Inverse FFT via conjugation (normalized by 1/n), for the examples.
std::vector<cplx> ifft_serial(std::span<const cplx> x);

// The 4-point DFT as a real 8x8 matrix acting on packed
// [re0, im0, re1, im1, re2, im2, re3, im3] vectors:
//   y = F4r * x  with  F4r[2i..2i+1][2j..2j+1] = [[Re w, -Im w], [Im w, Re w]],
//   w = exp(-2 pi i * i * j / 4).
// This is the constant operand tcFFT feeds to the tensor cores.
mma::Mat8x8 radix4_butterfly_real();

// Is n a power of two (and >= 1)?
bool is_pow2(std::size_t n);

}  // namespace cubie::fft
