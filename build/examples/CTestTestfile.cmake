# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[example_quickstart]=] "/root/repo/build/examples/quickstart" "SpMV")
set_tests_properties([=[example_quickstart]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_cg_solver]=] "/root/repo/build/examples/cg_solver" "1024" "100")
set_tests_properties([=[example_cg_solver]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_heat_diffusion]=] "/root/repo/build/examples/heat_diffusion" "64" "20")
set_tests_properties([=[example_heat_diffusion]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_graph_analytics]=] "/root/repo/build/examples/graph_analytics" "rmat")
set_tests_properties([=[example_graph_analytics]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_spectral_filter]=] "/root/repo/build/examples/spectral_filter" "1024" "0.1")
set_tests_properties([=[example_spectral_filter]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_amg_poisson]=] "/root/repo/build/examples/amg_poisson" "32" "20")
set_tests_properties([=[example_amg_poisson]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
