# Empty dependencies file for table06_accuracy.
# This may be replaced when dependencies are built.
