#!/usr/bin/env bash
# Integration test for bench_diff, run from ctest:
#   test_bench_diff.sh <cubie-binary> <bench_diff-binary>
# Generates a baseline report, checks self-comparison passes, then injects
# a 2x time_ms regression and checks bench_diff flags it with exit 1.
set -eu

CUBIE="$1"
DIFF="$2"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

"$CUBIE" profile GEMM --scale 16 --json "$WORK/base.json" > /dev/null

python3 - "$WORK/base.json" "$WORK/slow.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    d = json.load(f)
for r in d["records"]:
    if "time_ms" in r["metrics"]:
        r["metrics"]["time_ms"] *= 2.0  # inject a 100% time regression
with open(sys.argv[2], "w") as f:
    json.dump(d, f)
EOF

# Identical reports: no regression, exit 0.
"$DIFF" "$WORK/base.json" "$WORK/base.json"

# 2x slower candidate: must exit 1 (and only 1 - not a usage/parse error).
set +e
"$DIFF" "$WORK/base.json" "$WORK/slow.json" --tol 0.10
rc=$?
set -e
if [ "$rc" -ne 1 ]; then
  echo "FAIL: expected exit 1 on injected regression, got $rc" >&2
  exit 1
fi

# The regression direction matters: the same pair reversed is an
# improvement, which must not fail the comparison.
"$DIFF" "$WORK/slow.json" "$WORK/base.json" --tol 0.10

echo "bench_diff integration test OK"
