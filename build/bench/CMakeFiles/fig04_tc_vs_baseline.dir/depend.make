# Empty dependencies file for fig04_tc_vs_baseline.
# This may be replaced when dependencies are built.
