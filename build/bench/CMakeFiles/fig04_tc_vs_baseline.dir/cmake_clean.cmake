file(REMOVE_RECURSE
  "CMakeFiles/fig04_tc_vs_baseline.dir/fig04_tc_vs_baseline.cpp.o"
  "CMakeFiles/fig04_tc_vs_baseline.dir/fig04_tc_vs_baseline.cpp.o.d"
  "fig04_tc_vs_baseline"
  "fig04_tc_vs_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_tc_vs_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
