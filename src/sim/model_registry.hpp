#pragma once
// Name-keyed registry of device-model backends, mirroring the workload
// registry (core::make_workload): a constexpr name -> factory table, case-
// insensitive lookup, and a did-you-mean helper for CLI/bench flag errors.
//
// The backend name is an experiment axis: it is threaded through engine
// cell keys (so memoized results from one backend are never served to
// another), RunSpec/protocol v1, and every bench's --model flag.

#include "sim/device.hpp"
#include "sim/model.hpp"

#include <memory>
#include <string>
#include <vector>

namespace cubie::sim {

// Construct the named backend over `spec` (which must outlive the model).
// Case-insensitive; nullptr for an unknown name.
std::unique_ptr<DeviceModel> make_device_model(const std::string& name,
                                               const DeviceSpec& spec);

// Registered backend names, in registry order.
std::vector<std::string> model_backend_names();

// One-line description of a backend ("" for an unknown name).
std::string model_backend_description(const std::string& name);

// The registered name closest to `name` by edit distance, for did-you-mean
// diagnostics ("" when nothing is plausibly close).
std::string suggest_model_backend(const std::string& name);

}  // namespace cubie::sim
