#pragma once
// CacheSimModel ("cachesim"): the event-driven device-model backend.
//
// Where the analytic backend prices DRAM time as
//     t_dram = dram_bytes / (dram_bw * mem_eff)
// with mem_eff a fixed calibration hint, this backend *simulates* the
// memory hierarchy: it synthesizes a deterministic line-granularity address
// stream from the profile's counted traffic and access-pattern descriptor
// (KernelProfile::access / working_set_bytes), replays it through a
// configurable set-associative LRU L2 (src/sim/cachesim/cache.hpp), and
// prices the DRAM stage from the simulated hit rate:
//
//     t_dram = max( miss_bytes / dram_bw,          — DRAM bandwidth
//                   hit_bytes  / l2_bw,            — L2 bandwidth
//                   miss_lines * latency / MLP )   — latency / overlap
//
// Every other resource term (tensor/cuda pipes, smem, issue, parallel
// efficiency, launch overhead, power) follows the analytic equation, so
// backend deltas isolate exactly the memory-hierarchy question the paper's
// memory-bound claims rest on ("Can Tensor Cores Benefit Memory-Bound
// Kernels? (No!)"): once hit rates are simulated instead of assumed, both
// pipe variants of a DRAM-bound kernel see the same memory time and the TC
// speedup collapses to ~1x.
//
// predict() is a deterministic pure function of (spec, config, profile) —
// no wall clock, no global RNG — so cachesim cells memoize and parallelize
// exactly like analytic ones (pinned by tests/test_model_backends.cpp).

#include "sim/cachesim/cache.hpp"
#include "sim/model.hpp"

#include <cstddef>
#include <cstdint>

namespace cubie::sim {

struct CacheSimConfig {
  // L2 geometry; size 0 derives the capacity from DeviceSpec::l2_bytes.
  std::size_t l2_bytes = 0;
  int l2_ways = 16;
  int line_bytes = 128;
  // L2 service bandwidth for hits; 0 derives 4x the spec's DRAM bandwidth.
  double l2_bw = 0.0;
  // Loaded DRAM latency; 0 derives DeviceSpec::dram_latency_s.
  double dram_latency_s = 0.0;
  // Outstanding-miss overlap cap per SM (memory-level parallelism).
  double mlp_per_sm = 48.0;
  // Safety valves: the replayed stream and the modeled footprint are capped
  // so a huge profile cannot make predict() unbounded; the measured hit
  // rate is extrapolated to the full counted traffic.
  std::size_t max_sim_accesses = std::size_t{1} << 18;
  std::size_t max_working_set_lines = std::size_t{1} << 21;
};

class CacheSimModel final : public DeviceModel {
 public:
  explicit CacheSimModel(const DeviceSpec& spec, CacheSimConfig cfg = {});

  std::string name() const override { return "cachesim"; }
  Prediction predict(const KernelProfile& prof) const override;

  const CacheSimConfig& config() const { return cfg_; }

  // The simulated replay alone (exposed for the ablation_cache sweep and
  // the unit tests; predict() uses exactly this).
  struct StreamStats {
    std::uint64_t accesses = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    double hit_rate = 0.0;  // hits / accesses; 0 for an empty stream
  };
  StreamStats simulate(const KernelProfile& prof) const;

 private:
  CacheSimConfig cfg_;
};

}  // namespace cubie::sim
