# Empty dependencies file for fig07_edp.
# This may be replaced when dependencies are built.
