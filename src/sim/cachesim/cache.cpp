#include "sim/cachesim/cache.hpp"

#include <algorithm>

namespace cubie::sim::cachesim {
namespace {

// Largest power of two <= n (and >= 1), so set indexing is a mask.
std::size_t floor_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p * 2 <= n) p *= 2;
  return p;
}

}  // namespace

SetAssocCache::SetAssocCache(const CacheConfig& cfg) : cfg_(cfg) {
  cfg_.line_bytes = std::max(1, cfg_.line_bytes);
  cfg_.ways = std::max(1, cfg_.ways);
  const std::size_t lines =
      std::max<std::size_t>(1, cfg_.size_bytes / cfg_.line_bytes);
  const std::size_t sets = floor_pow2(std::max<std::size_t>(
      1, lines / static_cast<std::size_t>(cfg_.ways)));
  sets_.assign(sets, std::vector<Way>(static_cast<std::size_t>(cfg_.ways)));
}

bool SetAssocCache::access(std::uint64_t addr) {
  const std::uint64_t line =
      addr / static_cast<std::uint64_t>(cfg_.line_bytes);
  const std::size_t set =
      static_cast<std::size_t>(line & (sets_.size() - 1));
  const std::uint64_t tag = line / sets_.size();
  ++clock_;
  auto& ways = sets_[set];
  for (auto& w : ways) {
    if (w.valid && w.tag == tag) {
      w.stamp = clock_;
      ++hits_;
      return true;
    }
  }
  // Miss: fill an invalid way, else evict the least recently used one.
  Way* victim = &ways[0];
  for (auto& w : ways) {
    if (!w.valid) {
      victim = &w;
      break;
    }
    if (w.stamp < victim->stamp) victim = &w;
  }
  victim->valid = true;
  victim->tag = tag;
  victim->stamp = clock_;
  ++misses_;
  return false;
}

}  // namespace cubie::sim::cachesim
