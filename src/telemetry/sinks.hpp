#pragma once
// Cubie-Scope sinks: the bundled consumers of the telemetry event bus and
// the RAII plumbing that installs them for one run.
//
//   JsonlSink       --events FILE   deterministic JSONL event log
//   ChromeTraceSink --trace-out F   Chrome trace_event timeline (Perfetto)
//   ProgressSink    --progress      live stderr progress line
//   MemorySink      (tests)         in-memory event capture
//
// install() builds the sinks a command line asked for and registers them on
// the global bus; the returned SinkSet removes (and flushes) them when it
// goes out of scope, so a bench binary's sinks never outlive its run. See
// telemetry.hpp for the bus and docs/OBSERVABILITY.md for the file formats.

#include "common/report.hpp"
#include "telemetry/telemetry.hpp"

#include <cstddef>
#include <fstream>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace cubie::telemetry {

// One event as a compact JSON object — the JSONL line form. Fields that do
// not apply to the event's kind are omitted (never emitted as sentinel
// values); see docs/OBSERVABILITY.md for the per-kind field table.
report::Json event_to_json(const Event& e);

// ---------------------------------------------------------------------------
// JsonlSink: one compact JSON object per line. The first line is a header
// record carrying the event schema version and the producing tool; every
// following line is one event, in global sequence order. Deterministic: a
// serial rerun of the same work produces byte-identical output once the
// wall-clock fields (t_s, wall_s) are masked.
class JsonlSink : public Sink {
 public:
  JsonlSink(const std::string& path, const std::string& tool);

  bool ok() const { return static_cast<bool>(os_); }
  void on_event(const Event& e) override;
  void flush() override;

 private:
  std::ofstream os_;
};

// ---------------------------------------------------------------------------
// ChromeTraceSink: accumulates the event stream and renders it as a Chrome
// trace_event JSON document on flush. Engine cells become complete ("X")
// slices in per-thread lanes; traced spans nest beneath their cell's slice
// (same lane, contained interval); cache outcomes and check verdicts become
// thread-scoped instant events. Load the file in chrome://tracing or
// https://ui.perfetto.dev. flush() rewrites the whole document and may be
// called mid-stream (EngineError unwind) — open slices are closed at the
// last seen timestamp so the timeline stays loadable.
class ChromeTraceSink : public Sink {
 public:
  explicit ChromeTraceSink(std::string path);

  void on_event(const Event& e) override;
  void flush() override;

 private:
  std::string path_;
  std::vector<Event> events_;
};

// ---------------------------------------------------------------------------
// ProgressSink: a live one-line progress display for long --jobs N runs.
// plan_start events accumulate the total; each cell_finish updates cells
// done, the cache-hit share, and an EWMA per-cell wall time that feeds the
// ETA (scaled by the worker count). Output is throttled and rewritten in
// place with '\r'; flush() finishes the line.
class ProgressSink : public Sink {
 public:
  // `os` must outlive the sink (stderr in production, a stringstream in
  // tests). `jobs` scales the ETA to the pool width.
  ProgressSink(std::ostream& os, std::string label, int jobs);

  void on_event(const Event& e) override;
  void flush() override;

 private:
  void print_line(double now_s, bool force);

  std::ostream* os_;
  std::string label_;
  int jobs_ = 1;
  std::size_t total_ = 0;
  std::size_t done_ = 0;
  std::size_t hits_ = 0;
  double ewma_wall_s_ = 0.0;
  double last_print_s_ = -1.0;
  std::size_t line_width_ = 0;
  bool wrote_ = false;
};

// ---------------------------------------------------------------------------
// MemorySink: captures every event for inspection. Read events() only after
// the instrumented work has finished (delivery happens under the bus mutex,
// but the accessor does not take it).
class MemorySink : public Sink {
 public:
  void on_event(const Event& e) override {
    std::lock_guard<std::mutex> lk(mu_);
    events_.push_back(e);
  }
  // A snapshot copy: safe to call while other threads are still emitting
  // (the Cubie-Serve tests poll mid-run).
  std::vector<Event> events() const {
    std::lock_guard<std::mutex> lk(mu_);
    return events_;
  }
  void clear() {
    std::lock_guard<std::mutex> lk(mu_);
    events_.clear();
  }

 private:
  mutable std::mutex mu_;
  std::vector<Event> events_;
};

// ---------------------------------------------------------------------------
// SinkSet: RAII ownership of sinks installed on the global bus. Destruction
// flushes and removes them; moving transfers ownership.
class SinkSet {
 public:
  SinkSet() = default;
  SinkSet(SinkSet&&) noexcept = default;
  SinkSet& operator=(SinkSet&& other) noexcept {
    if (this != &other) {
      release();
      sinks_ = std::move(other.sinks_);
    }
    return *this;
  }
  SinkSet(const SinkSet&) = delete;
  SinkSet& operator=(const SinkSet&) = delete;
  ~SinkSet() { release(); }

  void add(std::shared_ptr<Sink> s);
  bool empty() const { return sinks_.empty(); }
  void flush();
  // Flush and deregister every owned sink from the bus.
  void release();

 private:
  std::vector<std::shared_ptr<Sink>> sinks_;
};

// The sinks a command line asked for (--events / --trace-out / --progress /
// --metrics-out).
struct SinkConfig {
  std::string events_path;   // JSONL event log ("" = off)
  std::string trace_path;    // Chrome trace_event file ("" = off)
  std::string metrics_path;  // Prometheus text snapshot on flush ("" = off)
  bool progress = false;     // live stderr progress line
  // --progress is suppressed when stderr is not a TTY (CI logs would
  // accumulate one carriage-return frame per repaint); --progress=force
  // keeps the line regardless.
  bool progress_force = false;
  int jobs = 1;              // pool width, for the progress ETA
  std::string tool;          // producing binary, for headers and labels
};

// Build and register the configured sinks. Unopenable output paths are
// reported on stderr and skipped rather than failing the run.
SinkSet install(const SinkConfig& cfg);

// Whether the live progress line should render: progress requested, and
// stderr is a TTY (or force overrides the check). Exposed for the CLI's
// flag parsing tests.
bool progress_enabled(bool progress, bool force);

}  // namespace cubie::telemetry
