# Empty compiler generated dependencies file for cubie_tests.
# This may be replaced when dependencies are built.
