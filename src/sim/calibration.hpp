#pragma once
// Calibration constants for the analytic performance model.
//
// The model follows the classic bottleneck (roofline-style) formulation:
//   t = max(t_tensor, t_cuda, t_dram, t_smem, t_issue) / parallel_eff
//       + launches * launch_overhead
// Structural quantities (FLOPs per pipe, bytes, instructions, threads) are
// *counted* during functional execution. The constants below are the
// efficiency factors every analytic GPU model needs; each one is annotated
// with the paper observation that motivates its value. They are deliberately
// concentrated in this single header so the calibration surface is explicit
// and auditable (DESIGN.md Section 5.4).

namespace cubie::sim::cal {

// ---------------------------------------------------------------------------
// Instruction-issue costs of one m8n8k4 FP64 MMA worth of work.
// ---------------------------------------------------------------------------
// A tensor-core MMA is a single warp instruction (plus its operand loads,
// counted separately by the kernels).
inline constexpr double kTcMmaInstructions = 1.0;
// The CUDA-core replacement keeps the identical per-lane data layout
// (Section 5.2): each lane owns 2 accumulator elements and must gather its
// a/b operands from the owning lanes, i.e. 8 FMA steps + ~16 shuffle /
// select instructions per warp.
inline constexpr double kCcMmaInstructions = 24.0;

// ---------------------------------------------------------------------------
// Pipe efficiencies (fraction of peak FLOP rate a variant sustains).
// ---------------------------------------------------------------------------
// Large, regular tensor-core GEMM tiles without CUTLASS-level pipelining.
// Figure 9: Cubie's GEMM sits in the compute-bound region but below the
// 66.9 TFLOPS ceiling because advanced software pipelining is excluded.
inline constexpr double kTcGemmEff = 0.70;
// The cudaSample matrixMul baseline is a teaching kernel (single-buffered
// 32x32 tiles, no ILP tuning); it sustains well under the cuBLAS-class
// fraction. Figure 4: TC GEMM beats it by ~2.5-3x.
inline constexpr double kCcSampleGemmEff = 0.55;
// Dependent scalar-FMA chains emulating small MMA blocks run far below the
// CUDA-core peak: the 8-FMA dependency chain plus operand shuffles stalls
// the pipe. Figure 5: CC delivers <40-50% of TC even though the peak ratio
// alone is 2x.
inline constexpr double kCcEmulationEff = 0.42;
// Baseline dense vector kernels (cuBLAS-class tiling) on CUDA cores.
inline constexpr double kCcLibraryEff = 0.80;
// Small-block tensor-core MMAs with operands resident in registers
// (Scan / Reduction / DASP / AmgT): dependency chains are short and the
// constant operands never leave the register file, so the sustained
// fraction is higher than a naive small-kernel estimate. Calibrated so the
// Quadrant II/III TC kernels stay ahead of CUB on B200's reduced FP64 MMU
// peak (Figure 4).
inline constexpr double kTcSmallBlockEff = 0.55;
// CC-E keeps only essential scalar work but on small irregular blocks;
// Figure 6: CC-E of Scan/Reduction reaches only 0.34-0.79x of TC.
inline constexpr double kCcEssentialEff = 0.50;

// ---------------------------------------------------------------------------
// Achieved DRAM bandwidth fractions.
// ---------------------------------------------------------------------------
// MMU-adapted layouts access memory in dense 8x4 / 8x8 tiles, which are
// fully coalesced. Observation 8: TC versions approach the bandwidth limit.
inline constexpr double kMemEffTcLayout = 0.92;
// Vendor-library dense streaming kernels (cuFFT, CUB, cuBLAS GEMV).
inline constexpr double kMemEffLibrary = 0.78;
// Irregular CSR-style access with per-row indirection (cuSPARSE SpMV /
// SpGEMM, Gunrock BFS). Figure 9: baselines sit well below the bandwidth
// ceiling.
inline constexpr double kMemEffIrregular = 0.45;
// Straightforward stencil / grid kernels with partial reuse (DRStencil).
inline constexpr double kMemEffGrid = 0.62;
// CC replacements keep the MMU data layout but serialize each MMA into
// dependent scalar chains, cutting the number of loads in flight; the
// achieved bandwidth drops with the lost memory-level parallelism. This is
// the "additional degradation" of Section 6.2 beyond the 2x peak ratio.
inline constexpr double kMemEffCcEmulation = 0.60;
// For the constant-operand kernels (Scan/Reduction) the CC replacement
// also has to materialize the constant matrices per lane, further reducing
// sustained bandwidth (Figure 5: Quadrant II/III CC lands below 40-45%).
inline constexpr double kMemEffCcSmall = 0.40;
// CC-E GEMV gathers x per scalar lane instead of per 8x4 block: slightly
// less coalesced than the MMA layout (Figure 6: GEMV CC-E slightly slower).
inline constexpr double kMemEffCceGemv = 0.85;

// ---------------------------------------------------------------------------
// Baseline-library pipe efficiencies for kernels with specialized vendor
// implementations.
// ---------------------------------------------------------------------------
// cuFFT is heavily tuned; the paper finds the TC FFT *loses* to cuFFT
// because butterfly patterns map poorly onto MMAs (Section 6.1).
inline constexpr double kCuFftEff = 0.85;
// tcFFT-style MMA FFT: twiddle/radix matrices occupy MMA slots with zeros.
inline constexpr double kTcFftEff = 0.30;
// CUB block scan / reduce: warp-shuffle based, latency-bound at small sizes.
inline constexpr double kCubEff = 0.55;
// CUB-style block-synchronous two-pass kernels sustain a lower bandwidth
// fraction than pure streaming (barriers + multi-pass traffic); the TC scan
// and reduction beat them by 1.3-1.8x (Figure 4, Quadrants II-III).
inline constexpr double kMemEffCub = 0.60;
// A fully random 4-8 B probe still moves a 32 B DRAM sector; push-BFS level
// checks and similar gather/scatter patterns pay this sector cost, which is
// precisely why the bitmap slice-set layout wins (Figure 4, BFS 2.6-3.0x).
inline constexpr double kRandomProbeBytes = 32.0;
// Fully scattered single-word accesses (push-BFS level updates) achieve a
// small fraction of peak DRAM bandwidth even after the sector cost.
inline constexpr double kMemEffScatter = 0.18;
// Hash-table SpGEMM traffic: bank-conflicted probes and atomic insertions
// interleave with the streaming reads (Figure 4: the AmgT TC SpGEMM beats
// cuSPARSE by 2.5-3.2x).
inline constexpr double kMemEffHash = 0.38;

// ---------------------------------------------------------------------------
// Parallelism saturation.
// ---------------------------------------------------------------------------
// Fraction of max resident threads needed to saturate the device. Modern
// GPUs reach near-peak bandwidth/FLOPs at modest occupancy thanks to ILP and
// memory-level parallelism, so the knee sits low; below it, throughput
// degrades with sqrt(threads). Drives the small-case rolloff visible in
// every Figure 3 subplot.
inline constexpr double kSaturationFraction = 0.02;
// Floor on the parallel efficiency so tiny kernels remain launch-overhead
// dominated rather than collapsing to zero throughput.
inline constexpr double kMinParallelEff = 0.02;

}  // namespace cubie::sim::cal
