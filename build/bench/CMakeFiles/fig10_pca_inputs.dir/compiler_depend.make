# Empty compiler generated dependencies file for fig10_pca_inputs.
# This may be replaced when dependencies are built.
