// Scan workload (Quadrant II): inclusive prefix sum.
//
// TC: the Dakkak et al. segmented scan lifted to FP64. Each 64-element
// chunk is viewed as a row-major 8x8 matrix X and scanned with three MMAs
// against constant operands (never loaded from memory):
//   T1 = X * U        (U upper-triangular ones)   -> row-wise prefix sums
//   T2 = SL * X       (SL strictly-lower ones)    -> sums of preceding rows
//   Y  = T1 + T2 * J  (J all ones)                -> full chunk scan
// Chunk carries are scanned within the block and added back; blocks are
// independent (CUB BlockScan semantics - the Table 2 "size" parameter is
// the block size and the grid covers the whole array).
// CC: identical math on the CUDA-core pipe. CC-E: only the essential scalar
// operations, but arranged in the same row/column order as the MMA variant
// (hence identical numerics to TC, as Table 6 reports for Scan).
// Baseline: CUB BlockScan proxy - Kogge-Stone warp scans + warp offsets.

#include "core/kernels.hpp"

#include "common/rng.hpp"
#include "mma/constants.hpp"
#include "mma/mma.hpp"
#include "sim/calibration.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

namespace cubie::core {
namespace {

namespace scal = cubie::sim::cal;
constexpr std::size_t kChunk = 64;

// Total array length processed; the Table 2 "size" parameter is the block
// size, the grid covers the whole array (CUB BlockScan benchmarking style).
std::size_t total_elems(int scale_divisor) {
  return static_cast<std::size_t>(4 * 1024 * 1024) / static_cast<std::size_t>(scale_divisor);
}

// One 64-element chunk scan via the three-MMA scheme. `x` and `y` are the
// chunk in row-major 8x8 form. Returns the chunk total.
double scan_chunk_mma(mma::Context& ctx, const double* x, double* y) {
  double t1[64] = {};
  ctx.dmma_m8n8k8_acc(x, mma::kUpperOnes.data(), t1);   // X * U
  double t2[64] = {};
  ctx.dmma_m8n8k8_acc(mma::kStrictLowerOnes.data(), x, t2);  // SL * X
  // Y = T1 + T2 * J (accumulate the third MMA directly into T1).
  ctx.dmma_m8n8k8_acc(t2, mma::kAllOnes.data(), t1);
  for (int i = 0; i < 64; ++i) y[i] = t1[i];
  return t1[63];
}

// The essential-scalar equivalent with the same operation order:
// row prefix sums, column-major sums of preceding rows, then the add.
double scan_chunk_essential(mma::Context& ctx, const double* x, double* y) {
  ctx.cc_flop(8 * 7);    // row prefixes
  ctx.cc_flop(8 * 7 + 8 * 7);  // column sums + row-offset accumulation
  ctx.cc_flop(64);       // final add
  double t1[64];
  for (int r = 0; r < 8; ++r) {
    // Mirror the MMA's FMA chain: k-major with 1.0 coefficients.
    for (int c = 0; c < 8; ++c) {
      double acc = 0.0;
      for (int k = 0; k <= c; ++k) acc = std::fma(x[r * 8 + k], 1.0, acc);
      t1[r * 8 + c] = acc;
    }
  }
  double t2[8];  // per-row offset = sum over columns of sums of prior rows
  for (int r = 0; r < 8; ++r) {
    double col_sums[8];
    for (int c = 0; c < 8; ++c) {
      double acc = 0.0;
      for (int k = 0; k < r; ++k) acc = std::fma(1.0, x[k * 8 + c], acc);
      col_sums[c] = acc;
    }
    double acc = 0.0;
    for (int c = 0; c < 8; ++c) acc = std::fma(col_sums[c], 1.0, acc);
    t2[r] = acc;
  }
  for (int r = 0; r < 8; ++r)
    for (int c = 0; c < 8; ++c) y[r * 8 + c] = t1[r * 8 + c] + t2[r];
  return y[63];
}

class ScanWorkload final : public Workload {
 public:
  std::string name() const override { return "Scan"; }
  Quadrant quadrant() const override { return Quadrant::II; }
  std::string dwarf() const override { return "MapReduce"; }
  std::string baseline_name() const override { return "CUB BlockScan v2.7.0"; }

  std::vector<TestCase> cases(int s) const override {
    std::vector<TestCase> cs;
    for (long block : {64L, 128L, 256L, 512L, 1024L}) {
      cs.push_back({"block=" + std::to_string(block),
                    {block, static_cast<long>(total_elems(s))},
                    ""});
    }
    return cs;
  }

  RunOutput run(Variant v, const TestCase& tc,
                const RunOptions& opts) const override {
    const std::size_t block = static_cast<std::size_t>(tc.dims[0]);
    const std::size_t n = static_cast<std::size_t>(tc.dims[1]) / block * block;
    RunOutput out;
    sim::Span total(opts.tracer, "Scan/" + variant_name(v), out.profile);
    sim::Span setup(opts.tracer, "setup", out.profile);
    const auto x = common::random_vector(n, 31);
    setup.finish();
    mma::Context ctx(v == Variant::TC ? mma::Pipe::TensorCore
                                      : mma::Pipe::CudaCore,
                     out.profile);
    out.values.assign(n, 0.0);

    sim::Span kernel(opts.tracer, "kernel", out.profile);
    ctx.launch(static_cast<double>(n / block) * 256.0);
    ctx.load_global(static_cast<double>(n) * 8.0);
    ctx.store_global(static_cast<double>(n) * 8.0);

    if (v == Variant::Baseline) {
      run_cub_proxy(x, out.values, block, ctx);
      out.profile.pipe_eff = scal::kCubEff;
      out.profile.mem_eff = scal::kMemEffCub;
    } else {
      run_chunked(x, out.values, block, ctx, v == Variant::CCE);
      out.profile.pipe_eff = v == Variant::TC ? scal::kTcSmallBlockEff
                             : v == Variant::CC ? scal::kCcEmulationEff
                                                : scal::kCcEssentialEff;
      out.profile.mem_eff =
          v == Variant::TC ? scal::kMemEffTcLayout : scal::kMemEffCcSmall;
    }
    out.profile.useful_flops = static_cast<double>(n);  // one add per element
    // Cachesim descriptor: a pure streaming pass (input + prefix output).
    out.profile.access = sim::AccessPattern::Dense;
    out.profile.working_set_bytes = static_cast<double>(n) * 2.0 * 8.0;
    return out;
  }

  std::vector<double> reference(const TestCase& tc) const override {
    const std::size_t block = static_cast<std::size_t>(tc.dims[0]);
    const std::size_t n = static_cast<std::size_t>(tc.dims[1]) / block * block;
    const auto x = common::random_vector(n, 31);
    std::vector<double> y(n, 0.0);
    for (std::size_t b = 0; b < n; b += block) {
      double acc = 0.0;
      for (std::size_t i = b; i < b + block; ++i) {
        acc = acc + x[i];
        y[i] = acc;
      }
    }
    return y;
  }

 private:
  // TC / CC / CC-E: per-block chunk scans + intra-block carry propagation.
  // Blocks are independent, matching the CUB BlockScan baseline.
  static void run_chunked(const std::vector<double>& x, std::vector<double>& y,
                          std::size_t block, mma::Context& ctx,
                          bool essential) {
    const std::size_t n = x.size();
    for (std::size_t b = 0; b < n; b += block) {
      const std::size_t blk_len = std::min(block, n - b);
      double offset = 0.0;
      for (std::size_t base = b; base < b + blk_len; base += kChunk) {
        double xin[kChunk] = {};
        const std::size_t len = std::min(kChunk, b + blk_len - base);
        std::copy(x.begin() + static_cast<std::ptrdiff_t>(base),
                  x.begin() + static_cast<std::ptrdiff_t>(base + len), xin);
        double yout[kChunk];
        const double total = essential ? scan_chunk_essential(ctx, xin, yout)
                                       : scan_chunk_mma(ctx, xin, yout);
        ctx.cc_flop(static_cast<double>(len) + 1.0);  // offset adds + carry
        for (std::size_t i = 0; i < len; ++i)
          y[base + i] = offset == 0.0 ? yout[i] : yout[i] + offset;
        offset += total;
      }
    }
  }

  // Baseline: Kogge-Stone scans over 32-element warps, then per-block warp
  // offsets, then block offsets (CUB's two-level structure).
  static void run_cub_proxy(const std::vector<double>& x,
                            std::vector<double>& y, std::size_t block,
                            mma::Context& ctx) {
    const std::size_t n = x.size();
    y = x;
    ctx.cc_flop(static_cast<double>(n) * 5.0 /*log2(32)*/ +
                static_cast<double>(n) * 2.0);
    ctx.load_shared(static_cast<double>(n) * 5.0 * 8.0);
    for (std::size_t w = 0; w < n; w += 32) {
      const std::size_t len = std::min<std::size_t>(32, n - w);
      for (std::size_t stride = 1; stride < len; stride *= 2) {
        for (std::size_t i = len; i-- > stride;) {
          y[w + i] += y[w + i - stride];
        }
      }
    }
    // Warp offsets within each block; blocks stay independent (BlockScan).
    for (std::size_t b = 0; b < n; b += block) {
      const std::size_t blk_len = std::min(block, n - b);
      double warp_offset = 0.0;
      for (std::size_t w = 0; w < blk_len; w += 32) {
        const std::size_t len = std::min<std::size_t>(32, blk_len - w);
        const double total = y[b + w + len - 1];
        if (warp_offset != 0.0)
          for (std::size_t i = 0; i < len; ++i) y[b + w + i] += warp_offset;
        warp_offset += total;
      }
    }
  }
};

}  // namespace

WorkloadPtr make_scan() { return std::make_unique<ScanWorkload>(); }

}  // namespace cubie::core
