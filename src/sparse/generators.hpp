#pragma once
// Synthetic sparse-matrix generators.
//
// The paper evaluates SpMV/SpGEMM on five SuiteSparse instances (Table 4).
// Those files are not available offline, so this module provides structural
// stand-ins: for each named instance a generator reproduces the published
// shape (rows, nnz, nnz/row distribution, symmetry, block structure) of its
// matrix family at a configurable scale. DESIGN.md documents the
// substitution; values are LINPACK-style uniform in (-2, 2) exactly as the
// paper initializes its random operands.

#include "sparse/csr.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace cubie::sparse {

// ---- Generic structural families -------------------------------------------

// Banded matrix: each row has entries within +-half_bandwidth of the
// diagonal, each present with probability fill_prob. Always has a diagonal.
Csr gen_banded(int n, int half_bandwidth, double fill_prob, bool symmetric,
               std::uint32_t seed);

// FEM-style blocked matrix: dense block_dim x block_dim blocks placed on the
// block diagonal and at blocks_per_row random band positions (raefsky3 /
// bcsstk39 family).
Csr gen_block_fem(int n, int block_dim, int blocks_per_row, int band,
                  std::uint32_t seed);

// 4D lattice operator in the QCD family (conf5_4-8x8-10): every site couples
// to itself and its 8 lattice neighbours with dof x dof dense couplings,
// giving a constant row degree like the original.
Csr gen_lattice4d(int lx, int ly, int lz, int lt, int dof, std::uint32_t seed);

// Uniformly random matrix with a fixed number of nonzeros per row.
Csr gen_random_uniform(int n, int nnz_per_row, std::uint32_t seed);

// Power-law row-degree matrix (web/social family) with given average degree.
Csr gen_powerlaw(int n, double avg_degree, double alpha, std::uint32_t seed);

// ---- Table 4 named instances -------------------------------------------------

struct NamedMatrix {
  std::string name;   // SuiteSparse name (e.g. "raefsky3")
  std::string group;  // SuiteSparse group
  Csr matrix;         // synthetic structural stand-in
};

// All five Table 4 instances, dimensions divided by `scale_divisor`.
std::vector<std::string> table4_names();
NamedMatrix make_table4_matrix(const std::string& name, int scale_divisor);

// ---- PCA corpus (Figure 10b) ---------------------------------------------------
// A corpus of small matrices spanning the structural families above, used as
// the stand-in for "the 2893 matrices in SuiteSparse".
std::vector<NamedMatrix> synthetic_matrix_corpus(int count, std::uint32_t seed);

}  // namespace cubie::sparse
