#pragma once
// LINPACK-style pseudo-random number generation (Lehmer linear congruential
// generator). The paper (Section 8) initializes inputs with pseudo-random
// values in (-2, 2) produced by an LCG following the LINPACK benchmark; this
// module reproduces that scheme so numerical-error experiments are
// deterministic and comparable across variants.

#include <cstdint>
#include <vector>

namespace cubie::common {

// Minimal-standard Lehmer LCG: x <- a*x mod m with a = 16807, m = 2^31 - 1.
// Deterministic for a given seed; no global state.
class Lcg {
 public:
  explicit Lcg(std::uint32_t seed = 1) : state_(seed == 0 ? 1 : seed) {}

  // Next raw value in [1, 2^31 - 2].
  std::uint32_t next_raw();

  // Uniform double in [0, 1).
  double next_unit();

  // Uniform double in (-2, 2), the LINPACK-style input distribution used by
  // the paper for all synthetic operands.
  double next_linpack();

  // Uniform integer in [0, bound).
  std::uint32_t next_below(std::uint32_t bound);

 private:
  std::uint32_t state_;
};

// Fill `n` doubles distributed in (-2, 2).
std::vector<double> random_vector(std::size_t n, std::uint32_t seed);

// Fill `n` doubles in [lo, hi).
std::vector<double> random_vector(std::size_t n, double lo, double hi,
                                  std::uint32_t seed);

}  // namespace cubie::common
