file(REMOVE_RECURSE
  "CMakeFiles/ablation_flexible_mmu.dir/ablation_flexible_mmu.cpp.o"
  "CMakeFiles/ablation_flexible_mmu.dir/ablation_flexible_mmu.cpp.o.d"
  "ablation_flexible_mmu"
  "ablation_flexible_mmu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_flexible_mmu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
