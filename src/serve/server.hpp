#pragma once
// Cubie-Serve daemon: a long-running experiment service around one warm
// ExperimentEngine. Clients speak the line-delimited JSON protocol
// (serve/protocol.hpp) over a Unix-domain socket or localhost TCP.
//
// Concurrency model:
//   * one reader thread per connection parses requests and admits work;
//   * control commands (ping / stats / metrics / shutdown) are answered
//     inline by the reader — they must work even when the queue is full,
//     which is exactly when a scrape matters most;
//   * plan commands (run / suite / check / sleep) pass a **bounded
//     admission queue**: when `queue_limit` requests are already waiting,
//     new ones are rejected with the typed "overloaded" error instead of
//     queueing unboundedly — backpressure is explicit and immediate;
//   * `workers` worker threads drain the queue. A request's deadline is
//     checked when it is dequeued: if it already expired while waiting,
//     the worker answers "deadline_exceeded" without executing;
//   * identical concurrent plans coalesce inside the engine: N requests
//     for the same cells trigger exactly one execution, and the N-1
//     waiters are visible as `coalesced_hits` in the engine stats block
//     every response carries.
//
// Shutdown (SIGINT or a "shutdown" request) is a graceful drain:
// request_shutdown() is async-signal-safe (atomic flag + self-pipe); the
// accept loop then stops admitting, workers finish every queued and
// in-flight request, late arrivals get "shutting_down", and serve()
// returns once all threads are joined.
//
// The request lifecycle is published on the Cubie-Scope bus
// (request_accepted / queued / started / finished / rejected), so
// --events, --trace-out, and --progress work for a serving process
// exactly as they do for a bench sweep. See docs/SERVING.md.
//
// Cubie-Flight (docs/OBSERVABILITY.md): every request runs under a
// TraceScope — the client-supplied `trace` id, or a daemon-minted one —
// so engine cell and span events correlate back to the request that
// caused them. An always-on FlightRecorderSink keeps the last
// `flight_capacity` events (Cmd::Flight dumps it over the wire; the CLI
// adds a SIGUSR2 file dump; an EngineError unwind auto-dumps), and a
// SlowlogSink captures per-request timelines for slow / failed requests
// when `slowlog_path` is set.

#include "engine/engine.hpp"
#include "serve/protocol.hpp"
#include "telemetry/flight.hpp"
#include "telemetry/metrics_registry.hpp"
#include "telemetry/slowlog.hpp"

#include <cstddef>
#include <memory>
#include <string>

namespace cubie::serve {

struct ServerOptions {
  // Endpoint: a Unix-domain socket path, or (when empty) localhost TCP on
  // `tcp_port` (0 = pick an ephemeral port; see Server::tcp_port()).
  std::string socket_path;
  int tcp_port = -1;
  int workers = 2;       // worker threads draining the admission queue
  int queue_limit = 16;  // waiting requests beyond which we reject
  engine::EngineOptions engine;  // jobs / cache_dir for the warm engine
  // Cubie-Flight: ring capacity for the always-on flight recorder
  // (0 disables it — for A/B-ing its cost), the file EngineError unwinds
  // (and the CLI's SIGUSR2 handler) dump it to, and the slowlog tail
  // capture (armed by a non-empty path; requests slower than slow_ms,
  // or failed ones, get their timeline kept — slow_ms <= 0 keeps all).
  std::size_t flight_capacity = telemetry::FlightRecorderSink::kDefaultCapacity;
  std::string flight_dump_path;
  std::string slowlog_path;
  double slow_ms = 100.0;
};

// Admission/service counters, exported by the "stats" command.
struct ServerStats {
  std::size_t connections = 0;
  std::size_t accepted = 0;   // admitted past the bounded queue
  std::size_t started = 0;    // dequeued by a worker (or answered inline)
  std::size_t completed = 0;  // responses sent for executed requests
  std::size_t rejected_overloaded = 0;
  std::size_t rejected_deadline = 0;
  std::size_t rejected_shutdown = 0;
  std::size_t bad_requests = 0;
  std::size_t max_queue_depth = 0;  // queue-depth high-watermark
  double uptime_s = 0.0;            // seconds since start() succeeded
};

// The stats wire form: the flat counters, plus a "rejections" object keyed
// by wire error code ("overloaded", "deadline_exceeded", "shutting_down",
// "bad_request") so clients need not know the flat field names.
report::Json to_json(const ServerStats& s);

class Server {
 public:
  explicit Server(ServerOptions opts);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Bind + listen + start the worker pool. False (with *error) on socket
  // failure; the options are validated here (workers/queue_limit >= 1).
  bool start(std::string* error);

  // Accept loop; blocks until a drain completes. Call start() first.
  void serve();

  // Begin a graceful drain. Async-signal-safe: sets an atomic flag and
  // writes one byte to a self-pipe the accept loop polls.
  void request_shutdown();

  // The bound TCP port (after start(); ephemeral binds resolve here).
  int tcp_port() const;
  // Human-readable endpoint ("unix:/tmp/cubie.sock", "tcp:127.0.0.1:7070").
  const std::string& endpoint() const;

  engine::ExperimentEngine& engine();
  ServerStats stats() const;

  // The Cubie-Pulse registry the daemon's MetricsSink folds events into
  // (installed on the bus by start(); the `metrics` command snapshots it).
  telemetry::MetricsRegistry& metrics_registry();

  // The Cubie-Flight recorder ring (null when flight_capacity == 0) — the
  // CLI's SIGUSR2 watcher dumps it; Cmd::Flight serves it over the wire.
  std::shared_ptr<telemetry::FlightRecorderSink> flight_recorder() const;
  // The slowlog tail-capture sink (null unless slowlog_path was set).
  std::shared_ptr<telemetry::SlowlogSink> slowlog() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace cubie::serve
