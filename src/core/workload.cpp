#include "core/workload.hpp"

namespace cubie::core {

std::string variant_name(Variant v) {
  switch (v) {
    case Variant::Baseline: return "Baseline";
    case Variant::TC: return "TC";
    case Variant::CC: return "CC";
    case Variant::CCE: return "CC-E";
  }
  return "?";
}

std::string quadrant_name(Quadrant q) {
  switch (q) {
    case Quadrant::I: return "I";
    case Quadrant::II: return "II";
    case Quadrant::III: return "III";
    case Quadrant::IV: return "IV";
  }
  return "?";
}

std::vector<Variant> all_variants() {
  return {Variant::Baseline, Variant::TC, Variant::CC, Variant::CCE};
}

std::vector<Variant> available_variants(const Workload& w) {
  std::vector<Variant> vs;
  if (w.has_baseline()) vs.push_back(Variant::Baseline);
  vs.push_back(Variant::TC);
  vs.push_back(Variant::CC);
  if (w.cce_distinct()) vs.push_back(Variant::CCE);
  return vs;
}

}  // namespace cubie::core
