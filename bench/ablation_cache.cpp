// Ablation: the cachesim backend's L2 geometry. Sweeps cache capacity and
// associativity over the memory-bound representative cells and reports the
// simulated hit rate and the resulting modeled time, isolating how much of
// the "no TC win for memory-bound kernels" conclusion depends on the
// hierarchy the stream is replayed through. The sweep always prices with
// CacheSimModel directly (custom CacheSimConfig per point); --model still
// selects the backend the engine keys its cells under.

#include "bench_util.hpp"
#include "common/table.hpp"
#include "sim/cachesim/cachesim_model.hpp"

#include <iostream>
#include <string>

int main(int argc, char** argv) {
  using namespace cubie;
  auto bench = benchutil::bench_init(
      argc, argv, "ablation_cache",
      "Ablation: cachesim L2 size/associativity sweep");
  const int s = bench.scale;
  std::cout << "=== Ablation: cachesim L2 geometry (memory-bound cells, "
               "H200) ===\nSimulated L2 hit rate and modeled time per "
               "(capacity, associativity).\n\n";

  const std::size_t sizes_mb[] = {8, 16, 32, 50, 96};
  const int ways[] = {4, 8, 16};

  for (const char* name : {"GEMV", "SpMV", "Scan", "Reduction"}) {
    const auto* w = bench.engine.workload(name);
    if (!w) continue;
    const auto tc_case = w->cases(s)[w->representative_case()];
    const auto& out = bench.run(*w, core::Variant::TC, tc_case);

    common::Table t({"L2 MiB", "ways", "hit rate", "t_dram us", "time us",
                     "bound"});
    for (std::size_t mb : sizes_mb) {
      for (int wy : ways) {
        sim::CacheSimConfig cfg;
        cfg.l2_bytes = mb << 20;
        cfg.l2_ways = wy;
        const sim::CacheSimModel model(sim::h200(), cfg);
        const auto stats = model.simulate(out.profile);
        const auto pred = model.predict(out.profile);
        t.add_row({std::to_string(mb), std::to_string(wy),
                   common::fmt_double(stats.hit_rate, 3),
                   common::fmt_double(pred.t_dram * 1e6, 2),
                   common::fmt_double(pred.time_s * 1e6, 2),
                   sim::bottleneck_name(pred.bound)});
        const std::string label = tc_case.label + " l2=" +
                                  std::to_string(mb) + "MiB ways=" +
                                  std::to_string(wy);
        auto& rec = bench.record(w->name(), "TC", "H200", label);
        rec.set("l2_hit_rate", stats.hit_rate);
        rec.set("t_dram_us", pred.t_dram * 1e6);
        rec.set("time_us", pred.time_s * 1e6);
      }
    }
    std::cout << name << " / TC / " << tc_case.label << ":\n";
    t.print(std::cout);
    bench.capture(std::string("cache_") + name, t);
    std::cout << '\n';
  }

  std::cout << "Reading: memory-bound cells are streaming-dominated - hit "
               "rates move with\ncapacity only once the working set fits, "
               "and associativity is second-order;\nthe modeled time floor "
               "is DRAM bandwidth either way, which is why simulated\nhit "
               "rates leave the paper's memory-bound verdicts intact.\n";
  return bench.finish();
}
