#include "mma/simd.hpp"

#include "mma/simd_impl.hpp"

#include <atomic>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <cstring>

namespace cubie::mma::simd {

namespace {

// ---- scalar reference kernels ----------------------------------------------
// These are the pre-SIMD loop bodies, unchanged: the bit-identity tests and
// the CUBIE_FORCE_SCALAR override both resolve here.

void dmma_scalar(const double* a, const double* b, const double* c,
                 double* d) {
  double out[64];
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) {
      double acc = c[i * 8 + j];
      for (int k = 0; k < 4; ++k) {
        acc = std::fma(a[i * 4 + k], b[k * 8 + j], acc);
      }
      out[i * 8 + j] = acc;
    }
  }
  for (int i = 0; i < 64; ++i) d[i] = out[i];
}

void bmma_scalar(const std::uint32_t* a_words, const std::uint32_t* b_words,
                 std::uint32_t* d) {
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) {
      std::uint32_t acc = 0;
      for (int w = 0; w < 4; ++w) {
        acc += static_cast<std::uint32_t>(
            std::popcount(a_words[i * 4 + w] & b_words[j * 4 + w]));
      }
      d[i * 8 + j] += acc;
    }
  }
}

void hmma_scalar(const float* a_h, const float* b_h, float* acc) {
  for (int i = 0; i < 16; ++i) {
    for (int j = 0; j < 16; ++j) {
      float s = acc[i * 16 + j];
      for (int k = 0; k < 16; ++k) {
        s = std::fmaf(a_h[i * 16 + k], b_h[k * 16 + j], s);
      }
      acc[i * 16 + j] = s;
    }
  }
}

void lanes_fma32_scalar(const double* a, const double* b, double* c) {
  for (int l = 0; l < 32; ++l) c[l] = std::fma(a[l], b[l], c[l]);
}

constexpr Kernels kScalar = {dmma_scalar, bmma_scalar, hmma_scalar,
                             lanes_fma32_scalar};

// ---- dispatch ---------------------------------------------------------------

struct Active {
  const Kernels* kernels = &kScalar;
  Isa isa = Isa::Scalar;
  bool env_forced_scalar = false;
};

bool env_force_scalar() {
  const char* v = std::getenv("CUBIE_FORCE_SCALAR");
  return v != nullptr && v[0] != '\0' && std::strcmp(v, "0") != 0;
}

Active detect() {
  Active a;
  a.env_forced_scalar = env_force_scalar();
  if (a.env_forced_scalar) return a;
#if defined(__x86_64__) || defined(_M_X64)
#if defined(CUBIE_SIMD_AVX512)
  if (__builtin_cpu_supports("avx512f")) {
    a.kernels = avx512_kernels();
    a.isa = Isa::Avx512;
    return a;
  }
#endif
#if defined(CUBIE_SIMD_AVX2)
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    a.kernels = avx2_kernels();
    a.isa = Isa::Avx2;
    return a;
  }
#endif
#endif
  return a;
}

// Resolved once on first use; force_scalar_for_testing republishes. The
// table pointer is read on every MMA issue, so keep it a single relaxed
// atomic load (the pointed-to tables are immutable).
std::atomic<const Active*> g_active{nullptr};

const Active& active() {
  const Active* a = g_active.load(std::memory_order_acquire);
  if (a == nullptr) {
    static Active detected;  // process-lifetime storage for the real table
    detected = detect();
    const Active* expected = nullptr;
    g_active.compare_exchange_strong(expected, &detected,
                                     std::memory_order_acq_rel);
    a = g_active.load(std::memory_order_acquire);
  }
  return *a;
}

}  // namespace

const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::Avx512: return "avx512";
    case Isa::Avx2: return "avx2";
    case Isa::Scalar: break;
  }
  return "scalar";
}

const Kernels& kernels() { return *active().kernels; }

Isa active_isa() { return active().isa; }

bool scalar_forced_by_env() { return active().env_forced_scalar; }

bool compiled_with_simd() {
#if defined(CUBIE_SIMD_AVX2) || defined(CUBIE_SIMD_AVX512)
  return true;
#else
  return false;
#endif
}

const Kernels& scalar_kernels() { return kScalar; }

const Kernels* compiled_kernels(Isa isa) {
  switch (isa) {
    case Isa::Scalar:
      return &kScalar;
    case Isa::Avx2:
#if defined(CUBIE_SIMD_AVX2)
      if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma"))
        return avx2_kernels();
#endif
      return nullptr;
    case Isa::Avx512:
#if defined(CUBIE_SIMD_AVX512)
      if (__builtin_cpu_supports("avx512f")) return avx512_kernels();
#endif
      return nullptr;
  }
  return nullptr;
}

void force_scalar_for_testing(bool on) {
  static Active forced;  // distinct storage so auto-detect state is kept
  if (on) {
    forced = Active{};  // scalar table, Isa::Scalar
    forced.env_forced_scalar = env_force_scalar();
    g_active.store(&forced, std::memory_order_release);
  } else {
    static Active redetected;
    redetected = detect();
    g_active.store(&redetected, std::memory_order_release);
  }
}

}  // namespace cubie::mma::simd
