#include "telemetry/flight.hpp"

#include "telemetry/sinks.hpp"

#include <algorithm>
#include <fstream>
#include <ostream>

namespace cubie::telemetry {

FlightRecorderSink::FlightRecorderSink(std::size_t capacity)
    : cap_(std::max<std::size_t>(1, capacity)) {
  ring_.reserve(cap_);
}

void FlightRecorderSink::on_event(const Event& e) {
  std::lock_guard<std::mutex> lk(mu_);
  if (ring_.size() < cap_) {
    ring_.push_back(e);
  } else {
    ring_[total_ % cap_] = e;
  }
  ++total_;
}

std::size_t FlightRecorderSink::total_seen() const {
  std::lock_guard<std::mutex> lk(mu_);
  return total_;
}

std::vector<Event> FlightRecorderSink::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<Event> out;
  out.reserve(ring_.size());
  if (ring_.size() < cap_) {
    out = ring_;  // not yet wrapped: already oldest-first
  } else {
    const std::size_t head = total_ % cap_;  // oldest slot
    for (std::size_t i = 0; i < cap_; ++i)
      out.push_back(ring_[(head + i) % cap_]);
  }
  return out;
}

std::size_t FlightRecorderSink::dump(std::ostream& os) const {
  const auto events = snapshot();
  for (const Event& e : events) os << event_to_json(e).dump(-1) << '\n';
  return events.size();
}

bool FlightRecorderSink::dump_file(const std::string& path) const {
  std::ofstream os(path, std::ios::trunc);
  if (!os) return false;
  dump(os);
  return static_cast<bool>(os);
}

}  // namespace cubie::telemetry
