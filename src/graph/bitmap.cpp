#include "graph/bitmap.hpp"

#include <algorithm>
#include <bit>
#include <map>

namespace cubie::graph {

double BitmapSliceSet::bit_fill() const {
  if (blocks.empty()) return 0.0;
  double set_bits = 0.0;
  for (const auto& b : blocks)
    for (std::uint32_t w : b.bits) set_bits += std::popcount(w);
  return set_bits / (static_cast<double>(blocks.size()) * kSliceRows * kSliceCols);
}

BitmapSliceSet slice_set_from_graph(const Graph& g) {
  BitmapSliceSet s;
  s.n = g.n;
  s.block_rows = (g.n + kSliceRows - 1) / kSliceRows;
  s.block_cols = (g.n + kSliceCols - 1) / kSliceCols;
  s.row_ptr.assign(static_cast<std::size_t>(s.block_rows) + 1, 0);

  // Edge (u -> v) contributes bit (u) in destination row (v):
  // block row v/8, local row v%8, block col u/128, bit u%128.
  std::map<int, std::size_t> slot;  // block_col -> index (per block row)
  // Bucket edges by destination block row first.
  std::vector<std::vector<std::pair<int, int>>> by_block_row(
      static_cast<std::size_t>(s.block_rows));
  for (int u = 0; u < g.n; ++u) {
    for (int p = g.offsets[static_cast<std::size_t>(u)]; p < g.offsets[static_cast<std::size_t>(u) + 1]; ++p) {
      const int v = g.neighbors[static_cast<std::size_t>(p)];
      by_block_row[static_cast<std::size_t>(v / kSliceRows)].emplace_back(u, v);
    }
  }
  for (int br = 0; br < s.block_rows; ++br) {
    slot.clear();
    const std::size_t base = s.blocks.size();
    for (auto [u, v] : by_block_row[static_cast<std::size_t>(br)]) {
      const int bc = u / kSliceCols;
      auto [it, inserted] = slot.emplace(bc, 0);
      if (inserted) {
        it->second = s.blocks.size();
        SliceBlock blk;
        blk.block_col = bc;
        s.blocks.push_back(blk);
      }
      SliceBlock& blk = s.blocks[it->second];
      const int lr = v % kSliceRows;
      const int lc = u % kSliceCols;
      blk.bits[static_cast<std::size_t>(lr * kSliceWords + lc / 32)] |=
          (1u << (lc % 32));
    }
    // std::map iterates sorted, but insertion order above is edge order;
    // re-sort the freshly appended range by block_col for determinism.
    std::sort(s.blocks.begin() + static_cast<std::ptrdiff_t>(base), s.blocks.end(),
              [](const SliceBlock& a, const SliceBlock& b) {
                return a.block_col < b.block_col;
              });
    s.row_ptr[static_cast<std::size_t>(br) + 1] = static_cast<int>(s.blocks.size());
  }
  return s;
}

int BitVector::popcount() const {
  int c = 0;
  for (std::uint32_t w : words) c += std::popcount(w);
  return c;
}

}  // namespace cubie::graph
