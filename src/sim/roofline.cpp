#include "sim/roofline.hpp"

#include <algorithm>

namespace cubie::sim {

double Roofline::dram_roof(double ai) const { return ai * spec_->dram_bw; }

double Roofline::l1_roof(double ai) const { return ai * spec_->smem_bw; }

double Roofline::attainable(double ai) const {
  return std::min(spec_->fp64_tc_peak, dram_roof(ai));
}

RooflinePoint Roofline::point(const std::string& label,
                              const KernelProfile& prof,
                              const Prediction& pred) const {
  RooflinePoint pt;
  pt.label = label;
  pt.arithmetic_intensity = prof.arithmetic_intensity();
  pt.achieved_flops =
      pred.time_s > 0.0 ? prof.useful_flops / pred.time_s : 0.0;
  pt.attainable_flops = attainable(pt.arithmetic_intensity);
  return pt;
}

double Roofline::ridge_ai() const {
  return spec_->fp64_tc_peak / spec_->dram_bw;
}

}  // namespace cubie::sim
