#pragma once
// Shared helpers for the figure/table bench binaries: variant availability,
// suite sweeps, and formatting. Each binary stays standalone (no cross-bench
// caching) so `for b in build/bench/*; do $b; done` reproduces every figure
// from scratch.

#include "common/metrics.hpp"
#include "common/report.hpp"
#include "common/table.hpp"
#include "core/kernels.hpp"
#include "sim/model.hpp"

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

namespace cubie::benchutil {

// ---------------------------------------------------------------------------
// Shared bench command line: every fig*/table*/ablation* binary accepts
//   --json <path>   write a schema-versioned report::MetricsReport
//                   ("-" for stdout) alongside the human-readable tables
//   --scale <N>     override the CUBIE_SCALE divisor
//   --help          print usage
// and the Bench object collects records / captured tables as the binary
// computes them. finish() writes the report and is the binary's exit code.

struct Bench {
  report::MetricsReport report;
  std::string json_path;  // empty = human output only
  int scale = 1;

  report::MetricRecord& record(const std::string& workload,
                               const std::string& variant,
                               const std::string& gpu,
                               const std::string& case_label) {
    return report.add_record(workload, variant, gpu, case_label);
  }

  // Capture a printed table verbatim (cells as strings) under `name`.
  void capture(const std::string& name, const common::Table& t) {
    report.tables.push_back({name, t.header(), t.data()});
  }

  int finish() {
    if (json_path.empty()) return 0;
    if (!report.write_file(json_path)) {
      std::cerr << report.tool << ": cannot write " << json_path << "\n";
      return 1;
    }
    if (json_path != "-") {
      std::cerr << "[json report: " << json_path << "]\n";
    }
    return 0;
  }
};

inline Bench bench_init(int argc, char** argv, const std::string& tool,
                        const std::string& title) {
  Bench b;
  b.report.tool = tool;
  b.report.title = title;
  b.scale = common::scale_divisor();
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << tool << ": " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--json") {
      b.json_path = next();
    } else if (arg == "--scale") {
      b.scale = std::max(1, std::atoi(next().c_str()));
    } else if (arg == "--help" || arg == "-h") {
      std::cout << tool << ": " << title << "\n"
                << "usage: " << tool << " [--json <path>] [--scale <N>]\n";
      std::exit(0);
    } else {
      std::cerr << tool << ": unknown argument '" << arg << "'\n";
      std::exit(2);
    }
  }
  b.report.scale_divisor = b.scale;
  return b;
}

inline std::vector<core::Variant> available_variants(const core::Workload& w) {
  std::vector<core::Variant> vs;
  if (w.has_baseline()) vs.push_back(core::Variant::Baseline);
  vs.push_back(core::Variant::TC);
  vs.push_back(core::Variant::CC);
  if (w.cce_distinct()) vs.push_back(core::Variant::CCE);
  return vs;
}

// Performance metric for Figure 3: useful work rate per second. For
// floating-point workloads `useful_flops` counts FLOPs and the rate is
// FLOP/s; for non-floating-point workloads (BFS) the Workload contract
// stores traversed edges there, so the same ratio is edges/s (TEPS). The
// workload decides which convention applies via is_floating_point() —
// tests/test_benchutil.cpp pins the BFS metric to edges/s.
inline double perf_metric(const core::Workload& w,
                          const sim::KernelProfile& prof, double time_s) {
  if (time_s <= 0.0) return 0.0;
  if (!w.is_floating_point()) {
    // Workload contract: useful_flops carries the traversed-edge count for
    // non-floating-point workloads (BfsWorkload::run).
    const double traversed_edges = prof.useful_flops;
    return traversed_edges / time_s;  // TEPS
  }
  return prof.useful_flops / time_s;  // FLOP/s
}

// Unit label matching perf_metric, at giga scale (Figure 3 axis labels and
// JSON metric names).
inline std::string perf_unit(const core::Workload& w) {
  return w.is_floating_point() ? "GFLOP/s" : "GTEPS";
}

inline std::string perf_metric_name(const core::Workload& w) {
  return w.is_floating_point() ? "gflops" : "gteps";
}

// Case-averaged speedup of variant `num` over variant `den` on one device.
struct SpeedupRow {
  std::string workload;
  core::Quadrant quadrant;
  std::vector<double> per_gpu;  // indexed like sim::all_gpus()
};

inline std::vector<SpeedupRow> speedup_sweep(core::Variant num,
                                             core::Variant den,
                                             int scale_divisor) {
  std::vector<SpeedupRow> rows;
  for (const auto& w : core::make_suite()) {
    const bool have_num = num != core::Variant::Baseline || w->has_baseline();
    const bool have_den = den != core::Variant::Baseline || w->has_baseline();
    if (!have_num || !have_den) continue;
    if ((num == core::Variant::CCE || den == core::Variant::CCE) &&
        !w->cce_distinct())
      continue;
    SpeedupRow row;
    row.workload = w->name();
    row.quadrant = w->quadrant();
    const auto gpus = sim::all_gpus();
    std::vector<std::vector<double>> ratios(gpus.size());
    for (const auto& tc : w->cases(scale_divisor)) {
      const auto out_num = w->run(num, tc);
      const auto out_den = w->run(den, tc);
      for (std::size_t g = 0; g < gpus.size(); ++g) {
        const sim::DeviceModel model(sim::spec_for(gpus[g]));
        const double t_num = model.predict(out_num.profile).time_s;
        const double t_den = model.predict(out_den.profile).time_s;
        ratios[g].push_back(t_den / t_num);  // speedup of num over den
      }
    }
    for (auto& r : ratios) row.per_gpu.push_back(common::geomean(r));
    rows.push_back(std::move(row));
  }
  return rows;
}

inline void print_speedup_table(const std::string& title,
                                const std::vector<SpeedupRow>& rows) {
  std::cout << title << "\n\n";
  common::Table t({"Quadrant", "Workload", "A100", "H200", "B200"});
  for (const auto& r : rows) {
    t.add_row({core::quadrant_name(r.quadrant), r.workload,
               common::fmt_double(r.per_gpu[0], 2) + "x",
               common::fmt_double(r.per_gpu[1], 2) + "x",
               common::fmt_double(r.per_gpu[2], 2) + "x"});
  }
  t.print(std::cout);
  std::cout << "\nCSV:\n";
  t.print_csv(std::cout);
  std::cout << '\n';
}

// JSON records for a speedup sweep: one record per (workload, gpu), variant
// labeled "num/den", metric "speedup" (case geomean).
inline void record_speedup(Bench& b, core::Variant num, core::Variant den,
                           const std::vector<SpeedupRow>& rows) {
  const auto gpus = sim::all_gpus();
  const std::string variant =
      core::variant_name(num) + "/" + core::variant_name(den);
  for (const auto& r : rows) {
    for (std::size_t g = 0; g < gpus.size() && g < r.per_gpu.size(); ++g) {
      auto& rec =
          b.record(r.workload, variant, sim::gpu_name(gpus[g]), "geomean");
      rec.set("speedup", r.per_gpu[g]);
    }
  }
}

}  // namespace cubie::benchutil
