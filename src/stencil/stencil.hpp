#pragma once
// Stencil substrate: star-shaped stencils (star2d1r, star3d1r) with CPU
// serial references, plus the LoRaStencil-style separable decomposition of
// the stencil weight matrix. A star stencil's weight matrix is (numerically)
// rank-2: it splits into a vertical 3-tap pass and a horizontal 3-tap pass,
//   out = A * X + X * B,
// where A and B are tridiagonal band matrices. Tiled into 8x8 blocks, both
// passes become chains of m8n8k4 MMAs whose banded operand blocks are
// compile-time constants - the transformation that "enables memory-efficient
// data gathering and reduces computation" (paper Section 3, Observation 1).

#include "mma/constants.hpp"

#include <vector>

namespace cubie::stencil {

struct Star2D {
  double c = 0.5;   // center
  double n = 0.125; // north (row - 1)
  double s = 0.125; // south (row + 1)
  double w = 0.125; // west (col - 1)
  double e = 0.125; // east (col + 1)
};

struct Star3D {
  double c = 0.4;
  double n = 0.1, s = 0.1, w = 0.1, e = 0.1;
  double d = 0.1, u = 0.1;  // z - 1 / z + 1
};

// Serial references (zero / Dirichlet boundary: out-of-range neighbours
// contribute nothing). Grids are row-major: in[row * nx + col].
void stencil2d_serial(const Star2D& st, const std::vector<double>& in,
                      std::vector<double>& out, int ny, int nx);
// 3D grid: in[(z * ny + y) * nx + x].
void stencil3d_serial(const Star3D& st, const std::vector<double>& in,
                      std::vector<double>& out, int nz, int ny, int nx);

// FMA-ordered variants: same neighbour order but fused multiply-adds, the
// arithmetic a tuned register-reuse GPU kernel (DRStencil baseline) emits.
void stencil2d_serial_fma(const Star2D& st, const std::vector<double>& in,
                          std::vector<double>& out, int ny, int nx);
void stencil3d_serial_fma(const Star3D& st, const std::vector<double>& in,
                          std::vector<double>& out, int nz, int ny, int nx);

// --- LoRaStencil separable band blocks --------------------------------------
// A (row pass) is tridiag(n, cv, s); B (column pass) is tridiag(w, ch, e),
// with cv + ch = c (the center weight split across the passes).
// Tiling A into 8x8 blocks yields three constant block types:
//   diag block  D: tridiagonal inside the tile
//   sub block   L: single entry at (0, 7) coupling to the previous tile
//   super block U: single entry at (7, 0) coupling to the next tile
mma::Mat8x8 band_diag_block(double lower, double center, double upper);
mma::Mat8x8 band_sub_block(double lower);    // entry (0,7) = lower
mma::Mat8x8 band_super_block(double upper);  // entry (7,0) = upper

}  // namespace cubie::stencil
