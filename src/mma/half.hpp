#pragma once
// Software FP16 (IEEE binary16) and the FP16 tensor-core MMA semantics.
//
// The paper's closing discussion (Figure 12) contrasts the booming FP16 MMU
// throughput with the regressing FP64 MMU peak, and several of Cubie's
// source kernels (tcFFT, PiCTC, TCU scan/reduction) were originally FP16
// codes that the suite lifts to FP64. This module provides the FP16 side:
// round-to-nearest-even conversions and an emulated HMMA with FP32
// accumulation (the mode NVIDIA documents for mma.m16n8k16.f32.f16.f16.f32),
// so the precision consequences of staying in FP16 can be quantified
// (bench/ablation_precision).

#include "sim/profile.hpp"

#include <cstdint>

namespace cubie::mma {

// IEEE 754 binary16 stored in a uint16_t. Conversions use round-to-nearest-
// even, matching hardware __float2half behaviour.
struct Half {
  std::uint16_t bits = 0;

  Half() = default;
  static Half from_double(double v);
  double to_double() const;

  static Half infinity(bool negative = false);
  bool is_nan() const;
  bool is_inf() const;
};

// Convenience conversions.
Half to_half(double v);
double from_half(Half h);

// Round a double through FP16 precision (the storage-precision loss of an
// FP16 operand).
double round_to_half(double v);

// Emulated FP16 HMMA, 16x16x16 tile: D = A*B + C where A and B are FP16
// operands (given as doubles, rounded through FP16 on entry) and the
// accumulator C/D is FP32. Each output element accumulates its 16 products
// in FP32 with one rounding per step (k-major chain), the documented
// tensor-core FP16 mode. Counts fp16 tensor work into the profile.
//
// a: 16x16 row-major, b: 16x16 row-major, c/d: 16x16 row-major (FP32 stored
// in doubles). d may alias c.
void hmma_m16n16k16_f32acc(const double* a, const double* b, const double* c,
                           double* d, sim::KernelProfile* prof = nullptr);

// FP16 GEMM built from HMMA tiles: inputs rounded to FP16, accumulation in
// FP32, output widened to double. Dimensions need not be multiples of 16 -
// ragged edge tiles are zero-padded (fmaf(0, 0, acc) no-ops), matching how
// a WMMA kernel pads its staging buffers. The comparison target for the
// mixed-precision ablation.
void gemm_fp16_tc(int m, int n, int k, const double* a, const double* b,
                  double* c, sim::KernelProfile* prof = nullptr);

}  // namespace cubie::mma
