#pragma once
// Runtime-dispatched SIMD kernels for the MMA emulation hot path.
//
// Every TC/CC cell bottoms out in the fragment-lane FMA chains of
// mma.cpp / half.cpp / warp.cpp; this module lets those entry points run on
// AVX2 or AVX-512 hardware without changing a single output bit. The hard
// invariant is *bit-exactness against the scalar path*: each output
// element's k-major FMA chain keeps its serial order, so vectorization is
// only ever applied ACROSS the independent output accumulators of a tile
// (the 64 (i,j) cells of an m8n8k4, the 256 cells of an m16n16k16, the 32
// lanes of a warp) and NEVER across k. Both std::fma and the x86
// vfmadd* instructions are IEEE-754 correctly-rounded fused multiply-adds,
// so lane l of a vector FMA computes exactly what the scalar chain computes
// for that accumulator - including NaN/Inf propagation - and `cubie check`,
// the Table 6 goldens, and the recorded analytic-backend goldens are
// unaffected by which path ran. tests/test_simd.cpp pins this with
// randomized fragments (NaN/Inf/subnormal included) against the forced
// scalar path.
//
// Dispatch order (first available wins):
//   1. CUBIE_FORCE_SCALAR=1 in the environment -> scalar, always.
//   2. AVX-512F kernels, when compiled in and the CPU reports avx512f.
//   3. AVX2 kernels, when compiled in and the CPU reports avx2+fma.
//   4. Scalar fallback (always compiled, also the non-x86 path).
// The vector translation units are compiled with per-file ISA flags
// (-mavx2 -mfma / -mavx512f) behind the CUBIE_SIMD CMake option; the rest
// of the library keeps the default architecture, so a binary built on a
// new machine still runs on a baseline x86-64 host.

#include <cstdint>

namespace cubie::mma::simd {

enum class Isa { Scalar, Avx2, Avx512 };

const char* isa_name(Isa isa);

// The kernel table one ISA level provides. All kernels are pure functions
// of their operands (no profile counting - callers keep the event
// accounting on the scalar side of the call).
struct Kernels {
  // FP64 m8n8k4: d = c + a*b with a 8x4, b 4x8, c/d 8x8 row-major; d may
  // alias c. Per output element the k chain is the serial
  // fma(a[i][3],b[3][j], ... fma(a[i][0],b[0][j], c[i][j])).
  void (*dmma_m8n8k4)(const double* a, const double* b, const double* c,
                      double* d);
  // B1 m8n8k128: d[i][j] += popcount(A_row_i AND B_col_j) over 4 words per
  // row/column. Integer math - exactness is trivial, only speed differs.
  void (*bmma_m8n8k128_acc)(const std::uint32_t* a_words,
                            const std::uint32_t* b_words, std::uint32_t* d);
  // FP16-product / FP32-accumulator m16n16k16 tile over operands already
  // rounded to half precision (the conversion is hoisted by the caller,
  // which is value-preserving because it is a pure per-element function).
  // acc is 16x16 row-major, updated in place.
  void (*hmma_f32acc_tile)(const float* a_h, const float* b_h, float* acc);
  // 32-lane fused c[l] = fma(a[l], b[l], c[l]) - one warp-wide FMA issue of
  // the CC replacement program (warp.cpp).
  void (*lanes_fma32)(const double* a, const double* b, double* c);
};

// The active kernel table (resolved once, then cached; thread-safe).
const Kernels& kernels();

// Which ISA level the active table belongs to.
Isa active_isa();

// True when CUBIE_FORCE_SCALAR=1 was set in the environment at first
// dispatch (surfaced by `cubie list` so operators can see why the scalar
// path is running).
bool scalar_forced_by_env();

// True when at least one vector translation unit was compiled in
// (CUBIE_SIMD=ON and the compiler accepted the ISA flags).
bool compiled_with_simd();

// The always-available scalar reference table (what CUBIE_FORCE_SCALAR=1
// selects); exported so tests and micro_mma can compare against it without
// touching the process-wide dispatch.
const Kernels& scalar_kernels();

// The table for one specific ISA level, or nullptr when it was not compiled
// in or this CPU cannot run it. Lets the bit-identity tests sweep every
// runnable table (an AVX-512 host also runs the AVX2 table), not just the
// one dispatch would pick.
const Kernels* compiled_kernels(Isa isa);

// ---- test / bench hooks ----------------------------------------------------
// Pin the process-wide dispatch to the scalar table (true) or back to
// auto-detection (false). Used by the bit-identity tests and the micro_mma
// --report mode; not for production code, which should set
// CUBIE_FORCE_SCALAR in the environment instead.
void force_scalar_for_testing(bool on);

}  // namespace cubie::mma::simd
