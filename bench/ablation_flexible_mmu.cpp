// Ablation: the paper's architectural suggestion, quantified. The
// conclusion argues that "enabling architectural support for more flexible
// compute patterns will improve MMU applicability" because Quadrant II-IV
// kernels use only part of the MMA's input/output matrices (O1, O2). This
// bench prices a hypothetical flexible MMU that executes only the useful
// lanes of each MMA (e.g. a diagonal-extract or masked-output mode):
// redundant tensor FLOPs and their operand traffic disappear, everything
// else is unchanged. The per-workload gain bounds what such hardware could
// deliver on H200-class bandwidth.

#include "bench_util.hpp"

#include <algorithm>
#include <iostream>

namespace {

using namespace cubie;

// Fraction of each MMA output tile the workload actually consumes (from the
// Figure 2 categorization; 1.0 where the full tile is used).
double output_utilization(const std::string& name) {
  if (name == "GEMV" || name == "SpMV") return 1.0 / 8.0;  // diagonal of 8x8
  if (name == "Reduction") return 1.0 / 8.0;  // one row / element
  if (name == "BFS") return 1.0 / 8.0;        // diagonal
  if (name == "SpGEMM") return 0.5;           // two of four 4x4 tiles
  return 1.0;                                 // Quadrant I + Scan
}

}  // namespace

int main(int argc, char** argv) {
  auto bench = benchutil::bench_init(
      argc, argv, "ablation_flexible_mmu",
      "Ablation: hypothetical flexible (masked-output) MMU on H200");
  const auto model = bench.model_for(sim::Gpu::H200);
  const int s = bench.scale;
  std::cout << "=== Ablation: hypothetical flexible (masked-output) MMU on "
               "H200 ===\n\n";
  common::Table t({"Workload", "output use", "TC time (us)", "flex time (us)",
                   "time gain", "TC power (W)", "flex power (W)",
                   "energy gain", "new bound"});
  bench.warm(engine::Plan::representative(s)
                 .with_variants({core::Variant::TC})
                 .with_gpus({sim::Gpu::H200}));
  for (const auto& w : bench.suite()) {
    const auto tc_case = w->cases(s)[w->representative_case()];
    const auto& tc = bench.run(*w, core::Variant::TC, tc_case);
    const auto pred = model->predict(tc.profile);

    const double util = output_utilization(w->name());
    sim::KernelProfile flex = tc.profile;
    // Masked-output MMA: only the useful lanes execute, and the operand
    // broadcast traffic for discarded columns disappears.
    flex.tc_flops *= util;
    flex.tc_bitops *= util;
    // Broadcast-operand kernels (GEMV/SpMV/BFS replicate B 8x) also shed
    // the redundant operand staging; approximate as the same factor on
    // shared-memory traffic.
    flex.smem_bytes *= std::max(util, 0.5);
    const auto pred_flex = model->predict(flex);

    t.add_row({w->name(), common::fmt_double(util, 3),
               common::fmt_double(pred.time_s * 1e6, 1),
               common::fmt_double(pred_flex.time_s * 1e6, 1),
               common::fmt_double(pred.time_s / pred_flex.time_s, 2) + "x",
               common::fmt_double(pred.avg_power_w, 0),
               common::fmt_double(pred_flex.avg_power_w, 0),
               common::fmt_double(pred.energy_j / pred_flex.energy_j, 2) + "x",
               sim::bottleneck_name(pred_flex.bound)});
    auto& rec = bench.record(w->name(), "TC", "H200", tc_case.label);
    rec.set("output_utilization", util);
    rec.set("time_gain", pred.time_s / pred_flex.time_s);
    rec.set("energy_gain", pred.energy_j / pred_flex.energy_j);
  }
  t.print(std::cout);
  bench.capture("flexible_mmu_h200", t);
  std::cout <<
      "\nReading: because the Quadrant IV kernels are bandwidth-bound, the\n"
      "flexible MMU's FLOP savings buy almost no wall-clock time on today's\n"
      "balance - the architectural win is the *energy* column: redundant\n"
      "lanes burn tensor-pipe power even when their results are discarded,\n"
      "so the masked mode cuts per-kernel energy for the partial-output\n"
      "quadrants. On a device with B200's 1:1 FP64 TC:CC ratio the masked\n"
      "mode would also start winning time, since the redundant FLOPs sit\n"
      "closer to the critical path.\n";
  return bench.finish();
}
