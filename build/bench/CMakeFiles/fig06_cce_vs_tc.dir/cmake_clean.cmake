file(REMOVE_RECURSE
  "CMakeFiles/fig06_cce_vs_tc.dir/fig06_cce_vs_tc.cpp.o"
  "CMakeFiles/fig06_cce_vs_tc.dir/fig06_cce_vs_tc.cpp.o.d"
  "fig06_cce_vs_tc"
  "fig06_cce_vs_tc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_cce_vs_tc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
