# Empty compiler generated dependencies file for ablation_no_fp64_mmu.
# This may be replaced when dependencies are built.
