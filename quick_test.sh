#!/bin/sh
# Quick test, mirroring the paper artifact's quick_test/runme.sh: evaluates
# the four representative workloads (SpMV, Reduction, Scan, FFT) and
# produces their performance, power, and accuracy results in a few minutes.
set -e

OUT=quick_test_results
mkdir -p "$OUT"

cmake -B build -G Ninja >/dev/null
cmake --build build >/dev/null

CLI=./build/tools/cubie
echo "== quick test: SpMV, Reduction, Scan, FFT =="
for w in SpMV Reduction Scan FFT; do
  echo "-- $w --"
  "$CLI" run "$w" --variant all --case rep --gpu all --errors \
      | tee "$OUT/${w}.txt"
done

echo "== power / EDP (representative cases, H200) =="
./build/bench/fig07_edp | tee "$OUT/edp.txt" | tail -6

echo "== accuracy =="
./build/bench/table06_accuracy | tee "$OUT/all_error.txt" | tail -12

echo "== done; outputs in $OUT/ =="
