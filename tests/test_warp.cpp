// Lane-level CC replacement: the per-lane shuffle+FMA program must be
// bit-identical to the emulated DMMA, and its instruction count must match
// the calibration constant's order of magnitude.

#include "common/rng.hpp"
#include "mma/mma.hpp"
#include "mma/warp.hpp"
#include "sim/calibration.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace cubie {
namespace {

TEST(Warp, FragmentLoadStoreRoundTrip) {
  common::Lcg rng(61);
  double a[32], b[32], c[64], back[64];
  for (auto& v : a) v = rng.next_linpack();
  for (auto& v : b) v = rng.next_linpack();
  for (auto& v : c) v = rng.next_linpack();
  const auto regs = mma::load_fragments(a, b, c);
  mma::store_fragments(regs, back);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(back[i], c[i]);
}

TEST(Warp, CcMmaBitIdenticalToDmma) {
  common::Lcg rng(63);
  for (int trial = 0; trial < 50; ++trial) {
    double a[32], b[32], c[64], d_mma[64], d_warp[64];
    for (auto& v : a) v = rng.next_linpack();
    for (auto& v : b) v = rng.next_linpack();
    for (auto& v : c) v = rng.next_linpack();

    sim::KernelProfile prof;
    mma::Context ctx(mma::Pipe::TensorCore, prof);
    ctx.dmma_m8n8k4(a, b, c, d_mma);

    auto regs = mma::load_fragments(a, b, c);
    mma::cc_mma_m8n8k4(regs);
    mma::store_fragments(regs, d_warp);

    for (int i = 0; i < 64; ++i) {
      ASSERT_EQ(d_mma[i], d_warp[i]) << "trial " << trial << " elem " << i;
    }
  }
}

TEST(Warp, InstructionCountMatchesCalibration) {
  double a[32] = {}, b[32] = {}, c[64] = {};
  auto regs = mma::load_fragments(a, b, c);
  const auto stats = mma::cc_mma_m8n8k4(regs);
  // 4 k-steps x (3 shuffles + 2 FMAs) = 12 shuffles + 8 FMAs = 20 warp
  // instructions; the calibration constant (24) adds accumulator-management
  // overhead on top, so it must bracket the measured count.
  EXPECT_EQ(stats.shuffle_instructions, 12u);
  EXPECT_EQ(stats.fma_instructions, 8u);
  EXPECT_GE(sim::cal::kCcMmaInstructions, static_cast<double>(stats.total()));
  EXPECT_LE(sim::cal::kCcMmaInstructions, 2.0 * static_cast<double>(stats.total()));
}

TEST(Warp, ProfileCountsLandOnCudaPipe) {
  double a[32] = {}, b[32] = {}, c[64] = {};
  auto regs = mma::load_fragments(a, b, c);
  sim::KernelProfile prof;
  mma::cc_mma_m8n8k4(regs, &prof);
  EXPECT_EQ(prof.tc_flops, 0.0);
  EXPECT_DOUBLE_EQ(prof.cc_flops, 2.0 * 32 * 8);  // 512 FLOPs, all CUDA-core
  EXPECT_DOUBLE_EQ(prof.warp_instructions, 20.0);
}

TEST(Warp, ShflSyncBroadcast) {
  std::array<double, 32> src{};
  for (int i = 0; i < 32; ++i) src[static_cast<std::size_t>(i)] = i * 1.5;
  std::array<int, 32> lane_of{};
  lane_of.fill(7);  // broadcast lane 7
  std::array<double, 32> dst{};
  mma::WarpStats stats;
  mma::shfl_sync(src, lane_of, dst, stats);
  EXPECT_EQ(stats.shuffle_instructions, 1u);
  for (double v : dst) EXPECT_EQ(v, 7 * 1.5);
}

TEST(Warp, AccumulationOrderIsKMajor) {
  // Seed a cancellation pattern that distinguishes k orders; compare with
  // the documented chain directly.
  double a[32] = {}, b[32] = {}, c[64] = {};
  a[0] = 1e16;  // a[0][0]
  a[1] = 1.0;   // a[0][1]
  a[2] = -1e16; // a[0][2]
  a[3] = 1.0;   // a[0][3]
  for (int k = 0; k < 4; ++k) b[k * 8] = 1.0;
  auto regs = mma::load_fragments(a, b, c);
  mma::cc_mma_m8n8k4(regs);
  double d[64];
  mma::store_fragments(regs, d);
  double chain = 0.0;
  for (int k = 0; k < 4; ++k) chain = std::fma(a[k], 1.0, chain);
  EXPECT_EQ(d[0], chain);
}

}  // namespace
}  // namespace cubie
