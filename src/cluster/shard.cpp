#include "cluster/shard.hpp"

#include "sim/model.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_map>
#include <unordered_set>

namespace cubie::cluster {

namespace {

std::string cell_id(const serve::ShardCell& c) {
  return c.workload + "|" + std::to_string(c.case_index) + "|" + c.variant;
}

}  // namespace

std::uint64_t fnv1a64(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ull;  // FNV offset basis
  for (unsigned char c : s) {
    h ^= static_cast<std::uint64_t>(c);
    h *= 0x100000001b3ull;  // FNV prime
  }
  return h;
}

std::vector<CostedCell> enumerate_suite_cells(engine::ExperimentEngine& eng,
                                              int scale) {
  std::vector<CostedCell> out;
  for (const auto& w : eng.suite()) {
    const auto variants = core::available_variants(*w);
    const auto cases = w->cases(scale);
    for (std::size_t ci = 0; ci < cases.size(); ++ci) {
      for (auto v : variants) {
        CostedCell c;
        c.cell.workload = w->name();
        c.cell.case_index = static_cast<int>(ci);
        c.cell.variant = core::variant_name(v);
        c.cost_s = eng.modeled_cell_cost_s(*w, v, cases[ci], scale);
        c.group = w->name() + "|" + c.cell.variant + "|" + cases[ci].label;
        out.push_back(std::move(c));
      }
    }
  }
  return out;
}

ShardAssignment assign_cells(const std::vector<CostedCell>& cells,
                             const std::vector<std::string>& workers) {
  ShardAssignment a;
  a.shards.resize(workers.size());
  a.modeled_cost_s.assign(workers.size(), 0.0);
  if (workers.empty() || cells.empty()) return a;

  const double total = std::accumulate(
      cells.begin(), cells.end(), 0.0,
      [](double acc, const CostedCell& c) { return acc + c.cost_s; });
  const double cap =
      kBalanceCapFactor * total / static_cast<double>(workers.size());

  // The unit of placement: cells sharing a non-empty group move together
  // (their records collapse into one — see CostedCell::group), everything
  // else is its own unit. A unit's id doubles as its rendezvous key.
  struct Unit {
    std::string id;
    std::vector<std::size_t> members;  // indices into `cells`
    double cost_s = 0.0;
  };
  std::vector<Unit> units;
  std::unordered_map<std::string, std::size_t> unit_of;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const std::string id =
        cells[i].group.empty() ? cell_id(cells[i].cell) : cells[i].group;
    auto [it, inserted] = unit_of.emplace(id, units.size());
    if (inserted) units.push_back({id, {}, 0.0});
    Unit& u = units[it->second];
    u.members.push_back(i);
    u.cost_s += cells[i].cost_s;
  }

  // Place expensive units first so the balance cap acts on them while there
  // is still room to maneuver; cheap units then fill the gaps. Ties break
  // on the unit id so the order — and therefore the assignment — never
  // depends on the enumeration's incidental ordering of equal-cost cells.
  std::vector<std::size_t> order(units.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t l, std::size_t r) {
    if (units[l].cost_s != units[r].cost_s)
      return units[l].cost_s > units[r].cost_s;
    return units[l].id < units[r].id;
  });

  std::vector<std::size_t> rank(workers.size());
  for (std::size_t idx : order) {
    const Unit& u = units[idx];
    // Rendezvous ranking: workers ordered by hash(unit, worker), highest
    // first. Removing a worker only reshuffles the units it owned.
    std::iota(rank.begin(), rank.end(), 0);
    std::sort(rank.begin(), rank.end(), [&](std::size_t l, std::size_t r) {
      const auto hl = fnv1a64(u.id + "@" + workers[l]);
      const auto hr = fnv1a64(u.id + "@" + workers[r]);
      if (hl != hr) return hl > hr;
      return workers[l] < workers[r];
    });
    std::size_t chosen = rank.size();  // sentinel: none under the cap
    for (std::size_t w : rank) {
      if (a.modeled_cost_s[w] + u.cost_s <= cap) {
        chosen = w;
        break;
      }
    }
    if (chosen == rank.size()) {
      // Every worker is at the cap (possible when one unit dominates the
      // total): take the least-loaded, rendezvous order breaking ties.
      chosen = rank[0];
      for (std::size_t w : rank)
        if (a.modeled_cost_s[w] < a.modeled_cost_s[chosen]) chosen = w;
    }
    for (std::size_t i : u.members) a.shards[chosen].push_back(cells[i].cell);
    a.modeled_cost_s[chosen] += u.cost_s;
  }

  // Restore canonical enumeration order inside each shard (the greedy pass
  // visited cells by cost). Workers re-derive ordering themselves, but a
  // canonical wire form keeps request bytes — and request_key telemetry —
  // deterministic.
  std::unordered_map<std::string, std::size_t> pos;
  pos.reserve(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) pos[cell_id(cells[i].cell)] = i;
  for (auto& shard : a.shards) {
    std::sort(shard.begin(), shard.end(),
              [&](const serve::ShardCell& l, const serve::ShardCell& r) {
                return pos[cell_id(l)] < pos[cell_id(r)];
              });
  }

  const double mean = total / static_cast<double>(workers.size());
  const double max_load =
      *std::max_element(a.modeled_cost_s.begin(), a.modeled_cost_s.end());
  a.imbalance_ratio = mean > 0.0 ? max_load / mean : 1.0;
  return a;
}

std::vector<std::string> canonical_suite_record_keys(
    engine::ExperimentEngine& eng, int scale) {
  std::vector<std::string> keys;
  std::unordered_set<std::string> seen;
  for (const auto& w : eng.suite()) {
    const auto variants = core::available_variants(*w);
    const auto cases = w->cases(scale);
    for (auto gpu : sim::all_gpus()) {
      for (const auto& tc : cases) {
        for (auto v : variants) {
          std::string key = w->name() + "|" + core::variant_name(v) + "|" +
                            sim::gpu_name(gpu) + "|" + tc.label;
          // Colliding scaled labels keep the first occurrence only — the
          // slot MetricsReport::add_record collapses the later cases into.
          if (seen.insert(key).second) keys.push_back(std::move(key));
        }
      }
    }
  }
  return keys;
}

}  // namespace cubie::cluster
