// GEMM workload (Quadrant I).
//
// TC: the cudaSample `dmmaTensorCoreGEMM` scheme - each block computes a
// 64x64 tile of C; warps drive FP64 m8n8k4 MMAs over the shared-memory
// staged A and B panels, accumulating sequentially over k-tiles of 4.
// CC: the identical tiling with MMAs replaced by per-lane scalar FMA chains
// (same accumulation order -> identical numerics).
// CC-E == CC (full MMA utilization, no redundant work to remove).
// Baseline: the cudaSample `matrixMul` CUDA-core kernel - 32x32 shared tiles
// with a per-k-tile partial accumulator folded into the running sum, which
// is the (slightly) different accumulation order visible in Table 6.

#include "core/kernels.hpp"

#include "common/rng.hpp"
#include "mma/mma.hpp"
#include "sim/calibration.hpp"
#include "sparse/csr.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

namespace cubie::core {
namespace {

namespace scal = cubie::sim::cal;

struct GemmProblem {
  int m = 0, n = 0, k = 0;
  std::vector<double> a, b;
};

GemmProblem make_problem(const TestCase& tc) {
  GemmProblem p;
  p.m = static_cast<int>(tc.dims[0]);
  p.n = static_cast<int>(tc.dims[1]);
  p.k = static_cast<int>(tc.dims[2]);
  p.a = common::random_vector(static_cast<std::size_t>(p.m) * static_cast<std::size_t>(p.k), 11);
  p.b = common::random_vector(static_cast<std::size_t>(p.k) * static_cast<std::size_t>(p.n), 13);
  return p;
}

// TC / CC path: 8x8 output tiles, k-major MMA accumulation.
std::vector<double> run_mma_gemm(const GemmProblem& p, mma::Context& ctx,
                                 sim::Tracer* tr) {
  const int m = p.m, n = p.n, k = p.k;
  std::vector<double> c(static_cast<std::size_t>(m) * static_cast<std::size_t>(n), 0.0);

  {
    sim::Span stage(tr, "stage_panels", ctx.profile());
    // One launch; 64x64 C tiles per block, 8 warps of 32 threads each.
    const double blocks = (m / 64.0) * (n / 64.0);
    ctx.launch(blocks * 256.0);
    // Global traffic: each 64x64 block tile stages a 64xK panel of A and a
    // Kx64 panel of B through shared memory once, then streams the C tile
    // out (the store is charged to the epilogue below).
    ctx.load_global(blocks * (64.0 * k + static_cast<double>(k) * 64.0) * 8.0);
  }

  {
    sim::Span loop(tr, "tile_loop", ctx.profile());
    // Cache-blocked traversal: C is processed in column panels of `bj` so
    // the packed B fragments (k x bj) stay L2-resident across every row
    // tile, and the A/B fragment gathers are hoisted out of the MMA loop -
    // A is packed once per (panel, i0) and B once per panel instead of
    // re-gathering 8x4 / 4x8 fragments for every (i0, j0, k0). Packing only
    // reorders reads; each output tile still sees identical fragment values
    // in the identical k-major MMA order, so results (and the per-call
    // load_shared / dmma event counts) are bit-exact vs. the unblocked loop.
    const int kt = k / 4;  // whole k-tiles, matching the old k0 + 4 <= k guard
    int bj = static_cast<int>(
        (512 * 1024 / sizeof(double)) / static_cast<std::size_t>(std::max(1, k)));
    bj = std::max(8, std::min(n, bj / 8 * 8));
    std::vector<double> a_pack(static_cast<std::size_t>(kt) * 32);
    std::vector<double> b_pack;
    for (int jc = 0; jc + 8 <= n; jc += bj) {
      const int jw = std::min(bj, ((n - jc) / 8) * 8);  // whole 8-wide tiles
      b_pack.resize(static_cast<std::size_t>(jw / 8) * static_cast<std::size_t>(kt) * 32);
      for (int j0 = 0; j0 < jw; j0 += 8)
        for (int k0 = 0; k0 < kt; ++k0)
          for (int kk = 0; kk < 4; ++kk)
            for (int j = 0; j < 8; ++j)
              b_pack[(static_cast<std::size_t>(j0 / 8) * static_cast<std::size_t>(kt) +
                      static_cast<std::size_t>(k0)) * 32 + kk * 8 + j] =
                  p.b[static_cast<std::size_t>(k0 * 4 + kk) * n + jc + j0 + j];
      for (int i0 = 0; i0 + 8 <= m; i0 += 8) {
        for (int k0 = 0; k0 < kt; ++k0)
          for (int i = 0; i < 8; ++i)
            for (int kk = 0; kk < 4; ++kk)
              a_pack[static_cast<std::size_t>(k0) * 32 + i * 4 + kk] =
                  p.a[static_cast<std::size_t>(i0 + i) * k + k0 * 4 + kk];
        for (int j0 = 0; j0 < jw; j0 += 8) {
          double acc[64] = {};
          const double* b_panel =
              b_pack.data() + static_cast<std::size_t>(j0 / 8) * static_cast<std::size_t>(kt) * 32;
          for (int k0 = 0; k0 < kt; ++k0) {
            // Operand fetches from shared memory (per-warp fragment loads).
            ctx.load_shared((32.0 + 32.0) * 8.0);
            ctx.dmma_m8n8k4_acc(a_pack.data() + static_cast<std::size_t>(k0) * 32,
                                b_panel + static_cast<std::size_t>(k0) * 32, acc);
          }
          for (int i = 0; i < 8; ++i)
            for (int j = 0; j < 8; ++j)
              c[static_cast<std::size_t>(i0 + i) * n + jc + j0 + j] = acc[i * 8 + j];
        }
      }
    }
  }

  sim::Span epi(tr, "epilogue", ctx.profile());
  ctx.store_global(static_cast<double>(m) * n * 8.0);
  return c;
}

// Baseline path: 32x32 CUDA-core tiles with per-tile partial sums.
std::vector<double> run_baseline_gemm(const GemmProblem& p, mma::Context& ctx,
                                      sim::Tracer* tr) {
  const int m = p.m, n = p.n, k = p.k;
  constexpr int kTile = 32;
  std::vector<double> c(static_cast<std::size_t>(m) * static_cast<std::size_t>(n), 0.0);

  {
    sim::Span stage(tr, "stage_tiles", ctx.profile());
    const double blocks = (m / static_cast<double>(kTile)) * (n / static_cast<double>(kTile));
    ctx.launch(blocks * 1024.0);
    ctx.load_global(blocks * (static_cast<double>(kTile) * k * 2.0) * 8.0);
  }

  {
    sim::Span loop(tr, "tile_loop", ctx.profile());
    ctx.cc_fma(static_cast<double>(m) * n * k);
    ctx.load_shared(static_cast<double>(m) * n * k * 2.0 * 8.0 / kTile);
    for (int i = 0; i < m; ++i) {
      for (int j = 0; j < n; ++j) {
        double acc = 0.0;
        for (int kt = 0; kt < k; kt += kTile) {
          double part = 0.0;  // per-shared-tile partial sum (register)
          const int k_hi = std::min(kt + kTile, k);
          for (int kk = kt; kk < k_hi; ++kk) {
            part = std::fma(p.a[static_cast<std::size_t>(i) * k + kk],
                            p.b[static_cast<std::size_t>(kk) * n + j], part);
          }
          acc += part;
        }
        c[static_cast<std::size_t>(i) * n + j] = acc;
      }
    }
  }

  sim::Span epi(tr, "epilogue", ctx.profile());
  ctx.store_global(static_cast<double>(m) * n * 8.0);
  return c;
}

class GemmWorkload final : public Workload {
 public:
  std::string name() const override { return "GEMM"; }
  Quadrant quadrant() const override { return Quadrant::I; }
  std::string dwarf() const override { return "Dense linear algebra"; }
  std::string baseline_name() const override {
    return "cudaSample matrixMul v12.8";
  }

  std::vector<TestCase> cases(int s) const override {
    std::vector<TestCase> cs;
    // Paper sizes at full scale. When scaled down, use a compressed ladder
    // that keeps the smallest case at 256 (below that every variant is
    // launch-bound and the comparison degenerates); dimensions stay
    // multiples of 64 so tiles divide evenly.
    std::vector<long> dims = s <= 1
        ? std::vector<long>{256, 512, 1024, 2048, 4096}
        : std::vector<long>{256, 384, 512, 768, 1024};
    for (long v : dims) {
      cs.push_back({std::to_string(v) + "^3", {v, v, v}, ""});
    }
    return cs;
  }

  RunOutput run(Variant v, const TestCase& tc,
                const RunOptions& opts) const override {
    RunOutput out;
    sim::Span total(opts.tracer, "GEMM/" + variant_name(v), out.profile);
    GemmProblem p;
    {
      sim::Span setup(opts.tracer, "setup", out.profile);
      p = make_problem(tc);
    }
    const bool mma_path = v != Variant::Baseline;
    mma::Context ctx(v == Variant::TC ? mma::Pipe::TensorCore
                                      : mma::Pipe::CudaCore,
                     out.profile);
    out.values = mma_path ? run_mma_gemm(p, ctx, opts.tracer)
                          : run_baseline_gemm(p, ctx, opts.tracer);
    out.profile.useful_flops =
        2.0 * p.m * static_cast<double>(p.n) * p.k;
    out.profile.pipe_eff =
        mma_path ? (v == Variant::TC ? scal::kTcGemmEff : scal::kCcEmulationEff)
                 : scal::kCcSampleGemmEff;
    out.profile.mem_eff = !mma_path          ? scal::kMemEffLibrary
                          : v == Variant::TC ? scal::kMemEffTcLayout
                                             : scal::kMemEffCcEmulation;
    // Cachesim descriptor: tiled GEMM streams A/B/C densely; the reuse
    // window is the three operand matrices.
    out.profile.access = sim::AccessPattern::Dense;
    out.profile.working_set_bytes =
        8.0 * (static_cast<double>(p.m) * p.k + static_cast<double>(p.k) * p.n +
               static_cast<double>(p.m) * p.n);
    return out;
  }

  std::vector<double> reference(const TestCase& tc) const override {
    GemmProblem p = make_problem(tc);
    std::vector<double> c(static_cast<std::size_t>(p.m) * static_cast<std::size_t>(p.n), 0.0);
    sparse::gemm_serial(p.m, p.n, p.k, p.a, p.b, c);
    return c;
  }
};

}  // namespace

WorkloadPtr make_gemm() { return std::make_unique<GemmWorkload>(); }

}  // namespace cubie::core
