#pragma once
// Cubie-Cluster sharding: decompose the Figure-3 suite into per-cell shard
// coordinates and assign them to serve workers, balanced by modeled cell
// cost.
//
// The unit of distribution is one (workload, case index, variant) cell of
// the canonical suite enumeration — the same coordinate the wire protocol
// carries in a `suite` request's "cells" array (serve::ShardCell). Each
// cell expands to one record per GPU on the worker, so disjoint cell sets
// partition the suite's record list exactly.
//
// Assignment must be (a) balanced — one worker must not end up with all
// the expensive GEMM cells while another prices three tiny stencils — and
// (b) stable — when the worker set is unchanged, every router instance
// computes the same assignment, and when one worker dies only its cells
// move (rendezvous hashing's minimal-disruption property). The algorithm:
// sort cells by descending modeled cost, then place each on its highest-
// ranked worker by rendezvous hash unless that worker is already past the
// balance cap (kBalanceCapFactor x the mean load), in which case the next-
// ranked worker under the cap takes it, falling back to the least-loaded
// worker when every one is capped.

#include "engine/engine.hpp"
#include "serve/service.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace cubie::cluster {

// A worker may carry at most this multiple of the mean modeled load before
// the rendezvous preference is overridden. 1.25 keeps assignments mostly
// hash-stable while bounding the modeled imbalance.
inline constexpr double kBalanceCapFactor = 1.25;

// One suite cell with its modeled cost (engine::modeled_cell_cost_s).
struct CostedCell {
  serve::ShardCell cell;
  double cost_s = 0.0;
  // Record-key collision group: "workload|variant|<scaled case label>".
  // Distinct case indices can scale down to the same label (FFT's cases
  // all become "16x16xb2" at scale 64), and MetricsReport::add_record then
  // collapses their records into one, last case winning. Cells sharing a
  // group must land on the same worker so that worker collapses them
  // exactly like a single-engine run would — split across shards they
  // would each emit the key and the merge would see an overlap.
  std::string group;
};

// Enumerate the full suite at `scale` as shard coordinates in canonical
// (workload -> case -> variant) order, priced through the engine's model
// backend. Pure enumeration: no cell is executed.
std::vector<CostedCell> enumerate_suite_cells(engine::ExperimentEngine& eng,
                                              int scale);

struct ShardAssignment {
  // shards[i] = the cells assigned to workers[i], in canonical enumeration
  // order (the order enumerate_suite_cells produced them in).
  std::vector<std::vector<serve::ShardCell>> shards;
  std::vector<double> modeled_cost_s;  // per-worker modeled load
  // max(worker load) / mean(worker load); 1.0 = perfectly balanced. The
  // cubie_cluster_imbalance_ratio gauge exports this.
  double imbalance_ratio = 1.0;
};

// Assign `cells` across `workers` (names; typically the healthy subset).
// Deterministic: a pure function of the cell list and the worker names.
// Cells sharing a non-empty CostedCell::group are assigned as one unit
// (summed cost, one rendezvous draw) — see the group field above.
ShardAssignment assign_cells(const std::vector<CostedCell>& cells,
                             const std::vector<std::string>& workers);

// 64-bit FNV-1a over the bytes of `s` — the rendezvous hash. Fixed
// constants, no libstdc++ std::hash dependence, so assignments are
// identical across platforms and processes.
std::uint64_t fnv1a64(const std::string& s);

// The full suite's MetricRecord keys in canonical record order (workload ->
// gpu -> case -> variant, fig03_perf's nesting) — the order the merged
// cluster report must emit records in (see cluster/merge.hpp). Keys are
// unique: when scaled case labels collide, only the first occurrence is
// kept, mirroring MetricsReport::add_record's find-or-create placement.
std::vector<std::string> canonical_suite_record_keys(
    engine::ExperimentEngine& eng, int scale);

}  // namespace cubie::cluster
