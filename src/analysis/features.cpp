#include "analysis/features.hpp"

#include <cmath>

namespace cubie::analysis {

std::vector<std::string> KernelMetrics::names() {
  return {"mem_utilization",   "compute_throughput", "fma_pipe_usage",
          "tensor_pipe_usage", "issue_intensity",    "arithmetic_intensity"};
}

KernelMetrics extract_metrics(const std::string& name, const std::string& suite,
                              const sim::KernelProfile& prof,
                              const sim::Prediction& pred) {
  KernelMetrics m;
  m.name = name;
  m.suite = suite;
  m.mem_utilization = pred.u_mem;
  const double work = prof.useful_flops > 0.0 ? prof.useful_flops
                                              : prof.total_flops() + prof.tc_bitops +
                                                    prof.cc_intops;
  m.compute_throughput =
      pred.time_s > 0.0 ? std::log10(1.0 + work / pred.time_s) : 0.0;
  m.fma_pipe_usage = pred.u_cuda;
  m.tensor_pipe_usage = pred.u_tensor;
  m.issue_intensity =
      prof.dram_bytes > 0.0 ? prof.warp_instructions / prof.dram_bytes : 0.0;
  m.arithmetic_intensity =
      std::log10(1.0 + (prof.dram_bytes > 0.0 ? work / prof.dram_bytes : 0.0));
  return m;
}

Dataset metrics_dataset(const std::vector<KernelMetrics>& metrics) {
  Dataset d;
  d.samples = metrics.size();
  d.features = KernelMetrics::kCount;
  d.data.reserve(d.samples * d.features);
  for (const auto& m : metrics) {
    const auto arr = m.as_array();
    d.data.insert(d.data.end(), arr.begin(), arr.end());
  }
  return d;
}

}  // namespace cubie::analysis
