#include "analysis/pca.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace cubie::analysis {

std::vector<std::pair<double, double>> standardize(Dataset& d) {
  std::vector<std::pair<double, double>> stats(d.features);
  for (std::size_t f = 0; f < d.features; ++f) {
    double mean = 0.0;
    for (std::size_t s = 0; s < d.samples; ++s) mean += d.at(s, f);
    mean /= static_cast<double>(std::max<std::size_t>(1, d.samples));
    double var = 0.0;
    for (std::size_t s = 0; s < d.samples; ++s) {
      const double c = d.at(s, f) - mean;
      var += c * c;
    }
    var /= static_cast<double>(std::max<std::size_t>(1, d.samples));
    const double sd = std::sqrt(var);
    stats[f] = {mean, sd};
    for (std::size_t s = 0; s < d.samples; ++s) {
      d.at(s, f) = sd > 0.0 ? (d.at(s, f) - mean) / sd : 0.0;
    }
  }
  return stats;
}

void jacobi_eigen(std::vector<double>& a, std::size_t n,
                  std::vector<double>& eigenvalues,
                  std::vector<double>& eigenvectors) {
  // v starts as identity and accumulates rotations (rows become vectors).
  std::vector<double> v(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) v[i * n + i] = 1.0;

  auto off = [&]() {
    double s = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i + 1; j < n; ++j) s += a[i * n + j] * a[i * n + j];
    return s;
  };

  constexpr int kMaxSweeps = 64;
  for (int sweep = 0; sweep < kMaxSweeps && off() > 1e-24; ++sweep) {
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = a[p * n + q];
        if (std::fabs(apq) < 1e-300) continue;
        const double app = a[p * n + p];
        const double aqq = a[q * n + q];
        const double theta = 0.5 * (aqq - app) / apq;
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a[k * n + p];
          const double akq = a[k * n + q];
          a[k * n + p] = c * akp - s * akq;
          a[k * n + q] = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = a[p * n + k];
          const double aqk = a[q * n + k];
          a[p * n + k] = c * apk - s * aqk;
          a[q * n + k] = s * apk + c * aqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vpk = v[p * n + k];
          const double vqk = v[q * n + k];
          v[p * n + k] = c * vpk - s * vqk;
          v[q * n + k] = s * vpk + c * vqk;
        }
      }
    }
  }

  // Sort by eigenvalue, descending; fix eigenvector signs.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return a[x * n + x] > a[y * n + y];
  });
  eigenvalues.resize(n);
  eigenvectors.assign(n * n, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    const std::size_t src = order[r];
    eigenvalues[r] = a[src * n + src];
    double max_abs = 0.0;
    double sign = 1.0;
    for (std::size_t k = 0; k < n; ++k) {
      if (std::fabs(v[src * n + k]) > max_abs) {
        max_abs = std::fabs(v[src * n + k]);
        sign = v[src * n + k] >= 0.0 ? 1.0 : -1.0;
      }
    }
    for (std::size_t k = 0; k < n; ++k)
      eigenvectors[r * n + k] = sign * v[src * n + k];
  }
}

PcaResult pca(const Dataset& d, std::size_t components) {
  assert(d.samples > 1 && d.features > 0);
  const std::size_t nf = d.features;
  components = std::min(components, nf);

  // Covariance matrix of the (already standardized) data.
  std::vector<double> cov(nf * nf, 0.0);
  for (std::size_t i = 0; i < nf; ++i) {
    for (std::size_t j = i; j < nf; ++j) {
      double s = 0.0;
      for (std::size_t r = 0; r < d.samples; ++r) s += d.at(r, i) * d.at(r, j);
      s /= static_cast<double>(d.samples - 1);
      cov[i * nf + j] = s;
      cov[j * nf + i] = s;
    }
  }

  PcaResult res;
  res.components = components;
  std::vector<double> evals, evecs;
  jacobi_eigen(cov, nf, evals, evecs);

  const double total = std::max(1e-300, std::accumulate(evals.begin(), evals.end(), 0.0,
                                                        [](double acc, double v) {
                                                          return acc + std::max(0.0, v);
                                                        }));
  res.eigenvalues.assign(evals.begin(), evals.begin() + static_cast<std::ptrdiff_t>(components));
  res.eigenvectors.resize(components * nf);
  res.explained_ratio.resize(components);
  for (std::size_t c = 0; c < components; ++c) {
    res.explained_ratio[c] = std::max(0.0, evals[c]) / total;
    for (std::size_t f = 0; f < nf; ++f)
      res.eigenvectors[c * nf + f] = evecs[c * nf + f];
  }

  res.projected.samples = d.samples;
  res.projected.features = components;
  res.projected.data.assign(d.samples * components, 0.0);
  for (std::size_t s = 0; s < d.samples; ++s) {
    for (std::size_t c = 0; c < components; ++c) {
      double acc = 0.0;
      for (std::size_t f = 0; f < nf; ++f)
        acc += d.at(s, f) * res.eigenvectors[c * nf + f];
      res.projected.at(s, c) = acc;
    }
  }
  return res;
}

double mean_pairwise_distance(const Dataset& projected,
                              const std::vector<std::size_t>& selected) {
  if (selected.size() < 2) return 0.0;
  double total = 0.0;
  std::size_t pairs = 0;
  for (std::size_t i = 0; i < selected.size(); ++i) {
    for (std::size_t j = i + 1; j < selected.size(); ++j) {
      double d2 = 0.0;
      for (std::size_t c = 0; c < projected.features; ++c) {
        const double diff =
            projected.at(selected[i], c) - projected.at(selected[j], c);
        d2 += diff * diff;
      }
      total += std::sqrt(d2);
      ++pairs;
    }
  }
  return total / static_cast<double>(pairs);
}

double coverage_fraction(const Dataset& projected,
                         const std::vector<std::size_t>& selected,
                         double radius) {
  if (selected.empty() || projected.samples == 0) return 0.0;
  std::size_t covered = 0;
  for (std::size_t s = 0; s < projected.samples; ++s) {
    double best = 1e300;
    for (std::size_t sel : selected) {
      double d2 = 0.0;
      for (std::size_t c = 0; c < projected.features; ++c) {
        const double diff = projected.at(s, c) - projected.at(sel, c);
        d2 += diff * diff;
      }
      best = std::min(best, d2);
    }
    if (std::sqrt(best) <= radius) ++covered;
  }
  return static_cast<double>(covered) / static_cast<double>(projected.samples);
}

}  // namespace cubie::analysis
