// Cubie-Trace contracts: span nesting mirrors lexical scope, profile deltas
// are attributed to the innermost span, and the disabled (null-tracer) path
// records nothing and allocates nothing.

#include "core/kernels.hpp"
#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

// Replaceable global operator new, counting every heap allocation in the
// test binary. The default operator new[] forwards here, so array news are
// counted too. Used to pin the null-tracer Span to "no allocation".
namespace {
std::atomic<std::size_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t n) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace cubie {
namespace {

TEST(Trace, SpansNestByLexicalScope) {
  sim::Tracer tracer;
  sim::KernelProfile prof;
  {
    sim::Span outer(&tracer, "outer", prof);
    EXPECT_TRUE(tracer.in_span());
    { sim::Span a(&tracer, "a", prof); }
    {
      sim::Span b(&tracer, "b", prof);
      { sim::Span b1(&tracer, "b1", prof); }
    }
  }
  EXPECT_FALSE(tracer.in_span());
  ASSERT_EQ(tracer.roots().size(), 1u);
  const auto& outer = tracer.roots()[0];
  EXPECT_EQ(outer.name, "outer");
  ASSERT_EQ(outer.children.size(), 2u);
  EXPECT_EQ(outer.children[0].name, "a");
  EXPECT_EQ(outer.children[1].name, "b");
  ASSERT_EQ(outer.children[1].children.size(), 1u);
  EXPECT_EQ(outer.children[1].children[0].name, "b1");
  EXPECT_EQ(outer.tree_size(), 4u);

  tracer.clear();
  EXPECT_TRUE(tracer.roots().empty());
}

TEST(Trace, ProfileDeltasAttributeToInnermostSpan) {
  sim::Tracer tracer;
  sim::KernelProfile prof;
  {
    sim::Span outer(&tracer, "outer", prof);
    prof.cc_flops += 5.0;
    prof.dram_bytes += 100.0;
    {
      sim::Span inner(&tracer, "inner", prof);
      prof.tc_flops += 7.0;
      prof.launches += 1;
    }
    prof.cc_flops += 1.0;
  }
  const auto& outer = tracer.roots()[0];
  const auto& inner = outer.children[0];
  // Inclusive: the outer span saw everything, the inner span only its own.
  EXPECT_DOUBLE_EQ(outer.inclusive.cc_flops, 6.0);
  EXPECT_DOUBLE_EQ(outer.inclusive.tc_flops, 7.0);
  EXPECT_DOUBLE_EQ(outer.inclusive.dram_bytes, 100.0);
  EXPECT_EQ(outer.inclusive.launches, 1);
  EXPECT_DOUBLE_EQ(inner.inclusive.tc_flops, 7.0);
  EXPECT_DOUBLE_EQ(inner.inclusive.cc_flops, 0.0);
  // Exclusive subtracts the children: outer keeps only its own work.
  const auto excl = outer.exclusive();
  EXPECT_DOUBLE_EQ(excl.cc_flops, 6.0);
  EXPECT_DOUBLE_EQ(excl.tc_flops, 0.0);
  EXPECT_EQ(excl.launches, 0);
  // Host-side observations are present.
  EXPECT_GE(outer.wall_s, inner.wall_s);
  EXPECT_GE(outer.peak_rss_kb, 0);
}

TEST(Trace, FinishIsIdempotentAndClosesEarly) {
  sim::Tracer tracer;
  sim::KernelProfile prof;
  sim::Span s(&tracer, "early", prof);
  prof.cc_flops += 3.0;
  s.finish();
  EXPECT_FALSE(tracer.in_span());
  prof.cc_flops += 40.0;  // after finish: must not be attributed
  s.finish();             // second call is a no-op
  ASSERT_EQ(tracer.roots().size(), 1u);
  EXPECT_DOUBLE_EQ(tracer.roots()[0].inclusive.cc_flops, 3.0);
}

TEST(Trace, DisabledSpanRecordsNothingAndAllocatesNothing) {
  sim::KernelProfile prof;
  const std::size_t spans_before = sim::Tracer::total_spans_recorded();
  const std::size_t allocs_before =
      g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    sim::Span s(nullptr, "off", prof);
    prof.cc_flops += 1.0;
  }
  EXPECT_EQ(g_allocations.load(std::memory_order_relaxed), allocs_before);
  EXPECT_EQ(sim::Tracer::total_spans_recorded(), spans_before);
  EXPECT_DOUBLE_EQ(prof.cc_flops, 1000.0);  // the workload itself still ran
}

TEST(Trace, WorkloadRunEmitsSpanTreeMatchingProfile) {
  const auto w = core::make_workload("GEMM");
  const auto tc = w->cases(16)[0];
  sim::Tracer tracer;
  core::RunOptions opts;
  opts.tracer = &tracer;
  const auto out = w->run(core::Variant::TC, tc, opts);

  ASSERT_EQ(tracer.roots().size(), 1u);
  const auto& root = tracer.roots()[0];
  EXPECT_EQ(root.name, "GEMM/TC");
  EXPECT_GE(root.children.size(), 2u);
  // The root span wraps the whole run: its inclusive profile is the run's.
  EXPECT_DOUBLE_EQ(root.inclusive.tc_flops, out.profile.tc_flops);
  EXPECT_DOUBLE_EQ(root.inclusive.dram_bytes, out.profile.dram_bytes);
  EXPECT_EQ(root.inclusive.launches, out.profile.launches);

  // Tracing must not perturb the computed numerics or the counted events.
  const auto plain = w->run(core::Variant::TC, tc);
  EXPECT_EQ(plain.values, out.values);
  EXPECT_DOUBLE_EQ(plain.profile.tc_flops, out.profile.tc_flops);
  EXPECT_DOUBLE_EQ(plain.profile.dram_bytes, out.profile.dram_bytes);
}

TEST(Trace, BfsEmitsPerFrontierLevelSpans) {
  const auto w = core::make_workload("BFS");
  const auto tc = w->cases(16)[w->representative_case()];
  sim::Tracer tracer;
  core::RunOptions opts;
  opts.tracer = &tracer;
  (void)w->run(core::Variant::TC, tc, opts);
  ASSERT_EQ(tracer.roots().size(), 1u);
  int levels = 0;
  for (const auto& c : tracer.roots()[0].children) {
    if (c.name.rfind("level_", 0) == 0) ++levels;
  }
  EXPECT_GE(levels, 2) << "BFS should trace one span per frontier iteration";
}

TEST(Trace, SpGemmTracesSymbolicAndNumericPhases) {
  const auto w = core::make_workload("SpGEMM");
  const auto tc = w->cases(16)[w->representative_case()];
  sim::Tracer tracer;
  core::RunOptions opts;
  opts.tracer = &tracer;
  (void)w->run(core::Variant::Baseline, tc, opts);
  ASSERT_EQ(tracer.roots().size(), 1u);
  bool symbolic = false, numeric = false;
  for (const auto& c : tracer.roots()[0].children) {
    symbolic |= c.name == "symbolic";
    numeric |= c.name == "numeric";
  }
  EXPECT_TRUE(symbolic);
  EXPECT_TRUE(numeric);
}

TEST(ProfileMerge, EfficiencyHintsAreWorkWeighted) {
  sim::KernelProfile a;
  a.dram_bytes = 300.0;
  a.mem_eff = 0.9;
  a.tc_flops = 100.0;
  a.pipe_eff = 0.8;

  sim::KernelProfile b;
  b.dram_bytes = 100.0;
  b.mem_eff = 0.5;
  b.cc_flops = 300.0;
  b.pipe_eff = 0.4;

  a += b;
  // mem_eff: (0.9*300 + 0.5*100) / 400; pipe_eff: (0.8*100 + 0.4*300) / 400.
  EXPECT_DOUBLE_EQ(a.mem_eff, 0.8);
  EXPECT_DOUBLE_EQ(a.pipe_eff, 0.5);
  EXPECT_DOUBLE_EQ(a.dram_bytes, 400.0);
  EXPECT_DOUBLE_EQ(a.total_pipe_ops(), 400.0);
}

TEST(ProfileMerge, ZeroWorkSideDoesNotDiluteHints) {
  // Merging an empty profile (all counters zero, default hints 1.0) must
  // leave the accumulated efficiencies untouched - the regression the
  // work-weighted merge fixes.
  sim::KernelProfile a;
  a.dram_bytes = 100.0;
  a.mem_eff = 0.6;
  a.tc_flops = 50.0;
  a.pipe_eff = 0.7;
  a += sim::KernelProfile{};
  EXPECT_DOUBLE_EQ(a.mem_eff, 0.6);
  EXPECT_DOUBLE_EQ(a.pipe_eff, 0.7);

  // And an all-hint no-work profile (a config-only record) still carries
  // its hint into an empty accumulator.
  sim::KernelProfile acc;
  sim::KernelProfile hint_only;
  hint_only.mem_eff = 0.25;
  hint_only.pipe_eff = 0.33;
  acc += hint_only;
  EXPECT_DOUBLE_EQ(acc.mem_eff, 0.25);
  EXPECT_DOUBLE_EQ(acc.pipe_eff, 0.33);
}

}  // namespace
}  // namespace cubie
