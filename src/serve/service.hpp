#pragma once
// Cubie-Serve service layer: the one place a "plan request" — workload,
// variant, case, GPU, scale selections — is resolved and turned into a
// schema-v1 MetricsReport. `cubie run --json` and the Cubie-Serve daemon
// both call run_report(), which is what makes a served response
// byte-identical to the direct CLI run of the same plan: same resolution,
// same record order, same metrics, same serializer.

#include "check/check.hpp"
#include "common/report.hpp"
#include "engine/engine.hpp"

#include <optional>
#include <string>
#include <vector>

namespace cubie::serve {

// One plan request, with `cubie run`'s defaults. Selector strings use the
// CLI's vocabulary: variant "Baseline|TC|CC|CC-E|all", case "rep|all|<idx>",
// gpu "A100|H200|B200|all".
struct RunSpec {
  std::string workload;
  std::string variant = "all";
  std::string case_sel = "rep";
  std::string gpu = "H200";
  int scale = 1;
  bool errors = false;  // include avg_err/max_err vs the CPU reference
  bool check = false;   // run Cubie-Check over the plan's cells afterwards
  // Device-model backend predictions are priced with (sim::make_device_model
  // name). "analytic" is the wire default: requests and keys only mention
  // the model when it differs, so pre-existing clients are unaffected.
  std::string model = "analytic";
};

// Stable identity of the spec ("GEMM/all/rep/H200/s16"; a non-default
// model backend appends "/<model>"), used in telemetry event names and
// client labels.
std::string spec_key(const RunSpec& spec);

// Execute the spec through the engine (cells are memoized / single-flight
// coalesced, so repeated and concurrent requests share work) and build its
// report: tool "cubie_run", one record per (case, variant, gpu) in that
// nesting order, metrics {gflops|gteps, time_ms, power_w, energy_j, edp}
// (+ avg_err/max_err with spec.errors). With spec.check the conformance
// verdict table is appended to report.tables under "conformance" (exactly
// like a bench's --check) and *conformance carries the verdicts.
//
// Returns nullopt with *error set on an unresolvable spec (unknown
// workload / variant / gpu, case index out of range). The report
// deliberately has no "engine" block: the block describes a producing
// process, not a plan, and omitting it keeps a served report byte-equal
// to a cold CLI run's.
std::optional<report::MetricsReport> run_report(
    engine::ExperimentEngine& eng, const RunSpec& spec, std::string* error,
    check::ConformanceReport* conformance = nullptr);

// Append the Figure-3 full-suite records (every workload, variant, case,
// GPU; metrics {gflops|gteps, time_ms, dram_bytes, useful_flops,
// launches}) to `rep`, in fig03_perf's workload -> gpu -> case -> variant
// order. Shared by bench/fig03_perf.cpp and suite_report so the served
// suite sweep bench_diffs cleanly against the bench's own report.
void add_suite_perf_records(engine::ExperimentEngine& eng, int scale,
                            report::MetricsReport& rep,
                            const std::string& model = "analytic");

// The served form of fig03_perf: tool/title/records identical to the bench
// binary's --json output (no engine block, no human tables).
report::MetricsReport suite_report(engine::ExperimentEngine& eng, int scale,
                                   const std::string& model = "analytic");

// One suite shard coordinate: a (workload, case index, variant) cell of
// the canonical Figure-3 enumeration. The Cubie-Cluster router decomposes
// a `suite` request into disjoint sets of these and fans them out; the
// protocol carries them as the optional "cells" array on `suite` requests
// (omitted entirely for a full-suite request, preserving wire bytes).
struct ShardCell {
  std::string workload;
  int case_index = 0;
  std::string variant;  // "Baseline" | "TC" | "CC" | "CC-E"
};

// The per-shard slice of suite_report: execute and price exactly `cells`,
// emitting their records in the same canonical workload -> gpu -> case ->
// variant order the full suite uses — so disjoint shards, concatenated in
// canonical order by the router, reproduce suite_report byte-for-byte
// (pricing is per-cell and Workload::run is deterministic; see
// docs/ARCHITECTURE.md "Why memoization is sound"). All-or-nothing
// validation: nullopt with *error on an unknown workload/variant or an
// out-of-range case index, nothing executed.
std::optional<report::MetricsReport> suite_shard_report(
    engine::ExperimentEngine& eng, int scale,
    const std::vector<ShardCell>& cells, std::string* error,
    const std::string& model = "analytic");

}  // namespace cubie::serve
