// Table 7: Berkeley-dwarf coverage of Cubie versus Rodinia and SHOC, plus
// the feature checklist. The Cubie column is computed from the live
// workload registry; the Rodinia/SHOC columns are the paper's published
// counts for those suites.

#include "bench_util.hpp"
#include "common/table.hpp"
#include "core/kernels.hpp"

#include <iostream>
#include <map>

int main(int argc, char** argv) {
  using namespace cubie;
  auto bench = benchutil::bench_init(argc, argv, "table07_coverage",
                                     "Table 7: Berkeley dwarf coverage");
  std::cout << "=== Table 7: Berkeley dwarf coverage ===\n\n";

  // Count Cubie workloads per dwarf from the engine-owned registry suite.
  std::map<std::string, int> cubie_dwarfs;
  for (const auto& w : bench.suite()) cubie_dwarfs[w->dwarf()] += 1;

  // Published counts for the two comparison suites (paper Table 7).
  const std::map<std::string, std::pair<int, int>> published = {
      {"Dense linear algebra", {3, 2}}, {"Sparse linear algebra", {0, 0}},
      {"Spectral methods", {0, 1}},     {"N-Body", {0, 1}},
      {"Structured grids", {4, 1}},     {"Unstructured grids", {2, 0}},
      {"MapReduce", {0, 3}},            {"Graph traversal", {2, 0}},
      {"Dynamic programming", {1, 0}},
  };

  common::Table t({"Dwarf", "Rodinia", "SHOC", "Cubie (this work)"});
  int cubie_covered = 0, rodinia_covered = 0, shoc_covered = 0;
  for (const auto& [dwarf, counts] : published) {
    const int cubie = cubie_dwarfs.count(dwarf) ? cubie_dwarfs[dwarf] : 0;
    cubie_covered += cubie > 0;
    rodinia_covered += counts.first > 0;
    shoc_covered += counts.second > 0;
    auto cell = [](int n) { return n > 0 ? std::to_string(n) : std::string("-"); };
    t.add_row({dwarf, cell(counts.first), cell(counts.second), cell(cubie)});
  }
  t.print(std::cout);
  std::cout << "\nDwarfs covered: Rodinia " << rodinia_covered << ", SHOC "
            << shoc_covered << ", Cubie " << cubie_covered << "\n\n";

  common::Table f({"Feature", "Rodinia", "SHOC", "Cubie (this work)"});
  f.add_row({"Parallelization pattern", "yes", "-", "yes"});
  f.add_row({"Performance", "yes", "yes", "yes"});
  f.add_row({"Power and energy", "yes", "yes", "yes"});
  f.add_row({"Precision", "-", "-", "yes"});
  f.add_row({"Memory bandwidth", "-", "yes", "yes"});
  f.add_row({"CPU-GPU data transfer", "yes", "yes", "-"});
  f.print(std::cout);
  bench.capture("dwarf_coverage", t);
  bench.capture("feature_checklist", f);
  bench.record("coverage", "", "", "dwarfs covered")
      .set("cubie", cubie_covered);
  bench.record("coverage", "", "", "dwarfs covered")
      .set("rodinia", rodinia_covered);
  bench.record("coverage", "", "", "dwarfs covered").set("shoc", shoc_covered);
  return bench.finish();
}
