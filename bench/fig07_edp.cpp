// Figure 7: energy-delay product (EDP = average power * time^2, kernel-only
// window) of every workload and variant on the H200 model, one
// representative test case per workload, with per-quadrant geomeans.
// Each workload is conceptually executed in a loop (the paper runs 500-6M
// iterations); EDP ratios are iteration-count invariant, so one profiled
// execution scaled to a fixed 5 s window is reported.

#include "bench_util.hpp"

#include <iostream>
#include <map>

int main(int argc, char** argv) {
  using namespace cubie;
  auto bench = benchutil::bench_init(
      argc, argv, "fig07_edp",
      "Figure 7: EDP on H200 (representative case each)");
  const int s = bench.scale;
  const auto model = bench.model_for(sim::Gpu::H200);
  std::cout << "=== Figure 7: EDP on H200 (representative case each; J*s per "
               "kernel execution) ===\n\n";

  bench.warm(engine::Plan::representative(s).with_gpus({sim::Gpu::H200}));

  common::Table t({"Quadrant", "Workload", "Case", "Baseline", "TC", "CC",
                   "CC-E"});
  std::map<std::string, std::vector<double>> quad_ratios;  // TC/Baseline EDP
  for (const auto& w : bench.suite()) {
    const auto tc_case = w->cases(s)[w->representative_case()];
    std::map<core::Variant, double> edp;
    for (auto v : benchutil::available_variants(*w)) {
      const auto& out = bench.run(*w, v, tc_case);
      const auto pred = model->predict(out.profile);
      edp[v] = pred.edp;
      auto& rec = bench.record(w->name(), core::variant_name(v), "H200",
                               tc_case.label);
      rec.set("edp", pred.edp);
      rec.set("energy_j", pred.energy_j);
      rec.set("time_ms", pred.time_s * 1e3);
      rec.set("avg_power_w", pred.avg_power_w);
    }
    auto cell = [&](core::Variant v) {
      return edp.count(v) ? common::fmt_sci(edp[v]) : std::string("-");
    };
    t.add_row({core::quadrant_name(w->quadrant()), w->name(), tc_case.label,
               cell(core::Variant::Baseline), cell(core::Variant::TC),
               cell(core::Variant::CC), cell(core::Variant::CCE)});
    if (edp.count(core::Variant::Baseline)) {
      quad_ratios[core::quadrant_name(w->quadrant())].push_back(
          edp[core::Variant::TC] / edp[core::Variant::Baseline]);
    }
  }
  t.print(std::cout);

  std::cout << "\nTC vs Baseline EDP (geomean per quadrant; <1 = TC saves "
               "energy-delay):\n";
  for (const auto& [q, ratios] : quad_ratios) {
    const double g = common::geomean(ratios);
    std::cout << "  Quadrant " << q << ": " << common::fmt_double(g, 2)
              << " (" << common::fmt_double((1.0 - g) * 100.0, 0)
              << "% EDP reduction)\n";
    bench.record("Quadrant " + q, "TC/Baseline", "H200", "geomean")
        .set("edp_ratio", g);
  }
  bench.capture("edp_h200", t);
  return bench.finish();
}
