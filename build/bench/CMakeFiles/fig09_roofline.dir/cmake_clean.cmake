file(REMOVE_RECURSE
  "CMakeFiles/fig09_roofline.dir/fig09_roofline.cpp.o"
  "CMakeFiles/fig09_roofline.dir/fig09_roofline.cpp.o.d"
  "fig09_roofline"
  "fig09_roofline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_roofline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
