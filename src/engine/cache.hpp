#pragma once
// Disk persistence for Cubie-Engine cells. Each cell's RunOutput is stored
// as one JSON file (common/report's writer, schema below) under a cache
// directory, keyed by the cell's content key:
//
//   {
//     "schema_version": 2,
//     "kind": "cubie-cell",
//     "key":  "<cell_key>",
//     "profile": { ...KernelProfile... },
//     "values": [ <double>, ... ]
//   }
//
// File names are a 64-bit FNV-1a hash of the key; the key stored inside the
// file is verified on load, so a hash collision degrades to a cache miss,
// never a wrong result. Numbers round-trip exactly: finite values use
// shortest-representation printing, and non-finite values — which JSON
// cannot represent as numbers — are encoded as bit-exact string sentinels
// ("inf", "-inf", "nan", or "nan:<16 hex digits>" for non-canonical NaN
// payloads), so a cell served from disk is bit-identical to a fresh run
// even when a metric is NaN or infinite.
//
// Every failure path is typed (CacheStatus): a caller can distinguish a
// plain miss from a corrupt file, a foreign file kind, a hash-collision key
// mismatch, or an undecodable value, and report accordingly instead of
// silently recomputing. inject_fault() deliberately damages a stored cell
// so each path stays tested (tests/test_engine.cpp).

#include "core/workload.hpp"

#include <optional>
#include <string>

namespace cubie::engine {

// Cell-file schema version. v2 added the profile's access-pattern
// descriptor (access / working_set_bytes, consumed by the cachesim
// backend) and the model axis in cell keys; v1 files predate both and are
// rejected as StaleVersion — recomputing is always safe, serving a cell
// whose profile silently lost fields to a newer reader is not.
inline constexpr int kCellSchemaVersion = 2;

// Outcome of a DiskCache operation. Hit/Stored are success; Disabled/Miss
// are benign; everything else names why the cache could not serve or
// persist the cell.
enum class CacheStatus {
  Hit,           // load: cell served from disk
  Stored,        // store: cell persisted
  Disabled,      // no cache directory configured
  Miss,          // load: no file for this key
  IoError,       // file exists but cannot be read / written
  ParseError,    // file is not valid JSON (truncated or corrupt)
  KindMismatch,  // valid JSON but not a "cubie-cell" document
  KeyMismatch,   // hash collision or stale file: stored key differs
  BadValue,      // missing profile or an undecodable values entry
  StaleVersion,  // cell written by an older schema (schema_version != current)
};

// Stable name for logs and error messages ("hit", "parse-error", ...).
const char* cache_status_name(CacheStatus s);

// Typed result of DiskCache::load. `output` is engaged iff hit().
struct CacheLoad {
  CacheStatus status = CacheStatus::Miss;
  std::optional<core::RunOutput> output;
  std::string detail;  // human-readable context for failures

  bool hit() const { return status == CacheStatus::Hit; }
  // True for the typed failure paths (not Hit/Miss/Disabled): the file was
  // there but could not be used.
  bool failed() const {
    return status != CacheStatus::Hit && status != CacheStatus::Miss &&
           status != CacheStatus::Disabled;
  }
  explicit operator bool() const { return hit(); }
};

// Typed result of DiskCache::store.
struct CacheStore {
  CacheStatus status = CacheStatus::Disabled;
  std::string detail;

  bool ok() const { return status == CacheStatus::Stored; }
  explicit operator bool() const { return ok(); }
};

class DiskCache {
 public:
  // Fault kinds inject_fault can apply to a stored cell file, one per typed
  // load-failure path.
  enum class Fault {
    Truncate,     // cut the file mid-document -> ParseError
    CorruptJson,  // overwrite with non-JSON bytes -> ParseError
    WrongKind,    // valid JSON, kind != "cubie-cell" -> KindMismatch
    WrongKey,     // valid cell, stored key differs -> KeyMismatch
    BadValue,     // valid cell, undecodable values entry -> BadValue
    StaleVersion, // valid v1 cell -> StaleVersion
  };

  DiskCache() = default;
  // Creates `dir` (one level) if it does not exist yet.
  explicit DiskCache(std::string dir);

  bool enabled() const { return !dir_.empty(); }
  const std::string& dir() const { return dir_; }

  // Typed load: Hit with the cell, Miss when absent, or a failure status
  // naming why the file could not be used.
  CacheLoad load(const std::string& key) const;
  // Write-through (tmp file + rename); IoError with detail on failure.
  CacheStore store(const std::string& key, const core::RunOutput& out) const;

  // Path a key maps to (exposed for tests and tooling).
  std::string path_for(const std::string& key) const;

  // Test hook: damage the stored file for `key` so the matching load
  // failure path can be exercised. Returns false if the file is absent or
  // cannot be rewritten.
  bool inject_fault(const std::string& key, Fault f) const;

 private:
  std::string dir_;
};

}  // namespace cubie::engine
