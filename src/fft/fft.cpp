#include "fft/fft.hpp"

#include <cmath>
#include <numbers>

namespace cubie::fft {

namespace {
constexpr double kTwoPi = 2.0 * std::numbers::pi;
}

bool is_pow2(std::size_t n) { return n > 0 && (n & (n - 1)) == 0; }

std::vector<cplx> dft_naive(std::span<const cplx> x) {
  const std::size_t n = x.size();
  std::vector<cplx> y(n);
  for (std::size_t k = 0; k < n; ++k) {
    cplx acc = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      const double ang = -kTwoPi * static_cast<double>(k * j % n) / static_cast<double>(n);
      acc += x[j] * cplx(std::cos(ang), std::sin(ang));
    }
    y[k] = acc;
  }
  return y;
}

namespace {

void fft_rec(std::vector<cplx>& a) {
  const std::size_t n = a.size();
  if (n <= 1) return;
  std::vector<cplx> even(n / 2), odd(n / 2);
  for (std::size_t i = 0; i < n / 2; ++i) {
    even[i] = a[2 * i];
    odd[i] = a[2 * i + 1];
  }
  fft_rec(even);
  fft_rec(odd);
  for (std::size_t k = 0; k < n / 2; ++k) {
    const double ang = -kTwoPi * static_cast<double>(k) / static_cast<double>(n);
    const cplx t = cplx(std::cos(ang), std::sin(ang)) * odd[k];
    a[k] = even[k] + t;
    a[k + n / 2] = even[k] - t;
  }
}

}  // namespace

std::vector<cplx> fft_serial(std::span<const cplx> x) {
  std::vector<cplx> a(x.begin(), x.end());
  fft_rec(a);
  return a;
}

std::vector<cplx> fft_stockham(std::span<const cplx> x) {
  const std::size_t n = x.size();
  std::vector<cplx> a(x.begin(), x.end()), b(n);
  std::size_t l = n / 2, m = 1;
  // Stockham autosort: each stage gathers strided pairs and writes them
  // contiguously, so no bit-reversal pass is needed (cuFFT-style dataflow).
  while (l >= 1) {
    for (std::size_t j = 0; j < l; ++j) {
      const double ang = -kTwoPi * static_cast<double>(j) / static_cast<double>(2 * l);
      const cplx w(std::cos(ang), std::sin(ang));
      for (std::size_t k = 0; k < m; ++k) {
        const cplx c0 = a[k + j * m];
        const cplx c1 = a[k + j * m + l * m];
        b[k + 2 * j * m] = c0 + c1;
        b[k + 2 * j * m + m] = (c0 - c1) * w;
      }
    }
    std::swap(a, b);
    l /= 2;
    m *= 2;
  }
  return a;
}

std::vector<cplx> ifft_serial(std::span<const cplx> x) {
  std::vector<cplx> conj_in(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) conj_in[i] = std::conj(x[i]);
  auto y = fft_serial(conj_in);
  const double inv_n = 1.0 / static_cast<double>(x.size());
  for (auto& v : y) v = std::conj(v) * inv_n;
  return y;
}

mma::Mat8x8 radix4_butterfly_real() {
  mma::Mat8x8 m{};
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      const double ang = -kTwoPi * static_cast<double>((i * j) % 4) / 4.0;
      // Round the exactly-representable twiddles {1, -1, 0} to kill noise.
      double re = std::cos(ang), im = std::sin(ang);
      if (std::fabs(re) < 1e-12) re = 0.0;
      if (std::fabs(im) < 1e-12) im = 0.0;
      if (std::fabs(re - 1.0) < 1e-12) re = 1.0;
      if (std::fabs(re + 1.0) < 1e-12) re = -1.0;
      if (std::fabs(im - 1.0) < 1e-12) im = 1.0;
      if (std::fabs(im + 1.0) < 1e-12) im = -1.0;
      m[static_cast<std::size_t>((2 * i) * 8 + 2 * j)] = re;
      m[static_cast<std::size_t>((2 * i) * 8 + 2 * j + 1)] = -im;
      m[static_cast<std::size_t>((2 * i + 1) * 8 + 2 * j)] = im;
      m[static_cast<std::size_t>((2 * i + 1) * 8 + 2 * j + 1)] = re;
    }
  }
  return m;
}

}  // namespace cubie::fft
