#include "core/kernels.hpp"

namespace cubie::core {

std::vector<WorkloadPtr> make_suite() {
  std::vector<WorkloadPtr> suite;
  // Quadrant I.
  suite.push_back(make_gemm());
  suite.push_back(make_pic());
  suite.push_back(make_fft());
  suite.push_back(make_stencil());
  // Quadrant II.
  suite.push_back(make_scan());
  // Quadrant III.
  suite.push_back(make_reduction());
  // Quadrant IV.
  suite.push_back(make_bfs());
  suite.push_back(make_gemv());
  suite.push_back(make_spmv());
  suite.push_back(make_spgemm());
  return suite;
}

WorkloadPtr make_workload(const std::string& name) {
  for (auto& w : make_suite()) {
    if (w->name() == name) return std::move(w);
  }
  return nullptr;
}

}  // namespace cubie::core
