#!/usr/bin/env bash
# End-to-end smoke for the Cubie-Serve daemon, run from ctest:
#   test_serve.sh <cubie-binary> <bench_diff-binary>
# Starts `cubie serve` on a Unix socket, then proves the serving contract:
#   * a served run is byte-identical (cmp) to a direct `cubie run --json`;
#   * repeated + concurrent identical requests never recompute a cell
#     (engine misses == materialized cells; memo/coalesced hits observed);
#   * the loadgen emits a schema-v1 MetricsReport bench_diff can consume;
#   * a bad request fails the client but not the daemon;
#   * a `shutdown` request drains the daemon to a clean exit 0.
set -eu

CUBIE="$1"
DIFF="$2"
WORK="$(mktemp -d)"
SOCK="$WORK/serve.sock"
SERVER_PID=""
cleanup() {
  if [ -n "$SERVER_PID" ]; then
    kill "$SERVER_PID" 2>/dev/null || true
    wait "$SERVER_PID" 2>/dev/null || true
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

"$CUBIE" serve --socket "$SOCK" --workers 2 --queue-limit 8 \
         2> "$WORK/serve.log" &
SERVER_PID=$!

# Wait (up to ~10 s) for the daemon to answer ping.
ok=0
for _ in $(seq 1 100); do
  if "$CUBIE" request ping --socket "$SOCK" > /dev/null 2>&1; then
    ok=1
    break
  fi
  sleep 0.1
done
if [ "$ok" -ne 1 ]; then
  echo "FAIL: daemon never answered ping" >&2
  cat "$WORK/serve.log" >&2
  exit 1
fi

# A served run must be byte-identical to a direct local run of the same
# plan, and bench_diff must see zero delta between the two reports.
"$CUBIE" request run GEMV --variant all --gpu all --scale 16 \
         --socket "$SOCK" --json "$WORK/served.json" 2> /dev/null
"$CUBIE" run GEMV --variant all --gpu all --scale 16 \
         --json "$WORK/direct.json" > /dev/null 2>&1
cmp "$WORK/served.json" "$WORK/direct.json"
"$DIFF" "$WORK/served.json" "$WORK/direct.json" > /dev/null

# The daemon's engine stays warm: the same request again is identical and
# served from memo, and identical concurrent requests coalesce instead of
# recomputing. Fire four at once, then read the stats envelope.
"$CUBIE" request run GEMV --variant all --gpu all --scale 16 \
         --socket "$SOCK" --json "$WORK/served2.json" 2> /dev/null
cmp "$WORK/served.json" "$WORK/served2.json"
pids=""
for i in 1 2 3 4; do
  "$CUBIE" request run GEMM --scale 16 --socket "$SOCK" \
           --json "$WORK/conc_$i.json" 2> /dev/null &
  pids="$pids $!"
done
for p in $pids; do wait "$p"; done
cmp "$WORK/conc_1.json" "$WORK/conc_2.json"
cmp "$WORK/conc_1.json" "$WORK/conc_4.json"

# `request stats` renders a human table by default; scripts keep the full
# machine envelope via --json.
"$CUBIE" request stats --socket "$SOCK" 2> /dev/null | grep -q "uptime_s"
"$CUBIE" request stats --socket "$SOCK" --json "$WORK/stats.json" 2> /dev/null
python3 - "$WORK/stats.json" <<'EOF'
import json, sys
env = json.load(open(sys.argv[1]))
assert env["ok"] is True, env
eng, srv = env["engine"], env["server"]
# Every materialized cell was computed exactly once across all requests;
# the repeats above were served as memo or coalesced hits.
assert eng["misses"] == eng["cells"], eng
assert eng["memo_hits"] + eng["coalesced_hits"] > 0, eng
assert srv["completed"] >= 6, srv
assert srv["rejected_overloaded"] == 0, srv
assert srv["uptime_s"] > 0, srv
assert srv["rejections"]["overloaded"] == 0, srv
print("stats ok: %d cells computed once, %d memo + %d coalesced" %
      (eng["misses"], eng["memo_hits"], eng["coalesced_hits"]))
EOF

# Cubie-Pulse: the daemon answers `metrics` inline with a Prometheus text
# exposition whose counters reconcile exactly with the stats envelope.
"$CUBIE" request metrics --socket "$SOCK" > "$WORK/scrape.prom" 2> /dev/null
python3 - "$WORK/scrape.prom" "$WORK/stats.json" <<'EOF'
import json, sys
series = {}
for line in open(sys.argv[1]):
    line = line.strip()
    if not line or line.startswith("#"):
        continue
    # Strip a trailing OpenMetrics exemplar (Cubie-Flight) before the split.
    name, value = line.split(" # ")[0].rsplit(" ", 1)
    series[name] = float(value)
env = json.load(open(sys.argv[2]))
eng = env["engine"]
assert series['cubie_cells_finished_total{source="compute"}'] == eng["misses"]
assert series['cubie_cells_finished_total{source="memo"}'] == eng["memo_hits"]
assert (series['cubie_cells_finished_total{source="coalesced"}']
        == eng["coalesced_hits"])
# The metrics scrape itself runs inline; at least the worker-path requests
# so far are finished, and every cell_finish landed one wall observation.
assert series['cubie_requests_finished_total{path="worker"}'] >= 6
total_cells = (eng["misses"] + eng["memo_hits"] + eng["disk_hits"]
               + eng["coalesced_hits"])
assert series["cubie_cell_wall_seconds_count"] == total_cells
print("metrics scrape ok: %d series, %d cell finishes" %
      (len(series), total_cells))
EOF

# `cubie top` consumes the same metrics/stats pair; one frame must render
# the dashboard lines even with stdout piped (non-TTY block mode).
"$CUBIE" top --socket "$SOCK" --interval 50 --iterations 1 \
         > "$WORK/top.out" 2> /dev/null
grep -q "req/s" "$WORK/top.out"
grep -q "cache-hit" "$WORK/top.out"
grep -q "p99" "$WORK/top.out"

# The load generator produces a schema-v1 MetricsReport whose self-diff is
# clean, with the latency/throughput metrics present.
"$CUBIE" loadgen GEMV --socket "$SOCK" --concurrency 4 --requests 32 \
         --scale 16 --sleep-ms 0.2 --json "$WORK/load.json" > /dev/null 2>&1
"$DIFF" "$WORK/load.json" "$WORK/load.json" > /dev/null
python3 - "$WORK/load.json" <<'EOF'
import json, sys
rep = json.load(open(sys.argv[1]))
assert rep["schema_version"] == 1, rep
assert rep["tool"] == "cubie_loadgen", rep
(rec,) = rep["records"]
for m in ("completed", "rejected", "req_per_s", "p50_ms", "p95_ms", "p99_ms"):
    assert m in rec["metrics"], (m, rec)
assert rec["metrics"]["completed"] == 32, rec
assert rec["metrics"]["rejected"] == 0, rec
print("loadgen report ok: %.0f req/s, p99 %.3f ms" %
      (rec["metrics"]["req_per_s"], rec["metrics"]["p99_ms"]))
EOF

# A bad request fails the client (exit 1) without taking the daemon down.
if "$CUBIE" request run NoSuchKernel --socket "$SOCK" > /dev/null 2>&1; then
  echo "FAIL: unknown workload request did not fail" >&2
  exit 1
fi
"$CUBIE" request ping --socket "$SOCK" > /dev/null

# Graceful drain: a shutdown request ends `serve` with exit status 0.
"$CUBIE" request shutdown --socket "$SOCK" > /dev/null
rc=0
wait "$SERVER_PID" || rc=$?
SERVER_PID=""
if [ "$rc" -ne 0 ]; then
  echo "FAIL: daemon exited $rc after shutdown request" >&2
  cat "$WORK/serve.log" >&2
  exit 1
fi
grep -q "drained" "$WORK/serve.log"

echo "serve integration test OK"
