// Figure 9: cache-aware roofline on the H200 model - DRAM and L1 bandwidth
// ceilings plus the FP64 tensor-core and CUDA-core peaks, with every
// workload/variant plotted at (arithmetic intensity, achieved GFLOP/s).
// BFS is excluded (bit-wise operations), as in the paper.
//
// --model selects the device-model backend the points are priced with.
// Under the default analytic backend the output is byte-identical to the
// pre-backend figure; under cachesim each record additionally carries the
// simulated L2 hit rate, so the two rooflines can be diffed per point.

#include "bench_util.hpp"

#include "sim/roofline.hpp"

#include <iostream>

int main(int argc, char** argv) {
  using namespace cubie;
  auto bench = benchutil::bench_init(argc, argv, "fig09_roofline",
                                     "Figure 9: cache-aware roofline, H200");
  const int s = bench.scale;
  const auto model = bench.model_for(sim::Gpu::H200);
  const sim::Roofline roof(sim::h200());

  std::cout << "=== Figure 9: cache-aware roofline, H200 ===\n\n"
            << "Ceilings: FP64 TC peak = "
            << common::fmt_double(roof.tc_peak() / 1e12, 1)
            << " TFLOPS, FP64 CC peak = "
            << common::fmt_double(roof.cc_peak() / 1e12, 1)
            << " TFLOPS\n  DRAM BW = "
            << common::fmt_double(sim::h200().dram_bw / 1e12, 1)
            << " TB/s, L1 BW (N_SM*N_LSU*W*f) = "
            << common::fmt_double(sim::h200().smem_bw / 1e12, 1)
            << " TB/s, ridge AI = "
            << common::fmt_double(roof.ridge_ai(), 2) << " FLOP/B\n\n";

  // BFS is excluded from the roofline, so name the floating-point
  // workloads explicitly in the Plan instead of sweeping the whole suite.
  engine::Plan plan = engine::Plan::representative(s).with_gpus({sim::Gpu::H200});
  for (const auto& w : bench.suite()) {
    if (w->is_floating_point()) plan.workloads.push_back(w->name());
  }
  bench.warm(plan);

  common::Table t({"Workload", "Variant", "AI (FLOP/B)", "achieved GFLOP/s",
                   "roof GFLOP/s", "% of roof", "bound"});
  for (const auto& w : bench.suite()) {
    if (!w->is_floating_point()) continue;  // BFS excluded
    const auto tc_case = w->cases(s)[w->representative_case()];
    for (auto v : benchutil::available_variants(*w)) {
      const auto& out = bench.run(*w, v, tc_case);
      const auto pred = model->predict(out.profile);
      const auto pt = roof.point(w->name() + "/" + core::variant_name(v),
                                 out.profile, pred);
      t.add_row({w->name(), core::variant_name(v),
                 common::fmt_double(pt.arithmetic_intensity, 3),
                 common::fmt_double(pt.achieved_flops / 1e9, 1),
                 common::fmt_double(pt.attainable_flops / 1e9, 1),
                 common::fmt_double(
                     100.0 * pt.achieved_flops /
                         std::max(1.0, pt.attainable_flops), 1),
                 sim::bottleneck_name(pred.bound)});
      auto& rec = bench.record(w->name(), core::variant_name(v), "H200",
                               tc_case.label);
      rec.set("arithmetic_intensity", pt.arithmetic_intensity);
      rec.set("achieved_gflops", pt.achieved_flops / 1e9);
      rec.set("attainable_gflops", pt.attainable_flops / 1e9);
      // Per-backend mode: only non-default backends add metrics (and a
      // title suffix below), so the analytic report stays byte-identical
      // to the pre-backend figure.
      if (pred.l2_hit_rate >= 0.0) rec.set("l2_hit_rate", pred.l2_hit_rate);
    }
  }
  t.print(std::cout);
  std::cout << "\nCSV:\n";
  t.print_csv(std::cout);
  if (bench.model != "analytic") {
    bench.report.title += " [model=" + bench.model + "]";
  }
  return bench.finish();
}
