// Report contracts: JSON escaping, writer/parser round-trips, and the
// schema_version-1 golden shape every bench binary emits behind --json.
// bench_diff and external consumers parse these files; the golden test is
// the tripwire that schema changes must bump kSchemaVersion.

#include "common/report.hpp"

#include <gtest/gtest.h>

#include <clocale>
#include <optional>
#include <string>

namespace cubie {
namespace {

TEST(Json, EscapesQuotesBackslashesAndControlChars) {
  EXPECT_EQ(report::json_escape("plain"), "plain");
  EXPECT_EQ(report::json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(report::json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(report::json_escape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
  EXPECT_EQ(report::json_escape(std::string("\x01", 1)), "\\u0001");
  // UTF-8 bytes pass through untouched.
  EXPECT_EQ(report::json_escape("\xc3\xa9"), "\xc3\xa9");
}

TEST(Json, DumpParseRoundTrip) {
  report::Json j = report::Json::object();
  j["int"] = report::Json::number(42.0);
  j["neg"] = report::Json::number(-0.125);
  j["tiny"] = report::Json::number(3.0303049973792811e-05);
  j["s"] = report::Json::string("he said \"hi\"\n");
  j["flag"] = report::Json::boolean(true);
  j["nothing"] = report::Json();
  auto arr = report::Json::array();
  arr.push_back(report::Json::number(1.0));
  arr.push_back(report::Json::string("two"));
  j["arr"] = std::move(arr);

  for (int indent : {-1, 0, 2}) {
    std::string err;
    const auto parsed = report::Json::parse(j.dump(indent), &err);
    ASSERT_TRUE(parsed.has_value()) << err;
    // Numbers round-trip exactly and member order is preserved.
    EXPECT_EQ(parsed->dump(2), j.dump(2));
  }
  const auto parsed = report::Json::parse(j.dump(2));
  EXPECT_DOUBLE_EQ(parsed->find("tiny")->as_number(),
                   3.0303049973792811e-05);
  EXPECT_EQ(parsed->find("s")->as_string(), "he said \"hi\"\n");
}

TEST(Json, ParserRejectsMalformedInput) {
  for (const char* bad : {"", "{", "[1,", "{\"a\":}", "1 2", "{'a':1}",
                          "\"unterminated", "nul", "{\"a\":1,}"}) {
    std::string err;
    EXPECT_FALSE(report::Json::parse(bad, &err).has_value()) << bad;
    EXPECT_FALSE(err.empty()) << bad;
  }
}

TEST(Json, ParsesUnicodeEscapes) {
  const auto j = report::Json::parse("\"\\u0041\\u00e9\"");
  ASSERT_TRUE(j.has_value());
  EXPECT_EQ(j->as_string(), "A\xc3\xa9");
}

TEST(MetricsReport, RoundTripsThroughJson) {
  report::MetricsReport rep;
  rep.tool = "unit_test";
  rep.title = "round trip";
  rep.scale_divisor = 4;
  // Note: references returned by add_record are invalidated by the next
  // add_record call (vector growth) - finish each record before the next.
  {
    auto& r1 = rep.add_record("GEMM", "TC", "H200", "512^3");
    r1.set("time_ms", 1.25);
    r1.set("gflops", 812.5);
  }
  rep.add_record("BFS", "CC", "", "roadNet").set("gteps", 0.75);
  rep.tables.push_back({"t", {"a", "b"}, {{"1", "x"}, {"2", "y"}}});
  sim::TraceNode node;
  node.name = "root";
  node.wall_s = 0.5;
  node.inclusive.tc_flops = 7.0;
  sim::TraceNode child;
  child.name = "leaf";
  node.children.push_back(child);
  rep.traces.push_back(node);

  std::string err;
  const auto back =
      report::MetricsReport::from_json(rep.to_json(), &err);
  ASSERT_TRUE(back.has_value()) << err;
  EXPECT_EQ(back->tool, "unit_test");
  EXPECT_EQ(back->scale_divisor, 4);
  ASSERT_EQ(back->records.size(), 2u);
  EXPECT_EQ(back->records[0].key(), "GEMM|TC|H200|512^3");
  ASSERT_NE(back->records[0].get("gflops"), nullptr);
  EXPECT_DOUBLE_EQ(*back->records[0].get("gflops"), 812.5);
  EXPECT_EQ(back->records[1].case_label, "roadNet");
  ASSERT_EQ(back->tables.size(), 1u);
  EXPECT_EQ(back->tables[0].rows[1][1], "y");
  ASSERT_EQ(back->traces.size(), 1u);
  EXPECT_EQ(back->traces[0].name, "root");
  EXPECT_DOUBLE_EQ(back->traces[0].inclusive.tc_flops, 7.0);
  ASSERT_EQ(back->traces[0].children.size(), 1u);
  EXPECT_EQ(back->traces[0].children[0].name, "leaf");
}

TEST(MetricsReport, SchemaGoldenIsStable) {
  // Golden serialized form of a minimal report. If this test breaks, the
  // schema changed: either restore compatibility or bump kSchemaVersion
  // and update docs/OBSERVABILITY.md alongside this string.
  report::MetricsReport rep;
  rep.tool = "golden";
  rep.title = "Golden";
  rep.scale_divisor = 2;
  rep.add_record("GEMM", "TC", "H200", "256^3").set("time_ms", 0.5);

  const std::string expected =
      "{\n"
      "  \"schema_version\": 1,\n"
      "  \"tool\": \"golden\",\n"
      "  \"title\": \"Golden\",\n"
      "  \"scale_divisor\": 2,\n"
      "  \"records\": [\n"
      "    {\n"
      "      \"workload\": \"GEMM\",\n"
      "      \"variant\": \"TC\",\n"
      "      \"gpu\": \"H200\",\n"
      "      \"case\": \"256^3\",\n"
      "      \"metrics\": {\n"
      "        \"time_ms\": 0.5\n"
      "      }\n"
      "    }\n"
      "  ],\n"
      "  \"tables\": [],\n"
      "  \"traces\": []\n"
      "}";
  EXPECT_EQ(rep.to_json().dump(2), expected);
  EXPECT_EQ(report::MetricsReport::kSchemaVersion, 1);
}

TEST(MetricsReport, AddRecordMergesByKey) {
  report::MetricsReport rep;
  rep.add_record("W", "V", "G", "c").set("a", 1.0);
  rep.add_record("W", "V", "G", "c").set("b", 2.0);
  rep.add_record("W", "V", "G", "other").set("a", 3.0);
  ASSERT_EQ(rep.records.size(), 2u);
  EXPECT_EQ(rep.records[0].metrics.size(), 2u);
  EXPECT_DOUBLE_EQ(*rep.records[0].get("b"), 2.0);
}

// JSON must be locale-independent: number formatting and parsing go through
// std::to_chars / std::from_chars, so a host program (or embedding) that
// calls setlocale(LC_NUMERIC, "de_DE") — where printf("%g") would emit
// "0,5" and strtod would stop at the comma — gets byte-identical reports.
TEST(MetricsReport, NumbersAreLocaleIndependent) {
  report::MetricsReport rep;
  rep.tool = "locale";
  rep.title = "Locale";
  rep.scale_divisor = 3;
  auto& rec = rep.add_record("GEMM", "TC", "H200", "c");
  rec.set("frac", 0.5);                        // "0,5" under de_DE %g
  rec.set("sci", 3.0303049973792811e-05);      // exponent + fraction
  rec.set("neg", -1234.0625);
  const std::string c_locale_dump = rep.to_json().dump(2);

  const char* saved = std::setlocale(LC_NUMERIC, nullptr);
  const std::string restore = saved ? saved : "C";
  if (std::setlocale(LC_NUMERIC, "de_DE.UTF-8") == nullptr &&
      std::setlocale(LC_NUMERIC, "de_DE") == nullptr) {
    GTEST_SKIP() << "no de_DE locale available on this host";
  }
  // Both the dump and the parse happen under the comma-decimal locale.
  const std::string de_dump = rep.to_json().dump(2);
  const auto parsed_json = report::Json::parse(de_dump);
  std::optional<report::MetricsReport> parsed;
  if (parsed_json.has_value())
    parsed = report::MetricsReport::from_json(*parsed_json);
  std::setlocale(LC_NUMERIC, restore.c_str());

  EXPECT_EQ(de_dump, c_locale_dump);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->records.size(), 1u);
  EXPECT_EQ(*parsed->records[0].get("frac"), 0.5);
  EXPECT_EQ(*parsed->records[0].get("sci"), 3.0303049973792811e-05);
  EXPECT_EQ(*parsed->records[0].get("neg"), -1234.0625);
}

TEST(MetricsReport, FromJsonIgnoresUnknownKeysAndChecksVersion) {
  auto j = report::Json::parse(
      "{\"schema_version\":1,\"tool\":\"t\",\"title\":\"T\","
      "\"scale_divisor\":1,\"future_key\":[1,2,3],\"records\":[]}");
  ASSERT_TRUE(j.has_value());
  EXPECT_TRUE(report::MetricsReport::from_json(*j).has_value());

  auto v2 = report::Json::parse("{\"schema_version\":99,\"records\":[]}");
  ASSERT_TRUE(v2.has_value());
  std::string err;
  EXPECT_FALSE(report::MetricsReport::from_json(*v2, &err).has_value());
  EXPECT_FALSE(err.empty());
}

TEST(MetricsReport, RegressionDirectionsForServingMetrics) {
  // The Cubie-Serve load-generator metrics: latency quantiles and failure
  // counts regress upward, throughput regresses downward. req_per_s in
  // particular must not be misread as a seconds quantity by its _s suffix.
  EXPECT_FALSE(report::lower_is_better("req_per_s"));
  EXPECT_FALSE(report::lower_is_better("throughput_gbps"));
  EXPECT_FALSE(report::lower_is_better("completed"));
  EXPECT_FALSE(report::lower_is_better("cells_per_s"));
  EXPECT_TRUE(report::lower_is_better("p50_ms"));
  EXPECT_TRUE(report::lower_is_better("p95_ms"));
  EXPECT_TRUE(report::lower_is_better("p99_ms"));
  EXPECT_TRUE(report::lower_is_better("latency_ms"));
  EXPECT_TRUE(report::lower_is_better("rejected"));
  // The pre-existing directions are unchanged.
  EXPECT_TRUE(report::lower_is_better("time_ms"));
  EXPECT_TRUE(report::lower_is_better("energy_j"));
  EXPECT_TRUE(report::lower_is_better("max_err"));
  EXPECT_FALSE(report::lower_is_better("gflops"));
  EXPECT_FALSE(report::lower_is_better("gteps"));
}

}  // namespace
}  // namespace cubie
