// Per-dataset sweeps: every Table 3/4 instance and every GEMV shape runs
// the TC variant against the serial reference (the per-workload smoke in
// test_workloads.cpp covers one case; this covers all five).

#include "common/metrics.hpp"
#include "core/kernels.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace cubie {
namespace {

constexpr int kScale = 16;

struct Sweep {
  const char* workload;
  std::size_t case_index;
  double tolerance;
};

std::vector<Sweep> sweeps() {
  std::vector<Sweep> s;
  for (std::size_t i = 0; i < 5; ++i) s.push_back({"SpMV", i, 1e-11});
  for (std::size_t i = 0; i < 5; ++i) s.push_back({"SpGEMM", i, 1e-11});
  for (std::size_t i = 0; i < 5; ++i) s.push_back({"GEMV", i, 1e-12});
  for (std::size_t i = 0; i < 5; ++i) s.push_back({"BFS", i, 0.0});
  return s;
}

class DatasetSweep : public ::testing::TestWithParam<Sweep> {};

TEST_P(DatasetSweep, TcMatchesReference) {
  const auto& p = GetParam();
  const auto w = core::make_workload(p.workload);
  const auto cases = w->cases(kScale);
  const auto& tc = cases[p.case_index];
  const auto ref = w->reference(tc);
  const auto out = w->run(core::Variant::TC, tc);
  ASSERT_EQ(out.values.size(), ref.size()) << tc.label;
  const auto err = common::error_stats(out.values, ref);
  EXPECT_LE(err.max, p.tolerance) << p.workload << " " << tc.label;
}

TEST_P(DatasetSweep, CceMatchesReference) {
  const auto& p = GetParam();
  const auto w = core::make_workload(p.workload);
  if (!w->cce_distinct()) return;
  const auto cases = w->cases(kScale);
  const auto& tc = cases[p.case_index];
  const auto ref = w->reference(tc);
  const auto out = w->run(core::Variant::CCE, tc);
  ASSERT_EQ(out.values.size(), ref.size());
  const auto err = common::error_stats(out.values, ref);
  EXPECT_LE(err.max, std::max(p.tolerance, 1e-11)) << tc.label;
}

TEST_P(DatasetSweep, BaselineMatchesReference) {
  const auto& p = GetParam();
  const auto w = core::make_workload(p.workload);
  if (!w->has_baseline()) return;
  const auto cases = w->cases(kScale);
  const auto& tc = cases[p.case_index];
  const auto ref = w->reference(tc);
  const auto out = w->run(core::Variant::Baseline, tc);
  ASSERT_EQ(out.values.size(), ref.size());
  const auto err = common::error_stats(out.values, ref);
  EXPECT_LE(err.max, std::max(p.tolerance, 1e-11)) << tc.label;
}

INSTANTIATE_TEST_SUITE_P(
    AllDatasets, DatasetSweep, ::testing::ValuesIn(sweeps()),
    [](const ::testing::TestParamInfo<Sweep>& info) {
      return std::string(info.param.workload) + "_case" +
             std::to_string(info.param.case_index);
    });

TEST(DatasetSweep, BfsLevelsExactOnEveryGraph) {
  // Levels are integers: every variant must be *exactly* right.
  const auto w = core::make_workload("BFS");
  for (const auto& tc : w->cases(kScale)) {
    const auto ref = w->reference(tc);
    for (auto v : {core::Variant::Baseline, core::Variant::TC,
                   core::Variant::CC, core::Variant::CCE}) {
      const auto out = w->run(v, tc);
      ASSERT_EQ(out.values.size(), ref.size());
      for (std::size_t i = 0; i < ref.size(); ++i) {
        ASSERT_EQ(out.values[i], ref[i])
            << tc.label << " " << core::variant_name(v) << " vertex " << i;
      }
    }
  }
}

TEST(DatasetSweep, SpmvProfilesScaleWithNnz) {
  // More nonzeros -> more counted work, across the dataset sweep.
  const auto w = core::make_workload("SpMV");
  double prev_flops = -1.0;
  std::vector<std::pair<double, double>> points;  // (nnz-proxy, tc_flops)
  for (const auto& tc : w->cases(kScale)) {
    const auto out = w->run(core::Variant::TC, tc);
    points.emplace_back(out.profile.useful_flops, out.profile.tc_flops);
    EXPECT_GT(out.profile.tc_flops, out.profile.useful_flops)
        << tc.label << ": MMA redundancy must exceed useful work";
  }
  (void)prev_flops;
  // Padding redundancy is bounded (sanity: < 16x of useful work).
  for (const auto& [useful, tc_flops] : points) {
    EXPECT_LT(tc_flops, useful * 16.0);
  }
}

}  // namespace
}  // namespace cubie
