#pragma once
// Disk persistence for Cubie-Engine cells. Each cell's RunOutput is stored
// as one JSON file (common/report's writer, schema below) under a cache
// directory, keyed by the cell's content key:
//
//   {
//     "schema_version": 1,
//     "kind": "cubie-cell",
//     "key":  "<cell_key>",
//     "profile": { ...KernelProfile... },
//     "values": [ <double>, ... ]
//   }
//
// File names are a 64-bit FNV-1a hash of the key; the key stored inside the
// file is verified on load, so a hash collision degrades to a cache miss,
// never a wrong result. Numbers round-trip exactly (shortest-representation
// printing), so a cell served from disk is bit-identical to a fresh run.

#include "core/workload.hpp"

#include <optional>
#include <string>

namespace cubie::engine {

class DiskCache {
 public:
  DiskCache() = default;
  // Creates `dir` (one level) if it does not exist yet.
  explicit DiskCache(std::string dir);

  bool enabled() const { return !dir_.empty(); }
  const std::string& dir() const { return dir_; }

  // nullopt on miss, unreadable file, or key mismatch.
  std::optional<core::RunOutput> load(const std::string& key) const;
  // Best-effort write-through (tmp file + rename); false on I/O failure.
  bool store(const std::string& key, const core::RunOutput& out) const;

  // Path a key maps to (exposed for tests and tooling).
  std::string path_for(const std::string& key) const;

 private:
  std::string dir_;
};

}  // namespace cubie::engine
