#include "sparse/stats.hpp"

#include "sparse/mbsr.hpp"

#include <algorithm>
#include <cmath>

namespace cubie::sparse {

std::vector<std::string> MatrixFeatures::names() {
  return {"log_rows", "log_nnz",  "density",  "row_mean",   "row_std",
          "row_max_ratio", "col_std", "symmetry", "block_fill", "diag_frac"};
}

MatrixFeatures matrix_features(const Csr& a) {
  MatrixFeatures f;
  const double nnz = static_cast<double>(a.nnz());
  const double rows = std::max(1, a.rows);
  const double cols = std::max(1, a.cols);
  f.log_rows = std::log10(rows);
  f.log_nnz = std::log10(std::max(1.0, nnz));
  f.density = nnz / (rows * cols);

  // Row-degree statistics.
  double mean = nnz / rows, var = 0.0, mx = 0.0;
  for (int r = 0; r < a.rows; ++r) {
    const double d = a.row_nnz(r);
    var += (d - mean) * (d - mean);
    mx = std::max(mx, d);
  }
  f.row_mean = mean;
  f.row_std = std::sqrt(var / rows);
  f.row_max_ratio = mean > 0.0 ? mx / mean : 0.0;

  // Column-degree statistics.
  std::vector<int> col_deg(static_cast<std::size_t>(a.cols), 0);
  for (int c : a.col_idx) col_deg[static_cast<std::size_t>(c)] += 1;
  const double cmean = nnz / cols;
  double cvar = 0.0;
  for (int d : col_deg) cvar += (d - cmean) * (d - cmean);
  f.col_std = std::sqrt(cvar / cols);

  // Structural symmetry: fraction of off-diagonal entries whose transpose
  // position is also present.
  const Csr t = transpose(a);
  std::size_t mirrored = 0, off_diag = 0, diag = 0;
  for (int r = 0; r < a.rows; ++r) {
    for (int p = a.row_ptr[static_cast<std::size_t>(r)]; p < a.row_ptr[static_cast<std::size_t>(r) + 1]; ++p) {
      const int c = a.col_idx[static_cast<std::size_t>(p)];
      if (c == r) {
        ++diag;
        continue;
      }
      ++off_diag;
      const auto lo = t.col_idx.begin() + t.row_ptr[static_cast<std::size_t>(r)];
      const auto hi = t.col_idx.begin() + t.row_ptr[static_cast<std::size_t>(r) + 1];
      if (std::binary_search(lo, hi, c)) ++mirrored;
    }
  }
  f.symmetry = off_diag > 0 ? static_cast<double>(mirrored) / static_cast<double>(off_diag) : 1.0;
  f.diag_frac = nnz > 0.0 ? static_cast<double>(diag) / nnz : 0.0;

  // 4x4 block fill ratio, the key predictor of MMU-format efficiency.
  f.block_fill = mbsr_from_csr(a).fill_ratio();
  return f;
}

}  // namespace cubie::sparse
