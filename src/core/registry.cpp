#include "core/kernels.hpp"

#include <array>
#include <cctype>
#include <utility>

namespace cubie::core {
namespace {

using Factory = WorkloadPtr (*)();

// Name -> factory, in the paper's presentation order (Quadrant I -> IV).
// make_suite() iterates this table, so the two entry points can never
// disagree about which workloads exist.
constexpr std::array<std::pair<const char*, Factory>, 10> kRegistry{{
    // Quadrant I.
    {"GEMM", make_gemm},
    {"PiC", make_pic},
    {"FFT", make_fft},
    {"Stencil", make_stencil},
    // Quadrant II.
    {"Scan", make_scan},
    // Quadrant III.
    {"Reduction", make_reduction},
    // Quadrant IV.
    {"BFS", make_bfs},
    {"GEMV", make_gemv},
    {"SpMV", make_spmv},
    {"SpGEMM", make_spgemm},
}};

// Case-insensitive fold for CLI-friendly lookup ("spmv" == "SpMV").
std::string fold(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s)
    out.push_back(static_cast<char>(
        std::tolower(static_cast<unsigned char>(c))));
  return out;
}

}  // namespace

std::vector<WorkloadPtr> make_suite() {
  std::vector<WorkloadPtr> suite;
  suite.reserve(kRegistry.size());
  for (const auto& [name, factory] : kRegistry) {
    (void)name;
    suite.push_back(factory());
  }
  return suite;
}

std::vector<std::string> workload_names() {
  std::vector<std::string> names;
  names.reserve(kRegistry.size());
  for (const auto& [name, factory] : kRegistry) {
    (void)factory;
    names.emplace_back(name);
  }
  return names;
}

WorkloadPtr make_workload(const std::string& name) {
  const std::string want = fold(name);
  for (const auto& [canonical, factory] : kRegistry) {
    if (fold(canonical) == want) return factory();
  }
  return nullptr;
}

}  // namespace cubie::core
