#pragma once
// Cubie-Cluster router: a front-end daemon that speaks the ordinary
// Cubie-Serve wire protocol (serve/protocol.hpp, version 1) on one socket
// and fans the work out across N `cubie serve` workers.
//
//   * `suite` requests are decomposed into per-cell shards (cluster/
//     shard.hpp): cells are priced through the router's device model,
//     assigned to healthy workers by cost-weighted rendezvous hashing, and
//     forwarded as sharded `suite` requests (the protocol's "cells" array).
//     The per-shard reports are merged (cluster/merge.hpp) back into the
//     exact report a single worker would have produced — bench_diff
//     --tol 0 zero-delta is the contract the cluster test enforces.
//   * `run` / `check` / `sleep` pass through to the least-loaded healthy
//     worker unchanged — the response is relayed byte-for-byte.
//   * `ping` / `stats` / `metrics` / `flight` / `shutdown` are answered by
//     the router itself; `stats` carries the usual "server" block plus a
//     "workers" array and a "cluster" counter block, and `metrics` exposes
//     the cubie_cluster_* Prometheus series.
//
// Failure semantics: every router->worker call runs under the configured
// RetryPolicy — "overloaded" answers are retried on the same worker with
// jittered exponential backoff, transport failures (a killed worker) mark
// the worker unhealthy immediately and fail the call over to the next
// live worker (counted in cubie_cluster_failovers_total). A background
// prober sends `stats` every probe_interval_ms; unhealthy_after
// consecutive failures demote a worker, one success readmits it. Shutdown
// is a graceful drain: in-flight fan-outs complete, then (with
// forward_shutdown, the --spawn mode) the workers are drained too.
//
// Workers share work through the engine disk cache (point every worker's
// --cache at one directory); the router itself never executes a cell —
// its engine only enumerates and prices the suite.

#include "cluster/shard.hpp"
#include "engine/engine.hpp"
#include "serve/client.hpp"
#include "serve/retry.hpp"
#include "telemetry/flight.hpp"
#include "telemetry/metrics_registry.hpp"

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

namespace cubie::cluster {

struct WorkerSpec {
  std::string name;  // label in metrics / stats ("w0", or the address)
  serve::Endpoint endpoint;
};

struct RouterOptions {
  // Front-end endpoint: Unix socket path, or localhost TCP when empty
  // (tcp_port 0 = ephemeral; see Router::tcp_port()).
  std::string socket_path;
  int tcp_port = -1;
  std::vector<WorkerSpec> workers;
  serve::RetryPolicy retry;          // router -> worker calls
  double probe_interval_ms = 500.0;  // health-probe cadence
  int unhealthy_after = 3;           // consecutive probe failures to demote
  // Engine options for suite enumeration and cell-cost pricing only (the
  // model axis must match the workers' --model for key-compatible costs);
  // the router's engine never executes a cell.
  engine::EngineOptions engine;
  std::size_t flight_capacity =
      telemetry::FlightRecorderSink::kDefaultCapacity;
  // Forward the graceful drain to the workers once the router has drained
  // (used by `cubie cluster --spawn`, which owns its workers' lifetime).
  bool forward_shutdown = false;
};

// One worker's health snapshot (the stats "workers" array entry).
struct WorkerStatus {
  std::string name;
  std::string endpoint;
  bool healthy = true;
  std::size_t inflight = 0;      // router calls currently outstanding
  std::size_t shards = 0;        // suite shards ever sent to it
  std::size_t consecutive_failures = 0;
};

struct RouterStats {
  std::size_t connections = 0;
  std::size_t started = 0;    // requests begun (all are handled inline)
  std::size_t completed = 0;  // responses written
  std::size_t suites = 0;     // suite fan-outs
  std::size_t shards = 0;     // shard requests sent (incl. retries' sends)
  std::size_t retries = 0;    // same-worker overloaded retries
  std::size_t failovers = 0;  // shard/passthrough moves to another worker
  std::size_t rejected_unavailable = 0;  // no healthy worker to serve
  std::size_t bad_requests = 0;
  double last_imbalance_ratio = 1.0;  // of the most recent assignment
  double uptime_s = 0.0;
};

class Router {
 public:
  explicit Router(RouterOptions opts);
  ~Router();
  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  // Bind + listen + start the health prober. False (with *error) on socket
  // failure or an empty worker list.
  bool start(std::string* error);

  // Accept loop; blocks until a drain completes. Call start() first.
  void serve();

  // Begin a graceful drain (async-signal-safe, like Server's).
  void request_shutdown();

  int tcp_port() const;
  const std::string& endpoint() const;

  RouterStats stats() const;
  std::vector<WorkerStatus> workers() const;

  // The router's Cubie-Pulse registry (cubie_cluster_* series plus the
  // usual request-lifecycle series its own bus events fold into).
  telemetry::MetricsRegistry& metrics_registry();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace cubie::cluster
