#pragma once
// Cubie-Scope: a process-wide telemetry event bus.
//
// The runtime layers (Cubie-Engine, its disk cache, Cubie-Check, and the
// sim::Tracer span machinery) emit typed Events to one global EventBus,
// which fans them out to pluggable Sinks. Everything that used to surface
// only as end-of-run aggregate counters — cell executions and where they
// were served from, cache load/store outcomes, conformance verdicts, span
// open/close — becomes an ordered, timestamped stream:
//
//   * telemetry::JsonlSink      — deterministic JSONL event log (one JSON
//                                 object per line, --events FILE);
//   * telemetry::ChromeTraceSink — Chrome trace_event JSON with engine
//                                 cells laid out in per-worker-thread lanes
//                                 and traced span trees nested beneath them
//                                 (--trace-out FILE, load in chrome://tracing
//                                 or Perfetto);
//   * telemetry::ProgressSink   — live stderr progress for --jobs N runs
//                                 (cells done/total, hit rate, EWMA ETA).
//
// The disabled path is one relaxed atomic load: with no sinks installed,
// emit() callers check bus().enabled() and skip event construction
// entirely, so always-on instrumentation costs nothing in the bench
// sweeps. With sinks installed, events are stamped (sequence number, time
// since bus epoch, dense thread lane) and delivered under one mutex, so
// the global sequence order matches the sink output order exactly.
//
// Event stream invariants (pinned by tests/test_telemetry.cpp):
//   * every ExperimentEngine cell request emits exactly one
//     cell_start/cell_finish pair, tagged with where it was served from
//     ("compute" | "memo" | "disk") — so the number of cell_finish events
//     equals memo_hits + disk_hits + misses + traced_reruns;
//   * a --jobs N run's event stream is a permutation of the serial run's,
//     with identical per-cell payloads (wall-clock fields aside);
//   * sinks are flushed on the EngineError unwind path, so a failed run
//     still leaves a complete event log and a loadable timeline.
//
// See docs/OBSERVABILITY.md ("Cubie-Scope") for the schema.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

namespace cubie::telemetry {

// Event stream schema version (JSONL header line; bump on any change that
// is not purely additive, mirroring report::MetricsReport::kSchemaVersion).
inline constexpr int kEventSchemaVersion = 1;

enum class EventKind {
  PlanStart,     // engine Plan execution begins; count = cells in the plan
  CellStart,     // a cell request begins; name = cell content key
  CellFinish,    // cell served; source, wall_s, modeled_s, ok
  CacheLoad,     // DiskCache::load outcome; status = CacheStatus name
  CacheStore,    // DiskCache::store outcome; status, ok
  SpanOpen,      // sim::Tracer span opened; name = span name
  SpanClose,     // span closed; wall_s = host wall inside the span
  CheckVerdict,  // conformance verdict; name = verdict key, ok, detail
  // Cubie-Serve request lifecycle (src/serve/server.cpp). name = the
  // request's plan key, detail = the client-chosen request id.
  RequestAccepted,  // parsed and admitted past the bounded queue
  RequestQueued,    // enqueued; count = queue depth after the push
  RequestStarted,   // a worker began executing it
  RequestFinished,  // response written; wall_s = service time, ok
  RequestRejected,  // refused; source = typed error code, ok = 0
  // Cachesim device-model backend: per-prediction cache statistics.
  // name = cache level ("l2"), source = "hit" | "miss", count = accesses.
  CacheSimStats,
};

// Stable wire name ("cell_start", "cache_load", ...).
const char* event_kind_name(EventKind k);

// One telemetry event. Only the fields meaningful for `kind` are set;
// numeric fields use negative sentinels for "not applicable" so sinks can
// omit them. seq / t_s / tid are stamped by the bus at emit time, and so
// are trace_id / span_id (from the emitting thread's active TraceScope)
// when the emitter left them empty — additive schema-v1 fields, omitted
// from the JSONL form when absent (see trace_context.hpp, Cubie-Flight).
struct Event {
  EventKind kind = EventKind::CellStart;
  std::uint64_t seq = 0;    // global emission order (1-based)
  double t_s = 0.0;         // host wall-clock seconds since the bus epoch
  int tid = 0;              // dense thread lane (0 = first-emitting thread)
  std::string name;         // cell key, span name, or verdict key
  std::string source;       // cell_finish: "compute" | "memo" | "disk"
  std::string status;       // cache events: engine::cache_status_name
  std::string detail;       // human-readable context (verdict reason, ...)
  std::string trace_id;     // Cubie-Flight 128-bit trace id (32 hex chars)
  std::string span_id;      // Cubie-Flight span id (16 hex chars)
  std::string request_id;   // serve lifecycle: the client-chosen request id
  double wall_s = -1.0;     // host wall interval; < 0 = n/a
  double modeled_s = -1.0;  // modeled kernel time (reference device); < 0 = n/a
  std::size_t count = 0;    // plan_start: number of cells
  int ok = -1;              // tri-state: -1 n/a, 0 fail, 1 pass
};

// The deterministic part of an event: everything except the bus stamps
// (seq, t_s, tid), the host wall-clock fields, and the Cubie-Flight
// correlation ids (random per request). Two functionally
// identical runs produce identical payload multisets regardless of thread
// schedule — the identity tests/test_telemetry.cpp builds on.
std::string event_payload(const Event& e);

// A telemetry consumer. on_event is called under the bus mutex, in global
// sequence order; flush() must leave the sink's output usable (it may be
// called more than once, including mid-stream on an error unwind).
class Sink {
 public:
  virtual ~Sink() = default;
  virtual void on_event(const Event& e) = 0;
  virtual void flush() {}
};

// The process-wide bus. Sinks are installed per run (see sinks.hpp's
// install()); with none installed, enabled() is a single relaxed atomic
// load and emit() is never reached by instrumentation call sites.
class EventBus {
 public:
  // Cheap gate for instrumentation: true iff any sink is installed.
  bool enabled() const noexcept;

  // Stamp (seq, t_s, tid), fill trace_id/span_id from the calling thread's
  // active TraceScope when empty, and deliver to every sink, in install
  // order.
  void emit(Event e);

  void add_sink(std::shared_ptr<Sink> s);
  void remove_sink(const Sink* s);  // flushes the sink before removal
  std::size_t sink_count() const;

  // Flush every installed sink (EngineError unwind path, end of run).
  void flush();

  // Reset the epoch and sequence counter (tests; not needed between runs).
  void reset_clock();

 private:
  friend EventBus& bus();
  EventBus();
  struct Impl;
  std::shared_ptr<Impl> impl_;
};

// The process-wide instance.
EventBus& bus();

}  // namespace cubie::telemetry
