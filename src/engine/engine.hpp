#pragma once
// Cubie-Engine: memoized, optionally parallel execution of experiment
// Plans. One engine instance per process unifies suite execution across
// the bench binaries, the CLI, and the tests:
//
//   * every unique cell (workload, variant, case, scale) is functionally
//     executed at most once per process — an in-process content-keyed
//     cache serves repeated requests (e.g. per-GPU pricing loops);
//   * with a cache directory configured, cells persist across processes
//     via engine::DiskCache, so consecutive bench runs share work;
//   * Plan execution can fan out over a thread pool (`jobs`); results are
//     bit-identical to serial order because each cell's run is
//     deterministic (per-cell seeded RNG) and pricing happens afterwards,
//     serially, in the caller's iteration order.
//
// Hit/miss and wall-clock counters are exported through the Cubie-Trace
// MetricsReport ("engine" block) so `cubie profile` and every bench's
// --json report show what the engine did. See docs/ARCHITECTURE.md.

#include "common/hwcounters.hpp"
#include "core/kernels.hpp"
#include "core/workload.hpp"
#include "engine/cache.hpp"
#include "engine/plan.hpp"
#include "sim/profile.hpp"
#include "sim/trace.hpp"

#include <cstddef>
#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

namespace cubie::report {
struct EngineStats;
struct HwStats;
}

namespace cubie::engine {

struct EngineOptions {
  int jobs = 1;           // thread-pool width for Plan execution
  std::string cache_dir;  // empty = no disk persistence
  // Device-model backend (sim::make_device_model name) this engine's cells
  // are keyed under and its telemetry modeled_s is computed with. The
  // engine constructor throws std::invalid_argument on an unknown name.
  std::string model = "analytic";
};

// Typed failure of a cell execution: carries the content key of the cell
// whose Workload::run threw, so callers know *which* cell failed. Thrown by
// execute() on both the serial and the thread-pool path — a worker-thread
// exception is captured, the queue drained, the pool joined, and the first
// failure rethrown here (never std::terminate).
class EngineError : public std::runtime_error {
 public:
  EngineError(std::string cell_key, const std::string& what_msg)
      : std::runtime_error("cell '" + cell_key + "': " + what_msg),
        cell_(std::move(cell_key)) {}
  const std::string& cell() const noexcept { return cell_; }

 private:
  std::string cell_;
};

// Process-lifetime counters (see report::EngineStats for the exported form).
struct EngineCounters {
  std::size_t memo_hits = 0;   // served from the in-process cell cache
  std::size_t disk_hits = 0;   // served from the disk cache
  // Requests that arrived while another thread was already computing the
  // same cell and were served by that single-flight computation: N
  // concurrent identical requests perform exactly one Workload::run, the
  // leader counts one miss and the N-1 waiters count here (Cubie-Serve's
  // request coalescing is built on this).
  std::size_t coalesced_hits = 0;
  std::size_t misses = 0;      // first functional executions in this process
  // Traced re-runs of already-memoized cells (run_traced must re-execute to
  // record spans; counted separately so `cubie profile` on a warm cache
  // does not over-report misses).
  std::size_t traced_reruns = 0;
  // Disk-cache files that existed but could not be used (corrupt, wrong
  // kind, key mismatch, undecodable value) plus failed stores — each is a
  // typed CacheStatus, surfaced here instead of a silent miss.
  std::size_t disk_errors = 0;
  double exec_wall_s = 0.0;    // host wall-clock spent inside Workload::run
  double max_cell_wall_s = 0.0;  // slowest single cell
  // Hardware-counter totals over computed cells (Cubie-Pulse). hw_cells
  // counts the cells that actually produced a sample; hw_total.available
  // stays false when perf_event_open is unpermitted.
  hw::HwSample hw_total;
  std::size_t hw_cells = 0;
};

// A cell the engine has materialized (executed or loaded), in insertion
// order. The workload is identified by name so the record stays valid even
// for cells run against caller-owned Workload instances.
struct MaterializedCell {
  std::string workload;
  core::Variant variant = core::Variant::TC;
  core::TestCase test_case;
  int scale = 1;
  std::string key;
  // The hardware-counter sample of this cell's functional execution;
  // available=false for disk-loaded cells and when counters are off.
  hw::HwSample hw;
};

class ExperimentEngine {
 public:
  ExperimentEngine();
  explicit ExperimentEngine(EngineOptions opts);
  ~ExperimentEngine();

  ExperimentEngine(ExperimentEngine&&) noexcept;
  ExperimentEngine& operator=(ExperimentEngine&&) noexcept;
  ExperimentEngine(const ExperimentEngine&) = delete;
  ExperimentEngine& operator=(const ExperimentEngine&) = delete;

  const EngineOptions& options() const { return opts_; }

  // The registry suite, constructed once and owned by the engine.
  const std::vector<core::WorkloadPtr>& suite();
  // Case-insensitive name lookup into the engine-owned suite; nullptr if
  // unknown.
  const core::Workload* workload(const std::string& name);

  // Memoized execution of one cell. The returned reference stays valid for
  // the engine's lifetime. Thread-safe, and single-flight per cell: when N
  // threads request the same un-memoized cell concurrently, exactly one
  // executes Workload::run (one miss) while the other N-1 block until the
  // result lands and are counted as coalesced_hits. If the leader's run
  // throws, one waiter is promoted to retry rather than caching the
  // failure.
  const core::RunOutput& run(const core::Workload& w, core::Variant v,
                             const core::TestCase& tc, int scale);

  // Traced execution: always runs (a memoized result has no spans to
  // record), stores the result in the cell cache afterwards. A first
  // execution counts as a miss; a traced re-run of an already-memoized cell
  // counts as traced_reruns (its wall time still accrues to exec_wall_s —
  // the run really happened).
  const core::RunOutput& run_traced(const core::Workload& w, core::Variant v,
                                    const core::TestCase& tc, int scale,
                                    sim::Tracer& tracer);

  // Expand a Plan into its unique cells, in deterministic
  // (workload, case, variant) order. Unknown workload names are skipped.
  std::vector<Cell> expand(const Plan& p);

  // Execute every cell of the Plan (opts.jobs threads), warming the cell
  // cache. Returns the number of unique cells. Throws EngineError naming
  // the failed cell if any Workload::run throws (on the pool path the first
  // exception is captured, the queue drained, the threads joined, then the
  // error rethrown — worker exceptions never reach std::terminate).
  std::size_t execute(const Plan& p);
  // Same, over caller-supplied cells (e.g. cases outside Workload::cases()).
  std::size_t execute(const std::vector<Cell>& cells);

  // Every cell materialized so far (executed, traced, or disk-loaded), in
  // insertion order. The conformance harness (src/check/) uses this to
  // verify whatever a bench actually ran.
  std::vector<MaterializedCell> materialized() const;

  // Predicted wall-clock cost (seconds) of one cell under this engine's
  // device-model backend, priced on the reference device. Used by the
  // Cubie-Cluster router to weight shard assignment: expensive cells should
  // not pile onto one worker. When the cell is already memoized its real
  // counted profile is priced; otherwise a deterministic proxy profile
  // built from the case dimensions stands in (see proxy_profile) — either
  // way the estimate is a pure function of (cell, model), so every router
  // instance computes identical assignments. Never executes the cell.
  double modeled_cell_cost_s(const core::Workload& w, core::Variant v,
                             const core::TestCase& tc, int scale);

  EngineCounters counters() const;
  // Counters in the MetricsReport exchange form ("engine" block).
  report::EngineStats stats() const;
  // Hardware-counter totals in the MetricsReport exchange form ("hw"
  // block); the typed unavailable fallback when counters are off or no
  // cell was computed in this process.
  report::HwStats hw_stats() const;
  // True once any cell has been requested (hit or miss).
  bool active() const;

 private:
  struct Impl;
  EngineOptions opts_;
  std::unique_ptr<Impl> impl_;
};

// Deterministic stand-in KernelProfile for a cell that has not been
// executed: work scales with the product of the case dimensions (the
// classic O(prod dims) kernel-cost proxy), memory traffic with the pairwise
// dimension products (operand footprints), and the FLOPs land on the pipe
// the variant actually uses (tensor-core pipe for TC, CUDA-core pipe
// otherwise). It is intentionally crude — the router only needs relative
// weights that rank a large GEMM above a small stencil, not absolute
// seconds — and being a pure function of (variant, case) it is identical
// across processes, which keeps shard assignment deterministic.
sim::KernelProfile proxy_profile(core::Variant v, const core::TestCase& tc);

}  // namespace cubie::engine
