#include "engine/cache.hpp"

#include "common/report.hpp"

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace cubie::engine {
namespace {

std::string fnv1a_hex(const std::string& s) {
  std::uint64_t h = 14695981039346656037ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

}  // namespace

DiskCache::DiskCache(std::string dir) : dir_(std::move(dir)) {
  if (!dir_.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);  // best effort
  }
}

std::string DiskCache::path_for(const std::string& key) const {
  return dir_ + "/cell-" + fnv1a_hex(key) + ".json";
}

std::optional<core::RunOutput> DiskCache::load(const std::string& key) const {
  if (!enabled()) return std::nullopt;
  std::ifstream in(path_for(key));
  if (!in) return std::nullopt;
  std::ostringstream ss;
  ss << in.rdbuf();
  const auto j = report::Json::parse(ss.str());
  if (!j || !j->is_object()) return std::nullopt;
  const report::Json* kind = j->find("kind");
  if (!kind || !kind->is_string() || kind->as_string() != "cubie-cell")
    return std::nullopt;
  const report::Json* stored = j->find("key");
  if (!stored || !stored->is_string() || stored->as_string() != key)
    return std::nullopt;  // hash collision or stale file: treat as miss
  core::RunOutput out;
  if (const report::Json* p = j->find("profile"); p && p->is_object()) {
    out.profile = report::profile_from_json(*p);
  } else {
    return std::nullopt;
  }
  if (const report::Json* vals = j->find("values"); vals && vals->is_array()) {
    out.values.reserve(vals->size());
    for (std::size_t i = 0; i < vals->size(); ++i) {
      if (!vals->at(i).is_number()) return std::nullopt;
      out.values.push_back(vals->at(i).as_number());
    }
  }
  return out;
}

bool DiskCache::store(const std::string& key,
                      const core::RunOutput& out) const {
  if (!enabled()) return false;
  report::Json j = report::Json::object();
  j["schema_version"] = report::Json::number(1);
  j["kind"] = report::Json::string("cubie-cell");
  j["key"] = report::Json::string(key);
  j["profile"] = report::to_json(out.profile);
  report::Json vals = report::Json::array();
  for (double v : out.values) vals.push_back(report::Json::number(v));
  j["values"] = std::move(vals);

  const std::string path = path_for(key);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp);
    if (!os) return false;
    os << j.dump(-1) << '\n';
    if (!os) return false;
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  return !ec;
}

}  // namespace cubie::engine
