// Synthetic SuiteSparse stand-ins: structural guarantees of the Table 4
// generators, corpus diversity, and matrix feature extraction.

#include "sparse/generators.hpp"
#include "sparse/io.hpp"
#include "sparse/stats.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace cubie {
namespace {

class Table4Matrices : public ::testing::TestWithParam<std::string> {};

TEST_P(Table4Matrices, GeneratesValidScaledInstance) {
  const auto nm = sparse::make_table4_matrix(GetParam(), 8);
  EXPECT_EQ(nm.name, GetParam());
  EXPECT_FALSE(nm.group.empty());
  const auto& m = nm.matrix;
  EXPECT_TRUE(m.structurally_valid());
  EXPECT_GT(m.rows, 100);
  EXPECT_EQ(m.rows, m.cols);
  EXPECT_GT(m.nnz(), static_cast<std::size_t>(m.rows));  // > 1 nnz/row
}

TEST_P(Table4Matrices, DeterministicAcrossCalls) {
  const auto a = sparse::make_table4_matrix(GetParam(), 8).matrix;
  const auto b = sparse::make_table4_matrix(GetParam(), 8).matrix;
  EXPECT_EQ(a.col_idx, b.col_idx);
  EXPECT_EQ(a.vals, b.vals);
}

INSTANTIATE_TEST_SUITE_P(AllFive, Table4Matrices,
                         ::testing::ValuesIn(sparse::table4_names()),
                         [](const auto& info) {
                           std::string s = info.param;
                           for (char& c : s)
                             if (!isalnum(static_cast<unsigned char>(c))) c = '_';
                           return s;
                         });

TEST(Table4, SpmsrtsIsSymmetric) {
  const auto m = sparse::make_table4_matrix("spmsrts", 8).matrix;
  const auto f = sparse::matrix_features(m);
  EXPECT_GT(f.symmetry, 0.99);
}

TEST(Table4, Qcd39PerRowStructure) {
  // conf5_4-8x8-10 has a constant row degree in the original; the lattice
  // stand-in is also regular: row degree variance must be ~0.
  const auto m = sparse::make_table4_matrix("conf5_4-8x8-10", 8).matrix;
  const auto f = sparse::matrix_features(m);
  EXPECT_LT(f.row_std, 0.5);
  EXPECT_NEAR(f.row_mean, 27.0, 0.5);  // 9 neighbours x dof 3
}

TEST(Table4, Raefsky3HasDenseBlocks) {
  const auto m = sparse::make_table4_matrix("raefsky3", 8).matrix;
  const auto f = sparse::matrix_features(m);
  EXPECT_GT(f.block_fill, 0.8);   // FEM vertex blocks are dense
  EXPECT_GT(f.row_mean, 30.0);    // heavy rows like the original (~70)
}

TEST(Generators, BandedRespectsBandwidth) {
  const auto m = sparse::gen_banded(200, 5, 0.5, false, 1);
  for (int r = 0; r < m.rows; ++r) {
    for (int p = m.row_ptr[static_cast<std::size_t>(r)]; p < m.row_ptr[static_cast<std::size_t>(r) + 1]; ++p) {
      EXPECT_LE(std::abs(m.col_idx[static_cast<std::size_t>(p)] - r), 5);
    }
  }
}

TEST(Generators, RandomUniformRowDegree) {
  const auto m = sparse::gen_random_uniform(300, 7, 2);
  for (int r = 0; r < m.rows; ++r) EXPECT_EQ(m.row_nnz(r), 7);
}

TEST(Generators, PowerlawIsSkewed) {
  const auto m = sparse::gen_powerlaw(1000, 8.0, 1.0, 3);
  const auto f = sparse::matrix_features(m);
  EXPECT_GT(f.row_max_ratio, 3.0);  // heavy head rows
}

TEST(Corpus, SpansFamiliesDeterministically) {
  const auto c1 = sparse::synthetic_matrix_corpus(20, 9);
  const auto c2 = sparse::synthetic_matrix_corpus(20, 9);
  ASSERT_EQ(c1.size(), 20u);
  for (std::size_t i = 0; i < c1.size(); ++i) {
    EXPECT_EQ(c1[i].group, c2[i].group);
    EXPECT_EQ(c1[i].matrix.nnz(), c2[i].matrix.nnz());
    EXPECT_TRUE(c1[i].matrix.structurally_valid());
  }
  // All five families appear.
  std::set<std::string> groups;
  for (const auto& nm : c1) groups.insert(nm.group);
  EXPECT_EQ(groups.size(), 5u);
}

TEST(Table4, MatrixMarketFilePassthrough) {
  // A path-like name loads the real file instead of a synthetic stand-in.
  const std::string path = ::testing::TempDir() + "cubie_t4.mtx";
  {
    sparse::Coo c;
    c.rows = c.cols = 3;
    c.row = {0, 1, 2};
    c.col = {0, 1, 2};
    c.val = {1.0, 2.0, 3.0};
    sparse::write_matrix_market_file(path, c);
  }
  const auto nm = sparse::make_table4_matrix(path, 8);
  EXPECT_EQ(nm.group, "file");
  EXPECT_EQ(nm.matrix.rows, 3);
  EXPECT_EQ(nm.matrix.nnz(), 3u);
  EXPECT_DOUBLE_EQ(nm.matrix.vals[2], 3.0);
  std::remove(path.c_str());
}

TEST(Table4, MissingFileThrows) {
  EXPECT_THROW(sparse::make_table4_matrix("/no/such/file.mtx", 1),
               std::runtime_error);
}

TEST(Features, NamesMatchArray) {
  EXPECT_EQ(sparse::MatrixFeatures::names().size(),
            static_cast<std::size_t>(sparse::MatrixFeatures::kCount));
}

TEST(Features, DiagonalMatrixProperties) {
  sparse::Coo c;
  c.rows = c.cols = 64;
  for (int i = 0; i < 64; ++i) {
    c.row.push_back(i);
    c.col.push_back(i);
    c.val.push_back(1.0);
  }
  const auto f = sparse::matrix_features(sparse::csr_from_coo(c));
  EXPECT_DOUBLE_EQ(f.diag_frac, 1.0);
  EXPECT_DOUBLE_EQ(f.symmetry, 1.0);  // no off-diagonal entries
  EXPECT_DOUBLE_EQ(f.row_mean, 1.0);
  EXPECT_DOUBLE_EQ(f.row_std, 0.0);
  EXPECT_DOUBLE_EQ(f.block_fill, 0.25);  // 4 of 16 slots per diagonal block
}

}  // namespace
}  // namespace cubie
