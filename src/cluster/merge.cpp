#include "cluster/merge.hpp"

#include <algorithm>
#include <unordered_map>
#include <utility>

namespace cubie::cluster {

namespace {

bool fail(std::string* error, std::string msg) {
  if (error) *error = std::move(msg);
  return false;
}

}  // namespace

std::optional<report::MetricsReport> merge_shard_reports(
    const std::vector<report::MetricsReport>& shards,
    const std::vector<std::string>& canonical_keys, std::string* error) {
  if (shards.empty()) {
    if (error) *error = "no shard reports to merge";
    return std::nullopt;
  }

  // Index every shard record by identity; overlap is a router bug (shards
  // must partition the suite) and is reported, not silently resolved.
  std::unordered_map<std::string, const report::MetricRecord*> by_key;
  by_key.reserve(canonical_keys.size());
  for (const auto& shard : shards) {
    if (shard.tool != shards.front().tool ||
        shard.title != shards.front().title ||
        shard.scale_divisor != shards.front().scale_divisor) {
      fail(error, "shard reports disagree on tool/title/scale ('" +
                      shard.tool + "' vs '" + shards.front().tool + "')");
      return std::nullopt;
    }
    for (const auto& rec : shard.records) {
      const auto [it, inserted] = by_key.emplace(rec.key(), &rec);
      if (!inserted) {
        fail(error, "record '" + rec.key() + "' appears in two shards");
        return std::nullopt;
      }
    }
  }
  if (by_key.size() != canonical_keys.size()) {
    fail(error, "shards carry " + std::to_string(by_key.size()) +
                    " records, expected " +
                    std::to_string(canonical_keys.size()));
    return std::nullopt;
  }

  report::MetricsReport merged;
  merged.tool = shards.front().tool;
  merged.title = shards.front().title;
  merged.scale_divisor = shards.front().scale_divisor;
  merged.records.reserve(canonical_keys.size());
  for (const auto& key : canonical_keys) {
    const auto it = by_key.find(key);
    if (it == by_key.end()) {
      fail(error, "no shard produced record '" + key + "'");
      return std::nullopt;
    }
    merged.records.push_back(*it->second);
  }
  return merged;
}

report::EngineStats merge_engine_stats(const report::EngineStats& a,
                                       const report::EngineStats& b) {
  report::EngineStats m;
  m.cells = a.cells + b.cells;
  m.memo_hits = a.memo_hits + b.memo_hits;
  m.disk_hits = a.disk_hits + b.disk_hits;
  m.coalesced_hits = a.coalesced_hits + b.coalesced_hits;
  m.misses = a.misses + b.misses;
  m.traced_reruns = a.traced_reruns + b.traced_reruns;
  m.disk_errors = a.disk_errors + b.disk_errors;
  m.exec_wall_s = a.exec_wall_s + b.exec_wall_s;
  m.max_cell_wall_s = std::max(a.max_cell_wall_s, b.max_cell_wall_s);
  return m;
}

report::HwStats merge_hw_stats(const report::HwStats& a,
                               const report::HwStats& b) {
  if (!a.available && !b.available) {
    report::HwStats m = a;
    if (m.unavailable_reason.empty()) m.unavailable_reason =
        b.unavailable_reason;
    return m;
  }
  report::HwStats m;
  m.available = true;
  const report::HwStats* sides[2] = {&a, &b};
  for (const auto* s : sides) {
    if (!s->available) continue;
    m.cells += s->cells;
    m.cycles += s->cycles;
    m.instructions += s->instructions;
    m.cache_references += s->cache_references;
    m.cache_misses += s->cache_misses;
    m.task_clock_s += s->task_clock_s;
  }
  return m;
}

}  // namespace cubie::cluster
