// Cubie-Pulse: the metrics registry, Prometheus text exposition, the
// MetricsSink event folding, hardware-counter fallback semantics, and the
// loadgen percentile/histogram changes that ride along.
//
// Ordering note: gtest_discover_tests runs every TEST in its own process,
// so the irreversible hw::force_unavailable() hook below cannot leak into
// the other tests.

#include "common/hwcounters.hpp"
#include "common/report.hpp"
#include "engine/engine.hpp"
#include "serve/client.hpp"
#include "telemetry/metrics_registry.hpp"
#include "telemetry/sinks.hpp"
#include "telemetry/telemetry.hpp"

#include <gtest/gtest.h>

#include <clocale>
#include <cstdint>
#include <limits>
#include <utility>
#include <memory>
#include <string>
#include <vector>

namespace {

using namespace cubie;
using telemetry::Labels;

// --- Histogram bucket assignment -------------------------------------------

TEST(PulseHistogram, BucketAssignmentIsLeInclusive) {
  telemetry::Histogram h({1.0, 2.5, 5.0});
  // le semantics: a value equal to an upper bound belongs to that bucket.
  EXPECT_EQ(h.bucket_index(0.1), 0u);
  EXPECT_EQ(h.bucket_index(1.0), 0u);
  EXPECT_EQ(h.bucket_index(1.0000001), 1u);
  EXPECT_EQ(h.bucket_index(2.5), 1u);
  EXPECT_EQ(h.bucket_index(5.0), 2u);
  EXPECT_EQ(h.bucket_index(5.1), 3u);  // +Inf overflow bucket

  h.observe(1.0);
  h.observe(1.0);
  h.observe(3.0);
  h.observe(100.0);
  const auto s = h.snapshot();
  ASSERT_EQ(s.counts.size(), 4u);
  EXPECT_EQ(s.counts[0], 2u);
  EXPECT_EQ(s.counts[1], 0u);
  EXPECT_EQ(s.counts[2], 1u);
  EXPECT_EQ(s.counts[3], 1u);
  EXPECT_EQ(s.total(), 4u);
  EXPECT_DOUBLE_EQ(s.sum, 105.0);
}

TEST(PulseHistogram, SharedLatencyLadderIsStrictlyIncreasing) {
  const auto& b = telemetry::latency_bucket_bounds();
  ASSERT_GE(b.size(), 2u);
  for (std::size_t i = 1; i < b.size(); ++i) EXPECT_LT(b[i - 1], b[i]);
}

// --- Merge associativity ----------------------------------------------------

std::vector<telemetry::MetricSnapshot> make_snapshot(std::uint64_t seed) {
  telemetry::MetricsRegistry reg;
  reg.counter("t_total", "h", {{"k", "a"}}).inc(seed);
  reg.counter("t_total", "h", {{"k", "b"}}).inc(2 * seed + 1);
  reg.gauge("t_gauge", "h").set(static_cast<double>(seed));
  auto& h = reg.histogram("t_seconds", "h", {0.001, 0.01, 0.1});
  for (std::uint64_t i = 0; i <= seed; ++i)
    h.observe(0.0005 * static_cast<double>(i + seed));
  return reg.snapshot();
}

TEST(PulseRegistry, SnapshotMergeIsAssociative) {
  const auto a = make_snapshot(3), b = make_snapshot(7), c = make_snapshot(11);
  const auto left =
      telemetry::merge_snapshots(telemetry::merge_snapshots(a, b), c);
  const auto right =
      telemetry::merge_snapshots(a, telemetry::merge_snapshots(b, c));
  // Compare through the serializer: it covers names, labels, ordering,
  // counter values, gauge right-wins, and every histogram bucket.
  EXPECT_EQ(telemetry::prometheus_text(left), telemetry::prometheus_text(right));
}

TEST(PulseRegistry, SnapshotOrderIsIndependentOfCreationOrder) {
  telemetry::MetricsRegistry fwd, rev;
  fwd.counter("a_total", "h").inc(1);
  fwd.counter("b_total", "h", {{"x", "1"}}).inc(2);
  fwd.counter("b_total", "h", {{"x", "2"}}).inc(3);
  rev.counter("b_total", "h", {{"x", "2"}}).inc(3);
  rev.counter("b_total", "h", {{"x", "1"}}).inc(2);
  rev.counter("a_total", "h").inc(1);
  EXPECT_EQ(telemetry::prometheus_text(fwd), telemetry::prometheus_text(rev));
}

// --- Exposition: escaping, parsing, quantiles -------------------------------

TEST(PulseExposition, LabelEscapingRoundTrips) {
  const std::string nasty = "a\\b\"c\nd";
  telemetry::MetricsRegistry reg;
  reg.counter("esc_total", "help with \"quotes\"", {{"path", nasty}}).inc(5);
  const std::string text = telemetry::prometheus_text(reg);
  // The wire form is escaped...
  EXPECT_NE(text.find("a\\\\b\\\"c\\nd"), std::string::npos);
  // ...and parses back to the original value.
  std::string err;
  const auto exp = telemetry::parse_prometheus_text(text, &err);
  ASSERT_TRUE(exp) << err;
  const auto* s = exp->find("esc_total", {{"path", nasty}});
  ASSERT_NE(s, nullptr);
  EXPECT_DOUBLE_EQ(s->value, 5.0);
}

TEST(PulseExposition, HistogramSerializesCumulativeAndParsesBack) {
  telemetry::MetricsRegistry reg;
  auto& h = reg.histogram("lat_seconds", "h", {0.001, 0.01, 0.1});
  h.observe(0.0005);
  h.observe(0.005);
  h.observe(0.005);
  h.observe(5.0);
  const std::string text = telemetry::prometheus_text(reg);
  std::string err;
  const auto exp = telemetry::parse_prometheus_text(text, &err);
  ASSERT_TRUE(exp) << err;
  const auto buckets = exp->buckets("lat_seconds");
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_DOUBLE_EQ(buckets[0].second, 1.0);  // le=0.001
  EXPECT_DOUBLE_EQ(buckets[1].second, 3.0);  // le=0.01 (cumulative)
  EXPECT_DOUBLE_EQ(buckets[2].second, 3.0);  // le=0.1
  EXPECT_DOUBLE_EQ(buckets[3].second, 4.0);  // +Inf
  EXPECT_DOUBLE_EQ(exp->value_or("lat_seconds_count", {}, -1.0), 4.0);
  // Integer-valued samples render without a decimal point so shell/CI
  // reconciliation can compare them as strings.
  EXPECT_NE(text.find("lat_seconds_count 4\n"), std::string::npos);
}

// The exposition must be locale-independent end to end, extending the PR 3
// invariant report.cpp pins for JSON: under a comma-decimal LC_NUMERIC
// (de_DE), snprintf("%g") renders "0,5" and std::stod stops at a '.', so a
// scrape-and-readback (cubie top, histogram_quantile, the CI counter
// reconciliation) would silently misparse every fractional value. Rendering
// goes through std::to_chars and readback through std::from_chars, so the
// text and the parsed values are byte/bit-identical in both locales.
TEST(PulseExposition, RoundTripIsLocaleIndependent) {
  telemetry::MetricsRegistry reg;
  reg.gauge("frac_ratio", "g").set(0.5);  // "0,5" under de_DE %g
  reg.gauge("sci_ratio", "g").set(3.0303049973792811e-05);
  auto& h = reg.histogram("lat_seconds", "h", {0.0001, 0.25, 2.5});
  h.observe(0.125);  // lands sum 0.125: fractional _sum readback
  const std::string c_text = telemetry::prometheus_text(reg);

  const char* saved = std::setlocale(LC_NUMERIC, nullptr);
  const std::string restore = saved ? saved : "C";
  if (std::setlocale(LC_NUMERIC, "de_DE.UTF-8") == nullptr &&
      std::setlocale(LC_NUMERIC, "de_DE") == nullptr) {
    GTEST_SKIP() << "no de_DE locale available on this host";
  }
  // Both the render and the readback happen under the comma-decimal locale.
  const std::string de_text = telemetry::prometheus_text(reg);
  std::string err;
  const auto exp = telemetry::parse_prometheus_text(de_text, &err);
  std::vector<std::pair<double, double>> buckets;
  if (exp) buckets = exp->buckets("lat_seconds");
  std::setlocale(LC_NUMERIC, restore.c_str());

  EXPECT_EQ(de_text, c_text);
  ASSERT_TRUE(exp) << err;
  EXPECT_EQ(exp->value_or("frac_ratio", {}, -1.0), 0.5);
  EXPECT_EQ(exp->value_or("sci_ratio", {}, -1.0), 3.0303049973792811e-05);
  EXPECT_EQ(exp->value_or("lat_seconds_sum", {}, -1.0), 0.125);
  // Bucket edges ("le" labels) parse back to the exact bounds.
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0].first, 0.0001);
  EXPECT_EQ(buckets[1].first, 0.25);
  EXPECT_EQ(buckets[2].first, 2.5);
}

TEST(PulseExposition, HistogramQuantileInterpolates) {
  // 10 observations in (0.001, 0.01]: the median interpolates inside that
  // bucket, never outside it.
  std::vector<std::pair<double, double>> buckets = {
      {0.001, 0.0}, {0.01, 10.0},
      {std::numeric_limits<double>::infinity(), 10.0}};
  const double p50 = telemetry::histogram_quantile(buckets, 0.5);
  EXPECT_GT(p50, 0.001);
  EXPECT_LE(p50, 0.01);
  // The +Inf bucket resolves to the highest finite edge.
  std::vector<std::pair<double, double>> inf_only = {
      {0.001, 0.0}, {0.01, 0.0},
      {std::numeric_limits<double>::infinity(), 5.0}};
  EXPECT_DOUBLE_EQ(telemetry::histogram_quantile(inf_only, 0.99), 0.01);
  EXPECT_DOUBLE_EQ(telemetry::histogram_quantile({}, 0.5), 0.0);
}

// --- MetricsSink vs engine counters -----------------------------------------

TEST(PulseSink, RegistryReconcilesWithEngineCounters) {
  auto sink = std::make_shared<telemetry::MetricsSink>();
  telemetry::bus().add_sink(sink);
  {
    engine::ExperimentEngine eng(engine::EngineOptions{2, ""});
    auto plan = engine::Plan::representative(16);
    plan.workloads = {"GEMV", "Scan"};
    eng.execute(plan);
    eng.execute(plan);  // second pass: every cell is a memo hit
    const auto c = eng.counters();
    telemetry::bus().remove_sink(sink.get());

    std::string err;
    const auto exp = telemetry::parse_prometheus_text(
        telemetry::prometheus_text(sink->registry()), &err);
    ASSERT_TRUE(exp) << err;
    auto cells = [&](const char* src) {
      return exp->value_or("cubie_cells_finished_total",
                           {{"source", src}}, -1.0);
    };
    EXPECT_EQ(cells("compute"), static_cast<double>(c.misses));
    EXPECT_EQ(cells("memo"), static_cast<double>(c.memo_hits));
    EXPECT_EQ(cells("disk"), static_cast<double>(c.disk_hits));
    EXPECT_EQ(cells("coalesced"), static_cast<double>(c.coalesced_hits));
    const double finishes = static_cast<double>(
        c.misses + c.memo_hits + c.disk_hits + c.coalesced_hits);
    EXPECT_EQ(exp->sum_over("cubie_cells_finished_total"), finishes);
    // Every cell_finish lands exactly one cell-wall observation.
    EXPECT_EQ(exp->value_or("cubie_cell_wall_seconds_count", {}, -1.0),
              finishes);
    EXPECT_EQ(exp->value_or("cubie_plans_total", {}, -1.0), 2.0);
  }
}

TEST(PulseSink, IdleRegistryPreRegistersReconciliationSeries) {
  // An idle daemon's first scrape must already expose the series CI
  // baselines against (delta reconciliation needs the zeros).
  telemetry::MetricsSink sink;
  const std::string text = telemetry::prometheus_text(sink.registry());
  for (const char* needle :
       {"cubie_requests_finished_total{path=\"worker\"} 0",
        "cubie_requests_finished_total{path=\"inline\"} 0",
        "cubie_cells_finished_total{source=\"compute\"} 0",
        "cubie_cells_finished_total{source=\"memo\"} 0",
        "cubie_request_latency_seconds_count 0",
        "cubie_queue_depth 0"}) {
    EXPECT_NE(text.find(needle), std::string::npos) << needle;
  }
}

// --- Hardware counters: typed fallback + report round trip ------------------

std::string dump_report(const report::MetricsReport& rep) {
  return rep.to_json().dump(2) + "\n";
}

TEST(PulseHw, ForcedUnavailableFallbackRoundTripsByteIdentically) {
  // Under ctest this TEST is its own process, so the forced reason is the
  // first (and only) one. When the whole binary runs in one process an
  // earlier test may have probed already — the first reason sticks, exactly
  // like a real probe failure — so assert the invariant, not the string.
  hw::force_unavailable("forced by test (simulated EPERM)");
  EXPECT_FALSE(hw::available());
  EXPECT_FALSE(hw::unavailable_reason().empty());
  const std::string reason = hw::unavailable_reason();
  // A sample taken with counters off is typed-unavailable, not garbage.
  hw::ScopedSample scope;
  const hw::HwSample s = scope.stop();
  EXPECT_FALSE(s.available);
  EXPECT_EQ(s.cycles, 0u);

  engine::ExperimentEngine eng;
  const auto* w = eng.workload("GEMV");
  ASSERT_NE(w, nullptr);
  const auto cases = w->cases(16);
  eng.run(*w, core::Variant::TC, cases[w->representative_case()], 16);

  report::MetricsReport rep;
  rep.tool = "pulse_test";
  rep.title = "hw fallback round trip";
  rep.engine = eng.stats();
  rep.hw = eng.hw_stats();
  ASSERT_TRUE(rep.hw.has_value());
  EXPECT_FALSE(rep.hw->available);
  EXPECT_EQ(rep.hw->unavailable_reason, reason);

  const std::string first = dump_report(rep);
  std::string err;
  const auto parsed =
      report::MetricsReport::from_json(*report::Json::parse(first), &err);
  ASSERT_TRUE(parsed) << err;
  ASSERT_TRUE(parsed->hw.has_value());
  EXPECT_FALSE(parsed->hw->available);
  EXPECT_EQ(dump_report(*parsed), first);  // byte-identical
}

TEST(PulseHw, AvailableStatsRoundTripByteIdentically) {
  report::MetricsReport rep;
  rep.tool = "pulse_test";
  rep.title = "hw available round trip";
  report::HwStats hw;
  hw.available = true;
  hw.cells = 3;
  hw.cycles = 1.23e9;
  hw.instructions = 2.5e9;
  hw.cache_references = 4.0e6;
  hw.cache_misses = 1.0e6;
  hw.task_clock_s = 0.75;
  rep.hw = hw;
  const std::string first = dump_report(rep);
  std::string err;
  const auto parsed =
      report::MetricsReport::from_json(*report::Json::parse(first), &err);
  ASSERT_TRUE(parsed) << err;
  ASSERT_TRUE(parsed->hw.has_value());
  EXPECT_TRUE(parsed->hw->available);
  EXPECT_DOUBLE_EQ(parsed->hw->cells, 3.0);
  EXPECT_EQ(dump_report(*parsed), first);
}

TEST(PulseHw, EngineAggregatesMatchSampleAvailability) {
  // Whatever this process's perf permissions are, hw_stats() must be
  // internally consistent: available => sampled cells were counted;
  // unavailable => a non-empty typed reason.
  engine::ExperimentEngine eng;
  const auto* w = eng.workload("Scan");
  ASSERT_NE(w, nullptr);
  const auto cases = w->cases(16);
  eng.run(*w, core::Variant::TC, cases[w->representative_case()], 16);
  const auto st = eng.hw_stats();
  if (st.available) {
    EXPECT_GE(st.cells, 1.0);
    EXPECT_GT(st.task_clock_s, 0.0);
  } else {
    EXPECT_FALSE(st.unavailable_reason.empty());
  }
}

// --- Loadgen percentiles + client histogram ---------------------------------

TEST(PulseLoadgen, PercentilesInterpolateBetweenRanks) {
  serve::LoadgenResult r;
  r.latencies_ms = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  r.completed = 10;
  EXPECT_DOUBLE_EQ(r.percentile_ms(0), 1.0);
  EXPECT_DOUBLE_EQ(r.percentile_ms(50), 5.5);
  EXPECT_DOUBLE_EQ(r.percentile_ms(95), 9.55);
  EXPECT_DOUBLE_EQ(r.percentile_ms(99), 9.91);
  EXPECT_DOUBLE_EQ(r.percentile_ms(100), 10.0);
  // Distinct ranks no longer collapse for N < 100.
  EXPECT_LT(r.percentile_ms(95), r.percentile_ms(99));
}

TEST(PulseLoadgen, DegenerateSampleCountsAreWellDefined) {
  serve::LoadgenResult one;
  one.latencies_ms = {42.0};
  one.completed = 1;
  for (double q : {0.0, 50.0, 95.0, 99.0, 100.0})
    EXPECT_DOUBLE_EQ(one.percentile_ms(q), 42.0);
  serve::LoadgenResult none;
  EXPECT_DOUBLE_EQ(none.percentile_ms(50), 0.0);
}

TEST(PulseLoadgen, ClientHistogramUsesTheSharedLadder) {
  serve::LoadgenResult r;
  r.latencies_ms = {0.05, 0.5, 2.0, 2000.0};  // 50us, 500us, 2ms, 2s
  r.completed = 4;
  const auto h = r.latency_histogram();
  EXPECT_EQ(h.bounds, telemetry::latency_bucket_bounds());
  EXPECT_EQ(h.total(), 4u);
  telemetry::Histogram ladder(telemetry::latency_bucket_bounds());
  EXPECT_EQ(h.counts[ladder.bucket_index(0.00005)], 1u);
  EXPECT_EQ(h.counts[ladder.bucket_index(2.0)], 1u);
}

// --- progress TTY gating ----------------------------------------------------

TEST(PulseProgress, ForceOverridesTtyDetection) {
  EXPECT_FALSE(telemetry::progress_enabled(false, false));
  EXPECT_FALSE(telemetry::progress_enabled(false, true));
  EXPECT_TRUE(telemetry::progress_enabled(true, true));
  // progress_enabled(true, false) depends on whether stderr is a TTY —
  // deliberately not pinned here so the suite passes both in CI pipes and
  // in an interactive terminal.
}

}  // namespace
