#include "mma/warp.hpp"

#include "mma/simd.hpp"

#include <cmath>

namespace cubie::mma {

namespace {

// The shuffle source-lane vectors of the CC MMA program depend only on the
// fragment layout and k, so they are compile-time constants; building them
// per call put three 32-entry index gathers on the hot path of every tile.
struct ShuffleProgram {
  std::array<std::array<int, kWarpSize>, kK> a_src{}, b0_src{}, b1_src{};
};

constexpr ShuffleProgram make_shuffle_program() {
  ShuffleProgram p;
  for (int k = 0; k < kK; ++k) {
    for (int lane = 0; lane < kWarpSize; ++lane) {
      const auto l = static_cast<std::size_t>(lane);
      const auto kk = static_cast<std::size_t>(k);
      p.a_src[kk][l] = lane_of_a(c_row_of_lane(lane), k);
      p.b0_src[kk][l] = lane_of_b(k, c_col_of_lane(lane, 0));
      p.b1_src[kk][l] = lane_of_b(k, c_col_of_lane(lane, 1));
    }
  }
  return p;
}

constexpr ShuffleProgram kShuffleProgram = make_shuffle_program();

}  // namespace

WarpRegisters load_fragments(const double* a_rowmajor_8x4,
                             const double* b_rowmajor_4x8,
                             const double* c_rowmajor_8x8) {
  WarpRegisters regs;
  for (int lane = 0; lane < kWarpSize; ++lane) {
    regs.a[static_cast<std::size_t>(lane)] =
        a_rowmajor_8x4[a_row_of_lane(lane) * kK + a_k_of_lane(lane)];
    regs.b[static_cast<std::size_t>(lane)] =
        b_rowmajor_4x8[b_k_of_lane(lane) * kN + b_col_of_lane(lane)];
    const int row = c_row_of_lane(lane);
    regs.c0[static_cast<std::size_t>(lane)] =
        c_rowmajor_8x8[row * kN + c_col_of_lane(lane, 0)];
    regs.c1[static_cast<std::size_t>(lane)] =
        c_rowmajor_8x8[row * kN + c_col_of_lane(lane, 1)];
  }
  return regs;
}

void store_fragments(const WarpRegisters& regs, double* d_rowmajor_8x8) {
  for (int lane = 0; lane < kWarpSize; ++lane) {
    const int row = c_row_of_lane(lane);
    d_rowmajor_8x8[row * kN + c_col_of_lane(lane, 0)] = regs.c0[static_cast<std::size_t>(lane)];
    d_rowmajor_8x8[row * kN + c_col_of_lane(lane, 1)] = regs.c1[static_cast<std::size_t>(lane)];
  }
}

void shfl_sync(const std::array<double, kWarpSize>& src,
               const std::array<int, kWarpSize>& lane_of,
               std::array<double, kWarpSize>& dst, WarpStats& stats) {
  stats.shuffle_instructions += 1;
  for (int lane = 0; lane < kWarpSize; ++lane) {
    dst[static_cast<std::size_t>(lane)] = src[static_cast<std::size_t>(lane_of[static_cast<std::size_t>(lane)])];
  }
}

WarpStats cc_mma_m8n8k4(WarpRegisters& regs, sim::KernelProfile* prof) {
  WarpStats stats;
  // Each lane accumulates its two C elements over k = 0..3. Per k step it
  // needs a[row][k] (owned by lane row*4+k) and b[k][col0], b[k][col1]
  // (owned by lanes col*4+k). Every operand fetch is a warp-wide shuffle;
  // every accumulation step is one warp-wide FMA per C register.
  std::array<double, kWarpSize> a_k{}, b_k0{}, b_k1{};
  const simd::Kernels& ker = simd::kernels();
  for (int k = 0; k < kK; ++k) {
    const auto kk = static_cast<std::size_t>(k);
    // Operand gathers through precomputed shuffle source vectors:
    // a[row_of(lane)][k], b[k][col0_of(lane)], b[k][col1_of(lane)].
    shfl_sync(regs.a, kShuffleProgram.a_src[kk], a_k, stats);
    shfl_sync(regs.b, kShuffleProgram.b0_src[kk], b_k0, stats);
    shfl_sync(regs.b, kShuffleProgram.b1_src[kk], b_k1, stats);
    // Two warp-wide FMAs (one per accumulator register), vectorized across
    // the 32 lanes; each lane's k chain stays serial (bit-exact, simd.hpp).
    stats.fma_instructions += 2;
    ker.lanes_fma32(a_k.data(), b_k0.data(), regs.c0.data());
    ker.lanes_fma32(a_k.data(), b_k1.data(), regs.c1.data());
  }
  if (prof != nullptr) {
    // 2 FLOPs per lane per warp-wide FMA issue.
    prof->cc_flops += 2.0 * kWarpSize * static_cast<double>(stats.fma_instructions);
    prof->warp_instructions += static_cast<double>(stats.total());
  }
  return stats;
}

}  // namespace cubie::mma
