// Ablation: device-to-device variability. Section 5.1 pins every paper
// measurement to a single physical GPU per model, citing Sinha et al.'s
// finding that same-SKU GPUs vary non-negligibly (clock/power binning).
// This bench asks whether that choice could change any *conclusion*: it
// perturbs the H200 model's clock (and with it compute peaks and issue
// rate) and DRAM bandwidth across the reported +-5% variability band and
// re-evaluates every TC-vs-baseline verdict.

#include "bench_util.hpp"

#include <iostream>

namespace {

using namespace cubie;

// A perturbed copy of a device spec: `f_clock` scales clock-derived rates
// (FLOP peaks, issue rate), `f_bw` scales DRAM bandwidth.
sim::DeviceSpec perturbed(const sim::DeviceSpec& base, double f_clock,
                          double f_bw) {
  sim::DeviceSpec d = base;
  d.name = base.name + " (perturbed)";
  d.fp64_tc_peak *= f_clock;
  d.fp64_cc_peak *= f_clock;
  d.fp16_tc_peak *= f_clock;
  d.fp16_cc_peak *= f_clock;
  d.bit_tc_peak *= f_clock;
  d.int_cc_peak *= f_clock;
  d.clock_hz *= f_clock;
  d.smem_bw *= f_clock;
  d.dram_bw *= f_bw;
  return d;
}

}  // namespace

int main(int argc, char** argv) {
  auto bench = benchutil::bench_init(
      argc, argv, "ablation_variability",
      "Ablation: +-5% device variability (H200 binning corners)");
  const int s = bench.scale;
  std::cout << "=== Ablation: +-5% device variability (Section 5.1's "
               "single-GPU rationale) ===\nTC speedup over baseline on the "
               "nominal H200 vs the slow/fast corners.\n\n";

  const auto nominal = bench.model_for(sim::Gpu::H200);
  const auto slow_spec = perturbed(sim::h200(), 0.95, 0.95);
  const auto fast_spec = perturbed(sim::h200(), 1.05, 1.05);
  const auto skew_spec = perturbed(sim::h200(), 1.05, 0.95);  // clock-up, bw-down
  const auto slow = bench.model_for(slow_spec);
  const auto fast = bench.model_for(fast_spec);
  const auto skew = bench.model_for(skew_spec);

  engine::Plan plan = engine::Plan::representative(s)
                          .with_variants({core::Variant::TC,
                                          core::Variant::Baseline})
                          .with_gpus({sim::Gpu::H200});
  for (const auto& w : bench.suite()) {
    if (w->has_baseline()) plan.workloads.push_back(w->name());
  }
  bench.warm(plan);

  common::Table t({"Workload", "nominal", "slow bin", "fast bin",
                   "skewed bin", "verdict stable?"});
  int stable = 0, total = 0;
  for (const auto& w : bench.suite()) {
    if (!w->has_baseline()) continue;
    const auto tc_case = w->cases(s)[w->representative_case()];
    const auto& tc = bench.run(*w, core::Variant::TC, tc_case);
    const auto& base = bench.run(*w, core::Variant::Baseline, tc_case);
    auto speedup = [&](const sim::DeviceModel& m) {
      return m.predict(base.profile).time_s / m.predict(tc.profile).time_s;
    };
    const double sn = speedup(*nominal), ss = speedup(*slow), sf = speedup(*fast),
                 sk = speedup(*skew);
    const bool verdict_stable = ((sn > 1.0) == (ss > 1.0)) &&
                                ((sn > 1.0) == (sf > 1.0)) &&
                                ((sn > 1.0) == (sk > 1.0));
    stable += verdict_stable;
    ++total;
    t.add_row({w->name(), common::fmt_double(sn, 2) + "x",
               common::fmt_double(ss, 2) + "x",
               common::fmt_double(sf, 2) + "x",
               common::fmt_double(sk, 2) + "x",
               verdict_stable ? "yes" : "NO"});
    auto& rec = bench.record(w->name(), "TC/Baseline", "H200", tc_case.label);
    rec.set("speedup_nominal", sn);
    rec.set("speedup_slow", ss);
    rec.set("speedup_fast", sf);
    rec.set("speedup_skew", sk);
    rec.set("verdict_stable", verdict_stable ? 1.0 : 0.0);
  }
  t.print(std::cout);
  bench.capture("variability", t);
  std::cout << "\nVerdicts stable under +-5% binning: " << stable << "/"
            << total
            << "\nReading: uniform clock/bandwidth binning cancels out of "
               "the speedup\nratios almost entirely; only the skewed corner "
               "(clock vs bandwidth moving\nopposite ways) shifts the "
               "compute/memory balance, and by far less than\nany win/loss "
               "margin - supporting the paper's single-GPU methodology.\n";
  return bench.finish();
}
