// Figure 11: PCA comparing the behavioural diversity of Cubie against
// Rodinia and SHOC. Each kernel contributes a vector of architectural
// metrics (memory utilization, compute throughput, FMA-pipe and tensor-pipe
// usage, issue intensity, arithmetic intensity) extracted from its profile
// on the H200 model - the NCU-metric substitution documented in DESIGN.md.
// Cubie's wider dispersion in PC space is the paper's Observation 9.

#include "analysis/features.hpp"
#include "analysis/pca.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"
#include "core/kernels.hpp"
#include "core/suite_proxies.hpp"
#include "sim/model.hpp"

#include <cmath>
#include <iostream>
#include <map>

int main(int argc, char** argv) {
  using namespace cubie;
  auto bench = benchutil::bench_init(
      argc, argv, "fig11_pca_suites",
      "Figure 11: PCA of Cubie vs Rodinia vs SHOC kernel behaviour (H200)");
  const int s = bench.scale;
  const auto model = bench.model_for(sim::Gpu::H200);
  std::vector<analysis::KernelMetrics> metrics;

  bench.warm(engine::Plan::representative(s)
                 .with_variants({core::Variant::TC})
                 .with_gpus({sim::Gpu::H200}));

  // Cubie: TC implementations (the suite's own kernels).
  for (const auto& w : bench.suite()) {
    const auto tc_case = w->cases(s)[w->representative_case()];
    const auto& out = bench.run(*w, core::Variant::TC, tc_case);
    metrics.push_back(analysis::extract_metrics(
        "Cubie/" + w->name(), "Cubie", out.profile, model->predict(out.profile)));
  }
  // Rodinia and SHOC proxy kernels.
  for (const auto& r : core::run_suite_proxies()) {
    metrics.push_back(analysis::extract_metrics(r.suite + "/" + r.name,
                                                r.suite, r.profile,
                                                model->predict(r.profile)));
  }

  auto d = analysis::metrics_dataset(metrics);
  analysis::standardize(d);
  const auto res = analysis::pca(d, 2);

  std::cout << "=== Figure 11: PCA of Cubie vs Rodinia vs SHOC kernel "
               "behaviour (H200) ===\n\n"
            << "PC1 " << common::fmt_double(res.explained_ratio[0] * 100, 1)
            << "% / PC2 " << common::fmt_double(res.explained_ratio[1] * 100, 1)
            << "% of variance\n\n";
  common::Table t({"suite", "kernel", "PC1", "PC2"});
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    t.add_row({metrics[i].suite, metrics[i].name,
               common::fmt_double(res.coord(i, 0), 2),
               common::fmt_double(res.coord(i, 1), 2)});
  }
  t.print(std::cout);

  // Dispersion (PC-space area proxy): mean distance from suite centroid.
  std::cout << "\nSuite dispersion (mean distance from suite centroid; "
               "larger = more diverse behaviour):\n";
  std::map<std::string, std::vector<std::size_t>> by_suite;
  for (std::size_t i = 0; i < metrics.size(); ++i)
    by_suite[metrics[i].suite].push_back(i);
  for (const auto& [suite, idx] : by_suite) {
    double cx = 0.0, cy = 0.0;
    for (auto i : idx) {
      cx += res.coord(i, 0);
      cy += res.coord(i, 1);
    }
    cx /= static_cast<double>(idx.size());
    cy /= static_cast<double>(idx.size());
    double dist = 0.0;
    for (auto i : idx) {
      dist += std::hypot(res.coord(i, 0) - cx, res.coord(i, 1) - cy);
    }
    std::cout << "  " << suite << ": "
              << common::fmt_double(dist / static_cast<double>(idx.size()), 2)
              << '\n';
    bench.record(suite, "", "H200", "dispersion")
        .set("mean_centroid_distance",
             dist / static_cast<double>(idx.size()));
  }
  bench.capture("pca_coords", t);
  return bench.finish();
}
