// FFT workload (Quadrant I): batched 2D FFTs (Table 2 sizes, tcFFT-style).
//
// TC: the tcFFT scheme lifted to FP64. A mixed radix-4/radix-2 Stockham
// FFT where every radix-4 butterfly is executed as a real 8x8 matrix
// multiply (the complex 4x4 DFT in its real representation) through MMAs,
// batching 8 butterflies per multiply; twiddle rotations remain scalar.
// The A operand (the DFT matrix) is loaded once and reused across the whole
// transform - the Quadrant I reuse pattern called out in Figure 2.
// CC: identical dataflow on CUDA cores; CC-E == CC.
// Baseline: a Stockham radix-2 FFT standing in for cuFFT (whose tuned
// performance the paper's TC FFT fails to beat - Section 6.1).

#include "core/kernels.hpp"

#include "common/rng.hpp"
#include "fft/fft.hpp"
#include "mma/mma.hpp"
#include "sim/calibration.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <string>
#include <vector>

namespace cubie::core {
namespace {

namespace scal = cubie::sim::cal;
using fft::cplx;

struct FftProblem {
  int ny = 0, nx = 0, batch = 0;
  std::vector<cplx> data;  // batch images, row-major
};

FftProblem make_problem(const TestCase& tc) {
  FftProblem p;
  p.ny = static_cast<int>(tc.dims[0]);
  p.nx = static_cast<int>(tc.dims[1]);
  p.batch = static_cast<int>(tc.dims[2]);
  const std::size_t n = static_cast<std::size_t>(p.ny) * static_cast<std::size_t>(p.nx) * static_cast<std::size_t>(p.batch);
  const auto re = common::random_vector(n, 61);
  const auto im = common::random_vector(n, 63);
  p.data.resize(n);
  for (std::size_t i = 0; i < n; ++i) p.data[i] = {re[i], im[i]};
  return p;
}

// One mixed-radix Stockham FFT along contiguous rows of length `len`,
// `count` rows, executing radix-4 butterflies through the MMA context.
void fft_rows_mma(cplx* data, std::size_t count, std::size_t len,
                  mma::Context& ctx) {
  const mma::Mat8x8 f4 = fft::radix4_butterfly_real();
  std::vector<cplx> a(len), b(len);
  constexpr double kTwoPi = 2.0 * std::numbers::pi;

  for (std::size_t row = 0; row < count; ++row) {
    cplx* x = data + row * len;
    std::copy(x, x + len, a.begin());
    std::size_t m = 1;
    ctx.load_global(static_cast<double>(len) * 16.0);
    while (m < len) {
      const std::size_t rem = len / m;
      const std::size_t radix = rem % 4 == 0 ? 4 : 2;
      const std::size_t l = len / (radix * m);
      // Per-stage streaming traffic (ping-pong buffers through smem).
      ctx.load_shared(static_cast<double>(len) * 16.0 * 2.0);
      if (radix == 4) {
        // Gather butterflies into packed real 8-vectors; process 8 at once.
        std::size_t pending = 0;
        double xs[64];       // packed inputs, one butterfly per column
        std::size_t idx[8][2];  // (j, k) of each pending butterfly
        auto flush = [&]() {
          if (pending == 0) return;
          for (std::size_t c = pending; c < 8; ++c)
            for (int r = 0; r < 8; ++r) xs[static_cast<std::size_t>(r) * 8 + c] = 0.0;
          double us[64] = {};
          ctx.dmma_m8n8k8_acc(f4.data(), xs, us);
          for (std::size_t c = 0; c < pending; ++c) {
            const std::size_t j = idx[c][0], k = idx[c][1];
            const double ang = -kTwoPi * static_cast<double>(j) / static_cast<double>(4 * l);
            cplx u[4];
            for (int q = 0; q < 4; ++q)
              u[q] = {us[static_cast<std::size_t>(2 * q) * 8 + c], us[static_cast<std::size_t>(2 * q + 1) * 8 + c]};
            // Twiddle rotations (scalar; 3 complex multiplies).
            ctx.cc_fma(9.0);
            for (int q = 1; q < 4; ++q) {
              const cplx w(std::cos(ang * q), std::sin(ang * q));
              u[q] *= w;
            }
            for (int q = 0; q < 4; ++q)
              b[k + (4 * j + static_cast<std::size_t>(q)) * m] = u[q];
          }
          pending = 0;
        };
        for (std::size_t j = 0; j < l; ++j) {
          for (std::size_t k = 0; k < m; ++k) {
            for (int q = 0; q < 4; ++q) {
              const cplx v = a[k + j * m + static_cast<std::size_t>(q) * l * m];
              xs[static_cast<std::size_t>(2 * q) * 8 + pending] = v.real();
              xs[static_cast<std::size_t>(2 * q + 1) * 8 + pending] = v.imag();
            }
            idx[pending][0] = j;
            idx[pending][1] = k;
            if (++pending == 8) flush();
          }
        }
        flush();
        m *= 4;
      } else {
        // Leftover radix-2 stage: scalar butterflies (the non-MMA residue
        // of non-power-of-4 sizes, as in tcFFT).
        for (std::size_t j = 0; j < l; ++j) {
          const double ang = -kTwoPi * static_cast<double>(j) / static_cast<double>(2 * l);
          const cplx w(std::cos(ang), std::sin(ang));
          for (std::size_t k = 0; k < m; ++k) {
            const cplx c0 = a[k + j * m];
            const cplx c1 = a[k + j * m + l * m];
            b[k + 2 * j * m] = c0 + c1;
            b[k + 2 * j * m + m] = (c0 - c1) * w;
          }
        }
        ctx.cc_fma(static_cast<double>(len) * 5.0);
        m *= 2;
      }
      std::swap(a, b);
    }
    std::copy(a.begin(), a.end(), x);
    ctx.store_global(static_cast<double>(len) * 16.0);
  }
}

// Transpose each image (counts streaming traffic).
void transpose_images(std::vector<cplx>& d, int batch, int& ny, int& nx,
                      mma::Context* ctx) {
  std::vector<cplx> t(d.size());
  const std::size_t plane = static_cast<std::size_t>(ny) * static_cast<std::size_t>(nx);
  for (int im = 0; im < batch; ++im) {
    const cplx* src = d.data() + static_cast<std::size_t>(im) * plane;
    cplx* dst = t.data() + static_cast<std::size_t>(im) * plane;
    for (int y = 0; y < ny; ++y)
      for (int x = 0; x < nx; ++x)
        dst[static_cast<std::size_t>(x) * static_cast<std::size_t>(ny) + static_cast<std::size_t>(y)] =
            src[static_cast<std::size_t>(y) * static_cast<std::size_t>(nx) + static_cast<std::size_t>(x)];
  }
  d = std::move(t);
  std::swap(ny, nx);
  if (ctx != nullptr) {
    ctx->load_global(static_cast<double>(d.size()) * 16.0);
    ctx->store_global(static_cast<double>(d.size()) * 16.0);
  }
}

// Full 2D batched FFT on the MMA path.
std::vector<cplx> run_mma_fft(FftProblem p, mma::Context& ctx) {
  int ny = p.ny, nx = p.nx;
  ctx.launch(static_cast<double>(p.batch) * ny * 8.0);
  // DFT-matrix operand: loaded once from global memory, then reused.
  ctx.load_global(64.0 * 8.0);
  fft_rows_mma(p.data.data(), static_cast<std::size_t>(p.batch) * static_cast<std::size_t>(ny),
               static_cast<std::size_t>(nx), ctx);
  transpose_images(p.data, p.batch, ny, nx, &ctx);
  fft_rows_mma(p.data.data(), static_cast<std::size_t>(p.batch) * static_cast<std::size_t>(ny),
               static_cast<std::size_t>(nx), ctx);
  transpose_images(p.data, p.batch, ny, nx, &ctx);
  return std::move(p.data);
}

// Baseline: Stockham radix-2 per row/column (cuFFT proxy).
std::vector<cplx> run_baseline_fft(FftProblem p, mma::Context& ctx) {
  int ny = p.ny, nx = p.nx;
  const double n = static_cast<double>(p.data.size());
  const double stages = std::log2(static_cast<double>(p.ny)) + std::log2(static_cast<double>(p.nx));
  ctx.launch(static_cast<double>(p.batch) * ny * 32.0);
  ctx.load_global(n * 16.0 * 2.0);
  ctx.store_global(n * 16.0 * 2.0);
  ctx.load_shared(n * 16.0 * 2.0 * stages);
  ctx.cc_fma(n * 5.0 * stages);

  auto pass = [&](int rows, int len) {
    for (int r = 0; r < rows; ++r) {
      std::span<const cplx> row(p.data.data() + static_cast<std::size_t>(r) * static_cast<std::size_t>(len),
                                static_cast<std::size_t>(len));
      auto out = fft::fft_stockham(row);
      std::copy(out.begin(), out.end(),
                p.data.begin() + static_cast<std::ptrdiff_t>(r) * len);
    }
  };
  pass(p.batch * ny, nx);
  transpose_images(p.data, p.batch, ny, nx, nullptr);
  pass(p.batch * ny, nx);
  transpose_images(p.data, p.batch, ny, nx, nullptr);
  return std::move(p.data);
}

std::vector<double> flatten(const std::vector<cplx>& v) {
  std::vector<double> out;
  out.reserve(v.size() * 2);
  for (const cplx& c : v) {
    out.push_back(c.real());
    out.push_back(c.imag());
  }
  return out;
}

class FftWorkload final : public Workload {
 public:
  std::string name() const override { return "FFT"; }
  Quadrant quadrant() const override { return Quadrant::I; }
  std::string dwarf() const override { return "Spectral methods"; }
  std::string baseline_name() const override { return "cuFFT v12.8"; }

  std::vector<TestCase> cases(int s) const override {
    // Table 2: 256x256, 256x512, 256x1K, 512x256, 512x512; batch 2K.
    const std::pair<long, long> sizes[] = {
        {256, 256}, {256, 512}, {256, 1024}, {512, 256}, {512, 512}};
    const long batch = std::max(2L, 2048L / (static_cast<long>(s) * s * s));
    std::vector<TestCase> cs;
    for (auto [y0, x0] : sizes) {
      const long y = std::max(16L, y0 / s), x = std::max(16L, x0 / s);
      cs.push_back({std::to_string(y) + "x" + std::to_string(x) + "xb" +
                        std::to_string(batch),
                    {y, x, batch},
                    ""});
    }
    return cs;
  }

  RunOutput run(Variant v, const TestCase& tc,
                const RunOptions& opts) const override {
    RunOutput out;
    sim::Span span_total(opts.tracer, "FFT/" + variant_name(v), out.profile);
    sim::Span setup(opts.tracer, "setup", out.profile);
    FftProblem p = make_problem(tc);
    setup.finish();
    mma::Context ctx(v == Variant::TC ? mma::Pipe::TensorCore
                                      : mma::Pipe::CudaCore,
                     out.profile);
    const double n2d = static_cast<double>(p.ny) * p.nx;
    const double total = n2d * p.batch;
    sim::Span kernel(opts.tracer, "kernel", out.profile);
    std::vector<cplx> result;
    if (v == Variant::Baseline) {
      result = run_baseline_fft(std::move(p), ctx);
      out.profile.pipe_eff = scal::kCuFftEff;
      out.profile.mem_eff = scal::kMemEffLibrary;
    } else {
      result = run_mma_fft(std::move(p), ctx);
      out.profile.pipe_eff =
          v == Variant::TC ? scal::kTcFftEff : scal::kCcEmulationEff;
      out.profile.mem_eff = v == Variant::TC ? scal::kMemEffTcLayout
                                             : scal::kMemEffCcEmulation;
    }
    // Useful FLOPs: 5 n log2(n) per transform point (the FFT convention).
    out.profile.useful_flops = 5.0 * total * std::log2(n2d);
    // Cachesim descriptor: butterfly stages revisit the signal at
    // power-of-two strides; the reuse window is the complex batch.
    out.profile.access = sim::AccessPattern::Strided;
    out.profile.working_set_bytes = total * 16.0;
    out.values = flatten(result);
    return out;
  }

  std::vector<double> reference(const TestCase& tc) const override {
    FftProblem p = make_problem(tc);
    int ny = p.ny, nx = p.nx;
    auto pass = [&](int rows, int len) {
      for (int r = 0; r < rows; ++r) {
        std::span<const cplx> row(p.data.data() + static_cast<std::size_t>(r) * static_cast<std::size_t>(len),
                                  static_cast<std::size_t>(len));
        auto out = fft::fft_serial(row);
        std::copy(out.begin(), out.end(),
                  p.data.begin() + static_cast<std::ptrdiff_t>(r) * len);
      }
    };
    pass(p.batch * ny, nx);
    transpose_images(p.data, p.batch, ny, nx, nullptr);
    pass(p.batch * ny, nx);
    transpose_images(p.data, p.batch, ny, nx, nullptr);
    return flatten(p.data);
  }
};

}  // namespace

WorkloadPtr make_fft() { return std::make_unique<FftWorkload>(); }

}  // namespace cubie::core
