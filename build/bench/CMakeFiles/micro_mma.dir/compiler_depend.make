# Empty compiler generated dependencies file for micro_mma.
# This may be replaced when dependencies are built.
