#include "common/hwcounters.hpp"

#include <atomic>
#include <cerrno>
#include <cstring>
#include <mutex>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace cubie::hw {

HwSample& HwSample::operator+=(const HwSample& o) {
  if (!o.available) return *this;
  available = true;
  cycles += o.cycles;
  instructions += o.instructions;
  cache_references += o.cache_references;
  cache_misses += o.cache_misses;
  task_clock_s += o.task_clock_s;
  return *this;
}

namespace {

enum class State { Unknown, Available, Unavailable };
std::atomic<State> g_state{State::Unknown};
std::mutex g_reason_mu;
std::string g_reason;  // guarded by g_reason_mu

void set_unavailable(const std::string& reason) {
  {
    std::lock_guard<std::mutex> lk(g_reason_mu);
    if (g_reason.empty()) g_reason = reason;
  }
  g_state.store(State::Unavailable, std::memory_order_release);
}

#if defined(__linux__)

long perf_open(std::uint32_t type, std::uint64_t config, int group_fd) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.type = type;
  attr.size = sizeof(attr);
  attr.config = config;
  attr.disabled = group_fd == -1 ? 1 : 0;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  attr.inherit = 0;  // per-thread: the engine samples on the worker thread
  return syscall(__NR_perf_event_open, &attr, 0, -1, group_fd, 0);
}

const char* errno_tag(int err) {
  switch (err) {
    case EPERM: return "EPERM";
    case EACCES: return "EACCES";
    case ENOSYS: return "ENOSYS";
    case ENOENT: return "ENOENT";
    case ENODEV: return "ENODEV";
    case EOPNOTSUPP: return "EOPNOTSUPP";
    default: return "errno";
  }
}

// The per-thread counter group: cycles leads, the rest are siblings so
// they are scheduled (and multiplexed) together; task-clock is a software
// event and opened standalone. fds stay open for the thread's lifetime.
struct ThreadCounters {
  int cycles = -1;
  int instructions = -1;
  int cache_refs = -1;
  int cache_misses = -1;
  int task_clock = -1;
  bool ok = false;

  ThreadCounters() {
    if (!available()) return;
    cycles = static_cast<int>(
        perf_open(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES, -1));
    if (cycles < 0) {
      // The probe succeeded earlier but this thread cannot open the group
      // (fd limits, late paranoid clamp): degrade process-wide.
      set_unavailable(std::string("perf_event_open: ") + std::strerror(errno) +
                      " (" + errno_tag(errno) + ")");
      return;
    }
    instructions = static_cast<int>(
        perf_open(PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS, cycles));
    cache_refs = static_cast<int>(
        perf_open(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_REFERENCES, cycles));
    cache_misses = static_cast<int>(
        perf_open(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES, cycles));
    task_clock = static_cast<int>(
        perf_open(PERF_TYPE_SOFTWARE, PERF_COUNT_SW_TASK_CLOCK, -1));
    ok = true;
  }

  ~ThreadCounters() {
    for (int fd : {cycles, instructions, cache_refs, cache_misses, task_clock}) {
      if (fd >= 0) close(fd);
    }
  }

  void start() {
    ioctl(cycles, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
    ioctl(cycles, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
    if (task_clock >= 0) {
      ioctl(task_clock, PERF_EVENT_IOC_RESET, 0);
      ioctl(task_clock, PERF_EVENT_IOC_ENABLE, 0);
    }
  }

  static std::uint64_t read_fd(int fd) {
    if (fd < 0) return 0;
    std::uint64_t v = 0;
    if (read(fd, &v, sizeof(v)) != static_cast<ssize_t>(sizeof(v))) return 0;
    return v;
  }

  HwSample stop() {
    ioctl(cycles, PERF_EVENT_IOC_DISABLE, PERF_IOC_FLAG_GROUP);
    if (task_clock >= 0) ioctl(task_clock, PERF_EVENT_IOC_DISABLE, 0);
    HwSample s;
    s.available = true;
    s.cycles = read_fd(cycles);
    s.instructions = read_fd(instructions);
    s.cache_references = read_fd(cache_refs);
    s.cache_misses = read_fd(cache_misses);
    // PERF_COUNT_SW_TASK_CLOCK reports nanoseconds of on-CPU time.
    s.task_clock_s = static_cast<double>(read_fd(task_clock)) * 1e-9;
    return s;
  }
};

ThreadCounters* thread_counters() {
  thread_local ThreadCounters tc;
  return tc.ok ? &tc : nullptr;
}

bool probe() {
  long fd = perf_open(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES, -1);
  if (fd < 0) {
    set_unavailable(std::string("perf_event_open: ") + std::strerror(errno) +
                    " (" + errno_tag(errno) + ")");
    return false;
  }
  close(static_cast<int>(fd));
  g_state.store(State::Available, std::memory_order_release);
  return true;
}

#else  // !__linux__

bool probe() {
  set_unavailable("perf_event_open: not supported on this platform");
  return false;
}

struct ThreadCounters {
  void start() {}
  HwSample stop() { return {}; }
};

ThreadCounters* thread_counters() { return nullptr; }

#endif

}  // namespace

bool available() {
  State s = g_state.load(std::memory_order_acquire);
  if (s == State::Unknown) {
    // At most one thread probes; a lost race just re-reads the settled state.
    static std::once_flag probed;
    std::call_once(probed, [] { probe(); });
    s = g_state.load(std::memory_order_acquire);
  }
  return s == State::Available;
}

std::string unavailable_reason() {
  if (available()) return "";
  std::lock_guard<std::mutex> lk(g_reason_mu);
  return g_reason;
}

void force_unavailable(const std::string& reason) {
  set_unavailable(reason);
}

ScopedSample::ScopedSample() {
  if (!available()) return;
  if (ThreadCounters* tc = thread_counters()) {
    tc->start();
    active_ = true;
  }
}

HwSample ScopedSample::stop() {
  if (!active_) return {};
  active_ = false;
  if (ThreadCounters* tc = thread_counters()) return tc->stop();
  return {};
}

ScopedSample::~ScopedSample() {
  if (active_) (void)stop();
}

}  // namespace cubie::hw
