#pragma once
// Structural feature extraction for sparse matrices, feeding the Figure 10
// PCA: sparsity, row/column degree statistics, and 4x4 block structure —
// the same feature families the paper standardizes before PCA.

#include "sparse/csr.hpp"

#include <array>
#include <string>
#include <vector>

namespace cubie::sparse {

struct MatrixFeatures {
  double log_rows = 0.0;       // log10(rows)
  double log_nnz = 0.0;        // log10(nnz)
  double density = 0.0;        // nnz / (rows * cols)
  double row_mean = 0.0;       // mean nnz per row
  double row_std = 0.0;        // stddev of nnz per row
  double row_max_ratio = 0.0;  // max row nnz / mean row nnz
  double col_std = 0.0;        // stddev of nnz per column
  double symmetry = 0.0;       // fraction of entries with structural mirror
  double block_fill = 0.0;     // avg fill of touched 4x4 blocks
  double diag_frac = 0.0;      // fraction of nnz on the diagonal

  static constexpr int kCount = 10;
  std::array<double, kCount> as_array() const {
    return {log_rows, log_nnz,  density,  row_mean,   row_std,
            row_max_ratio, col_std, symmetry, block_fill, diag_frac};
  }
  static std::vector<std::string> names();
};

MatrixFeatures matrix_features(const Csr& a);

}  // namespace cubie::sparse
