// SpGEMM workload (Quadrant IV): C = A * A for the Table 4 matrices.
//
// TC: the AmgT scheme. A is converted to mBSR (4x4 blocks); block rows are
// processed in vertical pairs so each MMA multiplies an 8x4 operand (two
// stacked A blocks) by a 4x8 operand (the B block duplicated side by side).
// Of the 8x8 output only the two diagonal 4x4 tiles are useful - "half of
// the 8-by-8 output tiles", accumulated into C's blocks.
// CC: identical block math on CUDA cores. CC-E: only the two useful 4x4
// block products, scalar FMAs in the same order (identical numerics to TC,
// matching Table 6). Baseline: cuSPARSE-style row-wise hash SpGEMM whose
// accumulation order differs (hash insertion order modeled by reversed
// A-row traversal).

#include "core/kernels.hpp"

#include "common/rng.hpp"
#include "common/table.hpp"
#include "mma/mma.hpp"
#include "sim/calibration.hpp"
#include "sparse/generators.hpp"
#include "sparse/mbsr.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace cubie::core {
namespace {

namespace scal = cubie::sim::cal;
using sparse::kBlock;

sparse::Csr load_matrix(const TestCase& tc) {
  // SpGEMM squares the matrix; scale down one extra notch to bound the
  // quadratic fill on a single emulated core. dims[0] carries the scale
  // divisor chosen at cases() time.
  return sparse::make_table4_matrix(tc.dataset,
                                    static_cast<int>(tc.dims[0]) * 2)
      .matrix;
}

// Extract `result` values at the structural positions of `pattern`
// (both CSR, pattern's positions must be a superset-compatible view).
std::vector<double> values_at(const sparse::Csr& result,
                              const sparse::Csr& pattern) {
  std::vector<double> v;
  v.reserve(pattern.nnz());
  for (int r = 0; r < pattern.rows; ++r) {
    int p_res = result.row_ptr[static_cast<std::size_t>(r)];
    const int p_res_end = result.row_ptr[static_cast<std::size_t>(r) + 1];
    for (int p = pattern.row_ptr[static_cast<std::size_t>(r)]; p < pattern.row_ptr[static_cast<std::size_t>(r) + 1]; ++p) {
      const int c = pattern.col_idx[static_cast<std::size_t>(p)];
      while (p_res < p_res_end && result.col_idx[static_cast<std::size_t>(p_res)] < c) ++p_res;
      if (p_res < p_res_end && result.col_idx[static_cast<std::size_t>(p_res)] == c) {
        v.push_back(result.vals[static_cast<std::size_t>(p_res)]);
      } else {
        v.push_back(0.0);
      }
    }
  }
  return v;
}

// AmgT-style block SpGEMM on the MMA path. Returns C in CSR.
sparse::Csr run_amgt(const sparse::Mbsr& a, mma::Context& ctx,
                     bool essential, sim::Tracer* tr) {
  const int nbr = a.block_rows;
  sparse::Coo c_coo;
  c_coo.rows = c_coo.cols = a.rows;

  sim::Span numeric(tr, "numeric", ctx.profile());
  ctx.launch((nbr / 2.0) * 64.0);
  // mBSR traffic: A blocks streamed once per pair-row sweep; B blocks
  // gathered per (k, j) product; C blocks written once.
  ctx.load_global(static_cast<double>(a.blocks()) * (16.0 * 8.0 + 4.0));

  // Dense per-pair accumulators over block columns.
  std::vector<double> acc(static_cast<std::size_t>(a.block_cols) * 64, 0.0);
  std::vector<int> marker(static_cast<std::size_t>(a.block_cols), -1);
  std::vector<int> touched;

  double a_frag[32], b_frag[32];
  for (int bi = 0; bi < nbr; bi += 2) {
    touched.clear();
    const bool has_second = bi + 1 < nbr;
    // Merge the k-block lists of the two paired rows.
    std::map<int, std::pair<int, int>> kblocks;  // k -> (blk idx row bi, row bi+1)
    for (int p = a.row_ptr[static_cast<std::size_t>(bi)]; p < a.row_ptr[static_cast<std::size_t>(bi) + 1]; ++p)
      kblocks[a.col_idx[static_cast<std::size_t>(p)]].first = p + 1;  // +1: 0 = absent
    if (has_second)
      for (int p = a.row_ptr[static_cast<std::size_t>(bi) + 1]; p < a.row_ptr[static_cast<std::size_t>(bi) + 2]; ++p)
        kblocks[a.col_idx[static_cast<std::size_t>(p)]].second = p + 1;

    for (const auto& [k, blks] : kblocks) {
      // Stack A(bi,k) over A(bi+1,k) into the 8x4 fragment.
      for (int half = 0; half < 2; ++half) {
        const int blk = half == 0 ? blks.first : blks.second;
        for (int i = 0; i < kBlock; ++i)
          for (int kk = 0; kk < kBlock; ++kk)
            a_frag[(half * 4 + i) * 4 + kk] =
                blk > 0 ? a.vals[static_cast<std::size_t>(blk - 1) * 16 + static_cast<std::size_t>(i * 4 + kk)]
                        : 0.0;
      }
      // Sweep B's block row k.
      for (int pb = a.row_ptr[static_cast<std::size_t>(k)]; pb < a.row_ptr[static_cast<std::size_t>(k) + 1]; ++pb) {
        const int j = a.col_idx[static_cast<std::size_t>(pb)];
        const double* bblk = a.vals.data() + static_cast<std::size_t>(pb) * 16;
        ctx.load_global(16.0 * 8.0 + 4.0);
        if (marker[static_cast<std::size_t>(j)] != bi) {
          marker[static_cast<std::size_t>(j)] = bi;
          std::fill_n(acc.begin() + static_cast<std::ptrdiff_t>(j) * 64, 64, 0.0);
          touched.push_back(j);
        }
        double* cacc = acc.data() + static_cast<std::size_t>(j) * 64;
        if (!essential) {
          // Duplicate B side by side: 4x8 fragment.
          for (int kk = 0; kk < kBlock; ++kk)
            for (int jj = 0; jj < kBlock; ++jj) {
              b_frag[kk * 8 + jj] = bblk[kk * 4 + jj];
              b_frag[kk * 8 + 4 + jj] = bblk[kk * 4 + jj];
            }
          // One MMA; useful results land in the two diagonal 4x4 tiles:
          // rows 0-3 x cols 0-3 (row bi) and rows 4-7 x cols 4-7 (row bi+1).
          ctx.dmma_m8n8k4_acc(a_frag, b_frag, cacc);
        } else {
          // Essential: only the two useful 4x4 block products, same order.
          ctx.cc_fma(2.0 * kBlock * kBlock * kBlock);
          for (int half = 0; half < 2; ++half) {
            for (int i = 0; i < kBlock; ++i) {
              for (int jj = 0; jj < kBlock; ++jj) {
                double s = cacc[(half * 4 + i) * 8 + half * 4 + jj];
                for (int kk = 0; kk < kBlock; ++kk) {
                  s = std::fma(a_frag[(half * 4 + i) * 4 + kk],
                               bblk[kk * 4 + jj], s);
                }
                cacc[(half * 4 + i) * 8 + half * 4 + jj] = s;
              }
            }
          }
        }
      }
    }
    // Emit the diagonal tiles into COO.
    std::sort(touched.begin(), touched.end());
    for (int j : touched) {
      const double* cacc = acc.data() + static_cast<std::size_t>(j) * 64;
      ctx.store_global(2.0 * 16.0 * 8.0);
      for (int half = 0; half < 2; ++half) {
        if (half == 1 && !has_second) break;
        for (int i = 0; i < kBlock; ++i) {
          for (int jj = 0; jj < kBlock; ++jj) {
            const double v = cacc[(half * 4 + i) * 8 + half * 4 + jj];
            const int r = (bi + half) * kBlock + i;
            const int cc = j * kBlock + jj;
            if (v != 0.0 && r < a.rows && cc < a.cols) {
              c_coo.row.push_back(r);
              c_coo.col.push_back(cc);
              c_coo.val.push_back(v);
            }
          }
        }
      }
    }
  }
  numeric.finish();
  sim::Span compact(tr, "compact_csr", ctx.profile());
  return sparse::csr_from_coo(c_coo);
}

// cuSPARSE-style hash SpGEMM proxy: per-row accumulation with hash-order
// (modeled as reverse A-row traversal) and FMA.
sparse::Csr run_hash_baseline(const sparse::Csr& a, mma::Context& ctx,
                              sim::Tracer* tr) {
  sparse::Csr c;
  c.rows = a.rows;
  c.cols = a.cols;
  c.row_ptr.assign(static_cast<std::size_t>(c.rows) + 1, 0);

  // Heavily-referenced B rows are served from L2 after the first touch;
  // the achievable reuse grows with the average row degree (dense-block
  // matrices like raefsky3 re-read each B row many times).
  const double avg_row = static_cast<double>(a.nnz()) / std::max(1, a.rows);
  const double b_row_reuse = std::clamp(avg_row / 8.0, 1.0, 4.0);
  {
    // cuSPARSE SpGEMM is two-phase: a symbolic pass sizes C by re-streaming
    // the column indices of every contributing B row before the numeric pass
    // (counted up front; the numeric pass is counted per product below).
    sim::Span symbolic(tr, "symbolic", ctx.profile());
    ctx.launch(static_cast<double>(a.rows) * 32.0);
    ctx.load_global(static_cast<double>(a.nnz()) * (4.0 + 8.0));
    double products = 0.0;
    for (int r = 0; r < a.rows; ++r)
      for (int pa = a.row_ptr[static_cast<std::size_t>(r)]; pa < a.row_ptr[static_cast<std::size_t>(r) + 1]; ++pa)
        products += a.row_nnz(a.col_idx[static_cast<std::size_t>(pa)]);
    ctx.load_global(static_cast<double>(a.nnz()) * 4.0 +
                    products * 4.0 / b_row_reuse);
    ctx.cc_int(products);  // symbolic hash inserts
  }

  sim::Span numeric(tr, "numeric", ctx.profile());
  std::vector<double> acc(static_cast<std::size_t>(a.cols), 0.0);
  std::vector<int> marker(static_cast<std::size_t>(a.cols), -1);
  std::vector<int> touched;
  for (int r = 0; r < a.rows; ++r) {
    touched.clear();
    for (int pa = a.row_ptr[static_cast<std::size_t>(r) + 1] - 1; pa >= a.row_ptr[static_cast<std::size_t>(r)]; --pa) {
      const int k = a.col_idx[static_cast<std::size_t>(pa)];
      const double av = a.vals[static_cast<std::size_t>(pa)];
      ctx.load_global(static_cast<double>(a.row_nnz(k)) * (4.0 + 8.0) /
                      b_row_reuse);
      ctx.load_shared(static_cast<double>(a.row_nnz(k)) * (4.0 + 8.0));
      ctx.cc_fma(static_cast<double>(a.row_nnz(k)));
      ctx.cc_int(static_cast<double>(a.row_nnz(k)) * 2.0);  // hash probes
      for (int pb = a.row_ptr[static_cast<std::size_t>(k)]; pb < a.row_ptr[static_cast<std::size_t>(k) + 1]; ++pb) {
        const int j = a.col_idx[static_cast<std::size_t>(pb)];
        if (marker[static_cast<std::size_t>(j)] != r) {
          marker[static_cast<std::size_t>(j)] = r;
          acc[static_cast<std::size_t>(j)] = 0.0;
          touched.push_back(j);
        }
        acc[static_cast<std::size_t>(j)] =
            std::fma(av, a.vals[static_cast<std::size_t>(pb)], acc[static_cast<std::size_t>(j)]);
      }
    }
    std::sort(touched.begin(), touched.end());
    ctx.store_global(static_cast<double>(touched.size()) * (4.0 + 8.0));
    for (int j : touched) {
      c.col_idx.push_back(j);
      c.vals.push_back(acc[static_cast<std::size_t>(j)]);
    }
    c.row_ptr[static_cast<std::size_t>(r) + 1] = static_cast<int>(c.col_idx.size());
  }
  return c;
}

class SpgemmWorkload final : public Workload {
 public:
  std::string name() const override { return "SpGEMM"; }
  Quadrant quadrant() const override { return Quadrant::IV; }
  std::string dwarf() const override { return "Sparse linear algebra"; }
  std::string baseline_name() const override {
    return "cuSPARSE SpGEMM v12.8";
  }

  std::vector<TestCase> cases(int s) const override {
    std::vector<TestCase> cs;
    for (const auto& nm : sparse::table4_names()) cs.push_back({nm, {s}, nm});
    return cs;
  }

  RunOutput run(Variant v, const TestCase& tc,
                const RunOptions& opts) const override {
    RunOutput out;
    sim::Span total(opts.tracer, "SpGEMM/" + variant_name(v), out.profile);
    sim::Span setup(opts.tracer, "setup", out.profile);
    const sparse::Csr a = load_matrix(tc);
    setup.finish();
    mma::Context ctx(v == Variant::TC ? mma::Pipe::TensorCore
                                      : mma::Pipe::CudaCore,
                     out.profile);
    sparse::Csr c;
    switch (v) {
      case Variant::TC:
      case Variant::CC:
      case Variant::CCE: {
        sim::Span conv(opts.tracer, "convert_mbsr", out.profile);
        const sparse::Mbsr am = sparse::mbsr_from_csr(a);
        conv.finish();
        c = run_amgt(am, ctx, /*essential=*/v == Variant::CCE, opts.tracer);
        out.profile.pipe_eff = v == Variant::TC   ? scal::kTcSmallBlockEff
                               : v == Variant::CC ? scal::kCcEmulationEff
                                                  : scal::kCcEssentialEff;
        out.profile.mem_eff = v == Variant::CC ? scal::kMemEffCcEmulation
                                               : scal::kMemEffTcLayout;
        break;
      }
      case Variant::Baseline:
        c = run_hash_baseline(a, ctx, opts.tracer);
        out.profile.pipe_eff = scal::kCcLibraryEff;
        out.profile.mem_eff = scal::kMemEffHash;
        break;
    }
    // FLOP count: 2 per scalar multiply-add pair in the product.
    double products = 0.0;
    for (int r = 0; r < a.rows; ++r)
      for (int p = a.row_ptr[static_cast<std::size_t>(r)]; p < a.row_ptr[static_cast<std::size_t>(r) + 1]; ++p)
        products += a.row_nnz(a.col_idx[static_cast<std::size_t>(p)]);
    out.profile.useful_flops = 2.0 * products;
    // Cachesim descriptor: row-of-B gathers keyed by A's column indices.
    out.profile.access = sim::AccessPattern::Irregular;
    out.profile.working_set_bytes = static_cast<double>(a.nnz()) * 24.0;
    // Compare on the serial product's structural pattern.
    out.values = values_at(c, pattern(tc, a));
    return out;
  }

  std::vector<double> reference(const TestCase& tc) const override {
    const sparse::Csr a = load_matrix(tc);
    const sparse::Csr c = sparse::spgemm_serial(a, a);
    return c.vals;
  }

 private:
  static const sparse::Csr& pattern(const TestCase& tc, const sparse::Csr& a) {
    // Cache the symbolic pattern per dataset (used by every variant). The
    // mutex keeps concurrent engine cells (--jobs) from racing on the map;
    // node references stay valid after rehash, so returning a reference
    // outside the lock is safe.
    static std::mutex mu;
    static std::map<std::string, sparse::Csr> cache;
    const std::string key = tc.dataset + "@" + std::to_string(tc.dims[0]);
    std::lock_guard<std::mutex> lk(mu);
    auto it = cache.find(key);
    if (it == cache.end()) {
      it = cache.emplace(key, sparse::spgemm_serial(a, a)).first;
    }
    return it->second;
  }
};

}  // namespace

WorkloadPtr make_spgemm() { return std::make_unique<SpgemmWorkload>(); }

}  // namespace cubie::core
