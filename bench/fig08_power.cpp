// Figure 8: power consumption over time on the H200 model. Each workload's
// representative case is conceptually executed in a loop for a 5-second
// sampling window (the paper's NVML methodology); the trace is synthesized
// from the modeled steady-state power with a thermal ramp. Output: per-
// workload summary plus a decimated CSV trace for plotting.

#include "bench_util.hpp"

#include "sim/power.hpp"

#include <iostream>

int main(int argc, char** argv) {
  using namespace cubie;
  auto bench = benchutil::bench_init(argc, argv, "fig08_power",
                                     "Figure 8: power over time on H200");
  const int s = bench.scale;
  const auto model = bench.model_for(sim::Gpu::H200);
  std::cout << "=== Figure 8: power over time on H200 (750 W TDP) ===\n\n";

  common::Table summary({"Workload", "Variant", "avg W", "peak W",
                         "time/iter (ms)", "energy in window (J)"});
  std::cout << "trace CSV (t_s, watts) at the end of output.\n\n";
  std::string csv = "workload,variant,t_s,watts\n";

  bench.warm(engine::Plan::representative(s).with_gpus({sim::Gpu::H200}));

  for (const auto& w : bench.suite()) {
    const auto tc_case = w->cases(s)[w->representative_case()];
    for (auto v : benchutil::available_variants(*w)) {
      const auto& out = bench.run(*w, v, tc_case);
      const auto pred = model->predict(out.profile);
      sim::PowerTraceOptions opts;
      const auto trace = sim::synthesize_power_trace(model->spec(), pred, opts);
      double peak = 0.0;
      for (const auto& pt : trace) peak = std::max(peak, pt.watts);
      summary.add_row({w->name(), core::variant_name(v),
                       common::fmt_double(pred.avg_power_w, 0),
                       common::fmt_double(peak, 0),
                       common::fmt_double(pred.time_s * 1e3, 3),
                       common::fmt_double(sim::trace_energy_j(trace), 0)});
      auto& rec = bench.record(w->name(), core::variant_name(v), "H200",
                               tc_case.label);
      rec.set("avg_power_w", pred.avg_power_w);
      rec.set("peak_power_w", peak);
      rec.set("time_ms", pred.time_s * 1e3);
      rec.set("window_energy_j", sim::trace_energy_j(trace));
      // Decimate the trace to ~20 samples for the CSV.
      const std::size_t step = std::max<std::size_t>(1, trace.size() / 20);
      for (std::size_t i = 0; i < trace.size(); i += step) {
        csv += w->name() + "," + core::variant_name(v) + "," +
               common::fmt_double(trace[i].t_s, 2) + "," +
               common::fmt_double(trace[i].watts, 1) + "\n";
      }
    }
  }
  summary.print(std::cout);
  std::cout << "\n" << csv;
  bench.capture("power_summary_h200", summary);
  return bench.finish();
}
