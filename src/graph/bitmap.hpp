#pragma once
// BerryBees bitmap slice-set: the adjacency matrix stored as nonempty
// 8 x 128 single-bit blocks (8 destination rows x 128 source columns),
// matching the operand shape of the tensor-core b1 mma.m8n8k128 instruction.
// Each block is 8 rows x 4 x 32-bit words. A BFS level then becomes a
// sequence of bit-MMAs between frontier bit-vectors and adjacency blocks.

#include "graph/graph.hpp"

#include <array>
#include <cstdint>
#include <vector>

namespace cubie::graph {

inline constexpr int kSliceRows = 8;    // destination vertices per block
inline constexpr int kSliceCols = 128;  // source vertices per block
inline constexpr int kSliceWords = kSliceCols / 32;

struct SliceBlock {
  int block_col = 0;  // which 128-column slice of sources
  // bits[r * 4 + w]: word w of row r. Bit b of word w set <=> edge from
  // source (block_col * 128 + w * 32 + b) into destination row r.
  std::array<std::uint32_t, kSliceRows * kSliceWords> bits{};
};

struct BitmapSliceSet {
  int n = 0;
  int block_rows = 0;  // ceil(n / 8)
  int block_cols = 0;  // ceil(n / 128)
  std::vector<int> row_ptr;         // per block-row pointers into `blocks`
  std::vector<SliceBlock> blocks;   // sorted by (block_row, block_col)

  std::size_t stored_blocks() const { return blocks.size(); }
  double bytes() const {  // footprint of the structure (for memory accounting)
    return static_cast<double>(row_ptr.size()) * 4.0 +
           static_cast<double>(blocks.size()) * (4.0 + kSliceRows * kSliceWords * 4.0);
  }
  // Fraction of bits set within stored blocks (block density).
  double bit_fill() const;
};

// Build the slice-set of the *reverse* adjacency (destination-major), which
// is what a pull-style bit-MMA BFS consumes: block row r covers destinations
// 8r..8r+7, columns are sources.
BitmapSliceSet slice_set_from_graph(const Graph& g);

// Dense frontier bit-vector helpers.
struct BitVector {
  int n = 0;
  std::vector<std::uint32_t> words;

  explicit BitVector(int size = 0)
      : n(size), words(static_cast<std::size_t>((size + 31) / 32), 0u) {}
  void set(int i) { words[static_cast<std::size_t>(i) / 32] |= (1u << (i % 32)); }
  bool get(int i) const { return (words[static_cast<std::size_t>(i) / 32] >> (i % 32)) & 1u; }
  void clear() { std::fill(words.begin(), words.end(), 0u); }
  int popcount() const;
};

}  // namespace cubie::graph
