// Micro-benchmarks for the format-conversion substrate: CSR construction,
// mBSR tiling, bitmap slice-set assembly - the preprocessing stages that
// every MMU-adapted kernel pays once (paper Observation 1).

#include "common/rng.hpp"
#include "graph/bitmap.hpp"
#include "graph/generators.hpp"
#include "sparse/generators.hpp"
#include "sparse/mbsr.hpp"

#include <benchmark/benchmark.h>

namespace {

using namespace cubie;

void BM_CsrFromCoo(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto base = sparse::gen_random_uniform(n, 16, 11);
  sparse::Coo coo;
  coo.rows = coo.cols = n;
  for (int r = 0; r < n; ++r) {
    for (int p = base.row_ptr[static_cast<std::size_t>(r)]; p < base.row_ptr[static_cast<std::size_t>(r) + 1]; ++p) {
      coo.row.push_back(r);
      coo.col.push_back(base.col_idx[static_cast<std::size_t>(p)]);
      coo.val.push_back(base.vals[static_cast<std::size_t>(p)]);
    }
  }
  for (auto _ : state) {
    auto m = sparse::csr_from_coo(coo);
    benchmark::DoNotOptimize(m);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(coo.nnz()));
}
BENCHMARK(BM_CsrFromCoo)->Arg(1024)->Arg(4096);

void BM_MbsrFromCsr(benchmark::State& state) {
  const auto m = sparse::gen_block_fem(static_cast<int>(state.range(0)), 4, 6, 16, 13);
  for (auto _ : state) {
    auto b = sparse::mbsr_from_csr(m);
    benchmark::DoNotOptimize(b);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(m.nnz()));
}
BENCHMARK(BM_MbsrFromCsr)->Arg(1024)->Arg(4096);

void BM_SliceSetFromGraph(benchmark::State& state) {
  const auto g = graph::gen_rmat(static_cast<int>(state.range(0)), 8, 0.57,
                                 0.19, 0.19, 17);
  for (auto _ : state) {
    auto s = graph::slice_set_from_graph(g);
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(g.edges()));
}
BENCHMARK(BM_SliceSetFromGraph)->Arg(10)->Arg(12);

void BM_SpmvSerial(benchmark::State& state) {
  const auto m = sparse::gen_random_uniform(static_cast<int>(state.range(0)), 24, 19);
  const auto x = common::random_vector(static_cast<std::size_t>(m.cols), 21);
  for (auto _ : state) {
    auto y = sparse::spmv_serial(m, x);
    benchmark::DoNotOptimize(y);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(m.nnz()));
}
BENCHMARK(BM_SpmvSerial)->Arg(4096);

}  // namespace

BENCHMARK_MAIN();
