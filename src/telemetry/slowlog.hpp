#pragma once
// Cubie-Flight tail capture: per-request timelines for slow and failed
// requests.
//
// Aggregates (Cubie-Pulse histograms) tell you *that* the p99 regressed;
// the slowlog tells you *why one request was slow*. The SlowlogSink
// buffers each trace's event slice as it streams past and, when the
// trace's RequestFinished (or RequestRejected) arrives, assembles it into
// a RequestTimeline: queue wait, per-cell serving sources
// (compute | memo | disk | coalesced), and the sim span tree. Requests
// slower than the --slow-ms threshold — or failed ones, always — enter a
// top-K kept-slowest set that is rewritten to the --slowlog JSONL file
// (slowest first, one timeline object per line, schema below).
//
// `cubie explain <trace_id>` renders one timeline either straight from a
// slowlog line or by re-assembling it from a --events JSONL file; both
// parsers ignore unknown fields (additive schema-v1 evolution, pinned by
// tests/test_flight.cpp).
//
// Slowlog line schema (all numeric fields locale-independent):
//   {"schema_version":1,"kind":"cubie-slowlog","trace_id":...,
//    "span_id":...,"request_id":...,"key":...,"ok":bool,"wall_s":...,
//    "queue_wait_s":...,"queue_depth":N,"error":"...",
//    "cells":N,"cells_compute":N,"cells_memo":N,"cells_disk":N,
//    "cells_coalesced":N,"events":N,
//    "cell_list":[{"name":...,"source":...,"wall_s":...,"modeled_s":...}],
//    "spans":[{"name":...,"wall_s":...,"depth":N}]}

#include "common/report.hpp"
#include "telemetry/telemetry.hpp"

#include <cstddef>
#include <iosfwd>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace cubie::telemetry {

// ---------------------------------------------------------------------------
// Event JSONL readback (the inverse of event_to_json). Unknown fields are
// ignored so older readers keep working across additive schema evolution.

// False for non-event lines (the JSONL header, foreign records).
bool event_from_json(const report::Json& j, Event* out);

// Parse a cubie-events JSONL stream; header and malformed lines skipped.
std::vector<Event> parse_events_jsonl(std::istream& is);

// The events whose trace_id starts with `trace_prefix` (exact match when
// the prefix is a full 32-char id), in stream order.
std::vector<Event> slice_for_trace(const std::vector<Event>& events,
                                   const std::string& trace_prefix);

// ---------------------------------------------------------------------------
// RequestTimeline: one request's assembled story.

struct TimelineCell {
  std::string name;    // cell content key
  std::string source;  // compute | memo | disk | coalesced
  double wall_s = -1.0;
  double modeled_s = -1.0;
};

struct TimelineSpan {
  std::string name;
  double wall_s = -1.0;
  int depth = 0;  // nesting level within the request's span tree
};

struct RequestTimeline {
  std::string trace_id;
  std::string span_id;
  std::string request_id;
  std::string key;    // the request's plan key (Event::name)
  std::string error;  // rejection / typed error code ("" = none)
  int ok = -1;
  double wall_s = -1.0;       // service time (RequestFinished)
  double queue_wait_s = -1.0; // RequestQueued -> RequestStarted
  std::size_t queue_depth = 0;
  std::size_t cells = 0;  // == compute + memo + disk + coalesced
  std::size_t cells_compute = 0;
  std::size_t cells_memo = 0;
  std::size_t cells_disk = 0;
  std::size_t cells_coalesced = 0;
  std::vector<TimelineCell> cell_list;
  std::vector<TimelineSpan> spans;
  std::size_t events = 0;  // slice size the assembly consumed
};

// Assemble one trace's event slice (stream order; re-sorted by seq when
// the stamps are present) into a timeline.
RequestTimeline assemble_timeline(std::vector<Event> slice);

report::Json timeline_to_json(const RequestTimeline& t);
// Unknown fields ignored; false when `j` is not a cubie-slowlog record.
bool timeline_from_json(const report::Json& j, RequestTimeline* out);

// Human-readable rendering (`cubie explain`).
void render_timeline(const RequestTimeline& t, std::ostream& os);

// ---------------------------------------------------------------------------
// SlowlogSink.

class SlowlogSink : public Sink {
 public:
  // `path` may be empty (keep the top-K in memory only — top() still
  // works, nothing is written). `slow_ms` <= 0 captures every finished
  // request; failed and rejected requests are captured regardless.
  SlowlogSink(std::string path, double slow_ms, std::size_t keep = 32);

  void on_event(const Event& e) override;
  void flush() override;

  // The kept timelines, slowest first.
  std::vector<RequestTimeline> top() const;

 private:
  void finalize_locked(const std::string& trace_id);
  void rewrite_locked();

  mutable std::mutex mu_;
  std::string path_;
  double slow_s_;
  std::size_t keep_;
  // In-flight slices by trace id, bounded (kMaxOpenTraces / kMaxSlice).
  std::map<std::string, std::vector<Event>> open_;
  std::vector<RequestTimeline> top_;  // sorted slowest-first, <= keep_
  bool dirty_ = false;
};

}  // namespace cubie::telemetry
