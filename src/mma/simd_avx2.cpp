// AVX2 + FMA kernels for the MMA emulation hot path. This translation unit
// is compiled with -mavx2 -mfma -mpopcnt (see src/CMakeLists.txt); it is
// only ever *called* after the dispatcher has checked
// __builtin_cpu_supports("avx2") && ("fma"), so the binary stays runnable
// on baseline x86-64 hosts.
//
// Bit-exactness: vfmadd*pd/ps are IEEE-754 correctly-rounded fused
// multiply-adds, the same operation std::fma/std::fmaf perform. Each
// vector lane carries one output accumulator through its full serial
// k-major chain - vectorization is across the independent (i,j) outputs,
// never across k - so every lane reproduces the scalar chain bit-for-bit,
// NaN/Inf/subnormal operands included (tests/test_simd.cpp).

#include "mma/simd_impl.hpp"

#if defined(CUBIE_SIMD_AVX2)

#include <immintrin.h>

#include <bit>
#include <cstdint>

namespace cubie::mma::simd {

namespace {

void dmma_avx2(const double* a, const double* b, const double* c, double* d) {
  // Two 4-wide accumulators per row of C; k stays a serial chain per lane.
  __m256d out[16];
  for (int i = 0; i < 8; ++i) {
    __m256d acc0 = _mm256_loadu_pd(c + i * 8);
    __m256d acc1 = _mm256_loadu_pd(c + i * 8 + 4);
    for (int k = 0; k < 4; ++k) {
      const __m256d aik = _mm256_set1_pd(a[i * 4 + k]);
      acc0 = _mm256_fmadd_pd(aik, _mm256_loadu_pd(b + k * 8), acc0);
      acc1 = _mm256_fmadd_pd(aik, _mm256_loadu_pd(b + k * 8 + 4), acc1);
    }
    out[i * 2] = acc0;
    out[i * 2 + 1] = acc1;
  }
  // d may alias c: stage like the scalar kernel, store after all loads.
  for (int i = 0; i < 16; ++i) _mm256_storeu_pd(d + i * 4, out[i]);
}

void bmma_avx2(const std::uint32_t* a_words, const std::uint32_t* b_words,
               std::uint32_t* d) {
  // Fold the 4-word rows/columns into 64-bit halves: two hardware POPCNTs
  // per (i,j) instead of four software popcounts. Integer math - exact.
  std::uint64_t b_lo[8], b_hi[8];
  for (int j = 0; j < 8; ++j) {
    b_lo[j] = static_cast<std::uint64_t>(b_words[j * 4]) |
              (static_cast<std::uint64_t>(b_words[j * 4 + 1]) << 32);
    b_hi[j] = static_cast<std::uint64_t>(b_words[j * 4 + 2]) |
              (static_cast<std::uint64_t>(b_words[j * 4 + 3]) << 32);
  }
  for (int i = 0; i < 8; ++i) {
    const std::uint64_t a_lo = static_cast<std::uint64_t>(a_words[i * 4]) |
                               (static_cast<std::uint64_t>(a_words[i * 4 + 1]) << 32);
    const std::uint64_t a_hi = static_cast<std::uint64_t>(a_words[i * 4 + 2]) |
                               (static_cast<std::uint64_t>(a_words[i * 4 + 3]) << 32);
    for (int j = 0; j < 8; ++j) {
      d[i * 8 + j] += static_cast<std::uint32_t>(
          std::popcount(a_lo & b_lo[j]) + std::popcount(a_hi & b_hi[j]));
    }
  }
}

void hmma_avx2(const float* a_h, const float* b_h, float* acc) {
  // Two 8-wide float accumulators per row; serial k chain per lane.
  for (int i = 0; i < 16; ++i) {
    __m256 acc0 = _mm256_loadu_ps(acc + i * 16);
    __m256 acc1 = _mm256_loadu_ps(acc + i * 16 + 8);
    for (int k = 0; k < 16; ++k) {
      const __m256 aik = _mm256_set1_ps(a_h[i * 16 + k]);
      acc0 = _mm256_fmadd_ps(aik, _mm256_loadu_ps(b_h + k * 16), acc0);
      acc1 = _mm256_fmadd_ps(aik, _mm256_loadu_ps(b_h + k * 16 + 8), acc1);
    }
    _mm256_storeu_ps(acc + i * 16, acc0);
    _mm256_storeu_ps(acc + i * 16 + 8, acc1);
  }
}

void lanes_fma32_avx2(const double* a, const double* b, double* c) {
  for (int l = 0; l < 32; l += 4) {
    _mm256_storeu_pd(
        c + l, _mm256_fmadd_pd(_mm256_loadu_pd(a + l), _mm256_loadu_pd(b + l),
                               _mm256_loadu_pd(c + l)));
  }
}

constexpr Kernels kAvx2 = {dmma_avx2, bmma_avx2, hmma_avx2, lanes_fma32_avx2};

}  // namespace

const Kernels* avx2_kernels() { return &kAvx2; }

}  // namespace cubie::mma::simd

#endif  // CUBIE_SIMD_AVX2
