file(REMOVE_RECURSE
  "CMakeFiles/amg_poisson.dir/amg_poisson.cpp.o"
  "CMakeFiles/amg_poisson.dir/amg_poisson.cpp.o.d"
  "amg_poisson"
  "amg_poisson.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amg_poisson.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
