#include "sim/cachesim/cachesim_model.hpp"

#include "sim/calibration.hpp"
#include "telemetry/telemetry.hpp"

#include <algorithm>
#include <cmath>

namespace cubie::sim {
namespace {

// Fixed line stride for the Strided pattern: odd (so it cycles the whole
// working set even when its size is a power of two) and larger than any
// plausible ways count, so consecutive accesses leave the cache set.
constexpr std::uint64_t kStrideLines = 33;

// Deterministic LCG for the Irregular pattern (MMIX constants). Seeded from
// a fixed value so two replays of the same profile are identical.
constexpr std::uint64_t kLcgMul = 6364136223846793005ULL;
constexpr std::uint64_t kLcgAdd = 1442695040888963407ULL;

}  // namespace

CacheSimModel::CacheSimModel(const DeviceSpec& spec, CacheSimConfig cfg)
    : DeviceModel(spec), cfg_(cfg) {
  // Resolve the derive-from-spec defaults once, so config() reports the
  // effective values the simulation actually uses.
  if (cfg_.l2_bytes == 0) {
    cfg_.l2_bytes = spec.l2_bytes > 0.0
                        ? static_cast<std::size_t>(spec.l2_bytes)
                        : (std::size_t{50} << 20);
  }
  if (cfg_.l2_bw <= 0.0) cfg_.l2_bw = 4.0 * spec.dram_bw;
  if (cfg_.dram_latency_s <= 0.0) cfg_.dram_latency_s = spec.dram_latency_s;
  cfg_.l2_ways = std::max(1, cfg_.l2_ways);
  cfg_.line_bytes = std::max(1, cfg_.line_bytes);
}

CacheSimModel::StreamStats CacheSimModel::simulate(
    const KernelProfile& prof) const {
  StreamStats s;
  const double line = static_cast<double>(cfg_.line_bytes);
  if (prof.dram_bytes <= 0.0) return s;

  // Total counted traffic in lines, and the footprint it cycles over. An
  // unknown working set (0) means pure streaming: every line is new.
  const double total_lines_d = std::ceil(prof.dram_bytes / line);
  const double footprint_d = prof.working_set_bytes > 0.0
                                 ? std::ceil(prof.working_set_bytes / line)
                                 : total_lines_d;
  const auto working_lines = static_cast<std::uint64_t>(std::min(
      footprint_d, static_cast<double>(cfg_.max_working_set_lines)));
  const std::uint64_t w = std::max<std::uint64_t>(1, working_lines);
  const auto n = static_cast<std::uint64_t>(std::min(
      total_lines_d, static_cast<double>(cfg_.max_sim_accesses)));

  cachesim::SetAssocCache cache(
      {cfg_.l2_bytes, cfg_.l2_ways, cfg_.line_bytes});
  std::uint64_t lcg = 0x9e3779b97f4a7c15ULL;  // fixed seed: determinism
  for (std::uint64_t i = 0; i < n; ++i) {
    std::uint64_t idx = 0;
    switch (prof.access) {
      case AccessPattern::Dense:
        idx = i % w;
        break;
      case AccessPattern::Strided:
        idx = (i * kStrideLines) % w;
        break;
      case AccessPattern::Irregular:
        lcg = lcg * kLcgMul + kLcgAdd;
        idx = (lcg >> 33) % w;
        break;
    }
    cache.access(idx * static_cast<std::uint64_t>(cfg_.line_bytes));
  }
  s.accesses = cache.accesses();
  s.hits = cache.hits();
  s.misses = cache.misses();
  s.hit_rate = s.accesses > 0
                   ? static_cast<double>(s.hits) /
                         static_cast<double>(s.accesses)
                   : 0.0;
  return s;
}

Prediction CacheSimModel::predict(const KernelProfile& prof) const {
  const DeviceSpec& d = spec();
  Prediction p;

  const double pipe_eff = std::clamp(prof.pipe_eff, 0.01, 1.0);

  // Compute-side service times: identical to the analytic backend — the
  // backends differ only in how the memory hierarchy is priced, so backend
  // deltas isolate exactly the DRAM question.
  auto service = [](double work, double rate, double fallback_rate) {
    if (work <= 0.0) return 0.0;
    return work / (rate > 0.0 ? rate : fallback_rate);
  };
  const double tc_rate = d.fp64_tc_peak * pipe_eff;
  const double bit_rate = d.bit_tc_peak * pipe_eff;
  const double int_rate = d.int_cc_peak * pipe_eff;
  p.t_tensor = service(prof.tc_flops, tc_rate, d.fp64_cc_peak * pipe_eff) +
               service(prof.tc_bitops, bit_rate, int_rate);
  p.t_cuda = service(prof.cc_flops, d.fp64_cc_peak * pipe_eff, int_rate) +
             service(prof.cc_intops, int_rate, int_rate);
  p.t_smem = prof.smem_bytes / d.smem_bw;
  p.t_issue = prof.warp_instructions / d.issue_rate();

  // Memory hierarchy: replay the synthesized stream, extrapolate the
  // measured hit rate to the full counted traffic, and take the max of the
  // DRAM bandwidth, L2 bandwidth, and latency/overlap stages.
  const StreamStats stats = simulate(prof);
  const double miss_frac =
      stats.accesses > 0 ? static_cast<double>(stats.misses) /
                               static_cast<double>(stats.accesses)
                         : 1.0;
  const double hit_frac = 1.0 - miss_frac;
  const double t_bw = prof.dram_bytes * miss_frac / d.dram_bw;
  const double t_l2 = prof.dram_bytes * hit_frac / cfg_.l2_bw;
  const double total_lines =
      prof.dram_bytes / static_cast<double>(cfg_.line_bytes);
  // Outstanding misses overlap across resident warps, capped by the
  // device's aggregate miss-queue depth.
  const double overlap =
      std::clamp(prof.threads / 32.0, 1.0, cfg_.mlp_per_sm * d.num_sm);
  const double t_lat =
      total_lines * miss_frac * cfg_.dram_latency_s / overlap;
  p.t_dram = std::max({t_bw, t_l2, t_lat});
  p.l2_hit_rate = stats.accesses > 0 ? stats.hit_rate : -1.0;

  if (stats.accesses > 0) {
    auto& bus = telemetry::bus();
    if (bus.enabled()) {
      telemetry::Event hit;
      hit.kind = telemetry::EventKind::CacheSimStats;
      hit.name = "l2";
      hit.source = "hit";
      hit.count = static_cast<std::size_t>(stats.hits);
      bus.emit(std::move(hit));
      telemetry::Event miss;
      miss.kind = telemetry::EventKind::CacheSimStats;
      miss.name = "l2";
      miss.source = "miss";
      miss.count = static_cast<std::size_t>(stats.misses);
      bus.emit(std::move(miss));
    }
  }

  // From here down the structure matches AnalyticModel::predict exactly.
  double t = std::max({p.t_tensor, p.t_cuda, p.t_dram, p.t_smem, p.t_issue});
  Bottleneck bound = Bottleneck::Dram;
  if (t == p.t_tensor) bound = Bottleneck::TensorPipe;
  else if (t == p.t_cuda) bound = Bottleneck::CudaPipe;
  else if (t == p.t_dram) bound = Bottleneck::Dram;
  else if (t == p.t_smem) bound = Bottleneck::SharedMem;
  else bound = Bottleneck::Issue;

  const double saturation = d.max_threads * cal::kSaturationFraction;
  double parallel_eff = 1.0;
  if (prof.threads > 0.0 && prof.threads < saturation) {
    parallel_eff =
        std::max(std::sqrt(prof.threads / saturation), cal::kMinParallelEff);
  }
  t /= parallel_eff;

  const double overhead =
      static_cast<double>(std::max(prof.launches, 1)) * d.launch_overhead_s;
  if (overhead > t) bound = Bottleneck::Launch;
  t += overhead;

  p.time_s = t;
  p.bound = bound;

  p.u_tensor = std::min(1.0, p.t_tensor / t);
  p.u_cuda = std::min(1.0, p.t_cuda / t);
  p.u_mem = std::min(1.0, p.t_dram / t);

  double power = d.idle_w + d.tc_power_w * p.u_tensor +
                 d.cc_power_w * p.u_cuda + d.mem_power_w * p.u_mem;
  p.avg_power_w = std::min(power, d.tdp_w);
  p.energy_j = p.avg_power_w * p.time_s;
  p.edp = p.avg_power_w * p.time_s * p.time_s;
  return p;
}

}  // namespace cubie::sim
