// Reduction workload (Quadrant III): sum of all array values.
//
// TC: the Dakkak et al. segmented reduction in FP64. Each 64-element chunk
// is an 8x8 matrix X reduced with two MMAs against constant operands:
//   T = A1 * X   (A1 = single row of ones)  -> column sums in row 0
//   t = T * B2   (B2 = single column of ones) -> chunk total in element (0,0)
// Only one row / one element of each 8x8 output is used - the partial-output
// signature of Quadrant III. Chunk totals are combined within each block;
// blocks are independent, one output per block (CUB BlockReduce semantics).
// CC: identical math on CUDA cores. CC-E: plain sequential per-chunk sums
// (the essential work, in serial order - hence errors closer to the serial
// reference than TC's column-major order, as in Table 6).
// Baseline: CUB BlockReduce proxy - pairwise warp trees + sequential combine.

#include "core/kernels.hpp"

#include "common/rng.hpp"
#include "mma/constants.hpp"
#include "mma/mma.hpp"
#include "sim/calibration.hpp"

#include <algorithm>
#include <string>
#include <vector>

namespace cubie::core {
namespace {

namespace scal = cubie::sim::cal;
constexpr std::size_t kChunk = 64;

std::size_t total_elems(int scale_divisor) {
  return static_cast<std::size_t>(8 * 1024 * 1024) / static_cast<std::size_t>(scale_divisor);
}

double reduce_chunk_mma(mma::Context& ctx, const double* x) {
  double t[64] = {};
  ctx.dmma_m8n8k8_acc(mma::kOnesRow0.data(), x, t);  // row 0 = column sums
  double total[64] = {};
  ctx.dmma_m8n8k8_acc(t, mma::kOnesCol0.data(), total);
  return total[0];
}

class ReductionWorkload final : public Workload {
 public:
  std::string name() const override { return "Reduction"; }
  Quadrant quadrant() const override { return Quadrant::III; }
  std::string dwarf() const override { return "MapReduce"; }
  std::string baseline_name() const override {
    return "CUB BlockReduce v2.7.0";
  }

  std::vector<TestCase> cases(int s) const override {
    std::vector<TestCase> cs;
    for (long block : {64L, 128L, 256L, 512L, 1024L}) {
      cs.push_back({"block=" + std::to_string(block),
                    {block, static_cast<long>(total_elems(s))},
                    ""});
    }
    return cs;
  }

  RunOutput run(Variant v, const TestCase& tc,
                const RunOptions& opts) const override {
    const std::size_t block = static_cast<std::size_t>(tc.dims[0]);
    const std::size_t n = static_cast<std::size_t>(tc.dims[1]) / block * block;
    RunOutput out;
    sim::Span total(opts.tracer, "Reduction/" + variant_name(v), out.profile);
    sim::Span setup(opts.tracer, "setup", out.profile);
    const auto x = common::random_vector(n, 41);
    setup.finish();
    mma::Context ctx(v == Variant::TC ? mma::Pipe::TensorCore
                                      : mma::Pipe::CudaCore,
                     out.profile);

    sim::Span kernel(opts.tracer, "kernel", out.profile);
    ctx.launch(static_cast<double>(n / block) * 256.0);
    ctx.load_global(static_cast<double>(n) * 8.0);
    ctx.store_global(static_cast<double>(n / block) * 8.0);

    const std::size_t blocks = n / block;
    out.values.assign(blocks, 0.0);
    switch (v) {
      case Variant::TC:
      case Variant::CC: {
        for (std::size_t b = 0; b < blocks; ++b) {
          double total = 0.0;
          for (std::size_t base = b * block; base < (b + 1) * block;
               base += kChunk) {
            double xin[kChunk] = {};
            const std::size_t len = std::min(kChunk, (b + 1) * block - base);
            std::copy(x.begin() + static_cast<std::ptrdiff_t>(base),
                      x.begin() + static_cast<std::ptrdiff_t>(base + len),
                      xin);
            total += reduce_chunk_mma(ctx, xin);
          }
          out.values[b] = total;
        }
        ctx.cc_flop(static_cast<double>(n / kChunk));
        out.profile.pipe_eff = v == Variant::TC ? scal::kTcSmallBlockEff
                                                : scal::kCcEmulationEff;
        out.profile.mem_eff = v == Variant::TC ? scal::kMemEffTcLayout
                                               : scal::kMemEffCcSmall;
        break;
      }
      case Variant::CCE: {
        // Essential: sequential adds per chunk, sequential chunk combine.
        ctx.cc_flop(static_cast<double>(n) + static_cast<double>(n / kChunk));
        for (std::size_t b = 0; b < blocks; ++b) {
          double total = 0.0;
          for (std::size_t base = b * block; base < (b + 1) * block;
               base += kChunk) {
            const std::size_t len = std::min(kChunk, (b + 1) * block - base);
            double chunk = 0.0;
            for (std::size_t i = 0; i < len; ++i) chunk = chunk + x[base + i];
            total += chunk;
          }
          out.values[b] = total;
        }
        out.profile.pipe_eff = scal::kCcEssentialEff;
        // Sequential streaming sums keep more bandwidth than the CC MMA
        // emulation but less than the blocked MMA layout.
        out.profile.mem_eff = scal::kMemEffCcEmulation;
        break;
      }
      case Variant::Baseline: {
        // CUB BlockReduce proxy: 32-lane pairwise trees, sequential combine
        // of warp totals within the block.
        ctx.cc_flop(static_cast<double>(n) + static_cast<double>(n) / 16.0);
        ctx.load_shared(static_cast<double>(n) * 8.0 / 4.0);
        for (std::size_t b = 0; b < blocks; ++b) {
          double total = 0.0;
          for (std::size_t w = b * block; w < (b + 1) * block; w += 32) {
            const std::size_t len = std::min<std::size_t>(32, (b + 1) * block - w);
            double lanes[32] = {};
            for (std::size_t i = 0; i < len; ++i) lanes[i] = x[w + i];
            for (int stride = 16; stride >= 1; stride /= 2)
              for (int l = 0; l < stride; ++l) lanes[l] += lanes[l + stride];
            total += lanes[0];
          }
          out.values[b] = total;
        }
        out.profile.pipe_eff = scal::kCubEff;
        out.profile.mem_eff = scal::kMemEffCub;
        break;
      }
    }
    out.profile.useful_flops = static_cast<double>(n);
    // Cachesim descriptor: single dense pass over the input vector.
    out.profile.access = sim::AccessPattern::Dense;
    out.profile.working_set_bytes = static_cast<double>(n) * 8.0;
    return out;
  }

  std::vector<double> reference(const TestCase& tc) const override {
    const std::size_t block = static_cast<std::size_t>(tc.dims[0]);
    const std::size_t n = static_cast<std::size_t>(tc.dims[1]) / block * block;
    const auto x = common::random_vector(n, 41);
    std::vector<double> sums(n / block, 0.0);
    for (std::size_t b = 0; b < sums.size(); ++b) {
      double acc = 0.0;
      for (std::size_t i = b * block; i < (b + 1) * block; ++i) acc = acc + x[i];
      sums[b] = acc;
    }
    return sums;
  }
};

}  // namespace

WorkloadPtr make_reduction() { return std::make_unique<ReductionWorkload>(); }

}  // namespace cubie::core
