#pragma once
// Cubie-Serve wire protocol: line-delimited JSON over a Unix-domain or
// localhost TCP socket. One request per line, one response per line, in
// request order per connection (concurrent requests on one connection are
// answered as they finish; match them by `id`).
//
// Request (all fields beyond "cmd" optional; defaults mirror `cubie run`):
//   {"id": "r1", "cmd": "run", "workload": "GEMM", "variant": "all",
//    "case": "rep", "gpu": "H200", "scale": 16, "errors": false,
//    "check": false, "deadline_ms": 250}
//
//   cmd = "run"      execute one workload plan, respond with its
//                    MetricsReport — byte-identical to what
//                    `cubie run <workload> --json` writes for the same
//                    plan (see serve::run_report);
//         "suite"    the full Figure-3 suite sweep (fig03_perf's records);
//         "check"    Cubie-Check conformance over the requested plan;
//         "stats"    engine + server counters, no execution;
//         "metrics"  Cubie-Pulse registry snapshot as Prometheus text
//                    exposition (version 0.0.4), no execution — answered
//                    inline on the reader thread, so a scrape succeeds
//                    even while the admission queue is full;
//         "ping"     liveness probe;
//         "sleep"    {"ms": N} hold a worker for N ms — a diagnostic load
//                    for exercising queueing, deadlines, and drain;
//         "flight"   dump the daemon's Cubie-Flight recorder ring (the
//                    last N events) — answered inline, so the recent
//                    history is retrievable even while workers are wedged;
//         "shutdown" begin graceful drain: queued work completes, new
//                    requests are rejected, the process exits.
//
// An optional "trace" field (a Cubie-Flight 32-hex-char trace id, see
// telemetry/trace_context.hpp) correlates the request with every telemetry
// event it causes; the response echoes it back. Requests without one are
// served exactly as before — the field is omitted from responses too, so
// served-vs-direct byte-identity for legacy clients is untouched.
//
// Response:
//   {"id": "r1", "ok": true, "report": {...schema-v1 MetricsReport...}}
//   {"id": "r1", "ok": true, "engine": {...}, "server": {...}}   (stats)
//   {"id": "r1", "ok": true, "content_type": "text/plain; version=0.0.4",
//    "metrics": "<exposition text>"}                             (metrics)
//   {"id": "r1", "ok": false,
//    "error": {"code": "overloaded", "message": "..."}}
//
// Typed error codes (ErrorCode below): "bad_request", "overloaded"
// (bounded admission queue full — explicit backpressure, never unbounded
// queueing), "deadline_exceeded" (the request's deadline passed while it
// waited), "shutting_down" (drain in progress), "internal".
//
// See docs/SERVING.md for the full schema and semantics.

#include "common/report.hpp"
#include "serve/service.hpp"

#include <optional>
#include <string>
#include <vector>

namespace cubie::serve {

inline constexpr int kProtocolVersion = 1;

// Hard cap on one request line; longer lines poison the connection
// (bad_request + close) rather than buffering unboundedly.
inline constexpr std::size_t kMaxRequestBytes = 1 << 20;

enum class Cmd { Run, Suite, Check, Stats, Metrics, Ping, Sleep, Flight, Shutdown };
const char* cmd_name(Cmd c);
std::optional<Cmd> parse_cmd(const std::string& s);

enum class ErrorCode {
  BadRequest,
  Overloaded,
  DeadlineExceeded,
  ShuttingDown,
  Internal,
};
const char* error_code_name(ErrorCode c);

struct Request {
  std::string id;  // echoed back verbatim; client-chosen
  Cmd cmd = Cmd::Ping;
  RunSpec spec;            // run / suite / check
  double sleep_ms = 0.0;   // sleep
  double deadline_ms = 0;  // <= 0: no deadline
  std::string trace;       // Cubie-Flight trace id; "" = none supplied
  // Cubie-Cluster: a `suite` request may carry an explicit cell subset —
  // the shard a router assigned to one worker, as an optional "cells"
  // array of {"workload", "case", "variant"} coordinates. Empty means the
  // full suite, and the field is then omitted from the wire form, so
  // non-sharded requests keep their exact pre-cluster bytes.
  std::vector<ShardCell> cells;
};

// Deterministic display key for telemetry ("run GEMM/all/rep/H200/s16").
std::string request_key(const Request& r);

// Parse one request line. nullopt (with *error set) on malformed JSON, an
// unknown cmd, or a non-object document; the message names the offending
// field so clients can fix the call site.
std::optional<Request> parse_request(const std::string& line,
                                     std::string* error);

// The request's wire form (used by clients; parse_request's inverse).
report::Json request_to_json(const Request& r);

// Response envelopes. Each returns a complete single-line document.
// `trace` is echoed as the envelope's "trace" member when non-empty —
// servers pass the client-supplied id through, and omit it (preserving
// the pre-trace wire bytes) when the client sent none.
std::string ok_line(const std::string& id, report::Json body,
                    const std::string& trace = "");
std::string report_line(const std::string& id,
                        const report::MetricsReport& rep,
                        const report::EngineStats& engine,
                        std::optional<bool> check_pass,
                        const std::string& trace = "");
std::string error_line(const std::string& id, ErrorCode code,
                       const std::string& message,
                       const std::string& trace = "");

}  // namespace cubie::serve
