// FFT substrate: serial/Stockham FFTs against the naive DFT, inverse
// round-trip, and the radix-4 butterfly matrix.

#include "common/rng.hpp"
#include "fft/fft.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace cubie {
namespace {

using fft::cplx;

std::vector<cplx> random_signal(std::size_t n, std::uint32_t seed) {
  const auto re = common::random_vector(n, seed);
  const auto im = common::random_vector(n, seed + 1);
  std::vector<cplx> x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = {re[i], im[i]};
  return x;
}

double max_err(const std::vector<cplx>& a, const std::vector<cplx>& b) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

class FftSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftSizes, SerialMatchesNaiveDft) {
  const auto x = random_signal(GetParam(), 100);
  EXPECT_LT(max_err(fft::fft_serial(x), fft::dft_naive(x)),
            1e-10 * static_cast<double>(GetParam()));
}

TEST_P(FftSizes, StockhamMatchesNaiveDft) {
  const auto x = random_signal(GetParam(), 101);
  EXPECT_LT(max_err(fft::fft_stockham(x), fft::dft_naive(x)),
            1e-10 * static_cast<double>(GetParam()));
}

TEST_P(FftSizes, InverseRoundTrip) {
  const auto x = random_signal(GetParam(), 102);
  const auto back = fft::ifft_serial(fft::fft_serial(x));
  EXPECT_LT(max_err(back, x), 1e-12 * static_cast<double>(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, FftSizes,
                         ::testing::Values(1, 2, 4, 8, 16, 32, 64, 128, 256,
                                           512));

TEST(Fft, IsPow2) {
  EXPECT_TRUE(fft::is_pow2(1));
  EXPECT_TRUE(fft::is_pow2(64));
  EXPECT_FALSE(fft::is_pow2(0));
  EXPECT_FALSE(fft::is_pow2(48));
}

TEST(Fft, ImpulseGivesFlatSpectrum) {
  std::vector<cplx> x(16, 0.0);
  x[0] = 1.0;
  for (const auto& v : fft::fft_serial(x)) {
    EXPECT_NEAR(v.real(), 1.0, 1e-14);
    EXPECT_NEAR(v.imag(), 0.0, 1e-14);
  }
}

TEST(Fft, LinearityHolds) {
  const auto a = random_signal(64, 103);
  const auto b = random_signal(64, 105);
  std::vector<cplx> sum(64);
  for (int i = 0; i < 64; ++i) sum[static_cast<std::size_t>(i)] = a[static_cast<std::size_t>(i)] + b[static_cast<std::size_t>(i)];
  const auto fa = fft::fft_serial(a), fb = fft::fft_serial(b),
             fs = fft::fft_serial(sum);
  for (int i = 0; i < 64; ++i) {
    EXPECT_NEAR(std::abs(fs[static_cast<std::size_t>(i)] - fa[static_cast<std::size_t>(i)] - fb[static_cast<std::size_t>(i)]), 0.0, 1e-12);
  }
}

TEST(Fft, ParsevalEnergyConservation) {
  const auto x = random_signal(128, 107);
  const auto f = fft::fft_serial(x);
  double ex = 0.0, ef = 0.0;
  for (const auto& v : x) ex += std::norm(v);
  for (const auto& v : f) ef += std::norm(v);
  EXPECT_NEAR(ef, ex * 128.0, 1e-9 * ex * 128.0);
}

TEST(Radix4Butterfly, IsRealFormOfDft4) {
  const auto m = fft::radix4_butterfly_real();
  // Apply to a packed random 4-point complex vector and compare to dft.
  const auto x = random_signal(4, 109);
  double packed[8], out[8] = {};
  for (int i = 0; i < 4; ++i) {
    packed[2 * i] = x[static_cast<std::size_t>(i)].real();
    packed[2 * i + 1] = x[static_cast<std::size_t>(i)].imag();
  }
  for (int r = 0; r < 8; ++r)
    for (int c = 0; c < 8; ++c) out[r] += m[static_cast<std::size_t>(r * 8 + c)] * packed[c];
  const auto y = fft::dft_naive(x);
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(out[2 * i], y[static_cast<std::size_t>(i)].real(), 1e-12);
    EXPECT_NEAR(out[2 * i + 1], y[static_cast<std::size_t>(i)].imag(), 1e-12);
  }
}

TEST(Radix4Butterfly, EntriesAreExactUnits) {
  const auto m = fft::radix4_butterfly_real();
  for (double v : m) {
    EXPECT_TRUE(v == 0.0 || v == 1.0 || v == -1.0) << v;
  }
}

}  // namespace
}  // namespace cubie
