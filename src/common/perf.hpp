#pragma once
// Workload-aware performance-metric helpers, shared by the bench harness
// (bench/bench_util.hpp) and the Cubie-Serve report builder
// (src/serve/service.cpp). Both must label and compute the Figure-3 rate
// identically, or a served report could never be byte-identical to the
// bench-produced one.

#include "core/workload.hpp"
#include "sim/profile.hpp"

#include <string>

namespace cubie::perf {

// Useful work rate per second. For floating-point workloads `useful_flops`
// counts FLOPs and the rate is FLOP/s; for non-floating-point workloads
// (BFS) the Workload contract stores traversed edges there, so the same
// ratio is edges/s (TEPS). The workload decides which convention applies
// via is_floating_point() — tests/test_benchutil.cpp pins the BFS metric
// to edges/s.
inline double perf_metric(const core::Workload& w,
                          const sim::KernelProfile& prof, double time_s) {
  if (time_s <= 0.0) return 0.0;
  if (!w.is_floating_point()) {
    // Workload contract: useful_flops carries the traversed-edge count for
    // non-floating-point workloads (BfsWorkload::run).
    const double traversed_edges = prof.useful_flops;
    return traversed_edges / time_s;  // TEPS
  }
  return prof.useful_flops / time_s;  // FLOP/s
}

// Unit label matching perf_metric, at giga scale (Figure 3 axis labels and
// JSON metric names).
inline std::string perf_unit(const core::Workload& w) {
  return w.is_floating_point() ? "GFLOP/s" : "GTEPS";
}

inline std::string perf_metric_name(const core::Workload& w) {
  return w.is_floating_point() ? "gflops" : "gteps";
}

}  // namespace cubie::perf
