#include "sim/model.hpp"

#include "sim/calibration.hpp"

#include <algorithm>
#include <cmath>

namespace cubie::sim {

std::string bottleneck_name(Bottleneck b) {
  switch (b) {
    case Bottleneck::TensorPipe: return "tensor";
    case Bottleneck::CudaPipe: return "cuda";
    case Bottleneck::Dram: return "dram";
    case Bottleneck::SharedMem: return "smem";
    case Bottleneck::Issue: return "issue";
    case Bottleneck::Launch: return "launch";
  }
  return "?";
}

Prediction AnalyticModel::predict(const KernelProfile& prof) const {
  const DeviceSpec& d = spec();
  Prediction p;

  const double pipe_eff = std::clamp(prof.pipe_eff, 0.01, 1.0);
  const double mem_eff = std::clamp(prof.mem_eff, 0.01, 1.0);

  // Resource service times at sustained rates. A device without a given
  // pipe (e.g. V100's missing b1 MMA) contributes zero time for zero work;
  // nonzero work on a missing pipe falls back to the CUDA-core integer rate.
  auto service = [](double work, double rate, double fallback_rate) {
    if (work <= 0.0) return 0.0;
    return work / (rate > 0.0 ? rate : fallback_rate);
  };
  const double tc_rate = d.fp64_tc_peak * pipe_eff;
  const double bit_rate = d.bit_tc_peak * pipe_eff;
  const double int_rate = d.int_cc_peak * pipe_eff;
  p.t_tensor = service(prof.tc_flops, tc_rate, d.fp64_cc_peak * pipe_eff) +
               service(prof.tc_bitops, bit_rate, int_rate);
  p.t_cuda = service(prof.cc_flops, d.fp64_cc_peak * pipe_eff, int_rate) +
             service(prof.cc_intops, int_rate, int_rate);
  p.t_dram = prof.dram_bytes / (d.dram_bw * mem_eff);
  p.t_smem = prof.smem_bytes / d.smem_bw;
  p.t_issue = prof.warp_instructions / d.issue_rate();

  double t = std::max({p.t_tensor, p.t_cuda, p.t_dram, p.t_smem, p.t_issue});
  Bottleneck bound = Bottleneck::Dram;
  if (t == p.t_tensor) bound = Bottleneck::TensorPipe;
  else if (t == p.t_cuda) bound = Bottleneck::CudaPipe;
  else if (t == p.t_dram) bound = Bottleneck::Dram;
  else if (t == p.t_smem) bound = Bottleneck::SharedMem;
  else bound = Bottleneck::Issue;

  // Parallelism: below the saturation point the device is latency-bound and
  // sustained throughput degrades roughly linearly with resident threads.
  const double saturation = d.max_threads * cal::kSaturationFraction;
  double parallel_eff = 1.0;
  if (prof.threads > 0.0 && prof.threads < saturation) {
    // Square-root rolloff: occupancy loss is partially hidden by ILP and
    // memory-level parallelism, so throughput degrades sub-linearly.
    parallel_eff =
        std::max(std::sqrt(prof.threads / saturation), cal::kMinParallelEff);
  }
  t /= parallel_eff;

  const double overhead =
      static_cast<double>(std::max(prof.launches, 1)) * d.launch_overhead_s;
  if (overhead > t) bound = Bottleneck::Launch;
  t += overhead;

  p.time_s = t;
  p.bound = bound;

  // Utilizations relative to the final execution time.
  p.u_tensor = std::min(1.0, p.t_tensor / t);
  p.u_cuda = std::min(1.0, p.t_cuda / t);
  p.u_mem = std::min(1.0, p.t_dram / t);

  // Power: idle + utilization-weighted marginal components, clamped at TDP.
  double power = d.idle_w + d.tc_power_w * p.u_tensor +
                 d.cc_power_w * p.u_cuda + d.mem_power_w * p.u_mem;
  p.avg_power_w = std::min(power, d.tdp_w);
  p.energy_j = p.avg_power_w * p.time_s;
  p.edp = p.avg_power_w * p.time_s * p.time_s;
  return p;
}

}  // namespace cubie::sim
