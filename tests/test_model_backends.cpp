// Device-model backend tests: the registry (sim/model_registry.hpp), the
// analytic backend's bit-identity to its recorded goldens, the cachesim
// backend's determinism and cache mechanics, the no-TC-win property the
// paper claims for memory-bound kernels, the engine's model axis in cell
// keys, the DiskCache schema-version gate, and the Cubie-Pulse cachesim
// counters.

#include <gtest/gtest.h>

#include "core/workload.hpp"
#include "engine/cache.hpp"
#include "engine/engine.hpp"
#include "engine/plan.hpp"
#include "sim/cachesim/cache.hpp"
#include "sim/cachesim/cachesim_model.hpp"
#include "sim/device.hpp"
#include "sim/model.hpp"
#include "sim/model_registry.hpp"
#include "telemetry/metrics_registry.hpp"
#include "telemetry/telemetry.hpp"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace {

using namespace cubie;

// --- Registry ---------------------------------------------------------------

TEST(ModelRegistry, EnumeratesBothBackendsWithDescriptions) {
  const auto names = sim::model_backend_names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "analytic");
  EXPECT_EQ(names[1], "cachesim");
  for (const auto& n : names)
    EXPECT_FALSE(sim::model_backend_description(n).empty()) << n;
}

TEST(ModelRegistry, FactoryRoundTripsEveryRegisteredName) {
  for (const auto& n : sim::model_backend_names()) {
    const auto m = sim::make_device_model(n, sim::h200());
    ASSERT_NE(m, nullptr) << n;
    EXPECT_EQ(m->name(), n);
    EXPECT_EQ(m->spec().name, sim::h200().name);
  }
}

TEST(ModelRegistry, LookupIsCaseInsensitive) {
  EXPECT_NE(sim::make_device_model("Analytic", sim::a100()), nullptr);
  EXPECT_NE(sim::make_device_model("CACHESIM", sim::a100()), nullptr);
  EXPECT_FALSE(sim::model_backend_description("AnAlYtIc").empty());
}

TEST(ModelRegistry, UnknownNameIsNullWithDidYouMean) {
  EXPECT_EQ(sim::make_device_model("roofline", sim::h200()), nullptr);
  EXPECT_TRUE(sim::model_backend_description("roofline").empty());
  EXPECT_EQ(sim::suggest_model_backend("cachsim"), "cachesim");
  EXPECT_EQ(sim::suggest_model_backend("analytik"), "analytic");
  // Nothing plausibly close: no suggestion rather than a misleading one.
  EXPECT_EQ(sim::suggest_model_backend("zzzzzzzzzzzz"), "");
}

// --- Analytic bit-identity --------------------------------------------------

// Three representative profiles spanning the bottleneck space: a GEMM-like
// tensor-bound cell, a SpMV-like DRAM-bound cell, and a BFS-like
// launch-bound cell.
sim::KernelProfile golden_profile(int which) {
  sim::KernelProfile p;
  switch (which) {
    case 0:
      p.tc_flops = 4.4e9;
      p.cc_flops = 1.2e7;
      p.dram_bytes = 9.8e7;
      p.smem_bytes = 6.1e8;
      p.warp_instructions = 3.3e6;
      p.threads = 262144;
      p.launches = 3;
      p.mem_eff = 0.92;
      p.pipe_eff = 0.70;
      p.useful_flops = 4.2e9;
      break;
    case 1:
      p.cc_flops = 5.0e6;
      p.cc_intops = 9.0e6;
      p.dram_bytes = 4.7e8;
      p.smem_bytes = 1.1e7;
      p.warp_instructions = 8.8e5;
      p.threads = 8192;
      p.launches = 1;
      p.mem_eff = 0.45;
      p.pipe_eff = 0.55;
      p.useful_flops = 1.0e7;
      break;
    default:
      p.tc_bitops = 2.5e8;
      p.cc_intops = 3.0e5;
      p.dram_bytes = 1.6e6;
      p.warp_instructions = 4.4e4;
      p.threads = 512;
      p.launches = 24;
      p.mem_eff = 0.18;
      p.pipe_eff = 0.30;
      break;
  }
  return p;
}

// Recorded on the pre-refactor concrete DeviceModel (the exact doubles the
// equation produced before it was extracted behind the interface). Any
// drift in the analytic backend — reordered arithmetic included — fails
// EXPECT_DOUBLE_EQ here.
struct GoldenRow {
  double time_s, avg_power_w, energy_j, edp;
};
constexpr GoldenRow kGolden[3][3] = {
    // A100: p0 tensor-bound, p1 dram-bound, p2 launch-bound.
    {{0.00032504432234432238, 214.57526373780522, 0.069746471193509144,
      2.2670694465001982e-05},
     {0.00067473512544802868, 150.18920632796082, 0.1013379329726365,
      6.8376262916935819e-05},
     {3.8456703606249828e-05, 69.934390786935467, 0.0026894461383768259,
      1.0342723300853075e-07}},
    // H200.
    {{9.6356865257313698e-05, 536.38097805373934, 0.051683989628910298,
      4.9801072246333078e-06},
     {0.00026191111111111112, 345.19375378326424, 0.090410079601990059,
      2.3679404404201219e-05},
     {2.642136747078752e-05, 117.15651632723595, 0.0030954353694792186,
      8.1785635379083377e-08}},
    // B200.
    {{0.00015954285714285714, 611.62621075744357, 0.097580593167701846,
      1.5568286635669915e-05},
     {0.00013135555555555554, 450.07336091416619, 0.05911963636363636,
      7.7656926787878778e-06},
     {2.3023255674241167e-05, 137.00040895357265, 0.0031541954428137018,
      7.2619848126426194e-08}},
};

TEST(AnalyticBackend, MatchesPreRefactorGoldens) {
  const sim::Gpu gpus[] = {sim::Gpu::A100, sim::Gpu::H200, sim::Gpu::B200};
  for (int g = 0; g < 3; ++g) {
    const sim::AnalyticModel m(sim::spec_for(gpus[g]));
    for (int p = 0; p < 3; ++p) {
      const auto pred = m.predict(golden_profile(p));
      const auto& want = kGolden[g][p];
      EXPECT_DOUBLE_EQ(pred.time_s, want.time_s) << "gpu " << g << " p" << p;
      EXPECT_DOUBLE_EQ(pred.avg_power_w, want.avg_power_w)
          << "gpu " << g << " p" << p;
      EXPECT_DOUBLE_EQ(pred.energy_j, want.energy_j)
          << "gpu " << g << " p" << p;
      EXPECT_DOUBLE_EQ(pred.edp, want.edp) << "gpu " << g << " p" << p;
    }
  }
}

TEST(AnalyticBackend, FactoryInstanceIsBitIdenticalToDirectConstruction) {
  const sim::AnalyticModel direct(sim::h200());
  const auto via_factory = sim::make_device_model("analytic", sim::h200());
  ASSERT_NE(via_factory, nullptr);
  for (int p = 0; p < 3; ++p) {
    const auto a = direct.predict(golden_profile(p));
    const auto b = via_factory->predict(golden_profile(p));
    EXPECT_EQ(0, std::memcmp(&a.time_s, &b.time_s, sizeof(double)));
    EXPECT_EQ(0, std::memcmp(&a.energy_j, &b.energy_j, sizeof(double)));
    EXPECT_EQ(0, std::memcmp(&a.edp, &b.edp, sizeof(double)));
  }
  // Analytic predictions carry the "not simulated" sentinel.
  EXPECT_LT(direct.predict(golden_profile(0)).l2_hit_rate, 0.0);
}

// --- Cachesim determinism ---------------------------------------------------

TEST(CacheSimBackend, PredictIsDeterministicAcrossCallsAndThreads) {
  const sim::CacheSimModel m(sim::h200());
  sim::KernelProfile p = golden_profile(1);
  p.access = sim::AccessPattern::Irregular;
  p.working_set_bytes = 96e6;  // larger than H200's L2: real miss traffic
  const auto first = m.predict(p);
  EXPECT_GE(first.l2_hit_rate, 0.0);
  EXPECT_LE(first.l2_hit_rate, 1.0);
  for (int i = 0; i < 3; ++i) {
    const auto again = m.predict(p);
    EXPECT_EQ(0, std::memcmp(&again.time_s, &first.time_s, sizeof(double)));
    EXPECT_EQ(0,
              std::memcmp(&again.l2_hit_rate, &first.l2_hit_rate,
                          sizeof(double)));
  }
  // Concurrent predicts on one shared instance (the engine's --jobs pool
  // does exactly this) must agree bitwise with the serial result.
  std::vector<double> times(8, -1.0);
  std::vector<std::thread> pool;
  for (std::size_t t = 0; t < times.size(); ++t)
    pool.emplace_back([&, t] { times[t] = m.predict(p).time_s; });
  for (auto& th : pool) th.join();
  for (double t : times)
    EXPECT_EQ(0, std::memcmp(&t, &first.time_s, sizeof(double)));
}

TEST(CacheSimBackend, EngineParallelMatchesSerialUnderCachesim) {
  engine::EngineOptions serial;
  serial.model = "cachesim";
  engine::EngineOptions parallel = serial;
  parallel.jobs = 4;

  engine::Plan plan = engine::Plan::representative(64);
  plan.workloads = {"GEMV", "Scan"};

  engine::ExperimentEngine a(serial), b(parallel);
  a.execute(plan);
  b.execute(plan);
  auto keys = [](engine::ExperimentEngine& e) {
    std::vector<std::string> ks;
    for (const auto& c : e.materialized()) ks.push_back(c.key);
    std::sort(ks.begin(), ks.end());
    return ks;
  };
  const auto ka = keys(a), kb = keys(b);
  ASSERT_FALSE(ka.empty());
  EXPECT_EQ(ka, kb);
  for (const auto& k : ka)
    EXPECT_NE(k.find("|m=cachesim"), std::string::npos) << k;
}

TEST(EngineOptions, UnknownModelBackendThrows) {
  engine::EngineOptions opts;
  opts.model = "no-such-backend";
  EXPECT_THROW(engine::ExperimentEngine eng(opts), std::invalid_argument);
}

// --- Cache mechanics --------------------------------------------------------

TEST(SetAssocCache, LruEvictsLeastRecentlyTouchedWay) {
  // One set, two ways, 64-byte lines: lines A=0, B=64, C=128 all collide.
  sim::cachesim::CacheConfig cfg;
  cfg.size_bytes = 128;
  cfg.ways = 2;
  cfg.line_bytes = 64;
  sim::cachesim::SetAssocCache c(cfg);
  ASSERT_EQ(c.num_sets(), 1u);

  EXPECT_FALSE(c.access(0));    // A miss           {A}
  EXPECT_FALSE(c.access(64));   // B miss           {A,B}
  EXPECT_TRUE(c.access(0));     // A hit; B is LRU
  EXPECT_FALSE(c.access(128));  // C miss, evicts B {A,C}
  EXPECT_TRUE(c.access(0));     // A survived
  EXPECT_FALSE(c.access(64));   // B was the victim
  EXPECT_EQ(c.hits(), 2u);
  EXPECT_EQ(c.misses(), 4u);
  EXPECT_EQ(c.accesses(), 6u);
}

TEST(SetAssocCache, AssociativityConflictThrashesWhereFullAssocHits) {
  // Two lines that fit capacity either way, but alias the same set when
  // direct-mapped: 0 and 128 with 64-byte lines and two sets.
  sim::cachesim::CacheConfig direct;
  direct.size_bytes = 128;
  direct.ways = 1;
  direct.line_bytes = 64;
  sim::cachesim::SetAssocCache dm(direct);
  ASSERT_EQ(dm.num_sets(), 2u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(dm.access(0));    // conflict miss every round trip
    EXPECT_FALSE(dm.access(128));
  }
  EXPECT_EQ(dm.hits(), 0u);

  sim::cachesim::CacheConfig assoc = direct;
  assoc.ways = 2;  // same capacity, fully associative: both lines resident
  sim::cachesim::SetAssocCache fa(assoc);
  ASSERT_EQ(fa.num_sets(), 1u);
  EXPECT_FALSE(fa.access(0));
  EXPECT_FALSE(fa.access(128));
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(fa.access(0));
    EXPECT_TRUE(fa.access(128));
  }
  EXPECT_EQ(fa.misses(), 2u);
}

TEST(CacheSimBackend, SmallWorkingSetHitsLargeWorkingSetMisses) {
  const sim::CacheSimModel m(sim::h200());
  sim::KernelProfile p;
  p.dram_bytes = 1e9;
  p.threads = 1 << 16;
  p.launches = 1;
  p.access = sim::AccessPattern::Dense;
  p.working_set_bytes = 1e6;  // resident in any L2
  const auto resident = m.simulate(p);
  EXPECT_GT(resident.hit_rate, 0.9);
  p.working_set_bytes = 4e9;  // far beyond L2
  const auto streaming = m.simulate(p);
  EXPECT_LT(streaming.hit_rate, resident.hit_rate);
  // More hits must never slow the prediction down.
  sim::KernelProfile q = p;
  q.working_set_bytes = 1e6;
  EXPECT_LE(m.predict(q).t_dram, m.predict(p).t_dram);
}

// --- The paper's memory-bound claim ----------------------------------------

// "Can Tensor Cores Benefit Memory-Bound Kernels? (No!)" — once hit rates
// are simulated instead of taken from per-variant mem_eff hints, both pipe
// variants of a DRAM-bound kernel see the same memory time, so the TC
// variant cannot win by more than the issue/pipe noise floor.
TEST(CacheSimBackend, MemoryBoundKernelsShowNoTensorCoreWin) {
  const sim::CacheSimModel model(sim::h200());
  engine::ExperimentEngine eng;
  for (const char* name : {"GEMV", "SpMV", "Scan", "Reduction", "Stencil"}) {
    const auto* w = eng.workload(name);
    ASSERT_NE(w, nullptr) << name;
    const auto tc_case = w->cases(16)[w->representative_case()];
    const auto& tc = eng.run(*w, core::Variant::TC, tc_case, 16);
    const auto& cc = eng.run(*w, core::Variant::CC, tc_case, 16);
    const auto pt = model.predict(tc.profile);
    const auto pc = model.predict(cc.profile);
    const double speedup = pc.time_s / pt.time_s;
    EXPECT_LE(speedup, 1.05) << name << ": TC speedup over CC " << speedup;
    if (w->has_baseline()) {
      const auto& base = eng.run(*w, core::Variant::Baseline, tc_case, 16);
      EXPECT_LE(model.predict(base.profile).time_s / pt.time_s, 1.05)
          << name << ": TC beat the baseline under cachesim";
    }
  }
}

// --- Engine cell-key model axis ---------------------------------------------

TEST(CellKey, CarriesTheModelBackendAxis) {
  const core::TestCase tc{"512^3", {512, 512, 512}, ""};
  const std::string analytic =
      engine::cell_key("GEMM", core::Variant::TC, tc, 1);
  const std::string explicit_analytic =
      engine::cell_key("GEMM", core::Variant::TC, tc, 1, "analytic");
  const std::string cachesim =
      engine::cell_key("GEMM", core::Variant::TC, tc, 1, "cachesim");
  // The default is the analytic backend, spelled out in the key.
  EXPECT_EQ(analytic, explicit_analytic);
  EXPECT_NE(analytic.find("|m=analytic"), std::string::npos);
  EXPECT_NE(cachesim.find("|m=cachesim"), std::string::npos);
  EXPECT_NE(analytic, cachesim);
  // Same prefix: only the model segment differs.
  EXPECT_EQ(analytic.substr(0, analytic.rfind("|m=")),
            cachesim.substr(0, cachesim.rfind("|m=")));
}

// --- DiskCache schema version -----------------------------------------------

TEST(DiskCacheSchema, StaleVersionIsATypedLoadFailure) {
  const auto dir = std::filesystem::temp_directory_path() /
                   "cubie_model_backend_schema";
  std::filesystem::remove_all(dir);
  engine::DiskCache cache(dir.string());
  ASSERT_TRUE(cache.enabled());

  core::RunOutput out;
  out.profile.useful_flops = 2.0;
  out.profile.access = sim::AccessPattern::Irregular;
  out.profile.working_set_bytes = 123456.0;
  out.values = {1.0, 2.0};
  const std::string key = "schema-cell|m=cachesim";
  ASSERT_TRUE(cache.store(key, out).ok());

  // Round trip: the access descriptor is part of the persisted profile.
  const auto back = cache.load(key);
  ASSERT_TRUE(back.hit());
  EXPECT_EQ(back.output->profile.access, sim::AccessPattern::Irregular);
  EXPECT_DOUBLE_EQ(back.output->profile.working_set_bytes, 123456.0);

  // A v1 file (written before the access descriptor / model axis existed)
  // must surface as StaleVersion, not as a hit or a silent miss.
  ASSERT_TRUE(cache.inject_fault(key, engine::DiskCache::Fault::StaleVersion));
  const auto stale = cache.load(key);
  EXPECT_EQ(stale.status, engine::CacheStatus::StaleVersion);
  EXPECT_FALSE(stale.hit());
  EXPECT_TRUE(stale.failed());
  EXPECT_FALSE(stale.detail.empty());
  EXPECT_STREQ(engine::cache_status_name(engine::CacheStatus::StaleVersion),
               "stale-version");
  std::filesystem::remove_all(dir);
}

// --- Cubie-Pulse cachesim counters ------------------------------------------

TEST(PulseCacheSim, SinkAccumulatesHitMissCountersAndRatioGauge) {
  telemetry::MetricsSink sink;
  telemetry::Event e;
  e.kind = telemetry::EventKind::CacheSimStats;
  e.name = "l2";
  e.source = "hit";
  e.count = 30;
  sink.on_event(e);
  e.source = "miss";
  e.count = 10;
  sink.on_event(e);

  std::string err;
  const auto exp = telemetry::parse_prometheus_text(
      telemetry::prometheus_text(sink.registry()), &err);
  ASSERT_TRUE(exp) << err;
  EXPECT_EQ(exp->value_or("cubie_cachesim_hits_total", {{"level", "l2"}}, -1),
            30.0);
  EXPECT_EQ(
      exp->value_or("cubie_cachesim_misses_total", {{"level", "l2"}}, -1),
      10.0);
  EXPECT_DOUBLE_EQ(
      exp->value_or("cubie_cachesim_hit_ratio", {{"level", "l2"}}, -1), 0.75);
}

TEST(PulseCacheSim, PredictEmitsStatsWhenTheBusIsLive) {
  auto sink = std::make_shared<telemetry::MetricsSink>();
  telemetry::bus().add_sink(sink);
  {
    const sim::CacheSimModel m(sim::h200());
    sim::KernelProfile p;
    p.dram_bytes = 1e8;
    p.threads = 4096;
    p.launches = 1;
    p.working_set_bytes = 8e6;
    (void)m.predict(p);
  }
  telemetry::bus().remove_sink(sink.get());

  std::string err;
  const auto exp = telemetry::parse_prometheus_text(
      telemetry::prometheus_text(sink->registry()), &err);
  ASSERT_TRUE(exp) << err;
  const double hits =
      exp->value_or("cubie_cachesim_hits_total", {{"level", "l2"}}, -1);
  const double misses =
      exp->value_or("cubie_cachesim_misses_total", {{"level", "l2"}}, -1);
  EXPECT_GE(hits, 0.0);
  EXPECT_GE(misses, 0.0);
  EXPECT_GT(hits + misses, 0.0);  // the replayed stream was accounted
}

}  // namespace
