// Cubie-Flight contracts: request-scoped trace correlation, the flight
// recorder ring, tail-capture timelines, and histogram exemplars.
// Pinned here:
//   * TraceScope is RAII, nests, and is thread-local; generated ids are
//     fixed-width lowercase hex and never all-zero;
//   * EventBus::emit stamps the active context only onto events whose
//     trace_id is still empty (emitter-set ids win);
//   * the flight ring is bounded, keeps the newest events oldest-first,
//     and its dump lines are byte-identical to event_to_json output;
//   * assemble_timeline reconstructs queue wait, per-source cell counts,
//     span nesting depth, and the rejection path from an event slice;
//   * both JSONL readback parsers ignore unknown fields (additive
//     schema-v1 evolution) and reject foreign records;
//   * histogram exemplars render in OpenMetrics syntax, survive the text
//     parser, and merge right-wins;
//   * a parallel engine run partitions its events by the submitting
//     thread's trace — no cell leaks across concurrent requests.

#include "telemetry/flight.hpp"
#include "telemetry/metrics_registry.hpp"
#include "telemetry/sinks.hpp"
#include "telemetry/slowlog.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace_context.hpp"

#include "common/report.hpp"
#include "engine/engine.hpp"
#include "engine/plan.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace cubie {
namespace {

bool is_lower_hex(const std::string& s) {
  return std::all_of(s.begin(), s.end(), [](unsigned char c) {
    return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
  });
}

// Capture every event of `body` through a MemorySink on the global bus.
std::vector<telemetry::Event> capture(const std::function<void()>& body) {
  auto sink = std::make_shared<telemetry::MemorySink>();
  telemetry::bus().reset_clock();
  telemetry::bus().add_sink(sink);
  body();
  std::vector<telemetry::Event> events = sink->events();
  telemetry::bus().remove_sink(sink.get());
  return events;
}

telemetry::Event mk(telemetry::EventKind k, const std::string& name) {
  telemetry::Event e;
  e.kind = k;
  e.name = name;
  return e;
}

// ---------------------------------------------------------------------------
// Trace context.

TEST(FlightTrace, GeneratedIdsAreFixedWidthLowercaseHexAndUnique) {
  std::set<std::string> seen;
  for (int i = 0; i < 64; ++i) {
    const std::string t = telemetry::generate_trace_id();
    const std::string s = telemetry::generate_span_id();
    EXPECT_EQ(t.size(), 32u);
    EXPECT_EQ(s.size(), 16u);
    EXPECT_TRUE(is_lower_hex(t)) << t;
    EXPECT_TRUE(is_lower_hex(s)) << s;
    EXPECT_NE(t, std::string(32, '0'));  // W3C invalid value
    EXPECT_NE(s, std::string(16, '0'));
    seen.insert(t);
  }
  EXPECT_EQ(seen.size(), 64u) << "trace ids must not collide";
  const telemetry::TraceContext ctx = telemetry::make_trace_context();
  EXPECT_TRUE(ctx.active());
  EXPECT_EQ(ctx.trace_id.size(), 32u);
  EXPECT_EQ(ctx.span_id.size(), 16u);
}

TEST(FlightTrace, ValidTraceIdAcceptsPrefixesRejectsGarbage) {
  EXPECT_TRUE(telemetry::valid_trace_id("deadbeef"));
  EXPECT_TRUE(telemetry::valid_trace_id("0123456789abcdef0123456789abcdef"));
  EXPECT_FALSE(telemetry::valid_trace_id(""));
  EXPECT_FALSE(telemetry::valid_trace_id("DEADBEEF"));        // uppercase
  EXPECT_FALSE(telemetry::valid_trace_id("xyz"));             // non-hex
  EXPECT_FALSE(telemetry::valid_trace_id(std::string(33, 'a')));  // too long
  EXPECT_FALSE(telemetry::valid_trace_id("dead beef"));       // space
}

TEST(FlightTrace, ScopeIsRaiiNestsAndRestores) {
  EXPECT_FALSE(telemetry::current_trace_context().active());
  {
    telemetry::TraceScope outer(telemetry::TraceContext{"aa11", "0001"});
    EXPECT_EQ(telemetry::current_trace_context().trace_id, "aa11");
    {
      telemetry::TraceScope inner(telemetry::TraceContext{"bb22", "0002"});
      EXPECT_EQ(telemetry::current_trace_context().trace_id, "bb22");
      EXPECT_EQ(telemetry::current_trace_context().span_id, "0002");
    }
    EXPECT_EQ(telemetry::current_trace_context().trace_id, "aa11");
    EXPECT_EQ(telemetry::current_trace_context().span_id, "0001");
  }
  EXPECT_FALSE(telemetry::current_trace_context().active());
}

TEST(FlightTrace, ScopeIsThreadLocal) {
  telemetry::TraceScope scope(telemetry::TraceContext{"cafe", "0003"});
  std::string other_thread_trace = "unset";
  std::thread t([&] {
    other_thread_trace = telemetry::current_trace_context().trace_id;
  });
  t.join();
  EXPECT_EQ(other_thread_trace, "");  // scopes don't leak across threads
  EXPECT_EQ(telemetry::current_trace_context().trace_id, "cafe");
}

TEST(FlightTrace, BusStampsActiveContextOnlyWhenEmpty) {
  const auto evs = capture([] {
    telemetry::bus().emit(mk(telemetry::EventKind::SpanOpen, "before"));
    {
      telemetry::TraceScope scope(telemetry::TraceContext{"feed1", "beef1"});
      telemetry::bus().emit(mk(telemetry::EventKind::SpanOpen, "inside"));
      telemetry::Event preset = mk(telemetry::EventKind::SpanOpen, "preset");
      preset.trace_id = "0therid";
      preset.span_id = "0therspan";
      telemetry::bus().emit(std::move(preset));
    }
    telemetry::bus().emit(mk(telemetry::EventKind::SpanOpen, "after"));
  });
  ASSERT_EQ(evs.size(), 4u);
  EXPECT_EQ(evs[0].trace_id, "");  // no scope: unstamped
  EXPECT_EQ(evs[1].trace_id, "feed1");
  EXPECT_EQ(evs[1].span_id, "beef1");
  EXPECT_EQ(evs[2].trace_id, "0therid");  // emitter-set id wins
  EXPECT_EQ(evs[2].span_id, "0therspan");
  EXPECT_EQ(evs[3].trace_id, "");
}

TEST(FlightTrace, TraceIdsAreExcludedFromEventPayload) {
  telemetry::Event a = mk(telemetry::EventKind::CellFinish, "cell");
  telemetry::Event b = a;
  b.trace_id = telemetry::generate_trace_id();
  b.span_id = telemetry::generate_span_id();
  EXPECT_EQ(telemetry::event_payload(a), telemetry::event_payload(b))
      << "random correlation ids must not break determinism identities";
}

// ---------------------------------------------------------------------------
// Flight recorder ring.

TEST(FlightRecorder, RingIsBoundedAndKeepsNewestOldestFirst) {
  telemetry::FlightRecorderSink ring(4);
  EXPECT_EQ(ring.capacity(), 4u);
  for (int i = 0; i < 10; ++i) {
    telemetry::Event e = mk(telemetry::EventKind::SpanOpen,
                            "e" + std::to_string(i));
    e.seq = static_cast<std::uint64_t>(i + 1);
    ring.on_event(e);
  }
  EXPECT_EQ(ring.total_seen(), 10u);
  const auto snap = ring.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  for (std::size_t i = 0; i < snap.size(); ++i)
    EXPECT_EQ(snap[i].name, "e" + std::to_string(6 + i));  // e6..e9
}

TEST(FlightRecorder, PartiallyFilledRingSnapshotsInOrder) {
  telemetry::FlightRecorderSink ring(8);
  for (int i = 0; i < 3; ++i)
    ring.on_event(mk(telemetry::EventKind::SpanOpen, "e" + std::to_string(i)));
  const auto snap = ring.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].name, "e0");
  EXPECT_EQ(snap[2].name, "e2");
}

TEST(FlightRecorder, DumpLinesAreByteIdenticalToEventToJson) {
  telemetry::FlightRecorderSink ring(8);
  telemetry::Event e = mk(telemetry::EventKind::CellFinish, "GEMM/n=64");
  e.seq = 7;
  e.t_s = 0.125;
  e.source = "compute";
  e.trace_id = "abcd";
  e.wall_s = 0.5;
  e.ok = 1;
  ring.on_event(e);
  ring.on_event(mk(telemetry::EventKind::SpanOpen, "span"));

  std::ostringstream os;
  EXPECT_EQ(ring.dump(os), 2u);
  std::istringstream is(os.str());
  std::string line;
  ASSERT_TRUE(std::getline(is, line));
  EXPECT_EQ(line, telemetry::event_to_json(e).dump(-1))
      << "flight dump lines must match JsonlSink event lines byte-for-byte";
  ASSERT_TRUE(std::getline(is, line));
  EXPECT_FALSE(std::getline(is, line)) << "exactly one line per event";
}

// ---------------------------------------------------------------------------
// Timeline assembly and readback.

// A synthetic but structurally faithful request slice: queued -> started ->
// two cells (one computed with a nested span pair, one memo) -> finished.
std::vector<telemetry::Event> request_slice(const std::string& trace) {
  std::vector<telemetry::Event> evs;
  std::uint64_t seq = 0;
  auto push = [&](telemetry::Event e) {
    e.seq = ++seq;
    e.trace_id = trace;
    e.span_id = "00000000000000ab";
    e.request_id = "r1";
    evs.push_back(std::move(e));
  };
  telemetry::Event q = mk(telemetry::EventKind::RequestQueued, "GEMM/n=64");
  q.t_s = 1.0;
  q.count = 3;  // queue depth after the push
  push(q);
  telemetry::Event st = mk(telemetry::EventKind::RequestStarted, "GEMM/n=64");
  st.t_s = 1.25;
  push(st);
  push(mk(telemetry::EventKind::CellStart, "cellA"));
  telemetry::Event so = mk(telemetry::EventKind::SpanOpen, "outer");
  push(so);
  push(mk(telemetry::EventKind::SpanOpen, "inner"));
  telemetry::Event sci = mk(telemetry::EventKind::SpanClose, "inner");
  sci.wall_s = 0.01;
  push(sci);
  telemetry::Event sco = mk(telemetry::EventKind::SpanClose, "outer");
  sco.wall_s = 0.02;
  push(sco);
  telemetry::Event ca = mk(telemetry::EventKind::CellFinish, "cellA");
  ca.source = "compute";
  ca.wall_s = 0.04;
  ca.modeled_s = 0.03;
  push(ca);
  push(mk(telemetry::EventKind::CellStart, "cellB"));
  telemetry::Event cb = mk(telemetry::EventKind::CellFinish, "cellB");
  cb.source = "memo";
  cb.wall_s = 0.001;
  push(cb);
  telemetry::Event fin = mk(telemetry::EventKind::RequestFinished, "GEMM/n=64");
  fin.t_s = 1.75;
  fin.wall_s = 0.5;
  fin.ok = 1;
  push(fin);
  return evs;
}

TEST(FlightTimeline, AssemblesQueueWaitCellsAndSpanDepth) {
  auto slice = request_slice("1234567890abcdef1234567890abcdef");
  // Deliver out of order: assembly must re-sort by seq.
  std::reverse(slice.begin(), slice.end());
  const auto t = telemetry::assemble_timeline(slice);
  EXPECT_EQ(t.trace_id, "1234567890abcdef1234567890abcdef");
  EXPECT_EQ(t.request_id, "r1");
  EXPECT_EQ(t.key, "GEMM/n=64");
  EXPECT_EQ(t.ok, 1);
  EXPECT_DOUBLE_EQ(t.wall_s, 0.5);
  EXPECT_NEAR(t.queue_wait_s, 0.25, 1e-12);  // started.t_s - queued.t_s
  EXPECT_EQ(t.queue_depth, 3u);
  EXPECT_EQ(t.cells, 2u);
  EXPECT_EQ(t.cells_compute, 1u);
  EXPECT_EQ(t.cells_memo, 1u);
  EXPECT_EQ(t.cells_disk, 0u);
  EXPECT_EQ(t.cells_coalesced, 0u);
  ASSERT_EQ(t.cell_list.size(), 2u);
  EXPECT_EQ(t.cell_list[0].name, "cellA");
  EXPECT_EQ(t.cell_list[0].source, "compute");
  ASSERT_EQ(t.spans.size(), 2u);
  // Span closes arrive innermost-first; depth reflects nesting.
  std::map<std::string, int> depth;
  for (const auto& s : t.spans) depth[s.name] = s.depth;
  EXPECT_EQ(depth.at("outer"), 0);
  EXPECT_EQ(depth.at("inner"), 1);
  EXPECT_EQ(t.events, slice.size());
}

TEST(FlightTimeline, RejectedRequestYieldsFailedTimelineWithQueueDepth) {
  telemetry::Event rej = mk(telemetry::EventKind::RequestRejected, "key");
  rej.seq = 1;
  rej.trace_id = "ffff";
  rej.request_id = "r2";
  rej.source = "Overloaded";  // typed error code
  rej.count = 16;             // queue depth at rejection (satellite 1)
  rej.ok = 0;
  const auto t = telemetry::assemble_timeline({rej});
  EXPECT_EQ(t.ok, 0);
  EXPECT_EQ(t.error, "Overloaded");
  EXPECT_EQ(t.queue_depth, 16u);
  EXPECT_EQ(t.cells, 0u);
}

TEST(FlightTimeline, JsonRoundTripsAndRejectsForeignRecords) {
  const auto t = telemetry::assemble_timeline(
      request_slice("1234567890abcdef1234567890abcdef"));
  const report::Json j = telemetry::timeline_to_json(t);
  const auto parsed = report::Json::parse(j.dump(-1));
  ASSERT_TRUE(parsed.has_value());
  telemetry::RequestTimeline back;
  ASSERT_TRUE(telemetry::timeline_from_json(*parsed, &back));
  EXPECT_EQ(back.trace_id, t.trace_id);
  EXPECT_EQ(back.cells_compute, t.cells_compute);
  EXPECT_EQ(back.cell_list.size(), t.cell_list.size());
  EXPECT_EQ(back.spans.size(), t.spans.size());
  EXPECT_DOUBLE_EQ(back.wall_s, t.wall_s);

  // Not a slowlog record -> rejected, not half-parsed.
  report::Json foreign = report::Json::object();
  foreign["kind"] = report::Json::string("cubie-events");
  EXPECT_FALSE(telemetry::timeline_from_json(foreign, &back));
  EXPECT_FALSE(telemetry::timeline_from_json(report::Json::number(3), &back));
}

TEST(FlightForwardCompat, ParsersIgnoreUnknownFields) {
  // Event readback: inject an unknown field, keep parsing.
  telemetry::Event e = mk(telemetry::EventKind::CellFinish, "cell");
  e.seq = 9;
  e.source = "disk";
  e.trace_id = "abcd";
  report::Json j = telemetry::event_to_json(e);
  j["some_future_field"] = report::Json::string("ignored");
  j["another"] = report::Json::number(42);
  telemetry::Event back;
  ASSERT_TRUE(telemetry::event_from_json(j, &back));
  EXPECT_EQ(back.kind, telemetry::EventKind::CellFinish);
  EXPECT_EQ(back.seq, 9u);
  EXPECT_EQ(back.source, "disk");
  EXPECT_EQ(back.trace_id, "abcd");

  // Unknown kind -> false (a reader can't misfile what it can't name).
  report::Json unk = telemetry::event_to_json(e);
  unk["kind"] = report::Json::string("teleport_start");
  EXPECT_FALSE(telemetry::event_from_json(unk, &back));

  // Timeline readback: same additive contract.
  const auto t = telemetry::assemble_timeline(
      request_slice("1234567890abcdef1234567890abcdef"));
  report::Json tj = telemetry::timeline_to_json(t);
  tj["future_aggregate"] = report::Json::number(7);
  telemetry::RequestTimeline tback;
  ASSERT_TRUE(telemetry::timeline_from_json(tj, &tback));
  EXPECT_EQ(tback.cells, t.cells);
}

TEST(FlightTimeline, SliceForTraceMatchesPrefixes) {
  std::vector<telemetry::Event> evs;
  telemetry::Event a = mk(telemetry::EventKind::SpanOpen, "a");
  a.trace_id = "aabbccdd";
  telemetry::Event b = mk(telemetry::EventKind::SpanOpen, "b");
  b.trace_id = "aabb0000";
  telemetry::Event c = mk(telemetry::EventKind::SpanOpen, "c");
  evs.push_back(a);
  evs.push_back(b);
  evs.push_back(c);  // untraced: never matches
  EXPECT_EQ(telemetry::slice_for_trace(evs, "aabb").size(), 2u);
  EXPECT_EQ(telemetry::slice_for_trace(evs, "aabbcc").size(), 1u);
  EXPECT_EQ(telemetry::slice_for_trace(evs, "aabbccdd").size(), 1u);
  EXPECT_TRUE(telemetry::slice_for_trace(evs, "ffff").empty());
}

TEST(FlightSlowlog, SinkCapturesFinishedAndKeepsSlowestFirst) {
  telemetry::SlowlogSink sink("", /*slow_ms=*/0.0, /*keep=*/2);
  auto feed = [&](const std::string& trace, double wall) {
    for (auto e : request_slice(trace)) {
      if (e.kind == telemetry::EventKind::RequestFinished) e.wall_s = wall;
      sink.on_event(e);
    }
  };
  feed("aaaa0000000000000000000000000001", 0.2);
  feed("aaaa0000000000000000000000000002", 0.9);
  feed("aaaa0000000000000000000000000003", 0.5);
  const auto top = sink.top();
  ASSERT_EQ(top.size(), 2u);  // keep=2: the fastest was evicted
  EXPECT_DOUBLE_EQ(top[0].wall_s, 0.9);
  EXPECT_DOUBLE_EQ(top[1].wall_s, 0.5);
  EXPECT_EQ(top[0].trace_id, "aaaa0000000000000000000000000002");
}

// ---------------------------------------------------------------------------
// Exemplars.

TEST(FlightExemplars, RenderParseAndMerge) {
  telemetry::MetricsRegistry reg;
  auto& h = reg.histogram("cubie_request_latency_seconds", "latency",
                          telemetry::latency_bucket_bounds());
  h.observe(0.004, "aaaa1111aaaa1111aaaa1111aaaa1111");
  h.observe(0.250, "bbbb2222bbbb2222bbbb2222bbbb2222");
  h.observe(0.0001);  // no trace: counts, but no exemplar

  const std::string text = telemetry::prometheus_text(reg);
  EXPECT_NE(text.find(" # {trace_id=\"bbbb2222"), std::string::npos)
      << "OpenMetrics exemplar syntax expected in the exposition:\n" << text;

  std::string err;
  const auto exp = telemetry::parse_prometheus_text(text, &err);
  ASSERT_TRUE(exp.has_value()) << err;
  // The parser still reads plain sample values off exemplar'd lines.
  EXPECT_DOUBLE_EQ(exp->sum_over("cubie_request_latency_seconds_count"), 3.0);
  const auto ex = exp->exemplars("cubie_request_latency_seconds");
  ASSERT_EQ(ex.size(), 2u);
  EXPECT_EQ(ex[0].trace_id, "bbbb2222bbbb2222bbbb2222bbbb2222");
  EXPECT_DOUBLE_EQ(ex[0].value, 0.250);  // slowest first
  EXPECT_EQ(ex[1].trace_id, "aaaa1111aaaa1111aaaa1111aaaa1111");

  // Snapshot merge: the right side's exemplar is the fresher trace.
  telemetry::Histogram h2(telemetry::latency_bucket_bounds());
  h2.observe(0.004, "cccc3333cccc3333cccc3333cccc3333");
  auto left = h.snapshot();
  const auto right = h2.snapshot();
  const std::size_t bucket = h.bucket_index(0.004);
  left.merge(right);
  ASSERT_GT(left.exemplars.size(), bucket);
  EXPECT_EQ(left.exemplars[bucket].trace_id,
            "cccc3333cccc3333cccc3333cccc3333");
}

TEST(FlightExemplars, BucketIndexMatchesBounds) {
  telemetry::Histogram h({0.001, 0.01, 0.1});
  EXPECT_EQ(h.bucket_index(0.0005), 0u);
  EXPECT_EQ(h.bucket_index(0.001), 0u);  // le: closed on the right
  EXPECT_EQ(h.bucket_index(0.005), 1u);
  EXPECT_EQ(h.bucket_index(5.0), 3u);  // +Inf overflow bucket
}

// ---------------------------------------------------------------------------
// Parallel trace partition: concurrent requests, each under its own scope,
// keep their events fully separated by trace id (the property `cubie
// explain` depends on when slicing a shared --events file).

TEST(FlightEngine, ParallelRunsPartitionEventsByTrace) {
  const auto plan_a =
      engine::Plan::representative(64).with_workloads({"Scan"});
  const auto plan_b =
      engine::Plan::representative(64).with_workloads({"Reduction"});
  const std::string trace_a = telemetry::generate_trace_id();
  const std::string trace_b = telemetry::generate_trace_id();

  const auto evs = capture([&] {
    auto run = [](const engine::Plan& plan, const std::string& trace) {
      telemetry::TraceScope scope(
          telemetry::TraceContext{trace, telemetry::generate_span_id()});
      engine::EngineOptions opt;
      opt.jobs = 2;  // pool workers must inherit the submitter's context
      engine::ExperimentEngine eng(opt);
      eng.execute(plan);
    };
    std::thread ta(run, plan_a, trace_a);
    std::thread tb(run, plan_b, trace_b);
    ta.join();
    tb.join();
  });

  std::size_t cells_a = 0, cells_b = 0;
  for (const auto& e : evs) {
    ASSERT_TRUE(e.trace_id == trace_a || e.trace_id == trace_b)
        << "orphaned event: " << telemetry::event_payload(e);
    EXPECT_FALSE(e.span_id.empty());
    if (e.kind != telemetry::EventKind::CellFinish) continue;
    if (e.trace_id == trace_a) ++cells_a;
    if (e.trace_id == trace_b) ++cells_b;
  }
  EXPECT_GT(cells_a, 0u);
  EXPECT_GT(cells_b, 0u);
  // The slices reconcile independently: every cell in trace A's slice names
  // a Scan cell, never a Reduction cell, and vice versa.
  for (const auto& e : telemetry::slice_for_trace(evs, trace_a))
    if (e.kind == telemetry::EventKind::CellFinish)
      EXPECT_NE(e.name.find("Scan"), std::string::npos) << e.name;
  for (const auto& e : telemetry::slice_for_trace(evs, trace_b))
    if (e.kind == telemetry::EventKind::CellFinish)
      EXPECT_NE(e.name.find("Reduction"), std::string::npos) << e.name;
}

}  // namespace
}  // namespace cubie
