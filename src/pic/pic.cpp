#include "pic/pic.hpp"

#include "common/rng.hpp"

#include <cmath>

namespace cubie::pic {

void Particles::resize(std::size_t n) {
  x.resize(n);
  y.resize(n);
  z.resize(n);
  vx.resize(n);
  vy.resize(n);
  vz.resize(n);
}

std::array<double, 3> FieldConfig::e_at(double px, double py, double pz) const {
  const double phase = k[0] * px + k[1] * py + k[2] * pz;
  const double s = std::sin(phase);
  return {e0[0] + e1[0] * s, e0[1] + e1[1] * s, e0[2] + e1[2] * s};
}

Particles make_particles(std::size_t n, double box, std::uint32_t seed) {
  common::Lcg rng(seed);
  Particles p;
  p.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    p.x[i] = box * rng.next_unit();
    p.y[i] = box * rng.next_unit();
    p.z[i] = box * rng.next_unit();
    p.vx[i] = rng.next_linpack();
    p.vy[i] = rng.next_linpack();
    p.vz[i] = rng.next_linpack();
  }
  return p;
}

std::array<double, 9> boris_rotation_matrix(const FieldConfig& f) {
  const double h = 0.5 * f.qm * f.dt;
  const double tx = h * f.b[0], ty = h * f.b[1], tz = h * f.b[2];
  const double t2 = tx * tx + ty * ty + tz * tz;
  const double sf = 2.0 / (1.0 + t2);
  const double sx = sf * tx, sy = sf * ty, sz = sf * tz;
  // v' = v + v x t ; v+ = v + v' x s  =>  v+ = R v. Build R by pushing the
  // three basis vectors through the exact rotation steps, which keeps the
  // matrix consistent with boris_push_serial by construction.
  std::array<double, 9> r{};
  auto cross = [](const std::array<double, 3>& a, const std::array<double, 3>& b) {
    return std::array<double, 3>{a[1] * b[2] - a[2] * b[1],
                                 a[2] * b[0] - a[0] * b[2],
                                 a[0] * b[1] - a[1] * b[0]};
  };
  const std::array<double, 3> t{tx, ty, tz};
  const std::array<double, 3> s{sx, sy, sz};
  for (int col = 0; col < 3; ++col) {
    std::array<double, 3> v{0.0, 0.0, 0.0};
    v[static_cast<std::size_t>(col)] = 1.0;
    const auto vp_cross = cross(v, t);
    const std::array<double, 3> vp{v[0] + vp_cross[0], v[1] + vp_cross[1],
                                   v[2] + vp_cross[2]};
    const auto vpl_cross = cross(vp, s);
    const std::array<double, 3> vplus{v[0] + vpl_cross[0], v[1] + vpl_cross[1],
                                      v[2] + vpl_cross[2]};
    for (int row = 0; row < 3; ++row)
      r[static_cast<std::size_t>(row * 3 + col)] = vplus[static_cast<std::size_t>(row)];
  }
  return r;
}

void boris_push_serial(Particles& p, const FieldConfig& f) {
  const double h = 0.5 * f.qm * f.dt;
  const double tx = h * f.b[0], ty = h * f.b[1], tz = h * f.b[2];
  const double t2 = tx * tx + ty * ty + tz * tz;
  const double sf = 2.0 / (1.0 + t2);
  const double sx = sf * tx, sy = sf * ty, sz = sf * tz;
  for (std::size_t i = 0; i < p.size(); ++i) {
    const auto e = f.e_at(p.x[i], p.y[i], p.z[i]);
    // Half electric kick.
    double vmx = p.vx[i] + h * e[0];
    double vmy = p.vy[i] + h * e[1];
    double vmz = p.vz[i] + h * e[2];
    // v' = v- + v- x t.
    const double vpx = vmx + (vmy * tz - vmz * ty);
    const double vpy = vmy + (vmz * tx - vmx * tz);
    const double vpz = vmz + (vmx * ty - vmy * tx);
    // v+ = v- + v' x s.
    const double vplx = vmx + (vpy * sz - vpz * sy);
    const double vply = vmy + (vpz * sx - vpx * sz);
    const double vplz = vmz + (vpx * sy - vpy * sx);
    // Second half electric kick.
    p.vx[i] = vplx + h * e[0];
    p.vy[i] = vply + h * e[1];
    p.vz[i] = vplz + h * e[2];
    // Drift.
    p.x[i] += f.dt * p.vx[i];
    p.y[i] += f.dt * p.vy[i];
    p.z[i] += f.dt * p.vz[i];
  }
}

double kinetic_energy(const Particles& p) {
  double e = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    e += 0.5 * (p.vx[i] * p.vx[i] + p.vy[i] * p.vy[i] + p.vz[i] * p.vz[i]);
  }
  return e;
}

}  // namespace cubie::pic
