// MMU-suitability assessor: quadrant classification and speedup-estimate
// sanity across the trait space.

#include "analysis/suitability.hpp"
#include "sim/device.hpp"

#include <gtest/gtest.h>

namespace cubie {
namespace {

using analysis::AlgorithmTraits;
using analysis::UtilizationQuadrant;

AlgorithmTraits gemm_like() {
  AlgorithmTraits t;
  t.arithmetic_intensity = 30.0;
  t.input_block_density = 1.0;
  t.output_utilization = 1.0;
  t.operand_reuse = 32.0;
  t.baseline_mem_regularity = 0.78;
  return t;
}

TEST(Suitability, QuadrantClassification) {
  AlgorithmTraits t = gemm_like();
  EXPECT_EQ(analysis::assess_mmu_suitability(t, sim::h200()).quadrant,
            UtilizationQuadrant::I);

  t.constant_operands = 1.0;  // Scan-like
  EXPECT_EQ(analysis::assess_mmu_suitability(t, sim::h200()).quadrant,
            UtilizationQuadrant::II);

  t.output_utilization = 0.1;  // Reduction-like
  EXPECT_EQ(analysis::assess_mmu_suitability(t, sim::h200()).quadrant,
            UtilizationQuadrant::III);

  t.constant_operands = 0.0;  // SpMV-like
  EXPECT_EQ(analysis::assess_mmu_suitability(t, sim::h200()).quadrant,
            UtilizationQuadrant::IV);
}

TEST(Suitability, DenseComputeBoundRecommendsMmu) {
  const auto a = analysis::assess_mmu_suitability(gemm_like(), sim::h200());
  EXPECT_TRUE(a.recommend_mmu);
  EXPECT_GT(a.estimated_speedup, 1.5);
  EXPECT_FALSE(a.rationale.empty());
}

TEST(Suitability, SparseBlockDensityDegradesEstimate) {
  AlgorithmTraits dense = gemm_like();
  AlgorithmTraits ragged = dense;
  ragged.input_block_density = 0.2;
  const auto ed = analysis::assess_mmu_suitability(dense, sim::h200());
  const auto er = analysis::assess_mmu_suitability(ragged, sim::h200());
  EXPECT_LT(er.estimated_speedup, ed.estimated_speedup);
}

TEST(Suitability, B200NarrowsComputeBoundWins) {
  // With a 1:1 FP64 TC:CC ratio, the compute-bound estimate collapses.
  const auto h = analysis::assess_mmu_suitability(gemm_like(), sim::h200());
  const auto b = analysis::assess_mmu_suitability(gemm_like(), sim::b200());
  EXPECT_GT(h.estimated_speedup, b.estimated_speedup);
  EXPECT_NEAR(b.estimated_speedup, 1.0, 0.2);
}

TEST(Suitability, IrregularMemoryBoundBenefitsFromLayout) {
  AlgorithmTraits spmv;
  spmv.arithmetic_intensity = 0.15;
  spmv.input_block_density = 0.9;
  spmv.output_utilization = 0.125;
  spmv.baseline_mem_regularity = 0.45;
  const auto a = analysis::assess_mmu_suitability(spmv, sim::h200());
  EXPECT_EQ(a.quadrant, UtilizationQuadrant::IV);
  EXPECT_TRUE(a.recommend_mmu);
}

TEST(Suitability, StreamingMemoryBoundBarelyBenefits) {
  AlgorithmTraits gemv;
  gemv.arithmetic_intensity = 0.12;
  gemv.input_block_density = 1.0;
  gemv.output_utilization = 0.125;
  gemv.baseline_mem_regularity = 0.85;  // cuBLAS streams well already
  const auto a = analysis::assess_mmu_suitability(gemv, sim::h200());
  EXPECT_LT(a.estimated_speedup, 1.5);
}

TEST(Suitability, BitwiseUsesScatterComparison) {
  AlgorithmTraits bfs;
  bfs.bitwise = true;
  bfs.output_utilization = 0.125;
  bfs.baseline_mem_regularity = 0.3;
  const auto a = analysis::assess_mmu_suitability(bfs, sim::h200());
  EXPECT_TRUE(a.recommend_mmu);
  EXPECT_NE(a.rationale.find("bitwise"), std::string::npos);
}

TEST(Suitability, LabelsAreStable) {
  EXPECT_EQ(analysis::quadrant_label(UtilizationQuadrant::I),
            "I (full in / full out)");
  EXPECT_EQ(analysis::quadrant_label(UtilizationQuadrant::IV),
            "IV (full in / partial out)");
}

}  // namespace
}  // namespace cubie
