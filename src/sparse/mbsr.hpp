#pragma once
// mBSR: the modified block-sparse-row format used by AmgT's SpGEMM (paper
// Section 3). The matrix is tiled into dense 4x4 blocks; nonempty blocks are
// stored in a block-CSR structure. Pairs of vertically adjacent 4x4 blocks
// are combined into the 8x4 operands of the FP64 m8n8k4 MMA.

#include "sparse/csr.hpp"

#include <vector>

namespace cubie::sparse {

inline constexpr int kBlock = 4;  // mBSR block dimension

struct Mbsr {
  int rows = 0, cols = 0;          // scalar dimensions
  int block_rows = 0, block_cols = 0;
  std::vector<int> row_ptr;        // block-row pointers (block_rows + 1)
  std::vector<int> col_idx;        // block-column indices
  std::vector<double> vals;        // 16 values per block, row-major in-block

  std::size_t blocks() const { return col_idx.size(); }
  double fill_ratio() const;       // nnz / (blocks * 16)
  std::size_t nnz_stored() const;  // count of explicit nonzeros inside blocks
};

// Tile a CSR matrix into mBSR (zero-filling partial blocks).
Mbsr mbsr_from_csr(const Csr& a);

// Expand back to CSR, dropping the explicit zeros introduced by tiling.
Csr csr_from_mbsr(const Mbsr& a);

}  // namespace cubie::sparse
