file(REMOVE_RECURSE
  "CMakeFiles/fig10_pca_inputs.dir/fig10_pca_inputs.cpp.o"
  "CMakeFiles/fig10_pca_inputs.dir/fig10_pca_inputs.cpp.o.d"
  "fig10_pca_inputs"
  "fig10_pca_inputs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_pca_inputs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
