#include "engine/cache.hpp"

#include "common/report.hpp"
#include "telemetry/telemetry.hpp"

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <limits>
#include <fstream>
#include <sstream>

namespace cubie::engine {
namespace {

std::string fnv1a_hex(const std::string& s) {
  std::uint64_t h = 14695981039346656037ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

// --- Lossless non-finite encoding -----------------------------------------
// JSON numbers cannot carry NaN/Inf; common/report prints them as null,
// which would reload as 0.0 and break the cache's bit-identity contract.
// Cell files therefore encode non-finite doubles as string sentinels that
// preserve the exact bit pattern (including NaN payloads).

constexpr std::uint64_t kCanonicalNan = 0x7ff8000000000000ull;

std::uint64_t bits_of(double v) {
  std::uint64_t b;
  std::memcpy(&b, &v, sizeof(b));
  return b;
}

double double_of(std::uint64_t b) {
  double v;
  std::memcpy(&v, &b, sizeof(v));
  return v;
}

std::string encode_nonfinite(double v) {
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  const std::uint64_t b = bits_of(v);
  if (b == kCanonicalNan) return "nan";
  char buf[24];
  std::snprintf(buf, sizeof(buf), "nan:%016llx",
                static_cast<unsigned long long>(b));
  return buf;
}

bool decode_nonfinite(const std::string& s, double* out) {
  if (s == "inf") {
    *out = std::numeric_limits<double>::infinity();
    return true;
  }
  if (s == "-inf") {
    *out = -std::numeric_limits<double>::infinity();
    return true;
  }
  if (s == "nan") {
    *out = double_of(kCanonicalNan);
    return true;
  }
  if (s.rfind("nan:", 0) == 0 && s.size() == 20) {
    std::uint64_t b = 0;
    for (char c : s.substr(4)) {
      b <<= 4;
      if (c >= '0' && c <= '9') b |= static_cast<std::uint64_t>(c - '0');
      else if (c >= 'a' && c <= 'f') b |= static_cast<std::uint64_t>(c - 'a' + 10);
      else return false;
    }
    *out = double_of(b);
    return true;
  }
  return false;
}

// Recursively copy a Json tree, replacing non-finite numbers with their
// sentinel strings (encode) or sentinel strings with numbers (decode).
report::Json encode_tree(const report::Json& j) {
  using report::Json;
  switch (j.type()) {
    case Json::Type::Number:
      if (!std::isfinite(j.as_number()))
        return Json::string(encode_nonfinite(j.as_number()));
      return Json::number(j.as_number());
    case Json::Type::Array: {
      Json out = Json::array();
      for (std::size_t i = 0; i < j.size(); ++i)
        out.push_back(encode_tree(j.at(i)));
      return out;
    }
    case Json::Type::Object: {
      Json out = Json::object();
      for (const auto& [k, v] : j.members()) out[k] = encode_tree(v);
      return out;
    }
    default: return j;
  }
}

// Decode applies only inside the "profile" / "values" subtrees (the cell
// envelope's own strings — kind, key — must stay untouched).
report::Json decode_tree(const report::Json& j) {
  using report::Json;
  switch (j.type()) {
    case Json::Type::String: {
      double v = 0.0;
      if (decode_nonfinite(j.as_string(), &v)) return Json::number(v);
      return j;
    }
    case Json::Type::Array: {
      Json out = Json::array();
      for (std::size_t i = 0; i < j.size(); ++i)
        out.push_back(decode_tree(j.at(i)));
      return out;
    }
    case Json::Type::Object: {
      Json out = Json::object();
      for (const auto& [k, v] : j.members()) out[k] = decode_tree(v);
      return out;
    }
    default: return j;
  }
}

CacheLoad load_failure(CacheStatus status, std::string detail) {
  CacheLoad r;
  r.status = status;
  r.detail = std::move(detail);
  return r;
}

}  // namespace

const char* cache_status_name(CacheStatus s) {
  switch (s) {
    case CacheStatus::Hit: return "hit";
    case CacheStatus::Stored: return "stored";
    case CacheStatus::Disabled: return "disabled";
    case CacheStatus::Miss: return "miss";
    case CacheStatus::IoError: return "io-error";
    case CacheStatus::ParseError: return "parse-error";
    case CacheStatus::KindMismatch: return "kind-mismatch";
    case CacheStatus::KeyMismatch: return "key-mismatch";
    case CacheStatus::BadValue: return "bad-value";
    case CacheStatus::StaleVersion: return "stale-version";
  }
  return "unknown";
}

DiskCache::DiskCache(std::string dir) : dir_(std::move(dir)) {
  if (!dir_.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);  // best effort
  }
}

std::string DiskCache::path_for(const std::string& key) const {
  return dir_ + "/cell-" + fnv1a_hex(key) + ".json";
}

namespace {

// Every non-disabled cache outcome becomes one telemetry event carrying
// the typed CacheStatus name, so damaged files and failed stores show up
// on the timeline, not only in the aggregate disk_errors counter.
void emit_cache_event(telemetry::EventKind kind, const std::string& key,
                      CacheStatus status, bool ok) {
  if (status == CacheStatus::Disabled) return;
  auto& bus = telemetry::bus();
  if (!bus.enabled()) return;
  telemetry::Event e;
  e.kind = kind;
  e.name = key;
  e.status = cache_status_name(status);
  e.ok = ok ? 1 : 0;
  bus.emit(std::move(e));
}

CacheLoad do_load(const DiskCache& cache, const std::string& key) {
  if (!cache.enabled()) return load_failure(CacheStatus::Disabled, "");
  const std::string path = cache.path_for(key);
  std::error_code ec;
  if (!std::filesystem::exists(path, ec))
    return load_failure(CacheStatus::Miss, "");
  std::ifstream in(path);
  if (!in) return load_failure(CacheStatus::IoError, "cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  if (in.bad())
    return load_failure(CacheStatus::IoError, "cannot read " + path);
  std::string perr;
  const auto j = report::Json::parse(ss.str(), &perr);
  if (!j || !j->is_object())
    return load_failure(CacheStatus::ParseError,
                        path + ": " + (perr.empty() ? "not an object" : perr));
  const report::Json* kind = j->find("kind");
  if (!kind || !kind->is_string() || kind->as_string() != "cubie-cell")
    return load_failure(CacheStatus::KindMismatch,
                        path + ": not a cubie-cell document");
  const report::Json* ver = j->find("schema_version");
  const double got_ver = ver && ver->is_number() ? ver->as_number() : 0.0;
  if (got_ver != static_cast<double>(kCellSchemaVersion))
    return load_failure(
        CacheStatus::StaleVersion,
        path + ": schema_version " +
            std::to_string(static_cast<int>(got_ver)) + " != " +
            std::to_string(kCellSchemaVersion));
  const report::Json* stored = j->find("key");
  if (!stored || !stored->is_string() || stored->as_string() != key)
    return load_failure(
        CacheStatus::KeyMismatch,
        path + ": stored key '" +
            (stored && stored->is_string() ? stored->as_string() : "") +
            "' != requested key");
  core::RunOutput out;
  if (const report::Json* p = j->find("profile"); p && p->is_object()) {
    out.profile = report::profile_from_json(decode_tree(*p));
  } else {
    return load_failure(CacheStatus::BadValue, path + ": missing profile");
  }
  if (const report::Json* vals = j->find("values"); vals && vals->is_array()) {
    out.values.reserve(vals->size());
    for (std::size_t i = 0; i < vals->size(); ++i) {
      const report::Json v = decode_tree(vals->at(i));
      if (!v.is_number())
        return load_failure(CacheStatus::BadValue,
                            path + ": undecodable values[" +
                                std::to_string(i) + "]");
      out.values.push_back(v.as_number());
    }
  }
  CacheLoad r;
  r.status = CacheStatus::Hit;
  r.output = std::move(out);
  return r;
}

CacheStore do_store(const DiskCache& cache, const std::string& key,
                    const core::RunOutput& out) {
  if (!cache.enabled()) return {CacheStatus::Disabled, ""};
  report::Json j = report::Json::object();
  j["schema_version"] = report::Json::number(kCellSchemaVersion);
  j["kind"] = report::Json::string("cubie-cell");
  j["key"] = report::Json::string(key);
  j["profile"] = encode_tree(report::to_json(out.profile));
  report::Json vals = report::Json::array();
  for (double v : out.values) {
    if (std::isfinite(v)) {
      vals.push_back(report::Json::number(v));
    } else {
      vals.push_back(report::Json::string(encode_nonfinite(v)));
    }
  }
  j["values"] = std::move(vals);

  const std::string path = cache.path_for(key);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp);
    if (!os) return {CacheStatus::IoError, "cannot open " + tmp};
    os << j.dump(-1) << '\n';
    if (!os) return {CacheStatus::IoError, "cannot write " + tmp};
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec)
    return {CacheStatus::IoError,
            "cannot rename " + tmp + ": " + ec.message()};
  return {CacheStatus::Stored, ""};
}

}  // namespace

CacheLoad DiskCache::load(const std::string& key) const {
  CacheLoad r = do_load(*this, key);
  emit_cache_event(telemetry::EventKind::CacheLoad, key, r.status, r.hit());
  return r;
}

CacheStore DiskCache::store(const std::string& key,
                            const core::RunOutput& out) const {
  CacheStore r = do_store(*this, key, out);
  emit_cache_event(telemetry::EventKind::CacheStore, key, r.status, r.ok());
  return r;
}

bool DiskCache::inject_fault(const std::string& key, Fault f) const {
  if (!enabled()) return false;
  const std::string path = path_for(key);
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) return false;

  if (f == Fault::Truncate) {
    const auto size = std::filesystem::file_size(path, ec);
    if (ec) return false;
    std::filesystem::resize_file(path, size / 2, ec);
    return !ec;
  }

  std::string text;
  switch (f) {
    case Fault::CorruptJson:
      text = "{\"kind\": \"cubie-cell\", !!corrupt!!";
      break;
    case Fault::WrongKind:
      text = "{\"schema_version\": 2, \"kind\": \"not-a-cell\", \"key\": \"" +
             report::json_escape(key) + "\"}";
      break;
    case Fault::WrongKey:
      text = "{\"schema_version\": 2, \"kind\": \"cubie-cell\", "
             "\"key\": \"some-other-cell-key\", \"profile\": {}, "
             "\"values\": []}";
      break;
    case Fault::StaleVersion:
      text = "{\"schema_version\": 1, \"kind\": \"cubie-cell\", \"key\": \"" +
             report::json_escape(key) +
             "\", \"profile\": {}, \"values\": []}";
      break;
    case Fault::BadValue:
      text = "{\"schema_version\": 2, \"kind\": \"cubie-cell\", \"key\": \"" +
             report::json_escape(key) +
             "\", \"profile\": {}, \"values\": [\"not-a-number\"]}";
      break;
    case Fault::Truncate: return false;  // handled above
  }
  std::ofstream os(path, std::ios::trunc);
  if (!os) return false;
  os << text << '\n';
  return static_cast<bool>(os);
}

}  // namespace cubie::engine
