// Ablation: FP64 DMMA vs FP16 HMMA (FP32 accumulate) on GEMM - the
// quantitative side of the paper's Figure 12 discussion. If FP64 MMU peaks
// keep regressing while FP16 booms, what does moving a scientific GEMM to
// FP16 storage actually cost in accuracy, and what does it buy in modeled
// time on each generation?

#include "bench_util.hpp"
#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "mma/half.hpp"
#include "mma/mma.hpp"
#include "sim/calibration.hpp"
#include "sim/device.hpp"
#include "sparse/csr.hpp"

#include <iostream>
#include <vector>

int main(int argc, char** argv) {
  using namespace cubie;
  auto bench = benchutil::bench_init(
      argc, argv, "ablation_precision",
      "Ablation: FP64 tensor-core GEMM vs FP16 (FP32-acc) GEMM");
  std::cout << "=== Ablation: FP64 tensor-core GEMM vs FP16 (FP32-acc) "
               "GEMM ===\n\n";

  common::Table acc({"n", "fp64 avg err", "fp64 max err", "fp16 avg err",
                     "fp16 max err", "fp16/fp64 err ratio"});
  for (int n : {64, 128, 256}) {
    const auto a = common::random_vector(static_cast<std::size_t>(n) * n, 311);
    const auto b = common::random_vector(static_cast<std::size_t>(n) * n, 313);
    std::vector<double> ref(static_cast<std::size_t>(n) * n, 0.0);
    sparse::gemm_serial(n, n, n, a, b, ref);

    // FP64 path: chained m8n8k4 DMMAs.
    sim::KernelProfile p64;
    mma::Context ctx(mma::Pipe::TensorCore, p64);
    std::vector<double> c64(static_cast<std::size_t>(n) * n, 0.0);
    double a_frag[32], b_frag[32];
    for (int i0 = 0; i0 < n; i0 += 8) {
      for (int j0 = 0; j0 < n; j0 += 8) {
        double accum[64] = {};
        for (int k0 = 0; k0 < n; k0 += 4) {
          for (int i = 0; i < 8; ++i)
            for (int kk = 0; kk < 4; ++kk)
              a_frag[i * 4 + kk] = a[static_cast<std::size_t>(i0 + i) * n + k0 + kk];
          for (int kk = 0; kk < 4; ++kk)
            for (int j = 0; j < 8; ++j)
              b_frag[kk * 8 + j] = b[static_cast<std::size_t>(k0 + kk) * n + j0 + j];
          ctx.dmma_m8n8k4_acc(a_frag, b_frag, accum);
        }
        for (int i = 0; i < 8; ++i)
          for (int j = 0; j < 8; ++j)
            c64[static_cast<std::size_t>(i0 + i) * n + j0 + j] = accum[i * 8 + j];
      }
    }

    // FP16 path: HMMA tiles.
    std::vector<double> c16(static_cast<std::size_t>(n) * n, 0.0);
    mma::gemm_fp16_tc(n, n, n, a.data(), b.data(), c16.data(), nullptr);

    const auto e64 = common::error_stats(c64, ref);
    const auto e16 = common::error_stats(c16, ref);
    acc.add_row({std::to_string(n), common::fmt_sci(e64.avg),
                 common::fmt_sci(e64.max), common::fmt_sci(e16.avg),
                 common::fmt_sci(e16.max),
                 common::fmt_sci(e16.avg / std::max(e64.avg, 1e-300))});
    auto& rec = bench.record("GEMM", "", "", "n=" + std::to_string(n));
    rec.set("fp64_avg_err", e64.avg);
    rec.set("fp16_avg_err", e16.avg);
    rec.set("err_ratio", e16.avg / std::max(e64.avg, 1e-300));
  }
  acc.print(std::cout);
  bench.capture("precision_error", acc);

  // Modeled time ratio per generation for a 4K^3 GEMM at the respective
  // peaks (Figure 12 numbers).
  std::cout << "\nModeled 4096^3 GEMM time (ms) at MMU peaks ("
            << common::fmt_double(sim::cal::kTcGemmEff, 2)
            << " pipe efficiency):\n";
  common::Table perf({"GPU", "FP64 TC", "FP16 TC", "FP16 speedup"});
  const double flops = 2.0 * 4096.0 * 4096.0 * 4096.0;
  for (auto g : sim::all_gpus()) {
    const auto& d = sim::spec_for(g);
    const double t64 = flops / (d.fp64_tc_peak * sim::cal::kTcGemmEff) * 1e3;
    const double t16 = flops / (d.fp16_tc_peak * sim::cal::kTcGemmEff) * 1e3;
    perf.add_row({d.name, common::fmt_double(t64, 2),
                  common::fmt_double(t16, 2),
                  common::fmt_double(t64 / t16, 1) + "x"});
    auto& rec = bench.record("GEMM", "", d.name, "4096^3 peak");
    rec.set("fp64_tc_ms", t64);
    rec.set("fp16_tc_ms", t16);
    rec.set("fp16_speedup", t64 / t16);
  }
  perf.print(std::cout);
  bench.capture("precision_peak_time", perf);
  std::cout <<
      "\nReading: FP16 storage costs ~12 orders of magnitude in GEMM error -\n"
      "unusable for FP64-grade science without iterative refinement - while\n"
      "the FP16 MMU advantage grows from 16x (A100) to 45x (B200). This is\n"
      "the divergence the paper's conclusion warns about.\n";
  return bench.finish();
}
