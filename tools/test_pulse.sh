#!/usr/bin/env bash
# Cubie-Pulse batch-mode smoke, run from ctest:
#   test_pulse.sh <cubie-binary>
# Proves the --metrics-out / hw-block contract for non-daemon runs:
#   * `cubie run --metrics-out` writes a parseable Prometheus text snapshot
#     whose cell counters reconcile with the plan that produced it;
#   * the report gains an `hw` block with a typed availability state (on
#     unprivileged runners: available=false plus a non-empty reason);
#   * without --metrics-out the report carries NO hw block, so served and
#     direct runs stay byte-identical;
#   * the whole report (hw block included) is deterministic: a second
#     identical run reproduces it byte-for-byte;
#   * --progress auto-suppresses on a non-TTY stderr, and --progress=force
#     overrides the suppression.
set -eu

CUBIE="$1"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

# One plan, run twice with a metrics snapshot, once without.
run_flags="run GEMV --variant all --case rep --gpu H200 --scale 16"
"$CUBIE" $run_flags --json "$WORK/a.json" \
         --metrics-out "$WORK/a.prom" > /dev/null 2>&1
"$CUBIE" $run_flags --json "$WORK/b.json" \
         --metrics-out "$WORK/b.prom" > /dev/null 2>&1
"$CUBIE" $run_flags --json "$WORK/plain.json" > /dev/null 2>&1

# The hw block (typed unavailable fallback included) must not perturb
# determinism: identical plans yield byte-identical reports.
cmp "$WORK/a.json" "$WORK/b.json"

python3 - "$WORK/a.json" "$WORK/plain.json" "$WORK/a.prom" <<'EOF'
import json, sys
rep = json.load(open(sys.argv[1]))
plain = json.load(open(sys.argv[2]))

# The hw block is opt-in: only --metrics-out runs carry it, keeping the
# daemon's byte-identity contract for plain --json runs intact.
assert "hw" in rep, sorted(rep)
assert "hw" not in plain, sorted(plain)
hw = rep["hw"]
assert isinstance(hw["available"], bool), hw
if hw["available"]:
    assert hw["cells"] >= 1 and hw["task_clock_ms"] > 0, hw
else:
    assert hw["reason"], hw

# The snapshot is one metric per line, `name{labels} value`, with every
# family announced by # HELP / # TYPE and counters reconciling with the
# plan: each unique (variant) cell computed exactly once, one wall
# observation per finish, one plan executed.
series, helped, typed = {}, set(), set()
for line in open(sys.argv[3]):
    line = line.rstrip("\n")
    if not line:
        continue
    if line.startswith("# HELP "):
        helped.add(line.split(" ")[2])
        continue
    if line.startswith("# TYPE "):
        typed.add(line.split(" ")[2])
        continue
    # Strip a trailing OpenMetrics exemplar (Cubie-Flight) before the split.
    name, value = line.split(" # ")[0].rsplit(" ", 1)
    series[name] = float(value)
assert helped == typed and helped, (helped, typed)
for name in series:
    fam = name.split("{")[0]
    for suffix in ("_bucket", "_sum", "_count"):
        if fam.endswith(suffix) and fam[: -len(suffix)] in typed:
            fam = fam[: -len(suffix)]
    assert fam in typed, (fam, sorted(typed))

cells = int(len(rep["records"]))
compute = series['cubie_cells_finished_total{source="compute"}']
assert compute == cells, (compute, cells)
wall = series["cubie_cell_wall_seconds_count"]
assert wall >= compute, (wall, compute)
# `run --json` executes the shared run_report plan, then the table path
# re-warms through a second plan: two PlanStarts, repeats all memo hits.
assert series["cubie_plans_total"] == 2, series["cubie_plans_total"]
assert series['cubie_cells_finished_total{source="memo"}'] >= compute
print("pulse snapshot ok: %d series, %d cells, hw available=%s"
      % (len(series), cells, hw["available"]))
EOF

# --progress repaints with '\r'; on a redirected (non-TTY) stderr it must
# stay silent unless forced.
"$CUBIE" $run_flags --progress > /dev/null 2> "$WORK/quiet.err"
if grep -q "$(printf '\r')" "$WORK/quiet.err"; then
  echo "FAIL: --progress repainted on a non-TTY stderr" >&2
  exit 1
fi
"$CUBIE" $run_flags --progress=force > /dev/null 2> "$WORK/forced.err"
grep -q "$(printf '\r')" "$WORK/forced.err"
grep -q "cells" "$WORK/forced.err"

echo "pulse batch test OK"
