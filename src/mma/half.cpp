#include "mma/half.hpp"

#include "mma/simd.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <vector>

namespace cubie::mma {

namespace {

// Convert via float: double -> float (one rounding) -> binary16 (second
// rounding). Double rounding is benign here because float has more than
// 2*11+2 mantissa bits.
std::uint16_t float_to_half_bits(float f) {
  const std::uint32_t x = std::bit_cast<std::uint32_t>(f);
  const std::uint32_t sign = (x >> 16) & 0x8000u;
  const std::int32_t exp = static_cast<std::int32_t>((x >> 23) & 0xFF) - 127 + 15;
  std::uint32_t mant = x & 0x7FFFFFu;

  if (((x >> 23) & 0xFF) == 0xFF) {  // inf / nan
    return static_cast<std::uint16_t>(sign | 0x7C00u | (mant ? 0x200u : 0u));
  }
  if (exp >= 0x1F) {  // overflow -> inf
    return static_cast<std::uint16_t>(sign | 0x7C00u);
  }
  if (exp <= 0) {  // subnormal or zero
    if (exp < -10) return static_cast<std::uint16_t>(sign);  // underflow
    mant |= 0x800000u;  // implicit bit
    const int shift = 14 - exp;  // 24-bit mantissa -> 10-bit with exp offset
    const std::uint32_t half_mant = mant >> shift;
    // Round to nearest even.
    const std::uint32_t rem = mant & ((1u << shift) - 1);
    const std::uint32_t halfway = 1u << (shift - 1);
    std::uint32_t rounded = half_mant;
    if (rem > halfway || (rem == halfway && (half_mant & 1u))) rounded += 1;
    return static_cast<std::uint16_t>(sign | rounded);
  }
  // Normal range: round the 23-bit mantissa to 10 bits, nearest even.
  std::uint32_t half_mant = mant >> 13;
  const std::uint32_t rem = mant & 0x1FFFu;
  if (rem > 0x1000u || (rem == 0x1000u && (half_mant & 1u))) {
    half_mant += 1;
    if (half_mant == 0x400u) {  // mantissa overflow -> bump exponent
      half_mant = 0;
      if (exp + 1 >= 0x1F) return static_cast<std::uint16_t>(sign | 0x7C00u);
      return static_cast<std::uint16_t>(sign | (static_cast<std::uint32_t>(exp + 1) << 10));
    }
  }
  return static_cast<std::uint16_t>(sign | (static_cast<std::uint32_t>(exp) << 10) | half_mant);
}

float half_bits_to_float(std::uint16_t h) {
  const std::uint32_t sign = (static_cast<std::uint32_t>(h) & 0x8000u) << 16;
  const std::uint32_t exp = (h >> 10) & 0x1Fu;
  std::uint32_t mant = h & 0x3FFu;
  std::uint32_t out;
  if (exp == 0) {
    if (mant == 0) {
      out = sign;  // zero
    } else {
      // Subnormal: normalize.
      int e = -1;
      std::uint32_t m = mant;
      do {
        ++e;
        m <<= 1;
      } while ((m & 0x400u) == 0);
      out = sign | (static_cast<std::uint32_t>(127 - 15 - e) << 23) |
            ((m & 0x3FFu) << 13);
    }
  } else if (exp == 0x1F) {
    out = sign | 0x7F800000u | (mant << 13);  // inf / nan
  } else {
    out = sign | ((exp - 15 + 127) << 23) | (mant << 13);
  }
  return std::bit_cast<float>(out);
}

}  // namespace

Half Half::from_double(double v) {
  Half h;
  h.bits = float_to_half_bits(static_cast<float>(v));
  return h;
}

double Half::to_double() const {
  return static_cast<double>(half_bits_to_float(bits));
}

Half Half::infinity(bool negative) {
  Half h;
  h.bits = negative ? 0xFC00u : 0x7C00u;
  return h;
}

bool Half::is_nan() const {
  return ((bits >> 10) & 0x1Fu) == 0x1Fu && (bits & 0x3FFu) != 0;
}

bool Half::is_inf() const {
  return ((bits >> 10) & 0x1Fu) == 0x1Fu && (bits & 0x3FFu) == 0;
}

Half to_half(double v) { return Half::from_double(v); }
double from_half(Half h) { return h.to_double(); }

double round_to_half(double v) { return Half::from_double(v).to_double(); }

void hmma_m16n16k16_f32acc(const double* a, const double* b, const double* c,
                           double* d, sim::KernelProfile* prof) {
  if (prof != nullptr) {
    // 16x16x16 FMAs on the FP16 tensor pipe. We reuse tc_flops with a note:
    // the ablation bench prices FP16 against fp16_tc_peak explicitly.
    prof->tc_flops += 2.0 * 16 * 16 * 16;
    prof->warp_instructions += 1.0;
  }
  // Round the operands to half once per element (a pure per-element
  // function, so hoisting it out of the (i,j,k) loop is value-preserving),
  // then run the FP32 accumulator chains over the rounded values. The
  // kernel vectorizes across the 256 independent (i,j) accumulators; each
  // chain keeps its serial k order.
  float a_h[16 * 16], b_h[16 * 16], acc[16 * 16];
  for (int i = 0; i < 16 * 16; ++i) {
    a_h[i] = half_bits_to_float(float_to_half_bits(static_cast<float>(a[i])));
    b_h[i] = half_bits_to_float(float_to_half_bits(static_cast<float>(b[i])));
    acc[i] = static_cast<float>(c[i]);
  }
  simd::kernels().hmma_f32acc_tile(a_h, b_h, acc);
  for (int i = 0; i < 16 * 16; ++i) d[i] = static_cast<double>(acc[i]);
}

void gemm_fp16_tc(int m, int n, int k, const double* a, const double* b,
                  double* c, sim::KernelProfile* prof) {
  std::vector<double> a_tile(256), b_tile(256), acc(256);
  for (int i0 = 0; i0 < m; i0 += 16) {
    const int mi = std::min(16, m - i0);
    for (int j0 = 0; j0 < n; j0 += 16) {
      const int nj = std::min(16, n - j0);
      for (auto& v : acc) v = 0.0;
      for (int k0 = 0; k0 < k; k0 += 16) {
        const int kw = std::min(16, k - k0);
        // Edge tiles are zero-padded, as a real WMMA kernel pads its staging
        // buffers: the ragged region contributes fmaf(0, 0, acc) no-ops, so
        // in-range results equal the full-tile computation and no operand is
        // read out of bounds (ASan-covered 17^3 test in tests/test_half.cpp).
        if (mi < 16 || nj < 16 || kw < 16) {
          std::fill(a_tile.begin(), a_tile.end(), 0.0);
          std::fill(b_tile.begin(), b_tile.end(), 0.0);
        }
        for (int i = 0; i < mi; ++i)
          for (int kk = 0; kk < kw; ++kk)
            a_tile[static_cast<std::size_t>(i * 16 + kk)] =
                a[static_cast<std::size_t>(i0 + i) * k + k0 + kk];
        for (int kk = 0; kk < kw; ++kk)
          for (int j = 0; j < nj; ++j)
            b_tile[static_cast<std::size_t>(kk * 16 + j)] =
                b[static_cast<std::size_t>(k0 + kk) * n + j0 + j];
        hmma_m16n16k16_f32acc(a_tile.data(), b_tile.data(), acc.data(),
                              acc.data(), prof);
      }
      for (int i = 0; i < mi; ++i)
        for (int j = 0; j < nj; ++j)
          c[static_cast<std::size_t>(i0 + i) * n + j0 + j] = acc[static_cast<std::size_t>(i * 16 + j)];
    }
  }
}

}  // namespace cubie::mma
