// LCG determinism and distribution properties.

#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace cubie {
namespace {

TEST(Lcg, DeterministicForSeed) {
  common::Lcg a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_raw(), b.next_raw());
}

TEST(Lcg, DifferentSeedsDiffer) {
  common::Lcg a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next_raw() == b.next_raw();
  EXPECT_LT(same, 5);
}

TEST(Lcg, ZeroSeedIsCoerced) {
  common::Lcg z(0);
  EXPECT_NE(z.next_raw(), 0u);
}

TEST(Lcg, LinpackRangeIsOpenMinus2To2) {
  common::Lcg rng(7);
  double lo = 1e9, hi = -1e9;
  for (int i = 0; i < 100000; ++i) {
    const double v = rng.next_linpack();
    lo = std::min(lo, v);
    hi = std::max(hi, v);
    ASSERT_GT(v, -2.0);
    ASSERT_LT(v, 2.0);
  }
  // The sample should cover most of the interval.
  EXPECT_LT(lo, -1.9);
  EXPECT_GT(hi, 1.9);
}

TEST(Lcg, UnitMeanIsCentered) {
  common::Lcg rng(123);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.next_unit();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Lcg, NextBelowIsInRange) {
  common::Lcg rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(RandomVector, MatchesSeededGeneration) {
  const auto a = common::random_vector(64, 5);
  const auto b = common::random_vector(64, 5);
  EXPECT_EQ(a, b);
  const auto c = common::random_vector(64, 6);
  EXPECT_NE(a, c);
}

TEST(RandomVector, CustomRange) {
  const auto v = common::random_vector(1000, 3.0, 7.0, 11);
  for (double x : v) {
    EXPECT_GE(x, 3.0);
    EXPECT_LT(x, 7.0);
  }
}

}  // namespace
}  // namespace cubie
