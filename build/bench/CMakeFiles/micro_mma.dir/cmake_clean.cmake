file(REMOVE_RECURSE
  "CMakeFiles/micro_mma.dir/micro_mma.cpp.o"
  "CMakeFiles/micro_mma.dir/micro_mma.cpp.o.d"
  "micro_mma"
  "micro_mma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_mma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
