file(REMOVE_RECURSE
  "CMakeFiles/fig07_edp.dir/fig07_edp.cpp.o"
  "CMakeFiles/fig07_edp.dir/fig07_edp.cpp.o.d"
  "fig07_edp"
  "fig07_edp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_edp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
