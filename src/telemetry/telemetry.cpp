#include "telemetry/telemetry.hpp"

#include "telemetry/trace_context.hpp"

#include <atomic>
#include <charconv>
#include <chrono>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

namespace cubie::telemetry {

const char* event_kind_name(EventKind k) {
  switch (k) {
    case EventKind::PlanStart: return "plan_start";
    case EventKind::CellStart: return "cell_start";
    case EventKind::CellFinish: return "cell_finish";
    case EventKind::CacheLoad: return "cache_load";
    case EventKind::CacheStore: return "cache_store";
    case EventKind::SpanOpen: return "span_open";
    case EventKind::SpanClose: return "span_close";
    case EventKind::CheckVerdict: return "check_verdict";
    case EventKind::RequestAccepted: return "request_accepted";
    case EventKind::RequestQueued: return "request_queued";
    case EventKind::RequestStarted: return "request_started";
    case EventKind::RequestFinished: return "request_finished";
    case EventKind::RequestRejected: return "request_rejected";
    case EventKind::CacheSimStats: return "cachesim_stats";
  }
  return "unknown";
}

std::string event_payload(const Event& e) {
  // Deliberately excludes seq / t_s / tid (bus stamps) and wall_s (host
  // timing): what remains is a pure function of the work performed.
  std::string p = event_kind_name(e.kind);
  p += '|';
  p += e.name;
  p += '|';
  p += e.source;
  p += '|';
  p += e.status;
  p += "|ok=";
  p += std::to_string(e.ok);
  p += "|count=";
  p += std::to_string(e.count);
  if (e.modeled_s >= 0.0) {
    // Modeled time is a pure function of the cell's profile, so it belongs
    // to the payload. std::to_chars is locale-independent (shortest exact
    // form), like every number the repo serializes.
    char buf[40];
    const auto r = std::to_chars(buf, buf + sizeof(buf), e.modeled_s);
    p += "|modeled=";
    p.append(buf, r.ptr);
  }
  return p;
}

struct EventBus::Impl {
  std::mutex mu;
  std::vector<std::shared_ptr<Sink>> sinks;
  std::atomic<int> sink_count{0};
  std::uint64_t next_seq = 1;
  std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  // Dense thread lanes: the first thread to emit gets lane 0 (the main
  // thread in every current caller), pool workers 1..N in first-emit order.
  std::unordered_map<std::thread::id, int> lanes;
};

EventBus::EventBus() : impl_(std::make_shared<Impl>()) {}

EventBus& bus() {
  static EventBus b;
  return b;
}

bool EventBus::enabled() const noexcept {
  return impl_->sink_count.load(std::memory_order_relaxed) > 0;
}

std::size_t EventBus::sink_count() const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  return impl_->sinks.size();
}

void EventBus::emit(Event e) {
  const auto tid = std::this_thread::get_id();
  // Cubie-Flight: stamp the emitting thread's active trace context onto
  // events that did not set one explicitly (thread-local read, no lock).
  if (e.trace_id.empty()) {
    const TraceContext& ctx = current_trace_context();
    if (ctx.active()) {
      e.trace_id = ctx.trace_id;
      e.span_id = ctx.span_id;
    }
  }
  std::lock_guard<std::mutex> lk(impl_->mu);
  if (impl_->sinks.empty()) return;
  e.seq = impl_->next_seq++;
  e.t_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        impl_->epoch)
              .count();
  const auto [it, inserted] =
      impl_->lanes.try_emplace(tid, static_cast<int>(impl_->lanes.size()));
  e.tid = it->second;
  for (const auto& s : impl_->sinks) s->on_event(e);
}

void EventBus::add_sink(std::shared_ptr<Sink> s) {
  if (!s) return;
  std::lock_guard<std::mutex> lk(impl_->mu);
  impl_->sinks.push_back(std::move(s));
  impl_->sink_count.store(static_cast<int>(impl_->sinks.size()),
                          std::memory_order_relaxed);
}

void EventBus::remove_sink(const Sink* s) {
  std::lock_guard<std::mutex> lk(impl_->mu);
  for (auto it = impl_->sinks.begin(); it != impl_->sinks.end(); ++it) {
    if (it->get() == s) {
      (*it)->flush();
      impl_->sinks.erase(it);
      break;
    }
  }
  impl_->sink_count.store(static_cast<int>(impl_->sinks.size()),
                          std::memory_order_relaxed);
}

void EventBus::flush() {
  std::lock_guard<std::mutex> lk(impl_->mu);
  for (const auto& s : impl_->sinks) s->flush();
}

void EventBus::reset_clock() {
  std::lock_guard<std::mutex> lk(impl_->mu);
  impl_->next_seq = 1;
  impl_->epoch = std::chrono::steady_clock::now();
  impl_->lanes.clear();
}

}  // namespace cubie::telemetry
