#pragma once
// Cubie-Cluster report merging: recombine per-shard fig03_perf
// MetricsReports into the single report a non-clustered `suite` request
// would have produced.
//
// Records merge by concatenation: each worker emits its shard's records in
// canonical order (serve::suite_shard_report walks the full suite
// enumeration and filters), so the merge just places every record at its
// canonical position — values are copied bit-for-bit, never recomputed,
// which is what makes a cluster-served suite bench_diff --tol 0 zero-delta
// against a direct single-engine run. Non-finite sentinel metrics survive
// too: JSON has no NaN/Inf, so they serialize as null and parse back as
// NaN (report::from_json), making the merged report's serialized form
// byte-identical to the direct run's.
//
// Engine counter blocks merge associatively, exactly like Cubie-Pulse
// snapshot merging: counting fields and exec_wall_s sum, max_cell_wall_s
// takes the max. Hardware-counter blocks sum when available.

#include "common/report.hpp"

#include <string>
#include <vector>

namespace cubie::cluster {

// Merge shard reports into the full suite report whose records appear in
// `canonical_keys` order (see shard.hpp canonical_suite_record_keys).
// Shards may arrive in any order — the result is identical for every
// permutation. Fails (nullopt, *error set) when two shards carry the same
// record key (overlap), a record's key is not canonical, a canonical key
// is missing, or the shards disagree on tool/title/scale_divisor.
std::optional<report::MetricsReport> merge_shard_reports(
    const std::vector<report::MetricsReport>& shards,
    const std::vector<std::string>& canonical_keys, std::string* error);

// Associative engine-counter merge (a ⊕ b): counting fields and
// exec_wall_s add, max_cell_wall_s maxes.
report::EngineStats merge_engine_stats(const report::EngineStats& a,
                                       const report::EngineStats& b);

// Associative hardware-counter merge. An unavailable side contributes
// nothing; the merged block is available when either side is, and keeps
// the first unavailable_reason otherwise.
report::HwStats merge_hw_stats(const report::HwStats& a,
                               const report::HwStats& b);

}  // namespace cubie::cluster
