#include "common/table.hpp"

#include <algorithm>
#include <cstdlib>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace cubie::common {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c]) + 2) << row[c];
    }
    os << '\n';
  };
  emit(header_);
  std::string rule;
  for (std::size_t c = 0; c < header_.size(); ++c)
    rule += std::string(width[c], '-') + "  ";
  os << rule << '\n';
  for (const auto& row : rows_) emit(row);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

std::string fmt_double(double v, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << v;
  return ss.str();
}

std::string fmt_sci(double v, int precision) {
  std::ostringstream ss;
  ss << std::scientific << std::setprecision(precision) << v;
  return ss.str();
}

std::string fmt_si(double v, int precision) {
  const char* suffix = "";
  double scaled = v;
  if (v >= 1e12) {
    scaled = v / 1e12;
    suffix = " T";
  } else if (v >= 1e9) {
    scaled = v / 1e9;
    suffix = " G";
  } else if (v >= 1e6) {
    scaled = v / 1e6;
    suffix = " M";
  } else if (v >= 1e3) {
    scaled = v / 1e3;
    suffix = " K";
  }
  std::ostringstream ss;
  ss << std::setprecision(precision) << scaled << suffix;
  return ss.str();
}

int scale_divisor() {
  const char* env = std::getenv("CUBIE_SCALE");
  if (env == nullptr) return 4;  // default: paper dimensions divided by 4
  const int v = std::atoi(env);
  return v >= 1 ? v : 1;
}

}  // namespace cubie::common
