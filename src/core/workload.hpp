#pragma once
// The Cubie workload interface.
//
// Every workload exposes the paper's four implementation variants
// (Section 5.2):
//   Baseline - the vendor-library / prior-art vector implementation
//   TC       - tensor-core MMA implementation
//   CC       - same algorithm with MMAs replaced by CUDA-core scalar work,
//              preserving per-lane responsibilities (identical numerics)
//   CCE      - CUDA-core code keeping only the mathematically essential
//              operations (distinct from CC only in Quadrants II-IV)
// Each run() executes the variant *functionally* (real FP64 arithmetic with
// the variant's accumulation order) while counting events into a
// KernelProfile; sim::DeviceModel then prices the profile on any GPU model.

#include "sim/profile.hpp"
#include "sim/trace.hpp"

#include <memory>
#include <string>
#include <vector>

namespace cubie::core {

enum class Variant { Baseline, TC, CC, CCE };
enum class Quadrant { I, II, III, IV };

std::string variant_name(Variant v);
std::string quadrant_name(Quadrant q);
std::vector<Variant> all_variants();

class Workload;
// The variants a workload actually implements: Baseline only when it has
// one, CC-E only where it differs from CC (Section 5.2). The single source
// of truth shared by the engine, the benches, and the CLI.
std::vector<Variant> available_variants(const Workload& w);

// One of the five per-workload test cases of Table 2. `dims` is interpreted
// by the workload (e.g. {M, N, K} for GEMM); `dataset` names a Table 3/4
// instance for the sparse/graph workloads.
struct TestCase {
  std::string label;
  std::vector<long> dims;
  std::string dataset;
};

// Per-run execution context. Default-constructed options reproduce the
// historical behaviour (no tracing); passing a Tracer turns on Cubie-Trace
// span recording inside run() (see sim/trace.hpp and docs/OBSERVABILITY.md).
struct RunOptions {
  sim::Tracer* tracer = nullptr;
};

struct RunOutput {
  sim::KernelProfile profile;
  // Output values comparable against reference() for the Table 6 error
  // analysis (may be a sample for very large outputs; the sampling is
  // identical across variants).
  std::vector<double> values;
};

class Workload {
 public:
  virtual ~Workload() = default;

  virtual std::string name() const = 0;
  virtual Quadrant quadrant() const = 0;
  // Berkeley-dwarf classification (Table 7).
  virtual std::string dwarf() const = 0;
  // Human-readable baseline provenance ("cuBLAS GEMV v12.8"-style).
  virtual std::string baseline_name() const = 0;
  // PiC has no library baseline in the paper (Table 2: "-").
  virtual bool has_baseline() const { return true; }
  // Quadrant I kernels have CC-E == CC (Section 5.2).
  virtual bool cce_distinct() const { return quadrant() != Quadrant::I; }
  // BFS performs no floating-point computation (excluded from Table 6).
  virtual bool is_floating_point() const { return true; }

  // The five test cases, dimensions divided by `scale_divisor`.
  virtual std::vector<TestCase> cases(int scale_divisor) const = 0;
  // Index of the representative case used by Figures 7-8 and Table 6.
  virtual std::size_t representative_case() const { return 2; }

  // Execute one variant functionally and return profile + outputs. Spans
  // for the workload's phases are recorded into opts.tracer when set.
  virtual RunOutput run(Variant v, const TestCase& tc,
                        const RunOptions& opts) const = 0;
  // Convenience overload: run without tracing.
  RunOutput run(Variant v, const TestCase& tc) const {
    return run(v, tc, RunOptions{});
  }
  // Naive CPU serial ground truth (Section 8).
  virtual std::vector<double> reference(const TestCase& tc) const = 0;
};

using WorkloadPtr = std::unique_ptr<Workload>;

}  // namespace cubie::core
