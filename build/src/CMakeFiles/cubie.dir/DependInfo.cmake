
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/features.cpp" "src/CMakeFiles/cubie.dir/analysis/features.cpp.o" "gcc" "src/CMakeFiles/cubie.dir/analysis/features.cpp.o.d"
  "/root/repo/src/analysis/pca.cpp" "src/CMakeFiles/cubie.dir/analysis/pca.cpp.o" "gcc" "src/CMakeFiles/cubie.dir/analysis/pca.cpp.o.d"
  "/root/repo/src/analysis/suitability.cpp" "src/CMakeFiles/cubie.dir/analysis/suitability.cpp.o" "gcc" "src/CMakeFiles/cubie.dir/analysis/suitability.cpp.o.d"
  "/root/repo/src/common/metrics.cpp" "src/CMakeFiles/cubie.dir/common/metrics.cpp.o" "gcc" "src/CMakeFiles/cubie.dir/common/metrics.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "src/CMakeFiles/cubie.dir/common/rng.cpp.o" "gcc" "src/CMakeFiles/cubie.dir/common/rng.cpp.o.d"
  "/root/repo/src/common/table.cpp" "src/CMakeFiles/cubie.dir/common/table.cpp.o" "gcc" "src/CMakeFiles/cubie.dir/common/table.cpp.o.d"
  "/root/repo/src/core/bfs.cpp" "src/CMakeFiles/cubie.dir/core/bfs.cpp.o" "gcc" "src/CMakeFiles/cubie.dir/core/bfs.cpp.o.d"
  "/root/repo/src/core/fft_workload.cpp" "src/CMakeFiles/cubie.dir/core/fft_workload.cpp.o" "gcc" "src/CMakeFiles/cubie.dir/core/fft_workload.cpp.o.d"
  "/root/repo/src/core/gemm.cpp" "src/CMakeFiles/cubie.dir/core/gemm.cpp.o" "gcc" "src/CMakeFiles/cubie.dir/core/gemm.cpp.o.d"
  "/root/repo/src/core/gemv.cpp" "src/CMakeFiles/cubie.dir/core/gemv.cpp.o" "gcc" "src/CMakeFiles/cubie.dir/core/gemv.cpp.o.d"
  "/root/repo/src/core/pic_workload.cpp" "src/CMakeFiles/cubie.dir/core/pic_workload.cpp.o" "gcc" "src/CMakeFiles/cubie.dir/core/pic_workload.cpp.o.d"
  "/root/repo/src/core/reduction.cpp" "src/CMakeFiles/cubie.dir/core/reduction.cpp.o" "gcc" "src/CMakeFiles/cubie.dir/core/reduction.cpp.o.d"
  "/root/repo/src/core/registry.cpp" "src/CMakeFiles/cubie.dir/core/registry.cpp.o" "gcc" "src/CMakeFiles/cubie.dir/core/registry.cpp.o.d"
  "/root/repo/src/core/scan.cpp" "src/CMakeFiles/cubie.dir/core/scan.cpp.o" "gcc" "src/CMakeFiles/cubie.dir/core/scan.cpp.o.d"
  "/root/repo/src/core/spgemm.cpp" "src/CMakeFiles/cubie.dir/core/spgemm.cpp.o" "gcc" "src/CMakeFiles/cubie.dir/core/spgemm.cpp.o.d"
  "/root/repo/src/core/spmv.cpp" "src/CMakeFiles/cubie.dir/core/spmv.cpp.o" "gcc" "src/CMakeFiles/cubie.dir/core/spmv.cpp.o.d"
  "/root/repo/src/core/stencil_workload.cpp" "src/CMakeFiles/cubie.dir/core/stencil_workload.cpp.o" "gcc" "src/CMakeFiles/cubie.dir/core/stencil_workload.cpp.o.d"
  "/root/repo/src/core/suite_proxies.cpp" "src/CMakeFiles/cubie.dir/core/suite_proxies.cpp.o" "gcc" "src/CMakeFiles/cubie.dir/core/suite_proxies.cpp.o.d"
  "/root/repo/src/core/workload.cpp" "src/CMakeFiles/cubie.dir/core/workload.cpp.o" "gcc" "src/CMakeFiles/cubie.dir/core/workload.cpp.o.d"
  "/root/repo/src/fft/fft.cpp" "src/CMakeFiles/cubie.dir/fft/fft.cpp.o" "gcc" "src/CMakeFiles/cubie.dir/fft/fft.cpp.o.d"
  "/root/repo/src/graph/bitmap.cpp" "src/CMakeFiles/cubie.dir/graph/bitmap.cpp.o" "gcc" "src/CMakeFiles/cubie.dir/graph/bitmap.cpp.o.d"
  "/root/repo/src/graph/generators.cpp" "src/CMakeFiles/cubie.dir/graph/generators.cpp.o" "gcc" "src/CMakeFiles/cubie.dir/graph/generators.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/CMakeFiles/cubie.dir/graph/graph.cpp.o" "gcc" "src/CMakeFiles/cubie.dir/graph/graph.cpp.o.d"
  "/root/repo/src/mma/half.cpp" "src/CMakeFiles/cubie.dir/mma/half.cpp.o" "gcc" "src/CMakeFiles/cubie.dir/mma/half.cpp.o.d"
  "/root/repo/src/mma/mma.cpp" "src/CMakeFiles/cubie.dir/mma/mma.cpp.o" "gcc" "src/CMakeFiles/cubie.dir/mma/mma.cpp.o.d"
  "/root/repo/src/mma/warp.cpp" "src/CMakeFiles/cubie.dir/mma/warp.cpp.o" "gcc" "src/CMakeFiles/cubie.dir/mma/warp.cpp.o.d"
  "/root/repo/src/pic/pic.cpp" "src/CMakeFiles/cubie.dir/pic/pic.cpp.o" "gcc" "src/CMakeFiles/cubie.dir/pic/pic.cpp.o.d"
  "/root/repo/src/sim/device.cpp" "src/CMakeFiles/cubie.dir/sim/device.cpp.o" "gcc" "src/CMakeFiles/cubie.dir/sim/device.cpp.o.d"
  "/root/repo/src/sim/model.cpp" "src/CMakeFiles/cubie.dir/sim/model.cpp.o" "gcc" "src/CMakeFiles/cubie.dir/sim/model.cpp.o.d"
  "/root/repo/src/sim/power.cpp" "src/CMakeFiles/cubie.dir/sim/power.cpp.o" "gcc" "src/CMakeFiles/cubie.dir/sim/power.cpp.o.d"
  "/root/repo/src/sim/roofline.cpp" "src/CMakeFiles/cubie.dir/sim/roofline.cpp.o" "gcc" "src/CMakeFiles/cubie.dir/sim/roofline.cpp.o.d"
  "/root/repo/src/sparse/csr.cpp" "src/CMakeFiles/cubie.dir/sparse/csr.cpp.o" "gcc" "src/CMakeFiles/cubie.dir/sparse/csr.cpp.o.d"
  "/root/repo/src/sparse/generators.cpp" "src/CMakeFiles/cubie.dir/sparse/generators.cpp.o" "gcc" "src/CMakeFiles/cubie.dir/sparse/generators.cpp.o.d"
  "/root/repo/src/sparse/io.cpp" "src/CMakeFiles/cubie.dir/sparse/io.cpp.o" "gcc" "src/CMakeFiles/cubie.dir/sparse/io.cpp.o.d"
  "/root/repo/src/sparse/mbsr.cpp" "src/CMakeFiles/cubie.dir/sparse/mbsr.cpp.o" "gcc" "src/CMakeFiles/cubie.dir/sparse/mbsr.cpp.o.d"
  "/root/repo/src/sparse/stats.cpp" "src/CMakeFiles/cubie.dir/sparse/stats.cpp.o" "gcc" "src/CMakeFiles/cubie.dir/sparse/stats.cpp.o.d"
  "/root/repo/src/stencil/stencil.cpp" "src/CMakeFiles/cubie.dir/stencil/stencil.cpp.o" "gcc" "src/CMakeFiles/cubie.dir/stencil/stencil.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
