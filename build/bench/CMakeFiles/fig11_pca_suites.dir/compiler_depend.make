# Empty compiler generated dependencies file for fig11_pca_suites.
# This may be replaced when dependencies are built.
