#pragma once
// Cubie-Engine plans: the declarative description of a suite experiment.
//
// A Plan names *what* to evaluate — sets of workloads, variants, test cases,
// a scale divisor, and the device models to price on. The engine expands a
// Plan into unique **cells** `(workload, variant, case, scale)`, the atomic
// unit of functional execution: a cell's RunOutput (KernelProfile + output
// values) is device-independent, so it is executed exactly once per process
// and re-priced on every requested DeviceModel. See docs/ARCHITECTURE.md.

#include "core/workload.hpp"
#include "sim/device.hpp"

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace cubie::engine {

// Which of a workload's test cases a Plan covers.
enum class CaseSet {
  All,             // every case from Workload::cases(scale)
  Representative,  // only Workload::representative_case()
  Explicit,        // the indices listed in Plan::case_indices
};

struct Plan {
  // Workload names (registry lookup, case-insensitive). Empty = full suite.
  std::vector<std::string> workloads;
  // Requested variants; unavailable ones (Baseline without a baseline,
  // CC-E where it equals CC) are skipped per workload during expansion.
  // Empty = all available variants of each workload.
  std::vector<core::Variant> variants;
  CaseSet cases = CaseSet::All;
  std::vector<std::size_t> case_indices;  // used when cases == Explicit
  int scale = 1;
  // Device models the caller intends to price on. Pricing is outside the
  // cell (profiles are device-independent); this is carried so a Plan is a
  // complete, self-describing record of an experiment. Empty = all GPUs.
  std::vector<sim::Gpu> gpus;

  // The full figure-3 style sweep: every workload, variant, and case.
  static Plan suite(int scale) {
    Plan p;
    p.scale = scale;
    return p;
  }
  // One representative case per workload (Figures 7-9, Table 6 shape).
  static Plan representative(int scale) {
    Plan p;
    p.scale = scale;
    p.cases = CaseSet::Representative;
    return p;
  }

  Plan& with_workloads(std::vector<std::string> names) {
    workloads = std::move(names);
    return *this;
  }
  Plan& with_variants(std::vector<core::Variant> vs) {
    variants = std::move(vs);
    return *this;
  }
  Plan& with_gpus(std::vector<sim::Gpu> gs) {
    gpus = std::move(gs);
    return *this;
  }
};

// One expanded unit of functional execution.
struct Cell {
  const core::Workload* workload = nullptr;  // owned by the engine
  core::Variant variant = core::Variant::TC;
  core::TestCase test_case;
  int scale = 1;
  std::string key;  // content key (cell_key)
};

// Content key of a cell. Includes the case dimensions and dataset in
// addition to the label, so two cases that share a label (e.g. clamped
// dimensions at extreme scales) can never collide, and distinct
// scale/variant/case always map to distinct cache entries. The device-model
// backend is part of the key (`|m=NAME`): results memoized or persisted
// under one backend are never served to a run configured with another.
std::string cell_key(const std::string& workload, core::Variant v,
                     const core::TestCase& tc, int scale,
                     const std::string& model = "analytic");

}  // namespace cubie::engine
