#pragma once
// Cubie-Trace: structured profiling of workload executions.
//
// A Tracer owns a tree of named spans. Workload code opens RAII Spans around
// its phases (tile loop, symbolic pass, one BFS frontier, ...); each Span
// snapshots the bound KernelProfile on entry and attributes the delta of all
// counted events — plus host wall-clock and peak RSS — to its node on exit.
// Nesting follows lexical scope, so the span tree mirrors the phase
// structure of the kernel and per-span profiles sum to the whole-kernel
// profile the DeviceModel prices (see docs/MODEL.md).
//
// The disabled path is a null Tracer pointer: a Span constructed with
// `tracer == nullptr` stores two pointers and returns — no clock read, no
// snapshot, no allocation — so always-on instrumentation costs nothing in
// the bench sweeps (pinned by tests/test_trace.cpp).

#include "sim/profile.hpp"

#include <chrono>
#include <cstddef>
#include <string>
#include <vector>

namespace cubie::sim {

// One closed span. `inclusive` is the KernelProfile delta observed between
// span open and close (children included); `exclusive()` subtracts the
// children, i.e. the events attributable to this phase alone.
struct TraceNode {
  std::string name;
  KernelProfile inclusive;
  double wall_s = 0.0;      // host wall-clock spent inside the span
  long peak_rss_kb = 0;     // process peak RSS at span close (0 if unknown)
  std::vector<TraceNode> children;

  KernelProfile exclusive() const;
  // Total number of nodes in this subtree (including this one).
  std::size_t tree_size() const;
};

class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Closed top-level spans, in open order. Open spans are not visible.
  const std::vector<TraceNode>& roots() const { return roots_; }
  void clear();

  // True while at least one span is open (sanity checks in tests).
  bool in_span() const { return !stack_.empty(); }

  // Process-wide count of spans ever recorded, across all tracers. Used by
  // tests to pin the disabled path to "records nothing".
  static std::size_t total_spans_recorded();

 private:
  friend class Span;
  // Stack discipline keeps these pointers stable: a node's containing
  // vector only grows while the node is *closed* (new spans always attach
  // to the innermost open node).
  std::vector<TraceNode> roots_;
  std::vector<TraceNode*> stack_;

  TraceNode* open(std::string name);
  void close(TraceNode* node);
};

// Current process peak RSS in KiB (0 where unsupported).
long peak_rss_kb();

// RAII span. Constructed against the profile being accumulated into; the
// delta between construction and destruction is attributed to the span.
class Span {
 public:
  Span(Tracer* tracer, std::string name, const KernelProfile& profile)
      : tracer_(tracer), profile_(&profile) {
    if (!tracer_) return;  // disabled path: no snapshot, no clock, no node
    start_ = profile;
    node_ = tracer_->open(std::move(name));
    t0_ = std::chrono::steady_clock::now();
  }

  ~Span() { finish(); }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  // Close early (before end of scope). Idempotent.
  void finish();

 private:
  Tracer* tracer_ = nullptr;
  const KernelProfile* profile_ = nullptr;
  TraceNode* node_ = nullptr;
  KernelProfile start_;
  std::chrono::steady_clock::time_point t0_;
};

// Difference a - b of every additive counter (efficiency hints are carried
// over from `a`, the later snapshot).
KernelProfile profile_delta(const KernelProfile& a, const KernelProfile& b);

}  // namespace cubie::sim
