#!/usr/bin/env bash
# End-to-end smoke for the Cubie-Cluster router, run from ctest:
#   test_cluster.sh <cubie-binary> <bench_diff-binary>
# Starts a single reference daemon and a 3-worker cluster sharing one disk
# cache, then proves the clustering contract:
#   * a cluster-served suite is byte-identical (cmp, bench_diff --tol 0) to
#     the same suite from a single worker;
#   * the router's stats envelope shows the fan-out (suites, shards, all
#     workers healthy) and `cubie top` renders the worker panel;
#   * killing a worker mid-loadgen loses no requests — the router fails the
#     dead worker's traffic over (failovers >= 1, completed == requests)
#     and the loadgen report carries the cluster tool name;
#   * `cubie request --addr dead,live` picks the first healthy endpoint;
#   * a `shutdown` request drains the router AND its spawned workers to a
#     clean exit 0.
set -eu

CUBIE="$1"
DIFF="$2"
WORK="$(mktemp -d)"
CACHE="$WORK/cache"
WSOCK="$WORK/single.sock"
RSOCK="$WORK/router.sock"
SERVER_PID=""
ROUTER_PID=""
cleanup() {
  for pid in "$SERVER_PID" "$ROUTER_PID"; do
    if [ -n "$pid" ]; then
      kill "$pid" 2>/dev/null || true
      wait "$pid" 2>/dev/null || true
    fi
  done
  rm -rf "$WORK"
}
trap cleanup EXIT

wait_ping() { # <socket>
  for _ in $(seq 1 200); do
    if "$CUBIE" request ping --socket "$1" > /dev/null 2>&1; then
      return 0
    fi
    sleep 0.1
  done
  return 1
}

# --- Reference: the suite from one plain daemon. ---------------------------
"$CUBIE" serve --socket "$WSOCK" --jobs 2 --cache "$CACHE" \
         2> "$WORK/single.log" &
SERVER_PID=$!
wait_ping "$WSOCK" || { cat "$WORK/single.log" >&2; exit 1; }
"$CUBIE" request suite --scale 16 --socket "$WSOCK" \
         --json "$WORK/direct.json" 2> /dev/null
"$CUBIE" request shutdown --socket "$WSOCK" > /dev/null
wait "$SERVER_PID" || { cat "$WORK/single.log" >&2; exit 1; }
SERVER_PID=""

# --- The cluster: 3 spawned workers behind one router. ---------------------
# The workers share the reference run's disk cache — the cluster's
# cross-shard memo layer, and what keeps this test fast: every cell is
# loaded, none recomputed, and the bytes must STILL be identical.
"$CUBIE" cluster --spawn 3 --socket "$RSOCK" --jobs 2 --cache "$CACHE" \
         --probe-interval 100 2> "$WORK/cluster.log" &
ROUTER_PID=$!
wait_ping "$RSOCK" || { cat "$WORK/cluster.log" >&2; exit 1; }

"$CUBIE" request suite --scale 16 --socket "$RSOCK" \
         --json "$WORK/cluster.json" 2> /dev/null
cmp "$WORK/cluster.json" "$WORK/direct.json"
"$DIFF" "$WORK/direct.json" "$WORK/cluster.json" --tol 0 > /dev/null
echo "cluster suite is byte-identical to the single-worker suite"

"$CUBIE" request stats --socket "$RSOCK" --json "$WORK/stats1.json" \
         2> /dev/null
python3 - "$WORK/stats1.json" <<'EOF'
import json, sys
env = json.load(open(sys.argv[1]))
assert env["ok"] is True, env
cl = env["cluster"]
assert cl["suites"] == 1, cl
assert cl["shards"] >= 2, cl          # the fan-out really happened
assert cl["failovers"] == 0, cl
assert cl["workers"] == 3 and cl["workers_healthy"] == 3, cl
assert 1.0 <= cl["imbalance_ratio"] <= 1.3, cl
workers = env["workers"]
assert len(workers) == 3, workers
assert all(w["healthy"] for w in workers), workers
assert sum(w["shards"] for w in workers) == cl["shards"], workers
print("cluster stats ok: %d shards over %d workers, imbalance %.3f" %
      (cl["shards"], cl["workers"], cl["imbalance_ratio"]))
EOF

# One `cubie top` frame renders the worker panel against the router.
"$CUBIE" top --socket "$RSOCK" --interval 50 --iterations 1 \
         > "$WORK/top.out" 2> /dev/null
grep -q "cluster" "$WORK/top.out"
grep -q "w0" "$WORK/top.out"

# --- Kill a worker mid-loadgen: no request may be lost. --------------------
# The spawned workers are the router process's children.
WORKER_PIDS="$(pgrep -P "$ROUTER_PID" || true)"
if [ "$(echo "$WORKER_PIDS" | wc -w)" -ne 3 ]; then
  echo "FAIL: expected 3 spawned workers, found: $WORKER_PIDS" >&2
  exit 1
fi
VICTIM="$(echo "$WORKER_PIDS" | head -n 1)"

# Sleep-heavy mix so the run is still in flight when the worker dies
# (warm GEMV cells alone would finish in milliseconds).
"$CUBIE" loadgen GEMV --cluster --socket "$RSOCK" --concurrency 4 \
         --requests 96 --scale 16 --sleep-ms 50 \
         --json "$WORK/load.json" > /dev/null 2>&1 &
LOADGEN_PID=$!
sleep 0.5
kill -9 "$VICTIM"
wait "$LOADGEN_PID"

python3 - "$WORK/load.json" <<'EOF'
import json, sys
rep = json.load(open(sys.argv[1]))
# Satellite contract: cluster loadgen runs live in their own record/trend
# series, so the tool name differs from the direct daemon's.
assert rep["tool"] == "cubie_loadgen_cluster", rep["tool"]
(rec,) = rep["records"]
m = rec["metrics"]
assert m["completed"] == 96, m   # a dead worker lost us nothing
assert m["rejected"] == 0, m
print("loadgen survived the kill: %d/%d completed, %.0f req/s" %
      (m["completed"], 96, m["req_per_s"]))
EOF

# The router noticed: the dead worker's traffic failed over and the health
# probe demoted it.
for _ in $(seq 1 50); do
  "$CUBIE" request stats --socket "$RSOCK" --json "$WORK/stats2.json" \
           2> /dev/null
  if python3 -c '
import json, sys
env = json.load(open(sys.argv[1]))
cl = env["cluster"]
sys.exit(0 if cl["failovers"] >= 1 and cl["workers_healthy"] == 2 else 1)
' "$WORK/stats2.json"; then
    break
  fi
  sleep 0.1
done
python3 - "$WORK/stats2.json" <<'EOF'
import json, sys
env = json.load(open(sys.argv[1]))
cl = env["cluster"]
assert cl["failovers"] >= 1, cl
assert cl["workers_healthy"] == 2, cl
down = [w for w in env["workers"] if not w["healthy"]]
assert len(down) == 1, env["workers"]
print("failover ok: %d failover(s), %s marked unhealthy" %
      (cl["failovers"], down[0]["name"]))
EOF

# A suite still completes on the survivors, still byte-identical.
"$CUBIE" request suite --scale 16 --socket "$RSOCK" \
         --json "$WORK/cluster2.json" 2> /dev/null
cmp "$WORK/cluster2.json" "$WORK/direct.json"

# The Prometheus scrape exposes the cubie_cluster_* series.
"$CUBIE" request metrics --socket "$RSOCK" > "$WORK/scrape.prom" 2> /dev/null
for series in cubie_cluster_workers cubie_cluster_workers_healthy \
              cubie_cluster_shards_total cubie_cluster_failovers_total \
              cubie_cluster_imbalance_ratio cubie_cluster_suites_total; do
  grep -q "^$series" "$WORK/scrape.prom" || {
    echo "FAIL: $series missing from the scrape" >&2; exit 1; }
done

# --- request --addr: first-healthy endpoint selection. ---------------------
"$CUBIE" request ping --addr "$WORK/no-such.sock,$RSOCK" > /dev/null 2>&1
if "$CUBIE" request ping --addr "$WORK/no-such.sock" > /dev/null 2>&1; then
  echo "FAIL: ping to only-dead endpoints did not fail" >&2
  exit 1
fi

# --- Graceful drain: router AND spawned workers exit cleanly. --------------
"$CUBIE" request shutdown --socket "$RSOCK" > /dev/null
rc=0
wait "$ROUTER_PID" || rc=$?
ROUTER_PID=""
if [ "$rc" -ne 0 ]; then
  echo "FAIL: cluster exited $rc after shutdown request" >&2
  cat "$WORK/cluster.log" >&2
  exit 1
fi
grep -q "drained" "$WORK/cluster.log"

echo "cluster integration test OK"
