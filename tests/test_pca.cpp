// PCA and the Jacobi eigensolver.

#include "analysis/pca.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace cubie {
namespace {

using analysis::Dataset;

TEST(Jacobi, DiagonalMatrixEigen) {
  std::vector<double> a = {3.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 2.0};
  std::vector<double> evals, evecs;
  analysis::jacobi_eigen(a, 3, evals, evecs);
  EXPECT_NEAR(evals[0], 3.0, 1e-12);
  EXPECT_NEAR(evals[1], 2.0, 1e-12);
  EXPECT_NEAR(evals[2], 1.0, 1e-12);
}

TEST(Jacobi, Known2x2) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1.
  std::vector<double> a = {2.0, 1.0, 1.0, 2.0};
  std::vector<double> evals, evecs;
  analysis::jacobi_eigen(a, 2, evals, evecs);
  EXPECT_NEAR(evals[0], 3.0, 1e-12);
  EXPECT_NEAR(evals[1], 1.0, 1e-12);
  // Eigenvector for 3 is (1,1)/sqrt(2) up to sign (fixed positive).
  EXPECT_NEAR(evecs[0], 1.0 / std::sqrt(2.0), 1e-10);
  EXPECT_NEAR(evecs[1], 1.0 / std::sqrt(2.0), 1e-10);
}

TEST(Jacobi, EigenEquationHolds) {
  // Random symmetric 5x5; verify A v = lambda v using the original matrix.
  const std::size_t n = 5;
  std::vector<double> orig(n * n);
  unsigned s = 12345;
  auto rnd = [&]() {
    s = s * 1103515245u + 12345u;
    return static_cast<double>((s >> 16) & 0x7fff) / 32768.0 - 0.5;
  };
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i; j < n; ++j) orig[i * n + j] = orig[j * n + i] = rnd();
  std::vector<double> work = orig, evals, evecs;
  analysis::jacobi_eigen(work, n, evals, evecs);
  for (std::size_t e = 0; e < n; ++e) {
    for (std::size_t i = 0; i < n; ++i) {
      double av = 0.0;
      for (std::size_t j = 0; j < n; ++j) av += orig[i * n + j] * evecs[e * n + j];
      EXPECT_NEAR(av, evals[e] * evecs[e * n + i], 1e-9);
    }
  }
}

TEST(Standardize, ZeroMeanUnitVariance) {
  Dataset d;
  d.samples = 4;
  d.features = 2;
  d.data = {1.0, 10.0, 2.0, 20.0, 3.0, 30.0, 4.0, 40.0};
  analysis::standardize(d);
  for (std::size_t f = 0; f < 2; ++f) {
    double mean = 0.0, var = 0.0;
    for (std::size_t s = 0; s < 4; ++s) mean += d.at(s, f);
    mean /= 4.0;
    for (std::size_t s = 0; s < 4; ++s) var += d.at(s, f) * d.at(s, f);
    var /= 4.0;
    EXPECT_NEAR(mean, 0.0, 1e-12);
    EXPECT_NEAR(var, 1.0, 1e-12);
  }
}

TEST(Standardize, ConstantFeatureBecomesZero) {
  Dataset d;
  d.samples = 3;
  d.features = 1;
  d.data = {5.0, 5.0, 5.0};
  analysis::standardize(d);
  for (double v : d.data) EXPECT_EQ(v, 0.0);
}

TEST(Pca, RecoversDominantDirection) {
  // Points along the (1, 1) direction with small noise: PC1 must align.
  Dataset d;
  d.samples = 50;
  d.features = 2;
  d.data.resize(100);
  unsigned s = 777;
  auto rnd = [&]() {
    s = s * 1103515245u + 12345u;
    return static_cast<double>((s >> 16) & 0x7fff) / 32768.0 - 0.5;
  };
  for (std::size_t i = 0; i < 50; ++i) {
    const double t = static_cast<double>(i) - 25.0;
    d.at(i, 0) = t + 0.01 * rnd();
    d.at(i, 1) = t + 0.01 * rnd();
  }
  analysis::standardize(d);
  const auto res = analysis::pca(d, 2);
  EXPECT_GT(res.explained_ratio[0], 0.99);
  // PC1 direction ~ (1,1)/sqrt(2).
  EXPECT_NEAR(std::fabs(res.eigenvectors[0]), std::fabs(res.eigenvectors[1]),
              1e-3);
}

TEST(Pca, ExplainedRatiosSumToAtMostOne) {
  Dataset d;
  d.samples = 30;
  d.features = 4;
  d.data.resize(120);
  unsigned s = 31;
  for (auto& v : d.data) {
    s = s * 1103515245u + 12345u;
    v = static_cast<double>((s >> 16) & 0x7fff) / 32768.0;
  }
  analysis::standardize(d);
  const auto res = analysis::pca(d, 4);
  double total = 0.0;
  for (double r : res.explained_ratio) total += r;
  EXPECT_LE(total, 1.0 + 1e-9);
  EXPECT_GT(total, 0.99);  // all components requested
  // Eigenvalues are sorted descending.
  for (std::size_t i = 1; i < res.eigenvalues.size(); ++i)
    EXPECT_LE(res.eigenvalues[i], res.eigenvalues[i - 1] + 1e-12);
}

TEST(Pca, ProjectionDimensions) {
  Dataset d;
  d.samples = 10;
  d.features = 6;
  d.data.assign(60, 0.0);
  for (std::size_t i = 0; i < 10; ++i) d.at(i, 0) = static_cast<double>(i);
  analysis::standardize(d);
  const auto res = analysis::pca(d, 2);
  EXPECT_EQ(res.projected.samples, 10u);
  EXPECT_EQ(res.projected.features, 2u);
}

TEST(Dispersion, PairwiseAndCoverage) {
  Dataset proj;
  proj.samples = 4;
  proj.features = 2;
  // Unit square corners.
  proj.data = {0, 0, 1, 0, 0, 1, 1, 1};
  const std::vector<std::size_t> all = {0, 1, 2, 3};
  const double mean_d = analysis::mean_pairwise_distance(proj, all);
  // 4 sides (1) + 2 diagonals (sqrt 2) over 6 pairs.
  EXPECT_NEAR(mean_d, (4.0 + 2.0 * std::sqrt(2.0)) / 6.0, 1e-12);
  EXPECT_DOUBLE_EQ(analysis::coverage_fraction(proj, {0}, 2.0), 1.0);
  EXPECT_DOUBLE_EQ(analysis::coverage_fraction(proj, {0}, 0.5), 0.25);
}

}  // namespace
}  // namespace cubie
