// Ablation: DASP zero-padding overhead. The SpMV TC variant rounds each
// group of 8 rows up to the widest row's 4-wide chunk count, so the MMA
// slots loaded from memory exceed the true nonzeros. This bench measures
// the padding factor for the Table 4 matrices and for synthetic matrices
// with increasing row-degree variance - the structural quantity behind
// Observation 5 (CC-E beats TC only on SpMV).

#include "bench_util.hpp"
#include "common/table.hpp"
#include "sparse/generators.hpp"
#include "sparse/stats.hpp"

#include <algorithm>
#include <iostream>
#include <vector>

namespace {

using namespace cubie;

// Padding factor of DASP's grouped 8-row layout: padded slots / nnz.
// `grouped` applies the long/medium/short reordering first (DASP's design
// intent: group rows of similar degree so the padding shrinks).
double padding_factor(const sparse::Csr& a, bool grouped) {
  std::vector<int> order(static_cast<std::size_t>(a.rows));
  for (int r = 0; r < a.rows; ++r) order[static_cast<std::size_t>(r)] = r;
  if (grouped) {
    std::stable_sort(order.begin(), order.end(), [&](int x, int y) {
      return a.row_nnz(x) > a.row_nnz(y);
    });
  }
  double slots = 0.0;
  for (std::size_t g = 0; g < order.size(); g += 8) {
    int max_chunks = 0;
    for (std::size_t i = 0; i < std::min<std::size_t>(8, order.size() - g); ++i)
      max_chunks = std::max(max_chunks, (a.row_nnz(order[g + i]) + 3) / 4);
    slots += 32.0 * max_chunks;
  }
  return slots / static_cast<double>(a.nnz());
}

}  // namespace

int main(int argc, char** argv) {
  auto bench = benchutil::bench_init(
      argc, argv, "ablation_padding",
      "Ablation: DASP zero-padding (padded MMA slots / nnz)");
  std::cout << "=== Ablation: DASP zero-padding (padded MMA slots / nnz) "
               "===\n\n";
  common::Table t({"matrix", "nnz", "row std/mean", "pad (row order)",
                   "pad (degree-grouped)", "grouping saves"});
  for (const auto& name : sparse::table4_names()) {
    const auto nm = sparse::make_table4_matrix(name, 8);
    const auto f = sparse::matrix_features(nm.matrix);
    const double p_plain = padding_factor(nm.matrix, false);
    const double p_grouped = padding_factor(nm.matrix, true);
    t.add_row({name, std::to_string(nm.matrix.nnz()),
               common::fmt_double(f.row_std / std::max(1.0, f.row_mean), 3),
               common::fmt_double(p_plain, 3),
               common::fmt_double(p_grouped, 3),
               common::fmt_double((p_plain - p_grouped) * 100.0 /
                                      std::max(1e-9, p_plain), 1) + "%"});
    auto& rec = bench.record("padding", "", "", name);
    rec.set("row_cv", f.row_std / std::max(1.0, f.row_mean));
    rec.set("pad_row_order", p_plain);
    rec.set("pad_grouped", p_grouped);
  }
  t.print(std::cout);
  bench.capture("padding_table4", t);

  std::cout << "\nRow-degree-variance sweep (random matrices, n = 4096):\n";
  common::Table s({"family", "row std/mean", "pad (grouped)"});
  struct Case { const char* label; sparse::Csr m; };
  const Case cases[] = {
      {"uniform deg 16", sparse::gen_random_uniform(4096, 16, 91)},
      {"banded p=0.5", sparse::gen_banded(4096, 16, 0.5, false, 92)},
      {"powerlaw a=0.8", sparse::gen_powerlaw(4096, 16.0, 0.8, 93)},
      {"powerlaw a=1.4", sparse::gen_powerlaw(4096, 16.0, 1.4, 94)},
  };
  for (const auto& c : cases) {
    const auto f = sparse::matrix_features(c.m);
    const double pad = padding_factor(c.m, true);
    s.add_row({c.label,
               common::fmt_double(f.row_std / std::max(1.0, f.row_mean), 3),
               common::fmt_double(pad, 3)});
    auto& rec = bench.record("padding", "", "", c.label);
    rec.set("row_cv", f.row_std / std::max(1.0, f.row_mean));
    rec.set("pad_grouped", pad);
  }
  s.print(std::cout);
  bench.capture("padding_sweep", s);
  std::cout <<
      "\nReading: padding (and therefore the CC-E advantage of Section 6.3)\n"
      "tracks row-degree variance; DASP's degree grouping recovers most of\n"
      "the overhead on regular matrices but cannot on heavy-tailed ones.\n";
  return bench.finish();
}
