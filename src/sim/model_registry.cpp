#include "sim/model_registry.hpp"

#include "sim/cachesim/cachesim_model.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <cstddef>
#include <utility>

namespace cubie::sim {
namespace {

using Factory = std::unique_ptr<DeviceModel> (*)(const DeviceSpec&);

std::unique_ptr<DeviceModel> make_analytic(const DeviceSpec& spec) {
  return std::make_unique<AnalyticModel>(spec);
}

std::unique_ptr<DeviceModel> make_cachesim(const DeviceSpec& spec) {
  return std::make_unique<CacheSimModel>(spec);
}

struct Entry {
  const char* name;
  const char* description;
  Factory factory;
};

// Name -> factory. model_backend_names() iterates this table, so the list
// command and the lookup can never disagree about which backends exist.
constexpr std::array<Entry, 2> kRegistry{{
    {"analytic",
     "closed-form bottleneck model; DRAM time from mem_eff hints",
     make_analytic},
    {"cachesim",
     "event-driven L2/DRAM simulator; DRAM time from simulated hit rates",
     make_cachesim},
}};

// Case-insensitive fold for CLI-friendly lookup ("CacheSim" == "cachesim").
std::string fold(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s)
    out.push_back(static_cast<char>(
        std::tolower(static_cast<unsigned char>(c))));
  return out;
}

// Levenshtein distance for did-you-mean suggestions on bad --model values.
std::size_t edit_distance(const std::string& a, const std::string& b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diag = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t up = row[j];
      const std::size_t sub = diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      row[j] = std::min({row[j - 1] + 1, up + 1, sub});
      diag = up;
    }
  }
  return row[b.size()];
}

}  // namespace

std::unique_ptr<DeviceModel> make_device_model(const std::string& name,
                                               const DeviceSpec& spec) {
  const std::string want = fold(name);
  for (const auto& e : kRegistry) {
    if (fold(e.name) == want) return e.factory(spec);
  }
  return nullptr;
}

std::vector<std::string> model_backend_names() {
  std::vector<std::string> names;
  names.reserve(kRegistry.size());
  for (const auto& e : kRegistry) names.emplace_back(e.name);
  return names;
}

std::string model_backend_description(const std::string& name) {
  const std::string want = fold(name);
  for (const auto& e : kRegistry) {
    if (fold(e.name) == want) return e.description;
  }
  return "";
}

std::string suggest_model_backend(const std::string& name) {
  const std::string want = fold(name);
  std::string best;
  std::size_t best_d = 0;
  for (const auto& e : kRegistry) {
    const std::size_t d = edit_distance(want, fold(e.name));
    if (best.empty() || d < best_d) {
      best = e.name;
      best_d = d;
    }
  }
  // Only suggest when the typo is plausibly close (under half the name).
  if (best.empty() || best_d * 2 > best.size()) return "";
  return best;
}

}  // namespace cubie::sim
