// Figure 6: speedups of the CC-E (essential-computation) replacements over
// the TC versions for Quadrants II-IV - whether the redundant computations
// introduced for MMU utilization are worth keeping (paper Section 6.3).

#include "bench_util.hpp"

int main() {
  using namespace cubie;
  const auto rows = benchutil::speedup_sweep(
      core::Variant::CCE, core::Variant::TC, common::scale_divisor());
  benchutil::print_speedup_table(
      "=== Figure 6: CC-E speedup over TC (Quadrants II-IV; <1 = slower) ===",
      rows);
  return 0;
}
