// MMA emulation semantics: shape, accumulation order, fragment layout,
// event counting, and the TC == CC numerical-identity invariant.

#include "mma/constants.hpp"
#include "mma/fragment.hpp"
#include "mma/mma.hpp"
#include "common/rng.hpp"
#include "sim/calibration.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace cubie {
namespace {

using mma::Context;
using mma::Pipe;

TEST(Dmma, MatchesDirectProduct) {
  common::Lcg rng(7);
  double a[32], b[32], c[64], d[64];
  for (auto& v : a) v = rng.next_linpack();
  for (auto& v : b) v = rng.next_linpack();
  for (auto& v : c) v = rng.next_linpack();

  sim::KernelProfile prof;
  Context ctx(Pipe::TensorCore, prof);
  ctx.dmma_m8n8k4(a, b, c, d);

  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) {
      double expect = c[i * 8 + j];
      for (int k = 0; k < 4; ++k) expect = std::fma(a[i * 4 + k], b[k * 8 + j], expect);
      EXPECT_DOUBLE_EQ(d[i * 8 + j], expect) << "(" << i << "," << j << ")";
    }
  }
}

TEST(Dmma, AccumulationIsKMajorFmaChain) {
  // The chain ((c + a0b0) + a1b1)... differs from a pairwise tree in
  // general; verify we implement exactly the chain.
  double a[32] = {}, b[32] = {}, c[64] = {}, d[64];
  a[0] = 1e16;
  a[1] = 1.0;
  a[2] = -1e16;
  a[3] = 1.0;
  for (int k = 0; k < 4; ++k) b[k * 8] = 1.0;  // column 0 of B all ones

  sim::KernelProfile prof;
  Context ctx(Pipe::TensorCore, prof);
  ctx.dmma_m8n8k4(a, b, c, d);
  // Chain: ((0 + 1e16) + 1) + (-1e16) + 1 = 1 exactly? (1e16 + 1 rounds to
  // 1e16 in FP64? No: 1e16 + 1 = 1e16 exactly at that magnitude spacing 2.)
  const double expect = std::fma(a[3], 1.0, std::fma(a[2], 1.0, std::fma(a[1], 1.0, std::fma(a[0], 1.0, 0.0))));
  EXPECT_EQ(d[0], expect);
}

TEST(Dmma, TcAndCcBitwiseIdentical) {
  common::Lcg rng(11);
  double a[32], b[32], c[64], d_tc[64], d_cc[64];
  for (auto& v : a) v = rng.next_linpack();
  for (auto& v : b) v = rng.next_linpack();
  for (auto& v : c) v = rng.next_linpack();

  sim::KernelProfile p1, p2;
  Context tc(Pipe::TensorCore, p1), cc(Pipe::CudaCore, p2);
  tc.dmma_m8n8k4(a, b, c, d_tc);
  cc.dmma_m8n8k4(a, b, c, d_cc);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(d_tc[i], d_cc[i]);
  // ...but the counted events differ: pipe and instruction cost.
  EXPECT_GT(p1.tc_flops, 0.0);
  EXPECT_EQ(p1.cc_flops, 0.0);
  EXPECT_EQ(p2.tc_flops, 0.0);
  EXPECT_GT(p2.cc_flops, 0.0);
  EXPECT_GT(p2.warp_instructions, p1.warp_instructions);
}

TEST(Dmma, EventCounts) {
  double a[32] = {}, b[32] = {}, c[64] = {};
  sim::KernelProfile prof;
  Context ctx(Pipe::TensorCore, prof);
  ctx.dmma_m8n8k4_acc(a, b, c);
  EXPECT_DOUBLE_EQ(prof.tc_flops, 512.0);  // 8*8*4 FMAs * 2
  EXPECT_DOUBLE_EQ(prof.warp_instructions, sim::cal::kTcMmaInstructions);
}

TEST(Dmma, M8n8k8CompositionMatchesFullProduct) {
  common::Lcg rng(13);
  double a[64], b[64], c[64] = {};
  for (auto& v : a) v = rng.next_linpack();
  for (auto& v : b) v = rng.next_linpack();

  sim::KernelProfile prof;
  Context ctx(Pipe::TensorCore, prof);
  ctx.dmma_m8n8k8_acc(a, b, c);

  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) {
      double expect = 0.0;
      for (int k = 0; k < 8; ++k) expect = std::fma(a[i * 8 + k], b[k * 8 + j], expect);
      EXPECT_DOUBLE_EQ(c[i * 8 + j], expect);
    }
  }
  EXPECT_DOUBLE_EQ(prof.tc_flops, 1024.0);  // two m8n8k4 MMAs
}

TEST(Bmma, AndPopcountSemantics) {
  std::uint32_t a[32] = {}, b[32] = {}, d[64] = {};
  a[0] = 0xFFFFFFFFu;   // row 0, word 0: 32 bits
  a[1] = 0x1u;          // row 0, word 1: 1 bit
  b[0] = 0x0F0F0F0Fu;   // col 0, word 0: 16 bits overlap
  b[1] = 0x1u;          // col 0, word 1: 1 bit overlap
  sim::KernelProfile prof;
  Context ctx(Pipe::TensorCore, prof);
  ctx.bmma_m8n8k128_and_popc_acc(a, b, d);
  EXPECT_EQ(d[0], 17u);  // 16 + 1
  EXPECT_EQ(d[1], 0u);
  EXPECT_GT(prof.tc_bitops, 0.0);
}

TEST(Fragment, LaneMappingsAreBijective) {
  bool seen_a[32] = {}, seen_b[32] = {};
  for (int i = 0; i < 8; ++i) {
    for (int k = 0; k < 4; ++k) {
      const int lane = mma::lane_of_a(i, k);
      ASSERT_GE(lane, 0);
      ASSERT_LT(lane, 32);
      EXPECT_FALSE(seen_a[lane]);
      seen_a[lane] = true;
      EXPECT_EQ(mma::a_row_of_lane(lane), i);
      EXPECT_EQ(mma::a_k_of_lane(lane), k);
    }
  }
  for (int k = 0; k < 4; ++k) {
    for (int j = 0; j < 8; ++j) {
      const int lane = mma::lane_of_b(k, j);
      EXPECT_FALSE(seen_b[lane]);
      seen_b[lane] = true;
      EXPECT_EQ(mma::b_k_of_lane(lane), k);
      EXPECT_EQ(mma::b_col_of_lane(lane), j);
    }
  }
  // C: each lane holds exactly two elements.
  int held[32] = {};
  for (int i = 0; i < 8; ++i)
    for (int j = 0; j < 8; ++j) held[mma::lane_of_c(i, j)] += 1;
  for (int lane = 0; lane < 32; ++lane) EXPECT_EQ(held[lane], 2);
}

TEST(Constants, ScanMatricesHaveDocumentedShape) {
  const auto u = mma::kUpperOnes;
  const auto sl = mma::kStrictLowerOnes;
  const auto j = mma::kAllOnes;
  int u_ones = 0, sl_ones = 0;
  for (int r = 0; r < 8; ++r) {
    for (int c = 0; c < 8; ++c) {
      u_ones += u[static_cast<std::size_t>(r * 8 + c)] == 1.0;
      sl_ones += sl[static_cast<std::size_t>(r * 8 + c)] == 1.0;
      EXPECT_EQ(j[static_cast<std::size_t>(r * 8 + c)], 1.0);
      // U + SL^T partitions: U has c >= r, SL has c < r.
      EXPECT_EQ(u[static_cast<std::size_t>(r * 8 + c)], c >= r ? 1.0 : 0.0);
      EXPECT_EQ(sl[static_cast<std::size_t>(r * 8 + c)], c < r ? 1.0 : 0.0);
    }
  }
  EXPECT_EQ(u_ones, 36);
  EXPECT_EQ(sl_ones, 28);
}

TEST(Profile, MemoryAccountingAccumulates) {
  sim::KernelProfile prof;
  Context ctx(Pipe::CudaCore, prof);
  ctx.load_global(1024.0);
  ctx.store_global(512.0);
  ctx.load_shared(256.0);
  ctx.cc_fma(64.0);
  ctx.launch(1000.0);
  EXPECT_DOUBLE_EQ(prof.dram_bytes, 1536.0);
  EXPECT_DOUBLE_EQ(prof.smem_bytes, 256.0);
  EXPECT_DOUBLE_EQ(prof.cc_flops, 128.0);
  EXPECT_EQ(prof.launches, 1);
  EXPECT_DOUBLE_EQ(prof.threads, 1000.0);
}

}  // namespace
}  // namespace cubie
