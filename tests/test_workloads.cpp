// End-to-end workload correctness: every variant of every Cubie workload is
// compared against the naive CPU serial reference on a reduced test case,
// and the central TC == CC numerical-identity invariant is verified.

#include "common/metrics.hpp"
#include "core/kernels.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace cubie {
namespace {

using core::Variant;

constexpr int kTestScale = 16;  // heavy reduction: unit tests must be quick

struct WorkloadCase {
  const char* name;
  std::size_t case_index;
  double tolerance;  // max absolute deviation allowed vs. serial reference
};

// Tolerances reflect the expected rounding-order deviations, not bugs: a
// variant that disagrees structurally produces errors many orders of
// magnitude above these bounds.
const WorkloadCase kCases[] = {
    {"GEMM", 0, 1e-11},     {"GEMV", 0, 1e-12},   {"SpMV", 0, 1e-11},
    {"SpGEMM", 0, 1e-11},   {"FFT", 0, 1e-9},     {"FFT", 1, 1e-9},
    {"FFT", 4, 1e-9},       {"Stencil", 0, 1e-12},
    {"Stencil", 3, 1e-12},  {"Scan", 0, 1e-8},    {"Reduction", 0, 1e-8},
    {"BFS", 1, 0.0},        {"PiC", 0, 1e-13},
};

class WorkloadCorrectness : public ::testing::TestWithParam<WorkloadCase> {};

TEST_P(WorkloadCorrectness, AllVariantsMatchReference) {
  const auto& wc = GetParam();
  const auto w = core::make_workload(wc.name);
  ASSERT_NE(w, nullptr);
  const auto cases = w->cases(kTestScale);
  ASSERT_LT(wc.case_index, cases.size());
  const auto& tc = cases[wc.case_index];
  const auto ref = w->reference(tc);
  ASSERT_FALSE(ref.empty());

  for (auto v : core::all_variants()) {
    if (v == Variant::Baseline && !w->has_baseline()) continue;
    if (v == Variant::CCE && !w->cce_distinct()) continue;
    const auto out = w->run(v, tc);
    ASSERT_EQ(out.values.size(), ref.size())
        << w->name() << "/" << core::variant_name(v);
    const auto err = common::error_stats(out.values, ref);
    EXPECT_LE(err.max, wc.tolerance)
        << w->name() << "/" << core::variant_name(v) << " case " << tc.label;
    // The profile must describe real work.
    EXPECT_GT(out.profile.dram_bytes, 0.0);
    EXPECT_GT(out.profile.useful_flops, 0.0);
    EXPECT_GE(out.profile.launches, 1);
  }
}

TEST_P(WorkloadCorrectness, TcAndCcNumericallyIdentical) {
  const auto& wc = GetParam();
  const auto w = core::make_workload(wc.name);
  ASSERT_NE(w, nullptr);
  const auto tc = w->cases(kTestScale)[wc.case_index];
  const auto tc_out = w->run(Variant::TC, tc);
  const auto cc_out = w->run(Variant::CC, tc);
  ASSERT_EQ(tc_out.values.size(), cc_out.values.size());
  for (std::size_t i = 0; i < tc_out.values.size(); ++i) {
    ASSERT_EQ(tc_out.values[i], cc_out.values[i])
        << w->name() << " index " << i;
  }
  // Same math, different pipes: TC work lands on the tensor pipe, CC work
  // on the CUDA pipe, and CC issues more instructions.
  if (w->is_floating_point()) {
    EXPECT_GT(tc_out.profile.tc_flops, 0.0) << w->name();
    EXPECT_EQ(cc_out.profile.tc_flops, 0.0) << w->name();
    EXPECT_GE(cc_out.profile.cc_flops, tc_out.profile.tc_flops) << w->name();
  } else {
    EXPECT_GT(tc_out.profile.tc_bitops, 0.0) << w->name();
    EXPECT_GT(cc_out.profile.cc_intops, 0.0) << w->name();
  }
  EXPECT_GT(cc_out.profile.warp_instructions,
            tc_out.profile.warp_instructions)
      << w->name();
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadCorrectness, ::testing::ValuesIn(kCases),
    [](const ::testing::TestParamInfo<WorkloadCase>& info) {
      return std::string(info.param.name) + "_case" +
             std::to_string(info.param.case_index);
    });

TEST(Suite, HasTenWorkloadsInQuadrantOrder) {
  const auto suite = core::make_suite();
  ASSERT_EQ(suite.size(), 10u);
  int prev = 0;
  for (const auto& w : suite) {
    const int q = static_cast<int>(w->quadrant());
    EXPECT_GE(q, prev);  // non-decreasing quadrant order
    prev = q;
    EXPECT_EQ(w->cases(kTestScale).size(), 5u) << w->name();
    EXPECT_LT(w->representative_case(), 5u);
  }
}

TEST(Suite, QuadrantAssignmentsMatchPaper) {
  const auto q_of = [](const char* n) {
    return core::make_workload(n)->quadrant();
  };
  using core::Quadrant;
  EXPECT_EQ(q_of("GEMM"), Quadrant::I);
  EXPECT_EQ(q_of("PiC"), Quadrant::I);
  EXPECT_EQ(q_of("FFT"), Quadrant::I);
  EXPECT_EQ(q_of("Stencil"), Quadrant::I);
  EXPECT_EQ(q_of("Scan"), Quadrant::II);
  EXPECT_EQ(q_of("Reduction"), Quadrant::III);
  EXPECT_EQ(q_of("BFS"), Quadrant::IV);
  EXPECT_EQ(q_of("GEMV"), Quadrant::IV);
  EXPECT_EQ(q_of("SpMV"), Quadrant::IV);
  EXPECT_EQ(q_of("SpGEMM"), Quadrant::IV);
}

TEST(Suite, CceDistinctOnlyOutsideQuadrantI) {
  for (const auto& w : core::make_suite()) {
    EXPECT_EQ(w->cce_distinct(), w->quadrant() != core::Quadrant::I)
        << w->name();
  }
}

TEST(Suite, BfsIsTheOnlyNonFloatingPointKernel) {
  for (const auto& w : core::make_suite()) {
    EXPECT_EQ(w->is_floating_point(), w->name() != "BFS") << w->name();
  }
}

TEST(Suite, PicHasNoBaseline) {
  for (const auto& w : core::make_suite()) {
    EXPECT_EQ(w->has_baseline(), w->name() != "PiC") << w->name();
  }
}

TEST(Suite, UnknownWorkloadReturnsNull) {
  EXPECT_EQ(core::make_workload("NotAKernel"), nullptr);
}

}  // namespace
}  // namespace cubie
