file(REMOVE_RECURSE
  "CMakeFiles/table06_accuracy.dir/table06_accuracy.cpp.o"
  "CMakeFiles/table06_accuracy.dir/table06_accuracy.cpp.o.d"
  "table06_accuracy"
  "table06_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table06_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
