// Stencil property tests: linearity, translation invariance, equivalence to
// the assembled sparse operator, and the LoRa two-pass decomposition.

#include "common/rng.hpp"
#include "core/kernels.hpp"
#include "stencil/stencil.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace cubie {
namespace {

const stencil::Star2D kSt{0.52, 0.12, 0.12, 0.12, 0.12};

TEST(StencilProperty, Linearity) {
  const int n = 24;
  const auto a = common::random_vector(static_cast<std::size_t>(n) * n, 501);
  const auto b = common::random_vector(static_cast<std::size_t>(n) * n, 503);
  std::vector<double> combo(static_cast<std::size_t>(n) * n);
  for (std::size_t i = 0; i < combo.size(); ++i) combo[i] = 2.0 * a[i] - 3.0 * b[i];
  std::vector<double> sa, sb, sc;
  stencil::stencil2d_serial(kSt, a, sa, n, n);
  stencil::stencil2d_serial(kSt, b, sb, n, n);
  stencil::stencil2d_serial(kSt, combo, sc, n, n);
  for (std::size_t i = 0; i < combo.size(); ++i)
    EXPECT_NEAR(sc[i], 2.0 * sa[i] - 3.0 * sb[i], 1e-12);
}

TEST(StencilProperty, TranslationInvarianceInterior) {
  const int n = 32;
  std::vector<double> a(static_cast<std::size_t>(n) * n, 0.0);
  a[static_cast<std::size_t>(10 * n + 10)] = 1.0;  // impulse at (10,10)
  std::vector<double> b(static_cast<std::size_t>(n) * n, 0.0);
  b[static_cast<std::size_t>(17 * n + 13)] = 1.0;  // impulse at (17,13)
  std::vector<double> sa, sb;
  stencil::stencil2d_serial(kSt, a, sa, n, n);
  stencil::stencil2d_serial(kSt, b, sb, n, n);
  // Responses are translated copies (both impulses far from boundaries).
  for (int dy = -2; dy <= 2; ++dy) {
    for (int dx = -2; dx <= 2; ++dx) {
      EXPECT_DOUBLE_EQ(sa[static_cast<std::size_t>((10 + dy) * n + 10 + dx)],
                       sb[static_cast<std::size_t>((17 + dy) * n + 13 + dx)]);
    }
  }
}

TEST(StencilProperty, ImpulseResponseIsTheStencil) {
  const int n = 16;
  std::vector<double> a(static_cast<std::size_t>(n) * n, 0.0);
  a[static_cast<std::size_t>(8 * n + 8)] = 1.0;
  std::vector<double> s;
  stencil::stencil2d_serial(kSt, a, s, n, n);
  EXPECT_DOUBLE_EQ(s[static_cast<std::size_t>(8 * n + 8)], kSt.c);
  EXPECT_DOUBLE_EQ(s[static_cast<std::size_t>(7 * n + 8)], kSt.s);  // impulse is my south
  EXPECT_DOUBLE_EQ(s[static_cast<std::size_t>(9 * n + 8)], kSt.n);
  EXPECT_DOUBLE_EQ(s[static_cast<std::size_t>(8 * n + 7)], kSt.e);
  EXPECT_DOUBLE_EQ(s[static_cast<std::size_t>(8 * n + 9)], kSt.w);
  EXPECT_DOUBLE_EQ(s[static_cast<std::size_t>(7 * n + 7)], 0.0);  // no diagonal term
}

TEST(StencilProperty, MatchesAssembledSparseOperator) {
  // The stencil as an explicit sparse matrix acting on the flattened grid.
  const int n = 12;
  const auto in = common::random_vector(static_cast<std::size_t>(n) * n, 505);
  std::vector<double> expect;
  stencil::stencil2d_serial(kSt, in, expect, n, n);
  std::vector<double> out(static_cast<std::size_t>(n) * n, 0.0);
  for (int y = 0; y < n; ++y) {
    for (int x = 0; x < n; ++x) {
      double acc = kSt.c * in[static_cast<std::size_t>(y * n + x)];
      if (y > 0) acc += kSt.n * in[static_cast<std::size_t>((y - 1) * n + x)];
      if (y + 1 < n) acc += kSt.s * in[static_cast<std::size_t>((y + 1) * n + x)];
      if (x > 0) acc += kSt.w * in[static_cast<std::size_t>(y * n + x - 1)];
      if (x + 1 < n) acc += kSt.e * in[static_cast<std::size_t>(y * n + x + 1)];
      out[static_cast<std::size_t>(y * n + x)] = acc;
    }
  }
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_NEAR(out[i], expect[i], 1e-15);
}

TEST(StencilProperty, Stencil3dReducesTo2dOnThinSlab) {
  // A single-slab 3D grid with zero z-weights equals the 2D stencil.
  stencil::Star3D st3{0.52, 0.12, 0.12, 0.12, 0.12, 0.0, 0.0};
  const int n = 16;
  const auto in = common::random_vector(static_cast<std::size_t>(n) * n, 507);
  std::vector<double> out3, out2;
  stencil::stencil3d_serial(st3, in, out3, 1, n, n);
  stencil::stencil2d_serial(kSt, in, out2, n, n);
  for (std::size_t i = 0; i < out2.size(); ++i) EXPECT_DOUBLE_EQ(out3[i], out2[i]);
}

class StencilWorkloadCases : public ::testing::TestWithParam<std::size_t> {};

TEST_P(StencilWorkloadCases, TcMatchesReferenceOnEveryCase) {
  const auto w = core::make_workload("Stencil");
  const auto cases = w->cases(16);
  const auto& tc = cases[GetParam()];
  const auto ref = w->reference(tc);
  const auto out = w->run(core::Variant::TC, tc);
  ASSERT_EQ(out.values.size(), ref.size());
  double max_err = 0.0;
  for (std::size_t i = 0; i < ref.size(); ++i)
    max_err = std::max(max_err, std::fabs(out.values[i] - ref[i]));
  EXPECT_LT(max_err, 1e-12) << tc.label;
}

INSTANTIATE_TEST_SUITE_P(AllFiveCases, StencilWorkloadCases,
                         ::testing::Values(0, 1, 2, 3, 4));

}  // namespace
}  // namespace cubie
