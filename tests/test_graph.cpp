// Graph substrate: construction, BFS reference, bitmap slice-set fidelity,
// generators' structural guarantees.

#include "graph/bitmap.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include <set>

namespace cubie {
namespace {

graph::Graph path_graph(int n) {
  std::vector<std::pair<int, int>> edges;
  for (int i = 0; i + 1 < n; ++i) edges.emplace_back(i, i + 1);
  return graph::graph_from_edges(n, edges, true);
}

TEST(Graph, FromEdgesDedupsAndSymmetrizes) {
  const auto g = graph::graph_from_edges(
      4, {{0, 1}, {1, 0}, {0, 1}, {2, 2}, {1, 3}}, true);
  EXPECT_EQ(g.n, 4);
  // Self-loop removed; {0,1} deduped; edges: 0-1, 1-3 in both directions.
  EXPECT_EQ(g.edges(), 4u);
  EXPECT_EQ(g.degree(1), 2);
  EXPECT_EQ(g.degree(2), 0);
}

TEST(BfsSerial, PathGraphLevels) {
  const auto g = path_graph(10);
  const auto lvl = graph::bfs_serial(g, 0);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(lvl[static_cast<std::size_t>(i)], i);
}

TEST(BfsSerial, UnreachableIsMinusOne) {
  const auto g = graph::graph_from_edges(5, {{0, 1}, {2, 3}}, true);
  const auto lvl = graph::bfs_serial(g, 0);
  EXPECT_EQ(lvl[1], 1);
  EXPECT_EQ(lvl[2], -1);
  EXPECT_EQ(lvl[4], -1);
}

TEST(SliceSet, RepresentsEveryEdgeExactlyOnce) {
  const auto g = graph::gen_rmat(8, 4, 0.57, 0.19, 0.19, 999);
  const auto s = graph::slice_set_from_graph(g);
  EXPECT_EQ(s.n, g.n);
  // Collect bits back into an edge set.
  std::set<std::pair<int, int>> from_bits;
  for (int br = 0; br < s.block_rows; ++br) {
    for (int p = s.row_ptr[static_cast<std::size_t>(br)]; p < s.row_ptr[static_cast<std::size_t>(br) + 1]; ++p) {
      const auto& blk = s.blocks[static_cast<std::size_t>(p)];
      for (int lr = 0; lr < graph::kSliceRows; ++lr) {
        for (int w = 0; w < graph::kSliceWords; ++w) {
          const std::uint32_t bits = blk.bits[static_cast<std::size_t>(lr * graph::kSliceWords + w)];
          for (int b = 0; b < 32; ++b) {
            if (bits & (1u << b)) {
              const int dst = br * graph::kSliceRows + lr;
              const int src = blk.block_col * graph::kSliceCols + w * 32 + b;
              from_bits.emplace(src, dst);
            }
          }
        }
      }
    }
  }
  std::set<std::pair<int, int>> from_graph;
  for (int u = 0; u < g.n; ++u)
    for (int p = g.offsets[static_cast<std::size_t>(u)]; p < g.offsets[static_cast<std::size_t>(u) + 1]; ++p)
      from_graph.emplace(u, g.neighbors[static_cast<std::size_t>(p)]);
  EXPECT_EQ(from_bits, from_graph);
}

TEST(SliceSet, BlocksSortedWithinRows) {
  const auto g = graph::gen_web(2000, 50, 8.0, 7);
  const auto s = graph::slice_set_from_graph(g);
  for (int br = 0; br < s.block_rows; ++br) {
    for (int p = s.row_ptr[static_cast<std::size_t>(br)] + 1; p < s.row_ptr[static_cast<std::size_t>(br) + 1]; ++p) {
      EXPECT_LT(s.blocks[static_cast<std::size_t>(p) - 1].block_col,
                s.blocks[static_cast<std::size_t>(p)].block_col);
    }
  }
}

TEST(BitVector, SetGetPopcount) {
  graph::BitVector v(100);
  EXPECT_EQ(v.popcount(), 0);
  v.set(0);
  v.set(31);
  v.set(32);
  v.set(99);
  EXPECT_TRUE(v.get(0));
  EXPECT_TRUE(v.get(99));
  EXPECT_FALSE(v.get(50));
  EXPECT_EQ(v.popcount(), 4);
  v.clear();
  EXPECT_EQ(v.popcount(), 0);
}

TEST(Mycielskian, SizesFollowRecurrence) {
  // |V(M_k)| = 3 * 2^(k-2) - 1; M_2 = K_2 has 2 vertices and 1 edge.
  const auto m2 = graph::gen_mycielskian(2);
  EXPECT_EQ(m2.n, 2);
  EXPECT_EQ(m2.edges(), 2u);  // directed count
  const auto m3 = graph::gen_mycielskian(3);  // C_5
  EXPECT_EQ(m3.n, 5);
  EXPECT_EQ(m3.edges(), 10u);
  const auto m4 = graph::gen_mycielskian(4);  // Groetzsch graph
  EXPECT_EQ(m4.n, 11);
  EXPECT_EQ(m4.edges(), 40u);
}

TEST(Mycielskian, IsTriangleFreeM4) {
  // The Groetzsch graph is triangle-free.
  const auto g = graph::gen_mycielskian(4);
  for (int u = 0; u < g.n; ++u) {
    for (int p = g.offsets[static_cast<std::size_t>(u)]; p < g.offsets[static_cast<std::size_t>(u) + 1]; ++p) {
      const int v = g.neighbors[static_cast<std::size_t>(p)];
      for (int q = g.offsets[static_cast<std::size_t>(v)]; q < g.offsets[static_cast<std::size_t>(v) + 1]; ++q) {
        const int w = g.neighbors[static_cast<std::size_t>(q)];
        if (w == u) continue;
        // (u, w) must not be an edge.
        bool uw = false;
        for (int r = g.offsets[static_cast<std::size_t>(u)]; r < g.offsets[static_cast<std::size_t>(u) + 1]; ++r)
          uw = uw || g.neighbors[static_cast<std::size_t>(r)] == w;
        EXPECT_FALSE(uw) << "triangle " << u << "-" << v << "-" << w;
      }
    }
  }
}

TEST(Rmat, ShapeAndSkew) {
  const auto g = graph::gen_rmat(10, 8, 0.57, 0.19, 0.19, 42);
  EXPECT_EQ(g.n, 1024);
  EXPECT_GT(g.edges(), 1024u * 4);  // symmetrized, some dedup
  // Degree skew: max degree well above average.
  int max_deg = 0;
  for (int v = 0; v < g.n; ++v) max_deg = std::max(max_deg, g.degree(v));
  const double avg = static_cast<double>(g.edges()) / g.n;
  EXPECT_GT(max_deg, 4 * avg);
}

TEST(Table3, AllFiveGraphsGenerate) {
  for (const auto& name : graph::table3_names()) {
    const auto ng = graph::make_table3_graph(name, 16);
    EXPECT_EQ(ng.name, name);
    EXPECT_GT(ng.graph.n, 100) << name;
    EXPECT_GT(ng.graph.edges(), 200u) << name;
    // Source vertex 0 should reach a nontrivial fraction of the graph.
    const auto lvl = graph::bfs_serial(ng.graph, 0);
    int reached = 0;
    for (int l : lvl) reached += l >= 0;
    EXPECT_GT(reached, ng.graph.n / 20) << name;
  }
}

TEST(AdjacencyCsr, MatchesGraph) {
  const auto g = path_graph(6);
  const auto a = graph::adjacency_csr(g);
  EXPECT_TRUE(a.structurally_valid());
  EXPECT_EQ(a.rows, 6);
  EXPECT_EQ(a.nnz(), g.edges());
}

}  // namespace
}  // namespace cubie
