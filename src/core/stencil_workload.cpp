// Stencil workload (Quadrant I): star2d1r and star3d1r grids (Table 2).
//
// TC: the LoRaStencil scheme. The star stencil's weight matrix separates
// into a vertical and a horizontal band pass, out = A*X + X*B, with A and B
// tridiagonal band matrices. Tiled into 8x8 blocks, both passes become MMA
// chains whose banded operand blocks (diag / sub / super) are constants kept
// in constant memory - loaded once and reused across the whole grid
// (Figure 2's Quadrant I reuse arrow). The 3D variant adds the z-coupling as
// scalar axpy terms on top of the per-slab 2D passes.
// CC: identical tiling on CUDA cores; CC-E == CC.
// Baseline: DRStencil-style direct neighbour-FMA kernel with register reuse.

#include "core/kernels.hpp"

#include "common/rng.hpp"
#include "mma/mma.hpp"
#include "sim/calibration.hpp"
#include "stencil/stencil.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

namespace cubie::core {
namespace {

namespace scal = cubie::sim::cal;

// Non-dyadic weights (not exact powers of two) so every variant's rounding
// behaviour is visible in Table 6.
const stencil::Star2D kStar2{0.52, 0.12, 0.12, 0.12, 0.12};
const stencil::Star3D kStar3{0.40, 0.10, 0.10, 0.10, 0.10, 0.10, 0.10};

struct StencilProblem {
  bool is3d = false;
  int nz = 1, ny = 0, nx = 0;
  std::vector<double> in;
};

StencilProblem make_problem(const TestCase& tc) {
  StencilProblem p;
  p.is3d = tc.dims.size() == 3;
  if (p.is3d) {
    p.nz = static_cast<int>(tc.dims[0]);
    p.ny = static_cast<int>(tc.dims[1]);
    p.nx = static_cast<int>(tc.dims[2]);
  } else {
    p.ny = static_cast<int>(tc.dims[0]);
    p.nx = static_cast<int>(tc.dims[1]);
  }
  p.in = common::random_vector(static_cast<std::size_t>(p.nz) * static_cast<std::size_t>(p.ny) * static_cast<std::size_t>(p.nx), 71);
  return p;
}

// One 2D LoRa pass over a slab: out = A*X + X*B with the band blocks, where
// the vertical pass carries weights (n, c/2, s) and the horizontal pass
// (w, c/2, e). Grid dims must be multiples of 8.
void lora_2d_slab(const double* in, double* out, int ny, int nx,
                  double wc, double wn, double ws, double ww, double we,
                  mma::Context& ctx) {
  const mma::Mat8x8 va_d = stencil::band_diag_block(wn, wc * 0.5, ws);
  const mma::Mat8x8 va_l = stencil::band_sub_block(wn);
  const mma::Mat8x8 va_u = stencil::band_super_block(ws);
  const mma::Mat8x8 hb_d = stencil::band_diag_block(we, wc * 0.5, ww);
  const mma::Mat8x8 hb_l = stencil::band_sub_block(we);
  const mma::Mat8x8 hb_u = stencil::band_super_block(ww);

  auto tile_at = [&](int ty, int tx, double* dst) {
    for (int r = 0; r < 8; ++r)
      for (int c = 0; c < 8; ++c)
        dst[r * 8 + c] = in[static_cast<std::size_t>(ty * 8 + r) * static_cast<std::size_t>(nx) + static_cast<std::size_t>(tx * 8 + c)];
  };

  const int tyn = ny / 8, txn = nx / 8;
  double x_mid[64], x_oth[64], acc[64];
  for (int ty = 0; ty < tyn; ++ty) {
    for (int tx = 0; tx < txn; ++tx) {
      std::fill_n(acc, 64, 0.0);
      tile_at(ty, tx, x_mid);
      ctx.load_shared(64.0 * 8.0);
      // Vertical pass: sum_k A(ty,k) X(k,tx), k in {ty-1, ty, ty+1}.
      ctx.dmma_m8n8k8_acc(va_d.data(), x_mid, acc);
      if (ty > 0) {
        tile_at(ty - 1, tx, x_oth);
        ctx.load_shared(64.0 * 8.0);
        ctx.dmma_m8n8k8_acc(va_l.data(), x_oth, acc);
      }
      if (ty + 1 < tyn) {
        tile_at(ty + 1, tx, x_oth);
        ctx.load_shared(64.0 * 8.0);
        ctx.dmma_m8n8k8_acc(va_u.data(), x_oth, acc);
      }
      // Horizontal pass: sum_k X(ty,k) B(k,tx), k in {tx-1, tx, tx+1}.
      ctx.dmma_m8n8k8_acc(x_mid, hb_d.data(), acc);
      if (tx > 0) {
        tile_at(ty, tx - 1, x_oth);
        ctx.load_shared(64.0 * 8.0);
        ctx.dmma_m8n8k8_acc(x_oth, hb_u.data(), acc);
      }
      if (tx + 1 < txn) {
        tile_at(ty, tx + 1, x_oth);
        ctx.load_shared(64.0 * 8.0);
        ctx.dmma_m8n8k8_acc(x_oth, hb_l.data(), acc);
      }
      for (int r = 0; r < 8; ++r)
        for (int c = 0; c < 8; ++c)
          out[static_cast<std::size_t>(ty * 8 + r) * static_cast<std::size_t>(nx) + static_cast<std::size_t>(tx * 8 + c)] = acc[r * 8 + c];
    }
  }
}

std::vector<double> run_lora(const StencilProblem& p, mma::Context& ctx) {
  const std::size_t plane = static_cast<std::size_t>(p.ny) * static_cast<std::size_t>(p.nx);
  std::vector<double> out(plane * static_cast<std::size_t>(p.nz), 0.0);

  ctx.launch((static_cast<double>(p.ny) / 8.0) * (p.nx / 8.0) * 32.0);
  // Grid in/out streamed once; band blocks come from constant memory.
  ctx.load_global(static_cast<double>(p.in.size()) * 8.0);
  ctx.store_global(static_cast<double>(out.size()) * 8.0);

  if (!p.is3d) {
    lora_2d_slab(p.in.data(), out.data(), p.ny, p.nx, kStar2.c, kStar2.n,
                 kStar2.s, kStar2.w, kStar2.e, ctx);
    return out;
  }
  // 3D: per-slab 2D pass with the xy weights, plus scalar z-coupling.
  for (int z = 0; z < p.nz; ++z) {
    lora_2d_slab(p.in.data() + static_cast<std::size_t>(z) * plane,
                 out.data() + static_cast<std::size_t>(z) * plane, p.ny, p.nx,
                 kStar3.c, kStar3.n, kStar3.s, kStar3.w, kStar3.e, ctx);
  }
  ctx.cc_fma(2.0 * static_cast<double>(out.size()));
  // z-neighbour planes are resident in L2 across consecutive slabs; the
  // re-reads hit the cache hierarchy, not DRAM.
  ctx.load_shared(static_cast<double>(p.in.size()) * 8.0 * 2.0);
  for (int z = 0; z < p.nz; ++z) {
    double* o = out.data() + static_cast<std::size_t>(z) * plane;
    if (z > 0) {
      const double* below = p.in.data() + static_cast<std::size_t>(z - 1) * plane;
      for (std::size_t i = 0; i < plane; ++i) o[i] = std::fma(kStar3.d, below[i], o[i]);
    }
    if (z + 1 < p.nz) {
      const double* above = p.in.data() + static_cast<std::size_t>(z + 1) * plane;
      for (std::size_t i = 0; i < plane; ++i) o[i] = std::fma(kStar3.u, above[i], o[i]);
    }
  }
  return out;
}

std::vector<double> run_drstencil(const StencilProblem& p, mma::Context& ctx) {
  std::vector<double> out;
  const double n = static_cast<double>(p.in.size());
  ctx.launch(n / 2.0);
  // Register/smem reuse: each input is read ~once from DRAM despite the
  // 5/7-point reuse; neighbour re-reads hit shared memory.
  ctx.load_global(n * 8.0);
  ctx.store_global(n * 8.0);
  ctx.load_shared(n * 8.0 * (p.is3d ? 6.0 : 4.0));
  ctx.cc_fma(n * (p.is3d ? 7.0 : 5.0));
  if (p.is3d) {
    stencil::stencil3d_serial_fma(kStar3, p.in, out, p.nz, p.ny, p.nx);
  } else {
    stencil::stencil2d_serial_fma(kStar2, p.in, out, p.ny, p.nx);
  }
  return out;
}

class StencilWorkload final : public Workload {
 public:
  std::string name() const override { return "Stencil"; }
  Quadrant quadrant() const override { return Quadrant::I; }
  std::string dwarf() const override { return "Structured grids"; }
  std::string baseline_name() const override { return "DRStencil"; }

  std::vector<TestCase> cases(int s) const override {
    std::vector<TestCase> cs;
    // star2d1r: 1K^2, 5K^2, 10K^2.
    for (long d : {1024L, 5120L, 10240L}) {
      const long v = std::max(64L, (d / s) / 8 * 8);
      cs.push_back({"star2d1r " + std::to_string(v) + "^2", {v, v}, ""});
    }
    // star3d1r: 512^3, 1K^3.
    for (long d : {512L, 1024L}) {
      const long v = std::max(32L, (d / s) / 8 * 8);
      cs.push_back({"star3d1r " + std::to_string(v) + "^3", {v, v, v}, ""});
    }
    return cs;
  }

  RunOutput run(Variant v, const TestCase& tc,
                const RunOptions& opts) const override {
    RunOutput out;
    sim::Span total(opts.tracer, "Stencil/" + variant_name(v), out.profile);
    sim::Span setup(opts.tracer, "setup", out.profile);
    StencilProblem p = make_problem(tc);
    setup.finish();
    mma::Context ctx(v == Variant::TC ? mma::Pipe::TensorCore
                                      : mma::Pipe::CudaCore,
                     out.profile);
    sim::Span kernel(opts.tracer, "kernel", out.profile);
    if (v == Variant::Baseline) {
      out.values = run_drstencil(p, ctx);
      out.profile.pipe_eff = scal::kCcLibraryEff;
      out.profile.mem_eff = scal::kMemEffGrid;
    } else {
      out.values = run_lora(p, ctx);
      out.profile.pipe_eff =
          v == Variant::TC ? scal::kTcGemmEff : scal::kCcEmulationEff;
      out.profile.mem_eff = v == Variant::TC ? scal::kMemEffTcLayout
                                             : scal::kMemEffCcEmulation;
    }
    out.profile.useful_flops =
        static_cast<double>(p.in.size()) * (p.is3d ? 13.0 : 9.0);
    // Cachesim descriptor: neighbor rows/planes make the grid sweep a
    // strided pass over the in/out arrays.
    out.profile.access = sim::AccessPattern::Strided;
    out.profile.working_set_bytes =
        static_cast<double>(p.in.size()) * 2.0 * 8.0;
    return out;
  }

  std::vector<double> reference(const TestCase& tc) const override {
    StencilProblem p = make_problem(tc);
    std::vector<double> out;
    if (p.is3d) {
      stencil::stencil3d_serial(kStar3, p.in, out, p.nz, p.ny, p.nx);
    } else {
      stencil::stencil2d_serial(kStar2, p.in, out, p.ny, p.nx);
    }
    return out;
  }
};

}  // namespace

WorkloadPtr make_stencil() { return std::make_unique<StencilWorkload>(); }

}  // namespace cubie::core
