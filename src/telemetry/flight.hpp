#pragma once
// Cubie-Flight flight recorder: an always-on bounded ring of the last N
// telemetry events.
//
// The daemon installs one FlightRecorderSink unconditionally (the ring is
// a fixed-size vector; pushing is an index increment and an Event copy, no
// I/O and no allocation beyond the strings the Event already owns), so
// when something goes wrong there is always a recent-history window to
// dump — no "arm a file sink before the run" required. Three ways out:
//
//   * Cmd::Flight / `cubie flight`  — the control command returns the ring
//     as JSON over the wire (oldest first);
//   * SIGUSR2                       — the serve loop dumps the ring to a
//     file via the async-signal-safe self-pipe pattern (the handler only
//     write(2)s one byte; a watcher thread does the actual dump);
//   * EngineError unwind            — the server auto-dumps before
//     answering with a typed Internal error.
//
// dump() writes one compact JSON object per line using the exact same
// event_to_json serialization as JsonlSink's event lines (no header), so
// a flight dump's lines are byte-identical to the tail of a concurrently
// written --events file. See docs/OBSERVABILITY.md ("Cubie-Flight").

#include "telemetry/telemetry.hpp"

#include <cstddef>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

namespace cubie::telemetry {

class FlightRecorderSink : public Sink {
 public:
  explicit FlightRecorderSink(std::size_t capacity = kDefaultCapacity);

  static constexpr std::size_t kDefaultCapacity = 1024;

  void on_event(const Event& e) override;

  std::size_t capacity() const { return cap_; }
  // Events ever pushed (>= the ring's current size; the difference is how
  // many the ring has forgotten).
  std::size_t total_seen() const;

  // The ring's contents, oldest first (global sequence order).
  std::vector<Event> snapshot() const;

  // One compact JSON object per line, oldest first — byte-identical to the
  // corresponding JsonlSink event lines. Returns the events written.
  std::size_t dump(std::ostream& os) const;
  // dump() to `path` (truncating). False when the file cannot be opened.
  bool dump_file(const std::string& path) const;

 private:
  mutable std::mutex mu_;
  std::size_t cap_;
  std::size_t total_ = 0;  // events ever pushed; ring slot = total_ % cap_
  std::vector<Event> ring_;
};

}  // namespace cubie::telemetry
