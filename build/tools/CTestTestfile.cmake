# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[cli_list]=] "/root/repo/build/tools/cubie" "list")
set_tests_properties([=[cli_list]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[cli_cases]=] "/root/repo/build/tools/cubie" "cases" "GEMV" "--scale" "16")
set_tests_properties([=[cli_cases]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[cli_run]=] "/root/repo/build/tools/cubie" "run" "Reduction" "--variant" "TC" "--case" "0" "--gpu" "all" "--scale" "16" "--errors")
set_tests_properties([=[cli_run]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[cli_run_csv]=] "/root/repo/build/tools/cubie" "run" "GEMV" "--variant" "all" "--case" "rep" "--gpu" "H200" "--scale" "16" "--csv")
set_tests_properties([=[cli_run_csv]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[cli_rejects_unknown]=] "/root/repo/build/tools/cubie" "run" "NotAKernel")
set_tests_properties([=[cli_rejects_unknown]=] PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
