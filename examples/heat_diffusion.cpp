// Heat-diffusion time stepping on the LoRaStencil-style MMA stencil: the
// star2d1r kernel applied repeatedly as an explicit Euler integrator, with
// energy-use predictions per GPU model. Demonstrates Observation 6 (MMUs cut
// energy-delay) on a realistic simulation loop.
//
//   $ ./heat_diffusion [grid] [steps]

#include "common/metrics.hpp"
#include "common/table.hpp"
#include "core/kernels.hpp"
#include "sim/model.hpp"
#include "stencil/stencil.hpp"

#include <cmath>
#include <iostream>
#include <vector>

int main(int argc, char** argv) {
  using namespace cubie;
  const int n = argc > 1 ? std::atoi(argv[1]) : 256;
  const int steps = argc > 2 ? std::atoi(argv[2]) : 200;

  // Diffusion stencil: out = in + alpha * laplacian(in), folded into star
  // weights (row-normalized so the field stays bounded).
  const double alpha = 0.2;
  const stencil::Star2D st{1.0 - 4.0 * alpha, alpha, alpha, alpha, alpha};

  // Hot square in the center of a cold plate.
  std::vector<double> grid(static_cast<std::size_t>(n) * n, 0.0);
  for (int y = n * 3 / 8; y < n * 5 / 8; ++y)
    for (int x = n * 3 / 8; x < n * 5 / 8; ++x)
      grid[static_cast<std::size_t>(y) * n + x] = 100.0;

  const double heat0 = common::checksum(grid);
  std::vector<double> next;
  for (int s = 0; s < steps; ++s) {
    stencil::stencil2d_serial_fma(st, grid, next, n, n);
    grid.swap(next);
  }
  const double heat1 = common::checksum(grid);
  double peak = 0.0;
  for (double v : grid) peak = std::max(peak, v);

  std::cout << "Heat diffusion, " << n << "x" << n << " grid, " << steps
            << " steps\n"
            << "  total heat: " << common::fmt_double(heat0, 1) << " -> "
            << common::fmt_double(heat1, 1)
            << " (losses once the front reaches the boundary), peak "
            << common::fmt_double(peak, 2) << "\n\n";

  // What would a production run cost? Use the Stencil workload's TC and
  // baseline variants to project per-step time and energy on each GPU.
  const auto w = core::make_workload("Stencil");
  core::TestCase tc{"sim", {n, n}, ""};
  const auto tc_run = w->run(core::Variant::TC, tc);
  const auto base_run = w->run(core::Variant::Baseline, tc);

  common::Table t({"GPU", "TC ms/step", "Baseline ms/step", "TC J/step",
                   "Baseline J/step", "TC speedup"});
  for (auto gpu : sim::all_gpus()) {
    const sim::AnalyticModel model(sim::spec_for(gpu));
    const auto pt = model.predict(tc_run.profile);
    const auto pb = model.predict(base_run.profile);
    t.add_row({model.spec().name, common::fmt_double(pt.time_s * 1e3, 4),
               common::fmt_double(pb.time_s * 1e3, 4),
               common::fmt_double(pt.energy_j, 4),
               common::fmt_double(pb.energy_j, 4),
               common::fmt_double(pb.time_s / pt.time_s, 2) + "x"});
  }
  t.print(std::cout);
  return 0;
}
