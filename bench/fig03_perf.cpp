// Figure 3: absolute performance of all ten workloads across their five
// test cases and four implementation variants on the A100, H200, and B200
// device models. Values are useful-work rates (GFLOP/s for floating-point
// workloads, GTEPS for BFS), predicted by the analytic device model from
// functionally-counted events.
//
// Expressed as an engine Plan: the full suite sweep executes each unique
// (workload, variant, case, scale) cell exactly once — the KernelProfile
// is device-independent, so the per-GPU loop below only re-prices memoized
// cells (engine misses == suite x variants x cases, pinned by CI).

#include "bench_util.hpp"
#include "serve/service.hpp"

#include <iostream>

int main(int argc, char** argv) {
  using namespace cubie;
  auto bench = benchutil::bench_init(
      argc, argv, "fig03_perf",
      "Figure 3: performance of Baseline/TC/CC/CC-E across workloads");
  const int s = bench.scale;
  std::cout << "=== Figure 3: performance of Baseline/TC/CC/CC-E across "
               "workloads (scale 1/" << s << ") ===\n"
            << "units: GFLOP/s (BFS: GTEPS)\n\n";

  bench.warm(engine::Plan::suite(s));
  // The JSON records are built by the same routine Cubie-Serve uses for a
  // "suite" request, so a served sweep bench_diffs cleanly against this
  // binary's report; the loop below only renders the human tables from the
  // memoized cells.
  serve::add_suite_perf_records(bench.engine, s, bench.report, bench.model);

  for (const auto& w : bench.suite()) {
    std::cout << "--- " << w->name() << " (Quadrant "
              << core::quadrant_name(w->quadrant())
              << ", baseline: " << w->baseline_name()
              << ", unit: " << benchutil::perf_unit(*w) << ") ---\n";
    const auto variants = benchutil::available_variants(*w);
    const auto cases = w->cases(s);
    for (auto gpu : sim::all_gpus()) {
      const auto model = bench.model_for(gpu);
      std::vector<std::string> header{"case"};
      for (auto v : variants) header.push_back(core::variant_name(v));
      common::Table t(std::move(header));
      for (const auto& tc : cases) {
        std::vector<std::string> row{tc.label};
        for (auto v : variants) {
          const auto& out = bench.run(*w, v, tc);
          const auto pred = model->predict(out.profile);
          const double rate =
              benchutil::perf_metric(*w, out.profile, pred.time_s);
          row.push_back(common::fmt_double(rate / 1e9, 1));
        }
        t.add_row(std::move(row));
      }
      std::cout << model->spec().name << ":\n";
      t.print(std::cout);
    }
    std::cout << '\n';
  }
  return bench.finish();
}
