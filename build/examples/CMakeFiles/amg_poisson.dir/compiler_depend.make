# Empty compiler generated dependencies file for amg_poisson.
# This may be replaced when dependencies are built.
