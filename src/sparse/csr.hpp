#pragma once
// Compressed Sparse Row substrate: the storage format of every sparse
// baseline (cuSPARSE-class SpMV / SpGEMM) and the input format from which
// the MMU-oriented formats (DASP groups, mBSR blocks) are built.

#include <cstdint>
#include <span>
#include <vector>

namespace cubie::sparse {

struct Coo {
  int rows = 0, cols = 0;
  std::vector<int> row;
  std::vector<int> col;
  std::vector<double> val;

  std::size_t nnz() const { return val.size(); }
};

struct Csr {
  int rows = 0, cols = 0;
  std::vector<int> row_ptr;   // size rows + 1
  std::vector<int> col_idx;   // size nnz, column-sorted within each row
  std::vector<double> vals;   // size nnz

  std::size_t nnz() const { return vals.size(); }
  int row_nnz(int r) const { return row_ptr[static_cast<std::size_t>(r) + 1] - row_ptr[static_cast<std::size_t>(r)]; }
  bool structurally_valid() const;  // monotone row_ptr, in-range sorted cols
};

// Build CSR from COO (duplicates are summed; columns sorted per row).
Csr csr_from_coo(const Coo& coo);

Csr transpose(const Csr& a);

// Naive CPU serial SpMV, the paper's ground truth (Section 8):
//   y_i = sum_k A_ik * x_k accumulated left-to-right with plain (unfused)
//   multiply-then-add per element, i.e. the most naive serial code.
std::vector<double> spmv_serial(const Csr& a, std::span<const double> x);

// CPU serial SpGEMM reference (row-by-row gather, deterministic order).
Csr spgemm_serial(const Csr& a, const Csr& b);

// Dense serial references used by GEMM / GEMV ground truth.
// C (m x n) = A (m x k) * B (k x n), row-major, naive sequential-k loop.
void gemm_serial(int m, int n, int k, std::span<const double> a,
                 std::span<const double> b, std::span<double> c);
void gemv_serial(int m, int n, std::span<const double> a,
                 std::span<const double> x, std::span<double> y);

}  // namespace cubie::sparse
