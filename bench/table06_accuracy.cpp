// Table 6: FP64 numerical errors of every implementation variant against
// the naive CPU serial ground truth, one representative case per workload.
// BFS is excluded (no floating-point computation). TC and CC are reported
// together because they are numerically identical by construction - exactly
// the empirical finding of the paper.
//
// Note on GPUs: the paper reports H200 and B200 columns measured on real
// silicon, which differ slightly due to library-version differences in the
// baselines; this reproduction's arithmetic is deterministic and device-
// independent, so one column applies to all device models (EXPERIMENTS.md).

#include "bench_util.hpp"

#include <iostream>

int main(int argc, char** argv) {
  using namespace cubie;
  auto bench = benchutil::bench_init(
      argc, argv, "table06_accuracy",
      "Table 6: FP64 numerical error vs. CPU serial reference");
  const int s = bench.scale;
  std::cout << "=== Table 6: FP64 numerical error vs. CPU serial reference "
               "===\n\n";
  // The error analysis covers the floating-point workloads only.
  engine::Plan plan = engine::Plan::representative(s);
  for (const auto& w : bench.suite()) {
    if (w->is_floating_point()) plan.workloads.push_back(w->name());
  }
  bench.warm(plan);

  common::Table t({"Workload", "n", "Baseline avg", "Baseline max",
                   "TC/CC avg", "TC/CC max", "CC-E avg", "CC-E max"});
  for (const auto& w : bench.suite()) {
    if (!w->is_floating_point()) continue;  // BFS excluded, as in the paper
    const auto tc_case = w->cases(s)[w->representative_case()];
    const auto ref = w->reference(tc_case);

    auto err_of = [&](core::Variant v) {
      const auto& out = bench.run(*w, v, tc_case);
      const auto e = common::error_stats(out.values, ref);
      auto& rec = bench.record(w->name(), core::variant_name(v), "",
                               tc_case.label);
      rec.set("avg_err", e.avg);
      rec.set("max_err", e.max);
      rec.set("n", static_cast<double>(e.n));
      return e;
    };
    const auto tc_err = err_of(core::Variant::TC);
    // Verify the TC == CC invariant rather than assuming it.
    const auto cc_err = err_of(core::Variant::CC);
    if (tc_err.avg != cc_err.avg || tc_err.max != cc_err.max) {
      std::cout << "WARNING: TC and CC errors differ for " << w->name()
                << " - invariant violation!\n";
    }
    std::string base_avg = "-", base_max = "-", cce_avg = "-", cce_max = "-";
    if (w->has_baseline()) {
      const auto e = err_of(core::Variant::Baseline);
      base_avg = common::fmt_sci(e.avg);
      base_max = common::fmt_sci(e.max);
    }
    if (w->cce_distinct()) {
      const auto e = err_of(core::Variant::CCE);
      cce_avg = common::fmt_sci(e.avg);
      cce_max = common::fmt_sci(e.max);
    }
    t.add_row({w->name(), std::to_string(ref.size()), base_avg, base_max,
               common::fmt_sci(tc_err.avg), common::fmt_sci(tc_err.max),
               cce_avg, cce_max});
  }
  t.print(std::cout);
  std::cout << "\nCSV (all_error.csv format):\n";
  t.print_csv(std::cout);
  bench.capture("all_error", t);
  return bench.finish();
}
