#include "telemetry/sinks.hpp"

#include "common/table.hpp"
#include "telemetry/metrics_registry.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <map>
#include <set>
#include <utility>

namespace cubie::telemetry {

using report::Json;

Json event_to_json(const Event& e) {
  Json j = Json::object();
  j["kind"] = Json::string(event_kind_name(e.kind));
  j["seq"] = Json::number(static_cast<double>(e.seq));
  j["tid"] = Json::number(e.tid);
  j["t_s"] = Json::number(e.t_s);
  if (!e.name.empty()) j["name"] = Json::string(e.name);
  if (!e.source.empty()) j["source"] = Json::string(e.source);
  if (!e.status.empty()) j["status"] = Json::string(e.status);
  if (!e.detail.empty()) j["detail"] = Json::string(e.detail);
  // Cubie-Flight correlation: distinct keys, never folded into `detail`
  // (detail stays human-readable context only).
  if (!e.trace_id.empty()) j["trace_id"] = Json::string(e.trace_id);
  if (!e.span_id.empty()) j["span_id"] = Json::string(e.span_id);
  if (!e.request_id.empty()) j["request_id"] = Json::string(e.request_id);
  if (e.wall_s >= 0.0) j["wall_s"] = Json::number(e.wall_s);
  if (e.modeled_s >= 0.0) j["modeled_s"] = Json::number(e.modeled_s);
  // count is meaningful for plan size, queue depth after an enqueue, and —
  // so overload diagnosis works from the event stream alone — the queue
  // depth observed at the moment of a rejection.
  if (e.kind == EventKind::PlanStart || e.kind == EventKind::RequestQueued ||
      e.kind == EventKind::RequestRejected)
    j["count"] = Json::number(static_cast<double>(e.count));
  if (e.ok >= 0) j["ok"] = Json::boolean(e.ok != 0);
  return j;
}

// ---------------------------------------------------------------------------
// JsonlSink.

JsonlSink::JsonlSink(const std::string& path, const std::string& tool)
    : os_(path, std::ios::trunc) {
  if (!os_) return;
  Json header = Json::object();
  header["schema_version"] = Json::number(kEventSchemaVersion);
  header["kind"] = Json::string("cubie-events");
  header["tool"] = Json::string(tool);
  os_ << header.dump(-1) << '\n';
}

void JsonlSink::on_event(const Event& e) {
  if (!os_) return;
  os_ << event_to_json(e).dump(-1) << '\n';
}

void JsonlSink::flush() {
  if (os_) os_.flush();
}

// ---------------------------------------------------------------------------
// ChromeTraceSink.

ChromeTraceSink::ChromeTraceSink(std::string path) : path_(std::move(path)) {}

void ChromeTraceSink::on_event(const Event& e) { events_.push_back(e); }

namespace {

Json trace_common(const char* ph, const std::string& name, double ts_us,
                  int tid) {
  Json j = Json::object();
  j["name"] = Json::string(name);
  j["ph"] = Json::string(ph);
  j["ts"] = Json::number(ts_us);
  j["pid"] = Json::number(0);
  j["tid"] = Json::number(tid);
  return j;
}

Json slice(const std::string& name, const char* cat, double t0_s, double t1_s,
           int tid) {
  Json j = trace_common("X", name, t0_s * 1e6, tid);
  j["cat"] = Json::string(cat);
  j["dur"] = Json::number(std::max(0.0, (t1_s - t0_s) * 1e6));
  return j;
}

Json instant(const std::string& name, const Event& e) {
  Json j = trace_common("i", name, e.t_s * 1e6, e.tid);
  j["s"] = Json::string("t");  // thread-scoped
  return j;
}

}  // namespace

void ChromeTraceSink::flush() {
  // A pending cell_start / span_open, waiting for its closing event.
  struct Open {
    EventKind kind;
    std::string name;
    double t_s;
  };
  std::map<int, std::vector<Open>> stacks;
  std::set<int> tids;
  double last_t = 0.0;

  Json evs = Json::array();
  {
    Json meta = trace_common("M", "process_name", 0.0, 0);
    Json args = Json::object();
    args["name"] = Json::string("cubie");
    meta["args"] = std::move(args);
    evs.push_back(std::move(meta));
  }

  // Pop the innermost pending open of `kind` with this name. Searching from
  // the top tolerates the Tracer's implicit closes (out-of-order span
  // destruction unwinds through intermediate nodes).
  auto pop_open = [&](int tid, EventKind kind, const std::string& name,
                      Open* out) {
    auto& st = stacks[tid];
    for (auto it = st.rbegin(); it != st.rend(); ++it) {
      if (it->kind == kind && it->name == name) {
        *out = *it;
        st.erase(std::next(it).base());
        return true;
      }
    }
    return false;
  };

  for (const Event& e : events_) {
    tids.insert(e.tid);
    last_t = std::max(last_t, e.t_s);
    switch (e.kind) {
      case EventKind::CellStart:
        stacks[e.tid].push_back({EventKind::CellStart, e.name, e.t_s});
        break;
      case EventKind::SpanOpen:
        stacks[e.tid].push_back({EventKind::SpanOpen, e.name, e.t_s});
        break;
      case EventKind::CellFinish: {
        Open o{EventKind::CellStart, e.name,
               e.t_s - std::max(0.0, e.wall_s)};
        pop_open(e.tid, EventKind::CellStart, e.name, &o);
        Json j = slice(e.name, "cell", o.t_s, e.t_s, e.tid);
        Json args = Json::object();
        args["source"] = Json::string(e.source);
        if (e.wall_s >= 0.0) args["wall_s"] = Json::number(e.wall_s);
        if (e.modeled_s >= 0.0) args["modeled_s"] = Json::number(e.modeled_s);
        j["args"] = std::move(args);
        evs.push_back(std::move(j));
        break;
      }
      case EventKind::SpanClose: {
        Open o{EventKind::SpanOpen, e.name, e.t_s - std::max(0.0, e.wall_s)};
        pop_open(e.tid, EventKind::SpanOpen, e.name, &o);
        evs.push_back(slice(e.name, "span", o.t_s, e.t_s, e.tid));
        break;
      }
      case EventKind::CacheLoad:
      case EventKind::CacheStore: {
        const char* what =
            e.kind == EventKind::CacheLoad ? "cache_load" : "cache_store";
        Json j = instant(std::string(what) + ":" + e.status, e);
        Json args = Json::object();
        args["key"] = Json::string(e.name);
        args["status"] = Json::string(e.status);
        j["args"] = std::move(args);
        evs.push_back(std::move(j));
        break;
      }
      case EventKind::CheckVerdict: {
        Json j = instant(e.ok == 1 ? "check_pass" : "check_FAIL", e);
        Json args = Json::object();
        args["key"] = Json::string(e.name);
        if (!e.detail.empty()) args["detail"] = Json::string(e.detail);
        j["args"] = std::move(args);
        evs.push_back(std::move(j));
        break;
      }
      case EventKind::PlanStart: {
        Json j = instant("plan_start", e);
        Json args = Json::object();
        args["cells"] = Json::number(static_cast<double>(e.count));
        j["args"] = std::move(args);
        evs.push_back(std::move(j));
        break;
      }
      // Cubie-Serve request lifecycle: started/finished bracket a
      // per-worker-lane "request" slice (engine cell slices nest beneath
      // it); admission and rejection show as instant markers.
      case EventKind::RequestStarted:
        stacks[e.tid].push_back({EventKind::RequestStarted, e.name, e.t_s});
        break;
      case EventKind::RequestFinished: {
        Open o{EventKind::RequestStarted, e.name,
               e.t_s - std::max(0.0, e.wall_s)};
        pop_open(e.tid, EventKind::RequestStarted, e.name, &o);
        Json j = slice(e.name, "request", o.t_s, e.t_s, e.tid);
        Json args = Json::object();
        // request_id and trace_id are dedicated fields (detail is only a
        // human-readable echo); older event logs without request_id fall
        // back to detail for the same value.
        const std::string& rid = e.request_id.empty() ? e.detail : e.request_id;
        if (!rid.empty()) args["request_id"] = Json::string(rid);
        if (!e.trace_id.empty()) args["trace_id"] = Json::string(e.trace_id);
        if (e.wall_s >= 0.0) args["wall_s"] = Json::number(e.wall_s);
        if (e.ok >= 0) args["ok"] = Json::boolean(e.ok != 0);
        j["args"] = std::move(args);
        evs.push_back(std::move(j));
        break;
      }
      case EventKind::RequestAccepted:
      case EventKind::RequestQueued:
      case EventKind::RequestRejected: {
        const char* what = e.kind == EventKind::RequestAccepted
                               ? "request_accepted"
                               : e.kind == EventKind::RequestQueued
                                     ? "request_queued"
                                     : "request_rejected";
        Json j = instant(std::string(what) + ":" + e.name, e);
        Json args = Json::object();
        const std::string& rid = e.request_id.empty() ? e.detail : e.request_id;
        if (!rid.empty()) args["request_id"] = Json::string(rid);
        if (!e.trace_id.empty()) args["trace_id"] = Json::string(e.trace_id);
        if (e.kind == EventKind::RequestQueued ||
            e.kind == EventKind::RequestRejected)
          args["queue_depth"] = Json::number(static_cast<double>(e.count));
        if (e.kind == EventKind::RequestRejected)
          args["code"] = Json::string(e.source);
        j["args"] = std::move(args);
        evs.push_back(std::move(j));
        break;
      }
    }
  }

  // Close anything still open (mid-stream flush on an error unwind) at the
  // last seen timestamp so the timeline stays loadable.
  for (auto& [tid, st] : stacks) {
    for (auto it = st.rbegin(); it != st.rend(); ++it) {
      const char* cat = it->kind == EventKind::CellStart ? "cell"
                        : it->kind == EventKind::RequestStarted ? "request"
                                                                : "span";
      Json j = slice(it->name, cat, it->t_s, last_t, tid);
      Json args = Json::object();
      args["unfinished"] = Json::boolean(true);
      j["args"] = std::move(args);
      evs.push_back(std::move(j));
    }
  }

  for (int tid : tids) {
    Json meta = trace_common("M", "thread_name", 0.0, tid);
    Json args = Json::object();
    args["name"] = Json::string(tid == 0 ? std::string("main")
                                         : "worker-" + std::to_string(tid));
    meta["args"] = std::move(args);
    evs.push_back(std::move(meta));
  }

  Json root = Json::object();
  root["traceEvents"] = std::move(evs);
  root["displayTimeUnit"] = Json::string("ms");

  std::ofstream os(path_, std::ios::trunc);
  if (!os) {
    std::cerr << "telemetry: cannot write trace file " << path_ << '\n';
    return;
  }
  os << root.dump(-1) << '\n';
}

// ---------------------------------------------------------------------------
// ProgressSink.

ProgressSink::ProgressSink(std::ostream& os, std::string label, int jobs)
    : os_(&os), label_(std::move(label)), jobs_(std::max(1, jobs)) {}

void ProgressSink::on_event(const Event& e) {
  switch (e.kind) {
    case EventKind::PlanStart:
      total_ += e.count;
      print_line(e.t_s, true);
      break;
    case EventKind::CellFinish: {
      // With a plan total, finishes beyond it are post-plan memoized
      // re-reads (per-GPU repricing loops), not progress.
      if (total_ > 0 && done_ >= total_) break;
      ++done_;
      if (e.source != "compute") ++hits_;
      if (e.wall_s >= 0.0) {
        ewma_wall_s_ = ewma_wall_s_ == 0.0
                           ? e.wall_s
                           : 0.8 * ewma_wall_s_ + 0.2 * e.wall_s;
      }
      print_line(e.t_s, done_ == total_);
      break;
    }
    default:
      break;
  }
}

void ProgressSink::print_line(double now_s, bool force) {
  // Redraw at most ~10x/s: the line is cosmetic, the events are the record.
  if (!force && last_print_s_ >= 0.0 && now_s - last_print_s_ < 0.1) return;
  last_print_s_ = now_s;
  std::string line = "[" + label_ + "] " + std::to_string(done_);
  if (total_ > 0) line += "/" + std::to_string(total_);
  line += " cells";
  if (done_ > 0) {
    line += "  " +
            common::fmt_double(100.0 * static_cast<double>(hits_) /
                                   static_cast<double>(done_),
                               0) +
            "% hits";
  }
  if (total_ > done_ && ewma_wall_s_ > 0.0) {
    const double eta_s = ewma_wall_s_ *
                         static_cast<double>(total_ - done_) /
                         static_cast<double>(jobs_);
    line += "  eta " + common::fmt_double(eta_s, 1) + "s";
  }
  const std::size_t width = line.size();
  if (width < line_width_) line.append(line_width_ - width, ' ');
  line_width_ = std::max(line_width_, width);
  *os_ << '\r' << line << std::flush;
  wrote_ = true;
}

void ProgressSink::flush() {
  if (!wrote_) return;
  print_line(last_print_s_, true);
  *os_ << '\n' << std::flush;
  wrote_ = false;
}

// ---------------------------------------------------------------------------
// SinkSet / install.

void SinkSet::add(std::shared_ptr<Sink> s) {
  if (!s) return;
  bus().add_sink(s);
  sinks_.push_back(std::move(s));
}

void SinkSet::flush() {
  for (const auto& s : sinks_) s->flush();
}

void SinkSet::release() {
  for (const auto& s : sinks_) bus().remove_sink(s.get());
  sinks_.clear();
}

bool progress_enabled(bool progress, bool force) {
  if (!progress) return false;
  if (force) return true;
  return ::isatty(::fileno(stderr)) == 1;
}

SinkSet install(const SinkConfig& cfg) {
  SinkSet set;
  if (!cfg.events_path.empty()) {
    auto s = std::make_shared<JsonlSink>(cfg.events_path, cfg.tool);
    if (s->ok()) {
      set.add(std::move(s));
    } else {
      std::cerr << cfg.tool << ": cannot open " << cfg.events_path
                << " for --events\n";
    }
  }
  if (!cfg.trace_path.empty())
    set.add(std::make_shared<ChromeTraceSink>(cfg.trace_path));
  if (!cfg.metrics_path.empty())
    set.add(std::make_shared<MetricsSink>(nullptr, cfg.metrics_path));
  if (progress_enabled(cfg.progress, cfg.progress_force))
    set.add(std::make_shared<ProgressSink>(std::cerr, cfg.tool, cfg.jobs));
  return set;
}

}  // namespace cubie::telemetry
