// Cross-module integration tests: the figure pipelines end-to-end on
// reduced inputs - workload sweeps priced on device models, EDP orderings,
// roofline consistency, error-table invariants, and suite-PCA structure.

#include "analysis/features.hpp"
#include "analysis/pca.hpp"
#include "common/metrics.hpp"
#include "core/kernels.hpp"
#include "core/suite_proxies.hpp"
#include "sim/model.hpp"
#include "sim/power.hpp"
#include "sim/roofline.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

namespace cubie {
namespace {

using core::Variant;
constexpr int kScale = 16;

TEST(Integration, Figure4ShapesAtTestScale) {
  // The headline orderings must hold even at heavy reduction: SpGEMM TC
  // beats its baseline; FFT TC loses to cuFFT; on H200 TC GEMM wins.
  const sim::AnalyticModel h200(sim::h200());
  auto speedup = [&](const char* name) {
    const auto w = core::make_workload(name);
    const auto tc = w->cases(kScale)[w->representative_case()];
    const double t_tc = h200.predict(w->run(Variant::TC, tc).profile).time_s;
    const double t_base =
        h200.predict(w->run(Variant::Baseline, tc).profile).time_s;
    return t_base / t_tc;
  };
  EXPECT_GT(speedup("SpGEMM"), 1.5);
  EXPECT_GT(speedup("GEMM"), 1.2);
  EXPECT_LT(speedup("FFT"), 1.0);  // the paper's exception
  EXPECT_GT(speedup("Scan"), 1.0);
  EXPECT_GT(speedup("Reduction"), 1.0);
}

TEST(Integration, Figure5CcNeverFasterThanTc) {
  for (const auto& w : core::make_suite()) {
    const auto tc_case = w->cases(kScale)[w->representative_case()];
    const auto tc = w->run(Variant::TC, tc_case);
    const auto cc = w->run(Variant::CC, tc_case);
    for (auto gpu : sim::all_gpus()) {
      const sim::AnalyticModel model(sim::spec_for(gpu));
      EXPECT_LE(model.predict(tc.profile).time_s,
                model.predict(cc.profile).time_s * 1.001)
          << w->name() << " on " << sim::gpu_name(gpu);
    }
  }
}

TEST(Integration, Figure6OnlySpmvBenefitsFromEssential) {
  const sim::AnalyticModel h200(sim::h200());
  std::map<std::string, double> ratio;
  for (const auto& w : core::make_suite()) {
    if (!w->cce_distinct()) continue;
    // SpMV: use spmsrts (irregular rows) - the padding CC-E removes is
    // negligible on the block-regular representative matrix.
    const std::size_t ci = w->name() == "SpMV" ? 0 : w->representative_case();
    const auto tc_case = w->cases(kScale)[ci];
    const double t_tc = h200.predict(w->run(Variant::TC, tc_case).profile).time_s;
    const double t_cce =
        h200.predict(w->run(Variant::CCE, tc_case).profile).time_s;
    ratio[w->name()] = t_tc / t_cce;  // CC-E speedup over TC
  }
  EXPECT_GT(ratio["SpMV"], 1.0);       // redundancy removal helps
  EXPECT_LE(ratio["Scan"], 0.7);       // essential scalar path far slower
  EXPECT_LE(ratio["Reduction"], 1.0);
  EXPECT_LE(ratio["GEMV"], 1.0);
  EXPECT_NEAR(ratio["SpGEMM"], 1.0, 0.05);
  EXPECT_NEAR(ratio["BFS"], 1.0, 0.05);
}

TEST(Integration, Figure7TcReducesEdpWhereItWins) {
  const sim::AnalyticModel h200(sim::h200());
  for (const char* name : {"GEMM", "Scan", "Reduction", "SpMV", "SpGEMM"}) {
    const auto w = core::make_workload(name);
    const auto tc_case = w->cases(kScale)[w->representative_case()];
    const double edp_tc = h200.predict(w->run(Variant::TC, tc_case).profile).edp;
    const double edp_base =
        h200.predict(w->run(Variant::Baseline, tc_case).profile).edp;
    EXPECT_LT(edp_tc, edp_base) << name;
  }
}

TEST(Integration, Figure8TraceEnergyConsistentWithModel) {
  const sim::AnalyticModel h200(sim::h200());
  const auto w = core::make_workload("Stencil");
  const auto tc_case = w->cases(kScale)[w->representative_case()];
  const auto pred = h200.predict(w->run(Variant::TC, tc_case).profile);
  sim::PowerTraceOptions opts;
  const auto trace = sim::synthesize_power_trace(sim::h200(), pred, opts);
  const double e = sim::trace_energy_j(trace);
  EXPECT_GT(e, 0.0);
  EXPECT_LT(e, sim::h200().tdp_w * opts.duration_s);
}

TEST(Integration, Figure9PointsRespectRoofline) {
  const sim::AnalyticModel h200(sim::h200());
  const sim::Roofline roof(sim::h200());
  for (const auto& w : core::make_suite()) {
    if (!w->is_floating_point()) continue;
    const auto tc_case = w->cases(kScale)[w->representative_case()];
    for (auto v : {Variant::TC, Variant::CC}) {
      const auto out = w->run(v, tc_case);
      const auto pred = h200.predict(out.profile);
      const auto pt = roof.point("x", out.profile, pred);
      EXPECT_LE(pt.achieved_flops, pt.attainable_flops * 1.001)
          << w->name() << "/" << core::variant_name(v);
      EXPECT_GT(pt.arithmetic_intensity, 0.0) << w->name();
    }
  }
}

TEST(Integration, Table6InvariantsAcrossSuite) {
  for (const auto& w : core::make_suite()) {
    if (!w->is_floating_point()) continue;
    const auto tc_case = w->cases(kScale)[0];
    const auto ref = w->reference(tc_case);
    const auto tc = w->run(Variant::TC, tc_case);
    const auto cc = w->run(Variant::CC, tc_case);
    const auto e_tc = common::error_stats(tc.values, ref);
    const auto e_cc = common::error_stats(cc.values, ref);
    EXPECT_EQ(e_tc.avg, e_cc.avg) << w->name();
    EXPECT_EQ(e_tc.max, e_cc.max) << w->name();
  }
}

TEST(Integration, Figure11CubieSpansTensorAxis) {
  const sim::AnalyticModel h200(sim::h200());
  std::vector<analysis::KernelMetrics> ms;
  for (const auto& w : core::make_suite()) {
    const auto tc_case = w->cases(kScale)[w->representative_case()];
    const auto out = w->run(Variant::TC, tc_case);
    ms.push_back(analysis::extract_metrics("Cubie/" + w->name(), "Cubie",
                                           out.profile, h200.predict(out.profile)));
  }
  for (const auto& r : core::run_suite_proxies()) {
    ms.push_back(analysis::extract_metrics(r.name, r.suite, r.profile,
                                           h200.predict(r.profile)));
  }
  auto d = analysis::metrics_dataset(ms);
  analysis::standardize(d);
  const auto res = analysis::pca(d, 2);
  EXPECT_GT(res.explained_ratio[0] + res.explained_ratio[1], 0.5);
  // Cubie kernels are the only ones with tensor-pipe usage, so the Cubie
  // point cloud must have strictly larger dispersion than the vector suites.
  auto dispersion = [&](const std::string& suite) {
    double cx = 0, cy = 0;
    int n = 0;
    for (std::size_t i = 0; i < ms.size(); ++i) {
      if (ms[i].suite != suite) continue;
      cx += res.coord(i, 0);
      cy += res.coord(i, 1);
      ++n;
    }
    cx /= n;
    cy /= n;
    double dist = 0;
    for (std::size_t i = 0; i < ms.size(); ++i) {
      if (ms[i].suite != suite) continue;
      dist += std::hypot(res.coord(i, 0) - cx, res.coord(i, 1) - cy);
    }
    return dist / n;
  };
  EXPECT_GT(dispersion("Cubie"), dispersion("Rodinia"));
  EXPECT_GT(dispersion("Cubie"), dispersion("SHOC"));
}

TEST(Integration, CrossGpuPortability) {
  // Observation 3: where TC wins on one generation, it wins on all three
  // (check kernels the paper reports as consistently accelerated).
  for (const char* name : {"GEMM", "Scan", "SpMV", "SpGEMM", "BFS"}) {
    const auto w = core::make_workload(name);
    const auto tc_case = w->cases(kScale)[w->representative_case()];
    const auto tc = w->run(Variant::TC, tc_case);
    const auto base = w->run(Variant::Baseline, tc_case);
    for (auto gpu : sim::all_gpus()) {
      const sim::AnalyticModel model(sim::spec_for(gpu));
      EXPECT_GT(model.predict(base.profile).time_s /
                    model.predict(tc.profile).time_s,
                0.95)
          << name << " on " << sim::gpu_name(gpu);
    }
  }
}

}  // namespace
}  // namespace cubie
