# Empty dependencies file for fig08_power.
# This may be replaced when dependencies are built.
