#include "serve/service.hpp"

#include "common/metrics.hpp"
#include "common/perf.hpp"
#include "sim/model.hpp"
#include "sim/model_registry.hpp"

#include <algorithm>
#include <stdexcept>

#include <cstdlib>
#include <utility>
#include <vector>

namespace cubie::serve {
namespace {

std::optional<core::Variant> parse_variant(const std::string& s) {
  if (s == "Baseline") return core::Variant::Baseline;
  if (s == "TC") return core::Variant::TC;
  if (s == "CC") return core::Variant::CC;
  if (s == "CC-E" || s == "CCE") return core::Variant::CCE;
  return std::nullopt;
}

std::optional<sim::Gpu> parse_gpu(const std::string& s) {
  if (s == "A100") return sim::Gpu::A100;
  if (s == "H200") return sim::Gpu::H200;
  if (s == "B200") return sim::Gpu::B200;
  return std::nullopt;
}

bool fail(std::string* error, std::string msg) {
  if (error) *error = std::move(msg);
  return false;
}

// Resolve the spec's selector strings against the engine's suite. All-or-
// nothing: any unknown name fails the whole request (a serving layer must
// not silently narrow a plan).
struct Resolved {
  const core::Workload* w = nullptr;
  std::vector<core::Variant> variants;
  std::vector<core::TestCase> cases;
  std::vector<std::size_t> case_ids;
  std::vector<sim::Gpu> gpus;
};

bool resolve(engine::ExperimentEngine& eng, const RunSpec& spec, Resolved& r,
             std::string* error) {
  r.w = eng.workload(spec.workload);
  if (r.w == nullptr)
    return fail(error,
                "unknown workload '" + spec.workload + "' (try: cubie list)");

  if (spec.variant == "all") {
    r.variants = core::available_variants(*r.w);
  } else if (auto v = parse_variant(spec.variant)) {
    r.variants.push_back(*v);
  } else {
    return fail(error, "bad variant '" + spec.variant + "'");
  }

  r.cases = r.w->cases(spec.scale);
  if (spec.case_sel == "all") {
    for (std::size_t i = 0; i < r.cases.size(); ++i) r.case_ids.push_back(i);
  } else if (spec.case_sel == "rep") {
    r.case_ids.push_back(r.w->representative_case());
  } else {
    const int idx = std::atoi(spec.case_sel.c_str());
    if (idx < 0 || static_cast<std::size_t>(idx) >= r.cases.size())
      return fail(error, "case index '" + spec.case_sel +
                             "' out of range (0.." +
                             std::to_string(r.cases.size() - 1) + ")");
    r.case_ids.push_back(static_cast<std::size_t>(idx));
  }

  if (spec.gpu == "all") {
    r.gpus = sim::all_gpus();
  } else if (auto g = parse_gpu(spec.gpu)) {
    r.gpus.push_back(*g);
  } else {
    return fail(error, "bad gpu '" + spec.gpu + "'");
  }

  if (sim::model_backend_description(spec.model).empty()) {
    std::string msg = "unknown model backend '" + spec.model + "'";
    if (const std::string hint = sim::suggest_model_backend(spec.model);
        !hint.empty()) {
      msg += " (did you mean '" + hint + "'?)";
    }
    return fail(error, msg + " (try: cubie list)");
  }
  return true;
}

// Factory construction for a validated backend name; the throw is a
// programming error (callers resolve() or flag-validate first).
std::unique_ptr<const sim::DeviceModel> priced_model(const std::string& name,
                                                     sim::Gpu gpu) {
  auto m = sim::make_device_model(name, sim::spec_for(gpu));
  if (!m) throw std::invalid_argument("unknown model backend '" + name + "'");
  return m;
}

}  // namespace

std::string spec_key(const RunSpec& spec) {
  std::string k = spec.workload + "/" + spec.variant + "/" + spec.case_sel +
                  "/" + spec.gpu + "/s" + std::to_string(spec.scale);
  if (spec.model != "analytic") k += "/" + spec.model;
  return k;
}

std::optional<report::MetricsReport> run_report(
    engine::ExperimentEngine& eng, const RunSpec& spec, std::string* error,
    check::ConformanceReport* conformance) {
  Resolved r;
  if (!resolve(eng, spec, r, error)) return std::nullopt;

  // Warm every unique cell through a Plan first: --jobs parallelism applies
  // and concurrent identical requests single-flight on the same cells.
  engine::Plan plan;
  plan.scale = spec.scale;
  plan.workloads = {r.w->name()};
  plan.variants = r.variants;
  plan.cases = engine::CaseSet::Explicit;
  plan.case_indices = r.case_ids;
  plan.gpus = r.gpus;
  eng.execute(plan);

  report::MetricsReport rep;
  rep.tool = "cubie_run";
  rep.title = "cubie run " + r.w->name();
  rep.scale_divisor = spec.scale;
  for (std::size_t ci : r.case_ids) {
    const auto& tc = r.cases[ci];
    std::vector<double> ref;
    if (spec.errors) ref = r.w->reference(tc);
    for (auto v : r.variants) {
      const auto& out = eng.run(*r.w, v, tc, spec.scale);
      for (auto g : r.gpus) {
        const auto model = priced_model(spec.model, g);
        const auto pred = model->predict(out.profile);
        auto& rec = rep.add_record(r.w->name(), core::variant_name(v),
                                   sim::gpu_name(g), tc.label);
        rec.set(perf::perf_metric_name(*r.w),
                perf::perf_metric(*r.w, out.profile, pred.time_s) / 1e9);
        rec.set("time_ms", pred.time_s * 1e3);
        rec.set("power_w", pred.avg_power_w);
        rec.set("energy_j", pred.energy_j);
        rec.set("edp", pred.edp);
        if (spec.errors) {
          const auto e = common::error_stats(out.values, ref);
          rec.set("avg_err", e.avg);
          rec.set("max_err", e.max);
        }
      }
    }
  }

  if (spec.check) {
    auto conf = check::verify_cells(eng, eng.expand(plan));
    const auto t = conf.to_table();
    rep.tables.push_back({"conformance", t.header(), t.data()});
    if (conformance) *conformance = std::move(conf);
  }
  return rep;
}

void add_suite_perf_records(engine::ExperimentEngine& eng, int scale,
                            report::MetricsReport& rep,
                            const std::string& model_name) {
  for (const auto& w : eng.suite()) {
    const auto variants = core::available_variants(*w);
    const auto cases = w->cases(scale);
    for (auto gpu : sim::all_gpus()) {
      const auto model = priced_model(model_name, gpu);
      for (const auto& tc : cases) {
        for (auto v : variants) {
          const auto& out = eng.run(*w, v, tc, scale);
          const auto pred = model->predict(out.profile);
          auto& rec = rep.add_record(w->name(), core::variant_name(v),
                                     sim::gpu_name(gpu), tc.label);
          rec.set(perf::perf_metric_name(*w),
                  perf::perf_metric(*w, out.profile, pred.time_s) / 1e9);
          rec.set("time_ms", pred.time_s * 1e3);
          rec.set("dram_bytes", out.profile.dram_bytes);
          rec.set("useful_flops", out.profile.useful_flops);
          rec.set("launches", out.profile.launches);
        }
      }
    }
  }
}

report::MetricsReport suite_report(engine::ExperimentEngine& eng, int scale,
                                   const std::string& model) {
  eng.execute(engine::Plan::suite(scale));
  report::MetricsReport rep;
  rep.tool = "fig03_perf";
  rep.title = "Figure 3: performance of Baseline/TC/CC/CC-E across workloads";
  rep.scale_divisor = scale;
  add_suite_perf_records(eng, scale, rep, model);
  return rep;
}

std::optional<report::MetricsReport> suite_shard_report(
    engine::ExperimentEngine& eng, int scale,
    const std::vector<ShardCell>& cells, std::string* error,
    const std::string& model_name) {
  if (sim::model_backend_description(model_name).empty()) {
    if (error) *error = "unknown model backend '" + model_name + "'";
    return std::nullopt;
  }
  // Validate every coordinate before executing anything (all-or-nothing,
  // like resolve()), and index the shard for the canonical sweep below.
  struct Wanted {
    const core::Workload* w = nullptr;
    core::Variant v = core::Variant::TC;
    std::size_t case_index = 0;
  };
  std::vector<Wanted> wanted;
  wanted.reserve(cells.size());
  for (const auto& c : cells) {
    const auto* w = eng.workload(c.workload);
    if (w == nullptr) {
      if (error) *error = "unknown workload '" + c.workload + "'";
      return std::nullopt;
    }
    const auto v = parse_variant(c.variant);
    if (!v) {
      if (error) *error = "bad variant '" + c.variant + "'";
      return std::nullopt;
    }
    const auto avail = core::available_variants(*w);
    if (std::find(avail.begin(), avail.end(), *v) == avail.end()) {
      if (error)
        *error = "variant '" + c.variant + "' not available for '" +
                 w->name() + "'";
      return std::nullopt;
    }
    const std::size_t n_cases = w->cases(scale).size();
    if (c.case_index < 0 ||
        static_cast<std::size_t>(c.case_index) >= n_cases) {
      if (error)
        *error = "case index " + std::to_string(c.case_index) +
                 " out of range for '" + w->name() + "' (0.." +
                 std::to_string(n_cases - 1) + ")";
      return std::nullopt;
    }
    wanted.push_back({w, *v, static_cast<std::size_t>(c.case_index)});
  }

  // Warm the shard's cells through the engine first so --jobs parallelism
  // applies and concurrent shards single-flight on shared cells.
  std::vector<engine::Cell> plan_cells;
  plan_cells.reserve(wanted.size());
  for (const auto& c : wanted) {
    engine::Cell cell;
    cell.workload = c.w;
    cell.variant = c.v;
    cell.test_case = c.w->cases(scale)[c.case_index];
    cell.scale = scale;
    cell.key = engine::cell_key(c.w->name(), c.v, cell.test_case, scale,
                                eng.options().model);
    plan_cells.push_back(std::move(cell));
  }
  eng.execute(plan_cells);

  // Emit the shard's records by walking the full canonical suite order
  // (workload -> gpu -> case -> variant, exactly add_suite_perf_records'
  // loop) and keeping only the requested coordinates: the concatenation of
  // disjoint shards in canonical order is then the full suite record list.
  report::MetricsReport rep;
  rep.tool = "fig03_perf";
  rep.title = "Figure 3: performance of Baseline/TC/CC/CC-E across workloads";
  rep.scale_divisor = scale;
  auto in_shard = [&](const core::Workload* w, std::size_t ci,
                      core::Variant v) {
    for (const auto& c : wanted)
      if (c.w == w && c.case_index == ci && c.v == v) return true;
    return false;
  };
  for (const auto& w : eng.suite()) {
    const auto variants = core::available_variants(*w);
    const auto cases = w->cases(scale);
    for (auto gpu : sim::all_gpus()) {
      const auto model = priced_model(model_name, gpu);
      for (std::size_t ci = 0; ci < cases.size(); ++ci) {
        for (auto v : variants) {
          if (!in_shard(w.get(), ci, v)) continue;
          const auto& out = eng.run(*w, v, cases[ci], scale);
          const auto pred = model->predict(out.profile);
          auto& rec = rep.add_record(w->name(), core::variant_name(v),
                                     sim::gpu_name(gpu), cases[ci].label);
          rec.set(perf::perf_metric_name(*w),
                  perf::perf_metric(*w, out.profile, pred.time_s) / 1e9);
          rec.set("time_ms", pred.time_s * 1e3);
          rec.set("dram_bytes", out.profile.dram_bytes);
          rec.set("useful_flops", out.profile.useful_flops);
          rec.set("launches", out.profile.launches);
        }
      }
    }
  }
  return rep;
}

}  // namespace cubie::serve
