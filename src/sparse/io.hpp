#pragma once
// Matrix Market (MM) coordinate-format I/O. The paper sources its SpMV /
// SpGEMM matrices and BFS graphs from the SuiteSparse Matrix Collection,
// which distributes .mtx files in this format; the reader supports the
// subset those files use (real/pattern/integer, general/symmetric).

#include "sparse/csr.hpp"

#include <iosfwd>
#include <string>

namespace cubie::sparse {

// Parse a Matrix Market stream into COO (symmetric entries are mirrored,
// pattern entries get value 1.0). Throws std::runtime_error on malformed
// input.
Coo read_matrix_market(std::istream& in);
Coo read_matrix_market_file(const std::string& path);

// Write COO as "matrix coordinate real general".
void write_matrix_market(std::ostream& out, const Coo& coo);
void write_matrix_market_file(const std::string& path, const Coo& coo);

}  // namespace cubie::sparse
