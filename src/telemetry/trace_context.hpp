#pragma once
// Cubie-Flight trace context: request-scoped correlation for the event bus.
//
// A TraceContext is a 128-bit trace id (one request, end to end) plus a
// 64-bit span id (one hop within it), both rendered as fixed-width
// lowercase hex — 32 and 16 characters — everywhere they appear: Event
// fields, the protocol-v1 `trace` field, slowlog lines, and Prometheus
// exemplars. Ids are generated client-side (`cubie request` / `loadgen`)
// and propagated, or minted by the daemon when a request arrives without
// one, so every request can be correlated even from legacy clients.
//
// Propagation is thread-local and RAII-scoped: a TraceScope installs a
// context on the calling thread and restores the previous one when it is
// destroyed. EventBus::emit() stamps the calling thread's active context
// onto every Event whose trace_id is still empty, so instrumentation call
// sites never mention tracing at all. The ExperimentEngine captures the
// submitting thread's context before fanning a Plan out over its pool and
// re-installs it in each worker, which is what ties a cell executed on
// worker 3 back to the request that asked for it.
//
// Trace ids are random (splitmix64 over a per-thread seed), NOT part of
// event_payload(): the payload stays a pure function of the work performed,
// so the determinism identities in tests/test_telemetry.cpp are untouched.
// See docs/OBSERVABILITY.md ("Cubie-Flight").

#include <cstdint>
#include <string>

namespace cubie::telemetry {

struct TraceContext {
  std::string trace_id;  // 32 lowercase hex chars; empty = no active trace
  std::string span_id;   // 16 lowercase hex chars
  bool active() const { return !trace_id.empty(); }
};

// Fixed-width lowercase hex, locale-independent (manual nibble rendering).
std::string hex_id(std::uint64_t hi, std::uint64_t lo);  // 32 chars
std::string hex_id(std::uint64_t v);                     // 16 chars

// Fresh random ids. Never all-zero (the W3C trace-context invalid value).
std::string generate_trace_id();
std::string generate_span_id();
TraceContext make_trace_context();

// Plausibility check for ids arriving over the wire: non-empty, at most 32
// chars, all lowercase hex. (Shorter ids are accepted so hand-typed
// prefixes can round-trip through `cubie explain`.)
bool valid_trace_id(const std::string& s);

// The calling thread's active context; inactive when no scope is open.
const TraceContext& current_trace_context();

// RAII: install `ctx` on this thread, restore the previous context on
// destruction. Installing an inactive context is a no-op shadowing (events
// fall back to unstamped), which lets callers scope unconditionally.
class TraceScope {
 public:
  explicit TraceScope(TraceContext ctx);
  ~TraceScope();
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  TraceContext prev_;
};

}  // namespace cubie::telemetry
