// Figure 5: speedups of the CC replacements over the TC versions - the
// ablation isolating the compute unit under identical data structures and
// algorithms (paper Section 6.2). Values below 1.0 mean the CUDA-core
// replacement is slower.

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace cubie;
  auto bench = benchutil::bench_init(
      argc, argv, "fig05_cc_vs_tc",
      "Figure 5: CC speedup over TC (case geomean)");
  const auto rows =
      benchutil::speedup_sweep(bench, core::Variant::CC, core::Variant::TC);
  benchutil::print_speedup_table(
      "=== Figure 5: CC speedup over TC (case geomean; <1 = slower) ===",
      rows);
  benchutil::record_speedup(bench, core::Variant::CC, core::Variant::TC, rows);
  return bench.finish();
}
