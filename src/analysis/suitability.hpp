#pragma once
// MMU-suitability assessment from algorithm-level traits.
//
// The paper closes Section 4 with the open question of whether MMU
// accelerability can be inferred from the *original* algorithm, before the
// MMA transformation, "likely with compiler assistance". This module
// implements that first step: a trait vector a compiler front end could
// extract (arithmetic intensity, dense-block share, operand reuse, output
// density, constant operands, bitwise-ness) is mapped to (a) the predicted
// utilization quadrant of Figure 2 and (b) an estimated TC-over-baseline
// speedup on a given device, using the same bottleneck reasoning as the
// performance model. bench/ablation_suitability validates the predictions
// against the measured Figure 4 factors for all ten workloads.

#include "sim/device.hpp"

#include <string>

namespace cubie::analysis {

// Traits observable on the untransformed algorithm.
struct AlgorithmTraits {
  // Useful FLOPs per DRAM byte of the natural implementation.
  double arithmetic_intensity = 0.0;
  // Fraction of the computation expressible as dense blocks of the MMA
  // shape (k >= 4 contiguous); 1.0 for GEMM, ~block fill for sparse codes.
  double input_block_density = 1.0;
  // Fraction of each MMA-shaped output tile the algorithm actually needs.
  double output_utilization = 1.0;
  // Average number of MMA operands that are compile-time constants (0..2).
  double constant_operands = 0.0;
  // Average reuse of each loaded input element (GEMM: O(tile), SpMV: 1).
  double operand_reuse = 1.0;
  // Bandwidth fraction the natural (vector) layout sustains; < 1 for
  // irregular gather/scatter codes.
  double baseline_mem_regularity = 1.0;
  // Bit-level computation (BFS): routes to the b1 MMA path.
  bool bitwise = false;
};

enum class UtilizationQuadrant { I, II, III, IV };
std::string quadrant_label(UtilizationQuadrant q);

struct Assessment {
  UtilizationQuadrant quadrant = UtilizationQuadrant::I;
  // Estimated TC speedup over the vector baseline on the given device.
  double estimated_speedup = 1.0;
  // True when the estimate clears the "worth transforming" bar (> ~1.1x).
  bool recommend_mmu = false;
  std::string rationale;
};

Assessment assess_mmu_suitability(const AlgorithmTraits& t,
                                  const sim::DeviceSpec& dev);

}  // namespace cubie::analysis
