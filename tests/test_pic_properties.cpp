// Physics property tests for the Boris pusher: cyclotron rotation, E x B
// drift, time-reversal, and agreement of the MMA-batched workload with the
// serial integrator over long runs.

#include "core/kernels.hpp"
#include "pic/pic.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace cubie {
namespace {

TEST(PicPhysics, CyclotronFrequency) {
  // Uniform B = z, no E: a particle gyrates at omega_c = qB/m. The Boris
  // scheme rotates by exactly 2*atan(omega*dt/2) per step; over a full
  // period the particle returns near its start.
  pic::FieldConfig f;
  f.e0 = {0, 0, 0};
  f.e1 = {0, 0, 0};
  f.b = {0, 0, 1.0};
  f.qm = 1.0;
  f.dt = 0.05;
  pic::Particles p;
  p.resize(1);
  p.x[0] = p.y[0] = p.z[0] = 0.0;
  p.vx[0] = 1.0;
  p.vy[0] = 0.0;
  p.vz[0] = 0.0;
  // Boris effective rotation per step:
  const double theta = 2.0 * std::atan(0.5 * f.qm * f.dt);
  const int steps = static_cast<int>(std::round(2.0 * std::numbers::pi / theta));
  const double x0 = p.x[0];
  for (int s = 0; s < steps; ++s) pic::boris_push_serial(p, f);
  // After ~one period the velocity is back near (1, 0) and speed unchanged.
  EXPECT_NEAR(std::hypot(p.vx[0], p.vy[0]), 1.0, 1e-12);
  const double angle_err = std::atan2(p.vy[0], p.vx[0]);
  EXPECT_LT(std::fabs(angle_err), theta);  // within one step of closure
  EXPECT_NEAR(p.vz[0], 0.0, 1e-15);
  (void)x0;
}

TEST(PicPhysics, ExBDrift) {
  // Uniform E = x, B = z: guiding center drifts with v_d = E x B / B^2 = -y.
  pic::FieldConfig f;
  f.e0 = {0.2, 0, 0};
  f.e1 = {0, 0, 0};
  f.b = {0, 0, 1.0};
  f.dt = 0.02;
  pic::Particles p;
  p.resize(1);
  p.x[0] = p.y[0] = p.z[0] = 0.0;
  p.vx[0] = p.vy[0] = p.vz[0] = 0.0;
  const int steps = 20000;
  for (int s = 0; s < steps; ++s) pic::boris_push_serial(p, f);
  const double t_total = steps * f.dt;
  const double vd_expected = -0.2;  // (E x B)/B^2 = (0.2 x-hat x z-hat) = -0.2 y-hat
  EXPECT_NEAR(p.y[0] / t_total, vd_expected, 0.02);
  // No net drift along x or z.
  EXPECT_LT(std::fabs(p.x[0] / t_total), 0.05);
  EXPECT_LT(std::fabs(p.z[0] / t_total), 1e-12);
}

TEST(PicPhysics, FreeStreamingWithoutFields) {
  pic::FieldConfig f;
  f.e0 = {0, 0, 0};
  f.e1 = {0, 0, 0};
  f.b = {0, 0, 0};
  auto p = pic::make_particles(64, 10.0, 11);
  const auto v0x = p.vx, v0y = p.vy, v0z = p.vz;
  const auto x0 = p.x;
  const int steps = 100;
  for (int s = 0; s < steps; ++s) pic::boris_push_serial(p, f);
  for (std::size_t i = 0; i < p.size(); ++i) {
    EXPECT_DOUBLE_EQ(p.vx[i], v0x[i]);
    EXPECT_DOUBLE_EQ(p.vy[i], v0y[i]);
    EXPECT_DOUBLE_EQ(p.vz[i], v0z[i]);
    EXPECT_NEAR(p.x[i], x0[i] + steps * f.dt * v0x[i], 1e-9);
  }
}

TEST(PicPhysics, MagneticFieldDoesNoWork) {
  pic::FieldConfig f;
  f.e0 = {0, 0, 0};
  f.e1 = {0, 0, 0};
  f.b = {0.5, -1.0, 2.0};
  auto p = pic::make_particles(256, 10.0, 13);
  const double e0 = pic::kinetic_energy(p);
  for (int s = 0; s < 500; ++s) pic::boris_push_serial(p, f);
  EXPECT_NEAR(pic::kinetic_energy(p), e0, 1e-9 * e0);
}

TEST(PicWorkloadProperty, AllFiveCasesTrackSerial) {
  const auto w = core::make_workload("PiC");
  for (const auto& tc : w->cases(16)) {
    // Only the smallest two cases to keep runtime bounded.
    if (tc.dims[0] > 131072) continue;
    const auto ref = w->reference(tc);
    const auto out = w->run(core::Variant::TC, tc);
    ASSERT_EQ(out.values.size(), ref.size());
    double max_err = 0.0;
    for (std::size_t i = 0; i < ref.size(); ++i)
      max_err = std::max(max_err, std::fabs(out.values[i] - ref[i]));
    EXPECT_LT(max_err, 1e-12) << tc.label;
  }
}

TEST(PicWorkloadProperty, RotationIsTheOnlyTensorWork) {
  const auto w = core::make_workload("PiC");
  const auto tc = w->cases(16)[0];
  const auto out = w->run(core::Variant::TC, tc);
  // One MMA per 8 particles per step: 512 FLOPs each.
  const double n = static_cast<double>(tc.dims[0]);
  const double expected = 512.0 * (n / 8.0) * 4.0;  // kSteps = 4
  EXPECT_DOUBLE_EQ(out.profile.tc_flops, expected);
}

}  // namespace
}  // namespace cubie
