#pragma once
// Cubie-Cluster retry helper: a typed, deadline-aware retry policy with
// jittered exponential backoff, shared by the router's worker calls and
// `cubie request --retries N`. The schedule is a pure function of the
// policy and an injected uniform-[0,1) RNG, so tests pin the exact backoff
// sequence deterministically (no hidden clock, no global randomness).
//
// Semantics: an attempt fails -> ask next_delay_ms(elapsed) -> sleep that
// long and try again, or stop when the policy is exhausted (max_attempts
// used up, or the remaining deadline budget cannot absorb the sleep).
// Only `overloaded` responses and transport failures are worth retrying;
// the other typed codes (bad_request, internal, ...) fail identically on
// every attempt.

#include <functional>
#include <optional>
#include <string>

namespace cubie::serve {

struct RetryPolicy {
  int max_attempts = 3;      // total attempts, including the first
  double base_ms = 10.0;     // backoff before the second attempt
  double multiplier = 2.0;   // exponential growth per further retry
  double cap_ms = 2000.0;    // backoff ceiling before jitter
  // Fraction of each backoff randomized away (full-jitter style): the
  // slept delay is raw * (1 - jitter * u), u ~ U[0,1). 0 = deterministic
  // schedule, 1 = anywhere in (0, raw]. Herds of clients retrying a
  // recovering worker decorrelate instead of re-stampeding it.
  double jitter = 0.5;
  // Total budget across all attempts and sleeps (<= 0: unbounded). A
  // retry whose backoff would overrun the budget is not attempted — a
  // late answer nobody is waiting for is never worth the wait.
  double deadline_ms = 0.0;
};

// The per-call state of one retried operation. Construct once per logical
// request; call next_delay_ms after each failed attempt.
class RetrySchedule {
 public:
  using Rng = std::function<double()>;  // uniform [0,1)

  // With no RNG, a thread-local PRNG seeded once per thread is used; tests
  // inject a deterministic sequence instead.
  explicit RetrySchedule(RetryPolicy policy, Rng rng = {});

  // After a failed attempt: the jittered backoff (ms) to sleep before the
  // next one, or nullopt when the policy is exhausted — attempts used up,
  // or elapsed_ms + delay would cross the deadline budget. `elapsed_ms` is
  // the caller-measured time since the first attempt began.
  std::optional<double> next_delay_ms(double elapsed_ms = 0.0);

  // Attempts begun so far (1 after construction: the first attempt needs
  // no permission).
  int attempts() const { return attempt_; }

  const RetryPolicy& policy() const { return policy_; }

 private:
  RetryPolicy policy_;
  Rng rng_;
  int attempt_ = 1;
};

// Whether a typed protocol error code can succeed on retry. Only
// "overloaded" qualifies: it describes the queue, not the request.
bool retryable_error_code(const std::string& code);

}  // namespace cubie::serve
