#pragma once
// Shared helpers for the figure/table bench binaries: the Cubie-Engine
// harness, variant availability, suite sweeps, and formatting. Each binary
// stays standalone (`for b in build/bench/*; do $b; done` reproduces every
// figure) but routes all functional execution through one per-process
// ExperimentEngine, so no (workload, variant, case, scale) cell runs more
// than once per process — per-GPU pricing loops re-price the memoized
// profile. With `--cache DIR` cells persist across binaries too, and
// `--jobs N` fans Plan execution out over a thread pool with bit-identical
// results (deterministic per-cell RNG). See docs/ARCHITECTURE.md.

#include "check/check.hpp"
#include "common/metrics.hpp"
#include "common/perf.hpp"
#include "common/report.hpp"
#include "common/table.hpp"
#include "core/kernels.hpp"
#include "engine/engine.hpp"
#include "sim/model.hpp"
#include "sim/model_registry.hpp"
#include "telemetry/sinks.hpp"
#include "telemetry/trace_context.hpp"

#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace cubie::benchutil {

// ---------------------------------------------------------------------------
// Shared bench command line: every fig*/table*/ablation* binary accepts
//   --json <path>   write a schema-versioned report::MetricsReport
//                   ("-" for stdout) alongside the human-readable tables
//   --scale <N>     override the CUBIE_SCALE divisor
//   --jobs <N>      thread-pool width for engine Plan execution
//   --cache <dir>   persist engine cells to disk, shared across binaries
//   --model <name>  device-model backend predictions are priced with
//                   ("analytic" | "cachesim"; default analytic — see
//                   docs/MODEL.md "Backends")
//   --check         run the Cubie-Check conformance harness over every cell
//                   this bench executed (src/check/); violations make the
//                   exit code 1 and the verdict table is appended to the
//                   --json report under "conformance"
//   --events <path> stream Cubie-Scope telemetry events as JSONL
//   --trace-out <p> write a Chrome trace_event timeline (chrome://tracing,
//                   Perfetto) of engine cells and sim spans
//   --metrics-out <p> write a final Cubie-Pulse snapshot (Prometheus text
//                   exposition) when the run finishes; the report also
//                   gains the "hw" block (hardware counters or the typed
//                   unavailable fallback)
//   --progress      live cells-done/hit-rate/ETA line on stderr (suppressed
//                   when stderr is not a TTY; --progress=force overrides)
//   --trace <id>    run the whole bench under a Cubie-Flight trace id
//                   (1-32 lowercase hex chars) so its --events stream
//                   correlates with an external driver's trace
//   --help          print usage
// (see docs/OBSERVABILITY.md for the event schema and timeline walkthrough)
// and the Bench object collects records / captured tables as the binary
// computes them. finish() writes the report (with the engine-stats block
// when any cell ran) and is the binary's exit code.

struct Bench {
  report::MetricsReport report;
  std::string json_path;  // empty = human output only
  int scale = 1;
  bool check = false;  // --check: differential conformance after the bench
  // --model: which registered device-model backend prices this bench's
  // predictions (and keys its engine cells). Validated at bench_init.
  std::string model = "analytic";
  // --metrics-out: the report additionally carries the "hw" block (the
  // pulse snapshot itself is written by the MetricsSink's flush).
  bool metrics_out = false;
  engine::ExperimentEngine engine;
  // Cubie-Scope sinks installed by --events/--trace-out/--progress; they
  // deregister from the process bus (flushing) when the Bench dies.
  telemetry::SinkSet sinks;
  // --trace: the root Cubie-Flight scope the whole bench runs under (the
  // engine pool propagates it to its workers). Held by pointer because a
  // Bench is returned by value from bench_init and TraceScope pins the
  // thread it was created on.
  std::unique_ptr<telemetry::TraceScope> trace_scope;

  // Engine-owned suite, built once per process.
  const std::vector<core::WorkloadPtr>& suite() { return engine.suite(); }

  // Case-insensitive registry lookup (nullptr if unknown).
  const core::Workload* workload(const std::string& name) {
    return engine.workload(name);
  }

  // Memoized cell execution at this bench's scale.
  const core::RunOutput& run(const core::Workload& w, core::Variant v,
                             const core::TestCase& tc) {
    return engine.run(w, v, tc, scale);
  }

  // Execute every unique cell of the plan up front (parallel with --jobs);
  // subsequent run() calls are cache hits.
  std::size_t warm(const engine::Plan& plan) { return engine.execute(plan); }

  // The configured backend instantiated over a device spec (never null:
  // bench_init validates --model against the registry before it returns).
  std::unique_ptr<const sim::DeviceModel> model_for(
      const sim::DeviceSpec& spec) const {
    return sim::make_device_model(model, spec);
  }
  std::unique_ptr<const sim::DeviceModel> model_for(sim::Gpu gpu) const {
    return model_for(sim::spec_for(gpu));
  }

  report::MetricRecord& record(const std::string& workload,
                               const std::string& variant,
                               const std::string& gpu,
                               const std::string& case_label) {
    return report.add_record(workload, variant, gpu, case_label);
  }

  // Capture a printed table verbatim (cells as strings) under `name`.
  void capture(const std::string& name, const common::Table& t) {
    report.tables.push_back({name, t.header(), t.data()});
  }

  int finish() {
    int rc = 0;
    if (check) {
      // Judge every cell this bench materialized against its baseline /
      // reference (Cubie-Check; see docs/ARCHITECTURE.md). The verdict
      // table rides along in the JSON report; a violation fails the run.
      const auto conf = check::verify_report(engine);
      const auto t = conf.to_table();
      std::cout << "\nconformance (" << report.tool << "):\n";
      t.print(std::cout);
      conf.print_summary(std::cerr);
      report.tables.push_back({"conformance", t.header(), t.data()});
      if (!conf.pass()) rc = 1;
    }
    if (engine.active()) report.engine = engine.stats();
    if (metrics_out) report.hw = engine.hw_stats();
    // Flush telemetry before the report write so a consumer watching the
    // JSON file never sees it ahead of the event log it summarizes.
    sinks.flush();
    if (json_path.empty()) return rc;
    if (!report.write_file(json_path)) {
      std::cerr << report.tool << ": cannot write " << json_path << "\n";
      return 1;
    }
    if (json_path != "-") {
      std::cerr << "[json report: " << json_path << "]\n";
    }
    return rc;
  }
};

inline Bench bench_init(int argc, char** argv, const std::string& tool,
                        const std::string& title) {
  Bench b;
  b.report.tool = tool;
  b.report.title = title;
  b.scale = common::scale_divisor();
  engine::EngineOptions eng;
  telemetry::SinkConfig scope;
  scope.tool = tool;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << tool << ": " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--json") {
      b.json_path = next();
    } else if (arg == "--scale") {
      b.scale = std::max(1, std::atoi(next().c_str()));
    } else if (arg == "--jobs") {
      eng.jobs = std::max(1, std::atoi(next().c_str()));
    } else if (arg == "--cache") {
      eng.cache_dir = next();
    } else if (arg == "--model") {
      b.model = next();
    } else if (arg == "--check") {
      b.check = true;
    } else if (arg == "--events") {
      scope.events_path = next();
    } else if (arg == "--trace-out") {
      scope.trace_path = next();
    } else if (arg == "--metrics-out") {
      scope.metrics_path = next();
      b.metrics_out = true;
    } else if (arg == "--progress") {
      scope.progress = true;
    } else if (arg == "--progress=force") {
      scope.progress = true;
      scope.progress_force = true;
    } else if (arg == "--trace") {
      const std::string id = next();
      if (!telemetry::valid_trace_id(id)) {
        std::cerr << tool
                  << ": --trace must be 1-32 lowercase hex chars, got '"
                  << id << "'\n";
        std::exit(2);
      }
      telemetry::TraceContext ctx;
      ctx.trace_id = id;
      ctx.span_id = telemetry::generate_span_id();
      b.trace_scope = std::make_unique<telemetry::TraceScope>(ctx);
    } else if (arg == "--help" || arg == "-h") {
      std::cout << tool << ": " << title << "\n"
                << "usage: " << tool << " [--json <path>] [--scale <N>]"
                << " [--jobs <N>] [--cache <dir>] [--model <name>]"
                << " [--check] [--events <path>] [--trace-out <path>]"
                << " [--metrics-out <path>] [--progress[=force]]"
                << " [--trace <id>]\n";
      std::exit(0);
    } else {
      std::cerr << tool << ": unknown argument '" << arg << "'\n";
      std::exit(2);
    }
  }
  if (sim::model_backend_description(b.model).empty()) {
    std::cerr << tool << ": unknown model backend '" << b.model << "'";
    if (const std::string hint = sim::suggest_model_backend(b.model);
        !hint.empty()) {
      std::cerr << " (did you mean '" << hint << "'?)";
    }
    std::cerr << "\n";
    std::exit(2);
  }
  b.report.scale_divisor = b.scale;
  scope.jobs = eng.jobs;
  eng.model = b.model;
  b.engine = engine::ExperimentEngine(std::move(eng));
  b.sinks = telemetry::install(scope);
  return b;
}

inline std::vector<core::Variant> available_variants(const core::Workload& w) {
  return core::available_variants(w);
}

// Performance metric for Figure 3: useful work rate per second (FLOP/s, or
// TEPS for BFS). The implementations moved to src/common/perf.hpp so the
// Cubie-Serve report builder prices and labels rates identically to the
// benches; these aliases keep every bench binary source-compatible.
using perf::perf_metric;
using perf::perf_metric_name;
using perf::perf_unit;

// Case-averaged speedup of variant `num` over variant `den` on one device.
struct SpeedupRow {
  std::string workload;
  core::Quadrant quadrant;
  std::vector<double> per_gpu;  // indexed like sim::all_gpus()
};

// The Plan a variant-pair sweep executes: both variants over every case of
// every workload that implements them.
inline engine::Plan speedup_plan(core::Variant num, core::Variant den,
                                 int scale_divisor) {
  return engine::Plan::suite(scale_divisor).with_variants({num, den});
}

inline std::vector<SpeedupRow> speedup_sweep(Bench& b, core::Variant num,
                                             core::Variant den) {
  b.warm(speedup_plan(num, den, b.scale));
  std::vector<SpeedupRow> rows;
  for (const auto& w : b.suite()) {
    const bool have_num = num != core::Variant::Baseline || w->has_baseline();
    const bool have_den = den != core::Variant::Baseline || w->has_baseline();
    if (!have_num || !have_den) continue;
    if ((num == core::Variant::CCE || den == core::Variant::CCE) &&
        !w->cce_distinct())
      continue;
    SpeedupRow row;
    row.workload = w->name();
    row.quadrant = w->quadrant();
    const auto gpus = sim::all_gpus();
    std::vector<std::unique_ptr<const sim::DeviceModel>> models;
    for (auto g : gpus) models.push_back(b.model_for(g));
    std::vector<std::vector<double>> ratios(gpus.size());
    for (const auto& tc : w->cases(b.scale)) {
      const auto& out_num = b.run(*w, num, tc);
      const auto& out_den = b.run(*w, den, tc);
      for (std::size_t g = 0; g < gpus.size(); ++g) {
        const double t_num = models[g]->predict(out_num.profile).time_s;
        const double t_den = models[g]->predict(out_den.profile).time_s;
        ratios[g].push_back(t_den / t_num);  // speedup of num over den
      }
    }
    for (auto& r : ratios) row.per_gpu.push_back(common::geomean(r));
    rows.push_back(std::move(row));
  }
  return rows;
}

inline void print_speedup_table(const std::string& title,
                                const std::vector<SpeedupRow>& rows) {
  std::cout << title << "\n\n";
  common::Table t({"Quadrant", "Workload", "A100", "H200", "B200"});
  for (const auto& r : rows) {
    t.add_row({core::quadrant_name(r.quadrant), r.workload,
               common::fmt_double(r.per_gpu[0], 2) + "x",
               common::fmt_double(r.per_gpu[1], 2) + "x",
               common::fmt_double(r.per_gpu[2], 2) + "x"});
  }
  t.print(std::cout);
  std::cout << "\nCSV:\n";
  t.print_csv(std::cout);
  std::cout << '\n';
}

// JSON records for a speedup sweep: one record per (workload, gpu), variant
// labeled "num/den", metric "speedup" (case geomean).
inline void record_speedup(Bench& b, core::Variant num, core::Variant den,
                           const std::vector<SpeedupRow>& rows) {
  const auto gpus = sim::all_gpus();
  const std::string variant =
      core::variant_name(num) + "/" + core::variant_name(den);
  for (const auto& r : rows) {
    for (std::size_t g = 0; g < gpus.size() && g < r.per_gpu.size(); ++g) {
      auto& rec =
          b.record(r.workload, variant, sim::gpu_name(gpus[g]), "geomean");
      rec.set("speedup", r.per_gpu[g]);
    }
  }
}

}  // namespace cubie::benchutil
