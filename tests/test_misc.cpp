// Matrix Market I/O, tables, PiC substrate, suite proxies, feature
// extraction.

#include "analysis/features.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/suite_proxies.hpp"
#include "pic/pic.hpp"
#include "sim/model.hpp"
#include "sparse/io.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

namespace cubie {
namespace {

TEST(MatrixMarket, RoundTrip) {
  sparse::Coo c;
  c.rows = 3;
  c.cols = 4;
  c.row = {0, 1, 2};
  c.col = {1, 3, 0};
  c.val = {1.5, -2.25, 3.0};
  std::stringstream ss;
  sparse::write_matrix_market(ss, c);
  const auto back = sparse::read_matrix_market(ss);
  EXPECT_EQ(back.rows, 3);
  EXPECT_EQ(back.cols, 4);
  EXPECT_EQ(back.row, c.row);
  EXPECT_EQ(back.col, c.col);
  EXPECT_EQ(back.val, c.val);
}

TEST(MatrixMarket, SymmetricMirrorsEntries) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "% a comment\n"
      "3 3 2\n"
      "2 1 5.0\n"
      "3 3 7.0\n");
  const auto c = sparse::read_matrix_market(ss);
  EXPECT_EQ(c.nnz(), 3u);  // off-diagonal mirrored, diagonal not
}

TEST(MatrixMarket, PatternGetsUnitValues) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 2\n"
      "1 1\n"
      "2 1\n");
  const auto c = sparse::read_matrix_market(ss);
  EXPECT_EQ(c.nnz(), 2u);
  EXPECT_DOUBLE_EQ(c.val[0], 1.0);
}

TEST(MatrixMarket, RejectsGarbage) {
  std::stringstream ss("not a matrix\n");
  EXPECT_THROW(sparse::read_matrix_market(ss), std::runtime_error);
  std::stringstream oob(
      "%%MatrixMarket matrix coordinate real general\n2 2 1\n5 1 1.0\n");
  EXPECT_THROW(sparse::read_matrix_market(oob), std::runtime_error);
}

TEST(Table, AlignsAndCounts) {
  common::Table t({"a", "bb"});
  t.add_row({"1", "2"});
  t.add_row({"333"});  // padded
  EXPECT_EQ(t.rows(), 2u);
  std::stringstream ss;
  t.print(ss);
  EXPECT_NE(ss.str().find("333"), std::string::npos);
  std::stringstream csv;
  t.print_csv(csv);
  EXPECT_EQ(csv.str(), "a,bb\n1,2\n333,\n");
}

TEST(Formatting, SiSuffixes) {
  EXPECT_EQ(common::fmt_si(1.5e12, 2), "1.5 T");
  EXPECT_EQ(common::fmt_si(2.0e9, 2), "2 G");
  EXPECT_EQ(common::fmt_si(3.0e6, 2), "3 M");
  EXPECT_EQ(common::fmt_si(500.0, 3), "500");
}

TEST(Pic, PureMagneticRotationConservesEnergy) {
  pic::FieldConfig f;
  f.e0 = {0, 0, 0};
  f.e1 = {0, 0, 0};
  f.b = {0.3, -0.2, 0.9};
  auto p = pic::make_particles(512, 10.0, 3);
  const double e0 = pic::kinetic_energy(p);
  for (int s = 0; s < 50; ++s) pic::boris_push_serial(p, f);
  const double e1 = pic::kinetic_energy(p);
  EXPECT_NEAR(e1, e0, 1e-9 * e0);  // Boris rotation is norm-preserving
}

TEST(Pic, RotationMatrixIsOrthogonalish) {
  pic::FieldConfig f;
  const auto r = pic::boris_rotation_matrix(f);
  // R R^T ~ I for the Boris rotation (exact up to rounding).
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      double dot = 0.0;
      for (int k = 0; k < 3; ++k)
        dot += r[static_cast<std::size_t>(i * 3 + k)] * r[static_cast<std::size_t>(j * 3 + k)];
      EXPECT_NEAR(dot, i == j ? 1.0 : 0.0, 1e-12);
    }
  }
}

TEST(Pic, RotationMatrixMatchesSerialPush) {
  pic::FieldConfig f;
  f.e0 = {0, 0, 0};
  f.e1 = {0, 0, 0};
  f.b = {0.1, 0.2, 0.8};
  const auto r = pic::boris_rotation_matrix(f);
  auto p = pic::make_particles(16, 5.0, 7);
  auto q = p;
  pic::boris_push_serial(q, f);
  for (std::size_t i = 0; i < p.size(); ++i) {
    const double vx = r[0] * p.vx[i] + r[1] * p.vy[i] + r[2] * p.vz[i];
    const double vy = r[3] * p.vx[i] + r[4] * p.vy[i] + r[5] * p.vz[i];
    const double vz = r[6] * p.vx[i] + r[7] * p.vy[i] + r[8] * p.vz[i];
    EXPECT_NEAR(vx, q.vx[i], 1e-13);
    EXPECT_NEAR(vy, q.vy[i], 1e-13);
    EXPECT_NEAR(vz, q.vz[i], 1e-13);
  }
}

TEST(SuiteProxies, AllRunAndProduceMetrics) {
  const auto results = core::run_suite_proxies();
  ASSERT_GE(results.size(), 12u);
  int rodinia = 0, shoc = 0;
  const sim::AnalyticModel model(sim::h200());
  for (const auto& r : results) {
    rodinia += r.suite == "Rodinia";
    shoc += r.suite == "SHOC";
    EXPECT_GT(r.profile.dram_bytes, 0.0) << r.name;
    EXPECT_GT(r.profile.useful_flops, 0.0) << r.name;
    // Vector suites never touch the tensor pipe.
    EXPECT_EQ(r.profile.tc_flops, 0.0) << r.name;
    EXPECT_EQ(r.profile.tc_bitops, 0.0) << r.name;
    const auto pred = model.predict(r.profile);
    EXPECT_GT(pred.time_s, 0.0);
    const auto m = analysis::extract_metrics(r.name, r.suite, r.profile, pred);
    EXPECT_EQ(m.tensor_pipe_usage, 0.0);
    EXPECT_GE(m.fma_pipe_usage, 0.0);
  }
  EXPECT_GE(rodinia, 5);
  EXPECT_GE(shoc, 6);
}

TEST(Metrics, DatasetShape) {
  const auto results = core::run_suite_proxies();
  std::vector<analysis::KernelMetrics> ms;
  const sim::AnalyticModel model(sim::h200());
  for (const auto& r : results)
    ms.push_back(analysis::extract_metrics(r.name, r.suite, r.profile,
                                           model.predict(r.profile)));
  const auto d = analysis::metrics_dataset(ms);
  EXPECT_EQ(d.samples, results.size());
  EXPECT_EQ(d.features, analysis::KernelMetrics::kCount);
}

}  // namespace
}  // namespace cubie
