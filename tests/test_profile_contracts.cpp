// Profile contracts: the counted-event side of each workload is as much a
// deliverable as the numerics - the figures are computed from it. These
// tests pin the structural relationships the device model relies on.

#include "core/kernels.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace cubie {
namespace {

using core::Variant;
constexpr int kScale = 16;

TEST(ProfileContract, GemmCountsExactMmaFlops) {
  const auto w = core::make_workload("GEMM");
  const auto tc = w->cases(kScale)[0];  // 256^3
  const auto out = w->run(Variant::TC, tc);
  const double n = static_cast<double>(tc.dims[0]);
  // Every useful FLOP maps to exactly one MMA slot for dense GEMM.
  EXPECT_DOUBLE_EQ(out.profile.tc_flops, 2.0 * n * n * n);
  EXPECT_DOUBLE_EQ(out.profile.useful_flops, 2.0 * n * n * n);
  // C is stored exactly once.
  EXPECT_GE(out.profile.dram_bytes, n * n * 8.0);
}

TEST(ProfileContract, GemvRedundancyIsEightfold) {
  const auto w = core::make_workload("GEMV");
  const auto tc = w->cases(kScale)[0];
  const auto out = w->run(Variant::TC, tc);
  // The broadcast-B scheme computes 8 columns per useful diagonal element.
  EXPECT_NEAR(out.profile.tc_flops / out.profile.useful_flops, 8.0, 0.3);
  const auto cce = w->run(Variant::CCE, tc);
  EXPECT_NEAR(cce.profile.cc_flops / cce.profile.useful_flops, 1.0, 0.1);
}

TEST(ProfileContract, SpmvPaddedTrafficAtLeastNnz) {
  const auto w = core::make_workload("SpMV");
  for (const auto& tc : w->cases(kScale)) {
    const auto out_tc = w->run(Variant::TC, tc);
    const auto out_cce = w->run(Variant::CCE, tc);
    // TC loads padded slots; CC-E loads exactly the nonzeros: TC traffic
    // must dominate, and both must cover the nonzeros.
    EXPECT_GE(out_tc.profile.dram_bytes, out_cce.profile.dram_bytes)
        << tc.label;
    EXPECT_GE(out_cce.profile.dram_bytes,
              out_cce.profile.useful_flops / 2.0 * 12.0)
        << tc.label;
  }
}

TEST(ProfileContract, ScanConstantOperandsAreNotLoaded) {
  const auto w = core::make_workload("Scan");
  const auto tc = w->cases(kScale)[0];
  const auto out = w->run(Variant::TC, tc);
  const double n = static_cast<double>(tc.dims[1]) / static_cast<double>(tc.dims[0]) * static_cast<double>(tc.dims[0]);
  // Traffic is input + output only - the U/SL/J operands cost nothing
  // (Quadrant II's defining advantage).
  EXPECT_NEAR(out.profile.dram_bytes, 2.0 * n * 8.0, n * 0.8);
  // Three 8x8 MMAs (six m8n8k4) per 64-element chunk.
  EXPECT_DOUBLE_EQ(out.profile.tc_flops, (n / 64.0) * 6.0 * 512.0);
}

TEST(ProfileContract, ReductionOutputIsOnePerBlock) {
  const auto w = core::make_workload("Reduction");
  for (const auto& tc : w->cases(kScale)) {
    const auto out = w->run(Variant::TC, tc);
    const std::size_t block = static_cast<std::size_t>(tc.dims[0]);
    const std::size_t n = static_cast<std::size_t>(tc.dims[1]) / block * block;
    EXPECT_EQ(out.values.size(), n / block) << tc.label;
  }
}

TEST(ProfileContract, BfsVisitedRowFilterCutsWork) {
  // The BerryBees completed-row filter must make total bit-ops far smaller
  // than (levels x all blocks): compare against a no-filter upper bound.
  const auto w = core::make_workload("BFS");
  const auto cases = w->cases(kScale);
  const auto out = w->run(Variant::TC, cases[3]);  // kron: small diameter
  // Upper bound if every block were multiplied at every level: levels is at
  // least 2, so tc_bitops < 2 * blocks * 16384 would fail without a filter
  // on a graph where most rows finish after level 1-2.
  EXPECT_GT(out.profile.tc_bitops, 0.0);
  EXPECT_GT(out.profile.launches, 1);  // one launch per BFS level
}

TEST(ProfileContract, FftQuadrantIReusesOperand) {
  const auto w = core::make_workload("FFT");
  const auto tc = w->cases(kScale)[0];
  const auto out = w->run(Variant::TC, tc);
  // The DFT-matrix operand is loaded once (64 doubles), a negligible share
  // of total traffic - the Figure 2 Quadrant I reuse arrow.
  EXPECT_GT(out.profile.dram_bytes, 64.0 * 8.0 * 100.0);
  // Twiddle work is scalar: the CC pipe sees nonzero FLOPs even in TC mode.
  EXPECT_GT(out.profile.cc_flops, 0.0);
}

TEST(ProfileContract, StencilConstantBlocksNotRestreamed) {
  const auto w = core::make_workload("Stencil");
  const auto tc = w->cases(kScale)[0];  // 2D case
  const auto out = w->run(Variant::TC, tc);
  const double pts = static_cast<double>(tc.dims[0]) * static_cast<double>(tc.dims[1]);
  // DRAM traffic ~ in + out; the band-coefficient blocks live in constant
  // memory.
  EXPECT_NEAR(out.profile.dram_bytes, 2.0 * pts * 8.0, pts * 2.0);
  // LoRa issues at most 6 tile-MMAs (12 m8n8k4) per 8x8 tile.
  EXPECT_LE(out.profile.tc_flops, (pts / 64.0) * 12.0 * 512.0 + 1.0);
}

TEST(ProfileContract, PicStepsScaleLaunchesAndFlops) {
  const auto w = core::make_workload("PiC");
  const auto tc = w->cases(kScale)[0];
  const auto out = w->run(Variant::TC, tc);
  EXPECT_EQ(out.profile.launches, 4);  // kSteps launches
  const double n = static_cast<double>(tc.dims[0]);
  EXPECT_DOUBLE_EQ(out.profile.tc_flops, 4.0 * (n / 8.0) * 512.0);
}

TEST(ProfileContract, SpgemmSymbolicPhaseChargedToBaselineOnly) {
  const auto w = core::make_workload("SpGEMM");
  const auto tc = w->cases(kScale)[0];
  const auto base = w->run(Variant::Baseline, tc);
  const auto tcv = w->run(Variant::TC, tc);
  // The two-phase baseline moves more integer work than the block path.
  EXPECT_GT(base.profile.cc_intops, tcv.profile.cc_intops);
}

TEST(ProfileContract, VariantsShareUsefulFlops) {
  // Useful work is an algorithm property, not an implementation property:
  // all variants of a workload must report the same value.
  for (const auto& w : core::make_suite()) {
    const auto tc = w->cases(kScale)[0];
    double expected = -1.0;
    for (auto v : core::all_variants()) {
      if (v == Variant::Baseline && !w->has_baseline()) continue;
      if (v == Variant::CCE && !w->cce_distinct()) continue;
      const auto out = w->run(v, tc);
      if (expected < 0.0) expected = out.profile.useful_flops;
      EXPECT_DOUBLE_EQ(out.profile.useful_flops, expected)
          << w->name() << "/" << core::variant_name(v);
    }
  }
}

}  // namespace
}  // namespace cubie
