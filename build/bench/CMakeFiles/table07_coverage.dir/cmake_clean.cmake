file(REMOVE_RECURSE
  "CMakeFiles/table07_coverage.dir/table07_coverage.cpp.o"
  "CMakeFiles/table07_coverage.dir/table07_coverage.cpp.o.d"
  "table07_coverage"
  "table07_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table07_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
