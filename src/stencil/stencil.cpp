#include "stencil/stencil.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace cubie::stencil {

namespace {

// Cache-blocking factors for the serial sweeps. Every output point is an
// independent function of its neighborhood, so any traversal order yields
// bit-identical results; blocking only improves reuse. 2D: tile x so the
// three in-rows + one out-row a sweep touches stay resident even for very
// wide grids. 3D: tile y across the z loop so the three planes a z step
// touches shrink from 3*ny*nx to ~3*by*nx doubles (sized for a ~256 KiB L2
// slab); when ny is small the single tile degenerates to the unblocked loop.
constexpr int kXBlock2D = 4096;

int y_block_3d(int nx) {
  constexpr int kTargetDoubles = 256 * 1024 / static_cast<int>(sizeof(double));
  return std::max(8, kTargetDoubles / (4 * std::max(1, nx)));
}

}  // namespace

void stencil2d_serial(const Star2D& st, const std::vector<double>& in,
                      std::vector<double>& out, int ny, int nx) {
  assert(in.size() == static_cast<std::size_t>(ny) * static_cast<std::size_t>(nx));
  out.assign(in.size(), 0.0);
  for (int xb = 0; xb < nx; xb += kXBlock2D) {
  const int x_hi = std::min(xb + kXBlock2D, nx);
  for (int y = 0; y < ny; ++y) {
    for (int x = xb; x < x_hi; ++x) {
      const std::size_t i = static_cast<std::size_t>(y) * static_cast<std::size_t>(nx) + static_cast<std::size_t>(x);
      double acc = st.c * in[i];
      if (y > 0) acc = acc + st.n * in[i - static_cast<std::size_t>(nx)];
      if (y + 1 < ny) acc = acc + st.s * in[i + static_cast<std::size_t>(nx)];
      if (x > 0) acc = acc + st.w * in[i - 1];
      if (x + 1 < nx) acc = acc + st.e * in[i + 1];
      out[i] = acc;
    }
  }
  }
}

void stencil3d_serial(const Star3D& st, const std::vector<double>& in,
                      std::vector<double>& out, int nz, int ny, int nx) {
  assert(in.size() == static_cast<std::size_t>(nz) * static_cast<std::size_t>(ny) * static_cast<std::size_t>(nx));
  out.assign(in.size(), 0.0);
  const std::size_t plane = static_cast<std::size_t>(ny) * static_cast<std::size_t>(nx);
  const int by = y_block_3d(nx);
  for (int yb = 0; yb < ny; yb += by) {
  const int y_hi = std::min(yb + by, ny);
  for (int z = 0; z < nz; ++z) {
    for (int y = yb; y < y_hi; ++y) {
      for (int x = 0; x < nx; ++x) {
        const std::size_t i =
            static_cast<std::size_t>(z) * plane + static_cast<std::size_t>(y) * static_cast<std::size_t>(nx) + static_cast<std::size_t>(x);
        double acc = st.c * in[i];
        if (y > 0) acc = acc + st.n * in[i - static_cast<std::size_t>(nx)];
        if (y + 1 < ny) acc = acc + st.s * in[i + static_cast<std::size_t>(nx)];
        if (x > 0) acc = acc + st.w * in[i - 1];
        if (x + 1 < nx) acc = acc + st.e * in[i + 1];
        if (z > 0) acc = acc + st.d * in[i - plane];
        if (z + 1 < nz) acc = acc + st.u * in[i + plane];
        out[i] = acc;
      }
    }
  }
  }
}

mma::Mat8x8 band_diag_block(double lower, double center, double upper) {
  mma::Mat8x8 m{};
  for (int i = 0; i < 8; ++i) {
    m[static_cast<std::size_t>(i * 8 + i)] = center;
    if (i > 0) m[static_cast<std::size_t>(i * 8 + i - 1)] = lower;
    if (i < 7) m[static_cast<std::size_t>(i * 8 + i + 1)] = upper;
  }
  return m;
}

mma::Mat8x8 band_sub_block(double lower) {
  mma::Mat8x8 m{};
  m[7] = lower;  // (0, 7): first row of this tile sees last row of previous
  return m;
}

mma::Mat8x8 band_super_block(double upper) {
  mma::Mat8x8 m{};
  m[56] = upper;  // (7, 0): last row of this tile sees first row of next
  return m;
}


void stencil2d_serial_fma(const Star2D& st, const std::vector<double>& in,
                          std::vector<double>& out, int ny, int nx) {
  assert(in.size() == static_cast<std::size_t>(ny) * static_cast<std::size_t>(nx));
  out.assign(in.size(), 0.0);
  for (int xb = 0; xb < nx; xb += kXBlock2D) {
  const int x_hi = std::min(xb + kXBlock2D, nx);
  for (int y = 0; y < ny; ++y) {
    for (int x = xb; x < x_hi; ++x) {
      const std::size_t i = static_cast<std::size_t>(y) * static_cast<std::size_t>(nx) + static_cast<std::size_t>(x);
      double acc = st.c * in[i];
      if (y > 0) acc = std::fma(st.n, in[i - static_cast<std::size_t>(nx)], acc);
      if (y + 1 < ny) acc = std::fma(st.s, in[i + static_cast<std::size_t>(nx)], acc);
      if (x > 0) acc = std::fma(st.w, in[i - 1], acc);
      if (x + 1 < nx) acc = std::fma(st.e, in[i + 1], acc);
      out[i] = acc;
    }
  }
  }
}

void stencil3d_serial_fma(const Star3D& st, const std::vector<double>& in,
                          std::vector<double>& out, int nz, int ny, int nx) {
  assert(in.size() == static_cast<std::size_t>(nz) * static_cast<std::size_t>(ny) * static_cast<std::size_t>(nx));
  out.assign(in.size(), 0.0);
  const std::size_t plane = static_cast<std::size_t>(ny) * static_cast<std::size_t>(nx);
  const int by = y_block_3d(nx);
  for (int yb = 0; yb < ny; yb += by) {
  const int y_hi = std::min(yb + by, ny);
  for (int z = 0; z < nz; ++z) {
    for (int y = yb; y < y_hi; ++y) {
      for (int x = 0; x < nx; ++x) {
        const std::size_t i =
            static_cast<std::size_t>(z) * plane + static_cast<std::size_t>(y) * static_cast<std::size_t>(nx) + static_cast<std::size_t>(x);
        double acc = st.c * in[i];
        if (y > 0) acc = std::fma(st.n, in[i - static_cast<std::size_t>(nx)], acc);
        if (y + 1 < ny) acc = std::fma(st.s, in[i + static_cast<std::size_t>(nx)], acc);
        if (x > 0) acc = std::fma(st.w, in[i - 1], acc);
        if (x + 1 < nx) acc = std::fma(st.e, in[i + 1], acc);
        if (z > 0) acc = std::fma(st.d, in[i - plane], acc);
        if (z + 1 < nz) acc = std::fma(st.u, in[i + plane], acc);
        out[i] = acc;
      }
    }
  }
  }
}

}  // namespace cubie::stencil
