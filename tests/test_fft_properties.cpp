// FFT property tests: the classical DFT identities, parameterized across
// sizes, exercised on both the serial reference and the Stockham baseline.

#include "common/rng.hpp"
#include "fft/fft.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace cubie {
namespace {

using fft::cplx;

std::vector<cplx> random_signal(std::size_t n, std::uint32_t seed) {
  const auto re = common::random_vector(n, seed);
  const auto im = common::random_vector(n, seed + 1);
  std::vector<cplx> x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = {re[i], im[i]};
  return x;
}

class FftProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftProperty, TimeShiftIsPhaseRamp) {
  const std::size_t n = GetParam();
  const auto x = random_signal(n, 200);
  std::vector<cplx> shifted(n);
  for (std::size_t i = 0; i < n; ++i) shifted[i] = x[(i + 1) % n];
  const auto fx = fft::fft_serial(x);
  const auto fs = fft::fft_serial(shifted);
  constexpr double kTwoPi = 2.0 * std::numbers::pi;
  for (std::size_t k = 0; k < n; ++k) {
    const double ang = kTwoPi * static_cast<double>(k) / static_cast<double>(n);
    const cplx expect = fx[k] * cplx(std::cos(ang), std::sin(ang));
    EXPECT_NEAR(std::abs(fs[k] - expect), 0.0, 1e-10);
  }
}

TEST_P(FftProperty, RealInputHasConjugateSymmetry) {
  const std::size_t n = GetParam();
  const auto re = common::random_vector(n, 201);
  std::vector<cplx> x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = re[i];
  const auto f = fft::fft_serial(x);
  for (std::size_t k = 1; k < n; ++k) {
    EXPECT_NEAR(std::abs(f[k] - std::conj(f[n - k])), 0.0, 1e-10);
  }
  EXPECT_NEAR(f[0].imag(), 0.0, 1e-10);
}

TEST_P(FftProperty, DcBinIsTheSum) {
  const std::size_t n = GetParam();
  const auto x = random_signal(n, 202);
  cplx sum = 0.0;
  for (const auto& v : x) sum += v;
  const auto f = fft::fft_serial(x);
  EXPECT_NEAR(std::abs(f[0] - sum), 0.0, 1e-10);
}

TEST_P(FftProperty, PureToneHitsOneBin) {
  const std::size_t n = GetParam();
  if (n < 8) return;
  constexpr double kTwoPi = 2.0 * std::numbers::pi;
  const std::size_t tone = n / 4;
  std::vector<cplx> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double ang = kTwoPi * static_cast<double>(tone * i) / static_cast<double>(n);
    x[i] = {std::cos(ang), std::sin(ang)};
  }
  const auto f = fft::fft_serial(x);
  for (std::size_t k = 0; k < n; ++k) {
    const double expect = k == tone ? static_cast<double>(n) : 0.0;
    EXPECT_NEAR(std::abs(f[k]), expect, 1e-9 * static_cast<double>(n));
  }
}

TEST_P(FftProperty, StockhamAgreesWithSerialToRounding) {
  const std::size_t n = GetParam();
  const auto x = random_signal(n, 203);
  const auto a = fft::fft_serial(x);
  const auto b = fft::fft_stockham(x);
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(std::abs(a[k] - b[k]), 0.0,
                1e-12 * static_cast<double>(n));
  }
}

TEST_P(FftProperty, IfftOfFftIsIdentity) {
  const std::size_t n = GetParam();
  const auto x = random_signal(n, 204);
  const auto back = fft::ifft_serial(fft::fft_serial(x));
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(std::abs(back[i] - x[i]), 0.0, 1e-12 * static_cast<double>(n));
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftProperty,
                         ::testing::Values(4, 8, 16, 64, 128, 512, 1024));

TEST(FftConvolution, CircularConvolutionTheorem) {
  const std::size_t n = 64;
  const auto a = random_signal(n, 210);
  const auto b = random_signal(n, 212);
  // Direct circular convolution.
  std::vector<cplx> conv(n, 0.0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) conv[(i + j) % n] += a[i] * b[j];
  // Via FFT: ifft(fft(a) .* fft(b)).
  auto fa = fft::fft_serial(a);
  const auto fb = fft::fft_serial(b);
  for (std::size_t k = 0; k < n; ++k) fa[k] *= fb[k];
  const auto via_fft = fft::ifft_serial(fa);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(std::abs(via_fft[i] - conv[i]), 0.0, 1e-9);
}

}  // namespace
}  // namespace cubie
