#include "telemetry/metrics_registry.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <functional>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace cubie::telemetry {

namespace {

// Canonical sorted-label encoding, shared by series keys and sample lookup.
Labels sorted_labels(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

std::string label_block(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += k;
    out += "=\"";
    out += prometheus_escape(v);
    out += "\"";
  }
  out += "}";
  return out;
}

// Prometheus sample values: integers render without a decimal point (so
// counter reconciliation in CI is exact string-wise), everything else with
// the shortest representation that round-trips a double. Locale-independent
// by the same argument as report.cpp's format_number: snprintf("%g") honors
// LC_NUMERIC and would emit ',' decimal separators under e.g. de_DE,
// corrupting the exposition for every scraper; std::to_chars always writes
// the C-locale form (tests/test_pulse.cpp pins this under setlocale).
std::string format_value(double v) {
  char buf[64];
  if (std::isfinite(v) && v == std::floor(v) &&
      std::fabs(v) < 9.007199254740992e15) {
    const auto r =
        std::to_chars(buf, buf + sizeof(buf), v, std::chars_format::fixed, 0);
    return std::string(buf, r.ptr);
  }
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  if (std::isnan(v)) return "NaN";
  const auto r = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, r.ptr);
}

// Locale-independent readback of an exposition value ("+Inf"/"-Inf"/"NaN"
// included). std::stod honors LC_NUMERIC - under de_DE it parses "0.5" as 0
// and stops at the '.', silently corrupting histogram_quantile and the CI
// counter reconciliation - so mirror report.cpp: std::from_chars with a
// manual skip of the leading '+' it does not accept.
bool parse_value(const std::string& text, double* out) {
  if (text == "+Inf") {
    *out = std::numeric_limits<double>::infinity();
    return true;
  }
  if (text.empty()) return false;
  std::size_t first = text[0] == '+' ? 1 : 0;
  const auto r =
      std::from_chars(text.data() + first, text.data() + text.size(), *out);
  return r.ec == std::errc() && r.ptr == text.data() + text.size();
}

}  // namespace

const std::vector<double>& latency_bucket_bounds() {
  static const std::vector<double> kBounds = {
      0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
      0.05,   0.1,     0.25,   0.5,   1.0,    2.5,   5.0,  10.0};
  return kBounds;
}

// ---------------------------------------------------------------------------
// HistogramSnapshot / Histogram.

std::uint64_t HistogramSnapshot::total() const {
  std::uint64_t n = 0;
  for (auto c : counts) n += c;
  return n;
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  if (counts.empty()) {
    *this = other;
    return;
  }
  if (other.counts.empty()) return;
  if (other.bounds != bounds || other.counts.size() != counts.size()) return;
  for (std::size_t i = 0; i < counts.size(); ++i) counts[i] += other.counts[i];
  sum += other.sum;
  // Exemplars overlay right-wins: the right operand is the fresher scrape.
  if (!other.exemplars.empty()) {
    if (exemplars.size() != counts.size()) exemplars.resize(counts.size());
    for (std::size_t i = 0;
         i < other.exemplars.size() && i < exemplars.size(); ++i) {
      if (!other.exemplars[i].trace_id.empty())
        exemplars[i] = other.exemplars[i];
    }
  }
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1) {}

std::size_t Histogram::bucket_index(double v) const {
  // le semantics: bucket i covers v <= bounds_[i].
  auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  return static_cast<std::size_t>(it - bounds_.begin());
}

void Histogram::observe(double v, const std::string& trace_id) {
  const std::size_t bucket = bucket_index(v);
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  // No portable fetch_add for atomic<double> before C++20 library support
  // everywhere; a CAS loop is equivalent and contention here is tiny.
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
  if (!trace_id.empty()) {
    std::lock_guard<std::mutex> lk(ex_mu_);
    if (exemplars_.size() != counts_.size()) exemplars_.resize(counts_.size());
    exemplars_[bucket] = {trace_id, v};
  }
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  s.bounds = bounds_;
  s.counts.reserve(counts_.size());
  for (const auto& c : counts_) s.counts.push_back(c.load(std::memory_order_relaxed));
  s.sum = sum_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lk(ex_mu_);
    s.exemplars = exemplars_;
  }
  return s;
}

// ---------------------------------------------------------------------------
// MetricsRegistry.

std::string MetricSnapshot::series_key() const {
  return name + label_block(labels);
}

namespace {

struct Series {
  std::string name;
  std::string help;
  MetricType type;
  Labels labels;
  std::unique_ptr<Counter> counter;
  std::unique_ptr<Gauge> gauge;
  std::unique_ptr<Histogram> histogram;
};

constexpr std::size_t kStripes = 8;

}  // namespace

struct MetricsRegistry::Impl {
  struct Stripe {
    mutable std::mutex mu;
    // series_key -> series; unique_ptr keeps instrument addresses stable
    // across rehashes so returned references never dangle.
    std::map<std::string, std::unique_ptr<Series>> series;
  };
  std::array<Stripe, kStripes> stripes;

  Stripe& stripe_for(const std::string& key) {
    return stripes[std::hash<std::string>{}(key) % kStripes];
  }

  Series& find_or_create(const std::string& name, const std::string& help,
                         MetricType type, Labels labels,
                         const std::vector<double>* bounds) {
    labels = sorted_labels(std::move(labels));
    std::string key = name + label_block(labels);
    Stripe& st = stripe_for(key);
    std::lock_guard<std::mutex> lk(st.mu);
    auto it = st.series.find(key);
    if (it != st.series.end()) return *it->second;
    auto s = std::make_unique<Series>();
    s->name = name;
    s->help = help;
    s->type = type;
    s->labels = std::move(labels);
    switch (type) {
      case MetricType::Counter:
        s->counter = std::make_unique<Counter>();
        break;
      case MetricType::Gauge:
        s->gauge = std::make_unique<Gauge>();
        break;
      case MetricType::Histogram:
        s->histogram = std::make_unique<Histogram>(
            bounds ? *bounds : latency_bucket_bounds());
        break;
    }
    return *st.series.emplace(std::move(key), std::move(s)).first->second;
  }
};

MetricsRegistry::MetricsRegistry() : impl_(std::make_unique<Impl>()) {}
MetricsRegistry::~MetricsRegistry() = default;

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help, Labels labels) {
  return *impl_->find_or_create(name, help, MetricType::Counter,
                                std::move(labels), nullptr)
              .counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const std::string& help,
                              Labels labels) {
  return *impl_->find_or_create(name, help, MetricType::Gauge,
                                std::move(labels), nullptr)
              .gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::string& help,
                                      const std::vector<double>& bounds,
                                      Labels labels) {
  return *impl_->find_or_create(name, help, MetricType::Histogram,
                                std::move(labels), &bounds)
              .histogram;
}

std::vector<MetricSnapshot> MetricsRegistry::snapshot() const {
  std::vector<MetricSnapshot> out;
  for (const auto& st : impl_->stripes) {
    std::lock_guard<std::mutex> lk(st.mu);
    for (const auto& [key, s] : st.series) {
      MetricSnapshot m;
      m.name = s->name;
      m.help = s->help;
      m.type = s->type;
      m.labels = s->labels;
      switch (s->type) {
        case MetricType::Counter:
          m.value = static_cast<double>(s->counter->value());
          break;
        case MetricType::Gauge:
          m.value = s->gauge->value();
          break;
        case MetricType::Histogram:
          m.hist = s->histogram->snapshot();
          break;
      }
      out.push_back(std::move(m));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              return a.series_key() < b.series_key();
            });
  return out;
}

std::vector<MetricSnapshot> merge_snapshots(
    std::vector<MetricSnapshot> a, const std::vector<MetricSnapshot>& b) {
  for (const auto& mb : b) {
    auto it = std::find_if(a.begin(), a.end(), [&](const MetricSnapshot& ma) {
      return ma.series_key() == mb.series_key();
    });
    if (it == a.end()) {
      a.push_back(mb);
      continue;
    }
    switch (mb.type) {
      case MetricType::Counter:
        it->value += mb.value;
        break;
      case MetricType::Gauge:
        it->value = mb.value;  // right side wins (latest observation)
        break;
      case MetricType::Histogram:
        it->hist.merge(mb.hist);
        break;
    }
  }
  std::sort(a.begin(), a.end(),
            [](const MetricSnapshot& x, const MetricSnapshot& y) {
              return x.series_key() < y.series_key();
            });
  return a;
}

// ---------------------------------------------------------------------------
// Prometheus text exposition.

std::string prometheus_escape(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string prometheus_bound_label(double bound) {
  if (std::isinf(bound)) return "+Inf";
  // Shortest round-trip form via std::to_chars: identical to the C-locale
  // "%g" for the shared latency ladder, but immune to LC_NUMERIC.
  char buf[32];
  const auto r = std::to_chars(buf, buf + sizeof(buf), bound);
  return std::string(buf, r.ptr);
}

std::string prometheus_text(const std::vector<MetricSnapshot>& snapshot) {
  std::string out;
  std::string last_family;
  for (const auto& m : snapshot) {
    if (m.name != last_family) {
      last_family = m.name;
      out += "# HELP " + m.name + " " + m.help + "\n";
      out += "# TYPE " + m.name + " ";
      switch (m.type) {
        case MetricType::Counter: out += "counter"; break;
        case MetricType::Gauge: out += "gauge"; break;
        case MetricType::Histogram: out += "histogram"; break;
      }
      out += "\n";
    }
    if (m.type == MetricType::Histogram) {
      std::uint64_t cum = 0;
      for (std::size_t i = 0; i < m.hist.counts.size(); ++i) {
        cum += m.hist.counts[i];
        Labels labels = m.labels;
        labels.emplace_back("le", i < m.hist.bounds.size()
                                      ? prometheus_bound_label(m.hist.bounds[i])
                                      : "+Inf");
        out += m.name + "_bucket" + label_block(labels) + " " +
               format_value(static_cast<double>(cum));
        // OpenMetrics exemplar: the last trace id that landed in this
        // (native, not cumulative) bucket, with its observed value.
        if (i < m.hist.exemplars.size() &&
            !m.hist.exemplars[i].trace_id.empty()) {
          out += " # {trace_id=\"" +
                 prometheus_escape(m.hist.exemplars[i].trace_id) + "\"} " +
                 format_value(m.hist.exemplars[i].value);
        }
        out += "\n";
      }
      out += m.name + "_sum" + label_block(m.labels) + " " +
             format_value(m.hist.sum) + "\n";
      out += m.name + "_count" + label_block(m.labels) + " " +
             format_value(static_cast<double>(cum)) + "\n";
    } else {
      out += m.name + label_block(m.labels) + " " + format_value(m.value) + "\n";
    }
  }
  return out;
}

std::string prometheus_text(const MetricsRegistry& reg) {
  return prometheus_text(reg.snapshot());
}

// ---------------------------------------------------------------------------
// Exposition parsing.

namespace {

// Parses one `name{k="v",...} value` line into `s`; false on malformed.
bool parse_sample_line(const std::string& line, ExpositionSample* s,
                       std::string* error) {
  std::size_t i = 0;
  while (i < line.size() && (std::isalnum(static_cast<unsigned char>(line[i])) ||
                             line[i] == '_' || line[i] == ':')) {
    ++i;
  }
  if (i == 0) {
    if (error) *error = "missing metric name: " + line;
    return false;
  }
  s->name = line.substr(0, i);
  s->labels.clear();
  if (i < line.size() && line[i] == '{') {
    ++i;
    while (i < line.size() && line[i] != '}') {
      std::size_t eq = line.find('=', i);
      if (eq == std::string::npos || eq + 1 >= line.size() ||
          line[eq + 1] != '"') {
        if (error) *error = "malformed label: " + line;
        return false;
      }
      std::string key = line.substr(i, eq - i);
      std::string val;
      std::size_t j = eq + 2;
      for (; j < line.size() && line[j] != '"'; ++j) {
        if (line[j] == '\\' && j + 1 < line.size()) {
          ++j;
          if (line[j] == 'n') {
            val += '\n';
          } else {
            val += line[j];  // \" and \\ unescape to the raw char
          }
        } else {
          val += line[j];
        }
      }
      if (j >= line.size()) {
        if (error) *error = "unterminated label value: " + line;
        return false;
      }
      s->labels.emplace_back(std::move(key), std::move(val));
      i = j + 1;
      if (i < line.size() && line[i] == ',') ++i;
    }
    if (i >= line.size()) {
      if (error) *error = "unterminated label block: " + line;
      return false;
    }
    ++i;  // '}'
  }
  while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  if (i >= line.size()) {
    if (error) *error = "missing value: " + line;
    return false;
  }
  std::string value_str = line.substr(i);
  // An OpenMetrics exemplar may trail the value (` # {trace_id="..."} v`);
  // split it off so the sample value still parses, and capture the ids.
  s->exemplar_trace_id.clear();
  s->exemplar_value = 0.0;
  if (const std::size_t hash = value_str.find(" # "); hash != std::string::npos) {
    const std::string ex = value_str.substr(hash + 3);
    value_str.resize(hash);
    // Best-effort exemplar readback: {trace_id="X"} V. A malformed
    // exemplar never fails the line — the sample value is the contract.
    const std::size_t open = ex.find("trace_id=\"");
    if (open != std::string::npos) {
      const std::size_t start = open + 10;
      const std::size_t close = ex.find('"', start);
      if (close != std::string::npos) {
        s->exemplar_trace_id = ex.substr(start, close - start);
        const std::size_t sp = ex.find(' ', close);
        if (sp != std::string::npos) {
          double v = 0.0;
          if (parse_value(ex.substr(sp + 1), &v)) s->exemplar_value = v;
        }
      }
    }
  }
  if (!parse_value(value_str, &s->value)) {
    if (error) *error = "bad sample value: " + line;
    return false;
  }
  std::sort(s->labels.begin(), s->labels.end());
  return true;
}

}  // namespace

const ExpositionSample* Exposition::find(const std::string& name,
                                         const Labels& labels) const {
  Labels want = sorted_labels(labels);
  for (const auto& s : samples) {
    if (s.name == name && s.labels == want) return &s;
  }
  return nullptr;
}

double Exposition::value_or(const std::string& name, const Labels& labels,
                            double fallback) const {
  const ExpositionSample* s = find(name, labels);
  return s ? s->value : fallback;
}

double Exposition::sum_over(const std::string& name) const {
  double total = 0.0;
  for (const auto& s : samples) {
    if (s.name == name) total += s.value;
  }
  return total;
}

std::vector<std::pair<double, double>> Exposition::buckets(
    const std::string& base) const {
  const std::string bucket_name = base + "_bucket";
  std::vector<std::pair<double, double>> out;
  for (const auto& s : samples) {
    if (s.name != bucket_name) continue;
    for (const auto& [k, v] : s.labels) {
      if (k != "le") continue;
      double le = 0.0;
      if (!parse_value(v, &le)) continue;  // skip malformed bounds
      out.emplace_back(le, s.value);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Exposition::BucketExemplar> Exposition::exemplars(
    const std::string& base) const {
  const std::string bucket_name = base + "_bucket";
  std::vector<BucketExemplar> out;
  for (const auto& s : samples) {
    if (s.name != bucket_name || s.exemplar_trace_id.empty()) continue;
    for (const auto& [k, v] : s.labels) {
      if (k != "le") continue;
      double le = 0.0;
      if (!parse_value(v, &le)) continue;
      out.push_back({le, s.exemplar_trace_id, s.exemplar_value});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const BucketExemplar& a, const BucketExemplar& b) {
              return a.value > b.value;
            });
  return out;
}

std::optional<Exposition> parse_prometheus_text(const std::string& text,
                                                std::string* error) {
  Exposition exp;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    ExpositionSample s;
    if (!parse_sample_line(line, &s, error)) return std::nullopt;
    exp.samples.push_back(std::move(s));
  }
  return exp;
}

double histogram_quantile(
    const std::vector<std::pair<double, double>>& buckets, double q) {
  if (buckets.empty()) return 0.0;
  const double total = buckets.back().second;
  if (total <= 0.0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const double rank = q * total;
  double prev_le = 0.0, prev_count = 0.0;
  for (const auto& [le, count] : buckets) {
    if (count >= rank) {
      if (std::isinf(le)) return prev_le;  // resolve +Inf to last finite edge
      const double in_bucket = count - prev_count;
      if (in_bucket <= 0.0) return le;
      return prev_le + (le - prev_le) * ((rank - prev_count) / in_bucket);
    }
    prev_le = le;
    prev_count = count;
  }
  return prev_le;
}

// ---------------------------------------------------------------------------
// MetricsSink.

MetricsSink::MetricsSink(std::shared_ptr<MetricsRegistry> reg,
                         std::string out_path)
    : reg_(reg ? std::move(reg) : std::make_shared<MetricsRegistry>()),
      out_path_(std::move(out_path)) {
  // Pre-register the hot and reconciliation-critical series so a scrape of
  // an idle daemon already exposes them at 0 (CI takes a pre-loadgen
  // baseline and diffs against a post-loadgen scrape).
  cell_wall_ = &reg_->histogram("cubie_cell_wall_seconds",
                                "Host wall seconds per engine cell request.",
                                latency_bucket_bounds());
  request_latency_ = &reg_->histogram(
      "cubie_request_latency_seconds",
      "Service time of worker-path daemon requests, accept to response.",
      latency_bucket_bounds());
  plans_ = &reg_->counter("cubie_plans_total", "Engine plan executions.");
  accepted_ = &reg_->counter("cubie_requests_accepted_total",
                             "Requests admitted past the bounded queue.");
  queued_ = &reg_->counter("cubie_requests_queued_total", "Requests enqueued.");
  started_ = &reg_->counter("cubie_requests_started_total",
                            "Requests a worker began executing.");
  const char* finished_help = "Responses sent, by serving path.";
  finished_worker_ = &reg_->counter("cubie_requests_finished_total",
                                    finished_help, {{"path", "worker"}});
  finished_inline_ = &reg_->counter("cubie_requests_finished_total",
                                    finished_help, {{"path", "inline"}});
  queue_depth_ = &reg_->gauge("cubie_queue_depth",
                              "Admission queue depth after the last enqueue.");
  const char* cells_help = "Engine cell_finish events by serving source.";
  for (const char* source : {"compute", "memo", "disk", "coalesced"}) {
    reg_->counter("cubie_cells_finished_total", cells_help,
                  {{"source", source}});
  }
}

void MetricsSink::on_event(const Event& e) {
  switch (e.kind) {
    case EventKind::PlanStart:
      plans_->inc();
      break;
    case EventKind::CellFinish:
      reg_->counter("cubie_cells_finished_total",
                    "Engine cell_finish events by serving source.",
                    {{"source", e.source}})
          .inc();
      if (e.wall_s >= 0.0) cell_wall_->observe(e.wall_s, e.trace_id);
      break;
    case EventKind::CacheLoad:
      reg_->counter("cubie_cache_loads_total",
                    "DiskCache load outcomes by status.",
                    {{"status", e.status}})
          .inc();
      break;
    case EventKind::CacheStore:
      reg_->counter("cubie_cache_stores_total",
                    "DiskCache store outcomes by status.",
                    {{"status", e.status}})
          .inc();
      break;
    case EventKind::RequestAccepted:
      accepted_->inc();
      break;
    case EventKind::RequestQueued:
      queued_->inc();
      queue_depth_->set(static_cast<double>(e.count));
      break;
    case EventKind::RequestStarted:
      started_->inc();
      break;
    case EventKind::RequestFinished:
      // The server tags e.source "worker" or "inline"; only worker-path
      // latency feeds the histogram loadgen clients reconcile against.
      if (e.source == "inline") {
        finished_inline_->inc();
      } else {
        finished_worker_->inc();
        // The trace id rides along as the bucket's exemplar, linking the
        // latency distribution back to a concrete slow request.
        if (e.wall_s >= 0.0) request_latency_->observe(e.wall_s, e.trace_id);
      }
      break;
    case EventKind::RequestRejected:
      reg_->counter("cubie_requests_rejected_total",
                    "Requests refused, by typed error code.",
                    {{"code", e.source}})
          .inc();
      break;
    case EventKind::CacheSimStats: {
      // Cachesim backend cache statistics: e.name is the cache level
      // ("l2"), e.source "hit" or "miss", e.count the access count. The
      // per-level hit-rate gauge is recomputed from the running counters so
      // it always equals hits / (hits + misses) at scrape time.
      auto& hits = reg_->counter("cubie_cachesim_hits_total",
                                 "Cachesim cache hits by level.",
                                 {{"level", e.name}});
      auto& misses = reg_->counter("cubie_cachesim_misses_total",
                                   "Cachesim cache misses by level.",
                                   {{"level", e.name}});
      (e.source == "hit" ? hits : misses).inc(e.count);
      const double h = static_cast<double>(hits.value());
      const double total = h + static_cast<double>(misses.value());
      reg_->gauge("cubie_cachesim_hit_ratio",
                  "Cachesim hit fraction by level over the whole run.",
                  {{"level", e.name}})
          .set(total > 0.0 ? h / total : 0.0);
      break;
    }
    default:
      break;
  }
}

void MetricsSink::flush() {
  if (out_path_.empty()) return;
  std::ofstream os(out_path_, std::ios::trunc);
  if (!os) return;
  os << prometheus_text(*reg_);
}

}  // namespace cubie::telemetry
