#pragma once
// Graph substrate for the BFS workload: CSR adjacency, the serial reference
// BFS used as ground truth, and conversion to/from sparse-matrix form for
// feature analysis (Figure 10a).

#include "sparse/csr.hpp"

#include <cstdint>
#include <vector>

namespace cubie::graph {

struct Graph {
  int n = 0;
  std::vector<int> offsets;    // size n + 1
  std::vector<int> neighbors;  // sorted within each vertex

  std::size_t edges() const { return neighbors.size(); }  // directed count
  int degree(int v) const { return offsets[static_cast<std::size_t>(v) + 1] - offsets[static_cast<std::size_t>(v)]; }
};

// Build a graph from an edge list; if `symmetrize`, both directions are
// inserted. Self-loops and duplicate edges are removed.
Graph graph_from_edges(int n, const std::vector<std::pair<int, int>>& edges,
                       bool symmetrize);

// Serial top-down BFS: returns per-vertex level (source = 0, unreachable = -1).
std::vector<int> bfs_serial(const Graph& g, int source);

// Adjacency pattern as CSR (values 1.0) for structural feature extraction.
sparse::Csr adjacency_csr(const Graph& g);

}  // namespace cubie::graph
