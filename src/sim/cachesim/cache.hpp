#pragma once
// The event-driven cache stage of the cachesim device-model backend: a
// set-associative, LRU, line-granularity cache simulated one access at a
// time. Geometry (capacity / associativity / line size) is configurable so
// the ablation_cache bench can sweep it; eviction order and hit/miss
// accounting are exact, which the LRU and associativity-conflict unit tests
// (tests/test_model_backends.cpp) pin down.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cubie::sim::cachesim {

struct CacheConfig {
  std::size_t size_bytes = 50u << 20;  // capacity (default: H200-class 50 MB)
  int ways = 16;                       // associativity
  int line_bytes = 128;                // line (sector pair) granularity
};

class SetAssocCache {
 public:
  explicit SetAssocCache(const CacheConfig& cfg);

  // One byte-address access at line granularity. Returns true on hit;
  // misses allocate the line, evicting the set's LRU way when full.
  bool access(std::uint64_t addr);

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t accesses() const { return hits_ + misses_; }

  std::size_t num_sets() const { return sets_.size(); }
  int ways() const { return cfg_.ways; }
  int line_bytes() const { return cfg_.line_bytes; }

 private:
  struct Way {
    std::uint64_t tag = 0;
    std::uint64_t stamp = 0;  // global access counter at last touch (LRU)
    bool valid = false;
  };

  CacheConfig cfg_;
  std::vector<std::vector<Way>> sets_;
  std::uint64_t clock_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace cubie::sim::cachesim
