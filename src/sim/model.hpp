#pragma once
// Analytic timing model: maps a KernelProfile (counted work) to predicted
// execution time on a DeviceSpec, with a breakdown of which resource bounds
// the kernel. See calibration.hpp for the model equation and constants.

#include "sim/device.hpp"
#include "sim/profile.hpp"

#include <string>

namespace cubie::sim {

enum class Bottleneck { TensorPipe, CudaPipe, Dram, SharedMem, Issue, Launch };

std::string bottleneck_name(Bottleneck b);

struct Prediction {
  double time_s = 0.0;
  double avg_power_w = 0.0;
  double energy_j = 0.0;
  double edp = 0.0;  // Energy-delay product = avg power * time^2 (Section 7)
  Bottleneck bound = Bottleneck::Dram;

  // Resource times before taking the max (for roofline/diagnostics).
  double t_tensor = 0.0;
  double t_cuda = 0.0;
  double t_dram = 0.0;
  double t_smem = 0.0;
  double t_issue = 0.0;

  // Utilizations in [0,1] used by the power model.
  double u_tensor = 0.0;
  double u_cuda = 0.0;
  double u_mem = 0.0;
};

class DeviceModel {
 public:
  explicit DeviceModel(const DeviceSpec& spec) : spec_(&spec) {}

  const DeviceSpec& spec() const { return *spec_; }

  // Predict time/power/energy for one execution of the profiled kernel(s).
  Prediction predict(const KernelProfile& prof) const;

 private:
  const DeviceSpec* spec_;
};

}  // namespace cubie::sim
