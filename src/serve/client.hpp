#pragma once
// Cubie-Serve client side: a blocking line-protocol client plus the
// `cubie loadgen` load generator. The load generator fires a configurable
// request mix at a target concurrency and reduces the observed latencies
// to a MetricsReport (tool "cubie_loadgen": req_per_s, p50/p95/p99_ms,
// completed, rejected) so serving performance rides the same bench_diff /
// `cubie trend` gating as every other benchmark.

#include "common/report.hpp"
#include "serve/protocol.hpp"
#include "telemetry/metrics_registry.hpp"

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace cubie::serve {

// Where to connect: a Unix-domain socket path, or (when empty) localhost
// TCP on `tcp_port`.
struct Endpoint {
  std::string socket_path;
  int tcp_port = -1;
};

// Parse a comma-separated `--addr` list: an all-digits entry is a
// localhost TCP port, anything else a Unix socket path. Empty entries are
// skipped, so trailing commas are harmless.
std::vector<Endpoint> parse_endpoints(const std::string& spec);

// Human-readable endpoint label ("unix:/run/w0.sock", "tcp:127.0.0.1:7070").
std::string endpoint_name(const Endpoint& ep);

// A blocking client over one connection. One outstanding request at a time
// (call() pairs one sent line with one received line).
class Client {
 public:
  Client() = default;
  ~Client();
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  static std::optional<Client> connect(const Endpoint& ep,
                                       std::string* error);

  // Try each endpoint in order and return a connection to the first one
  // that answers `ping` with ok=true (first-healthy selection for
  // `cubie request --addr a,b,c`). *index (when given) receives the
  // position of the endpoint that won; *error accumulates one line per
  // skipped endpoint on total failure.
  static std::optional<Client> connect_first(
      const std::vector<Endpoint>& endpoints, std::string* error,
      std::size_t* index = nullptr);

  bool connected() const { return fd_ >= 0; }
  bool send_line(const std::string& line);
  // Next response line (without the '\n'); nullopt on EOF / error.
  std::optional<std::string> recv_line();
  // send + recv + parse. nullopt (with *error) on transport or JSON
  // failure; protocol-level errors come back as the parsed envelope
  // (ok=false) for the caller to inspect.
  std::optional<report::Json> call(const Request& r, std::string* error);

 private:
  int fd_ = -1;
  std::string buf_;  // bytes received past the last returned line
};

struct LoadgenOptions {
  Endpoint endpoint;
  int concurrency = 4;  // client threads, one connection each
  int requests = 64;    // total requests across all threads
  // The request mix, assigned round-robin by global request index. Request
  // ids are overwritten with "lg-<index>".
  std::vector<Request> mix;
  double deadline_ms = 0;  // applied to every request when > 0
  // Cubie-Flight: stamp every request with a fresh client-generated trace
  // id and verify the response echoes it (mismatches are counted below).
  bool trace = true;
};

struct LoadgenResult {
  std::size_t completed = 0;  // ok=true responses
  std::size_t rejected = 0;   // ok=false responses, by typed code below
  std::size_t transport_errors = 0;
  // Responses whose "trace" echo was missing or differed from the id the
  // client sent (only counted when LoadgenOptions::trace is on). Any
  // nonzero value means request/telemetry correlation is broken.
  std::size_t trace_mismatches = 0;
  // (error code name, count), insertion-ordered.
  std::vector<std::pair<std::string, std::size_t>> by_code;
  std::vector<double> latencies_ms;  // per completed request, sorted
  double wall_s = 0.0;  // first send to last response across all threads

  double req_per_s() const;
  // Linear-interpolated percentile (numpy's default) over the
  // completed-request latencies, q in [0, 100]. Well-defined for any
  // sample count — a single sample answers every q with itself, and small
  // N no longer collapses distinct ranks the way nearest-rank did
  // (p95 == p99 == p100 for N < 100). 0 when nothing completed.
  double percentile_ms(double q) const;
  // The client-observed latency distribution in the daemon's fixed bucket
  // ladder (telemetry::latency_bucket_bounds()), so both sides of the wire
  // are directly comparable.
  telemetry::HistogramSnapshot latency_histogram() const;
};

// Fire the mix. False (with *error) only when no connection could be
// established; per-request failures are counted in the result instead.
bool run_loadgen(const LoadgenOptions& opts, LoadgenResult& out,
                 std::string* error);

// The result as a MetricsReport: tool `tool` ("cubie_loadgen" for direct
// daemon runs, "cubie_loadgen_cluster" when the target is a cluster
// router — distinct tools keep the two in separate `cubie record`/`trend`
// gate series), one record ("loadgen", "mix", "-", "aggregate") with
// req_per_s, p50_ms, p95_ms, p99_ms, completed, rejected — plus a
// "latency_histogram" captured table (cumulative counts per fixed bucket,
// same ladder as the daemon's cubie_request_latency_seconds).
report::MetricsReport loadgen_report(const LoadgenResult& r,
                                     const std::string& tool = "cubie_loadgen");

}  // namespace cubie::serve
