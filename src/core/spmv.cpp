// SpMV workload (Quadrant IV): y = A * x for the Table 4 matrices.
//
// TC: DASP-style execution. Rows are grouped by nonzero count (long /
// medium / short, DASP's three categories), packed 8 rows at a time; each
// row's nonzeros are chunked into 4-wide MMA k-slices. The A fragment holds
// matrix values, the B fragment holds the gathered x values (one column per
// row), and only the diagonal of each 8x8 output is useful. The FMA chain
// over a row matches the serial order (fused), which is why DASP's errors
// are the smallest in Table 6.
// CC: identical layout/order on CUDA cores. CC-E: essential per-row dot
// products with 2-way partial sums (the vectorized essential computation,
// with its own rounding). Baseline: cuSPARSE-style CSR warp-per-row with a
// 32-way partial tree.

#include "core/kernels.hpp"

#include "common/rng.hpp"
#include "common/table.hpp"
#include "mma/mma.hpp"
#include "sim/calibration.hpp"
#include "sparse/generators.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <string>
#include <vector>

namespace cubie::core {
namespace {

namespace scal = cubie::sim::cal;

sparse::Csr load_matrix(const TestCase& tc) {
  // dims[0] carries the scale divisor chosen at cases() time, so runs are
  // reproducible regardless of the current environment.
  return sparse::make_table4_matrix(tc.dataset, static_cast<int>(tc.dims[0]))
      .matrix;
}

// DASP row grouping: indices of rows ordered long -> medium -> short.
std::vector<int> dasp_row_order(const sparse::Csr& a) {
  std::vector<int> longs, mediums, shorts;
  for (int r = 0; r < a.rows; ++r) {
    const int d = a.row_nnz(r);
    (d > 32 ? longs : d >= 8 ? mediums : shorts).push_back(r);
  }
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(a.rows));
  order.insert(order.end(), longs.begin(), longs.end());
  order.insert(order.end(), mediums.begin(), mediums.end());
  order.insert(order.end(), shorts.begin(), shorts.end());
  return order;
}

std::vector<double> run_dasp(const sparse::Csr& a,
                             const std::vector<double>& x, mma::Context& ctx) {
  std::vector<double> y(static_cast<std::size_t>(a.rows), 0.0);
  const auto order = dasp_row_order(a);

  ctx.launch((a.rows / 8.0) * 32.0);
  // DASP format traffic: every MMA *slot* is loaded, including the zero
  // padding that rounds each group of 8 rows up to the widest row's chunk
  // count - the redundant memory the paper's CC-E variant eliminates
  // (Section 6.3: removing it yields up to 20% on SpMV).
  double padded_slots = 0.0;
  for (std::size_t g = 0; g < order.size(); g += 8) {
    int max_chunks = 0;
    for (std::size_t i = 0; i < std::min<std::size_t>(8, order.size() - g); ++i)
      max_chunks = std::max(max_chunks, (a.row_nnz(order[g + i]) + 3) / 4);
    padded_slots += 32.0 * max_chunks;
  }
  ctx.load_global(padded_slots * (8.0 + 4.0 + 8.0));
  ctx.load_global(static_cast<double>(a.rows) * 8.0);
  ctx.store_global(static_cast<double>(a.rows) * 8.0);

  double a_frag[32], b_frag[32];
  for (std::size_t g = 0; g < order.size(); g += 8) {
    const std::size_t rows_here = std::min<std::size_t>(8, order.size() - g);
    int max_chunks = 0;
    for (std::size_t i = 0; i < rows_here; ++i) {
      max_chunks = std::max(max_chunks, (a.row_nnz(order[g + i]) + 3) / 4);
    }
    double acc[64] = {};
    for (int chunk = 0; chunk < max_chunks; ++chunk) {
      for (int i = 0; i < 8; ++i) {
        for (int kk = 0; kk < 4; ++kk) {
          a_frag[i * 4 + kk] = 0.0;
          b_frag[kk * 8 + i] = 0.0;
        }
        if (static_cast<std::size_t>(i) >= rows_here) continue;
        const int r = order[g + static_cast<std::size_t>(i)];
        const int lo = a.row_ptr[static_cast<std::size_t>(r)];
        const int hi = a.row_ptr[static_cast<std::size_t>(r) + 1];
        for (int kk = 0; kk < 4; ++kk) {
          const int p = lo + chunk * 4 + kk;
          if (p < hi) {
            a_frag[i * 4 + kk] = a.vals[static_cast<std::size_t>(p)];
            b_frag[kk * 8 + i] = x[static_cast<std::size_t>(a.col_idx[static_cast<std::size_t>(p)])];
          }
        }
      }
      ctx.dmma_m8n8k4_acc(a_frag, b_frag, acc);
    }
    // Diagonal extraction: the only useful elements.
    for (std::size_t i = 0; i < rows_here; ++i) {
      y[static_cast<std::size_t>(order[g + i])] = acc[i * 8 + i];
    }
  }
  return y;
}

std::vector<double> run_cce_spmv(const sparse::Csr& a,
                                 const std::vector<double>& x,
                                 mma::Context& ctx) {
  std::vector<double> y(static_cast<std::size_t>(a.rows), 0.0);
  ctx.launch((a.rows / 8.0) * 32.0);
  ctx.load_global(static_cast<double>(a.nnz()) * (8.0 + 4.0 + 8.0) +
                  static_cast<double>(a.rows) * 8.0);
  ctx.store_global(static_cast<double>(a.rows) * 8.0);
  ctx.cc_fma(static_cast<double>(a.nnz()));
  ctx.cc_flop(static_cast<double>(a.rows));

  for (int r = 0; r < a.rows; ++r) {
    double part[2] = {};  // two-lane essential partial sums
    int lane = 0;
    for (int p = a.row_ptr[static_cast<std::size_t>(r)]; p < a.row_ptr[static_cast<std::size_t>(r) + 1]; ++p) {
      part[lane] = std::fma(a.vals[static_cast<std::size_t>(p)],
                            x[static_cast<std::size_t>(a.col_idx[static_cast<std::size_t>(p)])],
                            part[lane]);
      lane ^= 1;
    }
    y[static_cast<std::size_t>(r)] = part[0] + part[1];
  }
  return y;
}

std::vector<double> run_baseline_spmv(const sparse::Csr& a,
                                      const std::vector<double>& x,
                                      mma::Context& ctx) {
  std::vector<double> y(static_cast<std::size_t>(a.rows), 0.0);
  ctx.launch(static_cast<double>(a.rows) * 32.0);
  // CSR traffic: row_ptr + col_idx (4 B) + vals (8 B) + scattered x gathers.
  ctx.load_global(static_cast<double>(a.nnz()) * (4.0 + 8.0 + 8.0) +
                  static_cast<double>(a.rows) * 8.0);
  ctx.store_global(static_cast<double>(a.rows) * 8.0);
  ctx.cc_fma(static_cast<double>(a.nnz()));
  ctx.cc_flop(static_cast<double>(a.rows) * 31.0);

  for (int r = 0; r < a.rows; ++r) {
    double part[32] = {};
    int lane = 0;
    for (int p = a.row_ptr[static_cast<std::size_t>(r)]; p < a.row_ptr[static_cast<std::size_t>(r) + 1]; ++p) {
      part[lane] = std::fma(a.vals[static_cast<std::size_t>(p)],
                            x[static_cast<std::size_t>(a.col_idx[static_cast<std::size_t>(p)])],
                            part[lane]);
      lane = (lane + 1) % 32;
    }
    for (int stride = 16; stride >= 1; stride /= 2)
      for (int l = 0; l < stride; ++l) part[l] += part[l + stride];
    y[static_cast<std::size_t>(r)] = part[0];
  }
  return y;
}

class SpmvWorkload final : public Workload {
 public:
  std::string name() const override { return "SpMV"; }
  Quadrant quadrant() const override { return Quadrant::IV; }
  std::string dwarf() const override { return "Sparse linear algebra"; }
  std::string baseline_name() const override { return "cuSPARSE SpMV v12.8"; }

  std::vector<TestCase> cases(int s) const override {
    std::vector<TestCase> cs;
    for (const auto& nm : sparse::table4_names()) cs.push_back({nm, {s}, nm});
    return cs;
  }

  RunOutput run(Variant v, const TestCase& tc,
                const RunOptions& opts) const override {
    RunOutput out;
    sim::Span total(opts.tracer, "SpMV/" + variant_name(v), out.profile);
    sim::Span setup(opts.tracer, "setup", out.profile);
    const sparse::Csr a = load_matrix(tc);
    const auto x = common::random_vector(static_cast<std::size_t>(a.cols), 51);
    setup.finish();
    mma::Context ctx(v == Variant::TC ? mma::Pipe::TensorCore
                                      : mma::Pipe::CudaCore,
                     out.profile);
    sim::Span kernel(opts.tracer, "kernel", out.profile);
    switch (v) {
      case Variant::TC:
      case Variant::CC:
        out.values = run_dasp(a, x, ctx);
        out.profile.pipe_eff = v == Variant::TC ? scal::kTcSmallBlockEff
                                                : scal::kCcEmulationEff;
        out.profile.mem_eff = v == Variant::TC ? scal::kMemEffTcLayout
                                               : scal::kMemEffCcEmulation;
        break;
      case Variant::CCE:
        out.values = run_cce_spmv(a, x, ctx);
        out.profile.pipe_eff = scal::kCcEssentialEff;
        out.profile.mem_eff = scal::kMemEffTcLayout;
        break;
      case Variant::Baseline:
        out.values = run_baseline_spmv(a, x, ctx);
        out.profile.pipe_eff = scal::kCcLibraryEff;
        out.profile.mem_eff = scal::kMemEffIrregular;
        break;
    }
    out.profile.useful_flops = 2.0 * static_cast<double>(a.nnz());
    // Cachesim descriptor: column-indexed gathers from x dominate — the
    // reuse window is values + indices + the dense vectors.
    out.profile.access = sim::AccessPattern::Irregular;
    out.profile.working_set_bytes =
        static_cast<double>(a.nnz()) * 12.0 +
        static_cast<double>(a.rows + a.cols) * 8.0;
    return out;
  }

  std::vector<double> reference(const TestCase& tc) const override {
    const sparse::Csr a = load_matrix(tc);
    const auto x = common::random_vector(static_cast<std::size_t>(a.cols), 51);
    return sparse::spmv_serial(a, x);
  }
};

}  // namespace

WorkloadPtr make_spmv() { return std::make_unique<SpmvWorkload>(); }

}  // namespace cubie::core
