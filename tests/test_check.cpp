// Cubie-Check contracts: ULP distance, tolerance selection, element-wise
// differential comparison (including the non-finite census), the
// verify_plan sweep on real workloads, perturbation rejection, and the
// MetricsReport export shape.

#include "check/check.hpp"
#include "engine/engine.hpp"
#include "engine/plan.hpp"

#include "common/report.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

namespace cubie {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
const double kNan = std::numeric_limits<double>::quiet_NaN();

TEST(CheckUlp, CountsRepresentableDoubles) {
  EXPECT_EQ(check::ulp_distance(1.0, 1.0), 0.0);
  EXPECT_EQ(check::ulp_distance(0.0, -0.0), 0.0);
  EXPECT_EQ(check::ulp_distance(1.0, std::nextafter(1.0, 2.0)), 1.0);
  EXPECT_EQ(check::ulp_distance(std::nextafter(1.0, 2.0), 1.0), 1.0);
  EXPECT_EQ(check::ulp_distance(-1.0, std::nextafter(-1.0, -2.0)), 1.0);
  // Straddling zero: distance is the sum of both sides' offsets from 0.
  const double tiny = std::numeric_limits<double>::denorm_min();
  EXPECT_EQ(check::ulp_distance(tiny, -tiny), 2.0);
  EXPECT_EQ(check::ulp_distance(kInf, kInf), 0.0);
  EXPECT_EQ(check::ulp_distance(kNan, 1.0), kInf);
  EXPECT_EQ(check::ulp_distance(1.0, kNan), kInf);
}

TEST(CheckTolerance, PerWorkloadSelection) {
  engine::ExperimentEngine eng;
  // BFS is not floating-point: exact tolerance, every gate zero.
  const auto* bfs = eng.workload("BFS");
  ASSERT_NE(bfs, nullptr);
  const auto bt = check::tolerance_for(*bfs);
  EXPECT_EQ(bt.max_abs, 0.0);
  EXPECT_EQ(bt.max_rel, 0.0);
  EXPECT_EQ(bt.max_ulp, 0.0);
  // Floating-point workloads get Table 6-derived non-zero gates.
  const auto* gemm = eng.workload("GEMM");
  ASSERT_NE(gemm, nullptr);
  const auto gt = check::tolerance_for(*gemm);
  EXPECT_GT(gt.max_abs, 0.0);
  EXPECT_GT(gt.max_rel, 0.0);
  EXPECT_GT(gt.max_ulp, 0.0);
  // SpGEMM accumulates more error than Stencil; the floors reflect that.
  EXPECT_GT(check::tolerance_for(*eng.workload("SpGEMM")).max_abs,
            check::tolerance_for(*eng.workload("Stencil")).max_abs);
}

TEST(CheckCompare, IdenticalValuesPass) {
  const std::vector<double> v{1.0, -2.5, 0.0, 1e300};
  const auto verdict = check::compare_values(v, v, check::exact_tolerance());
  EXPECT_TRUE(verdict.pass);
  EXPECT_EQ(verdict.n, 4u);
  EXPECT_EQ(verdict.violations, 0u);
  EXPECT_EQ(verdict.max_abs_err, 0.0);
  EXPECT_EQ(verdict.max_ulp, 0.0);
}

TEST(CheckCompare, EachGateIsAnIndependentExcuse) {
  check::Tolerance tol;
  tol.max_abs = 1e-6;
  tol.max_rel = 1e-9;
  tol.max_ulp = 4;
  // 1 ULP off at 1.0: fails abs? no (2e-16 < 1e-6). Passes.
  auto v = check::compare_values({std::nextafter(1.0, 2.0)}, {1.0}, tol);
  EXPECT_TRUE(v.pass);
  // Large value, tiny relative error: abs gate fails, rel gate excuses it.
  v = check::compare_values({1e12 * (1.0 + 1e-12)}, {1e12}, tol);
  EXPECT_TRUE(v.pass);
  // Beyond all three gates: violation.
  v = check::compare_values({1.001}, {1.0}, tol);
  EXPECT_FALSE(v.pass);
  EXPECT_EQ(v.violations, 1u);
  EXPECT_FALSE(v.reason.empty());
}

TEST(CheckCompare, SizeMismatchFailsOutright) {
  const auto v =
      check::compare_values({1.0, 2.0}, {1.0}, check::Tolerance{1, 1, 1});
  EXPECT_FALSE(v.pass);
  EXPECT_NE(v.reason.find("size mismatch"), std::string::npos);
}

TEST(CheckCompare, NonFiniteCensusAndMatching) {
  check::Tolerance tol{1e-6, 1e-9, 4};
  // Matched non-finites conform: NaN vs NaN, same-signed infinity.
  auto v = check::compare_values({kNan, kInf, -kInf, 1.0},
                                 {kNan, kInf, -kInf, 1.0}, tol);
  EXPECT_TRUE(v.pass);
  EXPECT_EQ(v.census.out_nan, 1u);
  EXPECT_EQ(v.census.out_inf, 2u);
  EXPECT_EQ(v.census.ref_nan, 1u);
  EXPECT_EQ(v.census.ref_inf, 2u);
  EXPECT_EQ(v.census.mismatched, 0u);
  // Any class or sign mismatch is a violation regardless of tolerances.
  v = check::compare_values({kNan, kInf, 1.0}, {1.0, -kInf, kNan}, tol);
  EXPECT_FALSE(v.pass);
  EXPECT_EQ(v.census.mismatched, 3u);
  EXPECT_EQ(v.violations, 3u);
}

// The acceptance sweep in miniature: representative cases of a workload
// from each reference style — Baseline-backed (GEMM, Scan), CPU-serial
// (PiC, no baseline), and exact non-floating-point (BFS).
TEST(CheckSweep, RepresentativeSubsetConforms) {
  engine::ExperimentEngine eng;
  const auto plan = engine::Plan::representative(64).with_workloads(
      {"GEMM", "Scan", "BFS", "PiC"});
  const auto rep = check::verify_plan(eng, plan);
  EXPECT_EQ(rep.groups, 4u);
  EXPECT_GT(rep.verdicts.size(), 4u);
  EXPECT_EQ(rep.violations, 0u);
  EXPECT_TRUE(rep.pass());
  // PiC has no baseline: apart from the TC-vs-CC invariant, its verdicts
  // must be judged against the CPU serial ground truth.
  bool saw_pic_serial = false;
  for (const auto& v : rep.verdicts) {
    if (v.workload == "PiC" && v.reference != "TC") {
      EXPECT_EQ(v.reference, "CPU-serial");
      saw_pic_serial = true;
    }
  }
  EXPECT_TRUE(saw_pic_serial);
  // The TC-vs-CC construction invariant is judged bit-exactly.
  bool saw_invariant = false;
  for (const auto& v : rep.verdicts) {
    if (v.reference == "TC") {
      EXPECT_EQ(v.variant, "CC");
      EXPECT_EQ(v.tolerance.max_abs, 0.0);
      EXPECT_EQ(v.max_ulp, 0.0) << v.workload << " " << v.case_label;
      saw_invariant = true;
    }
  }
  EXPECT_TRUE(saw_invariant);
}

// The harness must reject outputs skewed beyond tolerance — this is the
// fault-injection proof that a PASS means something.
TEST(CheckSweep, PerturbationIsRejected) {
  engine::ExperimentEngine eng;
  const auto plan = engine::Plan::representative(64).with_workloads({"GEMM"});
  const auto rep = check::verify_plan(eng, plan, 1e-3);
  EXPECT_FALSE(rep.pass());
  EXPECT_GT(rep.violations, 0u);
}

TEST(CheckReport, MetricsExportShape) {
  engine::ExperimentEngine eng;
  const auto plan = engine::Plan::representative(64).with_workloads({"Scan"});
  const auto conf = check::verify_plan(eng, plan);
  const auto rep = conf.to_metrics_report("cubie_check", "test", 64);
  EXPECT_EQ(rep.tool, "cubie_check");
  ASSERT_EQ(rep.records.size(), conf.verdicts.size());
  for (std::size_t i = 0; i < rep.records.size(); ++i) {
    const auto& rec = rep.records[i];
    const auto& v = conf.verdicts[i];
    EXPECT_EQ(rec.workload, v.workload);
    EXPECT_EQ(rec.gpu, "vs " + v.reference);
    ASSERT_NE(rec.get("pass"), nullptr);
    EXPECT_EQ(*rec.get("pass"), v.pass ? 1.0 : 0.0);
    ASSERT_NE(rec.get("n"), nullptr);
    EXPECT_EQ(*rec.get("n"), static_cast<double>(v.n));
  }
  // The verdict table rides along, and the whole thing round-trips through
  // the schema-versioned JSON reader.
  ASSERT_EQ(rep.tables.size(), 1u);
  EXPECT_EQ(rep.tables[0].name, "conformance");
  const auto back = report::MetricsReport::from_json(rep.to_json());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->records.size(), rep.records.size());
}

}  // namespace
}  // namespace cubie
