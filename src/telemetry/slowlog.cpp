#include "telemetry/slowlog.hpp"

#include "common/table.hpp"

#include <algorithm>
#include <fstream>
#include <istream>
#include <ostream>
#include <utility>

namespace cubie::telemetry {

using report::Json;

namespace {

constexpr std::size_t kMaxOpenTraces = 1024;  // in-flight slices kept
constexpr std::size_t kMaxSlice = 8192;       // events buffered per trace

const char* get_string(const Json& j, const char* key, const char* fallback) {
  const Json* v = j.find(key);
  return v && v->is_string() ? v->as_string().c_str() : fallback;
}

double get_number(const Json& j, const char* key, double fallback) {
  const Json* v = j.find(key);
  return v && v->is_number() ? v->as_number() : fallback;
}

std::string fmt_ms(double seconds) {
  return common::fmt_double(seconds * 1e3, 2) + " ms";
}

}  // namespace

// ---------------------------------------------------------------------------
// Event JSONL readback.

bool event_from_json(const Json& j, Event* out) {
  if (!j.is_object()) return false;
  const Json* kind = j.find("kind");
  if (!kind || !kind->is_string()) return false;
  static const EventKind kAll[] = {
      EventKind::PlanStart,       EventKind::CellStart,
      EventKind::CellFinish,      EventKind::CacheLoad,
      EventKind::CacheStore,      EventKind::SpanOpen,
      EventKind::SpanClose,       EventKind::CheckVerdict,
      EventKind::RequestAccepted, EventKind::RequestQueued,
      EventKind::RequestStarted,  EventKind::RequestFinished,
      EventKind::RequestRejected, EventKind::CacheSimStats,
  };
  bool known = false;
  for (EventKind k : kAll) {
    if (kind->as_string() == event_kind_name(k)) {
      out->kind = k;
      known = true;
      break;
    }
  }
  // Unknown kinds (a future schema's new event) and non-event records (the
  // JSONL header's kind is "cubie-events") are skipped, not errors; any
  // other unknown field below is simply never looked at.
  if (!known) return false;
  out->seq = static_cast<std::uint64_t>(get_number(j, "seq", 0.0));
  out->tid = static_cast<int>(get_number(j, "tid", 0.0));
  out->t_s = get_number(j, "t_s", 0.0);
  out->name = get_string(j, "name", "");
  out->source = get_string(j, "source", "");
  out->status = get_string(j, "status", "");
  out->detail = get_string(j, "detail", "");
  out->trace_id = get_string(j, "trace_id", "");
  out->span_id = get_string(j, "span_id", "");
  out->request_id = get_string(j, "request_id", "");
  out->wall_s = get_number(j, "wall_s", -1.0);
  out->modeled_s = get_number(j, "modeled_s", -1.0);
  out->count = static_cast<std::size_t>(get_number(j, "count", 0.0));
  const Json* ok = j.find("ok");
  out->ok = ok && ok->is_bool() ? (ok->as_bool() ? 1 : 0) : -1;
  return true;
}

std::vector<Event> parse_events_jsonl(std::istream& is) {
  std::vector<Event> out;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const auto j = Json::parse(line);
    if (!j) continue;
    Event e;
    if (event_from_json(*j, &e)) out.push_back(std::move(e));
  }
  return out;
}

std::vector<Event> slice_for_trace(const std::vector<Event>& events,
                                   const std::string& trace_prefix) {
  std::vector<Event> out;
  if (trace_prefix.empty()) return out;
  for (const Event& e : events) {
    if (e.trace_id.compare(0, trace_prefix.size(), trace_prefix) == 0)
      out.push_back(e);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Timeline assembly.

RequestTimeline assemble_timeline(std::vector<Event> slice) {
  std::stable_sort(slice.begin(), slice.end(),
                   [](const Event& a, const Event& b) { return a.seq < b.seq; });
  RequestTimeline t;
  t.events = slice.size();
  double queued_t = -1.0, started_t = -1.0;
  // Per-thread span stacks: depth = nesting level within this request.
  std::map<int, std::vector<std::string>> span_stacks;
  for (const Event& e : slice) {
    if (t.trace_id.empty() && !e.trace_id.empty()) t.trace_id = e.trace_id;
    if (t.span_id.empty() && !e.span_id.empty()) t.span_id = e.span_id;
    if (t.request_id.empty() && !e.request_id.empty())
      t.request_id = e.request_id;
    switch (e.kind) {
      case EventKind::CellFinish: {
        ++t.cells;
        if (e.source == "compute") ++t.cells_compute;
        else if (e.source == "memo") ++t.cells_memo;
        else if (e.source == "disk") ++t.cells_disk;
        else if (e.source == "coalesced") ++t.cells_coalesced;
        t.cell_list.push_back({e.name, e.source, e.wall_s, e.modeled_s});
        break;
      }
      case EventKind::SpanOpen:
        span_stacks[e.tid].push_back(e.name);
        break;
      case EventKind::SpanClose: {
        auto& st = span_stacks[e.tid];
        int depth = static_cast<int>(st.size());
        // Pop the innermost pending open with this name (tolerates the
        // Tracer's implicit closes, like ChromeTraceSink does).
        for (auto it = st.rbegin(); it != st.rend(); ++it) {
          if (*it == e.name) {
            depth = static_cast<int>(st.rend() - it) - 1;
            st.erase(std::next(it).base());
            break;
          }
        }
        t.spans.push_back({e.name, e.wall_s, depth});
        break;
      }
      case EventKind::RequestQueued:
        queued_t = e.t_s;
        t.queue_depth = e.count;
        if (t.key.empty()) t.key = e.name;
        break;
      case EventKind::RequestStarted:
        started_t = e.t_s;
        if (t.key.empty()) t.key = e.name;
        break;
      case EventKind::RequestFinished:
        t.key = e.name;
        t.ok = e.ok;
        if (e.wall_s >= 0.0) t.wall_s = e.wall_s;
        break;
      case EventKind::RequestRejected:
        t.key = e.name;
        t.ok = 0;
        t.error = e.source;
        t.queue_depth = e.count;
        break;
      default:
        break;
    }
  }
  if (queued_t >= 0.0 && started_t >= queued_t)
    t.queue_wait_s = started_t - queued_t;
  return t;
}

Json timeline_to_json(const RequestTimeline& t) {
  Json j = Json::object();
  j["schema_version"] = Json::number(kEventSchemaVersion);
  j["kind"] = Json::string("cubie-slowlog");
  j["trace_id"] = Json::string(t.trace_id);
  if (!t.span_id.empty()) j["span_id"] = Json::string(t.span_id);
  if (!t.request_id.empty()) j["request_id"] = Json::string(t.request_id);
  if (!t.key.empty()) j["key"] = Json::string(t.key);
  if (t.ok >= 0) j["ok"] = Json::boolean(t.ok != 0);
  if (!t.error.empty()) j["error"] = Json::string(t.error);
  if (t.wall_s >= 0.0) j["wall_s"] = Json::number(t.wall_s);
  if (t.queue_wait_s >= 0.0) j["queue_wait_s"] = Json::number(t.queue_wait_s);
  j["queue_depth"] = Json::number(static_cast<double>(t.queue_depth));
  j["cells"] = Json::number(static_cast<double>(t.cells));
  j["cells_compute"] = Json::number(static_cast<double>(t.cells_compute));
  j["cells_memo"] = Json::number(static_cast<double>(t.cells_memo));
  j["cells_disk"] = Json::number(static_cast<double>(t.cells_disk));
  j["cells_coalesced"] = Json::number(static_cast<double>(t.cells_coalesced));
  j["events"] = Json::number(static_cast<double>(t.events));
  Json cells = Json::array();
  for (const TimelineCell& c : t.cell_list) {
    Json cj = Json::object();
    cj["name"] = Json::string(c.name);
    cj["source"] = Json::string(c.source);
    if (c.wall_s >= 0.0) cj["wall_s"] = Json::number(c.wall_s);
    if (c.modeled_s >= 0.0) cj["modeled_s"] = Json::number(c.modeled_s);
    cells.push_back(std::move(cj));
  }
  j["cell_list"] = std::move(cells);
  Json spans = Json::array();
  for (const TimelineSpan& s : t.spans) {
    Json sj = Json::object();
    sj["name"] = Json::string(s.name);
    if (s.wall_s >= 0.0) sj["wall_s"] = Json::number(s.wall_s);
    sj["depth"] = Json::number(s.depth);
    spans.push_back(std::move(sj));
  }
  j["spans"] = std::move(spans);
  return j;
}

bool timeline_from_json(const Json& j, RequestTimeline* out) {
  if (!j.is_object()) return false;
  const Json* kind = j.find("kind");
  if (!kind || !kind->is_string() || kind->as_string() != "cubie-slowlog")
    return false;
  RequestTimeline t;
  t.trace_id = get_string(j, "trace_id", "");
  t.span_id = get_string(j, "span_id", "");
  t.request_id = get_string(j, "request_id", "");
  t.key = get_string(j, "key", "");
  t.error = get_string(j, "error", "");
  const Json* ok = j.find("ok");
  t.ok = ok && ok->is_bool() ? (ok->as_bool() ? 1 : 0) : -1;
  t.wall_s = get_number(j, "wall_s", -1.0);
  t.queue_wait_s = get_number(j, "queue_wait_s", -1.0);
  t.queue_depth = static_cast<std::size_t>(get_number(j, "queue_depth", 0.0));
  t.cells = static_cast<std::size_t>(get_number(j, "cells", 0.0));
  t.cells_compute =
      static_cast<std::size_t>(get_number(j, "cells_compute", 0.0));
  t.cells_memo = static_cast<std::size_t>(get_number(j, "cells_memo", 0.0));
  t.cells_disk = static_cast<std::size_t>(get_number(j, "cells_disk", 0.0));
  t.cells_coalesced =
      static_cast<std::size_t>(get_number(j, "cells_coalesced", 0.0));
  t.events = static_cast<std::size_t>(get_number(j, "events", 0.0));
  if (const Json* cells = j.find("cell_list"); cells && cells->is_array()) {
    for (std::size_t i = 0; i < cells->size(); ++i) {
      const Json& cj = cells->at(i);
      TimelineCell c;
      c.name = get_string(cj, "name", "");
      c.source = get_string(cj, "source", "");
      c.wall_s = get_number(cj, "wall_s", -1.0);
      c.modeled_s = get_number(cj, "modeled_s", -1.0);
      t.cell_list.push_back(std::move(c));
    }
  }
  if (const Json* spans = j.find("spans"); spans && spans->is_array()) {
    for (std::size_t i = 0; i < spans->size(); ++i) {
      const Json& sj = spans->at(i);
      TimelineSpan s;
      s.name = get_string(sj, "name", "");
      s.wall_s = get_number(sj, "wall_s", -1.0);
      s.depth = static_cast<int>(get_number(sj, "depth", 0.0));
      t.spans.push_back(std::move(s));
    }
  }
  *out = std::move(t);
  return true;
}

void render_timeline(const RequestTimeline& t, std::ostream& os) {
  os << "trace " << (t.trace_id.empty() ? "(none)" : t.trace_id);
  if (!t.request_id.empty()) os << "  request " << t.request_id;
  os << "\n";
  if (!t.key.empty()) os << "  key: " << t.key << "\n";
  os << "  status: ";
  if (!t.error.empty()) {
    os << "rejected (" << t.error << ")";
  } else if (t.ok == 0) {
    os << "FAILED";
  } else if (t.ok == 1) {
    os << "ok";
  } else {
    os << "unfinished";
  }
  if (t.wall_s >= 0.0) os << "  service " << fmt_ms(t.wall_s);
  os << "\n";
  if (t.queue_wait_s >= 0.0 || t.queue_depth > 0) {
    os << "  queue:";
    if (t.queue_wait_s >= 0.0) os << " wait " << fmt_ms(t.queue_wait_s);
    os << " depth " << t.queue_depth << "\n";
  }
  os << "  cells: " << t.cells << " (compute " << t.cells_compute << ", memo "
     << t.cells_memo << ", disk " << t.cells_disk << ", coalesced "
     << t.cells_coalesced << ")\n";
  constexpr std::size_t kMaxLines = 24;
  for (std::size_t i = 0; i < t.cell_list.size() && i < kMaxLines; ++i) {
    const TimelineCell& c = t.cell_list[i];
    os << "    [" << c.source << "] ";
    if (c.wall_s >= 0.0) os << fmt_ms(c.wall_s) << "  ";
    os << c.name << "\n";
  }
  if (t.cell_list.size() > kMaxLines)
    os << "    ... and " << (t.cell_list.size() - kMaxLines) << " more\n";
  if (!t.spans.empty()) {
    os << "  spans: " << t.spans.size() << "\n";
    for (std::size_t i = 0; i < t.spans.size() && i < kMaxLines; ++i) {
      const TimelineSpan& s = t.spans[i];
      os << "    ";
      for (int d = 0; d < s.depth; ++d) os << "  ";
      os << s.name;
      if (s.wall_s >= 0.0) os << " " << fmt_ms(s.wall_s);
      os << "\n";
    }
    if (t.spans.size() > kMaxLines)
      os << "    ... and " << (t.spans.size() - kMaxLines) << " more\n";
  }
  os << "  events: " << t.events << "\n";
}

// ---------------------------------------------------------------------------
// SlowlogSink.

SlowlogSink::SlowlogSink(std::string path, double slow_ms, std::size_t keep)
    : path_(std::move(path)),
      slow_s_(slow_ms > 0.0 ? slow_ms / 1e3 : 0.0),
      keep_(std::max<std::size_t>(1, keep)) {
  // Create (truncate) the file up front so a run with zero qualifying
  // requests still leaves a well-defined empty slowlog.
  std::lock_guard<std::mutex> lk(mu_);
  rewrite_locked();
}

void SlowlogSink::on_event(const Event& e) {
  if (e.trace_id.empty()) return;
  std::lock_guard<std::mutex> lk(mu_);
  auto it = open_.find(e.trace_id);
  if (it == open_.end()) {
    if (open_.size() >= kMaxOpenTraces) {
      // Evict the slice whose first event is oldest: a trace that never
      // finishes must not pin memory forever.
      auto oldest = open_.begin();
      for (auto o = open_.begin(); o != open_.end(); ++o) {
        if (!o->second.empty() && !oldest->second.empty() &&
            o->second.front().seq < oldest->second.front().seq)
          oldest = o;
      }
      open_.erase(oldest);
    }
    it = open_.emplace(e.trace_id, std::vector<Event>()).first;
  }
  if (it->second.size() < kMaxSlice) it->second.push_back(e);
  if (e.kind == EventKind::RequestFinished ||
      e.kind == EventKind::RequestRejected)
    finalize_locked(e.trace_id);
}

void SlowlogSink::finalize_locked(const std::string& trace_id) {
  auto it = open_.find(trace_id);
  if (it == open_.end()) return;
  RequestTimeline t = assemble_timeline(std::move(it->second));
  open_.erase(it);
  const bool failed = t.ok == 0 || !t.error.empty();
  const bool slow = t.wall_s >= 0.0 && t.wall_s >= slow_s_;
  if (!failed && !slow) return;
  top_.push_back(std::move(t));
  std::stable_sort(top_.begin(), top_.end(),
                   [](const RequestTimeline& a, const RequestTimeline& b) {
                     return a.wall_s > b.wall_s;
                   });
  if (top_.size() > keep_) top_.resize(keep_);
  dirty_ = true;
  rewrite_locked();
}

void SlowlogSink::rewrite_locked() {
  dirty_ = false;
  if (path_.empty()) return;
  std::ofstream os(path_, std::ios::trunc);
  if (!os) return;
  for (const RequestTimeline& t : top_)
    os << timeline_to_json(t).dump(-1) << '\n';
}

void SlowlogSink::flush() {
  std::lock_guard<std::mutex> lk(mu_);
  if (dirty_) rewrite_locked();
}

std::vector<RequestTimeline> SlowlogSink::top() const {
  std::lock_guard<std::mutex> lk(mu_);
  return top_;
}

}  // namespace cubie::telemetry
