#pragma once
// Device-model backends: map a KernelProfile (counted work) to a predicted
// execution time on a DeviceSpec, with a breakdown of which resource bounds
// the kernel.
//
// DeviceModel is the abstract backend interface; concrete backends register
// in src/sim/model_registry.cpp and are constructed by name through
// sim::make_device_model() (mirroring core::make_workload):
//
//   * AnalyticModel ("analytic")  — the closed-form bottleneck model; DRAM
//     time comes from the per-kernel mem_eff calibration hint. See
//     calibration.hpp for the equation and constants.
//   * CacheSimModel ("cachesim")  — src/sim/cachesim/: replays a synthetic
//     address stream derived from the profile's access-pattern descriptor
//     through a set-associative LRU L2 and a DRAM latency/bandwidth stage;
//     DRAM time comes from simulated hit rates instead of hints.

#include "sim/device.hpp"
#include "sim/profile.hpp"

#include <string>

namespace cubie::sim {

enum class Bottleneck { TensorPipe, CudaPipe, Dram, SharedMem, Issue, Launch };

std::string bottleneck_name(Bottleneck b);

struct Prediction {
  double time_s = 0.0;
  double avg_power_w = 0.0;
  double energy_j = 0.0;
  double edp = 0.0;  // Energy-delay product = avg power * time^2 (Section 7)
  Bottleneck bound = Bottleneck::Dram;

  // Resource times before taking the max (for roofline/diagnostics).
  double t_tensor = 0.0;
  double t_cuda = 0.0;
  double t_dram = 0.0;
  double t_smem = 0.0;
  double t_issue = 0.0;

  // Utilizations in [0,1] used by the power model.
  double u_tensor = 0.0;
  double u_cuda = 0.0;
  double u_mem = 0.0;

  // Simulated L2 hit rate in [0,1]; only the cachesim backend sets it
  // (< 0 = not applicable, e.g. every analytic prediction).
  double l2_hit_rate = -1.0;
};

// Abstract device-model backend. Implementations must be deterministic pure
// functions of (spec, profile) — the engine's memoization, the --jobs
// thread pool, and the serve layer's byte-identity guarantees all rely on a
// prediction never depending on wall clock, schedule, or hidden state.
class DeviceModel {
 public:
  explicit DeviceModel(const DeviceSpec& spec) : spec_(&spec) {}
  virtual ~DeviceModel() = default;

  const DeviceSpec& spec() const { return *spec_; }

  // The registry name of this backend ("analytic", "cachesim").
  virtual std::string name() const = 0;

  // Predict time/power/energy for one execution of the profiled kernel(s).
  virtual Prediction predict(const KernelProfile& prof) const = 0;

 private:
  const DeviceSpec* spec_;
};

// The closed-form analytic backend (the original DeviceModel equation,
// unchanged: predictions are bit-identical to the pre-refactor model).
class AnalyticModel final : public DeviceModel {
 public:
  explicit AnalyticModel(const DeviceSpec& spec) : DeviceModel(spec) {}

  std::string name() const override { return "analytic"; }
  Prediction predict(const KernelProfile& prof) const override;
};

}  // namespace cubie::sim
