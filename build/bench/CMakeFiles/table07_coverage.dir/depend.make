# Empty dependencies file for table07_coverage.
# This may be replaced when dependencies are built.
