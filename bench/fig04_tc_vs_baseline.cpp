// Figure 4: speedups of the TC implementations over their baselines on the
// three GPUs, geomean across the five test cases per workload, grouped by
// utilization quadrant (paper Section 6.1).

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace cubie;
  auto bench = benchutil::bench_init(
      argc, argv, "fig04_tc_vs_baseline",
      "Figure 4: TC speedup over Baseline (case geomean)");
  const auto rows = benchutil::speedup_sweep(bench, core::Variant::TC,
                                             core::Variant::Baseline);
  benchutil::print_speedup_table(
      "=== Figure 4: TC speedup over Baseline (case geomean) ===", rows);
  benchutil::record_speedup(bench, core::Variant::TC, core::Variant::Baseline,
                            rows);

  // Quadrant summary, as the paper's prose reports.
  std::cout << "Quadrant geomeans (A100/H200/B200):\n";
  for (auto q : {core::Quadrant::I, core::Quadrant::II, core::Quadrant::III,
                 core::Quadrant::IV}) {
    std::vector<double> per_gpu[3];
    for (const auto& r : rows) {
      if (r.quadrant != q) continue;
      for (int g = 0; g < 3; ++g) per_gpu[g].push_back(r.per_gpu[static_cast<std::size_t>(g)]);
    }
    if (per_gpu[0].empty()) continue;
    std::cout << "  Quadrant " << core::quadrant_name(q) << ": ";
    const auto gpus = sim::all_gpus();
    for (int g = 0; g < 3; ++g) {
      const double gm = common::geomean(per_gpu[g]);
      std::cout << common::fmt_double(gm, 2) << (g < 2 ? "x / " : "x\n");
      auto& rec = bench.record("Quadrant " + core::quadrant_name(q),
                               "TC/Baseline",
                               sim::gpu_name(gpus[static_cast<std::size_t>(g)]),
                               "geomean");
      rec.set("speedup", gm);
    }
  }
  return bench.finish();
}
