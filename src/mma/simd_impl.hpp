#pragma once
// Internal: kernel-table providers implemented by the per-ISA translation
// units (compiled with their own -m flags when CUBIE_SIMD is on). Only
// simd.cpp's dispatcher includes this.

#include "mma/simd.hpp"

namespace cubie::mma::simd {

#if defined(CUBIE_SIMD_AVX2)
const Kernels* avx2_kernels();  // simd_avx2.cpp
#endif
#if defined(CUBIE_SIMD_AVX512)
const Kernels* avx512_kernels();  // simd_avx512.cpp
#endif

}  // namespace cubie::mma::simd
