// Ablation: accumulation-order numerics. Table 6's error patterns are
// driven entirely by how each variant orders and fuses its additions; this
// bench isolates that effect by summing identical dot products with every
// strategy used across the suite and sweeping the reduction length.
//
// Strategies:
//   naive      - unfused sequential (the paper's CPU serial ground truth)
//   fused      - sequential FMA chain (DMMA semantics; DASP rows)
//   mma4       - FMA chains over 4-wide chunks seeded by the accumulator
//                (exactly what chained m8n8k4 MMAs compute - equals `fused`)
//   pairwise   - recursive pairwise tree (the numerically stable order)
//   lanes32    - 32 strided partials + shuffle tree (cuBLAS/cuSPARSE style)
//   lanes2     - 2 strided partials (the SpMV CC-E essential order)
// Errors are against an exact long-double Kahan reference.

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"

#include <cmath>
#include <iostream>
#include <vector>

namespace {

double sum_naive(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s = s + a[i] * b[i];
  return s;
}

double sum_fused(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s = std::fma(a[i], b[i], s);
  return s;
}

double sum_pairwise(const std::vector<double>& a, const std::vector<double>& b,
                    std::size_t lo, std::size_t hi) {
  if (hi - lo == 1) return a[lo] * b[lo];
  const std::size_t mid = lo + (hi - lo) / 2;
  return sum_pairwise(a, b, lo, mid) + sum_pairwise(a, b, mid, hi);
}

double sum_lanes(const std::vector<double>& a, const std::vector<double>& b,
                 int lanes) {
  std::vector<double> part(static_cast<std::size_t>(lanes), 0.0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    auto& p = part[i % static_cast<std::size_t>(lanes)];
    p = std::fma(a[i], b[i], p);
  }
  for (int stride = lanes / 2; stride >= 1; stride /= 2)
    for (int l = 0; l < stride; ++l) part[static_cast<std::size_t>(l)] += part[static_cast<std::size_t>(l + stride)];
  return part[0];
}

long double sum_exactish(const std::vector<double>& a,
                         const std::vector<double>& b) {
  // Kahan in long double: effectively exact for these lengths.
  long double s = 0.0L, c = 0.0L;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const long double y = static_cast<long double>(a[i]) * b[i] - c;
    const long double t = s + y;
    c = (t - s) - y;
    s = t;
  }
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cubie;
  auto bench = benchutil::bench_init(
      argc, argv, "ablation_accumulation",
      "Ablation: accumulation-order error vs reduction length");
  std::cout << "=== Ablation: accumulation-order error vs reduction length "
               "===\n(mean |deviation from exact| over 64 trials; inputs "
               "LINPACK-uniform in (-2,2))\n\n";
  common::Table t({"length", "naive", "fused", "pairwise", "lanes32",
                   "lanes2"});
  for (std::size_t n : {16u, 64u, 256u, 1024u, 4096u, 16384u, 65536u}) {
    double e_naive = 0, e_fused = 0, e_pair = 0, e_l32 = 0, e_l2 = 0;
    const int trials = 64;
    for (int trial = 0; trial < trials; ++trial) {
      const auto a = common::random_vector(n, 1000u + static_cast<unsigned>(trial));
      const auto b = common::random_vector(n, 2000u + static_cast<unsigned>(trial));
      const long double exact = sum_exactish(a, b);
      auto err = [&](double v) {
        return std::fabs(static_cast<double>(static_cast<long double>(v) - exact));
      };
      e_naive += err(sum_naive(a, b));
      e_fused += err(sum_fused(a, b));
      e_pair += err(sum_pairwise(a, b, 0, n));
      e_l32 += err(sum_lanes(a, b, 32));
      e_l2 += err(sum_lanes(a, b, 2));
    }
    t.add_row({std::to_string(n), common::fmt_sci(e_naive / trials),
               common::fmt_sci(e_fused / trials),
               common::fmt_sci(e_pair / trials),
               common::fmt_sci(e_l32 / trials),
               common::fmt_sci(e_l2 / trials)});
    auto& rec = bench.record("accumulation", "", "", "n=" + std::to_string(n));
    rec.set("naive", e_naive / trials);
    rec.set("fused", e_fused / trials);
    rec.set("pairwise", e_pair / trials);
    rec.set("lanes32", e_l32 / trials);
    rec.set("lanes2", e_l2 / trials);
  }
  t.print(std::cout);
  bench.capture("accumulation_error", t);
  std::cout <<
      "\nReadings:\n"
      "  - fused tracks the exact sum ~2x closer than naive (one rounding per\n"
      "    step instead of two) - why DASP's TC errors undercut the serial\n"
      "    reference-relative baseline in Table 6.\n"
      "  - pairwise/lanes32 grow ~sqrt(log n) instead of sqrt(n): library\n"
      "    tree reductions are accurate but *different* from serial order,\n"
      "    which shows up as deviation, not inaccuracy (Observation 7).\n"
      "  - chained m8n8k4 MMAs are bit-identical to `fused` (verified in\n"
      "    tests/test_mma.cpp), so TC == CC in Table 6 by construction.\n";
  return bench.finish();
}
