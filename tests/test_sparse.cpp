// Sparse substrate: COO->CSR, transpose, mBSR round trip, serial kernels.

#include "common/rng.hpp"
#include "sparse/csr.hpp"
#include "sparse/mbsr.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace cubie {
namespace {

using sparse::Coo;
using sparse::Csr;

Coo small_coo() {
  Coo c;
  c.rows = 4;
  c.cols = 5;
  // Unsorted, with one duplicate (2,1).
  c.row = {2, 0, 2, 1, 3, 2};
  c.col = {1, 0, 4, 2, 3, 1};
  c.val = {1.0, 2.0, 3.0, 4.0, 5.0, 0.5};
  return c;
}

TEST(CsrFromCoo, SortsAndMergesDuplicates) {
  const Csr m = sparse::csr_from_coo(small_coo());
  EXPECT_TRUE(m.structurally_valid());
  EXPECT_EQ(m.nnz(), 5u);
  // Row 2 has columns {1, 4} with the duplicate summed.
  EXPECT_EQ(m.row_nnz(2), 2);
  const int p = m.row_ptr[2];
  EXPECT_EQ(m.col_idx[static_cast<std::size_t>(p)], 1);
  EXPECT_DOUBLE_EQ(m.vals[static_cast<std::size_t>(p)], 1.5);
}

TEST(Transpose, IsInvolution) {
  const Csr m = sparse::csr_from_coo(small_coo());
  const Csr tt = sparse::transpose(sparse::transpose(m));
  EXPECT_EQ(tt.row_ptr, m.row_ptr);
  EXPECT_EQ(tt.col_idx, m.col_idx);
  EXPECT_EQ(tt.vals, m.vals);
}

TEST(Transpose, SwapsDims) {
  const Csr m = sparse::csr_from_coo(small_coo());
  const Csr t = sparse::transpose(m);
  EXPECT_EQ(t.rows, m.cols);
  EXPECT_EQ(t.cols, m.rows);
  EXPECT_TRUE(t.structurally_valid());
}

TEST(SpmvSerial, DenseEquivalence) {
  // Dense 3x3 as sparse; compare against hand-computed product.
  Coo c;
  c.rows = c.cols = 3;
  const double dense[9] = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  for (int r = 0; r < 3; ++r)
    for (int j = 0; j < 3; ++j) {
      c.row.push_back(r);
      c.col.push_back(j);
      c.val.push_back(dense[r * 3 + j]);
    }
  const Csr m = sparse::csr_from_coo(c);
  const std::vector<double> x = {1.0, -1.0, 2.0};
  const auto y = sparse::spmv_serial(m, x);
  EXPECT_DOUBLE_EQ(y[0], 1 - 2 + 6);
  EXPECT_DOUBLE_EQ(y[1], 4 - 5 + 12);
  EXPECT_DOUBLE_EQ(y[2], 7 - 8 + 18);
}

TEST(SpgemmSerial, IdentityIsNeutral) {
  Coo id;
  id.rows = id.cols = 4;
  for (int i = 0; i < 4; ++i) {
    id.row.push_back(i);
    id.col.push_back(i);
    id.val.push_back(1.0);
  }
  const Csr eye = sparse::csr_from_coo(id);
  Coo c = small_coo();
  c.cols = 4;
  c.col = {1, 0, 3, 2, 3, 1};  // keep inside 4 cols
  const Csr m = sparse::csr_from_coo(c);
  const Csr prod = sparse::spgemm_serial(m, eye);
  EXPECT_EQ(prod.col_idx, m.col_idx);
  for (std::size_t i = 0; i < m.nnz(); ++i)
    EXPECT_DOUBLE_EQ(prod.vals[i], m.vals[i]);
}

TEST(SpgemmSerial, MatchesDenseProduct) {
  common::Lcg rng(3);
  Coo a, b;
  a.rows = a.cols = b.rows = b.cols = 16;
  for (int r = 0; r < 16; ++r) {
    for (int c = 0; c < 16; ++c) {
      if (rng.next_unit() < 0.3) {
        a.row.push_back(r);
        a.col.push_back(c);
        a.val.push_back(rng.next_linpack());
      }
      if (rng.next_unit() < 0.3) {
        b.row.push_back(r);
        b.col.push_back(c);
        b.val.push_back(rng.next_linpack());
      }
    }
  }
  const Csr ca = sparse::csr_from_coo(a), cb = sparse::csr_from_coo(b);
  const Csr cc = sparse::spgemm_serial(ca, cb);
  EXPECT_TRUE(cc.structurally_valid());
  // Dense check.
  double da[256] = {}, db[256] = {}, dc[256] = {};
  for (int r = 0; r < 16; ++r) {
    for (int p = ca.row_ptr[static_cast<std::size_t>(r)]; p < ca.row_ptr[static_cast<std::size_t>(r) + 1]; ++p)
      da[r * 16 + ca.col_idx[static_cast<std::size_t>(p)]] = ca.vals[static_cast<std::size_t>(p)];
    for (int p = cb.row_ptr[static_cast<std::size_t>(r)]; p < cb.row_ptr[static_cast<std::size_t>(r) + 1]; ++p)
      db[r * 16 + cb.col_idx[static_cast<std::size_t>(p)]] = cb.vals[static_cast<std::size_t>(p)];
  }
  for (int i = 0; i < 16; ++i)
    for (int j = 0; j < 16; ++j)
      for (int k = 0; k < 16; ++k) dc[i * 16 + j] += da[i * 16 + k] * db[k * 16 + j];
  for (int r = 0; r < 16; ++r) {
    for (int p = cc.row_ptr[static_cast<std::size_t>(r)]; p < cc.row_ptr[static_cast<std::size_t>(r) + 1]; ++p) {
      EXPECT_NEAR(cc.vals[static_cast<std::size_t>(p)],
                  dc[r * 16 + cc.col_idx[static_cast<std::size_t>(p)]], 1e-12);
    }
  }
}

TEST(Mbsr, RoundTripPreservesMatrix) {
  common::Lcg rng(5);
  Coo c;
  c.rows = 19;  // deliberately not a multiple of 4
  c.cols = 13;
  for (int r = 0; r < c.rows; ++r) {
    for (int j = 0; j < c.cols; ++j) {
      if (rng.next_unit() < 0.2) {
        c.row.push_back(r);
        c.col.push_back(j);
        c.val.push_back(rng.next_linpack());
      }
    }
  }
  const Csr m = sparse::csr_from_coo(c);
  const sparse::Mbsr blocked = sparse::mbsr_from_csr(m);
  EXPECT_EQ(blocked.block_rows, 5);
  EXPECT_EQ(blocked.block_cols, 4);
  EXPECT_EQ(blocked.nnz_stored(), m.nnz());
  const Csr back = sparse::csr_from_mbsr(blocked);
  EXPECT_EQ(back.row_ptr, m.row_ptr);
  EXPECT_EQ(back.col_idx, m.col_idx);
  EXPECT_EQ(back.vals, m.vals);
}

TEST(Mbsr, FillRatioBounds) {
  const auto m = sparse::csr_from_coo(small_coo());
  const auto b = sparse::mbsr_from_csr(m);
  EXPECT_GT(b.fill_ratio(), 0.0);
  EXPECT_LE(b.fill_ratio(), 1.0);
}

TEST(GemmSerial, SmallKnownProduct) {
  const std::vector<double> a = {1, 2, 3, 4};        // 2x2
  const std::vector<double> b = {5, 6, 7, 8};        // 2x2
  std::vector<double> c(4, 0.0);
  sparse::gemm_serial(2, 2, 2, a, b, c);
  EXPECT_DOUBLE_EQ(c[0], 19);
  EXPECT_DOUBLE_EQ(c[1], 22);
  EXPECT_DOUBLE_EQ(c[2], 43);
  EXPECT_DOUBLE_EQ(c[3], 50);
}

TEST(GemvSerial, MatchesGemmColumn) {
  common::Lcg rng(9);
  const int m = 12, n = 7;
  const auto a = common::random_vector(static_cast<std::size_t>(m) * n, 31);
  const auto x = common::random_vector(static_cast<std::size_t>(n), 33);
  std::vector<double> y(static_cast<std::size_t>(m), 0.0);
  sparse::gemv_serial(m, n, a, x, y);
  std::vector<double> c(static_cast<std::size_t>(m), 0.0);
  sparse::gemm_serial(m, 1, n, a, x, c);
  for (int i = 0; i < m; ++i) EXPECT_DOUBLE_EQ(y[static_cast<std::size_t>(i)], c[static_cast<std::size_t>(i)]);
}

}  // namespace
}  // namespace cubie
