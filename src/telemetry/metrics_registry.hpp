#pragma once
// Cubie-Pulse: a process-wide metrics layer on top of the Cubie-Scope bus.
//
//   MetricsRegistry  typed counters / gauges / fixed-boundary histograms,
//                    lock-striped for concurrent writers, snapshot-able with
//                    deterministic (name, labels) ordering, and merge-able
//                    (snapshot merge is associative — pinned by tests);
//   MetricsSink      a bus sink that folds the existing event stream into a
//                    registry: cell_finish by source, cache load/store
//                    outcomes, the request lifecycle, queue depth, and the
//                    request-latency / cell-wall histograms;
//   prometheus_text  the text exposition (version 0.0.4) serializer the
//                    daemon answers `metrics` requests with, plus a small
//                    parser (`cubie top`, tests, CI reconciliation).
//
// The latency histograms share one fixed bucket ladder
// (latency_bucket_bounds()) on both sides of the wire, so a loadgen's
// client-side distribution is directly comparable to the daemon's
// server-side one. See docs/OBSERVABILITY.md ("Cubie-Pulse").

#include "telemetry/telemetry.hpp"

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace cubie::telemetry {

// Label name -> value pairs. Registries sort them at series creation so the
// same logical series is one entry regardless of caller ordering.
using Labels = std::vector<std::pair<std::string, std::string>>;

// The shared fixed bucket upper bounds (seconds) for every latency / wall
// histogram: daemon request latency, engine cell wall, loadgen client
// latency. 100 us .. 10 s, roughly 1-2.5-5 per decade.
const std::vector<double>& latency_bucket_bounds();

// ---------------------------------------------------------------------------
// Instruments. All mutation is lock-free; creation goes through the
// registry (lock-striped) and the returned references stay valid for the
// registry's lifetime.

class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

// A Cubie-Flight exemplar: the trace id of the most recent observation
// that landed in a bucket, with the observed value. Rendered in the
// OpenMetrics exemplar syntax (` # {trace_id="..."} <value>` after the
// bucket sample) so a dashboard's p99 bar links straight to a trace.
struct Exemplar {
  std::string trace_id;  // "" = no exemplar recorded for this bucket
  double value = 0.0;
};

// One histogram's state at a point in time. counts are per-bucket (NOT
// cumulative): counts[i] observations fell in (bounds[i-1], bounds[i]], and
// counts.back() is the +Inf overflow bucket, so counts.size() ==
// bounds.size() + 1. merge() is associative and commutative in counts/sum
// (exemplars overlay right-wins: the later snapshot is the fresher trace).
struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;
  double sum = 0.0;
  // Empty, or counts.size() entries (possibly with empty trace_ids).
  std::vector<Exemplar> exemplars;

  std::uint64_t total() const;
  // Add `other` into this snapshot. Bounds must match (callers share the
  // fixed ladders); mismatched bounds are ignored rather than corrupting.
  void merge(const HistogramSnapshot& other);
};

class Histogram {
 public:
  // `bounds` are strictly increasing upper bucket edges; an implicit +Inf
  // bucket is appended.
  explicit Histogram(std::vector<double> bounds);

  // With a non-empty trace_id, the observation also records itself as its
  // bucket's exemplar (last writer wins; a small mutex off the count path).
  void observe(double v, const std::string& trace_id = "");
  // The bucket `v` lands in: the first i with v <= bounds[i], else the
  // overflow bucket bounds.size(). Exposed for the bucket-assignment tests.
  std::size_t bucket_index(double v) const;

  const std::vector<double>& bounds() const { return bounds_; }
  HistogramSnapshot snapshot() const;

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> counts_;  // bounds_.size() + 1
  std::atomic<double> sum_{0.0};
  mutable std::mutex ex_mu_;
  std::vector<Exemplar> exemplars_;  // lazily sized to counts_.size()
};

// ---------------------------------------------------------------------------
// Registry.

enum class MetricType { Counter, Gauge, Histogram };

// One series in a snapshot. For counters/gauges `value` is set; for
// histograms `hist` is.
struct MetricSnapshot {
  std::string name;
  std::string help;
  MetricType type = MetricType::Counter;
  Labels labels;  // sorted by label name
  double value = 0.0;
  HistogramSnapshot hist;

  // "name{k1=\"v1\",k2=\"v2\"}" — the deterministic sort key.
  std::string series_key() const;
};

class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Find-or-create. The first registration of a name fixes its help text
  // and type; later calls with the same (name, labels) return the same
  // instrument. Creation takes one stripe lock; the hot path afterwards is
  // the caller holding the returned reference.
  Counter& counter(const std::string& name, const std::string& help,
                   Labels labels = {});
  Gauge& gauge(const std::string& name, const std::string& help,
               Labels labels = {});
  Histogram& histogram(const std::string& name, const std::string& help,
                       const std::vector<double>& bounds, Labels labels = {});

  // Every series, sorted by (name, labels) — deterministic across runs and
  // independent of creation / stripe order.
  std::vector<MetricSnapshot> snapshot() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// Pointwise merge of two snapshots (counters and histogram buckets add;
// for gauges the right side wins). Associative: merge(merge(a,b),c) ==
// merge(a,merge(b,c)) — the property the test suite pins.
std::vector<MetricSnapshot> merge_snapshots(std::vector<MetricSnapshot> a,
                                            const std::vector<MetricSnapshot>& b);

// ---------------------------------------------------------------------------
// Prometheus text exposition (version 0.0.4).

// Label-value escaping: backslash, double quote, newline.
std::string prometheus_escape(const std::string& v);
// Bucket edge rendered for an le="..." label ("0.0025", "+Inf").
std::string prometheus_bound_label(double bound);

// Serialize: one # HELP / # TYPE pair per family, series in snapshot
// (sorted) order, histograms as cumulative _bucket{le=...} + _sum + _count.
std::string prometheus_text(const std::vector<MetricSnapshot>& snapshot);
std::string prometheus_text(const MetricsRegistry& reg);

// A parsed exposition: flat samples ("name{labels} value"), histogram
// buckets included as <name>_bucket samples with their le label. A
// trailing OpenMetrics exemplar (` # {trace_id="..."} <value>`) is parsed
// into the exemplar_* fields — and tolerated by every consumer that only
// wants the sample value.
struct ExpositionSample {
  std::string name;
  Labels labels;  // sorted by label name
  double value = 0.0;
  std::string exemplar_trace_id;  // "" = no exemplar on this sample
  double exemplar_value = 0.0;
};

struct Exposition {
  std::vector<ExpositionSample> samples;

  const ExpositionSample* find(const std::string& name,
                               const Labels& labels = {}) const;
  double value_or(const std::string& name, const Labels& labels,
                  double fallback) const;
  // Sum over every sample with this exact metric name (any labels).
  double sum_over(const std::string& name) const;
  // The (le, cumulative_count) pairs of <base>_bucket, sorted by le
  // (+Inf parsed as infinity). Extra labels beyond le are ignored.
  std::vector<std::pair<double, double>> buckets(const std::string& base) const;
  // The exemplars attached to <base>_bucket samples, slowest first —
  // what feeds the `cubie top` "slowest recent requests" panel.
  struct BucketExemplar {
    double le = 0.0;
    std::string trace_id;
    double value = 0.0;
  };
  std::vector<BucketExemplar> exemplars(const std::string& base) const;
};

// nullopt (with *error) on a malformed line; comments and blanks skipped.
std::optional<Exposition> parse_prometheus_text(const std::string& text,
                                                std::string* error = nullptr);

// Linear-interpolated quantile (q in [0,1]) from cumulative (le, count)
// pairs as returned by Exposition::buckets(). Prometheus-style: the +Inf
// bucket resolves to the highest finite edge. 0 when the histogram is empty.
double histogram_quantile(const std::vector<std::pair<double, double>>& buckets,
                          double q);

// ---------------------------------------------------------------------------
// MetricsSink: folds the Cubie-Scope event stream into a registry.
//
//   cubie_cells_finished_total{source}   cell_finish by compute|memo|disk|
//                                        coalesced
//   cubie_cell_wall_seconds              histogram of cell_finish wall_s
//   cubie_cache_loads_total{status}      DiskCache::load outcomes
//   cubie_cache_stores_total{status}     DiskCache::store outcomes
//   cubie_plans_total                    plan_start events
//   cubie_requests_accepted_total        admission past the bounded queue
//   cubie_requests_queued_total          enqueues (also sets queue depth)
//   cubie_requests_started_total         worker/inline execution begins
//   cubie_requests_finished_total{path}  responses sent, worker|inline
//   cubie_requests_rejected_total{code}  typed rejections
//   cubie_request_latency_seconds        histogram of worker-path service
//                                        time (what a loadgen client sees)
//   cubie_queue_depth                    gauge, depth after the last enqueue
//                                        (the daemon refreshes it at scrape)
class MetricsSink : public Sink {
 public:
  // Shares `reg` (a fresh registry is created when null). With a non-empty
  // `out_path`, flush() writes the exposition snapshot there — the
  // `--metrics-out FILE` final snapshot for batch runs.
  explicit MetricsSink(std::shared_ptr<MetricsRegistry> reg = nullptr,
                       std::string out_path = "");

  MetricsRegistry& registry() { return *reg_; }
  std::shared_ptr<MetricsRegistry> shared_registry() const { return reg_; }

  void on_event(const Event& e) override;
  void flush() override;

 private:
  std::shared_ptr<MetricsRegistry> reg_;
  std::string out_path_;
  // Hot series, resolved once in the constructor (on_event runs under the
  // bus mutex but scrapers read concurrently; the instruments are atomic).
  Histogram* cell_wall_ = nullptr;
  Histogram* request_latency_ = nullptr;
  Counter* plans_ = nullptr;
  Counter* accepted_ = nullptr;
  Counter* queued_ = nullptr;
  Counter* started_ = nullptr;
  Counter* finished_worker_ = nullptr;
  Counter* finished_inline_ = nullptr;
  Gauge* queue_depth_ = nullptr;
};

}  // namespace cubie::telemetry
