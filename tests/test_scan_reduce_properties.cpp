// Scan / Reduction property tests, parameterized over the five Table 2
// block sizes and all implementation variants.

#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "core/kernels.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace cubie {
namespace {

using core::Variant;

struct BlockCase {
  std::size_t case_index;  // 0..4 -> block sizes 64..1024
  Variant variant;
};

std::string case_name(const ::testing::TestParamInfo<BlockCase>& info) {
  std::string v = core::variant_name(info.param.variant);
  std::erase(v, '-');  // gtest parameter names must be alphanumeric
  return "case" + std::to_string(info.param.case_index) + "_" + v;
}

std::vector<BlockCase> all_block_cases() {
  std::vector<BlockCase> cs;
  for (std::size_t i = 0; i < 5; ++i) {
    for (auto v : {Variant::Baseline, Variant::TC, Variant::CC, Variant::CCE}) {
      cs.push_back({i, v});
    }
  }
  return cs;
}

class ScanProperty : public ::testing::TestWithParam<BlockCase> {};

TEST_P(ScanProperty, BlockPrefixInvariants) {
  const auto w = core::make_workload("Scan");
  const auto tc = w->cases(64)[GetParam().case_index];  // small for speed
  const std::size_t block = static_cast<std::size_t>(tc.dims[0]);
  const auto out = w->run(GetParam().variant, tc);
  const auto ref = w->reference(tc);
  ASSERT_EQ(out.values.size(), ref.size());

  // Inclusive block-local prefix sums deviate from the serial reference by
  // rounding only.
  const auto err = common::error_stats(out.values, ref);
  EXPECT_LT(err.max, 1e-10);

  // Structural invariant: within each block, differences reconstruct the
  // input (so the scan is genuinely inclusive and block-local).
  const auto x = common::random_vector(ref.size(), 31);
  for (std::size_t b = 0; b + block <= out.values.size(); b += block) {
    EXPECT_NEAR(out.values[b], x[b], 1e-9);
    for (std::size_t i = 1; i < block; ++i) {
      EXPECT_NEAR(out.values[b + i] - out.values[b + i - 1], x[b + i], 1e-8);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Blocks, ScanProperty,
                         ::testing::ValuesIn(all_block_cases()), case_name);

class ReductionProperty : public ::testing::TestWithParam<BlockCase> {};

TEST_P(ReductionProperty, BlockSumsInvariants) {
  const auto w = core::make_workload("Reduction");
  const auto tc = w->cases(64)[GetParam().case_index];
  const std::size_t block = static_cast<std::size_t>(tc.dims[0]);
  const auto out = w->run(GetParam().variant, tc);
  const auto ref = w->reference(tc);
  ASSERT_EQ(out.values.size(), ref.size());
  const std::size_t n = static_cast<std::size_t>(tc.dims[1]) / block * block;
  ASSERT_EQ(out.values.size(), n / block);

  const auto err = common::error_stats(out.values, ref);
  EXPECT_LT(err.max, 1e-10);

  // Every block sum must match a Kahan-accurate recomputation to rounding.
  const auto x = common::random_vector(n, 41);
  for (std::size_t b = 0; b < out.values.size(); ++b) {
    long double s = 0.0L;
    for (std::size_t i = b * block; i < (b + 1) * block; ++i) s += x[i];
    EXPECT_NEAR(out.values[b], static_cast<double>(s),
                1e-12 * static_cast<double>(block));
  }
}

INSTANTIATE_TEST_SUITE_P(Blocks, ReductionProperty,
                         ::testing::ValuesIn(all_block_cases()), case_name);

TEST(ScanSpecial, OnesGiveRampPerBlock) {
  // Direct check on the MMA chunk machinery: scanning all-ones yields
  // 1, 2, ..., block within each block, exactly (integers are exact).
  const auto w = core::make_workload("Scan");
  const auto tc = w->cases(64)[0];
  // We cannot inject inputs through the Workload interface; instead verify
  // the ramp property statistically via the reconstruction invariant above.
  // Here, verify the reference generator is block-local as documented:
  const auto ref = w->reference(tc);
  const std::size_t block = static_cast<std::size_t>(tc.dims[0]);
  const auto x = common::random_vector(ref.size(), 31);
  EXPECT_DOUBLE_EQ(ref[block], x[block]);  // restart at block boundary
}

TEST(ReductionSpecial, VariantsAgreeWithEachOther) {
  const auto w = core::make_workload("Reduction");
  const auto tc = w->cases(64)[2];
  const auto a = w->run(Variant::TC, tc);
  const auto b = w->run(Variant::CCE, tc);
  const auto c = w->run(Variant::Baseline, tc);
  ASSERT_EQ(a.values.size(), b.values.size());
  for (std::size_t i = 0; i < a.values.size(); ++i) {
    EXPECT_NEAR(a.values[i], b.values[i], 1e-10);
    EXPECT_NEAR(a.values[i], c.values[i], 1e-10);
  }
}

}  // namespace
}  // namespace cubie
