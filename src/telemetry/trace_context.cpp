#include "telemetry/trace_context.hpp"

#include <atomic>
#include <chrono>
#include <functional>
#include <thread>
#include <utility>

namespace cubie::telemetry {

namespace {

thread_local TraceContext t_current;

// splitmix64: tiny, well-mixed, and needs no <random> machinery. Each
// thread seeds its own state from the clock, its thread id, and a global
// counter, so ids are unique across threads and processes without any
// coordination.
std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t next_random() {
  static std::atomic<std::uint64_t> g_counter{0};
  thread_local std::uint64_t state = [] {
    const auto now = std::chrono::steady_clock::now().time_since_epoch();
    std::uint64_t s = static_cast<std::uint64_t>(now.count());
    s ^= std::hash<std::thread::id>{}(std::this_thread::get_id());
    s += g_counter.fetch_add(0x632be59bd9b4e019ULL);
    return s;
  }();
  return splitmix64(state);
}

void append_hex(std::string& out, std::uint64_t v) {
  static const char* kHex = "0123456789abcdef";
  for (int shift = 60; shift >= 0; shift -= 4)
    out += kHex[(v >> shift) & 0xF];
}

}  // namespace

std::string hex_id(std::uint64_t hi, std::uint64_t lo) {
  std::string out;
  out.reserve(32);
  append_hex(out, hi);
  append_hex(out, lo);
  return out;
}

std::string hex_id(std::uint64_t v) {
  std::string out;
  out.reserve(16);
  append_hex(out, v);
  return out;
}

std::string generate_trace_id() {
  std::uint64_t hi = next_random(), lo = next_random();
  if (hi == 0 && lo == 0) lo = 1;  // all-zero is the invalid sentinel
  return hex_id(hi, lo);
}

std::string generate_span_id() {
  std::uint64_t v = next_random();
  if (v == 0) v = 1;
  return hex_id(v);
}

TraceContext make_trace_context() {
  return TraceContext{generate_trace_id(), generate_span_id()};
}

bool valid_trace_id(const std::string& s) {
  if (s.empty() || s.size() > 32) return false;
  for (char c : s) {
    const bool hex =
        (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
    if (!hex) return false;
  }
  return true;
}

const TraceContext& current_trace_context() { return t_current; }

TraceScope::TraceScope(TraceContext ctx) : prev_(std::move(t_current)) {
  t_current = std::move(ctx);
}

TraceScope::~TraceScope() { t_current = std::move(prev_); }

}  // namespace cubie::telemetry
