#pragma once
// Error and summary metrics used throughout the evaluation.
//
// The paper (Section 8) defines
//   Average_Error = (1/n) * sum_i |gpu_i - cpu_i|
//   Max_Error     = max_i |gpu_i - cpu_i|
// against a naive CPU serial implementation taken as ground truth. This
// module implements those definitions plus the geometric-mean helper used
// for per-quadrant EDP summaries (Figure 7).

#include <cstddef>
#include <span>
#include <vector>

namespace cubie::common {

struct ErrorStats {
  double avg = 0.0;  // Average_Error
  double max = 0.0;  // Max_Error
  std::size_t n = 0;
};

// Elementwise absolute error of `result` against `reference`.
// The spans must have equal length.
ErrorStats error_stats(std::span<const double> result,
                       std::span<const double> reference);

// Geometric mean of strictly positive values; returns 0 for an empty span.
double geomean(std::span<const double> values);

// Arithmetic mean; returns 0 for an empty span.
double mean(std::span<const double> values);

// Order-independent checksum (sum of values) for smoke comparisons.
double checksum(std::span<const double> values);

// Relative L2 error ||a - b|| / ||b||, used by solver examples.
double rel_l2_error(std::span<const double> a, std::span<const double> b);

}  // namespace cubie::common
