// PiC workload (Quadrant I): Boris-push particle integration (PiCTC in
// FP64).
//
// TC: the per-step Boris rotation collapses to a single 3x3 matrix R shared
// by all particles (uniform magnetic field); batches of 8 particles form the
// 4x8 B operand, R padded to 8x4 forms the A operand, and one MMA rotates 8
// velocities at once. Electric kicks and the position drift remain scalar
// per-particle work (gathered analytic fields).
// CC: identical batching on CUDA cores; CC-E == CC.
// Baseline: none in the paper (Table 2: "-").

#include "core/kernels.hpp"

#include "mma/mma.hpp"
#include "pic/pic.hpp"
#include "sim/calibration.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

namespace cubie::core {
namespace {

namespace scal = cubie::sim::cal;
constexpr int kSteps = 4;

pic::FieldConfig field_config() { return pic::FieldConfig{}; }

void push_mma(pic::Particles& p, const pic::FieldConfig& f,
              mma::Context& ctx) {
  const auto r = pic::boris_rotation_matrix(f);
  const double h = 0.5 * f.qm * f.dt;
  const std::size_t n = p.size();

  ctx.launch(static_cast<double>(n) / 8.0 * 32.0);
  // The particle working set (48 B each, 3-48 MB at Table 2 sizes) is
  // L2-resident across push steps; per-step traffic hits the cache
  // hierarchy, with DRAM touched only by the initial load / final store
  // (accounted once per run below).
  ctx.load_shared(static_cast<double>(n) * 6.0 * 8.0 * 2.0);
  // Rotation matrix: one constant-memory load per step.
  ctx.load_global(9.0 * 8.0);
  // Scalar per-particle work of a full PiC step: trilinear field
  // interpolation (~24 FMA), transcendental field evaluation (~30), the two
  // half kicks and drift (~15), and current deposition (~24) - the Amdahl
  // fraction the MMA rotation cannot absorb (why PiC shows "reduced
  // benefits" in Section 6.1).
  ctx.cc_fma(static_cast<double>(n) * 90.0);

  // Pad R into the 8x4 A fragment (rows 0..2 live, rest zero).
  double a_frag[32] = {};
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j) a_frag[i * 4 + j] = r[static_cast<std::size_t>(i * 3 + j)];

  double b_frag[32], c_frag[64];
  for (std::size_t base = 0; base < n; base += 8) {
    const std::size_t cnt = std::min<std::size_t>(8, n - base);
    // Half electric kick (scalar), fill the B fragment with v_minus.
    double ex[8], ey[8], ez[8];
    std::fill_n(b_frag, 32, 0.0);
    for (std::size_t i = 0; i < cnt; ++i) {
      const auto e = f.e_at(p.x[base + i], p.y[base + i], p.z[base + i]);
      ex[i] = e[0];
      ey[i] = e[1];
      ez[i] = e[2];
      b_frag[0 * 8 + i] = p.vx[base + i] + h * e[0];
      b_frag[1 * 8 + i] = p.vy[base + i] + h * e[1];
      b_frag[2 * 8 + i] = p.vz[base + i] + h * e[2];
    }
    // Rotate the 8 velocities with one MMA: C = R * Vminus.
    std::fill_n(c_frag, 64, 0.0);
    ctx.dmma_m8n8k4_acc(a_frag, b_frag, c_frag);
    // Second half kick + drift (scalar).
    for (std::size_t i = 0; i < cnt; ++i) {
      p.vx[base + i] = c_frag[0 * 8 + i] + h * ex[i];
      p.vy[base + i] = c_frag[1 * 8 + i] + h * ey[i];
      p.vz[base + i] = c_frag[2 * 8 + i] + h * ez[i];
      p.x[base + i] += f.dt * p.vx[base + i];
      p.y[base + i] += f.dt * p.vy[base + i];
      p.z[base + i] += f.dt * p.vz[base + i];
    }
  }
}

std::vector<double> flatten(const pic::Particles& p) {
  std::vector<double> v;
  v.reserve(p.size() * 6);
  v.insert(v.end(), p.vx.begin(), p.vx.end());
  v.insert(v.end(), p.vy.begin(), p.vy.end());
  v.insert(v.end(), p.vz.begin(), p.vz.end());
  v.insert(v.end(), p.x.begin(), p.x.end());
  v.insert(v.end(), p.y.begin(), p.y.end());
  v.insert(v.end(), p.z.begin(), p.z.end());
  return v;
}

class PicWorkload final : public Workload {
 public:
  std::string name() const override { return "PiC"; }
  Quadrant quadrant() const override { return Quadrant::I; }
  std::string dwarf() const override { return "N-Body"; }
  std::string baseline_name() const override { return "-"; }
  bool has_baseline() const override { return false; }

  std::vector<TestCase> cases(int s) const override {
    std::vector<TestCase> cs;
    // PiC keeps the paper's particle counts unscaled: the working set is
    // small and the functional cost is linear, so no reduction is needed.
    (void)s;
    for (long n : {65536L, 131072L, 262144L, 524288L, 1048576L}) {
      cs.push_back({std::to_string(n / 1024) + "K", {n}, ""});
    }
    return cs;
  }

  RunOutput run(Variant v, const TestCase& tc,
                const RunOptions& opts) const override {
    RunOutput out;
    sim::Span total(opts.tracer, "PiC/" + variant_name(v), out.profile);
    sim::Span setup(opts.tracer, "setup", out.profile);
    pic::Particles p =
        pic::make_particles(static_cast<std::size_t>(tc.dims[0]), 10.0, 81);
    const auto f = field_config();
    setup.finish();
    mma::Context ctx(v == Variant::TC ? mma::Pipe::TensorCore
                                      : mma::Pipe::CudaCore,
                     out.profile);
    ctx.load_global(static_cast<double>(p.size()) * 6.0 * 8.0);
    for (int s = 0; s < kSteps; ++s) {
      sim::Span step(opts.tracer, "step_" + std::to_string(s + 1),
                     out.profile);
      push_mma(p, f, ctx);
    }
    ctx.store_global(static_cast<double>(p.size()) * 6.0 * 8.0);
    out.profile.pipe_eff =
        v == Variant::TC ? scal::kTcGemmEff : scal::kCcEmulationEff;
    out.profile.mem_eff = scal::kMemEffTcLayout;
    // ~200 useful FLOPs per particle per step (interpolation, fields,
    // kicks, rotation, drift, deposition).
    out.profile.useful_flops =
        static_cast<double>(p.size()) * 200.0 * kSteps;
    // Cachesim descriptor: particles gather/scatter against the grid in
    // position order — irregular over the particle state (6 doubles each).
    out.profile.access = sim::AccessPattern::Irregular;
    out.profile.working_set_bytes = static_cast<double>(p.size()) * 6.0 * 8.0;
    out.values = flatten(p);
    return out;
  }

  std::vector<double> reference(const TestCase& tc) const override {
    pic::Particles p =
        pic::make_particles(static_cast<std::size_t>(tc.dims[0]), 10.0, 81);
    const auto f = field_config();
    for (int s = 0; s < kSteps; ++s) pic::boris_push_serial(p, f);
    return flatten(p);
  }
};

}  // namespace

WorkloadPtr make_pic() { return std::make_unique<PicWorkload>(); }

}  // namespace cubie::core
