#include "sim/power.hpp"

#include <cmath>

namespace cubie::sim {

std::vector<PowerSample> synthesize_power_trace(const DeviceSpec& spec,
                                                const Prediction& pred,
                                                const PowerTraceOptions& opts) {
  std::vector<PowerSample> trace;
  const double idle = spec.idle_w;
  const double steady = pred.avg_power_w;
  const int n = static_cast<int>(opts.duration_s / opts.dt_s) + 1;
  trace.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double t = i * opts.dt_s;
    // Exponential approach to steady state (thermal/clock ramp).
    double w = idle + (steady - idle) * (1.0 - std::exp(-t / opts.ramp_s));
    // Deterministic ripple: per-iteration load variation seen by NVML.
    w += steady * opts.ripple_frac * std::sin(t * 9.0) *
         std::cos(t * 2.3 + 0.7);
    if (w > spec.tdp_w) w = spec.tdp_w;
    if (w < idle) w = idle;
    trace.push_back({t, w});
  }
  return trace;
}

double trace_energy_j(const std::vector<PowerSample>& trace) {
  double e = 0.0;
  for (std::size_t i = 1; i < trace.size(); ++i) {
    const double dt = trace[i].t_s - trace[i - 1].t_s;
    e += 0.5 * (trace[i].watts + trace[i - 1].watts) * dt;
  }
  return e;
}

}  // namespace cubie::sim
