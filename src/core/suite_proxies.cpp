#include "core/suite_proxies.hpp"

#include "common/rng.hpp"
#include "fft/fft.hpp"
#include "graph/generators.hpp"
#include "mma/mma.hpp"
#include "sim/calibration.hpp"
#include "sparse/csr.hpp"
#include "sparse/generators.hpp"
#include "stencil/stencil.hpp"

#include <algorithm>
#include <cmath>

namespace cubie::core {
namespace {

namespace scal = cubie::sim::cal;

using ProxyFn = void (*)(mma::Context&);

// --- Rodinia-class kernels ---------------------------------------------------

// hotspot: 2D thermal stencil iteration.
void rodinia_hotspot(mma::Context& ctx) {
  const int n = 256;
  const auto in = common::random_vector(static_cast<std::size_t>(n) * n, 301);
  std::vector<double> out;
  stencil::Star2D st{0.6, 0.1, 0.1, 0.1, 0.1};
  stencil::stencil2d_serial_fma(st, in, out, n, n);
  const double pts = static_cast<double>(n) * n;
  ctx.launch(pts);
  ctx.load_global(pts * 8.0 * 2.0);  // grid + power map
  ctx.store_global(pts * 8.0);
  ctx.load_shared(pts * 8.0 * 4.0);
  ctx.cc_fma(pts * 7.0);
  ctx.profile().useful_flops = pts * 14.0;
}

// lud: dense LU decomposition (in-place, no pivoting).
void rodinia_lud(mma::Context& ctx) {
  const int n = 96;
  auto a = common::random_vector(static_cast<std::size_t>(n) * n, 302);
  for (int i = 0; i < n; ++i) a[static_cast<std::size_t>(i) * n + i] += 8.0;
  for (int k = 0; k < n; ++k) {
    for (int i = k + 1; i < n; ++i) {
      const double f = a[static_cast<std::size_t>(i) * n + k] / a[static_cast<std::size_t>(k) * n + k];
      a[static_cast<std::size_t>(i) * n + k] = f;
      for (int j = k + 1; j < n; ++j)
        a[static_cast<std::size_t>(i) * n + j] =
            std::fma(-f, a[static_cast<std::size_t>(k) * n + j], a[static_cast<std::size_t>(i) * n + j]);
    }
  }
  const double flops = 2.0 / 3.0 * n * static_cast<double>(n) * n;
  ctx.launch(static_cast<double>(n) * n);
  ctx.load_global(static_cast<double>(n) * n * 8.0 * 2.0);
  ctx.store_global(static_cast<double>(n) * n * 8.0);
  ctx.load_shared(flops / 2.0 * 8.0);
  ctx.cc_fma(flops / 2.0);
  ctx.profile().useful_flops = flops;
}

// kmeans: one assignment iteration.
void rodinia_kmeans(mma::Context& ctx) {
  const int pts = 8192, dims = 8, k = 16;
  const auto data = common::random_vector(static_cast<std::size_t>(pts) * dims, 303);
  const auto centers = common::random_vector(static_cast<std::size_t>(k) * dims, 304);
  double sink = 0.0;
  for (int p = 0; p < pts; ++p) {
    double best = 1e300;
    for (int c = 0; c < k; ++c) {
      double d2 = 0.0;
      for (int d = 0; d < dims; ++d) {
        const double diff = data[static_cast<std::size_t>(p) * dims + d] -
                            centers[static_cast<std::size_t>(c) * dims + d];
        d2 = std::fma(diff, diff, d2);
      }
      best = std::min(best, d2);
    }
    sink += best;
  }
  (void)sink;
  const double flops = 3.0 * pts * static_cast<double>(dims) * k;
  ctx.launch(static_cast<double>(pts));
  ctx.load_global(static_cast<double>(pts) * dims * 8.0);
  ctx.store_global(static_cast<double>(pts) * 4.0);
  ctx.cc_fma(flops / 2.0);
  ctx.profile().useful_flops = flops;
}

// bfs: Rodinia's level-synchronous BFS.
void rodinia_bfs(mma::Context& ctx) {
  const auto g = graph::gen_rmat(12, 8, 0.57, 0.19, 0.19, 305);
  const auto levels = graph::bfs_serial(g, 0);
  (void)levels;
  const double e = static_cast<double>(g.edges());
  ctx.launch(static_cast<double>(g.n));
  ctx.load_global(e * 8.0 + static_cast<double>(g.n) * 8.0);
  ctx.store_global(static_cast<double>(g.n) * 4.0);
  ctx.cc_int(e * 3.0);
  ctx.profile().useful_flops = e;
  ctx.profile().mem_eff = scal::kMemEffIrregular;
  ctx.profile().access = sim::AccessPattern::Irregular;
}

// srad: speckle-reducing anisotropic diffusion (stencil + pointwise math).
void rodinia_srad(mma::Context& ctx) {
  const int n = 192;
  const auto in = common::random_vector(static_cast<std::size_t>(n) * n, 306);
  std::vector<double> out;
  stencil::Star2D st{0.4, 0.15, 0.15, 0.15, 0.15};
  stencil::stencil2d_serial_fma(st, in, out, n, n);
  double sink = 0.0;
  for (double v : out) sink += std::exp(-std::fabs(v));
  (void)sink;
  const double pts = static_cast<double>(n) * n;
  ctx.launch(pts);
  ctx.load_global(pts * 8.0 * 2.0);
  ctx.store_global(pts * 8.0);
  ctx.cc_fma(pts * 18.0);  // diffusion coefficients + update
  ctx.profile().useful_flops = pts * 36.0;
}

// nw: Needleman-Wunsch dynamic programming.
void rodinia_nw(mma::Context& ctx) {
  const int n = 512;
  std::vector<int> score(static_cast<std::size_t>(n) * n, 0);
  common::Lcg rng(307);
  for (int i = 1; i < n; ++i) {
    for (int j = 1; j < n; ++j) {
      const int match = static_cast<int>(rng.next_below(8)) - 4;
      const int d = score[static_cast<std::size_t>(i - 1) * n + j - 1] + match;
      const int u = score[static_cast<std::size_t>(i - 1) * n + j] - 1;
      const int l = score[static_cast<std::size_t>(i) * n + j - 1] - 1;
      score[static_cast<std::size_t>(i) * n + j] = std::max({d, u, l});
    }
  }
  const double cells = static_cast<double>(n) * n;
  ctx.launch(static_cast<double>(n));  // wavefront parallelism only
  ctx.load_global(cells * 4.0 * 3.0);
  ctx.store_global(cells * 4.0);
  ctx.cc_int(cells * 5.0);
  ctx.profile().useful_flops = cells;
  ctx.profile().mem_eff = scal::kMemEffGrid;
  ctx.profile().access = sim::AccessPattern::Strided;
}

// pathfinder: dynamic-programming wavefront over a grid.
void rodinia_pathfinder(mma::Context& ctx) {
  const int rows = 256, cols = 2048;
  common::Lcg rng(308);
  std::vector<int> prev(static_cast<std::size_t>(cols)), cur(static_cast<std::size_t>(cols));
  for (auto& v : prev) v = static_cast<int>(rng.next_below(10));
  for (int r = 1; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      int best = prev[static_cast<std::size_t>(c)];
      if (c > 0) best = std::min(best, prev[static_cast<std::size_t>(c - 1)]);
      if (c + 1 < cols) best = std::min(best, prev[static_cast<std::size_t>(c + 1)]);
      cur[static_cast<std::size_t>(c)] = best + static_cast<int>(rng.next_below(10));
    }
    std::swap(prev, cur);
  }
  const double cells = static_cast<double>(rows) * cols;
  ctx.launch(static_cast<double>(cols));
  ctx.load_global(cells * 4.0 * 2.0);
  ctx.store_global(cells * 4.0);
  ctx.cc_int(cells * 4.0);
  ctx.profile().useful_flops = cells;
  ctx.profile().mem_eff = scal::kMemEffGrid;
  ctx.profile().access = sim::AccessPattern::Strided;
}

// backprop: one dense layer forward + weight-gradient pass.
void rodinia_backprop(mma::Context& ctx) {
  const int in = 512, hid = 128;
  const auto w = common::random_vector(static_cast<std::size_t>(in) * hid, 309);
  const auto x = common::random_vector(static_cast<std::size_t>(in), 310);
  double sink = 0.0;
  for (int h = 0; h < hid; ++h) {
    double acc = 0.0;
    for (int i = 0; i < in; ++i)
      acc = std::fma(w[static_cast<std::size_t>(i) * hid + h], x[static_cast<std::size_t>(i)], acc);
    sink += 1.0 / (1.0 + std::exp(-acc));
  }
  (void)sink;
  const double flops = 2.0 * in * static_cast<double>(hid) * 2.0;  // fwd + grad
  ctx.launch(static_cast<double>(hid) * 16.0);
  ctx.load_global(static_cast<double>(in) * hid * 8.0 * 2.0);
  ctx.store_global(static_cast<double>(in) * hid * 8.0);
  ctx.cc_fma(flops / 2.0);
  ctx.profile().useful_flops = flops;
}

// --- SHOC-class kernels --------------------------------------------------------

// sgemm-style dense GEMM on CUDA cores.
void shoc_gemm(mma::Context& ctx) {
  const int n = 128;
  const auto a = common::random_vector(static_cast<std::size_t>(n) * n, 401);
  const auto b = common::random_vector(static_cast<std::size_t>(n) * n, 402);
  std::vector<double> c(static_cast<std::size_t>(n) * n, 0.0);
  sparse::gemm_serial(n, n, n, a, b, c);
  const double flops = 2.0 * n * static_cast<double>(n) * n;
  ctx.launch(static_cast<double>(n) * n);
  ctx.load_global(2.0 * n * static_cast<double>(n) * 8.0 * (n / 32.0));
  ctx.store_global(static_cast<double>(n) * n * 8.0);
  ctx.load_shared(flops / 2.0 * 8.0);
  ctx.cc_fma(flops / 2.0);
  ctx.profile().useful_flops = flops;
}

// FFT (Stockham radix-2).
void shoc_fft(mma::Context& ctx) {
  const int n = 4096;
  const auto re = common::random_vector(static_cast<std::size_t>(n), 403);
  std::vector<fft::cplx> x(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) x[static_cast<std::size_t>(i)] = {re[static_cast<std::size_t>(i)], 0.0};
  const auto y = fft::fft_stockham(x);
  (void)y;
  const double stages = std::log2(static_cast<double>(n));
  ctx.launch(static_cast<double>(n));
  ctx.load_global(static_cast<double>(n) * 16.0 * 2.0);
  ctx.store_global(static_cast<double>(n) * 16.0);
  ctx.load_shared(static_cast<double>(n) * 16.0 * stages);
  ctx.cc_fma(static_cast<double>(n) * 5.0 * stages / 2.0);
  ctx.profile().useful_flops = 5.0 * n * stages;
}

// md: Lennard-Jones force evaluation over neighbour lists.
void shoc_md(mma::Context& ctx) {
  const int atoms = 2048, neigh = 32;
  const auto pos = common::random_vector(static_cast<std::size_t>(atoms) * 3, 404);
  common::Lcg rng(405);
  double sink = 0.0;
  for (int i = 0; i < atoms; ++i) {
    for (int k = 0; k < neigh; ++k) {
      const int j = static_cast<int>(rng.next_below(static_cast<std::uint32_t>(atoms)));
      double d2 = 1e-3;
      for (int d = 0; d < 3; ++d) {
        const double diff = pos[static_cast<std::size_t>(i) * 3 + d] - pos[static_cast<std::size_t>(j) * 3 + d];
        d2 = std::fma(diff, diff, d2);
      }
      const double inv6 = 1.0 / (d2 * d2 * d2);
      sink += inv6 * (inv6 - 1.0);
    }
  }
  (void)sink;
  const double pairs = static_cast<double>(atoms) * neigh;
  ctx.launch(static_cast<double>(atoms));
  ctx.load_global(pairs * 3.0 * 8.0 + pairs * 4.0);
  ctx.store_global(static_cast<double>(atoms) * 3.0 * 8.0);
  ctx.cc_fma(pairs * 12.0);
  ctx.profile().useful_flops = pairs * 24.0;
  ctx.profile().mem_eff = scal::kMemEffIrregular;
  ctx.profile().access = sim::AccessPattern::Irregular;
}

// reduction (tree).
void shoc_reduction(mma::Context& ctx) {
  const std::size_t n = 1 << 20;
  const auto x = common::random_vector(n, 406);
  double acc = 0.0;
  for (double v : x) acc += v;
  (void)acc;
  ctx.launch(static_cast<double>(n) / 4.0);
  ctx.load_global(static_cast<double>(n) * 8.0);
  ctx.store_global(1024.0 * 8.0);
  ctx.cc_flop(static_cast<double>(n));
  ctx.profile().useful_flops = static_cast<double>(n);
}

// scan (Kogge-Stone).
void shoc_scan(mma::Context& ctx) {
  const std::size_t n = 1 << 20;
  auto x = common::random_vector(n, 407);
  for (std::size_t i = 1; i < n; ++i) x[i] += x[i - 1];
  ctx.launch(static_cast<double>(n) / 4.0);
  ctx.load_global(static_cast<double>(n) * 8.0);
  ctx.store_global(static_cast<double>(n) * 8.0);
  ctx.load_shared(static_cast<double>(n) * 8.0 * 5.0);
  ctx.cc_flop(static_cast<double>(n) * 5.0);
  ctx.profile().useful_flops = static_cast<double>(n);
}

// spmv (CSR scalar).
void shoc_spmv(mma::Context& ctx) {
  const auto a = sparse::gen_random_uniform(4096, 32, 408);
  const auto x = common::random_vector(static_cast<std::size_t>(a.cols), 409);
  const auto y = sparse::spmv_serial(a, x);
  (void)y;
  const double nnz = static_cast<double>(a.nnz());
  ctx.launch(static_cast<double>(a.rows));
  ctx.load_global(nnz * (8.0 + 4.0 + 8.0));
  ctx.store_global(static_cast<double>(a.rows) * 8.0);
  ctx.cc_fma(nnz);
  ctx.profile().useful_flops = 2.0 * nnz;
  ctx.profile().mem_eff = scal::kMemEffIrregular;
  ctx.profile().access = sim::AccessPattern::Irregular;
}

// triad: a*x + y stream.
void shoc_triad(mma::Context& ctx) {
  const std::size_t n = 1 << 21;
  const auto x = common::random_vector(n, 410);
  const auto y = common::random_vector(n, 411);
  double sink = 0.0;
  for (std::size_t i = 0; i < n; ++i) sink += std::fma(1.75, x[i], y[i]);
  (void)sink;
  ctx.launch(static_cast<double>(n));
  ctx.load_global(static_cast<double>(n) * 16.0);
  ctx.store_global(static_cast<double>(n) * 8.0);
  ctx.cc_fma(static_cast<double>(n));
  ctx.profile().useful_flops = 2.0 * static_cast<double>(n);
}

// sort: radix-sort pass structure (integer heavy).
void shoc_sort(mma::Context& ctx) {
  const std::size_t n = 1 << 18;
  common::Lcg rng(412);
  std::vector<std::uint32_t> keys(n);
  for (auto& k : keys) k = rng.next_raw();
  std::sort(keys.begin(), keys.end());
  const double passes = 8.0;  // 4-bit digits over 32-bit keys
  ctx.launch(static_cast<double>(n) / 4.0);
  ctx.load_global(static_cast<double>(n) * 4.0 * passes * 2.0);
  ctx.store_global(static_cast<double>(n) * 4.0 * passes);
  ctx.cc_int(static_cast<double>(n) * passes * 6.0);
  ctx.profile().useful_flops = static_cast<double>(n) * passes;
}

// stencil2d: SHOC's 9-point stencil.
void shoc_stencil2d(mma::Context& ctx) {
  const int n = 256;
  const auto in = common::random_vector(static_cast<std::size_t>(n) * n, 413);
  std::vector<double> out(static_cast<std::size_t>(n) * n, 0.0);
  for (int y = 1; y + 1 < n; ++y) {
    for (int x = 1; x + 1 < n; ++x) {
      double acc = 0.0;
      for (int dy = -1; dy <= 1; ++dy)
        for (int dx = -1; dx <= 1; ++dx)
          acc = std::fma(0.111, in[static_cast<std::size_t>((y + dy) * n + x + dx)], acc);
      out[static_cast<std::size_t>(y * n + x)] = acc;
    }
  }
  const double pts = static_cast<double>(n) * n;
  ctx.launch(pts);
  ctx.load_global(pts * 8.0);
  ctx.store_global(pts * 8.0);
  ctx.load_shared(pts * 8.0 * 8.0);
  ctx.cc_fma(pts * 9.0);
  ctx.profile().useful_flops = pts * 18.0;
  ctx.profile().mem_eff = scal::kMemEffGrid;
  ctx.profile().access = sim::AccessPattern::Strided;
}

// bfs: SHOC's level-synchronous BFS (same structure as Rodinia's, different
// graph class).
void shoc_bfs(mma::Context& ctx) {
  const auto g = graph::gen_web(8192, 64, 8.0, 414);
  const auto levels = graph::bfs_serial(g, 0);
  (void)levels;
  const double e = static_cast<double>(g.edges());
  ctx.launch(static_cast<double>(g.n));
  ctx.load_global(e * 8.0 + static_cast<double>(g.n) * 8.0);
  ctx.store_global(static_cast<double>(g.n) * 4.0);
  ctx.cc_int(e * 3.0);
  ctx.profile().useful_flops = e;
  ctx.profile().mem_eff = scal::kMemEffIrregular;
  ctx.profile().access = sim::AccessPattern::Irregular;
}

struct ProxySpec {
  const char* suite;
  const char* name;
  ProxyFn fn;
};

constexpr ProxySpec kProxies[] = {
    {"Rodinia", "hotspot", rodinia_hotspot},
    {"Rodinia", "lud", rodinia_lud},
    {"Rodinia", "kmeans", rodinia_kmeans},
    {"Rodinia", "bfs", rodinia_bfs},
    {"Rodinia", "srad", rodinia_srad},
    {"Rodinia", "nw", rodinia_nw},
    {"Rodinia", "pathfinder", rodinia_pathfinder},
    {"Rodinia", "backprop", rodinia_backprop},
    {"SHOC", "gemm", shoc_gemm},
    {"SHOC", "fft", shoc_fft},
    {"SHOC", "md", shoc_md},
    {"SHOC", "reduction", shoc_reduction},
    {"SHOC", "scan", shoc_scan},
    {"SHOC", "spmv", shoc_spmv},
    {"SHOC", "triad", shoc_triad},
    {"SHOC", "sort", shoc_sort},
    {"SHOC", "stencil2d", shoc_stencil2d},
    {"SHOC", "bfs", shoc_bfs},
};

}  // namespace

std::vector<SuiteProxyResult> run_suite_proxies() {
  std::vector<SuiteProxyResult> out;
  for (const auto& spec : kProxies) {
    SuiteProxyResult r;
    r.suite = spec.suite;
    r.name = spec.name;
    mma::Context ctx(mma::Pipe::CudaCore, r.profile);
    spec.fn(ctx);
    if (r.profile.pipe_eff == 1.0) r.profile.pipe_eff = scal::kCcLibraryEff;
    if (r.profile.mem_eff == 1.0) r.profile.mem_eff = scal::kMemEffLibrary;
    out.push_back(std::move(r));
  }
  return out;
}

}  // namespace cubie::core
