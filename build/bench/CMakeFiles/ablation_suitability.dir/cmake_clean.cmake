file(REMOVE_RECURSE
  "CMakeFiles/ablation_suitability.dir/ablation_suitability.cpp.o"
  "CMakeFiles/ablation_suitability.dir/ablation_suitability.cpp.o.d"
  "ablation_suitability"
  "ablation_suitability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_suitability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
