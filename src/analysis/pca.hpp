#pragma once
// Principal component analysis on standardized feature matrices, built from
// scratch (covariance matrix + cyclic Jacobi eigensolver). Used for the
// benchmark-coverage studies of Figures 10 and 11: project matrices, graphs,
// and kernel metric vectors onto their two leading components.

#include <string>
#include <vector>

namespace cubie::analysis {

// Row-major sample matrix: samples x features.
struct Dataset {
  std::size_t samples = 0;
  std::size_t features = 0;
  std::vector<double> data;  // samples * features

  double at(std::size_t s, std::size_t f) const { return data[s * features + f]; }
  double& at(std::size_t s, std::size_t f) { return data[s * features + f]; }
};

// Z-score standardization per feature (in place). Constant features are left
// centered at zero. Returns per-feature (mean, stddev) pairs.
std::vector<std::pair<double, double>> standardize(Dataset& d);

struct PcaResult {
  std::size_t components = 0;
  std::vector<double> eigenvalues;        // descending
  std::vector<double> eigenvectors;       // components x features, row-major
  std::vector<double> explained_ratio;    // eigenvalue share
  Dataset projected;                      // samples x components

  // Convenience: projected coordinate of sample s on component c.
  double coord(std::size_t s, std::size_t c) const { return projected.at(s, c); }
};

// Run PCA keeping `components` leading components. The input should already
// be standardized. Deterministic (fixed Jacobi sweep order; eigenvector sign
// fixed so the largest-magnitude entry is positive).
PcaResult pca(const Dataset& d, std::size_t components);

// Symmetric eigen-decomposition by cyclic Jacobi; exposed for tests.
// `a` is n x n row-major and is destroyed; eigenvalues + eigenvectors
// (rows) come back sorted descending.
void jacobi_eigen(std::vector<double>& a, std::size_t n,
                  std::vector<double>& eigenvalues,
                  std::vector<double>& eigenvectors);

// Dispersion diagnostics used in Section 10's representativeness argument:
// mean pairwise distance of `selected` rows in the projected space, and the
// fraction of all samples whose nearest selected row is within `radius`.
double mean_pairwise_distance(const Dataset& projected,
                              const std::vector<std::size_t>& selected);
double coverage_fraction(const Dataset& projected,
                         const std::vector<std::size_t>& selected,
                         double radius);

}  // namespace cubie::analysis
