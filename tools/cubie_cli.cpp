// cubie: the command-line driver for the suite. Runs any workload / variant
// / test case against any device model and reports performance, power, and
// accuracy; also lists the suite and dumps machine-readable CSV.
//
//   cubie list
//   cubie cases <workload> [--scale N]
//   cubie run <workload> [--variant TC|CC|CC-E|Baseline|all]
//                        [--case IDX|all] [--gpu A100|H200|B200|all]
//                        [--scale N] [--errors] [--csv]

#include "common/metrics.hpp"
#include "common/table.hpp"
#include "core/kernels.hpp"
#include "sim/model.hpp"

#include <cstring>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

namespace {

using namespace cubie;

int usage() {
  std::cerr <<
      "usage:\n"
      "  cubie list\n"
      "  cubie cases <workload> [--scale N]\n"
      "  cubie run <workload> [--variant V|all] [--case I|all]\n"
      "            [--gpu G|all] [--scale N] [--errors] [--csv]\n"
      "            [--dataset file.mtx]   (SpMV / SpGEMM only)\n";
  return 2;
}

std::optional<core::Variant> parse_variant(const std::string& s) {
  if (s == "Baseline") return core::Variant::Baseline;
  if (s == "TC") return core::Variant::TC;
  if (s == "CC") return core::Variant::CC;
  if (s == "CC-E" || s == "CCE") return core::Variant::CCE;
  return std::nullopt;
}

std::optional<sim::Gpu> parse_gpu(const std::string& s) {
  if (s == "A100") return sim::Gpu::A100;
  if (s == "H200") return sim::Gpu::H200;
  if (s == "B200") return sim::Gpu::B200;
  return std::nullopt;
}

int cmd_list() {
  common::Table t({"workload", "quadrant", "dwarf", "baseline", "variants"});
  for (const auto& w : core::make_suite()) {
    std::string variants = "TC CC";
    if (w->has_baseline()) variants = "Baseline " + variants;
    if (w->cce_distinct()) variants += " CC-E";
    t.add_row({w->name(), core::quadrant_name(w->quadrant()), w->dwarf(),
               w->baseline_name(), variants});
  }
  t.print(std::cout);
  return 0;
}

int cmd_cases(const core::Workload& w, int scale) {
  common::Table t({"index", "label", "dataset"});
  int i = 0;
  for (const auto& c : w.cases(scale)) {
    t.add_row({std::to_string(i++), c.label, c.dataset});
  }
  t.print(std::cout);
  std::cout << "(representative case: " << w.representative_case() << ")\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) return usage();

  if (args[0] == "list") return cmd_list();

  // Common flags.
  int scale = common::scale_divisor();
  std::string variant_arg = "all", case_arg = "rep", gpu_arg = "H200";
  std::string dataset;  // optional .mtx path for the sparse workloads
  bool errors = false, csv = false;
  std::string workload_name;
  for (std::size_t i = 1; i < args.size(); ++i) {
    auto next = [&](const char* flag) -> std::string {
      if (i + 1 >= args.size()) {
        std::cerr << flag << " needs a value\n";
        std::exit(2);
      }
      return args[++i];
    };
    if (args[i] == "--scale") scale = std::max(1, std::atoi(next("--scale").c_str()));
    else if (args[i] == "--variant") variant_arg = next("--variant");
    else if (args[i] == "--case") case_arg = next("--case");
    else if (args[i] == "--gpu") gpu_arg = next("--gpu");
    else if (args[i] == "--dataset") dataset = next("--dataset");
    else if (args[i] == "--errors") errors = true;
    else if (args[i] == "--csv") csv = true;
    else if (workload_name.empty()) workload_name = args[i];
    else return usage();
  }

  if ((args[0] == "cases" || args[0] == "run") && workload_name.empty())
    return usage();
  const auto w = core::make_workload(workload_name);
  if (!w) {
    std::cerr << "unknown workload '" << workload_name << "' (try: cubie list)\n";
    return 2;
  }

  if (args[0] == "cases") return cmd_cases(*w, scale);
  if (args[0] != "run") return usage();

  // Resolve selections.
  std::vector<core::Variant> variants;
  if (variant_arg == "all") {
    for (auto v : core::all_variants()) {
      if (v == core::Variant::Baseline && !w->has_baseline()) continue;
      if (v == core::Variant::CCE && !w->cce_distinct()) continue;
      variants.push_back(v);
    }
  } else if (auto v = parse_variant(variant_arg)) {
    variants.push_back(*v);
  } else {
    std::cerr << "bad --variant\n";
    return 2;
  }

  auto cases = w->cases(scale);
  if (!dataset.empty()) {
    if (cases.empty() || cases[0].dataset.empty()) {
      std::cerr << "--dataset applies only to dataset-driven workloads "
                   "(SpMV, SpGEMM, BFS)\n";
      return 2;
    }
    // Replace the sweep with one custom case backed by the given file.
    cases = {core::TestCase{dataset, {1}, dataset}};
    case_arg = "0";
  }
  std::vector<std::size_t> case_ids;
  if (case_arg == "all") {
    for (std::size_t i = 0; i < cases.size(); ++i) case_ids.push_back(i);
  } else if (case_arg == "rep") {
    case_ids.push_back(w->representative_case());
  } else {
    const int idx = std::atoi(case_arg.c_str());
    if (idx < 0 || static_cast<std::size_t>(idx) >= cases.size()) {
      std::cerr << "case index out of range (0.." << cases.size() - 1 << ")\n";
      return 2;
    }
    case_ids.push_back(static_cast<std::size_t>(idx));
  }

  std::vector<sim::Gpu> gpus;
  if (gpu_arg == "all") {
    gpus = sim::all_gpus();
  } else if (auto g = parse_gpu(gpu_arg)) {
    gpus.push_back(*g);
  } else {
    std::cerr << "bad --gpu\n";
    return 2;
  }

  std::vector<std::string> header{"gpu", "case", "variant", "time_ms",
                                  "gflops", "power_w", "energy_j", "edp",
                                  "bound"};
  if (errors) {
    header.push_back("avg_err");
    header.push_back("max_err");
  }
  common::Table t(std::move(header));

  for (std::size_t ci : case_ids) {
    const auto& tc = cases[ci];
    std::vector<double> ref;
    if (errors) ref = w->reference(tc);
    for (auto v : variants) {
      const auto out = w->run(v, tc);
      for (auto g : gpus) {
        const sim::DeviceModel model(sim::spec_for(g));
        const auto pred = model.predict(out.profile);
        std::vector<std::string> row{
            sim::gpu_name(g), tc.label, core::variant_name(v),
            common::fmt_double(pred.time_s * 1e3, 4),
            common::fmt_double(out.profile.useful_flops / pred.time_s / 1e9, 1),
            common::fmt_double(pred.avg_power_w, 0),
            common::fmt_sci(pred.energy_j), common::fmt_sci(pred.edp),
            sim::bottleneck_name(pred.bound)};
        if (errors) {
          const auto e = common::error_stats(out.values, ref);
          row.push_back(common::fmt_sci(e.avg));
          row.push_back(common::fmt_sci(e.max));
        }
        t.add_row(std::move(row));
      }
    }
  }
  if (csv) {
    t.print_csv(std::cout);
  } else {
    t.print(std::cout);
  }
  return 0;
}
