#pragma once
// Cubie-Pulse hardware counters: a thin perf_event_open wrapper that gives
// the analytical device model measured ground truth.
//
// The ExperimentEngine wraps every *computed* cell (memo/disk/coalesced
// hits execute nothing) in a ScopedSample, which counts CPU cycles,
// retired instructions, last-level cache references/misses, and task-clock
// time for the calling thread. The per-cell samples aggregate into the
// MetricsReport `hw` block (report::HwStats) and back `cubie roofline`'s
// modeled-vs-measured comparison.
//
// perf_event_open is frequently unpermitted (containers, CI runners with
// kernel.perf_event_paranoid clamped, non-Linux). All of that degrades to
// a *typed* unavailable state — available() turns false, every sample
// reports available=false, and unavailable_reason() says why — rather than
// an error. The fallback serializes as {"available": false, "reason": ...}
// and must round-trip byte-identically like any other report block.

#include <cstdint>
#include <string>

namespace cubie::hw {

// One measurement interval (or an aggregate of many). When available is
// false the numeric fields are zero and meaningless.
struct HwSample {
  bool available = false;
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t cache_references = 0;
  std::uint64_t cache_misses = 0;
  double task_clock_s = 0.0;

  // Instructions per cycle; 0 when unavailable or no cycles counted.
  double ipc() const {
    return cycles ? static_cast<double>(instructions) / static_cast<double>(cycles)
                  : 0.0;
  }
  // Cache miss ratio in [0,1]; 0 when no references counted.
  double miss_ratio() const {
    return cache_references
               ? static_cast<double>(cache_misses) /
                     static_cast<double>(cache_references)
               : 0.0;
  }

  HwSample& operator+=(const HwSample& o);
};

// Whether this process can open the counter group. The first call probes
// perf_event_open once; the verdict (and its reason) is process-global.
bool available();

// Why counters are off ("" while available). Stable strings like
// "perf_event_open: Permission denied (EPERM)" or the force_unavailable
// reason — surfaced in reports and `cubie roofline`.
std::string unavailable_reason();

// Test hook: force the unavailable path (as if perf_event_open were
// denied) without needing a restricted kernel. Irreversible for the
// process, like a real probe failure.
void force_unavailable(const std::string& reason);

// RAII measurement of the enclosing scope on the *current thread*. Opens
// (or reuses, via thread-local caching) the per-thread counter group,
// resets and enables it on construction, disables and reads it on stop().
class ScopedSample {
 public:
  ScopedSample();
  ~ScopedSample();
  ScopedSample(const ScopedSample&) = delete;
  ScopedSample& operator=(const ScopedSample&) = delete;

  // Stop counting and return the interval sample (available=false when the
  // counters are off). Idempotent; the destructor stops implicitly.
  HwSample stop();

 private:
  bool active_ = false;
};

}  // namespace cubie::hw
