// Figure 6: speedups of the CC-E (essential-computation) replacements over
// the TC versions for Quadrants II-IV - whether the redundant computations
// introduced for MMU utilization are worth keeping (paper Section 6.3).

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace cubie;
  auto bench = benchutil::bench_init(
      argc, argv, "fig06_cce_vs_tc",
      "Figure 6: CC-E speedup over TC (Quadrants II-IV)");
  const auto rows =
      benchutil::speedup_sweep(bench, core::Variant::CCE, core::Variant::TC);
  benchutil::print_speedup_table(
      "=== Figure 6: CC-E speedup over TC (Quadrants II-IV; <1 = slower) ===",
      rows);
  benchutil::record_speedup(bench, core::Variant::CCE, core::Variant::TC,
                            rows);
  return bench.finish();
}
