# Empty dependencies file for cubie.
# This may be replaced when dependencies are built.
