# Empty dependencies file for fig06_cce_vs_tc.
# This may be replaced when dependencies are built.
