#include "graph/graph.hpp"

#include <algorithm>
#include <queue>

namespace cubie::graph {

Graph graph_from_edges(int n, const std::vector<std::pair<int, int>>& edges,
                       bool symmetrize) {
  std::vector<std::pair<int, int>> all;
  all.reserve(edges.size() * (symmetrize ? 2 : 1));
  for (auto [u, v] : edges) {
    if (u == v || u < 0 || v < 0 || u >= n || v >= n) continue;
    all.emplace_back(u, v);
    if (symmetrize) all.emplace_back(v, u);
  }
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());

  Graph g;
  g.n = n;
  g.offsets.assign(static_cast<std::size_t>(n) + 1, 0);
  g.neighbors.reserve(all.size());
  for (auto [u, v] : all) {
    g.offsets[static_cast<std::size_t>(u) + 1] += 1;
    g.neighbors.push_back(v);
  }
  for (int v = 0; v < n; ++v)
    g.offsets[static_cast<std::size_t>(v) + 1] += g.offsets[static_cast<std::size_t>(v)];
  return g;
}

std::vector<int> bfs_serial(const Graph& g, int source) {
  std::vector<int> level(static_cast<std::size_t>(g.n), -1);
  if (source < 0 || source >= g.n) return level;
  std::queue<int> q;
  level[static_cast<std::size_t>(source)] = 0;
  q.push(source);
  while (!q.empty()) {
    const int u = q.front();
    q.pop();
    const int next = level[static_cast<std::size_t>(u)] + 1;
    for (int p = g.offsets[static_cast<std::size_t>(u)]; p < g.offsets[static_cast<std::size_t>(u) + 1]; ++p) {
      const int v = g.neighbors[static_cast<std::size_t>(p)];
      if (level[static_cast<std::size_t>(v)] < 0) {
        level[static_cast<std::size_t>(v)] = next;
        q.push(v);
      }
    }
  }
  return level;
}

sparse::Csr adjacency_csr(const Graph& g) {
  sparse::Csr a;
  a.rows = a.cols = g.n;
  a.row_ptr.assign(g.offsets.begin(), g.offsets.end());
  a.col_idx.assign(g.neighbors.begin(), g.neighbors.end());
  a.vals.assign(g.neighbors.size(), 1.0);
  return a;
}

}  // namespace cubie::graph
