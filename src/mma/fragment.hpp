#pragma once
// PTX fragment layout of the FP64 mma.m8n8k4 instruction.
//
// A warp (32 lanes) collectively owns the three operands:
//   A : 8x4  -> each lane holds exactly 1 element
//   B : 4x8  -> each lane holds exactly 1 element
//   C : 8x8  -> each lane holds exactly 2 elements
// The mapping below follows the PTX ISA "Warp-level matrix fragment" section
// for .f64 m8n8k4. The CC variant preserves exactly these per-lane
// responsibilities (paper Section 5.2), which is why it must gather operands
// with shuffles - the instruction-count calibration in
// sim/calibration.hpp is derived from this layout.

#include <cstdint>

namespace cubie::mma {

inline constexpr int kWarpSize = 32;
inline constexpr int kM = 8;  // rows of A / C
inline constexpr int kN = 8;  // cols of B / C
inline constexpr int kK = 4;  // cols of A / rows of B

// --- A fragment: a[row][k] lives in lane (row * 4 + k) -----------------------
constexpr int lane_of_a(int row, int k) { return row * kK + k; }
constexpr int a_row_of_lane(int lane) { return lane / kK; }
constexpr int a_k_of_lane(int lane) { return lane % kK; }

// --- B fragment: b[k][col] lives in lane (col * 4 + k) -----------------------
constexpr int lane_of_b(int k, int col) { return col * kK + k; }
constexpr int b_k_of_lane(int lane) { return lane % kK; }
constexpr int b_col_of_lane(int lane) { return lane / kK; }

// --- C/D fragment: lane (row * 4 + col/2) holds c[row][col], col = 2*q + r ---
constexpr int lane_of_c(int row, int col) { return row * 4 + col / 2; }
constexpr int c_row_of_lane(int lane) { return lane / 4; }
constexpr int c_col_of_lane(int lane, int reg) { return (lane % 4) * 2 + reg; }

}  // namespace cubie::mma
