// Cubie-Cluster contracts, pinned end to end:
//   * the retry schedule is a pure function of (policy, injected RNG) —
//     exact backoff sequences, the cap, the deadline budget, and which
//     typed error codes are worth retrying at all;
//   * cell pricing (engine::modeled_cell_cost_s) is positive,
//     deterministic, and never executes a cell;
//   * cost-weighted rendezvous assignment partitions the suite exactly,
//     is deterministic, respects the balance cap, and moves only the dead
//     worker's cells when the worker set shrinks;
//   * the wire protocol round-trips the "cells" array and omits it for
//     full-suite requests (pre-cluster byte preservation);
//   * the merge property: per-shard reports merged in ANY shard order are
//     byte-identical to the single-engine suite report — records, engine
//     counting fields, and non-finite sentinel metrics included;
//   * an in-process Router fans a suite out over live workers, reproduces
//     the direct report, and fails over when a worker dies mid-cluster.

#include "cluster/merge.hpp"
#include "cluster/router.hpp"
#include "cluster/shard.hpp"
#include "engine/engine.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/retry.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <limits>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

namespace cubie {
namespace {

// Scale divisor for every suite-shaped test below (higher = smaller
// problems; the repo's other tests use 16-64).
constexpr int kScale = 64;

std::string cell_key(const serve::ShardCell& c) {
  return c.workload + "|" + std::to_string(c.case_index) + "|" + c.variant;
}

// ---------------------------------------------------------------------------
// RetrySchedule: deterministic by construction.

TEST(ClusterRetry, ZeroJitterScheduleIsExact) {
  serve::RetryPolicy p;
  p.max_attempts = 3;
  p.base_ms = 10;
  p.multiplier = 2;
  p.jitter = 0;
  serve::RetrySchedule s(p);
  EXPECT_EQ(s.attempts(), 1);
  auto d1 = s.next_delay_ms();
  ASSERT_TRUE(d1.has_value());
  EXPECT_DOUBLE_EQ(*d1, 10.0);
  EXPECT_EQ(s.attempts(), 2);
  auto d2 = s.next_delay_ms();
  ASSERT_TRUE(d2.has_value());
  EXPECT_DOUBLE_EQ(*d2, 20.0);
  EXPECT_EQ(s.attempts(), 3);
  EXPECT_FALSE(s.next_delay_ms().has_value());  // 3 attempts used up
}

TEST(ClusterRetry, InjectedRngPinsTheJitteredDelay) {
  serve::RetryPolicy p;
  p.max_attempts = 4;
  p.base_ms = 100;
  p.multiplier = 2;
  p.jitter = 0.5;
  // delay = raw * (1 - jitter * u); u = 0.5 -> raw * 0.75.
  serve::RetrySchedule s(p, [] { return 0.5; });
  auto d1 = s.next_delay_ms();
  auto d2 = s.next_delay_ms();
  ASSERT_TRUE(d1 && d2);
  EXPECT_DOUBLE_EQ(*d1, 75.0);
  EXPECT_DOUBLE_EQ(*d2, 150.0);
  // u = 0 keeps the raw delay; u -> 1 halves it (jitter 0.5).
  serve::RetrySchedule hi(p, [] { return 0.0; });
  EXPECT_DOUBLE_EQ(*hi.next_delay_ms(), 100.0);
}

TEST(ClusterRetry, CapBoundsTheRawBackoff) {
  serve::RetryPolicy p;
  p.max_attempts = 10;
  p.base_ms = 100;
  p.multiplier = 10;
  p.cap_ms = 250;
  p.jitter = 0;
  serve::RetrySchedule s(p);
  EXPECT_DOUBLE_EQ(*s.next_delay_ms(), 100.0);
  EXPECT_DOUBLE_EQ(*s.next_delay_ms(), 250.0);  // 1000 capped
  EXPECT_DOUBLE_EQ(*s.next_delay_ms(), 250.0);  // stays at the cap
}

TEST(ClusterRetry, DeadlineBudgetRefusesLateRetries) {
  serve::RetryPolicy p;
  p.max_attempts = 5;
  p.base_ms = 50;
  p.jitter = 0;
  p.deadline_ms = 100;
  serve::RetrySchedule s(p);
  // 30ms elapsed + 50ms delay = 80 < 100: allowed.
  ASSERT_TRUE(s.next_delay_ms(30).has_value());
  // 30ms elapsed + 100ms delay = 130 >= 100: a retry nobody will wait for.
  EXPECT_FALSE(s.next_delay_ms(30).has_value());
}

TEST(ClusterRetry, SingleAttemptPolicyNeverRetries) {
  serve::RetryPolicy p;
  p.max_attempts = 1;
  serve::RetrySchedule s(p);
  EXPECT_FALSE(s.next_delay_ms().has_value());
  EXPECT_EQ(s.attempts(), 1);
}

TEST(ClusterRetry, OnlyOverloadedIsRetryable) {
  EXPECT_TRUE(serve::retryable_error_code("overloaded"));
  EXPECT_FALSE(serve::retryable_error_code("bad_request"));
  EXPECT_FALSE(serve::retryable_error_code("deadline_exceeded"));
  EXPECT_FALSE(serve::retryable_error_code("shutting_down"));
  EXPECT_FALSE(serve::retryable_error_code("internal"));
  EXPECT_FALSE(serve::retryable_error_code(""));
}

// ---------------------------------------------------------------------------
// Cell pricing.

TEST(ClusterShard, PricingIsPositiveDeterministicAndNeverExecutes) {
  engine::ExperimentEngine eng;
  const auto cells = cluster::enumerate_suite_cells(eng, kScale);
  ASSERT_FALSE(cells.empty());
  for (const auto& c : cells) {
    EXPECT_GT(c.cost_s, 0.0) << cell_key(c.cell);
    EXPECT_TRUE(std::isfinite(c.cost_s)) << cell_key(c.cell);
  }
  // Pricing is pure enumeration: no cell was materialized.
  const auto ctr = eng.counters();
  EXPECT_EQ(ctr.misses, 0u);
  EXPECT_EQ(ctr.memo_hits, 0u);
  EXPECT_FALSE(eng.active());
  // And a second enumeration prices identically (a pure function of
  // (cell, model) — the property router determinism rests on).
  const auto again = cluster::enumerate_suite_cells(eng, kScale);
  ASSERT_EQ(again.size(), cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(cell_key(again[i].cell), cell_key(cells[i].cell));
    EXPECT_DOUBLE_EQ(again[i].cost_s, cells[i].cost_s);
  }
}

// ---------------------------------------------------------------------------
// Cost-weighted rendezvous assignment.

TEST(ClusterShard, AssignmentPartitionsTheSuiteExactly) {
  engine::ExperimentEngine eng;
  const auto cells = cluster::enumerate_suite_cells(eng, kScale);
  const std::vector<std::string> workers = {"w0", "w1", "w2"};
  const auto a = cluster::assign_cells(cells, workers);
  ASSERT_EQ(a.shards.size(), workers.size());
  ASSERT_EQ(a.modeled_cost_s.size(), workers.size());

  // Every cell lands on exactly one shard; nothing invented, nothing lost.
  std::multiset<std::string> assigned;
  for (const auto& shard : a.shards)
    for (const auto& c : shard) assigned.insert(cell_key(c));
  std::multiset<std::string> expected;
  for (const auto& c : cells) expected.insert(cell_key(c.cell));
  EXPECT_EQ(assigned, expected);

  // Shards preserve canonical enumeration order (what lets workers emit
  // records the merge can place by simple canonical position).
  std::vector<std::string> canon;
  for (const auto& c : cells) canon.push_back(cell_key(c.cell));
  auto pos = [&](const std::string& k) {
    return std::find(canon.begin(), canon.end(), k) - canon.begin();
  };
  for (const auto& shard : a.shards)
    for (std::size_t i = 1; i < shard.size(); ++i)
      EXPECT_LT(pos(cell_key(shard[i - 1])), pos(cell_key(shard[i])));
}

TEST(ClusterShard, AssignmentIsDeterministicAndBalanced) {
  engine::ExperimentEngine eng;
  const auto cells = cluster::enumerate_suite_cells(eng, kScale);
  const std::vector<std::string> workers = {"w0", "w1", "w2"};
  const auto a = cluster::assign_cells(cells, workers);
  const auto b = cluster::assign_cells(cells, workers);
  ASSERT_EQ(a.shards.size(), b.shards.size());
  for (std::size_t i = 0; i < a.shards.size(); ++i) {
    ASSERT_EQ(a.shards[i].size(), b.shards[i].size());
    for (std::size_t j = 0; j < a.shards[i].size(); ++j)
      EXPECT_EQ(cell_key(a.shards[i][j]), cell_key(b.shards[i][j]));
  }
  EXPECT_DOUBLE_EQ(a.imbalance_ratio, b.imbalance_ratio);
  // The balance cap bounds the modeled imbalance. The final cell placed on
  // a worker may push it past the cap, so the guarantee is cap + one
  // largest cell, not the raw cap — but for the real suite the heavy cells
  // are placed first and the ratio stays comfortably inside it.
  EXPECT_GE(a.imbalance_ratio, 1.0);
  EXPECT_LE(a.imbalance_ratio, cluster::kBalanceCapFactor + 0.05);
}

TEST(ClusterShard, LosingAWorkerMovesOnlyItsCells) {
  engine::ExperimentEngine eng;
  const auto cells = cluster::enumerate_suite_cells(eng, kScale);
  const auto full = cluster::assign_cells(cells, {"w0", "w1", "w2"});
  const auto down = cluster::assign_cells(cells, {"w0", "w2"});  // w1 died

  auto owner_of = [](const cluster::ShardAssignment& a,
                     const std::vector<std::string>& names) {
    std::vector<std::pair<std::string, std::string>> out;  // cell -> worker
    for (std::size_t i = 0; i < a.shards.size(); ++i)
      for (const auto& c : a.shards[i]) out.emplace_back(cell_key(c), names[i]);
    return out;
  };
  const auto before = owner_of(full, {"w0", "w1", "w2"});
  const auto after = owner_of(down, {"w0", "w2"});
  auto find_after = [&](const std::string& k) {
    for (const auto& [cell, w] : after)
      if (cell == k) return w;
    return std::string();
  };
  // Rendezvous hashing's minimal-disruption property, softened by the
  // balance cap: cells that were NOT on the dead worker mostly stay put.
  std::size_t survivors = 0, stayed = 0;
  for (const auto& [cell, w] : before) {
    if (w == "w1") continue;
    ++survivors;
    if (find_after(cell) == w) ++stayed;
  }
  ASSERT_GT(survivors, 0u);
  EXPECT_GE(stayed * 2, survivors)  // at least half stay put
      << stayed << "/" << survivors << " survivor cells kept their worker";
}

TEST(ClusterShard, CollidingRecordKeysStayOnOneWorker) {
  // At aggressive scales distinct case indices collapse to the same scaled
  // case label (FFT's five cases all become "16x16xb2" at scale 64), and
  // with them the record keys. Such cells must be assigned as one unit —
  // split across shards, each shard would emit the collapsed record and
  // the merge would reject the overlap.
  engine::ExperimentEngine eng;
  const auto cells = cluster::enumerate_suite_cells(eng, kScale);
  std::set<std::string> groups;
  std::map<std::string, int> group_sizes;
  for (const auto& c : cells) {
    ASSERT_FALSE(c.group.empty());
    ++group_sizes[c.group];
  }
  const bool any_collision =
      std::any_of(group_sizes.begin(), group_sizes.end(),
                  [](const auto& kv) { return kv.second > 1; });
  ASSERT_TRUE(any_collision) << "expected label collisions at scale "
                             << kScale << "; pick a scale that has them";

  const auto a = cluster::assign_cells(cells, {"w0", "w1", "w2"});
  std::map<std::string, std::set<std::size_t>> group_workers;
  std::map<std::string, std::string> group_of;
  for (const auto& c : cells) group_of[cell_key(c.cell)] = c.group;
  for (std::size_t w = 0; w < a.shards.size(); ++w)
    for (const auto& c : a.shards[w])
      group_workers[group_of[cell_key(c)]].insert(w);
  for (const auto& [g, ws] : group_workers)
    EXPECT_EQ(ws.size(), 1u) << "group " << g << " split across workers";
}

TEST(ClusterShard, Fnv1a64MatchesFixedVectors) {
  // Classic FNV-1a reference vectors — pins the constants so assignments
  // are identical across platforms and builds.
  EXPECT_EQ(cluster::fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(cluster::fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(cluster::fnv1a64("foobar"), 0x85944171f73967e8ull);
}

// ---------------------------------------------------------------------------
// Wire protocol: the "cells" array.

TEST(ClusterProtocol, CellsRoundTripThroughTheWire) {
  serve::Request r;
  r.id = "s1";
  r.cmd = serve::Cmd::Suite;
  r.spec.scale = kScale;
  r.cells = {{"GEMM", 0, "TC"}, {"SpMV", 2, "Baseline"}};
  const std::string line = serve::request_to_json(r).dump(-1);
  std::string err;
  auto back = serve::parse_request(line, &err);
  ASSERT_TRUE(back) << err;
  ASSERT_EQ(back->cells.size(), 2u);
  EXPECT_EQ(back->cells[0].workload, "GEMM");
  EXPECT_EQ(back->cells[0].case_index, 0);
  EXPECT_EQ(back->cells[0].variant, "TC");
  EXPECT_EQ(back->cells[1].workload, "SpMV");
  EXPECT_EQ(back->cells[1].case_index, 2);
  EXPECT_EQ(back->cells[1].variant, "Baseline");
  EXPECT_NE(serve::request_key(*back).find("shard[2]"), std::string::npos);
}

TEST(ClusterProtocol, EmptyCellsAreOmittedFromTheWire) {
  serve::Request r;
  r.id = "s2";
  r.cmd = serve::Cmd::Suite;
  r.spec.scale = kScale;
  const std::string line = serve::request_to_json(r).dump(-1);
  // Pre-cluster byte preservation: a full-suite request must not mention
  // cells at all.
  EXPECT_EQ(line.find("cells"), std::string::npos);
  std::string err;
  auto back = serve::parse_request(line, &err);
  ASSERT_TRUE(back) << err;
  EXPECT_TRUE(back->cells.empty());
}

TEST(ClusterProtocol, CellsRejectedOnNonSuiteCommands) {
  std::string err;
  auto r = serve::parse_request(
      R"({"id":"x","cmd":"run","cells":[{"workload":"GEMM","case":0,"variant":"TC"}]})",
      &err);
  EXPECT_FALSE(r.has_value());
  EXPECT_NE(err.find("cells"), std::string::npos);
}

// ---------------------------------------------------------------------------
// The merge property. The full suite report and the per-shard reports are
// computed once (fresh engines, no cache) and shared across the tests
// below — the suite is the expensive part.

struct SuiteFixture {
  report::MetricsReport full;
  report::EngineStats full_engine;
  std::vector<report::MetricsReport> shards;  // 3 disjoint shard reports
  std::vector<report::EngineStats> shard_engines;
  std::vector<std::string> canonical_keys;
};

const SuiteFixture& suite_fixture() {
  static const SuiteFixture* fx = [] {
    auto* f = new SuiteFixture();
    engine::EngineOptions eo;
    eo.jobs = 4;
    {
      engine::ExperimentEngine eng(eo);
      f->full = serve::suite_report(eng, kScale);
      f->full_engine = eng.stats();
      f->canonical_keys = cluster::canonical_suite_record_keys(eng, kScale);
    }
    // Round-robin split into 3 shards — deliberately NOT the router's
    // cost-balanced assignment, because the merge contract must hold for
    // any disjoint cover that keeps record-key collision groups whole
    // (cells whose scaled labels collide collapse into one record and must
    // share a shard; the round robin is over groups, not cells).
    engine::ExperimentEngine enumerator;
    const auto cells = cluster::enumerate_suite_cells(enumerator, kScale);
    std::vector<std::vector<serve::ShardCell>> parts(3);
    std::map<std::string, std::size_t> shard_of_group;
    for (const auto& c : cells) {
      auto [it, inserted] =
          shard_of_group.emplace(c.group, shard_of_group.size() % 3);
      parts[it->second].push_back(c.cell);
    }
    f->shards.resize(3);
    f->shard_engines.resize(3);
    std::vector<std::thread> threads;
    for (int t = 0; t < 3; ++t) {
      threads.emplace_back([f, t, &parts, &eo] {
        engine::ExperimentEngine eng(eo);
        std::string err;
        auto rep = serve::suite_shard_report(
            eng, kScale, parts[static_cast<std::size_t>(t)], &err);
        if (!rep) throw std::runtime_error("shard report failed: " + err);
        f->shards[static_cast<std::size_t>(t)] = std::move(*rep);
        f->shard_engines[static_cast<std::size_t>(t)] = eng.stats();
      });
    }
    for (auto& th : threads) th.join();
    return f;
  }();
  return *fx;
}

TEST(ClusterMerge, AnyShardOrderReproducesTheSuiteByteForByte) {
  const auto& fx = suite_fixture();
  const std::string expected = fx.full.to_json().dump(2);
  ASSERT_FALSE(fx.full.records.empty());

  std::vector<std::size_t> order = {0, 1, 2};
  int permutations = 0;
  do {
    std::vector<report::MetricsReport> shuffled;
    for (auto i : order) shuffled.push_back(fx.shards[i]);
    std::string err;
    auto merged =
        cluster::merge_shard_reports(shuffled, fx.canonical_keys, &err);
    ASSERT_TRUE(merged) << err;
    EXPECT_EQ(merged->to_json().dump(2), expected)
        << "shard order " << order[0] << order[1] << order[2];
    ++permutations;
  } while (std::next_permutation(order.begin(), order.end()));
  EXPECT_EQ(permutations, 6);
}

TEST(ClusterMerge, EngineCountingFieldsSumToTheSingleEngine) {
  const auto& fx = suite_fixture();
  report::EngineStats total;
  for (const auto& s : fx.shard_engines)
    total = cluster::merge_engine_stats(total, s);
  // The shards partition the suite, every engine was cold and cacheless,
  // so the counting fields must sum to exactly the single engine's.
  EXPECT_DOUBLE_EQ(total.cells, fx.full_engine.cells);
  EXPECT_DOUBLE_EQ(total.misses, fx.full_engine.misses);
  EXPECT_DOUBLE_EQ(total.disk_hits, fx.full_engine.disk_hits);
  EXPECT_DOUBLE_EQ(total.disk_errors, fx.full_engine.disk_errors);
  EXPECT_DOUBLE_EQ(total.traced_reruns, fx.full_engine.traced_reruns);
  // Wall-clock fields are machine-dependent — only their algebra is
  // checked: sums for exec, max for the slowest cell.
  EXPECT_GT(total.exec_wall_s, 0.0);
  double max_cell = 0.0;
  for (const auto& s : fx.shard_engines)
    max_cell = std::max(max_cell, s.max_cell_wall_s);
  EXPECT_DOUBLE_EQ(total.max_cell_wall_s, max_cell);
}

TEST(ClusterMerge, OverlapMissingAndMetadataMismatchAreTyped) {
  const auto& fx = suite_fixture();
  std::string err;

  // Overlap: the same shard twice.
  auto dup = cluster::merge_shard_reports({fx.shards[0], fx.shards[0]},
                                          fx.canonical_keys, &err);
  EXPECT_FALSE(dup.has_value());
  EXPECT_FALSE(err.empty());

  // Missing: one shard short of the canonical cover.
  err.clear();
  auto partial = cluster::merge_shard_reports({fx.shards[0], fx.shards[1]},
                                              fx.canonical_keys, &err);
  EXPECT_FALSE(partial.has_value());
  EXPECT_FALSE(err.empty());

  // Metadata disagreement: a shard from a different scale cannot merge.
  err.clear();
  auto odd = fx.shards[2];
  odd.scale_divisor = kScale + 1;
  auto mixed = cluster::merge_shard_reports(
      {fx.shards[0], fx.shards[1], odd}, fx.canonical_keys, &err);
  EXPECT_FALSE(mixed.has_value());
  EXPECT_FALSE(err.empty());
}

// ---------------------------------------------------------------------------
// Non-finite sentinel metrics. JSON has no NaN/Inf: they serialize as null
// and parse back as NaN (report::from_json), so the router's
// parse -> merge -> re-serialize hop keeps the merged report byte-identical
// to the direct run even when a cell emits a sentinel.

report::MetricsReport sentinel_report(double value) {
  report::MetricsReport rep;
  rep.tool = "sentinel";
  rep.title = "sentinel";
  rep.scale_divisor = kScale;
  auto& r = rep.add_record("W", "TC", "H200", "c0");
  r.set("good", 1.5);
  r.set("weird", value);
  return rep;
}

TEST(ClusterMerge, NonFiniteMetricsSurviveTheMerge) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();

  report::MetricsReport a = sentinel_report(nan);
  report::MetricsReport b = sentinel_report(inf);
  b.records[0].workload = "X";  // distinct canonical key
  const std::vector<std::string> keys = {"W|TC|H200|c0", "X|TC|H200|c0"};

  std::string err;
  auto merged = cluster::merge_shard_reports({b, a}, keys, &err);
  ASSERT_TRUE(merged) << err;
  ASSERT_EQ(merged->records.size(), 2u);
  // In-memory merge copies the bit patterns untouched.
  const double* mw = merged->records[0].get("weird");
  const double* mx = merged->records[1].get("weird");
  ASSERT_TRUE(mw && mx);
  EXPECT_TRUE(std::isnan(*mw));
  EXPECT_TRUE(std::isinf(*mx));
}

TEST(ClusterMerge, NonFiniteMetricsAreByteStableAcrossTheWireHop) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  report::MetricsReport direct = sentinel_report(nan);
  const std::string direct_json = direct.to_json().dump(2);
  // The sentinel serializes as null, not as a dropped key.
  EXPECT_NE(direct_json.find("\"weird\": null"), std::string::npos);

  // Worker -> router hop: serialize, parse, merge the single shard,
  // re-serialize. The result must be the exact bytes of the direct run.
  std::string err;
  auto doc = report::Json::parse(direct_json, &err);
  ASSERT_TRUE(doc) << err;
  auto parsed = report::MetricsReport::from_json(*doc, &err);
  ASSERT_TRUE(parsed) << err;
  const std::vector<report::MetricsReport> one = {*parsed};
  auto merged = cluster::merge_shard_reports(one, {"W|TC|H200|c0"}, &err);
  ASSERT_TRUE(merged) << err;
  EXPECT_EQ(merged->to_json().dump(2), direct_json);
}

// ---------------------------------------------------------------------------
// Router integration: two live workers behind an in-process Router.

struct LiveServer {
  explicit LiveServer(serve::ServerOptions opts) : server(std::move(opts)) {
    std::string err;
    if (!server.start(&err)) throw std::runtime_error(err);
    thread = std::thread([this] { server.serve(); });
  }
  ~LiveServer() {
    if (thread.joinable()) {
      server.request_shutdown();
      thread.join();
    }
  }
  void shutdown_and_join() {
    server.request_shutdown();
    thread.join();
  }

  serve::Server server;
  std::thread thread;
};

std::string temp_socket(const char* tag) {
  return (std::filesystem::temp_directory_path() /
          (std::string("cubie_cluster_") + tag + ".sock"))
      .string();
}

TEST(ClusterRouter, SuiteFansOutMergesAndFailsOver) {
  // Both workers share one disk cache dir — the cluster's cross-shard memo
  // layer, and what makes the post-failover suite cheap (the survivor
  // loads the dead worker's cells instead of recomputing them).
  const auto cache_dir = std::filesystem::temp_directory_path() /
                         "cubie_cluster_test_cache";
  std::filesystem::remove_all(cache_dir);
  std::filesystem::create_directories(cache_dir);

  serve::ServerOptions w0;
  w0.socket_path = temp_socket("w0");
  w0.engine.jobs = 2;
  w0.engine.cache_dir = cache_dir.string();
  serve::ServerOptions w1 = w0;
  w1.socket_path = temp_socket("w1");
  LiveServer lw0(w0);
  LiveServer lw1(w1);

  cluster::RouterOptions ropts;
  ropts.socket_path = temp_socket("router");
  ropts.workers = {{"w0", {w0.socket_path, -1}}, {"w1", {w1.socket_path, -1}}};
  ropts.retry.jitter = 0;
  ropts.retry.base_ms = 5;
  ropts.probe_interval_ms = 100;
  cluster::Router router(std::move(ropts));
  std::string err;
  ASSERT_TRUE(router.start(&err)) << err;
  std::thread rt([&router] { router.serve(); });

  auto client = serve::Client::connect({temp_socket("router"), -1}, &err);
  ASSERT_TRUE(client) << err;

  serve::Request suite;
  suite.id = "suite-1";
  suite.cmd = serve::Cmd::Suite;
  suite.spec.scale = kScale;
  auto resp = client->call(suite, &err);
  ASSERT_TRUE(resp) << err;
  const report::Json* ok = resp->find("ok");
  ASSERT_TRUE(ok && ok->as_bool()) << resp->dump(-1);

  // The merged cluster response carries the exact records a single engine
  // produces (the fixture's full report).
  const report::Json* rep_json = resp->find("report");
  ASSERT_NE(rep_json, nullptr);
  auto via_cluster = report::MetricsReport::from_json(*rep_json, &err);
  ASSERT_TRUE(via_cluster) << err;
  const auto& fx = suite_fixture();
  ASSERT_EQ(via_cluster->records.size(), fx.full.records.size());
  report::Json direct_records = fx.full.to_json();
  report::Json cluster_records = via_cluster->to_json();
  EXPECT_EQ(cluster_records.find("records")->dump(2),
            direct_records.find("records")->dump(2));

  auto st = router.stats();
  EXPECT_EQ(st.suites, 1u);
  EXPECT_GE(st.shards, 2u);  // both workers took part
  EXPECT_EQ(st.failovers, 0u);

  // Kill w1 and ask again: the router must fail its shards over to w0 and
  // still answer ok.
  lw1.shutdown_and_join();
  suite.id = "suite-2";
  resp = client->call(suite, &err);
  ASSERT_TRUE(resp) << err;
  ok = resp->find("ok");
  ASSERT_TRUE(ok && ok->as_bool()) << resp->dump(-1);
  st = router.stats();
  EXPECT_EQ(st.suites, 2u);
  EXPECT_GE(st.failovers, 1u);

  const auto workers = router.workers();
  ASSERT_EQ(workers.size(), 2u);

  router.request_shutdown();
  rt.join();
  std::filesystem::remove_all(cache_dir);
}

}  // namespace
}  // namespace cubie
