#pragma once
// Cubie-Scope bench history: a JSONL store of per-run MetricsReport
// summaries and a rolling-median trend comparator over it.
//
// `cubie record` collapses one --json report into a HistoryEntry — the
// arithmetic mean of every metric over the report's records, keyed by git
// SHA, producing tool, and scale divisor — and appends it as one line of
// BENCH_history.jsonl. `cubie trend` then compares the newest entry
// against the per-metric rolling median of all prior entries with the same
// (tool, scale): each metric's relative change is judged in its "good"
// direction (report::lower_is_better, the same rule tools/bench_diff
// applies), and any change past the tolerance is a regression — exit 1.
// This turns the bench history into a CI regression gate: every push
// appends one entry, and the median of the trailing window absorbs normal
// run-to-run noise that a single-baseline diff would trip over.
//
// One JSONL line:
//   {"schema_version": 1, "kind": "cubie-bench-history", "sha": "...",
//    "tool": "fig03_perf", "scale": 16, "records": 120,
//    "metrics": {"gflops": 123.4, "time_ms": 0.56, ...}}
//
// Consumers must ignore unknown keys; producers may only add keys (bump
// kHistorySchemaVersion for anything else).

#include "common/report.hpp"

#include <cstddef>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace cubie::telemetry {

inline constexpr int kHistorySchemaVersion = 1;
inline constexpr const char* kDefaultHistoryPath = "BENCH_history.jsonl";

// One recorded run: per-metric means over every record of one report.
struct HistoryEntry {
  std::string sha;   // git commit id ("local" when unknown)
  std::string tool;  // producing bench binary
  int scale = 1;
  std::size_t records = 0;  // records the means were taken over
  // Insertion-ordered metric name -> mean value.
  std::vector<std::pair<std::string, double>> metrics;

  const double* get(const std::string& name) const;
};

// Collapse a report into its history summary. Only finite metric values
// contribute to the means.
HistoryEntry summarize(const report::MetricsReport& rep, std::string sha);

report::Json to_json(const HistoryEntry& e);
std::optional<HistoryEntry> entry_from_json(const report::Json& j,
                                            std::string* error = nullptr);

// Append one entry as a JSONL line (creates the file). False on I/O error.
bool append_entry(const std::string& path, const HistoryEntry& e,
                  std::string* error = nullptr);

// Every entry, in file (= recording) order. nullopt when the file cannot
// be read or any line is not a valid history entry.
std::optional<std::vector<HistoryEntry>> load_history(
    const std::string& path, std::string* error = nullptr);

// One metric of the newest entry vs the rolling median of prior entries.
struct TrendDelta {
  std::string metric;
  double latest = 0.0;
  double median = 0.0;  // over prior entries carrying this metric
  double worse = 0.0;   // signed relative change toward "worse"
  bool regression = false;
};

struct TrendReport {
  std::string tool;
  std::string sha;  // the judged (newest) entry
  int scale = 1;
  std::size_t prior = 0;  // prior entries with the same (tool, scale)
  std::vector<TrendDelta> deltas;

  bool pass() const {
    for (const auto& d : deltas)
      if (d.regression) return false;
    return true;
  }
};

// Judge the newest entry against the per-metric rolling median of every
// earlier entry with the same (tool, scale). A metric regresses when its
// direction-aware relative change exceeds `tol`. With no prior entries (or
// an empty history) nothing is compared and the report passes. Non-empty
// `only_metric` restricts the comparison to that metric.
TrendReport trend(const std::vector<HistoryEntry>& entries, double tol,
                  const std::string& only_metric = "");

}  // namespace cubie::telemetry
