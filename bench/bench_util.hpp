#pragma once
// Shared helpers for the figure/table bench binaries: variant availability,
// suite sweeps, and formatting. Each binary stays standalone (no cross-bench
// caching) so `for b in build/bench/*; do $b; done` reproduces every figure
// from scratch.

#include "common/metrics.hpp"
#include "common/table.hpp"
#include "core/kernels.hpp"
#include "sim/model.hpp"

#include <iostream>
#include <string>
#include <vector>

namespace cubie::benchutil {

inline std::vector<core::Variant> available_variants(const core::Workload& w) {
  std::vector<core::Variant> vs;
  if (w.has_baseline()) vs.push_back(core::Variant::Baseline);
  vs.push_back(core::Variant::TC);
  vs.push_back(core::Variant::CC);
  if (w.cce_distinct()) vs.push_back(core::Variant::CCE);
  return vs;
}

// Performance metric for Figure 3: useful work rate. FLOP/s for
// floating-point kernels, traversed edges/s (TEPS) for BFS.
inline double perf_metric(const core::Workload& w,
                          const sim::KernelProfile& prof, double time_s) {
  (void)w;
  return time_s > 0.0 ? prof.useful_flops / time_s : 0.0;
}

// Case-averaged speedup of variant `num` over variant `den` on one device.
struct SpeedupRow {
  std::string workload;
  core::Quadrant quadrant;
  std::vector<double> per_gpu;  // indexed like sim::all_gpus()
};

inline std::vector<SpeedupRow> speedup_sweep(core::Variant num,
                                             core::Variant den,
                                             int scale_divisor) {
  std::vector<SpeedupRow> rows;
  for (const auto& w : core::make_suite()) {
    const bool have_num = num != core::Variant::Baseline || w->has_baseline();
    const bool have_den = den != core::Variant::Baseline || w->has_baseline();
    if (!have_num || !have_den) continue;
    if ((num == core::Variant::CCE || den == core::Variant::CCE) &&
        !w->cce_distinct())
      continue;
    SpeedupRow row;
    row.workload = w->name();
    row.quadrant = w->quadrant();
    const auto gpus = sim::all_gpus();
    std::vector<std::vector<double>> ratios(gpus.size());
    for (const auto& tc : w->cases(scale_divisor)) {
      const auto out_num = w->run(num, tc);
      const auto out_den = w->run(den, tc);
      for (std::size_t g = 0; g < gpus.size(); ++g) {
        const sim::DeviceModel model(sim::spec_for(gpus[g]));
        const double t_num = model.predict(out_num.profile).time_s;
        const double t_den = model.predict(out_den.profile).time_s;
        ratios[g].push_back(t_den / t_num);  // speedup of num over den
      }
    }
    for (auto& r : ratios) row.per_gpu.push_back(common::geomean(r));
    rows.push_back(std::move(row));
  }
  return rows;
}

inline void print_speedup_table(const std::string& title,
                                const std::vector<SpeedupRow>& rows) {
  std::cout << title << "\n\n";
  common::Table t({"Quadrant", "Workload", "A100", "H200", "B200"});
  for (const auto& r : rows) {
    t.add_row({core::quadrant_name(r.quadrant), r.workload,
               common::fmt_double(r.per_gpu[0], 2) + "x",
               common::fmt_double(r.per_gpu[1], 2) + "x",
               common::fmt_double(r.per_gpu[2], 2) + "x"});
  }
  t.print(std::cout);
  std::cout << "\nCSV:\n";
  t.print_csv(std::cout);
  std::cout << '\n';
}

}  // namespace cubie::benchutil
