// Cubie-Engine contracts: cell-key uniqueness, memoized-vs-fresh equality,
// disk round-trip exactness (including non-finite values), typed cache
// failure paths, worker-exception capture, traced-rerun accounting,
// registry lookup, and the bit-identical-to-serial guarantee of --jobs
// parallel Plan execution.

#include "engine/cache.hpp"
#include "engine/engine.hpp"
#include "engine/plan.hpp"

#include "common/report.hpp"
#include "core/kernels.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <limits>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

namespace cubie {
namespace {

// Exact equality of two RunOutputs: every profile counter and every output
// value. The engine's contract is bit-identity, so no tolerances here.
void expect_identical(const core::RunOutput& a, const core::RunOutput& b) {
  const auto pa = report::to_json(a.profile).dump(-1);
  const auto pb = report::to_json(b.profile).dump(-1);
  EXPECT_EQ(pa, pb);
  ASSERT_EQ(a.values.size(), b.values.size());
  for (std::size_t i = 0; i < a.values.size(); ++i)
    EXPECT_EQ(a.values[i], b.values[i]) << "value " << i;
}

TEST(EngineKey, DistinctCellsNeverCollide) {
  engine::ExperimentEngine eng;
  std::set<std::string> keys;
  std::size_t cells = 0;
  for (int scale : {16, 32}) {
    for (const auto& w : eng.suite()) {
      for (const auto& tc : w->cases(scale)) {
        for (auto v : core::available_variants(*w)) {
          keys.insert(engine::cell_key(w->name(), v, tc, scale));
          ++cells;
        }
      }
    }
  }
  // Distinct (workload, variant, case, scale) must map to distinct keys.
  // Cases whose dimensions clamp to the same values at a given scale are
  // genuinely the same work, so count unique (dims, dataset, label) tuples.
  std::set<std::string> distinct;
  for (int scale : {16, 32}) {
    for (const auto& w : eng.suite()) {
      for (const auto& tc : w->cases(scale)) {
        for (auto v : core::available_variants(*w)) {
          std::string id = w->name() + '\n' + core::variant_name(v) + '\n' +
                           tc.label + '\n' + tc.dataset + '\n' +
                           std::to_string(scale);
          for (auto d : tc.dims) id += '\n' + std::to_string(d);
          distinct.insert(id);
        }
      }
    }
  }
  EXPECT_EQ(keys.size(), distinct.size());
  EXPECT_LE(keys.size(), cells);
}

TEST(EngineKey, ScaleVariantAndCaseAllFeedTheKey) {
  engine::ExperimentEngine eng;
  const auto* w = eng.workload("GEMM");
  ASSERT_NE(w, nullptr);
  const auto c16 = w->cases(16);
  ASSERT_GE(c16.size(), 2u);
  const auto k = engine::cell_key(w->name(), core::Variant::TC, c16[0], 16);
  EXPECT_NE(k, engine::cell_key(w->name(), core::Variant::CC, c16[0], 16));
  EXPECT_NE(k, engine::cell_key(w->name(), core::Variant::TC, c16[1], 16));
  EXPECT_NE(k, engine::cell_key("GEMV", core::Variant::TC, c16[0], 16));
  // Same case content at a different scale divisor is a different cell only
  // through the dims/label; the key must still separate scales explicitly.
  EXPECT_NE(k, engine::cell_key(w->name(), core::Variant::TC, c16[0], 32));
}

TEST(EngineRegistry, CaseInsensitiveLookupAndNames) {
  const auto names = core::workload_names();
  EXPECT_EQ(names.size(), core::make_suite().size());
  EXPECT_EQ(names.front(), "GEMM");  // paper order preserved

  engine::ExperimentEngine eng;
  EXPECT_NE(eng.workload("SpMV"), nullptr);
  EXPECT_EQ(eng.workload("SpMV"), eng.workload("spmv"));
  EXPECT_EQ(eng.workload("SpMV"), eng.workload("SPMV"));
  EXPECT_EQ(eng.workload("no-such-workload"), nullptr);
  EXPECT_EQ(core::make_workload("gemm")->name(), "GEMM");
}

TEST(EngineMemo, CachedEqualsFreshAndCountsHits) {
  engine::ExperimentEngine eng;
  const auto* w = eng.workload("Scan");
  ASSERT_NE(w, nullptr);
  const auto tc = w->cases(64)[w->representative_case()];

  const auto& first = eng.run(*w, core::Variant::TC, tc, 64);
  const auto& again = eng.run(*w, core::Variant::TC, tc, 64);
  EXPECT_EQ(&first, &again);  // memoized: same object, not a re-run

  const auto fresh = w->run(core::Variant::TC, tc);
  expect_identical(first, fresh);

  const auto c = eng.counters();
  EXPECT_EQ(c.misses, 1u);
  EXPECT_EQ(c.memo_hits, 1u);
  EXPECT_EQ(c.disk_hits, 0u);
  EXPECT_GT(c.exec_wall_s, 0.0);
  EXPECT_TRUE(eng.active());
}

TEST(EngineDisk, RoundTripIsExact) {
  const auto dir = std::filesystem::temp_directory_path() /
                   "cubie_engine_disk_test";
  std::filesystem::remove_all(dir);
  engine::DiskCache cache(dir.string());
  ASSERT_TRUE(cache.enabled());

  const auto w = core::make_workload("Reduction");
  const auto tc = w->cases(64)[w->representative_case()];
  const auto out = w->run(core::Variant::CC, tc);
  const auto key = engine::cell_key("Reduction", core::Variant::CC, tc, 64);

  EXPECT_EQ(cache.load(key).status, engine::CacheStatus::Miss);
  ASSERT_TRUE(cache.store(key, out).ok());
  ASSERT_TRUE(std::filesystem::exists(cache.path_for(key)));
  const auto back = cache.load(key);
  ASSERT_TRUE(back.hit());
  expect_identical(out, *back.output);

  // A different key must not alias onto this file's contents.
  const auto other = engine::cell_key("Reduction", core::Variant::TC, tc, 64);
  EXPECT_EQ(cache.load(other).status, engine::CacheStatus::Miss);
  std::filesystem::remove_all(dir);
}

// NaN and Inf have no JSON number representation; the cache encodes them as
// bit-exact string sentinels. A cell whose values include non-finite
// doubles (any sign, any NaN payload) must reload with the same bits — the
// old behaviour silently turned them into null and reloaded 0.0.
TEST(EngineDisk, NonFiniteValuesRoundTripBitExactly) {
  const auto dir = std::filesystem::temp_directory_path() /
                   "cubie_engine_disk_nonfinite";
  std::filesystem::remove_all(dir);
  engine::DiskCache cache(dir.string());
  ASSERT_TRUE(cache.enabled());

  auto from_bits = [](std::uint64_t b) {
    double v;
    std::memcpy(&v, &b, sizeof(v));
    return v;
  };
  core::RunOutput out;
  out.profile.useful_flops = 1.0;
  out.values = {std::numeric_limits<double>::quiet_NaN(),   // canonical NaN
                from_bits(0xfff8dead'beef0001ull),          // payload NaN
                std::numeric_limits<double>::infinity(),
                -std::numeric_limits<double>::infinity(),
                0.0,
                -0.0,
                1.0 / 3.0};

  const std::string key = "nonfinite-test-cell";
  ASSERT_TRUE(cache.store(key, out).ok());
  const auto back = cache.load(key);
  ASSERT_TRUE(back.hit());
  ASSERT_EQ(back.output->values.size(), out.values.size());
  for (std::size_t i = 0; i < out.values.size(); ++i) {
    // Bit-level comparison: catches NaN payload loss and -0.0 vs +0.0.
    EXPECT_EQ(0, std::memcmp(&out.values[i], &back.output->values[i],
                             sizeof(double)))
        << "values[" << i << "]";
  }
  std::filesystem::remove_all(dir);
}

// Every damaged-file shape maps to its own CacheStatus instead of a silent
// miss (or a crash). inject_fault() is the production test hook for this.
TEST(EngineDisk, TypedFailurePathsAreDistinguished) {
  const auto dir = std::filesystem::temp_directory_path() /
                   "cubie_engine_disk_faults";
  std::filesystem::remove_all(dir);
  engine::DiskCache cache(dir.string());
  ASSERT_TRUE(cache.enabled());

  core::RunOutput out;
  out.profile.useful_flops = 2.0;
  out.values = {1.0, 2.0, 3.0};
  const std::string key = "fault-injection-cell";

  const std::pair<engine::DiskCache::Fault, engine::CacheStatus> faults[] = {
      {engine::DiskCache::Fault::Truncate, engine::CacheStatus::ParseError},
      {engine::DiskCache::Fault::CorruptJson, engine::CacheStatus::ParseError},
      {engine::DiskCache::Fault::WrongKind, engine::CacheStatus::KindMismatch},
      {engine::DiskCache::Fault::WrongKey, engine::CacheStatus::KeyMismatch},
      {engine::DiskCache::Fault::BadValue, engine::CacheStatus::BadValue},
  };
  for (const auto& [fault, want] : faults) {
    ASSERT_TRUE(cache.store(key, out).ok());  // restore a healthy file
    ASSERT_TRUE(cache.inject_fault(key, fault));
    const auto r = cache.load(key);
    EXPECT_EQ(r.status, want)
        << "fault " << static_cast<int>(fault) << " -> "
        << engine::cache_status_name(r.status) << " (" << r.detail << ")";
    EXPECT_FALSE(r.hit());
    EXPECT_TRUE(r.failed());
    EXPECT_FALSE(r.detail.empty());
  }
  // Faults on a key that was never stored are reported as such.
  EXPECT_FALSE(cache.inject_fault("never-stored",
                                  engine::DiskCache::Fault::Truncate));
  std::filesystem::remove_all(dir);
}

// A corrupt cache file must not poison the engine: the cell is recomputed
// (bit-identical to fresh) and the failure is surfaced in disk_errors
// rather than counted as an ordinary miss-with-no-file.
TEST(EngineDisk, CorruptFileRecomputesAndCountsDiskError) {
  const auto dir = std::filesystem::temp_directory_path() /
                   "cubie_engine_disk_corrupt";
  std::filesystem::remove_all(dir);
  engine::EngineOptions opts;
  opts.cache_dir = dir.string();

  engine::ExperimentEngine first(opts);
  const auto* w = first.workload("Scan");
  ASSERT_NE(w, nullptr);
  const auto tc = w->cases(64)[w->representative_case()];
  first.run(*w, core::Variant::TC, tc, 64);
  const auto key = engine::cell_key("Scan", core::Variant::TC, tc, 64);

  engine::DiskCache cache(dir.string());
  ASSERT_TRUE(cache.inject_fault(key, engine::DiskCache::Fault::CorruptJson));

  engine::ExperimentEngine second(opts);
  const auto* w2 = second.workload("Scan");
  const auto& out = second.run(*w2, core::Variant::TC, tc, 64);
  expect_identical(out, w2->run(core::Variant::TC, tc));
  const auto c = second.counters();
  EXPECT_EQ(c.disk_hits, 0u);
  EXPECT_EQ(c.misses, 1u);
  EXPECT_EQ(c.disk_errors, 1u);
  std::filesystem::remove_all(dir);
}

TEST(EngineDisk, SecondEngineServesFromDisk) {
  const auto dir = std::filesystem::temp_directory_path() /
                   "cubie_engine_disk_test2";
  std::filesystem::remove_all(dir);
  engine::EngineOptions opts;
  opts.cache_dir = dir.string();

  const auto plan = engine::Plan::representative(64).with_workloads({"Scan"});
  engine::ExperimentEngine first(opts);
  const std::size_t cells = first.execute(plan);
  EXPECT_GT(cells, 0u);
  EXPECT_EQ(first.counters().misses, cells);

  engine::ExperimentEngine second(opts);
  EXPECT_EQ(second.execute(plan), cells);
  const auto c = second.counters();
  EXPECT_EQ(c.misses, 0u);
  EXPECT_EQ(c.disk_hits, cells);

  // Disk-served outputs must be bit-identical to freshly computed ones.
  const auto* w = second.workload("Scan");
  const auto tc = w->cases(64)[w->representative_case()];
  for (auto v : core::available_variants(*w))
    expect_identical(second.run(*w, v, tc, 64), w->run(v, tc));
  std::filesystem::remove_all(dir);
}

TEST(EnginePlan, ExpandDeduplicatesAndOrdersDeterministically) {
  engine::ExperimentEngine eng;
  auto plan = engine::Plan::representative(64).with_workloads(
      {"Scan", "scan", "GEMM"});
  const auto cells = eng.expand(plan);
  // "scan" duplicates "Scan"; every surviving cell is unique.
  std::set<std::string> keys;
  for (const auto& c : cells) keys.insert(c.key);
  EXPECT_EQ(keys.size(), cells.size());
  ASSERT_FALSE(cells.empty());
  EXPECT_EQ(cells.front().workload->name(), "Scan");

  const auto again = eng.expand(plan);
  ASSERT_EQ(again.size(), cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i)
    EXPECT_EQ(again[i].key, cells[i].key);
}

// The tentpole guarantee: a report produced with --jobs 4 is byte-identical
// to the serial one. Counters are deterministic; only the wall-clock fields
// may differ between schedules, so those are zeroed before comparison.
TEST(EngineJobs, ParallelReportMatchesSerialByteForByte) {
  auto build_report = [](int jobs) {
    engine::EngineOptions opts;
    opts.jobs = jobs;
    engine::ExperimentEngine eng(opts);
    auto plan = engine::Plan::representative(64).with_workloads(
        {"GEMM", "Scan", "SpMV", "BFS"});
    eng.execute(plan);

    report::MetricsReport rep;
    rep.tool = "test_engine";
    rep.title = "jobs determinism";
    rep.scale_divisor = 64;
    for (const auto& cell : eng.expand(plan)) {
      const auto& out =
          eng.run(*cell.workload, cell.variant, cell.test_case, cell.scale);
      for (auto g : sim::all_gpus()) {
        const sim::AnalyticModel model(sim::spec_for(g));
        const auto pred = model.predict(out.profile);
        auto& rec = rep.add_record(cell.workload->name(),
                                   core::variant_name(cell.variant),
                                   sim::gpu_name(g), cell.test_case.label);
        rec.set("time_ms", pred.time_s * 1e3);
        rec.set("energy_j", pred.energy_j);
        rec.set("checksum", out.values.empty() ? 0.0 : out.values.front());
      }
    }
    auto stats = eng.stats();
    stats.exec_wall_s = 0.0;      // the only schedule-dependent fields
    stats.max_cell_wall_s = 0.0;
    rep.engine = stats;
    return rep.to_json().dump(2);
  };

  const std::string serial = build_report(1);
  const std::string parallel = build_report(4);
  EXPECT_EQ(serial, parallel);
}

// A workload whose run() throws for a designated case label, for exercising
// the engine's exception capture. Caller-owned: never enters the registry.
class ThrowingWorkload final : public core::Workload {
 public:
  std::string name() const override { return "Throwing"; }
  core::Quadrant quadrant() const override { return core::Quadrant::I; }
  std::string dwarf() const override { return "test"; }
  std::string baseline_name() const override { return "-"; }
  bool has_baseline() const override { return false; }
  std::vector<core::TestCase> cases(int) const override {
    return {core::TestCase{"ok", {8}, ""}, core::TestCase{"boom", {8}, ""}};
  }
  core::RunOutput run(core::Variant, const core::TestCase& tc,
                      const core::RunOptions&) const override {
    if (tc.label == "boom") throw std::runtime_error("injected failure");
    core::RunOutput out;
    out.profile.useful_flops = 8.0;
    out.values = {1.0};
    return out;
  }
  std::vector<double> reference(const core::TestCase&) const override {
    return {1.0};
  }
};

// A Workload::run exception inside execute() must surface as EngineError
// naming the failed cell — on the thread-pool path it previously escaped a
// worker thread and hit std::terminate.
TEST(EngineExec, WorkerExceptionIsCapturedAndNamed) {
  const ThrowingWorkload w;
  const auto cases = w.cases(1);
  auto make_cell = [&](const core::TestCase& tc) {
    engine::Cell c;
    c.workload = &w;
    c.variant = core::Variant::TC;
    c.test_case = tc;
    c.scale = 1;
    c.key = engine::cell_key(w.name(), c.variant, tc, c.scale);
    return c;
  };

  for (int jobs : {1, 4}) {
    engine::EngineOptions opts;
    opts.jobs = jobs;
    engine::ExperimentEngine eng(opts);
    // Several healthy cells around the single failing one so the pool has
    // queued work to drain after the exception.
    std::vector<engine::Cell> cells;
    cells.push_back(make_cell(cases[0]));
    cells.push_back(make_cell(cases[1]));  // the one that throws
    try {
      eng.execute(cells);
      FAIL() << "expected EngineError (jobs=" << jobs << ")";
    } catch (const engine::EngineError& e) {
      EXPECT_EQ(e.cell(), cells[1].key) << "jobs=" << jobs;
      EXPECT_NE(std::string(e.what()).find("injected failure"),
                std::string::npos);
    }
    // The engine must stay usable after a failed execute.
    const auto& out = eng.run(w, core::Variant::TC, cases[0], 1);
    EXPECT_EQ(out.values, std::vector<double>{1.0});
  }
}

// run_traced on an already-memoized cell really re-executes (spans must be
// recorded) but is counted as a traced re-run, not a miss — `cubie profile`
// on a warm cache must not inflate the miss counter.
TEST(EngineMemo, TracedRerunsAreCountedSeparately) {
  engine::ExperimentEngine eng;
  const auto* w = eng.workload("Scan");
  ASSERT_NE(w, nullptr);
  const auto tc = w->cases(64)[w->representative_case()];

  const auto& plain = eng.run(*w, core::Variant::TC, tc, 64);
  sim::Tracer tracer;
  const auto& traced = eng.run_traced(*w, core::Variant::TC, tc, 64, tracer);
  expect_identical(plain, traced);
  EXPECT_FALSE(tracer.roots().empty());  // the re-run really happened

  const auto c = eng.counters();
  EXPECT_EQ(c.misses, 1u);
  EXPECT_EQ(c.traced_reruns, 1u);
  EXPECT_EQ(c.disk_hits, 0u);

  // A traced *first* execution is an ordinary miss, not a traced re-run.
  engine::ExperimentEngine fresh;
  sim::Tracer t2;
  fresh.run_traced(*fresh.workload("Scan"), core::Variant::TC, tc, 64, t2);
  EXPECT_EQ(fresh.counters().misses, 1u);
  EXPECT_EQ(fresh.counters().traced_reruns, 0u);
}

TEST(EngineStats, ExportedBlockRoundTrips) {
  engine::ExperimentEngine eng;
  const auto* w = eng.workload("BFS");
  const auto tc = w->cases(64)[w->representative_case()];
  eng.run(*w, core::Variant::TC, tc, 64);
  eng.run(*w, core::Variant::TC, tc, 64);
  sim::Tracer tracer;
  eng.run_traced(*w, core::Variant::TC, tc, 64, tracer);

  report::MetricsReport rep;
  rep.tool = "test_engine";
  rep.engine = eng.stats();
  const auto j = rep.to_json();
  ASSERT_NE(j.find("engine"), nullptr);

  const auto back = report::MetricsReport::from_json(j);
  ASSERT_TRUE(back.has_value());
  ASSERT_TRUE(back->engine.has_value());
  EXPECT_EQ(back->engine->cells, 1.0);
  EXPECT_EQ(back->engine->misses, 1.0);
  EXPECT_EQ(back->engine->memo_hits, 1.0);
  EXPECT_EQ(back->engine->traced_reruns, 1.0);
  EXPECT_EQ(back->engine->disk_errors, 0.0);
}

}  // namespace
}  // namespace cubie
