// Cubie-Scope contracts: the telemetry event stream is a faithful,
// schedule-independent record of the work performed. Pinned here:
//   * a --jobs N run's stream is a permutation of the serial run's with
//     identical per-cell payloads;
//   * cell_finish counts by source equal the engine's aggregate counters;
//   * the JSONL log is byte-stable across serial reruns once wall-clock
//     fields are masked, and every line round-trips through report::Json;
//   * the Chrome trace is valid JSON with non-overlapping per-lane cell
//     slices and nested span slices;
//   * cache load/store events carry the typed CacheStatus outcome;
//   * the bench history store round-trips and `trend` judges regressions
//     direction-aware.

#include "engine/cache.hpp"
#include "engine/engine.hpp"
#include "engine/plan.hpp"
#include "telemetry/history.hpp"
#include "telemetry/sinks.hpp"
#include "telemetry/telemetry.hpp"

#include "common/report.hpp"
#include "core/kernels.hpp"
#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <functional>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace cubie {
namespace {

engine::Plan small_plan() {
  return engine::Plan::representative(64).with_workloads({"Scan", "Reduction"});
}

// Capture every event of `body` through a MemorySink on the global bus.
std::vector<telemetry::Event> capture(const std::function<void()>& body) {
  auto sink = std::make_shared<telemetry::MemorySink>();
  telemetry::bus().reset_clock();
  telemetry::bus().add_sink(sink);
  body();
  std::vector<telemetry::Event> events = sink->events();
  telemetry::bus().remove_sink(sink.get());
  return events;
}

std::vector<std::string> payloads(const std::vector<telemetry::Event>& evs) {
  std::vector<std::string> p;
  p.reserve(evs.size());
  for (const auto& e : evs) p.push_back(telemetry::event_payload(e));
  return p;
}

TEST(TelemetryBus, DisabledWithoutSinksAndStampsInOrder) {
  EXPECT_FALSE(telemetry::bus().enabled());
  const auto evs = capture([] {
    EXPECT_TRUE(telemetry::bus().enabled());
    for (int i = 0; i < 3; ++i) {
      telemetry::Event e;
      e.kind = telemetry::EventKind::SpanOpen;
      e.name = "s" + std::to_string(i);
      telemetry::bus().emit(std::move(e));
    }
  });
  EXPECT_FALSE(telemetry::bus().enabled());
  ASSERT_EQ(evs.size(), 3u);
  for (std::size_t i = 0; i < evs.size(); ++i) {
    EXPECT_EQ(evs[i].seq, i + 1);  // reset_clock restarted the sequence
    EXPECT_EQ(evs[i].tid, 0);      // single-threaded: the first (main) lane
    EXPECT_GE(evs[i].t_s, 0.0);
  }
}

TEST(TelemetryEngine, ParallelStreamIsPermutationOfSerial) {
  const auto plan = small_plan();
  const auto serial = capture([&] {
    engine::ExperimentEngine eng;
    eng.execute(plan);
  });
  engine::EngineOptions opt;
  opt.jobs = 4;
  const auto parallel = capture([&] {
    engine::ExperimentEngine eng(opt);
    eng.execute(plan);
  });

  // Serial runs entirely on the main lane; both streams carry the same
  // events up to reordering, with identical deterministic payloads
  // (including the modeled time of every cell).
  for (const auto& e : serial) EXPECT_EQ(e.tid, 0);
  auto ps = payloads(serial);
  auto pp = payloads(parallel);
  ASSERT_EQ(ps.size(), pp.size());
  std::sort(ps.begin(), ps.end());
  std::sort(pp.begin(), pp.end());
  EXPECT_EQ(ps, pp);

  // Global sequence order is contiguous in both schedules.
  for (std::size_t i = 0; i < parallel.size(); ++i)
    EXPECT_EQ(parallel[i].seq, i + 1);
}

TEST(TelemetryEngine, FinishCountsMatchEngineCounters) {
  const auto dir = (std::filesystem::temp_directory_path() /
                    "cubie_telemetry_counts")
                       .string();
  std::filesystem::remove_all(dir);
  const auto plan = small_plan();

  auto count_sources = [](const std::vector<telemetry::Event>& evs) {
    std::map<std::string, std::size_t> n;
    for (const auto& e : evs)
      if (e.kind == telemetry::EventKind::CellFinish) ++n[e.source];
    return n;
  };

  // Fresh compute, then a memoized re-execute, in one engine.
  engine::EngineOptions opt;
  opt.cache_dir = dir;
  {
    engine::ExperimentEngine eng(opt);
    const auto evs = capture([&] {
      eng.execute(plan);
      eng.execute(plan);
    });
    const auto n = count_sources(evs);
    const auto c = eng.counters();
    EXPECT_GT(c.misses, 0u);
    EXPECT_GT(c.memo_hits, 0u);
    EXPECT_EQ(n.count("disk") ? n.at("disk") : 0u, c.disk_hits);
    EXPECT_EQ(n.at("compute"), c.misses + c.traced_reruns);
    EXPECT_EQ(n.at("memo"), c.memo_hits);
    EXPECT_EQ(n.count("coalesced") ? n.at("coalesced") : 0u,
              c.coalesced_hits);
    std::size_t total = 0;
    for (const auto& [src, k] : n) total += k;
    EXPECT_EQ(total, c.misses + c.traced_reruns + c.memo_hits + c.disk_hits +
                         c.coalesced_hits);
  }

  // A second engine over the same cache dir serves every cell from disk.
  {
    engine::ExperimentEngine eng(opt);
    const auto evs = capture([&] { eng.execute(plan); });
    const auto n = count_sources(evs);
    const auto c = eng.counters();
    EXPECT_GT(c.disk_hits, 0u);
    EXPECT_EQ(c.misses, 0u);
    EXPECT_EQ(n.at("disk"), c.disk_hits);
    EXPECT_EQ(n.count("compute") ? n.at("compute") : 0u, 0u);
    // Every disk hit was observed as a typed cache_load hit event too.
    std::size_t load_hits = 0;
    for (const auto& e : evs)
      if (e.kind == telemetry::EventKind::CacheLoad && e.status == "hit")
        ++load_hits;
    EXPECT_EQ(load_hits, c.disk_hits);
  }
  std::filesystem::remove_all(dir);
}

TEST(TelemetryEngine, EveryStartHasOneFinish) {
  const auto evs = capture([&] {
    engine::ExperimentEngine eng;
    eng.execute(small_plan());
  });
  std::map<std::string, int> open;
  std::size_t starts = 0, finishes = 0;
  for (const auto& e : evs) {
    if (e.kind == telemetry::EventKind::CellStart) {
      ++open[e.name];
      ++starts;
    } else if (e.kind == telemetry::EventKind::CellFinish) {
      --open[e.name];
      ++finishes;
      EXPECT_GE(e.wall_s, 0.0);
      EXPECT_GE(e.modeled_s, 0.0);
    }
  }
  EXPECT_GT(starts, 0u);
  EXPECT_EQ(starts, finishes);
  for (const auto& [key, n] : open) EXPECT_EQ(n, 0) << key;
}

// Run `plan` serially with a JsonlSink and return the file's lines.
std::vector<std::string> jsonl_lines_for(const engine::Plan& plan,
                                         const std::string& path) {
  {
    telemetry::bus().reset_clock();
    auto sink = std::make_shared<telemetry::JsonlSink>(path, "test");
    EXPECT_TRUE(sink->ok());
    telemetry::bus().add_sink(sink);
    engine::ExperimentEngine eng;
    eng.execute(plan);
    telemetry::bus().remove_sink(sink.get());
  }
  std::ifstream is(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(is, line)) lines.push_back(line);
  return lines;
}

// Mask the wall-clock fields (t_s, wall_s) of one JSONL line via the
// in-repo parser, leaving everything else byte-exact.
std::string mask_wall_clock(const std::string& line) {
  std::string err;
  auto j = report::Json::parse(line, &err);
  EXPECT_TRUE(j) << err;
  if (!j) return line;
  if (j->find("t_s") != nullptr) (*j)["t_s"] = report::Json::number(0.0);
  if (j->find("wall_s") != nullptr)
    (*j)["wall_s"] = report::Json::number(0.0);
  return j->dump(-1);
}

TEST(TelemetryJsonl, ByteStableAcrossSerialRerunsOnceClockMasked) {
  const auto base =
      (std::filesystem::temp_directory_path() / "cubie_events").string();
  const auto plan = small_plan();
  auto a = jsonl_lines_for(plan, base + "_a.jsonl");
  auto b = jsonl_lines_for(plan, base + "_b.jsonl");
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  // Header line carries the schema version and is fully deterministic.
  EXPECT_EQ(a[0], b[0]);
  EXPECT_NE(a[0].find("\"cubie-events\""), std::string::npos);
  EXPECT_NE(a[0].find("\"schema_version\":1"), std::string::npos);
  for (std::size_t i = 1; i < a.size(); ++i)
    EXPECT_EQ(mask_wall_clock(a[i]), mask_wall_clock(b[i])) << "line " << i;
  std::remove((base + "_a.jsonl").c_str());
  std::remove((base + "_b.jsonl").c_str());
}

TEST(TelemetryJsonl, EveryLineRoundTripsThroughParser) {
  const auto path =
      (std::filesystem::temp_directory_path() / "cubie_events_rt.jsonl")
          .string();
  const auto lines = jsonl_lines_for(small_plan(), path);
  ASSERT_GT(lines.size(), 1u);
  for (const auto& line : lines) {
    std::string err;
    const auto j = report::Json::parse(line, &err);
    ASSERT_TRUE(j) << err << ": " << line;
    ASSERT_TRUE(j->is_object());
    const auto* kind = j->find("kind");
    ASSERT_NE(kind, nullptr);
    EXPECT_TRUE(kind->is_string());
    // Re-dumping the parsed object reproduces the line: the sink emits
    // exactly the writer's compact form.
    EXPECT_EQ(j->dump(-1), line);
  }
  std::remove(path.c_str());
}

TEST(TelemetryTrace, ChromeTraceIsValidWithDisjointCellLanes) {
  const auto path =
      (std::filesystem::temp_directory_path() / "cubie_trace.json").string();
  {
    telemetry::bus().reset_clock();
    auto sink = std::make_shared<telemetry::ChromeTraceSink>(path);
    telemetry::bus().add_sink(sink);
    engine::EngineOptions opt;
    opt.jobs = 4;
    engine::ExperimentEngine eng(opt);
    eng.execute(small_plan());
    // One traced rerun so the timeline carries nested span slices.
    const auto* w = eng.workload("Scan");
    ASSERT_NE(w, nullptr);
    sim::Tracer tracer;
    eng.run_traced(*w, core::Variant::TC, w->cases(64)[0], 64, tracer);
    telemetry::bus().remove_sink(sink.get());
  }

  std::ifstream is(path);
  std::stringstream ss;
  ss << is.rdbuf();
  std::string err;
  const auto j = report::Json::parse(ss.str(), &err);
  ASSERT_TRUE(j) << err;
  const auto* evs = j->find("traceEvents");
  ASSERT_NE(evs, nullptr);
  ASSERT_TRUE(evs->is_array());

  std::map<int, std::vector<std::pair<double, double>>> cell_lanes;
  std::size_t spans = 0, metas = 0;
  for (std::size_t i = 0; i < evs->size(); ++i) {
    const auto& e = evs->at(i);
    ASSERT_TRUE(e.is_object());
    const auto* ph = e.find("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->as_string() == "M") {
      ++metas;
      continue;
    }
    if (ph->as_string() != "X") continue;
    const double ts = e.find("ts")->as_number();
    const double dur = e.find("dur")->as_number();
    EXPECT_GE(dur, 0.0);
    const int tid = static_cast<int>(e.find("tid")->as_number());
    const std::string cat = e.find("cat")->as_string();
    if (cat == "cell") {
      cell_lanes[tid].emplace_back(ts, ts + dur);
    } else {
      EXPECT_EQ(cat, "span");
      ++spans;
    }
  }
  EXPECT_GT(spans, 0u);
  EXPECT_GE(metas, 2u);  // process_name + at least one thread_name
  ASSERT_FALSE(cell_lanes.empty());
  // Cells in one lane never overlap: each worker thread runs serially.
  for (auto& [tid, iv] : cell_lanes) {
    std::sort(iv.begin(), iv.end());
    for (std::size_t i = 1; i < iv.size(); ++i)
      EXPECT_LE(iv[i - 1].second, iv[i].first) << "lane " << tid;
  }
  std::remove(path.c_str());
}

// A caller-owned workload whose run() throws for one case label, mirroring
// tests/test_engine.cpp's EngineError coverage.
class ThrowingWorkload final : public core::Workload {
 public:
  std::string name() const override { return "Throwing"; }
  core::Quadrant quadrant() const override { return core::Quadrant::I; }
  std::string dwarf() const override { return "test"; }
  std::string baseline_name() const override { return "-"; }
  bool has_baseline() const override { return false; }
  std::vector<core::TestCase> cases(int) const override {
    return {core::TestCase{"ok", {8}, ""}, core::TestCase{"boom", {8}, ""}};
  }
  core::RunOutput run(core::Variant, const core::TestCase& tc,
                      const core::RunOptions&) const override {
    if (tc.label == "boom") throw std::runtime_error("injected failure");
    core::RunOutput out;
    out.profile.useful_flops = 8.0;
    out.values = {1.0};
    return out;
  }
  std::vector<double> reference(const core::TestCase&) const override {
    return {1.0};
  }
};

// A sink that records how often it was flushed.
class FlushCountingSink final : public telemetry::Sink {
 public:
  void on_event(const telemetry::Event& e) override { events.push_back(e); }
  void flush() override { ++flushes; }
  std::vector<telemetry::Event> events;
  int flushes = 0;
};

TEST(TelemetryEngine, SinksFlushOnEngineErrorUnwind) {
  const ThrowingWorkload w;
  const auto cases = w.cases(1);
  auto make_cell = [&](const core::TestCase& tc) {
    engine::Cell c;
    c.workload = &w;
    c.variant = core::Variant::TC;
    c.test_case = tc;
    c.scale = 1;
    c.key = engine::cell_key(w.name(), c.variant, tc, c.scale);
    return c;
  };
  for (int jobs : {1, 4}) {
    auto sink = std::make_shared<FlushCountingSink>();
    telemetry::bus().reset_clock();
    telemetry::bus().add_sink(sink);
    engine::EngineOptions opt;
    opt.jobs = jobs;
    engine::ExperimentEngine eng(opt);
    std::vector<engine::Cell> cells = {make_cell(cases[0]),
                                       make_cell(cases[1])};
    EXPECT_THROW(eng.execute(cells), engine::EngineError) << "jobs=" << jobs;
    // The unwind path flushed every installed sink before rethrowing, so
    // a failed run still leaves complete, usable sink output.
    EXPECT_GE(sink->flushes, 1) << "jobs=" << jobs;
    EXPECT_FALSE(sink->events.empty());
    telemetry::bus().remove_sink(sink.get());
  }
}

TEST(TelemetryCache, LoadAndStoreEventsCarryTypedStatus) {
  const auto dir =
      (std::filesystem::temp_directory_path() / "cubie_telemetry_cache")
          .string();
  std::filesystem::remove_all(dir);
  engine::DiskCache cache(dir);
  core::RunOutput out;
  out.values = {1.0, 2.0};

  const auto evs = capture([&] {
    EXPECT_EQ(cache.load("cell-a").status, engine::CacheStatus::Miss);
    EXPECT_TRUE(cache.store("cell-a", out).ok());
    EXPECT_TRUE(cache.load("cell-a").hit());
    ASSERT_TRUE(cache.inject_fault("cell-a", engine::DiskCache::Fault::CorruptJson));
    EXPECT_EQ(cache.load("cell-a").status, engine::CacheStatus::ParseError);
  });

  std::vector<std::pair<std::string, std::string>> got;
  for (const auto& e : evs)
    got.emplace_back(telemetry::event_kind_name(e.kind), e.status);
  const std::vector<std::pair<std::string, std::string>> want = {
      {"cache_load", "miss"},
      {"cache_store", "stored"},
      {"cache_load", "hit"},
      {"cache_load", "parse-error"},
  };
  EXPECT_EQ(got, want);
  for (const auto& e : evs) EXPECT_EQ(e.name, "cell-a");

  // A disabled cache stays silent (status Disabled is not an outcome).
  engine::DiskCache off("");
  const auto quiet = capture([&] {
    EXPECT_EQ(off.load("cell-a").status, engine::CacheStatus::Disabled);
  });
  EXPECT_TRUE(quiet.empty());
  std::filesystem::remove_all(dir);
}

TEST(TelemetryPayload, ExcludesScheduleStampsIncludesModeledTime) {
  telemetry::Event a;
  a.kind = telemetry::EventKind::CellFinish;
  a.name = "k";
  a.source = "compute";
  a.modeled_s = 0.25;
  telemetry::Event b = a;
  b.seq = 99;
  b.tid = 3;
  b.t_s = 123.0;
  b.wall_s = 7.0;
  EXPECT_EQ(telemetry::event_payload(a), telemetry::event_payload(b));
  b.modeled_s = 0.5;
  EXPECT_NE(telemetry::event_payload(a), telemetry::event_payload(b));
}

TEST(TelemetryProgress, RendersDoneTotalAndHitRate) {
  std::ostringstream os;
  telemetry::ProgressSink sink(os, "t", 2);
  telemetry::Event plan;
  plan.kind = telemetry::EventKind::PlanStart;
  plan.count = 2;
  plan.t_s = 0.0;
  sink.on_event(plan);
  telemetry::Event f;
  f.kind = telemetry::EventKind::CellFinish;
  f.source = "compute";
  f.wall_s = 0.5;
  f.t_s = 0.5;
  sink.on_event(f);
  f.source = "memo";
  f.t_s = 1.0;
  sink.on_event(f);
  // Post-plan memoized re-reads are not progress.
  f.t_s = 1.5;
  sink.on_event(f);
  sink.flush();
  const std::string text = os.str();
  EXPECT_NE(text.find("2/2 cells"), std::string::npos);
  EXPECT_NE(text.find("50% hits"), std::string::npos);
  EXPECT_EQ(text.find("3/2"), std::string::npos);
  EXPECT_EQ(text.back(), '\n');
}

TEST(TraceNodeJson, PeakRssOmittedWhenUnknown) {
  sim::TraceNode n;
  n.name = "root";
  n.wall_s = 0.5;
  n.peak_rss_kb = 0;  // platform could not measure
  const auto absent = report::to_json(n).dump(-1);
  EXPECT_EQ(absent.find("peak_rss_kb"), std::string::npos);
  n.peak_rss_kb = 2048;
  const auto present = report::to_json(n).dump(-1);
  EXPECT_NE(present.find("\"peak_rss_kb\":2048"), std::string::npos);
}

TEST(ReportMetrics, LowerIsBetterDirectionTable) {
  EXPECT_TRUE(report::lower_is_better("time_ms"));
  EXPECT_TRUE(report::lower_is_better("energy_j"));
  EXPECT_TRUE(report::lower_is_better("max_err"));
  EXPECT_TRUE(report::lower_is_better("host_wall_ms"));
  EXPECT_TRUE(report::lower_is_better("fp16_tc_ms"));
  EXPECT_FALSE(report::lower_is_better("gflops"));
  EXPECT_FALSE(report::lower_is_better("speedup"));
  EXPECT_FALSE(report::lower_is_better("gteps"));
}

report::MetricsReport history_report(double time_ms, double gflops) {
  report::MetricsReport rep;
  rep.tool = "fig_test";
  rep.title = "history test";
  rep.scale_divisor = 16;
  auto& a = rep.add_record("GEMM", "TC", "H200", "c0");
  a.set("time_ms", time_ms);
  a.set("gflops", gflops);
  auto& b = rep.add_record("GEMM", "TC", "H200", "c1");
  b.set("time_ms", time_ms);
  b.set("gflops", gflops);
  return rep;
}

TEST(TelemetryHistory, SummarizeAppendLoadRoundTrip) {
  const auto path =
      (std::filesystem::temp_directory_path() / "cubie_history.jsonl")
          .string();
  std::remove(path.c_str());
  const auto e1 =
      telemetry::summarize(history_report(2.0, 100.0), "sha-one");
  EXPECT_EQ(e1.tool, "fig_test");
  EXPECT_EQ(e1.scale, 16);
  EXPECT_EQ(e1.records, 2u);
  ASSERT_NE(e1.get("time_ms"), nullptr);
  EXPECT_DOUBLE_EQ(*e1.get("time_ms"), 2.0);

  std::string err;
  ASSERT_TRUE(telemetry::append_entry(path, e1, &err)) << err;
  ASSERT_TRUE(telemetry::append_entry(
      path, telemetry::summarize(history_report(2.2, 98.0), "sha-two"),
      &err))
      << err;
  const auto loaded = telemetry::load_history(path, &err);
  ASSERT_TRUE(loaded) << err;
  ASSERT_EQ(loaded->size(), 2u);
  EXPECT_EQ((*loaded)[0].sha, "sha-one");
  EXPECT_EQ((*loaded)[1].sha, "sha-two");
  ASSERT_NE((*loaded)[1].get("gflops"), nullptr);
  EXPECT_DOUBLE_EQ(*(*loaded)[1].get("gflops"), 98.0);
  std::remove(path.c_str());
}

std::vector<telemetry::HistoryEntry> history_with_latest(double time_ms,
                                                         double gflops) {
  std::vector<telemetry::HistoryEntry> entries;
  for (int i = 0; i < 3; ++i)
    entries.push_back(telemetry::summarize(
        history_report(1.0 + 0.01 * i, 100.0 - i), "prior"));
  entries.push_back(
      telemetry::summarize(history_report(time_ms, gflops), "latest"));
  return entries;
}

TEST(TelemetryTrend, FlagsDirectionAwareRegressions) {
  // Slower time (lower-is-better) regresses; faster does not.
  auto rep = telemetry::trend(history_with_latest(1.3, 99.0), 0.10);
  EXPECT_EQ(rep.prior, 3u);
  EXPECT_FALSE(rep.pass());
  bool time_flagged = false;
  for (const auto& d : rep.deltas) {
    if (d.metric == "time_ms") {
      time_flagged = d.regression;
      EXPECT_GT(d.worse, 0.10);
    }
    if (d.metric == "gflops") EXPECT_FALSE(d.regression);
  }
  EXPECT_TRUE(time_flagged);

  // Lower throughput (higher-is-better) regresses.
  rep = telemetry::trend(history_with_latest(1.0, 80.0), 0.10);
  EXPECT_FALSE(rep.pass());

  // Within tolerance: no regression either way.
  rep = telemetry::trend(history_with_latest(1.05, 97.0), 0.10);
  EXPECT_TRUE(rep.pass());
  EXPECT_FALSE(rep.deltas.empty());

  // Improvements never fail, however large.
  rep = telemetry::trend(history_with_latest(0.2, 500.0), 0.10);
  EXPECT_TRUE(rep.pass());

  // --metric restricts the judgement.
  rep = telemetry::trend(history_with_latest(1.3, 80.0), 0.10, "gflops");
  ASSERT_EQ(rep.deltas.size(), 1u);
  EXPECT_EQ(rep.deltas[0].metric, "gflops");
}

TEST(TelemetryTrend, NoPriorsMeansNothingToJudge) {
  std::vector<telemetry::HistoryEntry> entries = {
      telemetry::summarize(history_report(1.0, 100.0), "only")};
  const auto rep = telemetry::trend(entries, 0.10);
  EXPECT_EQ(rep.prior, 0u);
  EXPECT_TRUE(rep.deltas.empty());
  EXPECT_TRUE(rep.pass());

  // A different tool's history does not judge this one.
  auto other = telemetry::summarize(history_report(10.0, 1.0), "other");
  other.tool = "other_tool";
  entries.insert(entries.begin(), other);
  const auto rep2 = telemetry::trend(entries, 0.10);
  EXPECT_EQ(rep2.prior, 0u);
  EXPECT_TRUE(rep2.pass());
}

}  // namespace
}  // namespace cubie
