// Cubie-Serve contracts, pinned end to end:
//   * engine single-flight coalescing: K concurrent requests for the same
//     un-memoized cell perform exactly one Workload::run — one miss, K-1
//     coalesced_hits — and a throwing leader promotes a waiter instead of
//     stranding it;
//   * the wire protocol parses strictly (typed bad_request messages) and
//     round-trips its own request encoding;
//   * a served "run" response is byte-identical to serve::run_report on a
//     fresh local engine (the `cubie run --json` path);
//   * bounded-queue admission rejects with "overloaded", expired deadlines
//     reject with "deadline_exceeded" at dequeue, and a drain completes
//     in-flight work before serve() returns;
//   * the request lifecycle is published on the telemetry bus;
//   * the load generator's percentile reduction and MetricsReport shape.

#include "engine/engine.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "telemetry/flight.hpp"
#include "telemetry/metrics_registry.hpp"
#include "telemetry/sinks.hpp"
#include "telemetry/slowlog.hpp"
#include "telemetry/telemetry.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace cubie {
namespace {

using namespace std::chrono_literals;

// A workload whose run() blocks until released, so tests can hold a cell
// in flight while other threads pile onto it.
class BlockingWorkload : public core::Workload {
 public:
  std::string name() const override { return "Blocking"; }
  core::Quadrant quadrant() const override { return core::Quadrant::I; }
  std::string dwarf() const override { return "test"; }
  std::string baseline_name() const override { return "-"; }
  std::vector<core::TestCase> cases(int) const override {
    return {core::TestCase{"blk", {4}, ""}};
  }
  std::size_t representative_case() const override { return 0; }
  std::vector<double> reference(const core::TestCase&) const override {
    return {1.0};
  }

  core::RunOutput run(core::Variant, const core::TestCase&,
                      const core::RunOptions&) const override {
    const int n = runs.fetch_add(1);
    if (n == 0) entered.set_value();
    release.wait();
    if (throw_first && n == 0) throw std::runtime_error("leader failed");
    core::RunOutput out;
    out.profile.useful_flops = 1.0;
    out.values = {1.0};
    return out;
  }

  mutable std::atomic<int> runs{0};
  mutable std::promise<void> entered;
  std::shared_future<void> release;
  bool throw_first = false;
};

TEST(ServeCoalescing, KConcurrentRequestsOneComputeKMinus1Coalesced) {
  BlockingWorkload w;
  std::promise<void> release;
  w.release = release.get_future().share();
  engine::ExperimentEngine eng;
  const auto tc = w.cases(1)[0];

  constexpr int kThreads = 6;
  std::atomic<int> arrived{0};
  std::vector<const core::RunOutput*> results(kThreads, nullptr);
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      arrived.fetch_add(1);
      results[static_cast<std::size_t>(i)] =
          &eng.run(w, core::Variant::TC, tc, 1);
    });
  }
  // The leader is inside run(); wait for every other thread to reach the
  // engine, give them time to park on the in-flight wait, then release.
  w.entered.get_future().wait();
  while (arrived.load() < kThreads) std::this_thread::sleep_for(1ms);
  std::this_thread::sleep_for(250ms);
  release.set_value();
  for (auto& t : threads) t.join();

  EXPECT_EQ(w.runs.load(), 1);  // exactly one Workload::run
  const auto c = eng.counters();
  EXPECT_EQ(c.misses, 1u);
  EXPECT_EQ(c.coalesced_hits, static_cast<std::size_t>(kThreads - 1));
  EXPECT_EQ(c.memo_hits, 0u);
  for (const auto* r : results) {
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r, results[0]);  // all served the same memoized cell
  }
  // The exported stats block carries the counter.
  EXPECT_EQ(eng.stats().coalesced_hits,
            static_cast<double>(kThreads - 1));
}

TEST(ServeCoalescing, ThrowingLeaderPromotesAWaiter) {
  BlockingWorkload w;
  w.throw_first = true;
  std::promise<void> release;
  w.release = release.get_future().share();
  engine::ExperimentEngine eng;
  const auto tc = w.cases(1)[0];

  std::atomic<int> exceptions{0};
  const core::RunOutput* ok_result = nullptr;
  std::thread leader([&] {
    try {
      eng.run(w, core::Variant::TC, tc, 1);
    } catch (const std::exception&) {
      exceptions.fetch_add(1);
    }
  });
  w.entered.get_future().wait();
  std::thread waiter([&] {
    try {
      ok_result = &eng.run(w, core::Variant::TC, tc, 1);
    } catch (const std::exception&) {
      exceptions.fetch_add(1);
    }
  });
  std::this_thread::sleep_for(100ms);  // park the waiter on the cv
  release.set_value();
  leader.join();
  waiter.join();

  // The leader threw; the waiter was promoted and re-ran rather than being
  // stranded or served a failure.
  EXPECT_EQ(exceptions.load(), 1);
  EXPECT_EQ(w.runs.load(), 2);
  ASSERT_NE(ok_result, nullptr);
  EXPECT_EQ(ok_result->values, std::vector<double>{1.0});
  const auto c = eng.counters();
  EXPECT_EQ(c.misses, 1u);  // the failed attempt is not a miss
  EXPECT_EQ(c.coalesced_hits, 0u);
}

// ---------------------------------------------------------------------------
// Protocol.

TEST(ServeProtocol, ParseRejectsBadRequestsWithNamedFields) {
  std::string err;
  EXPECT_FALSE(serve::parse_request("{nope", &err));
  EXPECT_NE(err.find("malformed JSON"), std::string::npos);
  EXPECT_FALSE(serve::parse_request("[1,2]", &err));
  EXPECT_NE(err.find("must be a JSON object"), std::string::npos);
  EXPECT_FALSE(serve::parse_request("{\"id\":\"x\"}", &err));
  EXPECT_NE(err.find("'cmd'"), std::string::npos);
  EXPECT_FALSE(serve::parse_request("{\"cmd\":\"launch\"}", &err));
  EXPECT_NE(err.find("launch"), std::string::npos);
  EXPECT_FALSE(serve::parse_request("{\"cmd\":\"run\"}", &err));
  EXPECT_NE(err.find("workload"), std::string::npos);
}

TEST(ServeProtocol, RequestRoundTripsThroughItsWireForm) {
  serve::Request r;
  r.id = "r42";
  r.cmd = serve::Cmd::Run;
  r.spec.workload = "GEMM";
  r.spec.variant = "TC";
  r.spec.case_sel = "1";
  r.spec.gpu = "B200";
  r.spec.scale = 8;
  r.spec.errors = true;
  r.spec.check = true;
  r.deadline_ms = 125.0;
  std::string err;
  const auto back =
      serve::parse_request(serve::request_to_json(r).dump(-1), &err);
  ASSERT_TRUE(back) << err;
  EXPECT_EQ(back->id, r.id);
  EXPECT_EQ(back->cmd, serve::Cmd::Run);
  EXPECT_EQ(back->spec.workload, "GEMM");
  EXPECT_EQ(back->spec.variant, "TC");
  EXPECT_EQ(back->spec.case_sel, "1");
  EXPECT_EQ(back->spec.gpu, "B200");
  EXPECT_EQ(back->spec.scale, 8);
  EXPECT_TRUE(back->spec.errors);
  EXPECT_TRUE(back->spec.check);
  EXPECT_EQ(back->deadline_ms, 125.0);
  EXPECT_EQ(serve::request_key(*back), "run GEMM/TC/1/B200/s8");
}

TEST(ServeProtocol, ErrorLineCarriesTypedCode) {
  const auto j =
      report::Json::parse(serve::error_line("r1", serve::ErrorCode::Overloaded,
                                            "queue full"));
  ASSERT_TRUE(j);
  EXPECT_FALSE(j->find("ok")->as_bool());
  EXPECT_EQ(j->find("error")->find("code")->as_string(), "overloaded");
  EXPECT_EQ(j->find("error")->find("message")->as_string(), "queue full");
  EXPECT_EQ(std::string(serve::error_code_name(
                serve::ErrorCode::DeadlineExceeded)),
            "deadline_exceeded");
}

// ---------------------------------------------------------------------------
// Service layer: the report `cubie run --json` and the daemon share.

TEST(ServeService, RunReportIsDeterministicAcrossEngines) {
  serve::RunSpec spec;
  spec.workload = "GEMM";
  spec.scale = 64;
  std::string err;
  engine::ExperimentEngine eng1, eng2;
  const auto a = serve::run_report(eng1, spec, &err);
  const auto b = serve::run_report(eng2, spec, &err);
  ASSERT_TRUE(a);
  ASSERT_TRUE(b);
  EXPECT_EQ(a->to_json().dump(2), b->to_json().dump(2));
  EXPECT_EQ(a->tool, "cubie_run");
  EXPECT_FALSE(a->engine.has_value());  // byte-identity: no producer block
  ASSERT_FALSE(a->records.empty());
  EXPECT_NE(a->records[0].get("gflops"), nullptr);
  EXPECT_NE(a->records[0].get("time_ms"), nullptr);
}

TEST(ServeService, RunReportRejectsUnknownSelectors) {
  engine::ExperimentEngine eng;
  std::string err;
  serve::RunSpec spec;
  spec.workload = "NotAWorkload";
  EXPECT_FALSE(serve::run_report(eng, spec, &err));
  EXPECT_NE(err.find("unknown workload"), std::string::npos);
  spec.workload = "GEMM";
  spec.variant = "XXL";
  EXPECT_FALSE(serve::run_report(eng, spec, &err));
  EXPECT_NE(err.find("variant"), std::string::npos);
  spec.variant = "all";
  spec.case_sel = "99";
  EXPECT_FALSE(serve::run_report(eng, spec, &err));
  EXPECT_NE(err.find("out of range"), std::string::npos);
  spec.case_sel = "rep";
  spec.gpu = "V100";
  EXPECT_FALSE(serve::run_report(eng, spec, &err));
  EXPECT_NE(err.find("gpu"), std::string::npos);
  // All-or-nothing: nothing was executed along the way.
  EXPECT_FALSE(eng.active());
}

// ---------------------------------------------------------------------------
// Server: admission, deadlines, drain — over a real Unix socket.

struct LiveServer {
  explicit LiveServer(serve::ServerOptions opts)
      : server(std::move(opts)) {
    std::string err;
    if (!server.start(&err)) throw std::runtime_error(err);
    thread = std::thread([this] { server.serve(); });
  }
  ~LiveServer() {
    if (thread.joinable()) {
      server.request_shutdown();
      thread.join();
    }
  }
  void shutdown_and_join() {
    server.request_shutdown();
    thread.join();
  }

  serve::Server server;
  std::thread thread;
};

std::string temp_socket(const char* tag) {
  return (std::filesystem::temp_directory_path() /
          (std::string("cubie_serve_") + tag + ".sock"))
      .string();
}

serve::Request sleep_request(const std::string& id, double ms,
                             double deadline_ms = 0) {
  serve::Request r;
  r.id = id;
  r.cmd = serve::Cmd::Sleep;
  r.sleep_ms = ms;
  r.deadline_ms = deadline_ms;
  return r;
}

std::string error_code_of(const report::Json& resp) {
  const auto* e = resp.find("error");
  if (e == nullptr) return "";
  const auto* c = e->find("code");
  return c != nullptr && c->is_string() ? c->as_string() : "";
}

TEST(ServeServer, PingAndStatsOverUnixSocket) {
  serve::ServerOptions opts;
  opts.socket_path = temp_socket("ping");
  LiveServer live(opts);
  std::string err;
  auto client = serve::Client::connect({opts.socket_path, -1}, &err);
  ASSERT_TRUE(client) << err;
  serve::Request ping;
  ping.id = "p1";
  ping.cmd = serve::Cmd::Ping;
  const auto resp = client->call(ping, &err);
  ASSERT_TRUE(resp) << err;
  EXPECT_TRUE(resp->find("ok")->as_bool());
  EXPECT_EQ(resp->find("id")->as_string(), "p1");
  EXPECT_EQ(resp->find("protocol_version")->as_number(),
            serve::kProtocolVersion);

  serve::Request stats;
  stats.cmd = serve::Cmd::Stats;
  const auto st = client->call(stats, &err);
  ASSERT_TRUE(st) << err;
  EXPECT_NE(st->find("engine"), nullptr);
  EXPECT_NE(st->find("server"), nullptr);
  EXPECT_GE(st->find("server")->find("connections")->as_number(), 1.0);
}

TEST(ServeServer, MetricsScrapeIsValidExpositionAndReconciles) {
  serve::ServerOptions opts;
  opts.socket_path = temp_socket("metrics");
  LiveServer live(opts);
  std::string err;
  auto client = serve::Client::connect({opts.socket_path, -1}, &err);
  ASSERT_TRUE(client) << err;

  // An idle daemon already exposes the reconciliation series (at zero).
  serve::Request mreq;
  mreq.id = "m0";
  mreq.cmd = serve::Cmd::Metrics;
  auto resp = client->call(mreq, &err);
  ASSERT_TRUE(resp) << err;
  ASSERT_TRUE(resp->find("ok")->as_bool());
  ASSERT_NE(resp->find("metrics"), nullptr);
  EXPECT_EQ(resp->find("content_type")->as_string(),
            "text/plain; version=0.0.4");
  auto exp0 =
      telemetry::parse_prometheus_text(resp->find("metrics")->as_string(), &err);
  ASSERT_TRUE(exp0) << err;
  EXPECT_EQ(exp0->value_or("cubie_requests_finished_total",
                           {{"path", "worker"}}, -1.0),
            0.0);

  // One worker-path run, then re-scrape: counters move in lockstep with
  // the engine block.
  serve::Request run;
  run.id = "m1";
  run.cmd = serve::Cmd::Run;
  run.spec.workload = "GEMV";
  run.spec.variant = "TC";
  run.spec.case_sel = "rep";
  run.spec.scale = 64;
  resp = client->call(run, &err);
  ASSERT_TRUE(resp) << err;
  ASSERT_TRUE(resp->find("ok")->as_bool());

  resp = client->call(mreq, &err);
  ASSERT_TRUE(resp) << err;
  auto exp =
      telemetry::parse_prometheus_text(resp->find("metrics")->as_string(), &err);
  ASSERT_TRUE(exp) << err;
  EXPECT_EQ(exp->value_or("cubie_requests_finished_total",
                          {{"path", "worker"}}, -1.0),
            1.0);
  EXPECT_EQ(exp->value_or("cubie_request_latency_seconds_count", {}, -1.0),
            1.0);
  const auto ec = live.server.engine().counters();
  EXPECT_EQ(exp->value_or("cubie_cells_finished_total",
                          {{"source", "compute"}}, -1.0),
            static_cast<double>(ec.misses));
  // Queue is empty between requests, and the depth gauge is refreshed at
  // scrape time.
  EXPECT_EQ(exp->value_or("cubie_queue_depth", {}, -1.0), 0.0);
}

TEST(ServeServer, StatsCarryUptimeAndRejectionBreakdown) {
  serve::ServerOptions opts;
  opts.socket_path = temp_socket("uptime");
  LiveServer live(opts);
  std::string err;
  auto client = serve::Client::connect({opts.socket_path, -1}, &err);
  ASSERT_TRUE(client) << err;
  serve::Request stats;
  stats.cmd = serve::Cmd::Stats;
  const auto st = client->call(stats, &err);
  ASSERT_TRUE(st) << err;
  const auto* srv = st->find("server");
  ASSERT_NE(srv, nullptr);
  ASSERT_NE(srv->find("uptime_s"), nullptr);
  EXPECT_GE(srv->find("uptime_s")->as_number(), 0.0);
  const auto* rej = srv->find("rejections");
  ASSERT_NE(rej, nullptr);
  for (const char* code :
       {"overloaded", "deadline_exceeded", "shutting_down", "bad_request"}) {
    ASSERT_NE(rej->find(code), nullptr) << code;
    EXPECT_EQ(rej->find(code)->as_number(), 0.0);
  }
}

TEST(ServeServer, TcpEphemeralPortWorks) {
  serve::ServerOptions opts;
  opts.tcp_port = 0;  // ephemeral
  LiveServer live(opts);
  EXPECT_GT(live.server.tcp_port(), 0);
  std::string err;
  auto client = serve::Client::connect({"", live.server.tcp_port()}, &err);
  ASSERT_TRUE(client) << err;
  serve::Request ping;
  ping.cmd = serve::Cmd::Ping;
  const auto resp = client->call(ping, &err);
  ASSERT_TRUE(resp) << err;
  EXPECT_TRUE(resp->find("ok")->as_bool());
}

TEST(ServeServer, ServedRunMatchesLocalRunReportByteForByte) {
  serve::ServerOptions opts;
  opts.socket_path = temp_socket("bytes");
  LiveServer live(opts);
  std::string err;
  auto client = serve::Client::connect({opts.socket_path, -1}, &err);
  ASSERT_TRUE(client) << err;

  serve::Request req;
  req.id = "b1";
  req.cmd = serve::Cmd::Run;
  req.spec.workload = "GEMM";
  req.spec.scale = 64;
  const auto resp = client->call(req, &err);
  ASSERT_TRUE(resp) << err;
  ASSERT_TRUE(resp->find("ok")->as_bool());
  ASSERT_NE(resp->find("report"), nullptr);
  // The envelope also carries the engine stats the report omits.
  ASSERT_NE(resp->find("engine"), nullptr);
  EXPECT_GT(resp->find("engine")->find("misses")->as_number(), 0.0);

  engine::ExperimentEngine local;
  serve::RunSpec spec;
  spec.workload = "GEMM";
  spec.scale = 64;
  const auto direct = serve::run_report(local, spec, &err);
  ASSERT_TRUE(direct) << err;
  EXPECT_EQ(resp->find("report")->dump(2), direct->to_json().dump(2));
}

TEST(ServeServer, BoundedQueueRejectsWithOverloaded) {
  serve::ServerOptions opts;
  opts.socket_path = temp_socket("queue");
  opts.workers = 1;
  opts.queue_limit = 1;
  LiveServer live(opts);

  auto sink = std::make_shared<telemetry::MemorySink>();
  telemetry::bus().add_sink(sink);

  std::string err;
  auto a = serve::Client::connect({opts.socket_path, -1}, &err);
  auto b = serve::Client::connect({opts.socket_path, -1}, &err);
  auto c = serve::Client::connect({opts.socket_path, -1}, &err);
  ASSERT_TRUE(a && b && c) << err;

  // A occupies the single worker...
  ASSERT_TRUE(a->send_line(
      serve::request_to_json(sleep_request("a", 700)).dump(-1)));
  for (int i = 0; i < 500 && live.server.stats().started < 1; ++i)
    std::this_thread::sleep_for(2ms);
  ASSERT_EQ(live.server.stats().started, 1u);
  // ...B fills the queue (limit 1)...
  ASSERT_TRUE(b->send_line(
      serve::request_to_json(sleep_request("b", 10)).dump(-1)));
  for (int i = 0; i < 500 && live.server.stats().accepted < 2; ++i)
    std::this_thread::sleep_for(2ms);
  ASSERT_EQ(live.server.stats().accepted, 2u);
  // ...so C is rejected at admission: explicit backpressure, no waiting.
  const auto rejected = c->call(sleep_request("c", 10), &err);
  ASSERT_TRUE(rejected) << err;
  EXPECT_FALSE(rejected->find("ok")->as_bool());
  EXPECT_EQ(error_code_of(*rejected), "overloaded");

  // A and B still complete normally.
  EXPECT_TRUE(a->recv_line());
  EXPECT_TRUE(b->recv_line());
  const auto st = live.server.stats();
  EXPECT_EQ(st.rejected_overloaded, 1u);
  EXPECT_EQ(st.max_queue_depth, 1u);

  bool saw_rejected_event = false;
  for (const auto& e : sink->events())
    if (e.kind == telemetry::EventKind::RequestRejected &&
        e.detail == "c" && e.source == "overloaded" && e.ok == 0) {
      saw_rejected_event = true;
      // The event records the queue depth observed at the moment of
      // rejection (B was the one waiting request), so overload diagnosis
      // works from the event stream alone.
      EXPECT_EQ(e.count, 1u);
      EXPECT_EQ(e.request_id, "c");  // distinct field, not just detail
    }
  EXPECT_TRUE(saw_rejected_event);
  telemetry::bus().remove_sink(sink.get());
}

TEST(ServeServer, ExpiredDeadlineRejectsAtDequeue) {
  serve::ServerOptions opts;
  opts.socket_path = temp_socket("deadline");
  opts.workers = 1;
  LiveServer live(opts);
  std::string err;
  auto a = serve::Client::connect({opts.socket_path, -1}, &err);
  auto b = serve::Client::connect({opts.socket_path, -1}, &err);
  ASSERT_TRUE(a && b) << err;

  // A holds the worker for 400 ms; B's 50 ms deadline expires while queued.
  ASSERT_TRUE(a->send_line(
      serve::request_to_json(sleep_request("a", 400)).dump(-1)));
  for (int i = 0; i < 500 && live.server.stats().started < 1; ++i)
    std::this_thread::sleep_for(2ms);
  ASSERT_EQ(live.server.stats().started, 1u);
  const auto resp = b->call(sleep_request("b", 10, /*deadline_ms=*/50), &err);
  ASSERT_TRUE(resp) << err;
  EXPECT_FALSE(resp->find("ok")->as_bool());
  EXPECT_EQ(error_code_of(*resp), "deadline_exceeded");
  EXPECT_TRUE(a->recv_line());  // A is unaffected
  EXPECT_EQ(live.server.stats().rejected_deadline, 1u);
}

TEST(ServeServer, DrainCompletesInFlightWork) {
  serve::ServerOptions opts;
  opts.socket_path = temp_socket("drain");
  opts.workers = 1;
  LiveServer live(opts);
  std::string err;
  auto a = serve::Client::connect({opts.socket_path, -1}, &err);
  ASSERT_TRUE(a) << err;
  ASSERT_TRUE(a->send_line(
      serve::request_to_json(sleep_request("a", 300)).dump(-1)));
  for (int i = 0; i < 500 && live.server.stats().accepted < 1; ++i)
    std::this_thread::sleep_for(2ms);

  live.shutdown_and_join();  // graceful: returns only after A's response

  const auto line = a->recv_line();
  ASSERT_TRUE(line);  // the in-flight response was written before the join
  const auto resp = report::Json::parse(*line);
  ASSERT_TRUE(resp);
  EXPECT_TRUE(resp->find("ok")->as_bool());
  EXPECT_EQ(resp->find("id")->as_string(), "a");
  EXPECT_EQ(live.server.stats().completed, 1u);
}

TEST(ServeServer, ConcurrentIdenticalRunsComputeEachCellOnce) {
  serve::ServerOptions opts;
  opts.socket_path = temp_socket("coalesce");
  opts.workers = 4;
  LiveServer live(opts);

  constexpr int kClients = 4;
  std::vector<std::thread> threads;
  std::atomic<int> ok_count{0};
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      std::string err;
      auto client = serve::Client::connect({opts.socket_path, -1}, &err);
      ASSERT_TRUE(client) << err;
      serve::Request req;
      req.id = "k" + std::to_string(i);
      req.cmd = serve::Cmd::Run;
      req.spec.workload = "GEMV";
      req.spec.scale = 16;
      const auto resp = client->call(req, &err);
      ASSERT_TRUE(resp) << err;
      if (resp->find("ok")->as_bool()) ok_count.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_EQ(ok_count.load(), kClients);

  // Single-flight + memoization: the K identical plans computed each unique
  // cell exactly once; every other request for it was a memo or coalesced
  // hit. With 4 workers racing the same plan, coalescing is what keeps the
  // "exactly once" true while cells are still in flight.
  const auto c = live.server.engine().counters();
  const std::size_t cells = live.server.engine().materialized().size();
  EXPECT_EQ(c.misses, cells);
  EXPECT_GT(c.memo_hits + c.coalesced_hits, 0u);
}

TEST(ServeServer, RequestLifecycleOnTheBus) {
  auto sink = std::make_shared<telemetry::MemorySink>();
  telemetry::bus().add_sink(sink);
  {
    serve::ServerOptions opts;
    opts.socket_path = temp_socket("events");
    LiveServer live(opts);
    std::string err;
    auto client = serve::Client::connect({opts.socket_path, -1}, &err);
    ASSERT_TRUE(client) << err;
    const auto resp = client->call(sleep_request("e1", 5), &err);
    ASSERT_TRUE(resp) << err;
    EXPECT_TRUE(resp->find("ok")->as_bool());
  }
  telemetry::bus().remove_sink(sink.get());

  int accepted = 0, queued = 0, started = 0, finished = 0;
  for (const auto& e : sink->events()) {
    if (e.detail != "e1") continue;
    EXPECT_EQ(e.name, "sleep");
    switch (e.kind) {
      case telemetry::EventKind::RequestAccepted: ++accepted; break;
      case telemetry::EventKind::RequestQueued:
        ++queued;
        EXPECT_GE(e.count, 1u);
        break;
      case telemetry::EventKind::RequestStarted: ++started; break;
      case telemetry::EventKind::RequestFinished:
        ++finished;
        EXPECT_GE(e.wall_s, 0.0);
        EXPECT_EQ(e.ok, 1);
        break;
      default: break;
    }
  }
  EXPECT_EQ(accepted, 1);
  EXPECT_EQ(queued, 1);
  EXPECT_EQ(started, 1);
  EXPECT_EQ(finished, 1);
}

// ---------------------------------------------------------------------------
// Cubie-Flight: trace propagation over the wire, and the flight command.

TEST(ServeProtocol, TraceFieldRoundTripsAndIsOmittedWhenAbsent) {
  serve::Request r;
  r.id = "t1";
  r.cmd = serve::Cmd::Sleep;
  r.trace = "00112233445566778899aabbccddeeff";
  std::string err;
  const auto back =
      serve::parse_request(serve::request_to_json(r).dump(-1), &err);
  ASSERT_TRUE(back) << err;
  EXPECT_EQ(back->trace, r.trace);
  // No trace -> the field never appears, preserving pre-trace wire bytes.
  r.trace.clear();
  EXPECT_EQ(serve::request_to_json(r).dump(-1).find("trace"),
            std::string::npos);
  EXPECT_EQ(serve::ok_line("t1", report::Json::object()).find("trace"),
            std::string::npos);
  const auto j = report::Json::parse(serve::ok_line(
      "t1", report::Json::object(), "00112233445566778899aabbccddeeff"));
  ASSERT_TRUE(j);
  EXPECT_EQ(j->find("trace")->as_string(),
            "00112233445566778899aabbccddeeff");
}

TEST(ServeServer, ClientTraceIsEchoedAndStampedOnEveryRequestEvent) {
  auto sink = std::make_shared<telemetry::MemorySink>();
  telemetry::bus().add_sink(sink);
  const std::string trace = "deadbeefdeadbeefdeadbeefdeadbeef";
  {
    serve::ServerOptions opts;
    opts.socket_path = temp_socket("trace_echo");
    LiveServer live(opts);
    std::string err;
    auto client = serve::Client::connect({opts.socket_path, -1}, &err);
    ASSERT_TRUE(client) << err;
    auto req = sleep_request("tr1", 5);
    req.trace = trace;
    const auto resp = client->call(req, &err);
    ASSERT_TRUE(resp) << err;
    EXPECT_TRUE(resp->find("ok")->as_bool());
    ASSERT_NE(resp->find("trace"), nullptr);
    EXPECT_EQ(resp->find("trace")->as_string(), trace);
  }
  telemetry::bus().remove_sink(sink.get());
  int lifecycle = 0;
  for (const auto& e : sink->events()) {
    if (e.request_id != "tr1") continue;
    ++lifecycle;
    EXPECT_EQ(e.trace_id, trace);
    EXPECT_FALSE(e.span_id.empty());
  }
  EXPECT_EQ(lifecycle, 4);  // accepted, queued, started, finished
}

TEST(ServeServer, ResponseOmitsTraceWhenClientSentNoneButEventsCarryOne) {
  auto sink = std::make_shared<telemetry::MemorySink>();
  telemetry::bus().add_sink(sink);
  {
    serve::ServerOptions opts;
    opts.socket_path = temp_socket("trace_mint");
    LiveServer live(opts);
    std::string err;
    auto client = serve::Client::connect({opts.socket_path, -1}, &err);
    ASSERT_TRUE(client) << err;
    const auto resp = client->call(sleep_request("tm1", 5), &err);
    ASSERT_TRUE(resp) << err;
    EXPECT_TRUE(resp->find("ok")->as_bool());
    // Byte-identity for legacy clients: no trace in -> no trace out.
    EXPECT_EQ(resp->find("trace"), nullptr);
  }
  telemetry::bus().remove_sink(sink.get());
  // The daemon still minted an id, so the request correlates in the stream.
  std::string minted;
  for (const auto& e : sink->events()) {
    if (e.request_id != "tm1") continue;
    ASSERT_EQ(e.trace_id.size(), 32u);
    if (minted.empty()) minted = e.trace_id;
    EXPECT_EQ(e.trace_id, minted);  // one id across the whole lifecycle
  }
  EXPECT_FALSE(minted.empty());
}

TEST(ServeServer, FlightCommandDumpsTheRingInline) {
  serve::ServerOptions opts;
  opts.socket_path = temp_socket("flight");
  opts.flight_capacity = 64;
  LiveServer live(opts);
  std::string err;
  auto client = serve::Client::connect({opts.socket_path, -1}, &err);
  ASSERT_TRUE(client) << err;
  const auto resp = client->call(sleep_request("f1", 5), &err);
  ASSERT_TRUE(resp) << err;
  ASSERT_TRUE(resp->find("ok")->as_bool());
  // The worker emits RequestFinished just after writing the response; wait
  // for it to land in the ring before scraping.
  const auto ring = live.server.flight_recorder();
  ASSERT_NE(ring, nullptr);
  auto ring_has_finish = [&] {
    for (const auto& e : ring->snapshot())
      if (e.kind == telemetry::EventKind::RequestFinished &&
          e.request_id == "f1")
        return true;
    return false;
  };
  for (int i = 0; i < 500 && !ring_has_finish(); ++i)
    std::this_thread::sleep_for(2ms);

  serve::Request freq;
  freq.id = "f2";
  freq.cmd = serve::Cmd::Flight;
  const auto fl = client->call(freq, &err);
  ASSERT_TRUE(fl) << err;
  ASSERT_TRUE(fl->find("ok")->as_bool());
  EXPECT_EQ(fl->find("capacity")->as_number(), 64.0);
  const auto* events = fl->find("events");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  EXPECT_EQ(fl->find("count")->as_number(),
            static_cast<double>(events->size()));
  // The ring holds f1's full lifecycle, in sequence order.
  int finished = 0;
  double prev_seq = -1.0;
  for (std::size_t i = 0; i < events->size(); ++i) {
    const auto& e = events->at(i);
    const double seq = e.find("seq")->as_number();
    EXPECT_GT(seq, prev_seq);
    prev_seq = seq;
    if (const auto* k = e.find("kind");
        k != nullptr && k->as_string() == "request_finished" &&
        e.find("request_id") != nullptr &&
        e.find("request_id")->as_string() == "f1")
      ++finished;
  }
  EXPECT_EQ(finished, 1);
}

TEST(ServeServer, SlowlogCapturesFinishedRequests) {
  const std::string slowlog_path =
      (std::filesystem::temp_directory_path() / "cubie_test_slowlog.jsonl")
          .string();
  {
    serve::ServerOptions opts;
    opts.socket_path = temp_socket("slowlog");
    opts.slowlog_path = slowlog_path;
    opts.slow_ms = 0.0;  // keep every finished request
    LiveServer live(opts);
    std::string err;
    auto client = serve::Client::connect({opts.socket_path, -1}, &err);
    ASSERT_TRUE(client) << err;
    auto req = sleep_request("s1", 5);
    req.trace = "0123456789abcdef0123456789abcdef";
    const auto resp = client->call(req, &err);
    ASSERT_TRUE(resp) << err;
    ASSERT_TRUE(resp->find("ok")->as_bool());
    const auto slowlog = live.server.slowlog();
    ASSERT_NE(slowlog, nullptr);
    // The worker emits RequestFinished just after writing the response, so
    // the client can observe the reply a hair before the sink finalizes.
    for (int i = 0; i < 500 && slowlog->top().empty(); ++i)
      std::this_thread::sleep_for(2ms);
    const auto top = slowlog->top();
    ASSERT_EQ(top.size(), 1u);
    EXPECT_EQ(top[0].trace_id, req.trace);
    EXPECT_EQ(top[0].request_id, "s1");
    EXPECT_EQ(top[0].ok, 1);
    EXPECT_GE(top[0].wall_s, 0.0);
    EXPECT_GE(top[0].queue_wait_s, 0.0);
  }
  // The file holds the same timeline, one JSON object per line.
  std::ifstream is(slowlog_path);
  ASSERT_TRUE(is.is_open());
  std::string line;
  ASSERT_TRUE(std::getline(is, line));
  const auto j = report::Json::parse(line);
  ASSERT_TRUE(j);
  telemetry::RequestTimeline t;
  ASSERT_TRUE(telemetry::timeline_from_json(*j, &t));
  EXPECT_EQ(t.trace_id, "0123456789abcdef0123456789abcdef");
  std::filesystem::remove(slowlog_path);
}

// ---------------------------------------------------------------------------
// Load generator.

TEST(ServeLoadgen, PercentilesInterpolateLinearly) {
  serve::LoadgenResult r;
  r.latencies_ms = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  r.completed = 10;
  r.wall_s = 2.0;
  // numpy-default (type-7) interpolation: h = (n-1) * q / 100. The old
  // nearest-rank rule collapsed p95 == p99 == p100 for every N < 100.
  EXPECT_DOUBLE_EQ(r.percentile_ms(50), 5.5);
  EXPECT_DOUBLE_EQ(r.percentile_ms(95), 9.55);
  EXPECT_DOUBLE_EQ(r.percentile_ms(99), 9.91);
  EXPECT_DOUBLE_EQ(r.percentile_ms(100), 10.0);
  EXPECT_DOUBLE_EQ(r.req_per_s(), 5.0);
  // Degenerate inputs stay well-defined: one sample answers every q with
  // itself; no samples answer 0.
  serve::LoadgenResult one;
  one.latencies_ms = {7.5};
  EXPECT_DOUBLE_EQ(one.percentile_ms(50), 7.5);
  EXPECT_DOUBLE_EQ(one.percentile_ms(99), 7.5);
  serve::LoadgenResult empty;
  EXPECT_DOUBLE_EQ(empty.percentile_ms(50), 0.0);
  EXPECT_DOUBLE_EQ(empty.req_per_s(), 0.0);
}

TEST(ServeLoadgen, FiresMixAndReduces) {
  serve::ServerOptions opts;
  opts.socket_path = temp_socket("loadgen");
  opts.workers = 2;
  LiveServer live(opts);

  serve::LoadgenOptions lo;
  lo.endpoint = {opts.socket_path, -1};
  lo.concurrency = 3;
  lo.requests = 12;
  serve::Request ping;
  ping.cmd = serve::Cmd::Ping;
  lo.mix = {ping};
  serve::LoadgenResult res;
  std::string err;
  ASSERT_TRUE(serve::run_loadgen(lo, res, &err)) << err;
  EXPECT_EQ(res.completed, 12u);
  EXPECT_EQ(res.rejected, 0u);
  EXPECT_EQ(res.transport_errors, 0u);
  EXPECT_EQ(res.latencies_ms.size(), 12u);
  EXPECT_LE(res.percentile_ms(50), res.percentile_ms(95));
  EXPECT_LE(res.percentile_ms(95), res.percentile_ms(99));
  EXPECT_GT(res.req_per_s(), 0.0);

  const auto rep = serve::loadgen_report(res);
  EXPECT_EQ(rep.tool, "cubie_loadgen");
  ASSERT_EQ(rep.records.size(), 1u);
  const auto& rec = rep.records[0];
  EXPECT_EQ(rec.key(), "loadgen|mix|-|aggregate");
  for (const char* m :
       {"req_per_s", "p50_ms", "p95_ms", "p99_ms", "completed", "rejected"})
    EXPECT_NE(rec.get(m), nullptr) << m;
  // The client-side latency distribution rides along as a captured table
  // in the daemon's fixed bucket ladder, cumulative counts.
  ASSERT_EQ(rep.tables.size(), 1u);
  const auto& table = rep.tables[0];
  EXPECT_EQ(table.name, "latency_histogram");
  ASSERT_EQ(table.columns,
            (std::vector<std::string>{"le_seconds", "cumulative_count"}));
  ASSERT_EQ(table.rows.size(), telemetry::latency_bucket_bounds().size() + 1);
  EXPECT_EQ(table.rows.back()[0], "+Inf");
  EXPECT_EQ(table.rows.back()[1], std::to_string(res.completed));
}

TEST(ServeLoadgen, ConnectFailureIsAnError) {
  serve::LoadgenOptions lo;
  lo.endpoint = {temp_socket("nonexistent"), -1};
  serve::Request ping;
  ping.cmd = serve::Cmd::Ping;
  lo.mix = {ping};
  serve::LoadgenResult res;
  std::string err;
  EXPECT_FALSE(serve::run_loadgen(lo, res, &err));
  EXPECT_FALSE(err.empty());
}

}  // namespace
}  // namespace cubie
