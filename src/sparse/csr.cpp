#include "sparse/csr.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace cubie::sparse {

bool Csr::structurally_valid() const {
  if (rows < 0 || cols < 0) return false;
  if (row_ptr.size() != static_cast<std::size_t>(rows) + 1) return false;
  if (row_ptr.front() != 0) return false;
  if (static_cast<std::size_t>(row_ptr.back()) != nnz()) return false;
  if (col_idx.size() != vals.size()) return false;
  for (int r = 0; r < rows; ++r) {
    const auto lo = static_cast<std::size_t>(row_ptr[static_cast<std::size_t>(r)]);
    const auto hi = static_cast<std::size_t>(row_ptr[static_cast<std::size_t>(r) + 1]);
    if (hi < lo) return false;
    for (std::size_t p = lo; p < hi; ++p) {
      if (col_idx[p] < 0 || col_idx[p] >= cols) return false;
      if (p > lo && col_idx[p] <= col_idx[p - 1]) return false;
    }
  }
  return true;
}

Csr csr_from_coo(const Coo& coo) {
  Csr m;
  m.rows = coo.rows;
  m.cols = coo.cols;
  const std::size_t nnz = coo.nnz();

  // Sort triplets by (row, col) via an index permutation.
  std::vector<std::size_t> order(nnz);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    if (coo.row[x] != coo.row[y]) return coo.row[x] < coo.row[y];
    return coo.col[x] < coo.col[y];
  });

  m.row_ptr.assign(static_cast<std::size_t>(m.rows) + 1, 0);
  m.col_idx.reserve(nnz);
  m.vals.reserve(nnz);
  int prev_row = -1, prev_col = -1;
  for (std::size_t idx : order) {
    const int r = coo.row[idx];
    const int c = coo.col[idx];
    if (r == prev_row && c == prev_col) {
      m.vals.back() += coo.val[idx];  // merge duplicates
      continue;
    }
    m.col_idx.push_back(c);
    m.vals.push_back(coo.val[idx]);
    m.row_ptr[static_cast<std::size_t>(r) + 1] += 1;
    prev_row = r;
    prev_col = c;
  }
  for (int r = 0; r < m.rows; ++r)
    m.row_ptr[static_cast<std::size_t>(r) + 1] += m.row_ptr[static_cast<std::size_t>(r)];
  return m;
}

Csr transpose(const Csr& a) {
  Csr t;
  t.rows = a.cols;
  t.cols = a.rows;
  t.row_ptr.assign(static_cast<std::size_t>(t.rows) + 1, 0);
  t.col_idx.resize(a.nnz());
  t.vals.resize(a.nnz());
  for (int c : a.col_idx) t.row_ptr[static_cast<std::size_t>(c) + 1] += 1;
  for (int r = 0; r < t.rows; ++r)
    t.row_ptr[static_cast<std::size_t>(r) + 1] += t.row_ptr[static_cast<std::size_t>(r)];
  std::vector<int> cursor(t.row_ptr.begin(), t.row_ptr.end() - 1);
  for (int r = 0; r < a.rows; ++r) {
    for (int p = a.row_ptr[static_cast<std::size_t>(r)]; p < a.row_ptr[static_cast<std::size_t>(r) + 1]; ++p) {
      const int c = a.col_idx[static_cast<std::size_t>(p)];
      const auto dst = static_cast<std::size_t>(cursor[static_cast<std::size_t>(c)]++);
      t.col_idx[dst] = r;
      t.vals[dst] = a.vals[static_cast<std::size_t>(p)];
    }
  }
  return t;
}

std::vector<double> spmv_serial(const Csr& a, std::span<const double> x) {
  assert(static_cast<int>(x.size()) == a.cols);
  std::vector<double> y(static_cast<std::size_t>(a.rows), 0.0);
  for (int r = 0; r < a.rows; ++r) {
    double acc = 0.0;
    for (int p = a.row_ptr[static_cast<std::size_t>(r)]; p < a.row_ptr[static_cast<std::size_t>(r) + 1]; ++p) {
      acc = acc + a.vals[static_cast<std::size_t>(p)] *
                      x[static_cast<std::size_t>(a.col_idx[static_cast<std::size_t>(p)])];
    }
    y[static_cast<std::size_t>(r)] = acc;
  }
  return y;
}

Csr spgemm_serial(const Csr& a, const Csr& b) {
  assert(a.cols == b.rows);
  Csr c;
  c.rows = a.rows;
  c.cols = b.cols;
  c.row_ptr.assign(static_cast<std::size_t>(c.rows) + 1, 0);

  std::vector<double> acc(static_cast<std::size_t>(b.cols), 0.0);
  std::vector<int> marker(static_cast<std::size_t>(b.cols), -1);
  std::vector<int> touched;

  for (int r = 0; r < a.rows; ++r) {
    touched.clear();
    for (int pa = a.row_ptr[static_cast<std::size_t>(r)]; pa < a.row_ptr[static_cast<std::size_t>(r) + 1]; ++pa) {
      const int k = a.col_idx[static_cast<std::size_t>(pa)];
      const double av = a.vals[static_cast<std::size_t>(pa)];
      for (int pb = b.row_ptr[static_cast<std::size_t>(k)]; pb < b.row_ptr[static_cast<std::size_t>(k) + 1]; ++pb) {
        const int j = b.col_idx[static_cast<std::size_t>(pb)];
        if (marker[static_cast<std::size_t>(j)] != r) {
          marker[static_cast<std::size_t>(j)] = r;
          acc[static_cast<std::size_t>(j)] = 0.0;
          touched.push_back(j);
        }
        acc[static_cast<std::size_t>(j)] =
            acc[static_cast<std::size_t>(j)] + av * b.vals[static_cast<std::size_t>(pb)];
      }
    }
    std::sort(touched.begin(), touched.end());
    for (int j : touched) {
      c.col_idx.push_back(j);
      c.vals.push_back(acc[static_cast<std::size_t>(j)]);
    }
    c.row_ptr[static_cast<std::size_t>(r) + 1] = static_cast<int>(c.col_idx.size());
  }
  return c;
}

void gemm_serial(int m, int n, int k, std::span<const double> a,
                 std::span<const double> b, std::span<double> c) {
  assert(a.size() == static_cast<std::size_t>(m) * static_cast<std::size_t>(k));
  assert(b.size() == static_cast<std::size_t>(k) * static_cast<std::size_t>(n));
  assert(c.size() == static_cast<std::size_t>(m) * static_cast<std::size_t>(n));
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int kk = 0; kk < k; ++kk) {
        acc = acc + a[static_cast<std::size_t>(i) * k + kk] *
                        b[static_cast<std::size_t>(kk) * n + j];
      }
      c[static_cast<std::size_t>(i) * n + j] = acc;
    }
  }
}

void gemv_serial(int m, int n, std::span<const double> a,
                 std::span<const double> x, std::span<double> y) {
  assert(a.size() == static_cast<std::size_t>(m) * static_cast<std::size_t>(n));
  assert(x.size() == static_cast<std::size_t>(n));
  assert(y.size() == static_cast<std::size_t>(m));
  for (int i = 0; i < m; ++i) {
    double acc = 0.0;
    for (int j = 0; j < n; ++j) {
      acc = acc + a[static_cast<std::size_t>(i) * n + j] * x[static_cast<std::size_t>(j)];
    }
    y[static_cast<std::size_t>(i)] = acc;
  }
}

}  // namespace cubie::sparse
