// BFS workload (Quadrant IV): breadth-first search on the Table 3 graphs.
//
// TC: the BerryBees scheme. The (reverse) adjacency is stored as nonempty
// 8x128 single-bit blocks; a BFS level multiplies each block against the
// frontier bit-vector with the single-bit mma.m8n8k128 (AND + popcount).
// The frontier segment is replicated into all 8 columns of the B operand
// and only the diagonal of the 8x8 count matrix is useful - the Quadrant IV
// partial-output pattern.
// CC: identical block traversal with the bit ops executed on CUDA cores.
// CC-E: only the 8 essential AND+popc row operations per block (no operand
// replication). Baseline: Gunrock-style push BFS over CSR with a frontier
// queue and scattered level updates.

#include "core/kernels.hpp"

#include "common/table.hpp"
#include "graph/bitmap.hpp"
#include "graph/generators.hpp"
#include "mma/mma.hpp"
#include "sim/calibration.hpp"

#include <algorithm>
#include <bit>
#include <string>
#include <vector>

namespace cubie::core {
namespace {

namespace scal = cubie::sim::cal;
using graph::kSliceCols;
using graph::kSliceRows;
using graph::kSliceWords;

graph::Graph load_graph(const TestCase& tc) {
  // dims[0] carries the scale divisor chosen at cases() time.
  return graph::make_table3_graph(tc.dataset, static_cast<int>(tc.dims[0]))
      .graph;
}

// Bit-MMA BFS over the slice set. `essential` selects the CC-E bit-op
// accounting (functional result is identical).
std::vector<int> run_berrybees(const graph::Graph& g,
                               const graph::BitmapSliceSet& s, int source,
                               mma::Context& ctx, bool essential,
                               sim::Tracer* tr) {
  std::vector<int> level(static_cast<std::size_t>(g.n), -1);
  graph::BitVector frontier(g.n), visited(g.n), next(g.n);
  frontier.set(source);
  visited.set(source);
  level[static_cast<std::size_t>(source)] = 0;

  std::uint32_t b_words[kSliceRows * kSliceWords];
  std::uint32_t d[64];
  int depth = 0;
  while (frontier.popcount() > 0) {
    ++depth;
    // One span per frontier iteration: the per-level work profile is the
    // quantity BerryBees' completed-row filter is designed to shrink.
    sim::Span level_span(tr, "level_" + std::to_string(depth), ctx.profile());
    next.clear();
    ctx.launch(static_cast<double>(s.block_rows) * 32.0);
    for (int br = 0; br < s.block_rows; ++br) {
      // Completed-row filter: once all 8 destinations are visited, the
      // whole block row is skipped without touching its blocks (BerryBees
      // keeps this completion state alongside the frontier).
      bool all_done = true;
      for (int r = 0; r < kSliceRows && all_done; ++r) {
        const int v = br * kSliceRows + r;
        all_done = v >= g.n || visited.get(v);
      }
      ctx.cc_int(1.0);
      if (all_done) continue;
      for (int p = s.row_ptr[static_cast<std::size_t>(br)]; p < s.row_ptr[static_cast<std::size_t>(br) + 1]; ++p) {
        const graph::SliceBlock& blk = s.blocks[static_cast<std::size_t>(p)];
        // Frontier segment for this block's 128 source columns.
        const std::size_t wbase = static_cast<std::size_t>(blk.block_col) * kSliceWords;
        std::uint32_t seg[kSliceWords] = {};
        bool any = false;
        for (int w = 0; w < kSliceWords; ++w) {
          if (wbase + static_cast<std::size_t>(w) < frontier.words.size()) {
            seg[w] = frontier.words[wbase + static_cast<std::size_t>(w)];
            any = any || seg[w] != 0;
          }
        }
        ctx.load_global(16.0);  // frontier segment
        ctx.cc_int(1.0);        // frontier-empty filter
        if (!any) continue;
        ctx.load_global(static_cast<double>(kSliceRows * kSliceWords) * 4.0 + 4.0);
        std::fill(std::begin(d), std::end(d), 0u);
        if (!essential) {
          // Replicate the frontier segment into all 8 B columns.
          for (int c = 0; c < kSliceRows; ++c)
            for (int w = 0; w < kSliceWords; ++w)
              b_words[c * kSliceWords + w] = seg[w];
          ctx.bmma_m8n8k128_and_popc_acc(blk.bits.data(), b_words, d);
        } else {
          // Essential: one AND+popc row op per destination row.
          ctx.cc_int(2.0 * kSliceRows * kSliceWords);
          for (int r = 0; r < kSliceRows; ++r) {
            std::uint32_t acc = 0;
            for (int w = 0; w < kSliceWords; ++w)
              acc += static_cast<std::uint32_t>(
                  std::popcount(blk.bits[static_cast<std::size_t>(r * kSliceWords + w)] & seg[w]));
            d[r * 8 + r] = acc;
          }
        }
        // Diagonal extraction: row r reachable iff d[r][r] > 0.
        for (int r = 0; r < kSliceRows; ++r) {
          const int v = br * kSliceRows + r;
          if (v < g.n && d[r * 8 + r] > 0 && !visited.get(v)) next.set(v);
        }
      }
    }
    // Commit the next frontier.
    int found = 0;
    for (int v = 0; v < g.n; ++v) {
      if (next.get(v)) {
        visited.set(v);
        level[static_cast<std::size_t>(v)] = depth;
        ++found;
      }
    }
    ctx.store_global(static_cast<double>((g.n + 7) / 8));  // frontier bitmap
    ctx.cc_int(static_cast<double>(g.n) / 32.0);
    if (found == 0) break;
    std::swap(frontier, next);
  }
  return level;
}

// Gunrock-style push BFS proxy.
std::vector<int> run_gunrock(const graph::Graph& g, int source,
                             mma::Context& ctx, sim::Tracer* tr) {
  std::vector<int> level(static_cast<std::size_t>(g.n), -1);
  std::vector<int> frontier{source}, next;
  level[static_cast<std::size_t>(source)] = 0;
  int depth = 0;
  while (!frontier.empty()) {
    ++depth;
    sim::Span level_span(tr, "level_" + std::to_string(depth), ctx.profile());
    next.clear();
    ctx.launch(static_cast<double>(frontier.size()) * 32.0);
    for (int u : frontier) {
      const int deg = g.degree(u);
      // Offsets + neighbour list (streamed) + scattered level probes; each
      // random probe moves a full DRAM sector (cal::kRandomProbeBytes).
      ctx.load_global(8.0 + static_cast<double>(deg) *
                                (4.0 + scal::kRandomProbeBytes));
      ctx.cc_int(static_cast<double>(deg) * 3.0);
      for (int p = g.offsets[static_cast<std::size_t>(u)]; p < g.offsets[static_cast<std::size_t>(u) + 1]; ++p) {
        const int v = g.neighbors[static_cast<std::size_t>(p)];
        if (level[static_cast<std::size_t>(v)] < 0) {
          level[static_cast<std::size_t>(v)] = depth;
          next.push_back(v);
        }
      }
    }
    // Discovered vertices: scattered level stores (sector each) + queue push.
    ctx.store_global(static_cast<double>(next.size()) *
                     (scal::kRandomProbeBytes + 4.0));
    std::swap(frontier, next);
  }
  return level;
}

class BfsWorkload final : public Workload {
 public:
  std::string name() const override { return "BFS"; }
  Quadrant quadrant() const override { return Quadrant::IV; }
  std::string dwarf() const override { return "Graph traversal"; }
  std::string baseline_name() const override { return "Gunrock"; }
  bool is_floating_point() const override { return false; }

  std::vector<TestCase> cases(int s) const override {
    std::vector<TestCase> cs;
    for (const auto& nm : graph::table3_names()) cs.push_back({nm, {s}, nm});
    return cs;
  }

  RunOutput run(Variant v, const TestCase& tc,
                const RunOptions& opts) const override {
    RunOutput out;
    sim::Span total(opts.tracer, "BFS/" + variant_name(v), out.profile);
    sim::Span setup(opts.tracer, "setup", out.profile);
    const graph::Graph g = load_graph(tc);
    setup.finish();
    const int source = 0;
    mma::Context ctx(v == Variant::TC ? mma::Pipe::TensorCore
                                      : mma::Pipe::CudaCore,
                     out.profile);
    std::vector<int> level;
    if (v == Variant::Baseline) {
      level = run_gunrock(g, source, ctx, opts.tracer);
      out.profile.pipe_eff = scal::kCcLibraryEff;
      out.profile.mem_eff = scal::kMemEffScatter;
    } else {
      sim::Span slice(opts.tracer, "build_slices", out.profile);
      const graph::BitmapSliceSet s = graph::slice_set_from_graph(g);
      slice.finish();
      level = run_berrybees(g, s, source, ctx, v == Variant::CCE,
                            opts.tracer);
      out.profile.pipe_eff = v == Variant::TC ? scal::kTcSmallBlockEff
                             : v == Variant::CC ? scal::kCcEmulationEff
                                                : scal::kCcEssentialEff;
      out.profile.mem_eff = v == Variant::CC ? scal::kMemEffCcEmulation
                                             : scal::kMemEffTcLayout;
    }
    // Traversed-edge count as the useful work measure (TEPS basis).
    out.profile.useful_flops = static_cast<double>(g.edges());
    // Cachesim descriptor: frontier expansion chases edge lists in
    // neighbor order — irregular over CSR adjacency + level array.
    out.profile.access = sim::AccessPattern::Irregular;
    out.profile.working_set_bytes =
        static_cast<double>(g.edges()) * 8.0 + static_cast<double>(g.n) * 8.0;
    out.values.assign(level.begin(), level.end());
    return out;
  }

  std::vector<double> reference(const TestCase& tc) const override {
    const graph::Graph g = load_graph(tc);
    const auto level = graph::bfs_serial(g, 0);
    return std::vector<double>(level.begin(), level.end());
  }
};

}  // namespace

WorkloadPtr make_bfs() { return std::make_unique<BfsWorkload>(); }

}  // namespace cubie::core
