# Empty dependencies file for ablation_suitability.
# This may be replaced when dependencies are built.
