#pragma once
// Miniature re-implementations of representative Rodinia and SHOC kernels,
// executed on the same simulator so the Figure 11 PCA can compare suite
// behaviour with like-for-like metric vectors (the paper collects the
// corresponding metrics with NCU on the real suites; see DESIGN.md for the
// substitution rationale). These are vector-unit kernels: all work lands on
// the CUDA-core pipe.

#include "sim/profile.hpp"

#include <string>
#include <vector>

namespace cubie::core {

struct SuiteProxyResult {
  std::string suite;  // "Rodinia" | "SHOC"
  std::string name;
  sim::KernelProfile profile;
};

// Runs every proxy kernel functionally (small fixed problem sizes) and
// returns their profiles. Deterministic.
std::vector<SuiteProxyResult> run_suite_proxies();

}  // namespace cubie::core
