# Empty dependencies file for cubie_cli.
# This may be replaced when dependencies are built.
