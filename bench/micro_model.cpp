// Micro-benchmarks for the analysis layer: device-model prediction
// throughput, power-trace synthesis, PCA, and suitability assessment -
// these run once per (workload, variant, case, gpu) cell in the figure
// sweeps, so they must stay negligible next to the functional execution.

#include "analysis/pca.hpp"
#include "analysis/suitability.hpp"
#include "common/rng.hpp"
#include "sim/model.hpp"
#include "sim/power.hpp"

#include <benchmark/benchmark.h>

namespace {

using namespace cubie;

sim::KernelProfile sample_profile() {
  sim::KernelProfile p;
  p.tc_flops = 3.2e9;
  p.cc_flops = 1.1e8;
  p.dram_bytes = 6.4e8;
  p.smem_bytes = 2.2e9;
  p.warp_instructions = 9.5e6;
  p.threads = 1.3e5;
  p.launches = 3;
  p.useful_flops = 2.8e9;
  return p;
}

void BM_DeviceModelPredict(benchmark::State& state) {
  const sim::AnalyticModel model(sim::h200());
  const auto prof = sample_profile();
  for (auto _ : state) {
    auto pred = model.predict(prof);
    benchmark::DoNotOptimize(pred);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DeviceModelPredict);

void BM_PowerTraceSynthesis(benchmark::State& state) {
  const sim::AnalyticModel model(sim::h200());
  const auto pred = model.predict(sample_profile());
  sim::PowerTraceOptions opts;
  for (auto _ : state) {
    auto trace = sim::synthesize_power_trace(sim::h200(), pred, opts);
    benchmark::DoNotOptimize(trace);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PowerTraceSynthesis);

void BM_PcaOnCorpusFeatures(benchmark::State& state) {
  const std::size_t samples = static_cast<std::size_t>(state.range(0));
  analysis::Dataset d;
  d.samples = samples;
  d.features = 10;
  d.data = common::random_vector(samples * 10, 7);
  analysis::standardize(d);
  for (auto _ : state) {
    auto res = analysis::pca(d, 2);
    benchmark::DoNotOptimize(res);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(samples));
}
BENCHMARK(BM_PcaOnCorpusFeatures)->Arg(100)->Arg(500);

void BM_SuitabilityAssessment(benchmark::State& state) {
  analysis::AlgorithmTraits t;
  t.arithmetic_intensity = 0.15;
  t.input_block_density = 0.9;
  t.output_utilization = 0.125;
  t.baseline_mem_regularity = 0.45;
  for (auto _ : state) {
    auto a = analysis::assess_mmu_suitability(t, sim::h200());
    benchmark::DoNotOptimize(a);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SuitabilityAssessment);

}  // namespace

BENCHMARK_MAIN();
