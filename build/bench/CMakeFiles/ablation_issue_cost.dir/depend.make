# Empty dependencies file for ablation_issue_cost.
# This may be replaced when dependencies are built.
