#include "sparse/generators.hpp"

#include "common/rng.hpp"
#include "sparse/io.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>

namespace cubie::sparse {

using common::Lcg;

Csr gen_banded(int n, int half_bandwidth, double fill_prob, bool symmetric,
               std::uint32_t seed) {
  Lcg rng(seed);
  Coo coo;
  coo.rows = coo.cols = n;
  for (int r = 0; r < n; ++r) {
    coo.row.push_back(r);
    coo.col.push_back(r);
    coo.val.push_back(rng.next_linpack() + 4.0);  // diagonally weighted
    const int c_hi = symmetric ? r : std::min(n - 1, r + half_bandwidth);
    const int c_lo = std::max(0, r - half_bandwidth);
    for (int c = c_lo; c <= c_hi; ++c) {
      if (c == r) continue;
      if (rng.next_unit() < fill_prob) {
        const double v = rng.next_linpack();
        coo.row.push_back(r);
        coo.col.push_back(c);
        coo.val.push_back(v);
        if (symmetric) {
          coo.row.push_back(c);
          coo.col.push_back(r);
          coo.val.push_back(v);
        }
      }
    }
  }
  return csr_from_coo(coo);
}

Csr gen_block_fem(int n, int block_dim, int blocks_per_row, int band,
                  std::uint32_t seed) {
  Lcg rng(seed);
  Coo coo;
  coo.rows = coo.cols = n;
  const int nb = n / block_dim;
  auto add_block = [&](int br, int bc) {
    for (int i = 0; i < block_dim; ++i) {
      for (int j = 0; j < block_dim; ++j) {
        const int r = br * block_dim + i;
        const int c = bc * block_dim + j;
        if (r < n && c < n) {
          double v = rng.next_linpack();
          if (r == c) v += 4.0 * block_dim;  // keep it FEM-like (diag heavy)
          coo.row.push_back(r);
          coo.col.push_back(c);
          coo.val.push_back(v);
        }
      }
    }
  };
  std::set<int> cols;
  for (int br = 0; br < nb; ++br) {
    cols.clear();
    cols.insert(br);  // block diagonal
    while (static_cast<int>(cols.size()) < std::min(blocks_per_row, nb)) {
      const int offset = static_cast<int>(rng.next_below(static_cast<std::uint32_t>(2 * band + 1))) - band;
      const int bc = std::clamp(br + offset, 0, nb - 1);
      cols.insert(bc);
    }
    for (int bc : cols) add_block(br, bc);
  }
  return csr_from_coo(coo);
}

Csr gen_lattice4d(int lx, int ly, int lz, int lt, int dof, std::uint32_t seed) {
  Lcg rng(seed);
  const int sites = lx * ly * lz * lt;
  const int n = sites * dof;
  Coo coo;
  coo.rows = coo.cols = n;
  auto site_id = [&](int x, int y, int z, int t) {
    return ((t * lz + z) * ly + y) * lx + x;
  };
  auto couple = [&](int s_from, int s_to) {
    for (int i = 0; i < dof; ++i) {
      for (int j = 0; j < dof; ++j) {
        double v = rng.next_linpack();
        if (s_from == s_to && i == j) v += 4.0;
        coo.row.push_back(s_from * dof + i);
        coo.col.push_back(s_to * dof + j);
        coo.val.push_back(v);
      }
    }
  };
  for (int t = 0; t < lt; ++t) {
    for (int z = 0; z < lz; ++z) {
      for (int y = 0; y < ly; ++y) {
        for (int x = 0; x < lx; ++x) {
          const int s = site_id(x, y, z, t);
          couple(s, s);
          // Periodic nearest neighbours in the four dimensions.
          couple(s, site_id((x + 1) % lx, y, z, t));
          couple(s, site_id((x + lx - 1) % lx, y, z, t));
          couple(s, site_id(x, (y + 1) % ly, z, t));
          couple(s, site_id(x, (y + ly - 1) % ly, z, t));
          couple(s, site_id(x, y, (z + 1) % lz, t));
          couple(s, site_id(x, y, (z + lz - 1) % lz, t));
          couple(s, site_id(x, y, z, (t + 1) % lt));
          couple(s, site_id(x, y, z, (t + lt - 1) % lt));
        }
      }
    }
  }
  return csr_from_coo(coo);
}

Csr gen_random_uniform(int n, int nnz_per_row, std::uint32_t seed) {
  Lcg rng(seed);
  Coo coo;
  coo.rows = coo.cols = n;
  std::set<int> cols;
  for (int r = 0; r < n; ++r) {
    cols.clear();
    cols.insert(r);
    while (static_cast<int>(cols.size()) < std::min(nnz_per_row, n)) {
      cols.insert(static_cast<int>(rng.next_below(static_cast<std::uint32_t>(n))));
    }
    for (int c : cols) {
      coo.row.push_back(r);
      coo.col.push_back(c);
      coo.val.push_back(rng.next_linpack());
    }
  }
  return csr_from_coo(coo);
}

Csr gen_powerlaw(int n, double avg_degree, double alpha, std::uint32_t seed) {
  Lcg rng(seed);
  Coo coo;
  coo.rows = coo.cols = n;
  // Zipf-like degree assignment normalized to the requested average.
  std::vector<double> weight(static_cast<std::size_t>(n));
  double total = 0.0;
  for (int r = 0; r < n; ++r) {
    weight[static_cast<std::size_t>(r)] = std::pow(static_cast<double>(r + 1), -alpha);
    total += weight[static_cast<std::size_t>(r)];
  }
  const double scale = avg_degree * n / total;
  std::set<int> cols;
  for (int r = 0; r < n; ++r) {
    int deg = std::max(1, static_cast<int>(weight[static_cast<std::size_t>(r)] * scale));
    deg = std::min(deg, n);
    cols.clear();
    while (static_cast<int>(cols.size()) < deg) {
      // Preferential attachment flavour: bias columns toward low indices.
      const double u = rng.next_unit();
      const int c = static_cast<int>(std::pow(u, 1.5) * n);
      cols.insert(std::min(c, n - 1));
    }
    for (int c : cols) {
      coo.row.push_back(r);
      coo.col.push_back(c);
      coo.val.push_back(rng.next_linpack());
    }
  }
  return csr_from_coo(coo);
}

std::vector<std::string> table4_names() {
  return {"spmsrts", "Chevron1", "raefsky3", "conf5_4-8x8-10", "bcsstk39"};
}

NamedMatrix make_table4_matrix(const std::string& name, int scale_divisor) {
  const int s = std::max(1, scale_divisor);
  NamedMatrix nm;
  nm.name = name;
  if (name.find('/') != std::string::npos ||
      (name.size() > 4 && name.substr(name.size() - 4) == ".mtx")) {
    // A real Matrix Market file: load it verbatim (no scaling).
    nm.group = "file";
    nm.matrix = csr_from_coo(read_matrix_market_file(name));
  } else if (name == "spmsrts") {
    // 29,995 rows / 229,947 nnz (~7.7 per row), GHS_indef: symmetric
    // indefinite with a moderate band.
    nm.group = "GHS_indef";
    nm.matrix = gen_banded(29995 / s, 12, 0.30, true, 101);
  } else if (name == "Chevron1") {
    // 37,365 rows / 330,633 nnz (~8.8 per row): seismic structured grid.
    nm.group = "Chevron";
    nm.matrix = gen_banded(37365 / s, 9, 0.48, false, 102);
  } else if (name == "raefsky3") {
    // 21,200 rows / 1,488,768 nnz (~70 per row): FEM fluid-structure with
    // dense 8x8 vertex blocks.
    nm.group = "Simon";
    nm.matrix = gen_block_fem(21200 / s, 8, 9, 24, 103);
  } else if (name == "conf5_4-8x8-10") {
    // 49,152 rows / 1,916,928 nnz (exactly 39 per row): QCD 8^3 x 16 lattice
    // with 3 colour dof -> here scaled lattice with dof 3.
    nm.group = "QCD";
    // Keep every lattice dimension >= 4 so periodic +1/-1 neighbours stay
    // distinct and the constant row degree (9 x dof) of the original holds.
    const int l = std::max(4, 8 / (s > 2 ? 2 : 1));
    const int t = std::max(4, 16 / s);
    nm.matrix = gen_lattice4d(l, l, l, t, 3, 104);
  } else if (name == "bcsstk39") {
    // 46,772 rows / 2,089,294 nnz (~44.7 per row): solid-element stiffness
    // matrix, blocked band structure.
    nm.group = "Boeing";
    nm.matrix = gen_block_fem(46772 / s, 6, 8, 30, 105);
  } else {
    throw std::invalid_argument("unknown Table 4 matrix: " + name);
  }
  return nm;
}

std::vector<NamedMatrix> synthetic_matrix_corpus(int count, std::uint32_t seed) {
  std::vector<NamedMatrix> corpus;
  corpus.reserve(static_cast<std::size_t>(count));
  Lcg rng(seed);
  for (int i = 0; i < count; ++i) {
    const int family = i % 5;
    const int n = 256 + static_cast<int>(rng.next_below(1792));
    NamedMatrix nm;
    nm.name = "synthetic_" + std::to_string(i);
    const std::uint32_t s = seed + static_cast<std::uint32_t>(i) * 7919u;
    switch (family) {
      case 0:
        nm.group = "banded";
        nm.matrix = gen_banded(n, 3 + static_cast<int>(rng.next_below(30)),
                               0.1 + 0.8 * rng.next_unit(), (i % 2) == 0, s);
        break;
      case 1:
        nm.group = "fem";
        nm.matrix = gen_block_fem(n, 2 + static_cast<int>(rng.next_below(7)),
                                  3 + static_cast<int>(rng.next_below(10)),
                                  8 + static_cast<int>(rng.next_below(40)), s);
        break;
      case 2: {
        nm.group = "lattice";
        const int l = 2 + static_cast<int>(rng.next_below(4));
        nm.matrix = gen_lattice4d(l, l, l, l, 1 + static_cast<int>(rng.next_below(3)), s);
        break;
      }
      case 3:
        nm.group = "random";
        nm.matrix = gen_random_uniform(n, 2 + static_cast<int>(rng.next_below(40)), s);
        break;
      default:
        nm.group = "powerlaw";
        nm.matrix = gen_powerlaw(n, 2.0 + 20.0 * rng.next_unit(),
                                 0.6 + rng.next_unit(), s);
        break;
    }
    corpus.push_back(std::move(nm));
  }
  return corpus;
}

}  // namespace cubie::sparse
