# Empty dependencies file for ablation_variability.
# This may be replaced when dependencies are built.
