#include "common/rng.hpp"

namespace cubie::common {

std::uint32_t Lcg::next_raw() {
  // Schrage's method avoids 64-bit overflow; kept in 64-bit for clarity.
  constexpr std::uint64_t kA = 16807;
  constexpr std::uint64_t kM = 2147483647;  // 2^31 - 1 (Mersenne prime)
  state_ = static_cast<std::uint32_t>((kA * state_) % kM);
  if (state_ == 0) state_ = 1;
  return state_;
}

double Lcg::next_unit() {
  constexpr double kInvM = 1.0 / 2147483647.0;
  return static_cast<double>(next_raw()) * kInvM;
}

double Lcg::next_linpack() { return 4.0 * next_unit() - 2.0; }

std::uint32_t Lcg::next_below(std::uint32_t bound) {
  if (bound == 0) return 0;
  return next_raw() % bound;
}

std::vector<double> random_vector(std::size_t n, std::uint32_t seed) {
  return random_vector(n, -2.0, 2.0, seed);
}

std::vector<double> random_vector(std::size_t n, double lo, double hi,
                                  std::uint32_t seed) {
  Lcg rng(seed);
  std::vector<double> v(n);
  const double span = hi - lo;
  for (auto& x : v) x = lo + span * rng.next_unit();
  return v;
}

}  // namespace cubie::common
