// Error metrics and summary statistics (paper Section 8 definitions).

#include "common/metrics.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace cubie {
namespace {

TEST(ErrorStats, MatchesPaperDefinitions) {
  const std::vector<double> gpu = {1.0, 2.5, 3.0};
  const std::vector<double> cpu = {1.0, 2.0, 4.0};
  const auto s = common::error_stats(gpu, cpu);
  EXPECT_DOUBLE_EQ(s.avg, (0.0 + 0.5 + 1.0) / 3.0);
  EXPECT_DOUBLE_EQ(s.max, 1.0);
  EXPECT_EQ(s.n, 3u);
}

TEST(ErrorStats, IdenticalInputsGiveZero) {
  const std::vector<double> v = {1.0, -2.0, 3.5};
  const auto s = common::error_stats(v, v);
  EXPECT_EQ(s.avg, 0.0);
  EXPECT_EQ(s.max, 0.0);
}

TEST(ErrorStats, EmptyIsZero) {
  const std::vector<double> v;
  const auto s = common::error_stats(v, v);
  EXPECT_EQ(s.n, 0u);
  EXPECT_EQ(s.avg, 0.0);
}

TEST(Geomean, KnownValues) {
  const std::vector<double> v = {1.0, 100.0};
  EXPECT_NEAR(common::geomean(v), 10.0, 1e-12);
  const std::vector<double> one = {7.0};
  EXPECT_NEAR(common::geomean(one), 7.0, 1e-12);
  EXPECT_EQ(common::geomean(std::vector<double>{}), 0.0);
}

TEST(Mean, KnownValues) {
  const std::vector<double> v = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(common::mean(v), 2.0);
}

TEST(RelL2Error, ZeroForIdentical) {
  const std::vector<double> v = {3.0, 4.0};
  EXPECT_EQ(common::rel_l2_error(v, v), 0.0);
}

TEST(RelL2Error, KnownValue) {
  const std::vector<double> a = {3.0, 0.0};
  const std::vector<double> b = {0.0, 4.0};
  // ||a-b|| = 5, ||b|| = 4.
  EXPECT_DOUBLE_EQ(common::rel_l2_error(a, b), 5.0 / 4.0);
}

}  // namespace
}  // namespace cubie
