#include "check/check.hpp"

#include "telemetry/telemetry.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <map>
#include <ostream>
#include <tuple>
#include <utility>

namespace cubie::check {
namespace {

std::string fold(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s)
    out.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  return out;
}

// Map a double onto a monotonically ordered integer line so that the
// difference of two mapped values counts the representable doubles between
// them (the classic ULP trick; -0.0 maps next to +0.0).
std::int64_t ordered_bits(double x) {
  std::int64_t i;
  std::memcpy(&i, &x, sizeof(i));
  return i < 0 ? std::numeric_limits<std::int64_t>::min() - i : i;
}

}  // namespace

double ulp_distance(double a, double b) {
  if (a == b) return 0.0;  // covers +0 vs -0 and equal infinities
  if (std::isnan(a) || std::isnan(b))
    return std::numeric_limits<double>::infinity();
  const std::int64_t ra = ordered_bits(a), rb = ordered_bits(b);
  // Two's-complement subtraction in unsigned space avoids signed overflow.
  const std::uint64_t d =
      ra > rb ? static_cast<std::uint64_t>(ra) - static_cast<std::uint64_t>(rb)
              : static_cast<std::uint64_t>(rb) - static_cast<std::uint64_t>(ra);
  return static_cast<double>(d);
}

Tolerance tolerance_for(const core::Workload& w) {
  // BFS values are per-vertex traversal levels — no floating-point
  // arithmetic, so every variant must agree exactly.
  if (!w.is_floating_point()) return Tolerance{};
  // Absolute-error floors derived from Table 6 (table06_accuracy at
  // scales 4-16): the differential variant-vs-baseline error is bounded by
  // the sum of both columns' max error vs the CPU reference; the floors
  // below carry ~50-100x headroom over that bound. The relative and ULP
  // gates are shared: variants must agree to 9 significant digits OR be
  // within the absolute floor OR within 1e6 representable doubles.
  static const std::map<std::string, double> abs_floor = {
      {"gemm", 2e-11},       // 2.49e-13 + 7.82e-14
      {"pic", 1e-13},        // vs CPU-serial: 1.78e-15
      {"fft", 5e-11},        // 3.41e-13 + 3.98e-13
      {"stencil", 1e-13},    // 6.66e-16 + 6.66e-16
      {"scan", 1e-11},       // 7.82e-14 + 7.82e-14
      {"reduction", 1e-11},  // 7.11e-14 + 7.11e-14
      {"gemv", 1e-12},       // 7.11e-15 + 7.11e-15
      {"spmv", 1e-11},       // 7.11e-14 + 8.53e-14
      {"spgemm", 1e-10},     // 1.14e-12 + 2.27e-13
  };
  Tolerance t;
  const auto it = abs_floor.find(fold(w.name()));
  t.max_abs = it != abs_floor.end() ? it->second : 1e-10;
  t.max_rel = 1e-9;
  t.max_ulp = 1e6;
  return t;
}

Verdict compare_values(const std::vector<double>& out,
                       const std::vector<double>& ref, const Tolerance& tol) {
  Verdict v;
  v.tolerance = tol;
  v.n = out.size();
  if (out.size() != ref.size()) {
    v.pass = false;
    v.reason = "size mismatch: " + std::to_string(out.size()) + " vs " +
               std::to_string(ref.size()) + " reference values";
    return v;
  }
  for (std::size_t i = 0; i < out.size(); ++i) {
    const double o = out[i], r = ref[i];
    const bool o_fin = std::isfinite(o), r_fin = std::isfinite(r);
    if (!o_fin || !r_fin) {
      if (std::isnan(o)) ++v.census.out_nan;
      else if (!o_fin) ++v.census.out_inf;
      if (std::isnan(r)) ++v.census.ref_nan;
      else if (!r_fin) ++v.census.ref_inf;
      // Matched non-finites (NaN vs NaN, same-signed Inf) conform; any
      // other combination is a violation regardless of tolerances.
      const bool matched =
          !o_fin && !r_fin &&
          ((std::isnan(o) && std::isnan(r)) ||
           (std::isinf(o) && std::isinf(r) &&
            std::signbit(o) == std::signbit(r)));
      if (!matched) {
        ++v.census.mismatched;
        ++v.violations;
      }
      continue;
    }
    const double abs_err = std::fabs(o - r);
    const double rel_err =
        r != 0.0 ? abs_err / std::fabs(r)
                 : (o == 0.0 ? 0.0 : std::numeric_limits<double>::infinity());
    const double ulp = ulp_distance(o, r);
    v.max_abs_err = std::max(v.max_abs_err, abs_err);
    v.max_rel_err = std::max(v.max_rel_err, rel_err);
    v.max_ulp = std::max(v.max_ulp, ulp);
    // Each gate is an independent excuse: only exceeding all three fails.
    if (abs_err > tol.max_abs && rel_err > tol.max_rel && ulp > tol.max_ulp)
      ++v.violations;
  }
  if (v.violations > 0) {
    v.pass = false;
    v.reason = std::to_string(v.violations) + " element(s) beyond tolerance";
    if (v.census.mismatched > 0)
      v.reason += " (" + std::to_string(v.census.mismatched) +
                  " mismatched non-finite)";
  }
  return v;
}

namespace {

// One (workload, case, scale) group of cells awaiting a verdict.
struct Group {
  const core::Workload* workload = nullptr;
  core::TestCase test_case;
  int scale = 1;
  std::vector<core::Variant> variants;
};

std::string group_key(const std::string& workload, const core::TestCase& tc,
                      int scale) {
  std::string k = workload;
  k += '|';
  k += tc.label;
  k += '|';
  k += tc.dataset;
  k += "|dims=";
  for (std::size_t i = 0; i < tc.dims.size(); ++i) {
    if (i) k += ',';
    k += std::to_string(tc.dims[i]);
  }
  k += "|s";
  k += std::to_string(scale);
  return k;
}

std::vector<double> perturbed(const std::vector<double>& values,
                              double perturb) {
  if (perturb == 0.0) return values;
  std::vector<double> out = values;
  for (double& v : out)
    if (std::isfinite(v)) v *= 1.0 + perturb;
  return out;
}

int variant_rank(const std::string& name) {
  if (name == "Baseline") return 0;
  if (name == "TC") return 1;
  if (name == "CC") return 2;
  return 3;  // CC-E and anything future
}

}  // namespace

ConformanceReport verify_cells(engine::ExperimentEngine& eng,
                               const std::vector<engine::Cell>& cells,
                               double perturb) {
  // Group cells by (workload, case, scale), preserving first-seen order.
  std::map<std::string, Group> groups;
  std::vector<std::string> order;
  for (const auto& c : cells) {
    if (c.workload == nullptr) continue;
    const std::string gk = group_key(c.workload->name(), c.test_case, c.scale);
    auto [it, inserted] = groups.try_emplace(gk);
    if (inserted) {
      it->second.workload = c.workload;
      it->second.test_case = c.test_case;
      it->second.scale = c.scale;
      order.push_back(gk);
    }
    auto& vs = it->second.variants;
    if (std::find(vs.begin(), vs.end(), c.variant) == vs.end())
      vs.push_back(c.variant);
  }

  ConformanceReport rep;
  rep.groups = order.size();
  for (const auto& gk : order) {
    const Group& g = groups.at(gk);
    const core::Workload& w = *g.workload;
    const Tolerance tol = tolerance_for(w);

    // The group's reference: the Baseline variant when the workload has
    // one (memoized through the engine like any cell), the CPU serial
    // ground truth otherwise.
    std::vector<double> ref;
    std::string ref_name;
    if (w.has_baseline()) {
      ref = eng.run(w, core::Variant::Baseline, g.test_case, g.scale).values;
      ref_name = "Baseline";
    } else {
      ref = w.reference(g.test_case);
      ref_name = "CPU-serial";
    }

    auto add_verdict = [&](core::Variant v, const std::vector<double>& out,
                           const std::vector<double>& target,
                           const std::string& target_name,
                           const Tolerance& t) {
      Verdict verdict = compare_values(out, target, t);
      verdict.workload = w.name();
      verdict.variant = core::variant_name(v);
      verdict.reference = target_name;
      verdict.case_label = g.test_case.label;
      verdict.scale = g.scale;
      if (!verdict.pass) ++rep.violations;
      rep.verdicts.push_back(std::move(verdict));
    };

    for (core::Variant v : g.variants) {
      if (v == core::Variant::Baseline) continue;  // it IS the reference
      const auto out =
          perturbed(eng.run(w, v, g.test_case, g.scale).values, perturb);
      add_verdict(v, out, ref, ref_name, tol);
    }

    // The construction invariant: TC and CC are numerically identical
    // (Section 5.2) — judged bit-exactly whenever both are present.
    const auto& vs = g.variants;
    const bool has_tc =
        std::find(vs.begin(), vs.end(), core::Variant::TC) != vs.end();
    const bool has_cc =
        std::find(vs.begin(), vs.end(), core::Variant::CC) != vs.end();
    if (has_tc && has_cc) {
      const auto tc_out = perturbed(
          eng.run(w, core::Variant::TC, g.test_case, g.scale).values, perturb);
      const auto cc_out = perturbed(
          eng.run(w, core::Variant::CC, g.test_case, g.scale).values, perturb);
      add_verdict(core::Variant::CC, cc_out, tc_out, "TC", exact_tolerance());
    }
  }

  // Deterministic output order regardless of execution schedule.
  std::sort(rep.verdicts.begin(), rep.verdicts.end(),
            [](const Verdict& a, const Verdict& b) {
              return std::tie(a.workload, a.case_label, a.scale) <
                         std::tie(b.workload, b.case_label, b.scale) ||
                     (std::tie(a.workload, a.case_label, a.scale) ==
                          std::tie(b.workload, b.case_label, b.scale) &&
                      std::make_tuple(variant_rank(a.variant), a.reference) <
                          std::make_tuple(variant_rank(b.variant),
                                          b.reference));
            });
  // Emit verdict events in the sorted order so the event stream is as
  // deterministic as the report itself.
  if (auto& bus = telemetry::bus(); bus.enabled()) {
    for (const auto& v : rep.verdicts) {
      telemetry::Event e;
      e.kind = telemetry::EventKind::CheckVerdict;
      e.name = v.key();
      e.ok = v.pass ? 1 : 0;
      e.detail = v.reason;
      bus.emit(std::move(e));
    }
  }
  return rep;
}

ConformanceReport verify_plan(engine::ExperimentEngine& eng,
                              const engine::Plan& plan, double perturb) {
  const auto cells = eng.expand(plan);
  eng.execute(cells);
  return verify_cells(eng, cells, perturb);
}

ConformanceReport verify_report(engine::ExperimentEngine& eng) {
  std::vector<engine::Cell> cells;
  for (const auto& m : eng.materialized()) {
    const core::Workload* w = eng.workload(m.workload);
    if (w == nullptr) continue;  // caller-owned workload: not verifiable
    engine::Cell c;
    c.workload = w;
    c.variant = m.variant;
    c.test_case = m.test_case;
    c.scale = m.scale;
    c.key = m.key;
    cells.push_back(std::move(c));
  }
  return verify_cells(eng, cells);
}

common::Table ConformanceReport::to_table() const {
  common::Table t({"Workload", "Variant", "vs", "Case", "n", "max_abs",
                   "max_rel", "max_ulp", "nonfinite", "verdict"});
  for (const auto& v : verdicts) {
    std::string nonfinite = "-";
    const std::size_t nf = v.census.out_nan + v.census.out_inf;
    if (nf > 0 || v.census.mismatched > 0) {
      nonfinite = std::to_string(nf);
      if (v.census.mismatched > 0)
        nonfinite += " (" + std::to_string(v.census.mismatched) +
                     " mismatched)";
    }
    t.add_row({v.workload, v.variant, v.reference, v.case_label,
               std::to_string(v.n), common::fmt_sci(v.max_abs_err),
               common::fmt_sci(v.max_rel_err), common::fmt_sci(v.max_ulp),
               nonfinite, v.pass ? "PASS" : "FAIL: " + v.reason});
  }
  return t;
}

void ConformanceReport::print_summary(std::ostream& os) const {
  os << "cubie-check: " << verdicts.size() << " verdict(s) over " << groups
     << " group(s), " << violations << " violation(s)\n";
}

report::MetricsReport ConformanceReport::to_metrics_report(
    const std::string& tool, const std::string& title,
    int scale_divisor) const {
  report::MetricsReport rep;
  rep.tool = tool;
  rep.title = title;
  rep.scale_divisor = scale_divisor;
  for (const auto& v : verdicts) {
    // The gpu slot carries the comparison reference: conformance is
    // device-independent, and (workload, variant, gpu, case) keys must stay
    // unique when one variant is judged against two references (Baseline
    // and the TC invariant).
    auto& rec =
        rep.add_record(v.workload, v.variant, "vs " + v.reference,
                       v.case_label);
    rec.set("n", static_cast<double>(v.n));
    rec.set("max_abs_err", v.max_abs_err);
    rec.set("max_rel_err", v.max_rel_err);
    rec.set("max_ulp", v.max_ulp);
    rec.set("violations", static_cast<double>(v.violations));
    rec.set("nonfinite",
            static_cast<double>(v.census.out_nan + v.census.out_inf));
    rec.set("nonfinite_mismatched",
            static_cast<double>(v.census.mismatched));
    rec.set("tol_abs", v.tolerance.max_abs);
    rec.set("tol_rel", v.tolerance.max_rel);
    rec.set("tol_ulp", v.tolerance.max_ulp);
    rec.set("pass", v.pass ? 1.0 : 0.0);
  }
  const common::Table t = to_table();
  rep.tables.push_back({"conformance", t.header(), t.data()});
  return rep;
}

}  // namespace cubie::check
