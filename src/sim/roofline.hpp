#pragma once
// Cache-aware roofline model (Figure 9): ceilings for DRAM bandwidth, L1
// bandwidth, and FP64 peak throughput of tensor and CUDA cores, plus the
// mapping of a measured (AI, GFLOP/s) point against those ceilings.

#include "sim/device.hpp"
#include "sim/model.hpp"
#include "sim/profile.hpp"

#include <string>
#include <vector>

namespace cubie::sim {

struct RooflinePoint {
  std::string label;            // "SpMV/TC" etc.
  double arithmetic_intensity;  // useful FLOPs / DRAM byte
  double achieved_flops;        // useful FLOPs / predicted second
  double attainable_flops;      // min(peak, AI * BW): the roofline ceiling
};

class Roofline {
 public:
  explicit Roofline(const DeviceSpec& spec) : spec_(&spec) {}

  // Ceiling value at a given arithmetic intensity for each roof.
  double dram_roof(double ai) const;
  double l1_roof(double ai) const;
  double tc_peak() const { return spec_->fp64_tc_peak; }
  double cc_peak() const { return spec_->fp64_cc_peak; }

  // Attainable performance = min(TC peak, AI * DRAM bandwidth).
  double attainable(double ai) const;

  // Build a labeled point from a profile and its prediction.
  RooflinePoint point(const std::string& label, const KernelProfile& prof,
                      const Prediction& pred) const;

  // The AI where the DRAM roof meets the TC peak (machine balance).
  double ridge_ai() const;

 private:
  const DeviceSpec* spec_;
};

}  // namespace cubie::sim
