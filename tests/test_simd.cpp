// Scalar-vs-SIMD bit identity of the MMA emulation hot path.
//
// The SIMD kernels (mma/simd.hpp) may only vectorize ACROSS the independent
// output accumulators of a tile, never across k, so every output element's
// serial FMA chain - and therefore every bit of `cubie check`, the Table 6
// goldens, and the recorded analytic-backend goldens - is preserved. These
// tests pin that contract with randomized fragments salted with the
// adversarial values (NaN, +/-Inf, subnormals, -0, FP16-overflow
// magnitudes) against the always-available scalar table, at both the raw
// kernel level and the public Context / hmma / warp entry points.
//
// NaN payloads are canonical (quiet_NaN()): x86 FMA forms differ in which
// operand's payload propagates when several *distinct* NaNs meet, which is
// outside the bit-exactness contract (and unobservable through the suite's
// payload-insensitive NaN handling).
//
// Ordering note: gtest_discover_tests runs every TEST in its own process,
// so force_scalar_for_testing cannot leak between tests.

#include "common/rng.hpp"
#include "mma/half.hpp"
#include "mma/mma.hpp"
#include "mma/simd.hpp"
#include "mma/warp.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

namespace {

using namespace cubie;

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }
std::uint32_t bits(float v) { return std::bit_cast<std::uint32_t>(v); }

// Random operands salted with adversarial values at rotating positions.
void fill_adversarial(double* p, int n, std::uint64_t seed) {
  static const double kSpecials[] = {
      std::numeric_limits<double>::quiet_NaN(),
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::denorm_min(),
      -4.9406564584124654e-324,
      std::numeric_limits<double>::min(),
      -0.0,
      1e308,   // Inf * finite and Inf + -Inf paths
      -1e308,
      65504.0,  // FP16 max: overflow boundary for the half-rounded kernels
      131072.0,
      6.103515625e-05,  // FP16 min normal
      5.960464477539063e-08,  // FP16 denorm_min
  };
  common::Lcg rng(seed);
  for (int i = 0; i < n; ++i) p[i] = rng.next_linpack() * 2.0 - 1.0;
  // Scatter specials with a seed-dependent stride so different trials put
  // them in different chain positions.
  const int stride = 3 + static_cast<int>(seed % 7);
  int s = 0;
  for (int i = static_cast<int>(seed % static_cast<std::uint64_t>(stride));
       i < n; i += stride) {
    p[i] = kSpecials[s++ % (sizeof(kSpecials) / sizeof(kSpecials[0]))];
  }
}

TEST(Simd, DispatchReportsAConsistentState) {
  const auto isa = mma::simd::active_isa();
  EXPECT_NE(mma::simd::isa_name(isa), nullptr);
  if (!mma::simd::compiled_with_simd()) {
    EXPECT_EQ(isa, mma::simd::Isa::Scalar);
  }
  // The scalar table is always available and is its own fixed point.
  EXPECT_NE(mma::simd::scalar_kernels().dmma_m8n8k4, nullptr);
}

TEST(Simd, ForceScalarHookSelectsTheScalarTable) {
  mma::simd::force_scalar_for_testing(true);
  EXPECT_EQ(mma::simd::active_isa(), mma::simd::Isa::Scalar);
  EXPECT_EQ(mma::simd::kernels().dmma_m8n8k4,
            mma::simd::scalar_kernels().dmma_m8n8k4);
  mma::simd::force_scalar_for_testing(false);
#if defined(__x86_64__)
  if (mma::simd::compiled_with_simd() && !mma::simd::scalar_forced_by_env() &&
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    // On AVX2 hardware the auto-detected path must actually be vectorized,
    // otherwise the whole suite silently runs scalar (the CI dispatch
    // assertion runs this test on both the SIMD and the no-AVX legs).
    EXPECT_NE(mma::simd::active_isa(), mma::simd::Isa::Scalar);
  }
#endif
}

// Every vector table this host can execute, not just the one dispatch
// picks: an AVX-512 host also runs (and therefore pins) the AVX2 table.
std::vector<std::pair<mma::simd::Isa, const mma::simd::Kernels*>>
runnable_vector_tables() {
  std::vector<std::pair<mma::simd::Isa, const mma::simd::Kernels*>> out;
  for (auto isa : {mma::simd::Isa::Avx2, mma::simd::Isa::Avx512}) {
    if (const auto* t = mma::simd::compiled_kernels(isa)) out.push_back({isa, t});
  }
  return out;
}

TEST(Simd, DmmaKernelBitIdenticalToScalar) {
  for (const auto& [isa, table] : runnable_vector_tables()) {
    for (std::uint64_t trial = 0; trial < 200; ++trial) {
      double a[32], b[32], c[64], d_simd[64], d_scalar[64];
      fill_adversarial(a, 32, trial * 4 + 1);
      fill_adversarial(b, 32, trial * 4 + 2);
      fill_adversarial(c, 64, trial * 4 + 3);
      table->dmma_m8n8k4(a, b, c, d_simd);
      mma::simd::scalar_kernels().dmma_m8n8k4(a, b, c, d_scalar);
      for (int i = 0; i < 64; ++i) {
        ASSERT_EQ(bits(d_simd[i]), bits(d_scalar[i]))
            << mma::simd::isa_name(isa) << " trial " << trial << " element " << i;
      }
      // Aliased accumulate (d == c), the GEMM inner-loop form.
      double c_simd[64], c_scalar[64];
      for (int i = 0; i < 64; ++i) c_simd[i] = c_scalar[i] = c[i];
      table->dmma_m8n8k4(a, b, c_simd, c_simd);
      mma::simd::scalar_kernels().dmma_m8n8k4(a, b, c_scalar, c_scalar);
      for (int i = 0; i < 64; ++i) {
        ASSERT_EQ(bits(c_simd[i]), bits(c_scalar[i]))
            << mma::simd::isa_name(isa) << " aliased trial " << trial
            << " element " << i;
      }
    }
  }
}

TEST(Simd, BmmaKernelBitIdenticalToScalar) {
  for (const auto& [isa, table] : runnable_vector_tables()) {
    common::Lcg rng(99);
    for (int trial = 0; trial < 200; ++trial) {
      std::uint32_t a[32], b[32], d_simd[64], d_scalar[64];
      for (auto& v : a) v = rng.next_raw();
      for (auto& v : b) v = rng.next_raw();
      // Nonzero starting accumulators: the kernel is +=.
      for (int i = 0; i < 64; ++i)
        d_simd[i] = d_scalar[i] = rng.next_raw() & 0xFFFFu;
      table->bmma_m8n8k128_acc(a, b, d_simd);
      mma::simd::scalar_kernels().bmma_m8n8k128_acc(a, b, d_scalar);
      for (int i = 0; i < 64; ++i) {
        ASSERT_EQ(d_simd[i], d_scalar[i])
            << mma::simd::isa_name(isa) << " trial " << trial << " element " << i;
      }
    }
  }
}

TEST(Simd, HmmaKernelBitIdenticalToScalar) {
  for (const auto& [isa, table] : runnable_vector_tables()) {
    for (std::uint64_t trial = 0; trial < 100; ++trial) {
      double raw_a[256], raw_b[256], raw_c[256];
      fill_adversarial(raw_a, 256, trial * 4 + 1);
      fill_adversarial(raw_b, 256, trial * 4 + 2);
      fill_adversarial(raw_c, 256, trial * 4 + 3);
      // The kernel contract takes half-rounded float operands (half.cpp
      // hoists the conversion); round here the same way, specials included -
      // FP16 overflow turns the big magnitudes into Inf operands.
      float a_h[256], b_h[256], acc_simd[256], acc_scalar[256];
      for (int i = 0; i < 256; ++i) {
        a_h[i] = static_cast<float>(mma::round_to_half(raw_a[i]));
        b_h[i] = static_cast<float>(mma::round_to_half(raw_b[i]));
        acc_simd[i] = acc_scalar[i] = static_cast<float>(raw_c[i]);
      }
      table->hmma_f32acc_tile(a_h, b_h, acc_simd);
      mma::simd::scalar_kernels().hmma_f32acc_tile(a_h, b_h, acc_scalar);
      for (int i = 0; i < 256; ++i) {
        ASSERT_EQ(bits(acc_simd[i]), bits(acc_scalar[i]))
            << mma::simd::isa_name(isa) << " trial " << trial << " element " << i;
      }
    }
  }
}

TEST(Simd, LanesFmaKernelBitIdenticalToScalar) {
  for (const auto& [isa, table] : runnable_vector_tables()) {
    for (std::uint64_t trial = 0; trial < 200; ++trial) {
      double a[32], b[32], c_simd[32], c_scalar[32];
      fill_adversarial(a, 32, trial * 4 + 1);
      fill_adversarial(b, 32, trial * 4 + 2);
      fill_adversarial(c_simd, 32, trial * 4 + 3);
      for (int i = 0; i < 32; ++i) c_scalar[i] = c_simd[i];
      table->lanes_fma32(a, b, c_simd);
      mma::simd::scalar_kernels().lanes_fma32(a, b, c_scalar);
      for (int i = 0; i < 32; ++i) {
        ASSERT_EQ(bits(c_simd[i]), bits(c_scalar[i]))
            << mma::simd::isa_name(isa) << " trial " << trial << " lane " << i;
      }
    }
  }
}

// Public entry points under the process-wide force-scalar hook: the same
// operands must produce byte-identical outputs AND identical profile event
// counts whichever table dispatch resolves.
TEST(Simd, ContextDmmaMatchesForcedScalar) {
  double a[32], b[32], c[64];
  fill_adversarial(a, 32, 7);
  fill_adversarial(b, 32, 8);
  fill_adversarial(c, 64, 9);
  double d_auto[64], d_forced[64];
  sim::KernelProfile prof_auto, prof_forced;
  {
    mma::Context ctx(mma::Pipe::TensorCore, prof_auto);
    ctx.dmma_m8n8k4(a, b, c, d_auto);
  }
  mma::simd::force_scalar_for_testing(true);
  {
    mma::Context ctx(mma::Pipe::TensorCore, prof_forced);
    ctx.dmma_m8n8k4(a, b, c, d_forced);
  }
  mma::simd::force_scalar_for_testing(false);
  for (int i = 0; i < 64; ++i) ASSERT_EQ(bits(d_auto[i]), bits(d_forced[i]));
  EXPECT_EQ(prof_auto.tc_flops, prof_forced.tc_flops);
  EXPECT_EQ(prof_auto.warp_instructions, prof_forced.warp_instructions);
}

TEST(Simd, HmmaEntryPointMatchesForcedScalar) {
  double a[256], b[256], c[256], d_auto[256], d_forced[256];
  fill_adversarial(a, 256, 11);
  fill_adversarial(b, 256, 12);
  fill_adversarial(c, 256, 13);
  mma::hmma_m16n16k16_f32acc(a, b, c, d_auto);
  mma::simd::force_scalar_for_testing(true);
  mma::hmma_m16n16k16_f32acc(a, b, c, d_forced);
  mma::simd::force_scalar_for_testing(false);
  for (int i = 0; i < 256; ++i) ASSERT_EQ(bits(d_auto[i]), bits(d_forced[i]));
}

TEST(Simd, WarpCcMmaMatchesForcedScalar) {
  double a[32], b[32], c[64];
  fill_adversarial(a, 32, 17);
  fill_adversarial(b, 32, 18);
  fill_adversarial(c, 64, 19);
  auto regs_auto = mma::load_fragments(a, b, c);
  const auto stats_auto = mma::cc_mma_m8n8k4(regs_auto);
  mma::simd::force_scalar_for_testing(true);
  auto regs_forced = mma::load_fragments(a, b, c);
  const auto stats_forced = mma::cc_mma_m8n8k4(regs_forced);
  mma::simd::force_scalar_for_testing(false);
  EXPECT_EQ(stats_auto.fma_instructions, stats_forced.fma_instructions);
  EXPECT_EQ(stats_auto.shuffle_instructions, stats_forced.shuffle_instructions);
  double d_auto[64], d_forced[64];
  mma::store_fragments(regs_auto, d_auto);
  mma::store_fragments(regs_forced, d_forced);
  for (int i = 0; i < 64; ++i) ASSERT_EQ(bits(d_auto[i]), bits(d_forced[i]));
}

TEST(Simd, Fp16GemmMatchesForcedScalar) {
  // Non-multiple-of-16 dimensions also cover the zero-padded edge tiles.
  const int m = 17, n = 23, k = 19;
  std::vector<double> a(static_cast<std::size_t>(m) * k);
  std::vector<double> b(static_cast<std::size_t>(k) * n);
  fill_adversarial(a.data(), m * k, 21);
  fill_adversarial(b.data(), k * n, 22);
  std::vector<double> c_auto(static_cast<std::size_t>(m) * n, 0.0);
  std::vector<double> c_forced(static_cast<std::size_t>(m) * n, 0.0);
  mma::gemm_fp16_tc(m, n, k, a.data(), b.data(), c_auto.data());
  mma::simd::force_scalar_for_testing(true);
  mma::gemm_fp16_tc(m, n, k, a.data(), b.data(), c_forced.data());
  mma::simd::force_scalar_for_testing(false);
  for (int i = 0; i < m * n; ++i) {
    ASSERT_EQ(bits(c_auto[static_cast<std::size_t>(i)]),
              bits(c_forced[static_cast<std::size_t>(i)]))
        << "element " << i;
  }
}

}  // namespace
