#pragma once
// KernelProfile: the event record produced by functionally executing a
// kernel variant on the simulator. It is the contract between the workload
// implementations (which count work while computing real results) and the
// analytic DeviceModel / PowerModel (which map counted work to predicted
// time, power, and energy on a given GPU model).
//
// The split mirrors how the paper separates *what a kernel does* (FLOPs per
// pipe, bytes moved, instructions issued — observable with NCU) from *how
// fast a GPU runs it* (Table 5 peak rates and bandwidths).

#include <cstddef>
#include <string_view>

namespace cubie::sim {

// How a kernel variant walks global memory, at the granularity the cachesim
// device-model backend needs to synthesize a representative address stream
// (src/sim/cachesim/). The analytic backend ignores it; workloads set it
// alongside the mem_eff hint so the same counted profile can be priced by
// either backend.
enum class AccessPattern {
  Dense,      // fully coalesced sequential sweeps (MMU tile layouts, cuBLAS)
  Strided,    // regular but non-unit stride (grid/stencil halos, two-pass CUB)
  Irregular,  // data-dependent indirection (CSR gathers, hash probes, BFS)
};

inline const char* access_pattern_name(AccessPattern p) {
  switch (p) {
    case AccessPattern::Dense: return "dense";
    case AccessPattern::Strided: return "strided";
    case AccessPattern::Irregular: return "irregular";
  }
  return "?";
}

// Inverse of access_pattern_name; unknown names map to Dense (the neutral
// default, matching a freshly constructed profile).
inline AccessPattern access_pattern_from_name(std::string_view name) {
  if (name == "strided") return AccessPattern::Strided;
  if (name == "irregular") return AccessPattern::Irregular;
  return AccessPattern::Dense;
}

struct KernelProfile {
  // --- Work, by execution pipe -------------------------------------------
  double tc_flops = 0.0;   // FP64 FLOPs executed on the tensor-core pipe
  double cc_flops = 0.0;   // FP64 FLOPs executed on the CUDA-core pipe
  double tc_bitops = 0.0;  // single-bit MMA ops (BFS; AND+popc counted as 2)
  double cc_intops = 0.0;  // CUDA-core integer/logic ops (bitmap baselines)

  // --- Memory traffic ------------------------------------------------------
  double dram_bytes = 0.0;  // global-memory traffic after cache filtering
  double smem_bytes = 0.0;  // shared-memory / L1 traffic

  // --- Instruction issue ---------------------------------------------------
  double warp_instructions = 0.0;  // total warp-level instructions issued

  // --- Shape of the launch -------------------------------------------------
  double threads = 0.0;  // total resident threads (parallelism proxy)
  int launches = 0;      // number of kernel launches (grid-level barriers)

  // --- Efficiency hints (set by the kernel, documented in calibration.hpp)
  double mem_eff = 1.0;   // achieved fraction of peak DRAM bandwidth
  double pipe_eff = 1.0;  // achieved fraction of peak FLOP rate

  // --- Access-pattern descriptor (consumed by the cachesim backend) -------
  AccessPattern access = AccessPattern::Dense;
  // Distinct global-memory footprint the kernel revisits (bytes). 0 means
  // "unknown": the cachesim treats the stream as pure streaming (every line
  // touched once), which is the conservative no-reuse assumption.
  double working_set_bytes = 0.0;

  // --- Reporting metadata ---------------------------------------------------
  // "Useful" FLOPs from the algorithm's point of view (excludes redundancy
  // introduced to fit the MMA shape). Drives Figure 3 throughput and the
  // Figure 9 roofline arithmetic intensity, matching the paper's convention.
  double useful_flops = 0.0;

  KernelProfile& operator+=(const KernelProfile& o) {
    // Efficiency hints are not additive: a merged profile achieves each
    // side's efficiency only on that side's share of the work. Merge as
    // work-weighted averages — DRAM traffic weights the memory efficiency,
    // executed pipe ops weight the pipe efficiency — so a multi-launch
    // kernel reports the efficiency of where its bytes/FLOPs actually went
    // instead of whichever launch happened to be recorded last. Weights are
    // taken before the counters are summed.
    const double mw_self = dram_bytes, mw_o = o.dram_bytes;
    if (mw_self + mw_o > 0.0) {
      mem_eff = (mem_eff * mw_self + o.mem_eff * mw_o) / (mw_self + mw_o);
    } else if (o.mem_eff != 1.0) {
      mem_eff = o.mem_eff;
    }
    const double pw_self = total_pipe_ops(), pw_o = o.total_pipe_ops();
    if (pw_self + pw_o > 0.0) {
      pipe_eff = (pipe_eff * pw_self + o.pipe_eff * pw_o) / (pw_self + pw_o);
    } else if (o.pipe_eff != 1.0) {
      pipe_eff = o.pipe_eff;
    }
    // Access descriptor: the pattern follows the side that moves more DRAM
    // traffic (same weighting as mem_eff); footprints take the max, since
    // successive launches of one kernel revisit the same arrays far more
    // often than they touch disjoint ones.
    if (mw_o > mw_self) access = o.access;
    working_set_bytes = working_set_bytes > o.working_set_bytes
                            ? working_set_bytes
                            : o.working_set_bytes;
    tc_flops += o.tc_flops;
    cc_flops += o.cc_flops;
    tc_bitops += o.tc_bitops;
    cc_intops += o.cc_intops;
    dram_bytes += o.dram_bytes;
    smem_bytes += o.smem_bytes;
    warp_instructions += o.warp_instructions;
    threads += o.threads;
    launches += o.launches;
    useful_flops += o.useful_flops;
    return *this;
  }

  double total_flops() const { return tc_flops + cc_flops; }

  // All ops executed on a compute pipe (FP, bit-MMA, and integer work);
  // the weight used when merging pipe_eff across launches.
  double total_pipe_ops() const {
    return tc_flops + cc_flops + tc_bitops + cc_intops;
  }

  // Arithmetic intensity (useful FLOPs per DRAM byte), the x-axis of the
  // cache-aware roofline in Figure 9.
  double arithmetic_intensity() const {
    return dram_bytes > 0.0 ? useful_flops / dram_bytes : 0.0;
  }
};

}  // namespace cubie::sim
