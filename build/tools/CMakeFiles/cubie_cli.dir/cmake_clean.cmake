file(REMOVE_RECURSE
  "CMakeFiles/cubie_cli.dir/cubie_cli.cpp.o"
  "CMakeFiles/cubie_cli.dir/cubie_cli.cpp.o.d"
  "cubie"
  "cubie.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cubie_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
