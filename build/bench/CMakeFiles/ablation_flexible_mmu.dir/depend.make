# Empty dependencies file for ablation_flexible_mmu.
# This may be replaced when dependencies are built.
