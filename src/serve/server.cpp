#include "serve/server.hpp"

#include "sim/model_registry.hpp"
#include "telemetry/flight.hpp"
#include "telemetry/metrics_registry.hpp"
#include "telemetry/sinks.hpp"
#include "telemetry/slowlog.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace_context.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace cubie::serve {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// One client connection. The fd is owned here and closed by the destructor,
// so a worker holding a Job's shared_ptr can still respond after the reader
// thread has gone away (client half-closed) without racing fd reuse.
struct Conn {
  explicit Conn(int fd) : fd(fd) {}
  ~Conn() {
    if (fd >= 0) ::close(fd);
  }
  Conn(const Conn&) = delete;
  Conn& operator=(const Conn&) = delete;

  // Write one response line (+ '\n'). Serialized per connection so two
  // workers finishing requests from the same client never interleave
  // bytes. Returns false once the peer is gone (EPIPE et al.).
  bool send_line(const std::string& line) {
    std::lock_guard<std::mutex> lk(write_mu);
    std::string framed = line;
    framed.push_back('\n');
    std::size_t off = 0;
    while (off < framed.size()) {
      const ssize_t n = ::send(fd, framed.data() + off, framed.size() - off,
                               MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  int fd;
  std::mutex write_mu;
};

struct Job {
  std::shared_ptr<Conn> conn;
  Request req;
  std::string key;  // request_key(req), reused for every lifecycle event
  Clock::time_point deadline{};
  bool has_deadline = false;
  // Cubie-Flight: the context the request runs under — the client's trace
  // id when it supplied one (then also echoed in the response), or a
  // daemon-minted id so legacy requests still correlate in the event
  // stream, the flight ring, and the slowlog.
  telemetry::TraceContext trace;
};

void emit_request_event(telemetry::EventKind kind, const Job& job,
                        std::size_t count = 0, double wall_s = -1.0,
                        const char* code = nullptr, int ok = -1) {
  auto& bus = telemetry::bus();
  if (!bus.enabled()) return;
  telemetry::Event e;
  e.kind = kind;
  e.name = job.key;
  e.detail = job.req.id;
  e.request_id = job.req.id;
  e.trace_id = job.trace.trace_id;
  e.span_id = job.trace.span_id;
  e.count = count;
  e.wall_s = wall_s;
  if (code != nullptr) e.source = code;
  e.ok = ok;
  bus.emit(std::move(e));
}

}  // namespace

report::Json to_json(const ServerStats& s) {
  using report::Json;
  Json j = Json::object();
  j["connections"] = Json::number(static_cast<double>(s.connections));
  j["accepted"] = Json::number(static_cast<double>(s.accepted));
  j["started"] = Json::number(static_cast<double>(s.started));
  j["completed"] = Json::number(static_cast<double>(s.completed));
  j["rejected_overloaded"] =
      Json::number(static_cast<double>(s.rejected_overloaded));
  j["rejected_deadline"] =
      Json::number(static_cast<double>(s.rejected_deadline));
  j["rejected_shutdown"] =
      Json::number(static_cast<double>(s.rejected_shutdown));
  j["bad_requests"] = Json::number(static_cast<double>(s.bad_requests));
  j["max_queue_depth"] = Json::number(static_cast<double>(s.max_queue_depth));
  j["uptime_s"] = Json::number(s.uptime_s);
  Json rej = Json::object();
  rej["overloaded"] = Json::number(static_cast<double>(s.rejected_overloaded));
  rej["deadline_exceeded"] =
      Json::number(static_cast<double>(s.rejected_deadline));
  rej["shutting_down"] =
      Json::number(static_cast<double>(s.rejected_shutdown));
  rej["bad_request"] = Json::number(static_cast<double>(s.bad_requests));
  j["rejections"] = std::move(rej);
  return j;
}

struct Server::Impl {
  explicit Impl(ServerOptions o)
      : opts(std::move(o)),
        eng(opts.engine),
        registry(std::make_shared<telemetry::MetricsRegistry>()) {}

  ServerOptions opts;
  engine::ExperimentEngine eng;
  // Cubie-Pulse: the daemon-lifetime registry and the bus sink that folds
  // the event stream into it. The sink is installed in start() and removed
  // when the SinkSet (and with it the Impl) is destroyed.
  std::shared_ptr<telemetry::MetricsRegistry> registry;
  telemetry::SinkSet pulse_sinks;
  // Cubie-Flight: the always-on ring of the last N events (null when
  // flight_capacity == 0) and the slow-request tail capture (null unless
  // slowlog_path was set). Both installed alongside the MetricsSink.
  std::shared_ptr<telemetry::FlightRecorderSink> flight;
  std::shared_ptr<telemetry::SlowlogSink> slowlog;
  std::mutex flight_dump_mu;  // serializes auto-dumps to flight_dump_path
  Clock::time_point start_time{};

  int listen_fd = -1;
  int wake_rd = -1;  // self-pipe: request_shutdown() -> accept loop
  int wake_wr = -1;
  int bound_port = -1;
  std::string endpoint;
  bool started = false;

  std::atomic<bool> shutdown_flag{false};

  std::mutex mu;  // guards queue, draining, server_stats, conns, readers
  std::condition_variable cv;
  std::deque<Job> queue;
  bool draining = false;
  ServerStats server_stats;
  std::vector<std::weak_ptr<Conn>> conns;
  std::vector<std::thread> readers;
  std::vector<std::thread> workers;

  // --- admission (reader threads) ------------------------------------
  void reject(const Job& job, ErrorCode code, const std::string& msg) {
    std::size_t depth = 0;
    {
      std::lock_guard<std::mutex> lk(mu);
      // Record the queue depth observed at the moment of rejection so
      // overload diagnosis works from the event stream alone (an
      // "overloaded" rejection shows the full queue that caused it).
      depth = queue.size();
      switch (code) {
        case ErrorCode::Overloaded: ++server_stats.rejected_overloaded; break;
        case ErrorCode::DeadlineExceeded:
          ++server_stats.rejected_deadline;
          break;
        case ErrorCode::ShuttingDown: ++server_stats.rejected_shutdown; break;
        default: ++server_stats.bad_requests; break;
      }
    }
    emit_request_event(telemetry::EventKind::RequestRejected, job, depth, -1.0,
                       error_code_name(code), 0);
    job.conn->send_line(error_line(job.req.id, code, msg, job.req.trace));
  }

  void admit(Job job) {
    bool rejected = false;
    ErrorCode code = ErrorCode::Internal;
    {
      std::lock_guard<std::mutex> lk(mu);
      if (draining) {
        rejected = true;
        code = ErrorCode::ShuttingDown;
      } else if (queue.size() >= static_cast<std::size_t>(opts.queue_limit)) {
        rejected = true;
        code = ErrorCode::Overloaded;
      } else {
        ++server_stats.accepted;
        emit_request_event(telemetry::EventKind::RequestAccepted, job);
        const std::size_t depth = queue.size() + 1;
        if (depth > server_stats.max_queue_depth)
          server_stats.max_queue_depth = depth;
        emit_request_event(telemetry::EventKind::RequestQueued, job, depth);
        queue.push_back(std::move(job));
        cv.notify_one();
        return;
      }
    }
    if (rejected && code == ErrorCode::Overloaded) {
      reject(job, code,
             "admission queue full (" + std::to_string(opts.queue_limit) +
                 " waiting); retry later");
    } else {
      reject(job, ErrorCode::ShuttingDown, "server is draining");
    }
  }

  // Cubie-Flight auto-dump: an EngineError unwind writes the ring to
  // flight_dump_path so the events leading up to the failure survive even
  // if no client ever asks for them. Last dump wins (each overwrites).
  void auto_dump_flight() {
    if (!flight || opts.flight_dump_path.empty()) return;
    std::lock_guard<std::mutex> lk(flight_dump_mu);
    flight->dump_file(opts.flight_dump_path);
  }

  // --- request execution (worker threads) ----------------------------
  void handle(const Job& job) {
    const Request& r = job.req;
    switch (r.cmd) {
      case Cmd::Run:
      case Cmd::Check: {
        RunSpec spec = r.spec;
        if (r.cmd == Cmd::Check) spec.check = true;
        std::string err;
        check::ConformanceReport conf;
        std::optional<report::MetricsReport> rep;
        try {
          rep = run_report(eng, spec, &err, spec.check ? &conf : nullptr);
        } catch (const engine::EngineError& ex) {
          // The flight ring holds the events leading up to the failure —
          // dump it before answering so the history survives the unwind.
          auto_dump_flight();
          job.conn->send_line(
              error_line(r.id, ErrorCode::Internal, ex.what(), r.trace));
          return;
        } catch (const std::exception& ex) {
          job.conn->send_line(
              error_line(r.id, ErrorCode::Internal, ex.what(), r.trace));
          return;
        }
        if (!rep) {
          job.conn->send_line(
              error_line(r.id, ErrorCode::BadRequest, err, r.trace));
          return;
        }
        std::optional<bool> check_pass;
        if (spec.check) check_pass = conf.pass();
        job.conn->send_line(
            report_line(r.id, *rep, eng.stats(), check_pass, r.trace));
        return;
      }
      case Cmd::Suite: {
        if (sim::model_backend_description(r.spec.model).empty()) {
          job.conn->send_line(error_line(
              r.id, ErrorCode::BadRequest,
              "unknown model backend '" + r.spec.model + "'", r.trace));
          return;
        }
        std::optional<report::MetricsReport> rep;
        std::string shard_err;
        try {
          // A sharded suite (Cubie-Cluster fan-out) executes only its
          // assigned cells; an unsharded one is the full Figure-3 sweep.
          rep = r.cells.empty()
                    ? suite_report(eng, r.spec.scale, r.spec.model)
                    : suite_shard_report(eng, r.spec.scale, r.cells,
                                         &shard_err, r.spec.model);
        } catch (const engine::EngineError& ex) {
          auto_dump_flight();
          job.conn->send_line(
              error_line(r.id, ErrorCode::Internal, ex.what(), r.trace));
          return;
        } catch (const std::exception& ex) {
          job.conn->send_line(
              error_line(r.id, ErrorCode::Internal, ex.what(), r.trace));
          return;
        }
        if (!rep) {
          job.conn->send_line(
              error_line(r.id, ErrorCode::BadRequest, shard_err, r.trace));
          return;
        }
        job.conn->send_line(
            report_line(r.id, *rep, eng.stats(), std::nullopt, r.trace));
        return;
      }
      case Cmd::Sleep: {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(r.sleep_ms));
        report::Json body = report::Json::object();
        body["slept_ms"] = report::Json::number(r.sleep_ms);
        job.conn->send_line(ok_line(r.id, std::move(body), r.trace));
        return;
      }
      default: {  // control cmds never reach the queue
        job.conn->send_line(error_line(r.id, ErrorCode::Internal,
                                       "control command in worker", r.trace));
        return;
      }
    }
  }

  void worker_loop() {
    for (;;) {
      Job job;
      {
        std::unique_lock<std::mutex> lk(mu);
        cv.wait(lk, [&] { return !queue.empty() || draining; });
        if (queue.empty()) return;  // draining && nothing left
        job = std::move(queue.front());
        queue.pop_front();
      }
      if (job.has_deadline && Clock::now() >= job.deadline) {
        reject(job, ErrorCode::DeadlineExceeded,
               "deadline expired while queued");
        continue;
      }
      {
        std::lock_guard<std::mutex> lk(mu);
        ++server_stats.started;
      }
      // Cubie-Flight: run the whole request under its trace context, so
      // every event the engine emits on this thread — and, via the pool's
      // context propagation, on the engine's workers — carries the id.
      telemetry::TraceScope trace_scope(job.trace);
      emit_request_event(telemetry::EventKind::RequestStarted, job);
      const auto t0 = Clock::now();
      handle(job);
      {
        std::lock_guard<std::mutex> lk(mu);
        ++server_stats.completed;
      }
      // Tagged "worker" so the Pulse latency histogram only observes the
      // queued execution path (what a loadgen client reconciles against),
      // never the inline control scrapes.
      emit_request_event(telemetry::EventKind::RequestFinished, job, 0,
                         seconds_since(t0), "worker", 1);
    }
  }

  // --- control commands: answered inline by the reader ----------------
  void handle_inline(const std::shared_ptr<Conn>& conn, Job& job) {
    {
      std::lock_guard<std::mutex> lk(mu);
      ++server_stats.started;
    }
    telemetry::TraceScope trace_scope(job.trace);
    emit_request_event(telemetry::EventKind::RequestStarted, job);
    const auto t0 = Clock::now();
    switch (job.req.cmd) {
      case Cmd::Ping: {
        report::Json body = report::Json::object();
        body["pong"] = report::Json::boolean(true);
        conn->send_line(ok_line(job.req.id, std::move(body), job.req.trace));
        break;
      }
      case Cmd::Stats: {
        report::Json body = report::Json::object();
        body["engine"] = report::to_json(eng.stats());
        {
          std::lock_guard<std::mutex> lk(mu);
          ServerStats s = server_stats;
          s.uptime_s = seconds_since(start_time);
          body["server"] = to_json(s);
        }
        conn->send_line(ok_line(job.req.id, std::move(body), job.req.trace));
        break;
      }
      case Cmd::Metrics: {
        // The queued-depth gauge otherwise only moves on enqueue; refresh
        // it from the live queue so an idle scrape reads 0, a full one
        // reads queue_limit.
        {
          std::lock_guard<std::mutex> lk(mu);
          registry->gauge("cubie_queue_depth",
                          "Admission queue depth after the last enqueue.")
              .set(static_cast<double>(queue.size()));
        }
        report::Json body = report::Json::object();
        body["content_type"] =
            report::Json::string("text/plain; version=0.0.4");
        body["metrics"] =
            report::Json::string(telemetry::prometheus_text(*registry));
        conn->send_line(ok_line(job.req.id, std::move(body), job.req.trace));
        break;
      }
      case Cmd::Flight: {
        // Dump the flight ring oldest-first. Answered inline (like a
        // scrape): the recent history must be retrievable exactly when
        // the workers are wedged and the queue is full.
        report::Json body = report::Json::object();
        report::Json events = report::Json::array();
        std::size_t n = 0;
        if (flight) {
          for (const telemetry::Event& e : flight->snapshot()) {
            events.push_back(telemetry::event_to_json(e));
            ++n;
          }
        }
        body["count"] = report::Json::number(static_cast<double>(n));
        body["capacity"] = report::Json::number(
            static_cast<double>(flight ? opts.flight_capacity : 0));
        body["events"] = std::move(events);
        conn->send_line(ok_line(job.req.id, std::move(body), job.req.trace));
        break;
      }
      case Cmd::Shutdown: {
        report::Json body = report::Json::object();
        body["draining"] = report::Json::boolean(true);
        conn->send_line(ok_line(job.req.id, std::move(body), job.req.trace));
        request_shutdown_impl();
        break;
      }
      default: break;
    }
    {
      std::lock_guard<std::mutex> lk(mu);
      ++server_stats.completed;
    }
    emit_request_event(telemetry::EventKind::RequestFinished, job, 0,
                       seconds_since(t0), "inline", 1);
  }

  void handle_line(const std::shared_ptr<Conn>& conn,
                   const std::string& line) {
    std::string err;
    auto req = parse_request(line, &err);
    if (!req) {
      {
        std::lock_guard<std::mutex> lk(mu);
        ++server_stats.bad_requests;
      }
      conn->send_line(error_line("", ErrorCode::BadRequest, err));
      return;
    }
    Job job;
    job.conn = conn;
    job.req = std::move(*req);
    job.key = request_key(job.req);
    // Cubie-Flight: adopt a well-formed client trace id (it is echoed in
    // the response); otherwise mint one so the request still correlates
    // in the event stream — but clear req.trace so the response omits the
    // field and legacy served-vs-direct byte-identity holds.
    if (telemetry::valid_trace_id(job.req.trace)) {
      job.trace.trace_id = job.req.trace;
    } else {
      job.req.trace.clear();
      job.trace.trace_id = telemetry::generate_trace_id();
    }
    job.trace.span_id = telemetry::generate_span_id();
    if (job.req.deadline_ms > 0) {
      job.has_deadline = true;
      job.deadline =
          Clock::now() + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double, std::milli>(
                                 job.req.deadline_ms));
    }
    switch (job.req.cmd) {
      case Cmd::Ping:
      case Cmd::Stats:
      case Cmd::Metrics:
      case Cmd::Flight:
      case Cmd::Shutdown:
        handle_inline(conn, job);
        return;
      default:
        admit(std::move(job));
        return;
    }
  }

  void reader_loop(std::shared_ptr<Conn> conn) {
    std::string buf;
    char chunk[4096];
    for (;;) {
      const ssize_t n = ::recv(conn->fd, chunk, sizeof chunk, 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return;  // EOF, error, or drain-time ::shutdown
      buf.append(chunk, static_cast<std::size_t>(n));
      std::size_t pos;
      while ((pos = buf.find('\n')) != std::string::npos) {
        std::string line = buf.substr(0, pos);
        buf.erase(0, pos + 1);
        if (!line.empty() && line.back() == '\r') line.pop_back();
        if (!line.empty()) handle_line(conn, line);
      }
      if (buf.size() > kMaxRequestBytes) {
        // A line this long is hostile or broken; poison the connection
        // instead of buffering without bound.
        std::lock_guard<std::mutex> lk(mu);
        ++server_stats.bad_requests;
        conn->send_line(error_line("", ErrorCode::BadRequest,
                                   "request line exceeds 1 MiB"));
        return;
      }
    }
  }

  void request_shutdown_impl() {
    shutdown_flag.store(true, std::memory_order_release);
    if (wake_wr >= 0) {
      const char b = 'x';
      // EAGAIN (pipe already full of wake bytes) is as good as written.
      [[maybe_unused]] ssize_t n = ::write(wake_wr, &b, 1);
    }
  }
};

Server::Server(ServerOptions opts)
    : impl_(std::make_unique<Impl>(std::move(opts))) {}

Server::~Server() {
  if (impl_->started) {
    // serve() normally joins everything; this covers start()-without-serve().
    {
      std::lock_guard<std::mutex> lk(impl_->mu);
      impl_->draining = true;
    }
    impl_->cv.notify_all();
    for (auto& t : impl_->workers)
      if (t.joinable()) t.join();
    for (auto& t : impl_->readers)
      if (t.joinable()) t.join();
  }
  if (impl_->listen_fd >= 0) ::close(impl_->listen_fd);
  if (impl_->wake_rd >= 0) ::close(impl_->wake_rd);
  if (impl_->wake_wr >= 0) ::close(impl_->wake_wr);
  if (!impl_->opts.socket_path.empty())
    ::unlink(impl_->opts.socket_path.c_str());
}

bool Server::start(std::string* error) {
  auto fail = [&](const std::string& msg) {
    if (error) *error = msg + ": " + std::strerror(errno);
    return false;
  };
  Impl& im = *impl_;
  if (im.opts.workers < 1) im.opts.workers = 1;
  if (im.opts.queue_limit < 1) im.opts.queue_limit = 1;

  int pipefd[2];
  if (::pipe(pipefd) != 0) return fail("pipe");
  im.wake_rd = pipefd[0];
  im.wake_wr = pipefd[1];
  ::fcntl(im.wake_wr, F_SETFL, O_NONBLOCK);

  if (!im.opts.socket_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (im.opts.socket_path.size() >= sizeof(addr.sun_path)) {
      if (error) *error = "socket path too long: " + im.opts.socket_path;
      return false;
    }
    std::strncpy(addr.sun_path, im.opts.socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    im.listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (im.listen_fd < 0) return fail("socket");
    ::unlink(im.opts.socket_path.c_str());  // stale socket from a crash
    if (::bind(im.listen_fd, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0)
      return fail("bind " + im.opts.socket_path);
    im.endpoint = "unix:" + im.opts.socket_path;
  } else {
    if (im.opts.tcp_port < 0) {
      if (error) *error = "no endpoint: set socket_path or tcp_port";
      return false;
    }
    im.listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (im.listen_fd < 0) return fail("socket");
    const int one = 1;
    ::setsockopt(im.listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(im.opts.tcp_port));
    if (::bind(im.listen_fd, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0)
      return fail("bind 127.0.0.1:" + std::to_string(im.opts.tcp_port));
    sockaddr_in bound{};
    socklen_t blen = sizeof(bound);
    ::getsockname(im.listen_fd, reinterpret_cast<sockaddr*>(&bound), &blen);
    im.bound_port = ntohs(bound.sin_port);
    im.endpoint = "tcp:127.0.0.1:" + std::to_string(im.bound_port);
  }
  if (::listen(im.listen_fd, 64) != 0) return fail("listen");

  // Install the Cubie-Pulse sink: from here on every bus event (request
  // lifecycle, engine cells, cache outcomes) folds into the registry the
  // `metrics` command snapshots. Installing a sink also enables the bus
  // for the whole serving process — intended: a daemon is observable.
  im.pulse_sinks.add(std::make_shared<telemetry::MetricsSink>(im.registry));
  // Cubie-Flight: the always-on bounded ring (Cmd::Flight / SIGUSR2 /
  // EngineError unwind read it) and, when armed, the slow-request tail
  // capture. flight_capacity == 0 disables the ring for A/B costing.
  if (im.opts.flight_capacity > 0) {
    im.flight =
        std::make_shared<telemetry::FlightRecorderSink>(im.opts.flight_capacity);
    im.pulse_sinks.add(im.flight);
  }
  if (!im.opts.slowlog_path.empty()) {
    im.slowlog = std::make_shared<telemetry::SlowlogSink>(im.opts.slowlog_path,
                                                          im.opts.slow_ms);
    im.pulse_sinks.add(im.slowlog);
  }
  im.start_time = Clock::now();

  for (int i = 0; i < im.opts.workers; ++i)
    im.workers.emplace_back([&im] { im.worker_loop(); });
  im.started = true;
  return true;
}

void Server::serve() {
  Impl& im = *impl_;
  for (;;) {
    pollfd fds[2] = {{im.listen_fd, POLLIN, 0}, {im.wake_rd, POLLIN, 0}};
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) {
        if (im.shutdown_flag.load(std::memory_order_acquire)) break;
        continue;
      }
      break;
    }
    if ((fds[1].revents & POLLIN) != 0 ||
        im.shutdown_flag.load(std::memory_order_acquire))
      break;
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int cfd = ::accept(im.listen_fd, nullptr, nullptr);
    if (cfd < 0) continue;
    auto conn = std::make_shared<Conn>(cfd);
    std::lock_guard<std::mutex> lk(im.mu);
    ++im.server_stats.connections;
    im.conns.erase(
        std::remove_if(im.conns.begin(), im.conns.end(),
                       [](const std::weak_ptr<Conn>& w) { return w.expired(); }),
        im.conns.end());
    im.conns.push_back(conn);
    im.readers.emplace_back(
        [&im, conn = std::move(conn)]() mutable { im.reader_loop(conn); });
  }

  // Drain: stop admitting, let workers finish queued + in-flight work.
  ::close(im.listen_fd);
  im.listen_fd = -1;
  {
    std::lock_guard<std::mutex> lk(im.mu);
    im.draining = true;
  }
  im.cv.notify_all();
  for (auto& t : im.workers)
    if (t.joinable()) t.join();
  im.workers.clear();
  // Every response is out; unblock the readers and join them.
  std::vector<std::thread> readers;
  {
    std::lock_guard<std::mutex> lk(im.mu);
    for (auto& w : im.conns)
      if (auto c = w.lock()) ::shutdown(c->fd, SHUT_RDWR);
    readers.swap(im.readers);
  }
  for (auto& t : readers)
    if (t.joinable()) t.join();
  if (!im.opts.socket_path.empty()) ::unlink(im.opts.socket_path.c_str());
  im.started = false;
}

void Server::request_shutdown() { impl_->request_shutdown_impl(); }

int Server::tcp_port() const { return impl_->bound_port; }

const std::string& Server::endpoint() const { return impl_->endpoint; }

engine::ExperimentEngine& Server::engine() { return impl_->eng; }

ServerStats Server::stats() const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  ServerStats s = impl_->server_stats;
  if (impl_->started) s.uptime_s = seconds_since(impl_->start_time);
  return s;
}

telemetry::MetricsRegistry& Server::metrics_registry() {
  return *impl_->registry;
}

std::shared_ptr<telemetry::FlightRecorderSink> Server::flight_recorder() const {
  return impl_->flight;
}

std::shared_ptr<telemetry::SlowlogSink> Server::slowlog() const {
  return impl_->slowlog;
}

}  // namespace cubie::serve
