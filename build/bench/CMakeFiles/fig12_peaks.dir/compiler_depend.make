# Empty compiler generated dependencies file for fig12_peaks.
# This may be replaced when dependencies are built.
